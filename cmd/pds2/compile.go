package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pds2/internal/vm"
)

// runCompile implements `pds2 compile`: the offline policy-program
// toolchain. It reads contract-DSL source from a file (or stdin when
// the argument is "-" or absent), compiles it to a pds2/bytecode/v1
// artifact, re-verifies the bytecode against the embedded source —
// exactly the check the registry repeats at deploy time — and prints a
// summary. -o writes the deployable artifact; -disasm dumps the
// instruction listing.
func runCompile(args []string) {
	fs := flag.NewFlagSet("pds2 compile", flag.ExitOnError)
	var (
		out    = fs.String("o", "", "write the deployable artifact to this file")
		disasm = fs.Bool("disasm", false, "print the bytecode disassembly")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pds2 compile [-o artifact.bin] [-disasm] [source-file|-]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	var (
		src []byte
		err error
	)
	switch name := fs.Arg(0); {
	case name == "" || name == "-":
		src, err = io.ReadAll(os.Stdin)
	default:
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pds2 compile: %v\n", err)
		os.Exit(1)
	}

	mod, err := vm.CompileSource(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pds2 compile: %v\n", err)
		os.Exit(1)
	}
	artifact := mod.Encode()
	// The same proof the registry demands at deploy time: the artifact
	// round-trips and its bytecode matches the embedded source.
	check, err := vm.Decode(artifact)
	if err == nil {
		err = vm.VerifySource(check)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pds2 compile: self-check failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("format:    %s\n", vm.FormatName)
	fmt.Printf("checksum:  %s\n", mod.Checksum().Hex())
	fmt.Printf("source:    %d bytes\n", len(mod.Source))
	fmt.Printf("code:      %d bytes\n", len(mod.Code))
	fmt.Printf("constants: %d\n", len(mod.Consts))
	fmt.Printf("locals:    %d\n", mod.NumLocals)
	fmt.Printf("artifact:  %d bytes\n", len(artifact))
	if *disasm {
		fmt.Print(vm.Disasm(mod))
	}
	if *out != "" {
		if err := os.WriteFile(*out, artifact, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pds2 compile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
