package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"pds2/internal/api"
	"pds2/internal/crypto"
	"pds2/internal/diag"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

// runDiag implements `pds2 diag`: the flight-recorder capture tool.
// Pointed at a running node it pulls one diagnostics bundle — metrics
// snapshot and history, logs, traces, goroutine/heap/mutex/block
// profiles, optionally a timed CPU profile — verifies its integrity,
// and prints the artifact index. With -self-test it instead spins up a
// self-hosted market node, drives parallel-execution traffic against
// it, captures a bundle over its real HTTP API and asserts the
// observability contract end to end (all artifacts present, history
// dense enough, CPU samples labeled by component).
func runDiag(args []string) {
	fs := flag.NewFlagSet("pds2 diag", flag.ExitOnError)
	var (
		target     = fs.String("target", "", "base URL of the node to capture (e.g. http://127.0.0.1:8080)")
		outDir     = fs.String("out", "", "bundle directory (default: pds2-diag-<ms> under the OS temp dir)")
		cpuSeconds = fs.Int("cpu-seconds", 0, "also capture a CPU profile of this many seconds (0 skips it)")
		window     = fs.Duration("window", 0, "trim the metrics history to this window (0 takes the full ring)")
		component  = fs.String("component", "", "filter the logs artifact to one component")
		jsonOut    = fs.Bool("json", false, "print the bundle manifest as JSON instead of the table")
		selfTest   = fs.Bool("self-test", false, "spin up a node, capture a bundle from it and verify the observability contract")
	)
	if err := fs.Parse(args); err != nil {
		fatalf("%v", err)
	}

	if *selfTest {
		runDiagSelfTest(*outDir)
		return
	}
	if *target == "" {
		fatalf("diag: -target URL required (or -self-test)")
	}

	opts := diag.Options{
		OutDir:       *outDir,
		CPUSeconds:   *cpuSeconds,
		Window:       *window,
		LogComponent: *component,
	}
	timeout := 30*time.Second + time.Duration(*cpuSeconds)*time.Second
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	dir, man, err := diag.CaptureRemote(ctx, api.NewClient(*target), opts)
	if err != nil {
		fatalf("diag: capture: %v", err)
	}
	if _, err := diag.Verify(dir); err != nil {
		fatalf("diag: bundle failed verification: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(man); err != nil {
			fatalf("diag: encode manifest: %v", err)
		}
		return
	}
	printManifest(dir, man)
	if failed := man.Failed(); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "pds2: diag: %d artifact(s) unavailable on this node: %v\n", len(failed), failed)
	}
}

// printManifest renders the artifact index the way operators read it:
// what made it into the bundle, how big, and what didn't and why.
func printManifest(dir string, man diag.Manifest) {
	fmt.Printf("bundle   %s\n", dir)
	fmt.Printf("source   %s\n", man.Source)
	if man.Node != "" {
		fmt.Printf("node     %s\n", man.Node)
	}
	if man.Build.GitCommit != "" {
		dirty := ""
		if man.Build.GitDirty {
			dirty = " (dirty)"
		}
		fmt.Printf("commit   %s%s\n", man.Build.GitCommit, dirty)
	}
	fmt.Printf("go       %s %s/%s\n", man.Build.GoVersion, man.Build.OS, man.Build.Arch)
	fmt.Println("artifacts:")
	for _, a := range man.Artifacts {
		if a.Err != "" {
			fmt.Printf("  %-16s FAILED: %s\n", a.Name, a.Err)
			continue
		}
		fmt.Printf("  %-16s %8d bytes  %s\n", a.Name, a.Bytes, a.File)
	}
}

// Self-test tuning. The history interval and window match the
// acceptance contract (>= 10 samples of ledger.mempool.depth across a
// 5s window); warmup must exceed window*minHistorySamples/capacity so
// the ring is dense enough by capture time.
const (
	selfTestHistoryInterval = 250 * time.Millisecond
	selfTestWindow          = 5 * time.Second
	selfTestWarmup          = 3 * time.Second
	selfTestCPUSeconds      = 2
	minHistorySamples       = 10
)

// runDiagSelfTest is the CI teeth for the whole observability stack:
// it hosts a real market node behind the real HTTP API with pprof,
// history and the runtime sampler on, drives parallel-execution
// traffic at it, captures a bundle remotely and fails loudly unless
// the bundle proves (a) every artifact captured and verifies, (b) the
// metrics history carries a dense mempool-depth series, (c) CPU
// samples from the parallel executor are attributable by component
// label, and (d) the runtime sampler populated its gauges.
func runDiagSelfTest(outDir string) {
	telemetry.Default().Reset()
	telemetry.Enable()
	telemetry.SetNode("diag-selftest")
	telemetry.EnableHistory(selfTestHistoryInterval, telemetry.DefaultHistoryCapacity)
	defer telemetry.DisableHistory()
	sampler := telemetry.StartRuntimeSampler(telemetry.Default(), 500*time.Millisecond)
	defer sampler.Stop()
	telemetry.SetProfileRates(100, 10_000) // mutex + block profiles have content
	defer telemetry.SetProfileRates(0, 0)

	// Fund enough distinct senders that every sealed block clears the
	// parallel path with real fan-out. ExecWorkers is pinned above 1
	// because the chain falls back to serial execution for a 1-worker
	// pool — a 1-core CI box would otherwise never label a worker.
	const senders = 64
	ids := make([]*identity.Identity, senders)
	alloc := make(map[identity.Address]uint64, senders)
	for i := range ids {
		ids[i] = identity.New(fmt.Sprintf("sender-%d", i), crypto.NewDRBGFromUint64(uint64(i+1), "diag-selftest"))
		alloc[ids[i].Address()] = 1 << 40
	}
	m, err := market.New(market.Config{
		Seed:             7,
		GenesisAlloc:     alloc,
		ExecWorkers:      4,
		ParallelMinBatch: 1,
	})
	if err != nil {
		fatalf("diag self-test: market: %v", err)
	}

	apiSrv := api.NewServer(m, true)
	apiSrv.SetPprof(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("diag self-test: listen: %v", err)
	}
	httpSrv := &http.Server{Handler: apiSrv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	baseURL := "http://" + ln.Addr().String()

	// Traffic driver: each round submits one transfer per sender and
	// seals, so every block is a 64-lane parallel batch. It keeps
	// running through the CPU-profile capture so worker samples land.
	stop := make(chan struct{})
	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i, id := range ids {
				if err := m.Submit(m.SignedTx(id, ids[(i+1)%senders].Address(), 1, nil)); err != nil {
					fmt.Fprintf(os.Stderr, "pds2: diag self-test: submit: %v\n", err)
				}
			}
			if _, err := m.SealBlockAt(m.Timestamp() + 1); err != nil {
				fmt.Fprintf(os.Stderr, "pds2: diag self-test: seal: %v\n", err)
			}
		}
	}()

	time.Sleep(selfTestWarmup) // let the history ring fill

	ephemeral := outDir == ""
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	dir, man, err := diag.CaptureRemote(ctx, api.NewClient(baseURL), diag.Options{
		OutDir:     outDir,
		CPUSeconds: selfTestCPUSeconds,
		Window:     selfTestWindow,
	})
	close(stop)
	<-driverDone
	if err != nil {
		fatalf("diag self-test: capture: %v", err)
	}

	if failed := man.Failed(); len(failed) > 0 {
		fatalf("diag self-test: artifacts failed against a fully enabled node: %v", failed)
	}
	if _, err := diag.Verify(dir); err != nil {
		fatalf("diag self-test: bundle verification: %v", err)
	}
	histSamples, err := checkHistoryDensity(dir)
	if err != nil {
		fatalf("diag self-test: %v", err)
	}
	if err := checkRuntimeGauges(dir); err != nil {
		fatalf("diag self-test: %v", err)
	}
	if err := checkCPUProfileLabels(dir); err != nil {
		fatalf("diag self-test: %v", err)
	}

	fmt.Printf("diag self-test ok: %d artifacts verified, %d history samples of ledger.mempool.depth in %s, cpu profile labeled by component (bundle: %s)\n",
		len(man.Artifacts), histSamples, selfTestWindow, dir)
	if ephemeral {
		_ = os.RemoveAll(dir)
	}
}

// checkHistoryDensity asserts the bundle's metrics history carries at
// least minHistorySamples points of ledger.mempool.depth — the
// acceptance bar for "the history ring was actually sampling while the
// node ran".
func checkHistoryDensity(dir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "metrics_history.json"))
	if err != nil {
		return 0, err
	}
	var dump telemetry.HistoryDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		return 0, fmt.Errorf("metrics_history.json: %w", err)
	}
	series := dump.Series("ledger.mempool.depth")
	if len(series) < minHistorySamples {
		return len(series), fmt.Errorf("only %d samples of ledger.mempool.depth in a %s window, want >= %d",
			len(series), selfTestWindow, minHistorySamples)
	}
	return len(series), nil
}

// checkRuntimeGauges asserts the runtime sampler fed the registry: a
// bundle without heap or goroutine gauges means the sampler never ran.
func checkRuntimeGauges(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("metrics.json: %w", err)
	}
	for _, name := range []string{telemetry.MetricHeapInuse, telemetry.MetricGoroutines, telemetry.MetricGOMAXPROCS} {
		m, ok := snap.Get(name)
		if !ok || m.Value == 0 {
			return fmt.Errorf("runtime gauge %s absent or zero in metrics snapshot", name)
		}
	}
	return nil
}

// checkCPUProfileLabels asserts the CPU profile attributes parallel
// executor workers by component. The pprof wire format is gzipped
// protobuf whose string table holds label keys and values verbatim, so
// a full decode plus substring search proves the labels landed without
// needing a protobuf parser.
func checkCPUProfileLabels(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("cpu.pprof: %w", err)
	}
	proto, err := io.ReadAll(zr)
	if err != nil {
		return fmt.Errorf("cpu.pprof: %w", err)
	}
	for _, want := range []string{telemetry.LabelComponent, "ledger.parallel.worker"} {
		if !bytes.Contains(proto, []byte(want)) {
			return fmt.Errorf("cpu profile carries no %q string — executor samples are unlabeled", want)
		}
	}
	return nil
}
