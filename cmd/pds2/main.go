// Command pds2 runs a complete PDS² marketplace scenario — governance
// chain, storage, providers, TEE executors — through the full workload
// lifecycle and prints a report: final state, model quality, reward
// payouts and the on-chain audit summary.
//
// Usage:
//
//	pds2 [-providers N] [-executors M] [-samples K] [-budget B] [-seed S]
//	pds2 -scenario scenario.json
//	pds2 metrics [-json] [-trace] [scenario flags]
//	pds2 trace [-json] [-chrome file] [-self-test] [scenario flags]
//	pds2 diag -target URL [-out DIR] [-cpu-seconds N] [-window D] [-component X] [-json]
//	pds2 diag -self-test [-out DIR]
//	pds2 compile [-o artifact.bin] [-disasm] [source-file|-]
//
// The metrics subcommand runs the same scenario with telemetry enabled
// and reports the collected metrics (and, with -trace, the span tree)
// instead of the marketplace result. The trace subcommand runs the
// scenario and renders the stitched workload trace as a span tree, raw
// span JSON, or Chrome trace-event JSON loadable in chrome://tracing or
// Perfetto; -self-test instead runs the two-node distributed-tracing
// demo and verifies the stitching invariants, exiting non-zero on
// failure. The diag subcommand captures a flight-recorder diagnostics
// bundle from a running node's HTTP API — metrics snapshot and
// history, logs, traces, runtime profiles, health and build identity,
// indexed by a checksummed manifest — and verifies it; its -self-test
// hosts a node in-process, drives parallel-execution traffic and
// asserts the captured bundle proves the observability contract. The
// compile subcommand is the offline policy toolchain: it compiles
// contract-DSL source to a deployable pds2/bytecode/v1 artifact,
// re-verifies the bytecode against the embedded source, and prints the
// artifact checksum (and, with -disasm, the instruction listing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"pds2/internal/core"
	"pds2/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		runMetrics(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "diag" {
		runDiag(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "compile" {
		runCompile(os.Args[2:])
		return
	}
	var (
		scenarioPath = flag.String("scenario", "", "JSON scenario file (overrides the flags below)")
		providers    = flag.Int("providers", 4, "number of data providers")
		executors    = flag.Int("executors", 2, "number of executors")
		samples      = flag.Int("samples", 200, "training examples per provider")
		budget       = flag.Uint64("budget", 100_000, "escrowed reward budget")
		fee          = flag.Uint64("fee", 1_000, "executor fee in basis points")
		seed         = flag.Uint64("seed", 1, "deterministic seed")
		jsonOut      = flag.Bool("json", false, "emit the result as JSON")
		exportPath   = flag.String("export", "", "write the full chain export (for pds2-audit) to this file")
	)
	flag.Parse()

	scenario := core.Scenario{
		Seed:        *seed,
		Providers:   *providers,
		Executors:   *executors,
		SamplesEach: *samples,
		Budget:      *budget,
		ExecutorFee: *fee,
	}
	if *scenarioPath != "" {
		raw, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fatalf("read scenario: %v", err)
		}
		if err := json.Unmarshal(raw, &scenario); err != nil {
			fatalf("parse scenario: %v", err)
		}
	}

	res, m, err := core.RunDetailed(scenario)
	if err != nil {
		fatalf("scenario failed: %v", err)
	}
	if *exportPath != "" {
		f, err := os.Create(*exportPath)
		if err != nil {
			fatalf("create export: %v", err)
		}
		if err := m.Chain.Export(f); err != nil {
			fatalf("export chain: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close export: %v", err)
		}
		fmt.Fprintf(os.Stderr, "chain exported to %s (verify with pds2-audit)\n", *exportPath)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("encode result: %v", err)
		}
		return
	}

	fmt.Printf("workload      %s\n", res.Workload)
	fmt.Printf("state         %v\n", res.State)
	fmt.Printf("accuracy      %.4f\n", res.Accuracy)
	fmt.Printf("blocks        %d\n", res.Blocks)
	fmt.Printf("total gas     %d\n", res.TotalGas)
	fmt.Printf("audit events  %d\n", res.AuditEvents)
	fmt.Println("payouts:")
	type payout struct {
		addr   core.Address
		amount uint64
	}
	var payouts []payout
	for a, v := range res.Payouts {
		payouts = append(payouts, payout{a, v})
	}
	sort.Slice(payouts, func(i, j int) bool {
		if payouts[i].amount != payouts[j].amount {
			return payouts[i].amount > payouts[j].amount
		}
		return payouts[i].addr.Hex() < payouts[j].addr.Hex()
	})
	var total uint64
	for _, p := range payouts {
		role := "provider"
		for _, e := range res.ExecutorAddr {
			if e == p.addr {
				role = "executor"
			}
		}
		fmt.Printf("  %s  %8d  (%s)\n", p.addr.Short(), p.amount, role)
		total += p.amount
	}
	fmt.Printf("  %-8s  %8d\n", "total", total)
}

// runMetrics implements `pds2 metrics`: a scenario run with telemetry
// enabled, reporting what the process measured rather than what the
// marketplace computed.
func runMetrics(args []string) {
	fs := flag.NewFlagSet("pds2 metrics", flag.ExitOnError)
	var (
		providers = fs.Int("providers", 4, "number of data providers")
		executors = fs.Int("executors", 2, "number of executors")
		samples   = fs.Int("samples", 200, "training examples per provider")
		budget    = fs.Uint64("budget", 100_000, "escrowed reward budget")
		seed      = fs.Uint64("seed", 1, "deterministic seed")
		jsonOut   = fs.Bool("json", false, "emit the snapshot as JSON (the /metrics wire format)")
		showTrace = fs.Bool("trace", false, "also print the span tree")
	)
	if err := fs.Parse(args); err != nil {
		fatalf("%v", err)
	}

	telemetry.Enable()
	if _, err := core.Run(core.Scenario{
		Seed:        *seed,
		Providers:   *providers,
		Executors:   *executors,
		SamplesEach: *samples,
		Budget:      *budget,
	}); err != nil {
		fatalf("scenario failed: %v", err)
	}

	snap := telemetry.Default().Snapshot()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fatalf("encode snapshot: %v", err)
		}
	} else {
		fmt.Print(snap.Summary())
	}
	if *showTrace {
		fmt.Println("\nspans:")
		fmt.Print(telemetry.Default().Tracer().Export().TreeString())
	}
}

// runTrace implements `pds2 trace`: a scenario run with telemetry
// enabled, rendering the stitched workload trace. With -self-test it
// runs the two-node simnet trace demo instead and verifies that the
// distributed spans stitch into a single lifecycle tree.
func runTrace(args []string) {
	fs := flag.NewFlagSet("pds2 trace", flag.ExitOnError)
	var (
		providers  = fs.Int("providers", 4, "number of data providers")
		executors  = fs.Int("executors", 2, "number of executors")
		samples    = fs.Int("samples", 200, "training examples per provider")
		seed       = fs.Uint64("seed", 1, "deterministic seed")
		jsonOut    = fs.Bool("json", false, "emit the raw spans as JSON (the /trace wire format)")
		chromePath = fs.String("chrome", "", "write Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
		selfTest   = fs.Bool("self-test", false, "run the two-node stitching demo and verify its invariants")
	)
	if err := fs.Parse(args); err != nil {
		fatalf("%v", err)
	}

	if *selfTest {
		tr, err := core.TraceDemo(*seed)
		if err != nil {
			fatalf("trace self-test: %v", err)
		}
		if err := core.VerifyDemoTrace(tr); err != nil {
			fatalf("trace self-test: %v", err)
		}
		if _, err := tr.ChromeTraceJSON(); err != nil {
			fatalf("trace self-test: chrome export: %v", err)
		}
		fmt.Printf("trace self-test ok: %d spans across 2 nodes stitched into one trace\n", len(tr.Spans))
		fmt.Print(tr.TreeString())
		return
	}

	telemetry.Enable()
	if _, err := core.Run(core.Scenario{
		Seed:        *seed,
		Providers:   *providers,
		Executors:   *executors,
		SamplesEach: *samples,
	}); err != nil {
		fatalf("scenario failed: %v", err)
	}

	col := telemetry.NewCollector()
	col.AddRegistry(telemetry.Default())
	if *chromePath != "" {
		raw, err := col.Trace().ChromeTraceJSON()
		if err != nil {
			fatalf("chrome export: %v", err)
		}
		if err := os.WriteFile(*chromePath, raw, 0o644); err != nil {
			fatalf("write chrome trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "chrome trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", *chromePath)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(col.Trace()); err != nil {
			fatalf("encode trace: %v", err)
		}
		return
	}
	for i, tr := range col.Traces() {
		if len(tr.Spans) == 0 {
			continue
		}
		fmt.Printf("trace %d (%d spans):\n", i, len(tr.Spans))
		fmt.Print(tr.TreeString())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pds2: "+format+"\n", args...)
	os.Exit(1)
}
