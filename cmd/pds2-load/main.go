// Command pds2-load is the open-loop load harness for a PDS² governance
// node. It derives a deterministic population of simulated accounts,
// partitions them across workers, and offers a configurable traffic mix
// — native transfers, ERC-20 mints, account reads and workload
// lifecycles — against the node's real HTTP API at a fixed arrival
// rate. Committed throughput is read from the node's ledger counters,
// per-class latency (p50/p95/p99) from the generator's telemetry
// histograms, and the run is judged against SLO thresholds. Results are
// written as BENCH_<date>.json, which scripts/bench_compare.sh diffs
// across commits.
//
// With no -target the harness self-hosts: it starts an in-process node
// (optionally durable, with -data-dir) on a loopback listener with the
// whole population funded at genesis, and drives it over real HTTP —
// the one-command million-user benchmark. Against an external node,
// start it with matching funding first:
//
//	pds2-node -load-accounts 100000 -load-seed 1 &
//	pds2-load -target http://localhost:8547 -accounts 100000 -seed 1
//
// Exit status: 0 on pass, 1 on SLO breach, 2 on usage or setup failure.
//
// Usage:
//
//	pds2-load [-accounts 100000] [-seed 1] [-workers 16] [-rate 400]
//	          [-duration 30s] [-mix transfers=70,mints=10,reads=15,lifecycle=2,policy=3]
//	          [-slo-tx-per-sec N] [-slo-p99-ms N] [-slo-error-rate F]
//	          [-out .] [-target URL]
//	          [-block-ms 250] [-block-gas 120000000] [-mempool 200000]
//	          [-data-dir DIR] [-snapshot-every 1000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"pds2/internal/api"
	"pds2/internal/chainstore"
	"pds2/internal/loadgen"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

func main() {
	var (
		target   = flag.String("target", "", "base URL of the node under test (empty self-hosts an in-process node)")
		accounts = flag.Int("accounts", 100_000, "simulated account population")
		seed     = flag.Uint64("seed", 1, "seed deriving the population and all generator randomness")
		workers  = flag.Int("workers", 16, "concurrent workers (accounts are partitioned across them)")
		rate     = flag.Float64("rate", 400, "offered load, operations per second")
		duration = flag.Duration("duration", 30*time.Second, "measured-phase duration")
		mixSpec  = flag.String("mix", "", "traffic mix, e.g. transfers=70,mints=10,reads=15,lifecycle=2,policy=3")
		fundEach = flag.Uint64("fund-each", 1_000_000, "genesis balance per simulated account")
		out      = flag.String("out", ".", "directory for the BENCH_<date>.json report")

		sloTxRate = flag.Float64("slo-tx-per-sec", 0, "SLO: committed-transaction throughput floor (0 disables)")
		sloP99    = flag.Float64("slo-p99-ms", 0, "SLO: p99 latency ceiling for submit/read classes, ms (0 disables)")
		sloErrs   = flag.Float64("slo-error-rate", 0, "SLO: error-rate ceiling, 0..1 (0 disables)")

		// Self-host knobs (ignored with -target).
		blockMS   = flag.Int("block-ms", 250, "self-host: auto-seal interval in milliseconds")
		blockGas  = flag.Uint64("block-gas", 120_000_000, "self-host: per-block gas limit (0 selects the chain default)")
		mempool   = flag.Int("mempool", 200_000, "self-host: mempool capacity")
		dataDir   = flag.String("data-dir", "", "self-host: durable chain store directory (empty runs in memory)")
		snapEvery = flag.Uint64("snapshot-every", 1000, "self-host: snapshot every N blocks (with -data-dir)")
	)
	flag.Parse()
	telemetry.Enable()
	telemetry.DefaultLog().SetOutput(os.Stderr)

	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		fatalf("%v", err)
	}

	ctx := context.Background()
	baseURL := *target
	if baseURL == "" {
		var stop func()
		baseURL, stop, err = selfHost(ctx, *seed, *accounts, *fundEach, *blockMS, *blockGas, *mempool, *dataDir, *snapEvery)
		if err != nil {
			fatalf("self-host node: %v", err)
		}
		defer stop()
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		Target:   baseURL,
		Accounts: *accounts,
		Workers:  *workers,
		Rate:     *rate,
		Duration: *duration,
		Mix:      mix,
		Seed:     *seed,
		FundEach: *fundEach,
		SLO: loadgen.SLO{
			MinTxPerSec:  *sloTxRate,
			MaxP99:       time.Duration(*sloP99 * float64(time.Millisecond)),
			MaxErrorRate: *sloErrs,
		},
		Logf: log.Printf,
	})
	if err != nil {
		fatalf("%v", err)
	}

	path, err := rep.WriteFile(*out)
	if err != nil {
		fatalf("write report: %v", err)
	}

	fmt.Printf("pds2-load: %d accounts, %d workers, %.0f ops/s offered for %.1fs against %s\n",
		rep.Accounts, rep.Workers, rep.OfferedRate, rep.DurationSec, rep.Target)
	fmt.Printf("  committed   %d txs (%.1f tx/s) over %d blocks\n", rep.CommittedTxs, rep.CommittedTxPerSec, rep.Blocks)
	fmt.Printf("  offered     %d ops, %d errors (%.2f%%), %d shed\n", rep.Ops, rep.Errors, rep.ErrorRate*100, rep.Shed)
	for _, c := range rep.Classes {
		if c.Ops == 0 {
			continue
		}
		fmt.Printf("  %-10s %6d ops  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  max %7.2fms\n",
			c.Class, c.Ops, c.P50*1e3, c.P95*1e3, c.P99*1e3, c.Max*1e3)
	}
	if rep.Runtime.HeapInusePeakBytes > 0 {
		fmt.Printf("  runtime     (%s) gc pause p99 %.2fms, peak heap %.1f MiB, peak goroutines %d\n",
			rep.Runtime.Source, rep.Runtime.GCPauseP99Seconds*1e3,
			float64(rep.Runtime.HeapInusePeakBytes)/(1<<20), rep.Runtime.GoroutinesPeak)
	}
	if rep.Build.GitCommit != "" {
		fmt.Printf("  commit      %s\n", rep.Build.GitCommit)
	}
	fmt.Printf("  report      %s\n", path)

	if len(rep.Breaches) > 0 {
		fmt.Println("SLO BREACHED:")
		for _, b := range rep.Breaches {
			fmt.Printf("  - %s\n", b)
		}
		os.Exit(1)
	}
	fmt.Println("SLO PASSED")
}

// selfHost starts an in-process node on a loopback listener with the
// loadgen population funded at genesis, mirroring pds2-node's wiring
// (durable store, auto-sealer through the API).
func selfHost(ctx context.Context, seed uint64, accounts int, fundEach uint64,
	blockMS int, blockGas uint64, mempool int, dataDir string, snapEvery uint64) (string, func(), error) {

	log.Printf("self-host: funding %d accounts at genesis", accounts)
	var store *chainstore.Store
	if dataDir != "" {
		var err error
		store, err = chainstore.Open(dataDir, nil)
		if err != nil {
			return "", nil, err
		}
		if n := store.RecoveredBytes(); n > 0 {
			log.Printf("chain store: recovered from torn write (%d bytes truncated)", n)
		}
	}
	m, err := market.Open(market.Config{
		Seed:          seed,
		GenesisAlloc:  loadgen.GenesisAlloc(seed, accounts, fundEach),
		MempoolSize:   mempool,
		BlockGasLimit: blockGas,
	}, store)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return "", nil, err
	}
	if store != nil {
		log.Printf("chain store %s: resumed at height %d (base %d)", dataDir, m.Height(), m.Chain.Base())
		store.AttachSnapshotting(m.Chain, snapEvery)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: api.NewServer(m, true)}
	go func() { _ = hs.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()

	sealCtx, cancel := context.WithCancel(ctx)
	go func() {
		client := api.NewClient(baseURL)
		tick := time.NewTicker(time.Duration(blockMS) * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sealCtx.Done():
				return
			case <-tick.C:
			}
			if st, err := client.Status(sealCtx); err == nil && st.Pending > 0 {
				if _, err := client.Seal(sealCtx); err != nil && sealCtx.Err() == nil {
					log.Printf("auto-seal: %v", err)
				}
			}
		}
	}()

	stop := func() {
		cancel()
		shutCtx, done := context.WithTimeout(context.Background(), 2*time.Second)
		defer done()
		_ = hs.Shutdown(shutCtx)
		if store != nil {
			_ = store.Close()
		}
	}
	return baseURL, stop, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pds2-load: "+format+"\n", args...)
	os.Exit(2)
}
