// Command pds2-node runs a PDS² governance node: a proof-of-authority
// chain with the platform contracts deployed, served over the HTTP API
// of internal/api. Blocks are sealed automatically at a fixed interval
// when transactions are pending.
//
// Usage:
//
//	pds2-node [-listen :8547] [-seed 1] [-block-ms 500] [-fund addr:amount,...] [-mempool 100000]
//	          [-log-level info,ledger=debug] [-node-id node-0] [-drain-ms 500]
//	          [-data-dir /var/lib/pds2] [-snapshot-every 1000]
//	          [-load-accounts 100000] [-load-seed 1] [-load-fund 1000000] [-block-gas 0]
//	          [-pprof] [-mutex-profile-fraction 0] [-block-profile-rate-ns 0]
//	          [-history-ms 250] [-history-cap 1200]
//
// Observability: with -telemetry (the default) the node additionally
// runs the Go runtime sampler (heap, GC pauses, goroutines, scheduler
// latency gauges) and a bounded metrics-history ring sampled every
// -history-ms, served at GET /metrics/history?window=30s. -pprof
// mounts net/http/pprof at /debug/pprof/ — off by default because
// profile endpoints leak internals; `pds2 diag -target <url>` captures
// a full flight-recorder bundle from these endpoints in one shot.
// -mutex-profile-fraction and -block-profile-rate-ns enable the
// contention profiles (both off by default; they tax hot paths).
//
// -load-accounts funds the deterministic pds2-load population at
// genesis (same seed and count on both sides, no key material crosses
// the wire), so an external pds2-load run finds its accounts funded.
//
// With -data-dir the node is durable: every sealed block is appended
// (fsynced) to a segmented log under the directory, a state snapshot is
// written every -snapshot-every blocks, and a restart resumes from
// "snapshot + tail-of-log" instead of genesis — killed mid-run, the node
// reopens with at most the last torn append truncated away. The store
// surfaces as the "chainstore" component in /healthz and /readyz.
//
// Structured logs are retained in a bounded ring served at GET /logs
// and mirrored to stderr; -log-level takes a default level plus
// per-component overrides (debug, info, warn, error, off). Component
// health is served at GET /healthz (liveness: 503 only when unhealthy)
// and GET /readyz (readiness: 200 only when fully healthy).
//
// On SIGINT/SIGTERM the node shuts down gracefully: /readyz starts
// answering 503 so load balancers stop routing here, the node keeps
// serving for -drain-ms, then in-flight requests are allowed to finish
// before the listener closes.
//
// Try it:
//
//	pds2-node &
//	curl -s localhost:8547/v1/status
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pds2/internal/api"
	"pds2/internal/chainstore"
	"pds2/internal/identity"
	"pds2/internal/loadgen"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

func main() {
	var (
		listen    = flag.String("listen", ":8547", "HTTP listen address")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		blockMS   = flag.Int("block-ms", 500, "auto-seal interval in milliseconds (0 disables)")
		fund      = flag.String("fund", "", "comma-separated genesis allocations addr:amount")
		pool      = flag.Int("mempool", 0, "mempool capacity in transactions (0 selects the default)")
		tel       = flag.Bool("telemetry", true, "collect metrics and traces (served at /metrics and /trace)")
		logSpec   = flag.String("log-level", "info", "structured-log spec: default level plus component overrides, e.g. info,ledger=debug,gossip=off")
		nodeID    = flag.String("node-id", "", "node identity stamped on spans and log records (defaults to the listen address)")
		drainMS   = flag.Int("drain-ms", 500, "how long to keep serving after /readyz goes down, before shutdown")
		dataDir   = flag.String("data-dir", "", "durable chain store directory (empty runs in memory)")
		snapEvery = flag.Uint64("snapshot-every", 1000, "write a state snapshot every N blocks (with -data-dir; 0 disables)")
		loadN     = flag.Int("load-accounts", 0, "fund this many deterministic pds2-load accounts at genesis")
		loadSeed  = flag.Uint64("load-seed", 1, "seed of the pds2-load population funded by -load-accounts")
		loadFund  = flag.Uint64("load-fund", 1_000_000, "genesis balance per -load-accounts account")
		blockGas  = flag.Uint64("block-gas", 0, "per-block gas limit (0 selects the chain default)")
		pprofOn   = flag.Bool("pprof", false, "serve runtime profiles at /debug/pprof/ (goroutine, heap, mutex, block, cpu)")
		mutexFrac = flag.Int("mutex-profile-fraction", 0, "mutex contention sampling rate 1/n (0 disables, 1 records all)")
		blockRate = flag.Int("block-profile-rate-ns", 0, "block profile threshold in nanoseconds (0 disables, 1 records all)")
		histMS    = flag.Int("history-ms", 250, "metrics history sampling interval in milliseconds (0 disables /metrics/history)")
		histCap   = flag.Int("history-cap", telemetry.DefaultHistoryCapacity, "metrics history ring capacity in samples")
	)
	flag.Parse()
	if *tel {
		telemetry.Enable()
	}
	if err := telemetry.SetLogSpec(*logSpec); err != nil {
		fatalf("bad -log-level: %v", err)
	}
	telemetry.DefaultLog().SetOutput(os.Stderr)
	if *nodeID == "" {
		*nodeID = listenHost(*listen)
	}
	telemetry.SetNode(*nodeID)
	telemetry.SetProfileRates(*mutexFrac, *blockRate)
	if *tel {
		if *histMS > 0 {
			telemetry.EnableHistory(time.Duration(*histMS)*time.Millisecond, *histCap)
			defer telemetry.DisableHistory()
		}
		sampler := telemetry.StartRuntimeSampler(telemetry.Default(), 0)
		defer sampler.Stop()
	}

	alloc := map[identity.Address]uint64{}
	if *fund != "" {
		for _, part := range strings.Split(*fund, ",") {
			addrHex, amountStr, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				fatalf("bad -fund entry %q (want addr:amount)", part)
			}
			addr, err := identity.AddressFromHex(addrHex)
			if err != nil {
				fatalf("bad -fund address: %v", err)
			}
			amount, err := strconv.ParseUint(amountStr, 10, 64)
			if err != nil {
				fatalf("bad -fund amount: %v", err)
			}
			alloc[addr] = amount
		}
	}

	if *loadN > 0 {
		log.Printf("funding %d pds2-load accounts (seed %d, %d each)", *loadN, *loadSeed, *loadFund)
		for addr, amount := range loadgen.GenesisAlloc(*loadSeed, *loadN, *loadFund) {
			alloc[addr] = amount
		}
	}

	var store *chainstore.Store
	if *dataDir != "" {
		var err error
		store, err = chainstore.Open(*dataDir, nil)
		if err != nil {
			fatalf("open chain store: %v", err)
		}
		if n := store.RecoveredBytes(); n > 0 {
			log.Printf("chain store: recovered from torn write (%d bytes truncated)", n)
		}
	}
	m, err := market.Open(market.Config{Seed: *seed, GenesisAlloc: alloc, MempoolSize: *pool, BlockGasLimit: *blockGas}, store)
	if err != nil {
		fatalf("start market: %v", err)
	}
	if store != nil {
		log.Printf("chain store %s: resumed at height %d (base %d)", *dataDir, m.Height(), m.Chain.Base())
		store.AttachSnapshotting(m.Chain, *snapEvery)
	}
	srv := api.NewServer(m, true)
	srv.SetPprof(*pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *blockMS > 0 {
		go func() {
			client := api.NewClient("http://" + listenHost(*listen))
			tick := time.NewTicker(time.Duration(*blockMS) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				// Seal through the API so locking is uniform.
				if st, err := client.Status(ctx); err == nil && st.Pending > 0 {
					if _, err := client.Seal(ctx); err != nil && ctx.Err() == nil {
						log.Printf("auto-seal: %v", err)
					}
				}
			}
		}()
	}

	// The write timeout caps how long a timed CPU profile can run
	// (/debug/pprof/profile?seconds=N streams after N seconds), so give
	// pprof-enabled nodes room for meaningful captures.
	writeTimeout := 30 * time.Second
	if *pprofOn {
		writeTimeout = 2 * time.Minute
	}
	hs := &http.Server{
		Addr:         *listen,
		Handler:      srv,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: writeTimeout,
		IdleTimeout:  2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	log.Printf("pds2-node listening on %s (registry %s, deeds %s)",
		*listen, m.Registry.Short(), m.Deeds.Short())

	select {
	case err := <-errCh:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: fail readiness first so load balancers stop
	// routing here, keep serving while they notice, then let in-flight
	// requests finish before the listener closes.
	log.Printf("pds2-node draining (%dms) before shutdown", *drainMS)
	srv.SetDraining(true)
	time.Sleep(time.Duration(*drainMS) * time.Millisecond)
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("close chain store: %v", err)
		}
	}
	log.Printf("pds2-node stopped at height %d", m.Height())
}

// listenHost normalizes ":8547" to "localhost:8547" for the self-client.
func listenHost(listen string) string {
	if strings.HasPrefix(listen, ":") {
		return "localhost" + listen
	}
	return listen
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pds2-node: "+format+"\n", args...)
	os.Exit(1)
}
