// Command pds2-node runs a PDS² governance node: a proof-of-authority
// chain with the platform contracts deployed, served over the HTTP API
// of internal/api. Blocks are sealed automatically at a fixed interval
// when transactions are pending.
//
// Usage:
//
//	pds2-node [-listen :8547] [-seed 1] [-block-ms 500] [-fund addr:amount,...] [-mempool 100000]
//	          [-log-level info,ledger=debug] [-node-id node-0] [-drain-ms 500]
//
// Structured logs are retained in a bounded ring served at GET /logs
// and mirrored to stderr; -log-level takes a default level plus
// per-component overrides (debug, info, warn, error, off). Component
// health is served at GET /healthz (liveness: 503 only when unhealthy)
// and GET /readyz (readiness: 200 only when fully healthy).
//
// On SIGINT/SIGTERM the node shuts down gracefully: /readyz starts
// answering 503 so load balancers stop routing here, the node keeps
// serving for -drain-ms, then in-flight requests are allowed to finish
// before the listener closes.
//
// Try it:
//
//	pds2-node &
//	curl -s localhost:8547/v1/status
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pds2/internal/api"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", ":8547", "HTTP listen address")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		blockMS = flag.Int("block-ms", 500, "auto-seal interval in milliseconds (0 disables)")
		fund    = flag.String("fund", "", "comma-separated genesis allocations addr:amount")
		pool    = flag.Int("mempool", 0, "mempool capacity in transactions (0 selects the default)")
		tel     = flag.Bool("telemetry", true, "collect metrics and traces (served at /metrics and /trace)")
		logSpec = flag.String("log-level", "info", "structured-log spec: default level plus component overrides, e.g. info,ledger=debug,gossip=off")
		nodeID  = flag.String("node-id", "", "node identity stamped on spans and log records (defaults to the listen address)")
		drainMS = flag.Int("drain-ms", 500, "how long to keep serving after /readyz goes down, before shutdown")
	)
	flag.Parse()
	if *tel {
		telemetry.Enable()
	}
	if err := telemetry.SetLogSpec(*logSpec); err != nil {
		fatalf("bad -log-level: %v", err)
	}
	telemetry.DefaultLog().SetOutput(os.Stderr)
	if *nodeID == "" {
		*nodeID = listenHost(*listen)
	}
	telemetry.SetNode(*nodeID)

	alloc := map[identity.Address]uint64{}
	if *fund != "" {
		for _, part := range strings.Split(*fund, ",") {
			addrHex, amountStr, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				fatalf("bad -fund entry %q (want addr:amount)", part)
			}
			addr, err := identity.AddressFromHex(addrHex)
			if err != nil {
				fatalf("bad -fund address: %v", err)
			}
			amount, err := strconv.ParseUint(amountStr, 10, 64)
			if err != nil {
				fatalf("bad -fund amount: %v", err)
			}
			alloc[addr] = amount
		}
	}

	m, err := market.New(market.Config{Seed: *seed, GenesisAlloc: alloc, MempoolSize: *pool})
	if err != nil {
		fatalf("start market: %v", err)
	}
	srv := api.NewServer(m, true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *blockMS > 0 {
		go func() {
			client := api.NewClient("http://" + listenHost(*listen))
			tick := time.NewTicker(time.Duration(*blockMS) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				// Seal through the API so locking is uniform.
				if st, err := client.Status(ctx); err == nil && st.Pending > 0 {
					if _, err := client.Seal(ctx); err != nil && ctx.Err() == nil {
						log.Printf("auto-seal: %v", err)
					}
				}
			}
		}()
	}

	hs := &http.Server{
		Addr:         *listen,
		Handler:      srv,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	log.Printf("pds2-node listening on %s (registry %s, deeds %s)",
		*listen, m.Registry.Short(), m.Deeds.Short())

	select {
	case err := <-errCh:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: fail readiness first so load balancers stop
	// routing here, keep serving while they notice, then let in-flight
	// requests finish before the listener closes.
	log.Printf("pds2-node draining (%dms) before shutdown", *drainMS)
	srv.SetDraining(true)
	time.Sleep(time.Duration(*drainMS) * time.Millisecond)
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("pds2-node stopped at height %d", m.Height())
}

// listenHost normalizes ":8547" to "localhost:8547" for the self-client.
func listenHost(listen string) string {
	if strings.HasPrefix(listen, ":") {
		return "localhost" + listen
	}
	return listen
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pds2-node: "+format+"\n", args...)
	os.Exit(1)
}
