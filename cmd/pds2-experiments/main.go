// Command pds2-experiments regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per paper figure or quantitative claim (see
// DESIGN.md's experiment index).
//
// Usage:
//
//	pds2-experiments             # run everything at full size
//	pds2-experiments -quick      # reduced sizes (seconds, not minutes)
//	pds2-experiments -run E6,E8  # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pds2/internal/experiments"
	"pds2/internal/telemetry"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "use reduced problem sizes")
		run     = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list    = flag.Bool("list", false, "list experiments and exit")
		tel     = flag.Bool("telemetry", true, "print per-experiment telemetry summaries")
		logSpec = flag.String("log-level", "off", "structured-log spec mirrored to stderr, e.g. info,ledger=debug")
	)
	flag.Parse()
	if err := telemetry.SetLogSpec(*logSpec); err != nil {
		fmt.Fprintf(os.Stderr, "pds2-experiments: bad -log-level: %v\n", err)
		os.Exit(1)
	}
	telemetry.DefaultLog().SetOutput(os.Stderr)

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	selected := experiments.All
	if *run != "" {
		selected = selected[:0:0]
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "pds2-experiments: unknown experiment %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	if *tel {
		telemetry.Enable()
	}
	for _, e := range selected {
		start := time.Now()
		table := e.Run(*quick)
		fmt.Println(table)
		fmt.Printf("(%s generated in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *tel {
			if summary := telemetry.Default().Snapshot().Summary(); summary != "" {
				fmt.Printf("telemetry (%s):\n%s\n", e.ID, summary)
			}
			// Reset between experiments so each summary is attributable.
			telemetry.Default().Reset()
		}
	}
}
