// Command pds2-audit is the trustless third-party auditor of §II-E: it
// takes a chain export produced by a PDS² governance node (for example
// via `pds2 -export chain.json`), replays every block through the same
// validation path the authorities ran — seals, proposer rotation,
// transaction roots, gas accounting, contract execution and state roots
// — and reports the audit summary. Any tampering with the export fails
// the replay.
//
// Usage:
//
//	pds2-audit [-log-level info,ledger=debug] chain.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pds2/internal/contract"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/telemetry"
	"pds2/internal/token"
)

func main() {
	logSpec := flag.String("log-level", "off", "structured-log spec mirrored to stderr, e.g. info,ledger=debug")
	flag.Parse()
	if err := telemetry.SetLogSpec(*logSpec); err != nil {
		fatalf("bad -log-level: %v", err)
	}
	telemetry.DefaultLog().SetOutput(os.Stderr)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pds2-audit <chain-export.json>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("open export: %v", err)
	}
	defer f.Close()

	// The auditor runs the exact platform contract code the network ran.
	rt := contract.NewRuntime()
	for name, code := range map[string]contract.Contract{
		market.RegistryCodeName: market.RegistryContract{},
		market.WorkloadCodeName: market.WorkloadContract{},
		token.ERC20CodeName:     token.ERC20{},
		token.ERC721CodeName:    token.ERC721{},
	} {
		if err := rt.RegisterCode(name, code); err != nil {
			fatalf("register code: %v", err)
		}
	}

	chain, err := ledger.Replay(f, rt)
	if err != nil {
		fmt.Printf("AUDIT FAILED: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("AUDIT PASSED: every block re-validated from genesis")
	fmt.Printf("  height      %d\n", chain.Height())
	fmt.Printf("  state root  %s\n", chain.State().Root())
	events := chain.Events("")
	fmt.Printf("  audit log   %d events\n", len(events))
	byTopic := map[string]int{}
	for _, ev := range events {
		byTopic[ev.Topic]++
	}
	for _, topic := range []string{
		market.EvActorRegistered, market.EvDataRegistered, market.EvWorkloadRegistered,
		market.EvExecutorRegistered, market.EvDataContributed, market.EvWorkloadStarted,
		market.EvResultSubmitted, market.EvRewardPaid, market.EvWorkloadFinalized,
		market.EvWorkloadDisputed, market.EvWorkloadCancelled,
	} {
		if n := byTopic[topic]; n > 0 {
			fmt.Printf("    %-20s %d\n", topic, n)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pds2-audit: "+format+"\n", args...)
	os.Exit(1)
}
