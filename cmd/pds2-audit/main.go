// Command pds2-audit is the trustless third-party auditor of §II-E: it
// takes a chain export produced by a PDS² governance node (for example
// via `pds2 -export chain.json`), replays every block through the same
// validation path the authorities ran — seals, proposer rotation,
// transaction roots, gas accounting, contract execution and state roots
// — and reports the audit summary. Any tampering with the export fails
// the replay.
//
// With -from-store it audits a durable chain store directory offline
// instead: the store's newest snapshot is integrity-checked against its
// head block's sealed state root, the log tail is re-validated block by
// block, and nothing is written — a node need not be running.
//
// Usage:
//
//	pds2-audit [-log-level info,ledger=debug] chain.json
//	pds2-audit -from-store /var/lib/pds2
package main

import (
	"flag"
	"fmt"
	"os"

	"pds2/internal/chainstore"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/policy"
	"pds2/internal/telemetry"
)

func main() {
	logSpec := flag.String("log-level", "off", "structured-log spec mirrored to stderr, e.g. info,ledger=debug")
	fromStore := flag.String("from-store", "", "audit a durable chain store directory instead of an export file")
	flag.Parse()
	if err := telemetry.SetLogSpec(*logSpec); err != nil {
		fatalf("bad -log-level: %v", err)
	}
	telemetry.DefaultLog().SetOutput(os.Stderr)

	// The auditor runs the exact platform contract code the network ran.
	rt, err := market.NewRuntime()
	if err != nil {
		fatalf("register code: %v", err)
	}

	var chain *ledger.Chain
	switch {
	case *fromStore != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: pds2-audit -from-store <dir>")
			os.Exit(2)
		}
		store, err := chainstore.Open(*fromStore, nil)
		if err != nil {
			fatalf("open store: %v", err)
		}
		defer store.Close()
		if n := store.RecoveredBytes(); n > 0 {
			fmt.Printf("  note: truncated %d bytes of torn tail during open\n", n)
		}
		chain, err = store.VerifyChain(rt)
		if err != nil {
			fmt.Printf("AUDIT FAILED: %v\n", err)
			os.Exit(1)
		}
		stats := store.Stats()
		fmt.Println("AUDIT PASSED: snapshot verified, every tail block re-validated")
		fmt.Printf("  store       %s (%d segments, %d frames, %d snapshots)\n",
			stats.Dir, stats.Segments, stats.Frames, stats.Snapshots)
		if base := chain.Base(); base > 0 {
			fmt.Printf("  snapshot    height %d (state root checked against sealed header)\n", base)
		}
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pds2-audit <chain-export.json>")
			os.Exit(2)
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("open export: %v", err)
		}
		defer f.Close()
		chain, err = ledger.Replay(f, rt)
		if err != nil {
			fmt.Printf("AUDIT FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("AUDIT PASSED: every block re-validated from genesis")
	}

	fmt.Printf("  height      %d\n", chain.Height())
	fmt.Printf("  state root  %s\n", chain.State().Root())
	events := chain.Events("")
	fmt.Printf("  audit log   %d events\n", len(events))
	byTopic := map[string]int{}
	for _, ev := range events {
		byTopic[ev.Topic]++
	}
	for _, topic := range []string{
		market.EvActorRegistered, market.EvDataRegistered, market.EvWorkloadRegistered,
		market.EvExecutorRegistered, market.EvDataContributed, market.EvWorkloadStarted,
		market.EvResultSubmitted, market.EvRewardPaid, market.EvWorkloadFinalized,
		market.EvWorkloadDisputed, market.EvWorkloadCancelled,
		policy.EvPolicySet, policy.EvPolicyDecision,
	} {
		if n := byTopic[topic]; n > 0 {
			fmt.Printf("    %-20s %d\n", topic, n)
		}
	}

	// Usage-control replay: re-derive every recorded policy decision from
	// the PolicySet history and the decision log itself, and check no
	// settled workload consumed a policy-bearing dataset without an
	// allowed admission decision. This is the trustless counterpart of
	// the in-process enforcement — a colluding authority set cannot fake
	// a compliant decision log without failing this replay.
	rep := policy.ReplayDecisions(events)
	violations := append(append([]string{}, rep.Mismatches...), rep.UnexplainedDenies...)
	violations = append(violations, market.VerifyPolicySettlements(events)...)
	if rep.Decisions > 0 || rep.PoliciesSet > 0 || len(violations) > 0 {
		fmt.Printf("  usage control  %d policies set, %d decisions (%d allow / %d deny)\n",
			rep.PoliciesSet, rep.Decisions, rep.Allows, rep.Denies)
	}
	if len(violations) > 0 {
		fmt.Printf("POLICY AUDIT FAILED: %d violations\n", len(violations))
		for _, v := range violations {
			fmt.Printf("    %s\n", v)
		}
		os.Exit(1)
	}
	if rep.Decisions > 0 {
		fmt.Println("  policy replay  every decision re-derived identically; settlements covered by allowed admissions")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pds2-audit: "+format+"\n", args...)
	os.Exit(1)
}
