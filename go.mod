module pds2

go 1.22
