#!/bin/sh
# covgate.sh — coverage ratchet for the packages the property harness
# leans on. Fails if statement coverage of the ledger, contract runtime
# or token contracts drops below the post-harness baseline; raise a
# floor when coverage improves, never lower one to make CI pass.
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"

# Floors sit one point under the measured baseline (ledger 87.7,
# contract 84.2, token 76.6, semantic 84.3, vm 84.8) to absorb
# formatting-level churn while still catching any real regression.
check() {
	pkg="$1"
	floor="$2"
	line=$("$GO" test -cover "./internal/$pkg/" | tail -n 1)
	case "$line" in
	ok*coverage:*) ;;
	*)
		echo "covgate: $pkg tests failed: $line" >&2
		exit 1
		;;
	esac
	pct=$(printf '%s\n' "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "covgate: could not parse coverage from: $line" >&2
		exit 1
	fi
	# Integer compare on tenths of a percent keeps this POSIX-sh only.
	got=$(printf '%s' "$pct" | awk '{printf "%d", $1 * 10}')
	want=$(printf '%s' "$floor" | awk '{printf "%d", $1 * 10}')
	if [ "$got" -lt "$want" ]; then
		echo "covgate: internal/$pkg coverage $pct% is below the $floor% floor" >&2
		exit 1
	fi
	echo "covgate: internal/$pkg $pct% (floor $floor%)"
}

check ledger 86.7
check contract 83.2
check token 75.6
check semantic 83.3
check vm 83.8
