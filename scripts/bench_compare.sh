#!/bin/sh
# bench_compare.sh — diffs the newest two BENCH_*.json load reports
# (written by `make load-smoke` / `go run ./cmd/pds2-load`) and fails
# on a >10% committed-throughput regression. Per-class p99 movement is
# printed as context but never gates: latency quantiles on shared CI
# hardware are too noisy to block a merge on.
#
# Usage: scripts/bench_compare.sh [dir]   (default: repo root)
#
# PDS2_BENCH_BASELINE pins the comparison baseline: set it to a
# BENCH_<date>.json path (absolute, or relative to the repo root) and
# the newest report is diffed against that file instead of against its
# immediate predecessor. Use it to hold the line against a known-good
# release report across several intermediate runs.
set -eu

cd "$(dirname "$0")/.."
dir="${1:-.}"

# Date-stamped names sort chronologically, so lexical order is age order.
set -- $(ls "$dir"/BENCH_*.json 2>/dev/null | sort)
if [ -n "${PDS2_BENCH_BASELINE:-}" ]; then
	if [ ! -f "$PDS2_BENCH_BASELINE" ]; then
		echo "bench_compare: PDS2_BENCH_BASELINE=$PDS2_BENCH_BASELINE does not exist" >&2
		exit 1
	fi
	if [ "$#" -lt 1 ]; then
		echo "bench_compare: no BENCH_*.json report in $dir to compare against the pinned baseline"
		exit 0
	fi
	while [ "$#" -gt 1 ]; do shift; done
	old="$PDS2_BENCH_BASELINE"
	new="$1"
	if [ "$(basename "$old")" = "$(basename "$new")" ]; then
		echo "bench_compare: newest report is the pinned baseline itself — nothing to compare"
		exit 0
	fi
else
	if [ "$#" -lt 2 ]; then
		echo "bench_compare: found $# report(s) in $dir — need two to compare, nothing to do"
		exit 0
	fi
	while [ "$#" -gt 2 ]; do shift; done
	old="$1"
	new="$2"
fi

# Pluck a top-level numeric field out of an indented-JSON report.
field() {
	sed -n 's/^  "'"$2"'": \([0-9.eE+-]*\),*$/\1/p' "$1" | head -1
}

schema_old=$(sed -n 's/^  "schema": "\(.*\)",*$/\1/p' "$old" | head -1)
schema_new=$(sed -n 's/^  "schema": "\(.*\)",*$/\1/p' "$new" | head -1)
if [ "$schema_old" != "$schema_new" ]; then
	echo "bench_compare: schema mismatch ($schema_old vs $schema_new) — not comparable"
	exit 0
fi

t_old=$(field "$old" committed_tx_per_sec)
t_new=$(field "$new" committed_tx_per_sec)
if [ -z "$t_old" ] || [ -z "$t_new" ]; then
	echo "bench_compare: committed_tx_per_sec missing from a report — not comparable"
	exit 0
fi

echo "bench_compare: $old -> $new"
printf '  committed throughput  %10.1f -> %10.1f tx/s\n' "$t_old" "$t_new"

# Per-class p99, paired by position ("class" line precedes its
# "p99_seconds" line inside each class object).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
grep '"class"' "$new" | sed 's/.*: "\(.*\)",*/\1/' >"$tmp/classes"
grep '"p99_seconds"' "$old" | sed 's/.*: \([0-9.eE+-]*\),*/\1/' >"$tmp/old99"
grep '"p99_seconds"' "$new" | sed 's/.*: \([0-9.eE+-]*\),*/\1/' >"$tmp/new99"
if [ -s "$tmp/classes" ] && [ "$(wc -l <"$tmp/old99")" = "$(wc -l <"$tmp/new99")" ]; then
	paste -d' ' "$tmp/classes" "$tmp/old99" "$tmp/new99" |
		awk '{ printf "  %-10s p99       %10.2f -> %10.2f ms\n", $1, $2*1000, $3*1000 }'
fi

ok=$(awk -v o="$t_old" -v n="$t_new" 'BEGIN { print (n >= 0.9 * o) ? "yes" : "no" }')
if [ "$ok" != "yes" ]; then
	drop=$(awk -v o="$t_old" -v n="$t_new" 'BEGIN { printf "%.1f", (1 - n / o) * 100 }')
	echo "bench_compare: REGRESSION — committed throughput dropped ${drop}% (>10% threshold)"
	exit 1
fi

# Usage-control gate (E18): the policy-bearing submit path must stay
# within 2% of the plain-transfer median. Absent field (policy class
# not driven) skips the gate.
p_new=$(field "$new" policy_overhead_pct)
if [ -n "$p_new" ]; then
	printf '  policy overhead       %10.2f %%  (2%% ceiling)\n' "$p_new"
	p_ok=$(awk -v p="$p_new" 'BEGIN { print (p <= 2.0) ? "yes" : "no" }')
	if [ "$p_ok" != "yes" ]; then
		echo "bench_compare: REGRESSION — policy-path overhead ${p_new}% over the 2% ceiling"
		exit 1
	fi
fi
echo "bench_compare: within the 10% regression budget"
