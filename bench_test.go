package pds2

// The benchmark harness: one testing.B benchmark per experiment in
// DESIGN.md's index (E1–E14), regenerating the corresponding table at
// reduced ("quick") size, plus micro-benchmarks for the hot substrate
// paths. Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-size tables are produced by cmd/pds2-experiments and recorded in
// EXPERIMENTS.md.

import (
	"math/big"
	"sync/atomic"
	"testing"
	"time"

	"pds2/internal/contract"
	"pds2/internal/core"
	"pds2/internal/crypto"
	"pds2/internal/experiments"
	"pds2/internal/he"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/ml"
	"pds2/internal/reward"
	"pds2/internal/smc"
	"pds2/internal/telemetry"
)

// benchExperiment runs one experiment table per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := e.Run(true)
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1Lifecycle(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2Governance(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3HE(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4SMC(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5TEE(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6GossipVsFed(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7Hetero(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8Shapley(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Pricing(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Authenticity(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Discovery(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Leakage(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13Configs(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14Tamper(b *testing.B)       { benchExperiment(b, "E14") }

// --- Substrate micro-benchmarks ---

// BenchmarkScenarioEndToEnd measures one complete marketplace lifecycle.
func BenchmarkScenarioEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Scenario{Seed: uint64(i), Providers: 4, Executors: 2, SamplesEach: 50})
		if err != nil {
			b.Fatal(err)
		}
		if res.State != core.StateComplete {
			b.Fatalf("state %v", res.State)
		}
	}
}

// BenchmarkLedgerTransfersPerBlock measures raw chain throughput with
// 1000 plain transfers per block.
func BenchmarkLedgerTransfersPerBlock(b *testing.B) {
	authority := identity.New("auth", crypto.NewDRBGFromUint64(1, "bench"))
	users := make([]*identity.Identity, 100)
	alloc := map[identity.Address]uint64{}
	for i := range users {
		users[i] = identity.New("u", crypto.NewDRBGFromUint64(uint64(10+i), "bench"))
		alloc[users[i].Address()] = 1 << 40
	}
	chain, err := ledger.NewChain(ledger.ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: alloc,
	})
	if err != nil {
		b.Fatal(err)
	}
	nonces := make([]uint64, len(users))
	const txPerBlock = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txs := make([]*ledger.Transaction, txPerBlock)
		for j := range txs {
			u := j % len(users)
			txs[j] = ledger.SignTx(users[u], users[(u+1)%len(users)].Address(), 1, nonces[u], 50_000, nil)
			nonces[u]++
		}
		if _, err := chain.ProposeBlock(authority, uint64(i+1), txs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(txPerBlock), "tx/block")
}

// benchImportBlock measures replica block-import throughput for one
// 500-transfer block. audit=true prepends a standalone VerifyBlock,
// reproducing the pre-optimization double-execution path; workers
// selects the stateless-verification pool (1 = serial, 0 = GOMAXPROCS).
func benchImportBlock(b *testing.B, workers int, audit bool) {
	b.Helper()
	authority := identity.New("auth", crypto.NewDRBGFromUint64(1, "bench"))
	users := make([]*identity.Identity, 100)
	alloc := map[identity.Address]uint64{}
	for i := range users {
		users[i] = identity.New("u", crypto.NewDRBGFromUint64(uint64(10+i), "bench"))
		alloc[users[i].Address()] = 1 << 40
	}
	cfg := ledger.ChainConfig{
		Authorities:      []identity.Address{authority.Address()},
		GenesisAlloc:     alloc,
		StatelessWorkers: workers,
	}
	producer, err := ledger.NewChain(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const txPerBlock = 500
	txs := make([]*ledger.Transaction, txPerBlock)
	for j := range txs {
		u := j % len(users)
		txs[j] = ledger.SignTx(users[u], users[(u+1)%len(users)].Address(), 1, uint64(j/len(users)), 50_000, nil)
	}
	block, err := producer.ProposeBlock(authority, 1, txs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		replica, err := ledger.NewChain(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if audit {
			if err := replica.VerifyBlock(block); err != nil {
				b.Fatal(err)
			}
		}
		if err := replica.ImportBlock(block); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(txPerBlock)*float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkImportBlock compares the block-import pipelines: the
// double-execution baseline (standalone verify, then import — what
// ImportBlock did before it executed blocks exactly once), the
// single-execution path with serial signature verification, and the
// full pipeline with the parallel stateless phase.
func BenchmarkImportBlock(b *testing.B) {
	b.Run("double-exec-baseline", func(b *testing.B) { benchImportBlock(b, 1, true) })
	b.Run("single-exec-serial", func(b *testing.B) { benchImportBlock(b, 1, false) })
	b.Run("single-exec-parallel", func(b *testing.B) { benchImportBlock(b, 0, false) })
}

// BenchmarkImportBlockHistory prices the metrics-history sampler: the
// serial single-exec import pipeline with telemetry enabled, with and
// without the 250ms history ring snapshotting the registry in the
// background. The tx/s delta is the history overhead; it must stay
// under 1% (snapshots take only the shard read-locks, never blocking
// the record path, and fire 4×/s regardless of import rate).
func BenchmarkImportBlockHistory(b *testing.B) {
	telemetry.Enable()
	defer telemetry.Disable()
	b.Run("history-off", func(b *testing.B) { benchImportBlock(b, 1, false) })
	b.Run("history-on-250ms", func(b *testing.B) {
		telemetry.EnableHistory(250*time.Millisecond, telemetry.DefaultHistoryCapacity)
		defer telemetry.DisableHistory()
		benchImportBlock(b, 1, false)
	})
}

// BenchmarkMempoolConcurrentAdmission measures admission throughput
// with many submitter goroutines hitting the pool at once — the API
// fast path, where ed25519 verification runs outside the pool mutex.
// Signing happens inline, so the figure is a full admission round trip.
func BenchmarkMempoolConcurrentAdmission(b *testing.B) {
	pool := ledger.NewMempool(1 << 30)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		sender := identity.New("s", crypto.NewDRBGFromUint64(seq.Add(1), "bench-pool"))
		to := identity.New("r", crypto.NewDRBGFromUint64(seq.Add(1), "bench-pool")).Address()
		var nonce uint64
		for pb.Next() {
			tx := ledger.SignTx(sender, to, 1, nonce, 50_000, nil)
			nonce++
			if err := pool.Add(tx); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkTelemetryOverhead pins the cost of the instrumentation
// itself. The disabled path is what every instrumented hot path pays
// when telemetry is off — it must stay in the low single-digit
// nanoseconds with zero allocations — while the enabled path shows the
// full cost of an atomic counter bump and a timed histogram sample.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"disabled", false}, {"enabled", true}} {
		reg := telemetry.New()
		reg.SetEnabled(mode.on)
		c := reg.Counter("bench.ops_total")
		h := reg.Histogram("bench.op_seconds", telemetry.TimeBuckets)
		b.Run("counter-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		})
		b.Run("timer-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := h.Time()
				t.Stop()
			}
		})
		b.Run("observe-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Observe(float64(i))
			}
		})
	}
}

// benchCommitBlocks drives the instrumented ledger hot path: one block
// of plain transfers per iteration, against whatever state the global
// telemetry registry is in.
func benchCommitBlocks(b *testing.B, txPerBlock int) {
	b.Helper()
	authority := identity.New("auth", crypto.NewDRBGFromUint64(1, "bench"))
	users := make([]*identity.Identity, 50)
	alloc := map[identity.Address]uint64{}
	for i := range users {
		users[i] = identity.New("u", crypto.NewDRBGFromUint64(uint64(10+i), "bench"))
		alloc[users[i].Address()] = 1 << 40
	}
	chain, err := ledger.NewChain(ledger.ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: alloc,
	})
	if err != nil {
		b.Fatal(err)
	}
	nonces := make([]uint64, len(users))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txs := make([]*ledger.Transaction, txPerBlock)
		for j := range txs {
			u := j % len(users)
			txs[j] = ledger.SignTx(users[u], users[(u+1)%len(users)].Address(), 1, nonces[u], 50_000, nil)
			nonces[u]++
		}
		if _, err := chain.ProposeBlock(authority, uint64(i+1), txs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerCommitTelemetry compares block commits with telemetry
// off (the default) and on; the delta is the end-to-end overhead of the
// instrumentation on a real subsystem and must stay within a few
// percent.
// BenchmarkLogDisabled pins the cost of a structured-log statement on
// a component whose level filters it out: the leveled methods inline
// to one atomic load and a branch, with no allocation, so hot paths
// can leave log statements in unconditionally. The acceptance bound is
// <= 5ns/op.
func BenchmarkLogDisabled(b *testing.B) {
	l := telemetry.NewLog(256)
	c := l.Component("bench")
	// Default level is off, so every call below is filtered.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Debug("tx admitted")
	}
}

// BenchmarkLogDisabledFields adds field capture to the filtered call:
// constructors copy raw values into stack F structs (still zero
// allocations, formatting deferred), which dominates the cost. Sites
// whose field values are expensive guard with Component.Enabled.
func BenchmarkLogDisabledFields(b *testing.B) {
	l := telemetry.NewLog(256)
	c := l.Component("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Debug("tx admitted", telemetry.Int("nonce", i), telemetry.Str("from", "bench"))
	}
}

// BenchmarkLogEnabled measures the retained-event path: field capture,
// ring append, and level check with the record actually kept.
func BenchmarkLogEnabled(b *testing.B) {
	l := telemetry.NewLog(256)
	if err := l.SetLevelSpec("debug"); err != nil {
		b.Fatal(err)
	}
	c := l.Component("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Debug("tx admitted", telemetry.Int("nonce", i), telemetry.Str("from", "bench"))
	}
}

func BenchmarkLedgerCommitTelemetry(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchCommitBlocks(b, 100) })
	b.Run("enabled", func(b *testing.B) {
		telemetry.Enable()
		defer telemetry.Disable()
		benchCommitBlocks(b, 100)
	})
}

// BenchmarkContractCall measures one ERC-20-style contract invocation
// including block sealing.
func BenchmarkContractCall(b *testing.B) {
	rt := contract.NewRuntime()
	if err := rt.RegisterCode("bench/counter", benchCounter{}); err != nil {
		b.Fatal(err)
	}
	authority := identity.New("auth", crypto.NewDRBGFromUint64(1, "bench"))
	user := identity.New("u", crypto.NewDRBGFromUint64(2, "bench"))
	chain, err := ledger.NewChain(ledger.ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		Applier:      rt,
		GenesisAlloc: map[identity.Address]uint64{user.Address(): 1 << 40},
	})
	if err != nil {
		b.Fatal(err)
	}
	deploy := ledger.SignTx(user, identity.ZeroAddress, 0, 0, 1_000_000, contract.DeployData("bench/counter", nil))
	if _, err := chain.ProposeBlock(authority, 1, []*ledger.Transaction{deploy}); err != nil {
		b.Fatal(err)
	}
	rcpt, _ := chain.Receipt(deploy.Hash())
	var addr identity.Address
	copy(addr[:], rcpt.Return)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := ledger.SignTx(user, addr, 0, uint64(i+1), 1_000_000, contract.CallData("inc", nil))
		if _, err := chain.ProposeBlock(authority, uint64(i+2), []*ledger.Transaction{tx}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCounter is a minimal contract for BenchmarkContractCall.
type benchCounter struct{}

func (benchCounter) Init(*contract.Context, []byte) error { return nil }
func (benchCounter) Call(ctx *contract.Context, method string, _ []byte) ([]byte, error) {
	v, err := ctx.GetUint64("n")
	if err != nil {
		return nil, err
	}
	return nil, ctx.SetUint64("n", v+1)
}

// BenchmarkPaillierEncrypt measures a single 1024-bit encryption — the
// atom of the E3 overhead.
func BenchmarkPaillierEncrypt(b *testing.B) {
	rng := crypto.NewDRBGFromUint64(1, "bench")
	key, err := he.GenerateKey(1024, rng)
	if err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(123456)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Encrypt(m, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMCDot measures one 64-dimensional secret-shared dot product.
func BenchmarkSMCDot(b *testing.B) {
	rng := crypto.NewDRBGFromUint64(1, "bench")
	engine, err := smc.NewEngine(3, rng)
	if err != nil {
		b.Fatal(err)
	}
	const dim = 64
	x := make([]float64, dim)
	y := make([]float64, dim)
	for i := range x {
		x[i], y[i] = float64(i), float64(dim-i)
	}
	sx := engine.Share(x, smc.FixedScale)
	sy := engine.Share(y, smc.FixedScale)
	engine.DealTriples(dim * (b.N + 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Dot(sx, sy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogisticUpdate measures one SGD step at dim 64.
func BenchmarkLogisticUpdate(b *testing.B) {
	m := ml.NewLogisticModel(64, 1e-3)
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Update(x, 1)
	}
}

// BenchmarkExactShapley12 measures the exact attribution at n=12 on a
// synthetic additive game (no model training), isolating the 2^n cost.
func BenchmarkExactShapley12(b *testing.B) {
	fn := func(coalition []int) float64 {
		s := 0.0
		for _, i := range coalition {
			s += float64(i)
		}
		return s
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := reward.ExactShapley(12, fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleRoot1k measures the tx-root computation for a
// 1000-transaction block.
func BenchmarkMerkleRoot1k(b *testing.B) {
	leaves := make([][]byte, 1000)
	rng := crypto.NewDRBGFromUint64(1, "bench")
	for i := range leaves {
		leaves[i] = rng.Bytes(32)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if crypto.MerkleRootOf(leaves).IsZero() {
			b.Fatal("zero root")
		}
	}
}
