// Package pds2 is a complete, self-contained Go implementation of PDS²
// ("PDS²: A user-centered decentralized marketplace for privacy
// preserving data processing", ICDE 2021): a proof-of-authority ledger
// with a deterministic smart-contract runtime as the governance layer,
// encrypted provider vaults and capability-granted storage nodes as the
// storage subsystem, simulated SGX-style enclaves with real attestation
// chains as the executors, gossip learning (with a federated baseline)
// as the decentralized aggregation layer, and Shapley-based reward
// schemes, model-based pricing, semantic data discovery, IoT data
// authenticity and differential-privacy release on top.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for the measured
// reproduction of every paper claim. The root package holds the
// benchmark harness (bench_test.go); the library lives under internal/
// and is exercised through the examples/ programs and cmd/ binaries.
package pds2
