// Pricing and rewards: the §IV-A open challenges, worked end to end.
//
// Five data providers contribute cohorts of very different quality
// (one is pure label noise). The example
//
//  1. attributes the trained model's value to providers with exact
//     Shapley, truncated Monte-Carlo Shapley and leave-one-out,
//
//  2. converts the attribution into token payouts, and
//
//  3. sells the resulting model on a noise-injected pricing curve
//     (Chen et al. [32]): bigger budgets buy more accurate models.
//
//     go run ./examples/pricing
package main

import (
	"fmt"
	"log"

	"pds2/internal/crypto"
	"pds2/internal/ml"
	"pds2/internal/reward"
)

const providers = 5

func main() {
	rng := crypto.NewDRBGFromUint64(21, "pricing")

	fmt.Println("PDS² pricing & rewards example")
	fmt.Println("==============================")

	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 1500, Dim: 8, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.3, rng)
	parts := train.PartitionIID(providers, rng)
	// Provider 4 sells garbage: labels flipped at random.
	for i := range parts[4].Y {
		if rng.Float64() < 0.5 {
			parts[4].Y[i] = -parts[4].Y[i]
		}
	}

	factory := func() ml.Model { return ml.NewLogisticModel(8, 1e-3) }
	fn := reward.DataValueFn(parts, test, factory, 2)

	// --- Attribution.
	exact, evalsExact, err := reward.ExactShapley(providers, fn)
	if err != nil {
		log.Fatal(err)
	}
	tmc, evalsTMC, err := reward.TMCShapley(providers, fn, 200, 0.02, rng)
	if err != nil {
		log.Fatal(err)
	}
	loo, evalsLOO, err := reward.LeaveOneOut(providers, fn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("value attribution (model trainings: exact=%d, tmc=%d, loo=%d):\n",
		evalsExact, evalsTMC, evalsLOO)
	fmt.Println("provider   exact-shapley  tmc-shapley  leave-one-out")
	for i := 0; i < providers; i++ {
		tag := ""
		if i == 4 {
			tag = "  <- noisy data"
		}
		fmt.Printf("   %d       %12.4f  %11.4f  %13.4f%s\n", i, exact[i], tmc[i], loo[i], tag)
	}

	// --- Payouts from a 100k budget.
	payouts := reward.Allocate(exact, 100_000)
	fmt.Println("\ntoken payouts from a 100000 budget (Shapley pro rata):")
	var total uint64
	for i, p := range payouts {
		total += p
		fmt.Printf("  provider %d: %d\n", i, p)
	}
	fmt.Printf("  total: %d (settles exactly)\n", total)

	// --- Model-based pricing.
	optimal := factory()
	ml.TrainEpochs(optimal, train, 5)
	base := ml.Accuracy(optimal, test)
	market, err := reward.NewModelMarket(optimal, 1_000, 1.5, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel market (optimal accuracy %.4f at price 1000):\n", base)
	curve, err := market.Curve([]uint64{50, 100, 250, 500, 1000}, test, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("price   noise-sigma   accuracy")
	for _, p := range curve {
		fmt.Printf("%5d   %11.3f   %.4f\n", p.Price, p.Sigma, p.Accuracy)
	}
	fmt.Println("\nthe cheaper the model, the noisier the copy — no free lunch for low-budget buyers")
}
