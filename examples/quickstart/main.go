// Quickstart: the smallest complete PDS² marketplace run.
//
// One consumer submits a training workload with an escrowed reward;
// three providers hold eligible sensor data in encrypted vaults; two
// TEE-backed executors train and aggregate the model; the governance
// layer verifies every step and settles the rewards.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pds2/internal/core"
)

func main() {
	res, err := core.Run(core.Scenario{
		Seed:        42,
		Providers:   3,
		Executors:   2,
		SamplesEach: 200,
		Budget:      90_000,
		ExecutorFee: 1_000, // 10% of the budget to executors
	})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("PDS² quickstart")
	fmt.Println("===============")
	fmt.Printf("workload contract : %s\n", res.Workload)
	fmt.Printf("final state       : %v\n", res.State)
	fmt.Printf("model accuracy    : %.4f (held-out test set)\n", res.Accuracy)
	fmt.Printf("chain height      : %d blocks, %d gas\n", res.Blocks, res.TotalGas)
	fmt.Printf("audit trail       : %d on-chain events\n", res.AuditEvents)
	fmt.Println("reward settlement :")
	var total uint64
	for addr, amount := range res.Payouts {
		total += amount
		fmt.Printf("  %s received %d tokens\n", addr.Short(), amount)
	}
	fmt.Printf("  (total %d = the escrowed budget, settled exactly)\n", total)

	if res.State != core.StateComplete {
		log.Fatalf("quickstart: expected a complete workload, got %v", res.State)
	}
}
