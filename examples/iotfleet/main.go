// IoT fleet: the user-centered scenario that motivates PDS² (§I, §IV-B).
//
// A fleet of smart devices produces signed, timestamped sensor readings.
// The example demonstrates the full §IV-B authenticity pipeline — forged,
// tampered, replayed and resold readings are rejected — then packages the
// authentic readings into a per-owner anomaly-detection dataset, lists it
// on the marketplace under semantic metadata, and sells it into a
// training workload.
//
//	go run ./examples/iotfleet
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"pds2/internal/crypto"
	"pds2/internal/device"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/ml"
	"pds2/internal/semantic"
	"pds2/internal/storage"
)

const (
	numOwners        = 4
	devicesPerOwner  = 25
	readingsPerOwner = 400
)

func main() {
	rng := crypto.NewDRBGFromUint64(7, "iotfleet")

	fmt.Println("PDS² IoT fleet example")
	fmt.Println("======================")

	// --- 1. Devices produce signed readings; the verifier filters them.
	fleet, err := device.NewFleet(numOwners*devicesPerOwner, "thermo", rng)
	if err != nil {
		log.Fatal(err)
	}
	verifier := device.NewVerifier(fleet.Registry)

	// Manufacturer trust (§IV-B "seal of quality"): a certified vendor's
	// endorsement admits new devices; a no-name vendor's does not.
	acme := device.NewManufacturer("acme", rng)
	policy := device.NewTrustPolicy(device.TrustBasic)
	policy.SetLevel(acme.Address(), device.TrustCertified)
	extra := device.New("thermo-extra", rng.Fork("extra"))
	if level, err := policy.AdmitDevice(fleet.Registry, acme.Endorse(extra)); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("device %s admitted via %s endorsement (%v vendor)\n",
			extra.Address().Short(), acme.Name, level)
	}
	shady := device.NewManufacturer("shady", rng)
	knockoff := device.New("thermo-clone", rng.Fork("clone"))
	if _, err := policy.AdmitDevice(fleet.Registry, shady.Endorse(knockoff)); err != nil {
		fmt.Printf("knockoff device refused: %v\n", err)
	}

	// Underlying sensor truth: an anomaly-detection dataset whose rows
	// become reading payloads.
	truth := ml.GenerateSensorReadings(numOwners*readingsPerOwner, 0.15, rng)

	var readings []device.Reading
	for i := 0; i < truth.Len(); i++ {
		d := fleet.Devices[i%len(fleet.Devices)]
		readings = append(readings, d.Produce(encodeRow(truth.X[i], truth.Y[i]), uint64(1000+i)))
	}
	// Attack mix: one forged, one tampered, one replayed, one resold.
	rogue := device.New("rogue", crypto.NewDRBGFromUint64(666, "rogue"))
	attacks := []device.Reading{rogue.Produce([]byte("fake"), 1)}
	tampered := readings[0]
	tampered.Payload = []byte("evil")
	attacks = append(attacks, tampered, readings[1],
		// Resale: the device that produced readings[2] re-signs the same
		// payload with a fresh sequence number.
		fleet.Devices[2].Produce(readings[2].Payload, 99_999))

	accepted, rejected := verifier.VerifyBatch(append(readings, attacks...), 0)
	fmt.Printf("readings submitted: %d honest + %d attacks\n", len(readings), len(attacks))
	fmt.Printf("accepted: %d, rejected: %d\n", len(accepted), len(rejected))
	if len(accepted) != len(readings) {
		log.Fatalf("authenticity filter wrong: %d accepted", len(accepted))
	}
	for idx, why := range rejected {
		fmt.Printf("  rejected #%d: %v\n", idx, why)
	}

	// --- 2. Owners package their verified readings into datasets.
	perOwner := make([]*ml.Dataset, numOwners)
	for o := range perOwner {
		perOwner[o] = &ml.Dataset{}
	}
	for i, r := range accepted {
		x, y, err := decodeRow(r.Payload)
		if err != nil {
			continue
		}
		owner := i % numOwners // devices are owned round-robin
		perOwner[owner].X = append(perOwner[owner].X, x)
		perOwner[owner].Y = append(perOwner[owner].Y, y)
	}

	// --- 3. Marketplace: owners sell, a consumer trains a detector.
	ids := make([]*identity.Identity, 0, numOwners+2)
	alloc := map[identity.Address]uint64{}
	for i := 0; i < numOwners+2; i++ {
		id := identity.New("actor", rng.Fork("id"))
		ids = append(ids, id)
		alloc[id.Address()] = 1_000_000
	}
	m, err := market.New(market.Config{Seed: 7, GenesisAlloc: alloc})
	if err != nil {
		log.Fatal(err)
	}
	node := storage.NewNode(storage.NewMemStore())
	consumer, err := market.NewConsumer(m, ids[0])
	if err != nil {
		log.Fatal(err)
	}
	executor, err := market.NewExecutor(m, ids[1], node)
	if err != nil {
		log.Fatal(err)
	}
	providers := make([]*market.Provider, numOwners)
	for o := 0; o < numOwners; o++ {
		providers[o], err = market.NewProvider(m, ids[2+o], node)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := providers[o].AddDataset(perOwner[o], semantic.Metadata{
			"category": semantic.String("sensor.vibration.anomaly"),
			"samples":  semantic.Number(float64(perOwner[o].Len())),
			"signed":   semantic.Bool(true),
		}); err != nil {
			log.Fatal(err)
		}
	}

	params := market.TrainerParams{Dim: uint64(truth.Dim()), Epochs: 5, Lambda: 1e-3}
	spec := &market.Spec{
		Predicate:      `category isa "sensor.vibration" and signed == true and samples >= 100`,
		MinProviders:   numOwners,
		MinItems:       numOwners,
		ExpiryHeight:   m.Height() + 10_000,
		ExecutorFeeBps: 500,
		Measurement:    market.TrainerMeasurement(params.Encode()),
		QAPub:          m.QA.PublicKey(),
		Params:         params.Encode(),
	}
	workload, err := consumer.SubmitWorkload(spec, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload %s submitted: %q\n", workload.Short(), spec.Predicate)

	for _, p := range providers {
		refs, err := p.EligibleData(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("provider %s: %d eligible datasets\n", p.ID.Address().Short(), len(refs))
		auths, err := p.Authorize(workload, executor.ID.Address(), refs, spec.ExpiryHeight)
		if err != nil {
			log.Fatal(err)
		}
		executor.Accept(workload, auths)
	}
	if err := executor.Register(workload); err != nil {
		log.Fatal(err)
	}
	if err := consumer.Start(workload); err != nil {
		log.Fatal(err)
	}
	payload, err := market.RunWorkloadExecution(workload, []*market.Executor{executor})
	if err != nil {
		log.Fatal(err)
	}
	if err := consumer.Finalize(workload); err != nil {
		log.Fatal(err)
	}

	model, scores, err := market.DecodeResultModel(payload, params.Lambda)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanomaly detector trained: accuracy %.4f on fresh sensor data\n",
		ml.Accuracy(model, ml.GenerateSensorReadings(2000, 0.15, rng)))
	fmt.Println("reward shares (by contributed samples):")
	for _, s := range scores {
		fmt.Printf("  owner %s contributed %d samples\n", s.Provider.Short(), s.Score)
	}
	st, _ := m.WorkloadStateOf(workload)
	fmt.Printf("workload state: %v\n", st)
}

// encodeRow/decodeRow pack one sensor row into a reading payload.
func encodeRow(x []float64, y float64) []byte {
	buf := make([]byte, 0, 8*(len(x)+2))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(x)))
	for _, v := range x {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(y))
	return buf
}

func decodeRow(b []byte) ([]float64, float64, error) {
	if len(b) < 16 {
		return nil, 0, fmt.Errorf("short payload")
	}
	n := binary.BigEndian.Uint64(b)
	if uint64(len(b)) != 8*(n+2) {
		return nil, 0, fmt.Errorf("bad payload size")
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*(1+uint64(i)):]))
	}
	y := math.Float64frombits(binary.BigEndian.Uint64(b[8*(n+1):]))
	return x, y, nil
}
