// Medical study: privacy-focused decentralized training (§III-C, §IV-D).
//
// Six hospitals hold patient data they cannot centralize. They train a
// shared diagnostic model with gossip learning over a simulated wide-area
// network — no coordinator ever sees raw data or even a global gradient —
// and compare it against a FedAvg baseline under the same conditions.
// Before releasing the model to the study sponsor, they measure the
// membership-inference leakage and apply differential privacy, showing
// the privacy/utility trade-off of §IV-D.
//
//	go run ./examples/medicalstudy
package main

import (
	"fmt"
	"log"

	"pds2/internal/crypto"
	"pds2/internal/fed"
	"pds2/internal/gossip"
	"pds2/internal/ml"
	"pds2/internal/privacy"
	"pds2/internal/simnet"
)

const hospitals = 6

func main() {
	rng := crypto.NewDRBGFromUint64(11, "medicalstudy")

	fmt.Println("PDS² medical study example")
	fmt.Println("==========================")

	// Patient cohorts: each hospital sees a biased slice (non-IID).
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 3000, Dim: 12, LabelNoise: 0.1}, rng)
	train, test := data.TrainTestSplit(0.25, rng)
	cohorts := train.PartitionByLabel(hospitals, rng)
	for i, c := range cohorts {
		fmt.Printf("hospital %d: %d patients (single-class cohort)\n", i+1, c.Len())
	}

	horizon := 1500 * simnet.Second

	// --- Gossip learning across hospitals: no coordinator.
	gnet := simnet.New(simnet.Config{
		Seed:    11,
		Latency: simnet.LogNormalLatency{Median: 40 * simnet.Millisecond, Sigma: 0.5},
	})
	gr, err := gossip.NewRunner(gnet, cohorts, gossip.Config{
		Cycle:        15 * simnet.Second,
		ModelFactory: func() ml.Model { return ml.NewLogisticModel(12, 1e-2) },
		Merge:        gossip.MergeAgeWeighted,
	})
	if err != nil {
		log.Fatal(err)
	}
	gr.Start()
	gnet.Run(horizon)
	gp := gr.Evaluate(test)
	fmt.Printf("\ngossip learning : mean error %.4f, %0.1f MB exchanged, no coordinator\n",
		gp.MeanError, float64(gnet.Stats().BytesSent)/1e6)

	// --- FedAvg baseline under identical conditions.
	fnet := simnet.New(simnet.Config{
		Seed:    11,
		Latency: simnet.LogNormalLatency{Median: 40 * simnet.Millisecond, Sigma: 0.5},
	})
	frt, err := fed.NewRunner(fnet, cohorts, fed.Config{
		Round:          15 * simnet.Second,
		ModelFactory:   func() ml.Model { return ml.NewLogisticModel(12, 1e-2) },
		ClientFraction: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	frt.Start()
	fnet.Run(horizon)
	server := fnet.NodeStats(frt.ServerID())
	fmt.Printf("fedavg baseline : global error %.4f, %0.1f MB exchanged, %0.1f MB through the coordinator\n",
		ml.ZeroOneError(frt.Global(), test),
		float64(fnet.Stats().BytesSent)/1e6,
		float64(server.BytesSent+server.BytesDelivered)/1e6)

	// --- Release with differential privacy: measure leakage first.
	// Use the best gossip node's model as the study artifact.
	models := gr.Models()
	best := models[0]
	for _, m := range models[1:] {
		if ml.ZeroOneError(m, test) < ml.ZeroOneError(best, test) {
			best = m
		}
	}
	members := ml.Concat(cohorts...)
	raw, err := privacy.MembershipAttack(best, members, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmembership-inference attack on the raw model: advantage %.3f (AUC %.3f)\n",
		raw.Advantage, raw.AUC)

	ledger := privacy.NewLedger(2.0, 1e-4)
	fmt.Println("releasing under differential privacy:")
	for _, eps := range []float64{1.0, 0.5} {
		released, err := privacy.ReleaseModelDP(best, 1.0, eps, 1e-5, ledger, rng)
		if err != nil {
			log.Fatal(err)
		}
		attacked, err := privacy.MembershipAttack(released, members, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  eps=%.1f: accuracy %.4f, attack advantage %.3f\n",
			eps, ml.Accuracy(released, test), attacked.Advantage)
	}
	spentEps, spentDelta := ledger.Spent()
	fmt.Printf("privacy budget spent: eps=%.2f delta=%.2g over %d releases\n",
		spentEps, spentDelta, ledger.Releases())

	// A third release would blow the budget: the ledger refuses it.
	if _, err := privacy.ReleaseModelDP(best, 1.0, 1.0, 1e-5, ledger, rng); err != nil {
		fmt.Printf("third release refused: %v\n", err)
	}
}
