GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# ci is the documented pre-PR gate: static checks, the full build, the
# race-enabled test suite (including the telemetry trace/log/health
# tests), a single-iteration smoke run of the ledger block-pipeline and
# structured-log benchmarks, and the distributed-tracing self-test —
# the two-node stitching demo must verify end to end.
ci: vet build
	$(GO) test -race ./...
	$(GO) test -run NONE -bench 'BenchmarkImportBlock|BenchmarkMempool|BenchmarkLedger|BenchmarkLog' -benchtime=1x .
	$(GO) run ./cmd/pds2 trace -self-test
