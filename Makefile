GO ?= go

.PHONY: build test race race-core vet bench proptest fuzz covgate load-smoke bench-compare diag-selftest pprof-smoke policy-smoke vm-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-core runs the race detector over just the packages that exercise
# the parallel block executor and the seal path — the fast feedback loop
# while iterating on scheduler or mempool code, and the fail-fast first
# stage of ci's race coverage.
race-core:
	$(GO) test -race ./internal/ledger/... ./internal/market/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# proptest runs the fixed-seed property-harness smoke: deterministic
# randomized histories checked against the global ledger invariants and
# the three-way differential replay oracle. Reproduce a failure with
# PDS2_PROPTEST_SEED=<seed> PDS2_PROPTEST_OPS=<ops> (see README).
proptest:
	$(GO) test ./internal/proptest/ -count=1

# fuzz gives each native fuzz target a short randomized budget on top
# of its checked-in seed corpus. Go allows one -fuzz pattern per
# invocation, hence one line per target.
fuzz:
	$(GO) test ./internal/ledger/ -run NONE -fuzz FuzzTxDecode -fuzztime 5s
	$(GO) test ./internal/ledger/ -run NONE -fuzz FuzzBlockImport -fuzztime 5s
	$(GO) test ./internal/contract/ -run NONE -fuzz FuzzEncoderRoundTrip -fuzztime 5s
	$(GO) test ./internal/vm/ -run NONE -fuzz FuzzCompile -fuzztime 5s
	$(GO) test ./internal/vm/ -run NONE -fuzz FuzzVMExecute -fuzztime 5s

# covgate fails if ledger/contract/token statement coverage drops below
# the recorded floors (see scripts/covgate.sh to ratchet them up).
covgate:
	./scripts/covgate.sh

# load-smoke self-hosts a node and drives it over real HTTP with the
# open-loop load harness for 30 seconds, failing on any SLO breach
# (throughput floor, p99 ceiling, error rate). The report lands outside
# the tree so a smoke run never dirties checked-in BENCH_*.json history;
# full-scale baselines are produced explicitly with `go run ./cmd/pds2-load`.
load-smoke:
	$(GO) run ./cmd/pds2-load -accounts 5000 -workers 8 -rate 300 -duration 30s \
		-slo-tx-per-sec 50 -slo-p99-ms 250 -slo-error-rate 0.02 \
		-out $${TMPDIR:-/tmp}/pds2-load-smoke

# bench-compare diffs the newest two checked-in BENCH_*.json reports and
# fails on a >10% committed-throughput regression.
bench-compare:
	./scripts/bench_compare.sh

# diag-selftest spins up a node with pprof, metrics history and the
# runtime sampler enabled, drives parallel-execution traffic, captures
# a flight-recorder bundle over the real HTTP API and asserts it is
# complete: every artifact present and parseable, a dense
# mempool-depth history series, and CPU samples labeled by component.
diag-selftest:
	$(GO) run ./cmd/pds2 diag -self-test

# policy-smoke runs the usage-control end-to-end: a mixed market where
# policy-bearing workloads settle, a forbidden dataset is denied at the
# match layer, every decision lands on-chain, and the offline replay
# re-derives each one — plus the three-layer denial test and the API
# round trips for the /v1/datasets + /v1/policies surface.
policy-smoke:
	$(GO) test -count=1 ./internal/market/ -run 'TestPolicySmokeLifecycle|TestPolicyDeniedAtAllThreeLayers'
	$(GO) test -count=1 ./internal/api/ -run 'TestDatasetAPILifecycle|TestPolicyDenialEnvelope|TestPolicyDecisionsPaginationWalk'

# vm-smoke is the bytecode-engine gate: the compiler/VM differential
# suite (tree-walking oracle vs gas-metered VM over hand-written and
# seeded random programs), the built-in-policy equivalence acceptance
# test — the DSL re-expression of the declarative engine must produce
# bit-identical decision records, events and consumption through a full
# settled lifecycle — the VM three-layer denial and deploy-gate tests,
# and the six-mode proptest replay (vm mode re-executes every deployed
# program under the reference interpreter), all under -race.
vm-smoke:
	$(GO) test -race -count=1 ./internal/vm/ ./internal/semantic/
	$(GO) test -race -count=1 ./internal/market/ -run 'TestVMBuiltinPolicyEquivalence|TestVMPolicy'
	$(GO) test -race -count=1 ./internal/proptest/ -run 'TestVMPolicyReplay'
	$(GO) test -race -count=1 ./internal/api/ -run 'TestDeployContractAPI'

# pprof-smoke exercises the profiling and history endpoints (guard
# behaviour, gzip integrity, history windowing) and the diag bundle
# capture/verify paths under the race detector.
pprof-smoke:
	$(GO) test -race -count=1 ./internal/api/ -run 'TestPprof|TestMetricsHistory|TestMetricsAndTraceDisabled'
	$(GO) test -race -count=1 ./internal/diag/

# ci is the documented pre-PR gate: static checks, the full build, a
# fail-fast race pass over the parallel-executor packages followed by
# the full race-enabled test suite (including the telemetry
# trace/log/health tests), a single-iteration smoke run of the ledger
# block-pipeline, structured-log and parallel-execution benchmarks (the
# parallel smoke asserts root equality with serial on every
# configuration), the distributed-tracing self-test — the
# two-node stitching demo must verify end to end — a seeded chaos
# smoke (the quick E15 subset drives the full workload lifecycle
# through fault-injected client and server and must converge), the
# fixed-seed property-harness smoke with differential replay, the
# usage-control policy smoke (three-layer enforcement, on-chain
# decision events, offline replay, API round trips), the bytecode-VM
# smoke (differential oracle agreement, built-in-policy bit-identical
# equivalence, deploy gates) under -race, a short
# randomized pass over each fuzz target, the pprof/history endpoint
# smoke under -race, the diag flight-recorder self-test (capture a
# bundle from a live node and assert every artifact is present,
# parseable and component-labeled), a 30-second open-loop load smoke
# against a self-hosted node (SLO-gated), the BENCH_*.json regression
# diff, and the coverage ratchet.
ci: vet build
	$(MAKE) race-core
	$(GO) test -race ./...
	$(GO) test -run NONE -bench 'BenchmarkImportBlock|BenchmarkMempool|BenchmarkLedger|BenchmarkLog' -benchtime=1x .
	$(GO) test -run NONE -bench BenchmarkParallelExecute -benchtime=1x ./internal/ledger/
	$(GO) run ./cmd/pds2 trace -self-test
	$(GO) run ./cmd/pds2-experiments -quick -telemetry=false -run E15
	$(MAKE) proptest
	$(MAKE) policy-smoke
	$(MAKE) vm-smoke
	$(MAKE) fuzz
	$(MAKE) pprof-smoke
	$(MAKE) diag-selftest
	$(MAKE) load-smoke
	$(MAKE) bench-compare
	$(MAKE) covgate
