GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# ci is the documented pre-PR gate: static checks, the full build, the
# race-enabled test suite, and a single-iteration smoke run of the
# ledger block-pipeline benchmarks so the import/mempool hot paths are
# exercised end to end.
ci: vet build
	$(GO) test -race ./...
	$(GO) test -run NONE -bench 'BenchmarkImportBlock|BenchmarkMempool|BenchmarkLedger' -benchtime=1x .
