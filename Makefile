GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# ci is the documented pre-PR gate: static checks, the full build, the
# race-enabled test suite (including the telemetry trace/log/health
# tests), a single-iteration smoke run of the ledger block-pipeline and
# structured-log benchmarks, the distributed-tracing self-test — the
# two-node stitching demo must verify end to end — and a seeded chaos
# smoke: the quick E15 subset drives the full workload lifecycle
# through fault-injected client and server and must converge.
ci: vet build
	$(GO) test -race ./...
	$(GO) test -run NONE -bench 'BenchmarkImportBlock|BenchmarkMempool|BenchmarkLedger|BenchmarkLog' -benchtime=1x .
	$(GO) run ./cmd/pds2 trace -self-test
	$(GO) run ./cmd/pds2-experiments -quick -telemetry=false -run E15
