package vm

import (
	"fmt"
	"strings"

	"pds2/internal/policy"
)

// BuiltinPolicySource re-expresses a five-clause declarative policy as
// policy-program source, clause for clause in policy.Evaluate's order
// and with its exact comparison operators and decision codes. A dataset
// bound to Compile(BuiltinPolicySource(p)) decides identically to one
// bound to p itself — the differential acceptance test in
// internal/market pins the decision records, events, and invocation
// accounting byte for byte.
func BuiltinPolicySource(p *policy.Policy) string {
	if p == nil || p.IsZero() {
		return "allow\n"
	}
	var sb strings.Builder
	if p.ExpiryHeight > 0 {
		fmt.Fprintf(&sb, "if height > %d { deny %q %q }\n",
			p.ExpiryHeight, policy.CodeExpired, policy.ClauseExpiry)
	}
	if len(p.AllowedClasses) > 0 {
		fmt.Fprintf(&sb, "if not (%s) { deny %q %q }\n",
			membership("class", p.AllowedClasses), policy.CodeClassForbidden, policy.ClauseClasses)
	}
	if len(p.Purposes) > 0 {
		fmt.Fprintf(&sb, "if not (%s) { deny %q %q }\n",
			membership("purpose", p.Purposes), policy.CodePurposeMismatch, policy.ClausePurposes)
	}
	if p.MinAggregation > 0 {
		fmt.Fprintf(&sb, "if agg < %d { deny %q %q }\n",
			p.MinAggregation, policy.CodeAggregationFloor, policy.ClauseAggregation)
	}
	if p.MaxInvocations > 0 {
		fmt.Fprintf(&sb, "if uses >= %d { deny %q %q }\n",
			p.MaxInvocations, policy.CodeExhausted, policy.ClauseInvocations)
	}
	sb.WriteString("allow\n")
	return sb.String()
}

// membership renders `field == "a" or field == "b" or …`.
func membership(field string, values []string) string {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = fmt.Sprintf("%s == %s", field, quote(v))
	}
	return strings.Join(parts, " or ")
}

// quote renders a string literal in the policy language's escape
// syntax (backslash escapes the next byte verbatim).
func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
	return sb.String()
}

// CompilePolicy builds the deployable artifact of a declarative policy.
func CompilePolicy(p *policy.Policy) ([]byte, error) {
	return BuildSource(BuiltinPolicySource(p))
}
