package vm

import (
	"reflect"
	"testing"

	"pds2/internal/semantic"
)

// benchSrc is a dispatch-heavy but host-light program: arithmetic,
// comparisons, short-circuit logic and a 32-iteration loop, with a
// couple of state writes so host calls are represented without
// dominating. ~600 dispatched opcodes per execution.
const benchSrc = `
	let n = 0
	let s = "c:" + class
	for i = 1 to 32 {
		n = n + i * 2 - 1
		if i % 4 == 0 and n > 10 { n = n - 1 }
	}
	store("n", n)
	if n >= 0 or s contains "train" { allow }
	deny "bench" ""`

// BenchmarkVMDispatch measures the bytecode dispatch loop. Root-checked:
// every iteration's outcome is compared against the reference
// interpreter's verdict and final state captured before the loop — a
// wrong result fails the benchmark rather than timing garbage.
func BenchmarkVMDispatch(b *testing.B) {
	prog := semantic.MustParseProgram(benchSrc)
	mod, err := Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	req := semantic.Request{Layer: "match", Class: "train", Aggregation: 4, Height: 9}

	refHost := newDiffHost(1<<30, req, nil)
	wantVerdict, err := semantic.RunProgram(prog, refHost)
	if err != nil {
		b.Fatal(err)
	}
	wantState := refHost.state
	gasPerRun := uint64(1<<30) - refHost.gas
	var steps uint64
	{
		h := newDiffHost(1<<30, req, nil)
		v, err := Execute(mod, h)
		if err != nil || v != wantVerdict || !reflect.DeepEqual(h.state, wantState) {
			b.Fatalf("vm outcome diverges from reference: %v %v", v, err)
		}
		steps = mSteps.Value()
	}
	prev := mSteps.Value()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := newDiffHost(gasPerRun, req, nil)
		v, err := Execute(mod, h)
		if err != nil {
			b.Fatal(err)
		}
		if v != wantVerdict {
			b.Fatalf("verdict diverged: %+v", v)
		}
	}
	b.StopTimer()
	if steps > 0 {
		b.ReportMetric(float64(mSteps.Value()-prev)/float64(b.N), "ops/exec")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(mSteps.Value()-prev), "ns/dispatch")
	}
}

// BenchmarkReferenceInterp is the tree-walking baseline for the same
// program, so the speedup (or cost) of compilation is visible in one
// bench run.
func BenchmarkReferenceInterp(b *testing.B) {
	prog := semantic.MustParseProgram(benchSrc)
	req := semantic.Request{Layer: "match", Class: "train", Aggregation: 4, Height: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := newDiffHost(1<<30, req, nil)
		if _, err := semantic.RunProgram(prog, h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures source→module lowering.
func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileSource(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}
