package vm

import (
	"errors"
	"regexp"
	"testing"

	"pds2/internal/contract"
	"pds2/internal/semantic"
)

var positionedErr = regexp.MustCompile(` at \d+`)

// FuzzCompile feeds arbitrary source through the full
// lexer→parser→lower pipeline: no input may panic, every rejection must
// carry a byte position, and every accepted program must round-trip
// through the artifact container and re-verify against its own source.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		`allow`,
		`deny "class_forbidden" clauseof("class_forbidden")`,
		`let x = 1 + 2 if x > agg { allow } deny "a" ""`,
		`for i = 0 to 5 { store("k" + class, i) emit("t", i) }`,
		`let c = evaluate("train", 1, 0, "", 2) deny c clauseof(c)`,
		`if (load("x") == false) and height < 10 { allow }`,
		"", `let`, `if { }`, `for i = to { }`, `deny`, `emit(`,
		`let x = ((((1))))`, `allow }`, `𝛼 = 1`, "let x = \"\\",
	}
	for seed := uint64(0); seed < 12; seed++ {
		seeds = append(seeds, GenSource(seed))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		mod, err := CompileSource(src)
		if err != nil {
			if !positionedErr.MatchString(err.Error()) {
				t.Fatalf("unpositioned rejection of %q: %v", src, err)
			}
			return
		}
		art := mod.Encode()
		back, err := Decode(art)
		if err != nil {
			t.Fatalf("decode of fresh artifact failed for %q: %v", src, err)
		}
		if err := VerifySource(back); err != nil {
			t.Fatalf("VerifySource of fresh artifact failed for %q: %v", src, err)
		}
	})
}

// FuzzVMExecute feeds arbitrary bytes both through the container
// decoder (malformed frames must be rejected without panicking) and —
// reinterpreted as a raw code section — through the static verifier and
// the interpreter: verified code must never panic, never escape its gas
// budget, and always terminate.
func FuzzVMExecute(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		mod, err := CompileSource(GenSource(seed))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(mod.Encode())
		f.Add(mod.Code)
	}
	f.Add([]byte{byte(OpLoop), 0, 0})
	f.Add([]byte{byte(OpPush), 0, 0, byte(OpDeny)})
	consts := []semantic.Value{
		semantic.String("t"), semantic.Number(2), semantic.Bool(true),
		semantic.String("class_forbidden"), semantic.Number(-1),
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Container path: decode arbitrary frames.
		if mod, err := Decode(data); err == nil {
			execBounded(t, mod)
		}
		// Raw-code path: the checksum makes whole-container fuzzing
		// mostly exercise rejection, so also treat the input as a bare
		// code section over a fixed pool to reach the interpreter.
		mod := &Module{NumLocals: 4, Consts: consts, Code: data}
		if err := Verify(mod); err != nil {
			return
		}
		execBounded(t, mod)
	})
}

func execBounded(t *testing.T, mod *Module) {
	const budget = 200_000
	h := newDiffHost(budget, semantic.Request{
		Layer: "match", Class: "train", Aggregation: 2, Height: 5,
	}, nil)
	_, err := Execute(mod, h)
	if h.gas > budget {
		t.Fatalf("gas increased: %d > %d", h.gas, budget)
	}
	if errors.Is(err, contract.ErrOutOfGas) && h.gas != 0 {
		t.Fatalf("out-of-gas with %d gas left", h.gas)
	}
}
