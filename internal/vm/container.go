package vm

import (
	"bytes"
	"fmt"
	"math"

	"pds2/internal/crypto"
	"pds2/internal/semantic"
)

// The pds2/bytecode/v1 container is the deployable artifact format:
//
//	magic    "PDS2BC"                     6 bytes
//	version  u16                          (1)
//	nlocals  u8
//	nconsts  u16, then tagged constants   (1=string u16+bytes,
//	                                       2=number 8-byte IEEE bits,
//	                                       3=bool 1 byte)
//	codelen  u32, then code
//	srclen   u32, then embedded source
//	checksum crypto.Digest over everything above
//
// Decode rejects malformed frames the way chainstore rejects bad
// segments: size caps first, checksum second, then full static
// verification of the code. The embedded source makes artifacts
// self-describing and lets deployPolicy re-compile and require
// byte-identical output (VerifySource), so anything executing on-chain
// provably corresponds to auditable source text.

// FormatName is the human-readable name of the container format,
// printed by tooling (pds2 compile) and documentation.
const FormatName = "pds2/bytecode/v1"

// Container limits. Oversized frames are rejected before any parsing.
const (
	Version     = 1
	MaxConsts   = 4096
	MaxCodeSize = 1 << 16
	MaxSrcSize  = 1 << 15
	MaxArtifact = 1 << 17
	// MaxStack bounds the operand stack. Compiled code cannot reach it
	// (semantic.MaxParseDepth bounds expression nesting well below),
	// so it only trips on hand-forged bytecode.
	MaxStack = 512
)

var magic = []byte("PDS2BC")

// Module is a decoded bytecode program.
type Module struct {
	NumLocals int
	Consts    []semantic.Value
	Code      []byte
	Source    string
}

// Checksum returns the content digest of the encoded module.
func (m *Module) Checksum() crypto.Digest {
	return crypto.HashBytes(m.encodeBody())
}

func (m *Module) encodeBody() []byte {
	var buf bytes.Buffer
	buf.Write(magic)
	buf.WriteByte(byte(Version >> 8))
	buf.WriteByte(byte(Version))
	buf.WriteByte(byte(m.NumLocals))
	buf.WriteByte(byte(len(m.Consts) >> 8))
	buf.WriteByte(byte(len(m.Consts)))
	for _, v := range m.Consts {
		switch v.Kind {
		case semantic.KindString:
			buf.WriteByte(1)
			buf.WriteByte(byte(len(v.S) >> 8))
			buf.WriteByte(byte(len(v.S)))
			buf.WriteString(v.S)
		case semantic.KindNumber:
			buf.WriteByte(2)
			bits := math.Float64bits(v.N)
			for i := 7; i >= 0; i-- {
				buf.WriteByte(byte(bits >> (8 * i)))
			}
		default:
			buf.WriteByte(3)
			if v.B {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		}
	}
	writeU32(&buf, len(m.Code))
	buf.Write(m.Code)
	writeU32(&buf, len(m.Source))
	buf.WriteString(m.Source)
	return buf.Bytes()
}

func writeU32(buf *bytes.Buffer, v int) {
	buf.WriteByte(byte(v >> 24))
	buf.WriteByte(byte(v >> 16))
	buf.WriteByte(byte(v >> 8))
	buf.WriteByte(byte(v))
}

// Encode serializes the module as a pds2/bytecode/v1 artifact.
func (m *Module) Encode() []byte {
	body := m.encodeBody()
	sum := crypto.HashBytes(body)
	return append(body, sum[:]...)
}

type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) take(n int) ([]byte, error) {
	if d.pos+n > len(d.b) {
		return nil, fmt.Errorf("vm: truncated artifact at byte %d", d.pos)
	}
	out := d.b[d.pos : d.pos+n]
	d.pos += n
	return out, nil
}

func (d *decoder) u8() (int, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return int(b[0]), nil
}

func (d *decoder) u16() (int, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return int(b[0])<<8 | int(b[1]), nil
}

func (d *decoder) u32() (int, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3]), nil
}

// Decode parses and statically verifies a pds2/bytecode/v1 artifact.
func Decode(artifact []byte) (*Module, error) {
	if len(artifact) > MaxArtifact {
		return nil, fmt.Errorf("vm: artifact exceeds %d bytes", MaxArtifact)
	}
	if len(artifact) < len(magic)+2+crypto.HashSize {
		return nil, fmt.Errorf("vm: artifact too short")
	}
	body, sumRaw := artifact[:len(artifact)-crypto.HashSize], artifact[len(artifact)-crypto.HashSize:]
	if sum := crypto.HashBytes(body); !bytes.Equal(sum[:], sumRaw) {
		return nil, fmt.Errorf("vm: artifact checksum mismatch")
	}
	d := &decoder{b: body}
	mg, err := d.take(len(magic))
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(mg, magic) {
		return nil, fmt.Errorf("vm: bad magic")
	}
	ver, err := d.u16()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("vm: unsupported bytecode version %d", ver)
	}
	m := &Module{}
	if m.NumLocals, err = d.u8(); err != nil {
		return nil, err
	}
	nconsts, err := d.u16()
	if err != nil {
		return nil, err
	}
	if nconsts > MaxConsts {
		return nil, fmt.Errorf("vm: constant pool exceeds %d entries", MaxConsts)
	}
	m.Consts = make([]semantic.Value, nconsts)
	for i := range m.Consts {
		tag, err := d.u8()
		if err != nil {
			return nil, err
		}
		switch tag {
		case 1:
			n, err := d.u16()
			if err != nil {
				return nil, err
			}
			s, err := d.take(n)
			if err != nil {
				return nil, err
			}
			m.Consts[i] = semantic.String(string(s))
		case 2:
			raw, err := d.take(8)
			if err != nil {
				return nil, err
			}
			var bits uint64
			for _, b := range raw {
				bits = bits<<8 | uint64(b)
			}
			m.Consts[i] = semantic.Number(math.Float64frombits(bits))
		case 3:
			b, err := d.u8()
			if err != nil {
				return nil, err
			}
			m.Consts[i] = semantic.Bool(b != 0)
		default:
			return nil, fmt.Errorf("vm: unknown constant tag %d at byte %d", tag, d.pos-1)
		}
	}
	codeLen, err := d.u32()
	if err != nil {
		return nil, err
	}
	if codeLen > MaxCodeSize {
		return nil, fmt.Errorf("vm: code exceeds %d bytes", MaxCodeSize)
	}
	code, err := d.take(codeLen)
	if err != nil {
		return nil, err
	}
	m.Code = code
	srcLen, err := d.u32()
	if err != nil {
		return nil, err
	}
	if srcLen > MaxSrcSize {
		return nil, fmt.Errorf("vm: source exceeds %d bytes", MaxSrcSize)
	}
	src, err := d.take(srcLen)
	if err != nil {
		return nil, err
	}
	m.Source = string(src)
	if d.pos != len(body) {
		return nil, fmt.Errorf("vm: %d trailing bytes in artifact", len(body)-d.pos)
	}
	if err := Verify(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Verify statically checks module code: instruction boundaries, operand
// bounds, jump discipline (forward-only jumps, backward-only loop
// edges, targets on instruction boundaries), and a halting final
// instruction. Verified code cannot read outside the constant pool or
// locals, cannot jump into the middle of an instruction, and — because
// only OpLoop moves the pc backward and the interpreter counts those —
// always terminates.
func Verify(m *Module) error {
	if m.NumLocals > semantic.MaxLocals {
		return fmt.Errorf("vm: %d locals exceeds %d", m.NumLocals, semantic.MaxLocals)
	}
	if len(m.Code) == 0 {
		return fmt.Errorf("vm: empty code")
	}
	if len(m.Code) > MaxCodeSize {
		return fmt.Errorf("vm: code exceeds %d bytes", MaxCodeSize)
	}
	if len(m.Consts) > MaxConsts {
		return fmt.Errorf("vm: constant pool exceeds %d entries", MaxConsts)
	}
	boundary := make([]bool, len(m.Code)+1)
	type jmp struct {
		at     int
		target int
		back   bool
	}
	var jumps []jmp
	lastOp := opInvalid
	for pc := 0; pc < len(m.Code); {
		boundary[pc] = true
		op := Op(m.Code[pc])
		w := operandWidth(op)
		if w < 0 {
			return fmt.Errorf("vm: invalid opcode 0x%02x at %d", byte(op), pc)
		}
		if pc+1+w > len(m.Code) {
			return fmt.Errorf("vm: truncated operand at %d", pc)
		}
		switch op {
		case OpPush:
			idx := int(m.Code[pc+1])<<8 | int(m.Code[pc+2])
			if idx >= len(m.Consts) {
				return fmt.Errorf("vm: constant %d out of range at %d", idx, pc)
			}
		case OpLoadLocal, OpStoreLocal:
			if int(m.Code[pc+1]) >= m.NumLocals {
				return fmt.Errorf("vm: local %d out of range at %d", m.Code[pc+1], pc)
			}
		case OpLoadReq:
			if int(m.Code[pc+1]) >= int(semantic.NumReqFields) {
				return fmt.Errorf("vm: request field %d out of range at %d", m.Code[pc+1], pc)
			}
		case OpEmit:
			idx := int(m.Code[pc+1])<<8 | int(m.Code[pc+2])
			if idx >= len(m.Consts) {
				return fmt.Errorf("vm: constant %d out of range at %d", idx, pc)
			}
			if m.Consts[idx].Kind != semantic.KindString {
				return fmt.Errorf("vm: emit topic constant %d is not a string at %d", idx, pc)
			}
			if int(m.Code[pc+3]) > semantic.MaxEmitArgs {
				return fmt.Errorf("vm: emit arity %d exceeds %d at %d", m.Code[pc+3], semantic.MaxEmitArgs, pc)
			}
		case OpJump, OpJumpFalse, OpJumpTrue, OpLoop:
			target := int(m.Code[pc+1])<<8 | int(m.Code[pc+2])
			jumps = append(jumps, jmp{at: pc, target: target, back: op == OpLoop})
		}
		lastOp = op
		pc += 1 + w
	}
	switch lastOp {
	case OpAllow, OpDeny, OpLoop:
		// Execution cannot fall off the end.
	default:
		return fmt.Errorf("vm: final instruction %s does not halt", lastOp)
	}
	for _, j := range jumps {
		if j.target >= len(m.Code) || !boundary[j.target] {
			return fmt.Errorf("vm: jump target %d at %d is not an instruction", j.target, j.at)
		}
		if j.back && j.target > j.at {
			return fmt.Errorf("vm: loop edge at %d jumps forward to %d", j.at, j.target)
		}
		if !j.back && j.target <= j.at {
			return fmt.Errorf("vm: jump at %d is not strictly forward (target %d)", j.at, j.target)
		}
	}
	return nil
}

// VerifySource recompiles the embedded source and requires byte-exact
// equality with the module — the deploy-time proof that on-chain
// bytecode corresponds to its auditable source.
func VerifySource(m *Module) error {
	ref, err := CompileSource(m.Source)
	if err != nil {
		return fmt.Errorf("vm: embedded source does not compile: %w", err)
	}
	if ref.NumLocals != m.NumLocals || len(ref.Consts) != len(m.Consts) ||
		!bytes.Equal(ref.Code, m.Code) {
		return fmt.Errorf("vm: bytecode does not match embedded source")
	}
	for i := range ref.Consts {
		if !ref.Consts[i].Equal(m.Consts[i]) {
			return fmt.Errorf("vm: bytecode does not match embedded source")
		}
	}
	return nil
}

// BuildSource compiles source straight to an encoded artifact.
func BuildSource(src string) ([]byte, error) {
	m, err := CompileSource(src)
	if err != nil {
		return nil, err
	}
	return m.Encode(), nil
}

// Disasm renders the code section as one instruction per line.
func Disasm(m *Module) string {
	var buf bytes.Buffer
	for pc := 0; pc < len(m.Code); {
		op := Op(m.Code[pc])
		w := operandWidth(op)
		if w < 0 || pc+1+w > len(m.Code) {
			fmt.Fprintf(&buf, "%04d\t??\n", pc)
			break
		}
		fmt.Fprintf(&buf, "%04d\t%s", pc, op)
		switch op {
		case OpPush:
			idx := int(m.Code[pc+1])<<8 | int(m.Code[pc+2])
			fmt.Fprintf(&buf, "\t%d\t; %s", idx, m.Consts[idx])
		case OpLoadLocal, OpStoreLocal, OpLoadReq:
			fmt.Fprintf(&buf, "\t%d", m.Code[pc+1])
			if op == OpLoadReq {
				fmt.Fprintf(&buf, "\t; %s", semantic.ReqField(m.Code[pc+1]))
			}
		case OpJump, OpJumpFalse, OpJumpTrue, OpLoop:
			fmt.Fprintf(&buf, "\t%d", int(m.Code[pc+1])<<8|int(m.Code[pc+2]))
		case OpEmit:
			idx := int(m.Code[pc+1])<<8 | int(m.Code[pc+2])
			fmt.Fprintf(&buf, "\t%d args\t; topic %s", m.Code[pc+3], m.Consts[idx])
		}
		buf.WriteByte('\n')
		pc += 1 + w
	}
	return buf.String()
}
