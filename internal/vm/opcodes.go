// Package vm compiles the internal/semantic program dialect to a small
// stack-machine bytecode and executes it with a deterministic,
// gas-metered interpreter. The VM charges semantic.CostStep per opcode
// against the journaled contract runtime's gas accounting, so an
// out-of-gas program reverts through the journal like any other
// contract failure. Correctness is established differentially: every
// value operation, host call, and error string is shared with the
// reference tree-walking evaluator (semantic.RunProgram), and the
// compiler's opcode layout mirrors the reference evaluator's charge
// discipline exactly — verdicts, state writes, events, errors, and the
// precise gas-exhaustion point must all agree, and the test suite
// enforces it on randomized programs.
package vm

// Op is one bytecode opcode. Operand widths are fixed per opcode:
// u16 big-endian for constant indexes and jump targets, u8 for local
// slots, request fields and emit arity.
type Op byte

// The instruction set. Control flow is split into forward-only jumps
// (OpJump/OpJumpFalse/OpJumpTrue) and the backward-only loop edge
// (OpLoop): the static verifier enforces the directions, and the
// interpreter counts OpLoop executions against semantic.MaxLoopIters —
// together with gas metering this proves every program terminates.
const (
	opInvalid Op = iota

	// OpPush pushes constant-pool entry u16.
	OpPush
	// OpLoadLocal pushes local slot u8.
	OpLoadLocal
	// OpStoreLocal pops into local slot u8.
	OpStoreLocal
	// OpLoadReq pushes request field u8 (semantic.ReqField order).
	OpLoadReq

	// OpNot / OpNeg apply the unary operators.
	OpNot
	OpNeg

	// Binary operators: pop y, pop x, push x∘y.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
	OpIsa

	// OpJump jumps forward to absolute offset u16.
	OpJump
	// OpJumpFalse pops a bool and jumps forward when false.
	OpJumpFalse
	// OpJumpTrue pops a bool and jumps forward when true.
	OpJumpTrue
	// OpLoop jumps backward to absolute offset u16 (counted loop edge).
	OpLoop

	// OpLoad pops a key and pushes the stored value (host call).
	OpLoad
	// OpStore pops value then key and writes the partition (host call).
	OpStore
	// OpEmit emits topic constant u16 with u8 popped args (host call).
	OpEmit
	// OpEvalPolicy pops the five evaluate() args and pushes the
	// decision code (host call into policy.Evaluate).
	OpEvalPolicy
	// OpClauseOf pops a decision code and pushes its clause.
	OpClauseOf

	// OpAllow halts with the allow verdict.
	OpAllow
	// OpDeny pops clause then code and halts with a deny verdict.
	OpDeny

	opMax // one past the last valid opcode
)

var opNames = map[Op]string{
	OpPush: "push", OpLoadLocal: "loadl", OpStoreLocal: "storel",
	OpLoadReq: "loadreq", OpNot: "not", OpNeg: "neg",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpContains: "contains", OpIsa: "isa",
	OpJump: "jmp", OpJumpFalse: "jf", OpJumpTrue: "jt", OpLoop: "loop",
	OpLoad: "load", OpStore: "store", OpEmit: "emit",
	OpEvalPolicy: "evalpolicy", OpClauseOf: "clauseof",
	OpAllow: "allow", OpDeny: "deny",
}

// String returns the mnemonic.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return "invalid"
}

// binOpName maps binary opcodes to the shared semantic.ApplyBinary
// operator names, which keeps error text identical across engines. An
// array, not a map: it sits on the dispatch hot path.
var binOpName = [opMax]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpContains: "contains", OpIsa: "isa",
}

var binOpFor = map[string]Op{}

func init() {
	for op, name := range binOpName {
		if name != "" {
			binOpFor[name] = Op(op)
		}
	}
}

// operandWidth returns the operand byte count of an opcode, or -1 for
// invalid opcodes.
func operandWidth(o Op) int {
	switch o {
	case OpPush, OpJump, OpJumpFalse, OpJumpTrue, OpLoop:
		return 2
	case OpLoadLocal, OpStoreLocal, OpLoadReq:
		return 1
	case OpEmit:
		return 3 // u16 topic constant + u8 arity
	}
	if o > opInvalid && o < opMax {
		return 0
	}
	return -1
}
