package vm

import (
	"fmt"
	"strings"

	"pds2/internal/crypto"
)

// GenSource deterministically generates a random well-typed policy
// program from a seed — the input side of the differential harness and
// of the proptest vm-policy op. Programs exercise every construct
// (locals, arithmetic, string ops, short-circuit logic, conditionals,
// nested bounded loops, load/store, emit, clauseof, evaluate, deny) and
// are type-correct by construction, so on a sufficiently large gas
// budget they run to a verdict rather than a type error; runtime
// errors remain reachable through gas exhaustion, which is exactly the
// boundary the differential tests sweep.
func GenSource(seed uint64) string {
	g := &gen{rng: crypto.NewDRBGFromUint64(seed, "vm.gensource")}
	var sb strings.Builder
	n := 2 + g.rng.Intn(5)
	for i := 0; i < n; i++ {
		g.stmt(&sb, 0)
	}
	// Terminal statement: half the programs end with an explicit
	// verdict, the rest fall off the end (implicit allow).
	switch g.rng.Intn(4) {
	case 0:
		sb.WriteString("allow\n")
	case 1:
		fmt.Fprintf(&sb, "deny %s clauseof(%s)\n", g.codeLit(), g.codeLit())
	}
	return sb.String()
}

type genType int

const (
	tNum genType = iota
	tStr
	tBool
)

type gen struct {
	rng  *crypto.DRBG
	vars []struct {
		name string
		typ  genType
	}
	nvars int
	loops int
}

func (g *gen) varsOf(t genType) []string {
	var out []string
	for _, v := range g.vars {
		if v.typ == t {
			out = append(out, v.name)
		}
	}
	return out
}

var genCodes = []string{
	"ok", "policy_expired", "class_forbidden",
	"purpose_mismatch", "aggregation_floor", "invocations_exhausted",
}

func (g *gen) codeLit() string {
	return fmt.Sprintf("%q", genCodes[g.rng.Intn(len(genCodes))])
}

func (g *gen) stmt(sb *strings.Builder, depth int) {
	if g.nvars >= 24 {
		depth = 99 // stop growing; only simple statements below
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		t := genType(g.rng.Intn(3))
		name := fmt.Sprintf("v%d", g.nvars)
		g.nvars++
		fmt.Fprintf(sb, "let %s = %s\n", name, g.expr(t, 0))
		g.vars = append(g.vars, struct {
			name string
			typ  genType
		}{name, t})
	case 3:
		if len(g.vars) == 0 {
			sb.WriteString("emit(\"tick\")\n")
			return
		}
		v := g.vars[g.rng.Intn(len(g.vars))]
		fmt.Fprintf(sb, "%s = %s\n", v.name, g.expr(v.typ, 0))
	case 4, 5:
		if depth >= 2 {
			fmt.Fprintf(sb, "store(%s, %s)\n", g.expr(tStr, 1), g.expr(genType(g.rng.Intn(3)), 1))
			return
		}
		fmt.Fprintf(sb, "if %s {\n", g.expr(tBool, 0))
		g.stmt(sb, depth+1)
		if g.rng.Intn(2) == 0 {
			sb.WriteString("} else {\n")
			g.stmt(sb, depth+1)
		}
		sb.WriteString("}\n")
	case 6:
		if depth >= 2 || g.loops >= 3 {
			fmt.Fprintf(sb, "emit(\"probe\", %s)\n", g.expr(genType(g.rng.Intn(3)), 1))
			return
		}
		g.loops++
		name := fmt.Sprintf("i%d", g.nvars)
		g.nvars++
		fmt.Fprintf(sb, "for %s = %d to %d {\n", name, g.rng.Intn(3), g.rng.Intn(6))
		g.vars = append(g.vars, struct {
			name string
			typ  genType
		}{name, tNum})
		g.stmt(sb, depth+1)
		sb.WriteString("}\n")
	case 7:
		fmt.Fprintf(sb, "store(%s, %s)\n", g.expr(tStr, 1), g.expr(genType(g.rng.Intn(3)), 1))
	case 8:
		argc := g.rng.Intn(3)
		args := make([]string, argc)
		for i := range args {
			args[i] = g.expr(genType(g.rng.Intn(3)), 1)
		}
		if argc == 0 {
			fmt.Fprintf(sb, "emit(\"e%d\")\n", g.rng.Intn(4))
		} else {
			fmt.Fprintf(sb, "emit(\"e%d\", %s)\n", g.rng.Intn(4), strings.Join(args, ", "))
		}
	case 9:
		// A guarded deny: reachable but input-dependent.
		fmt.Fprintf(sb, "if %s { deny %s clauseof(%s) }\n",
			g.expr(tBool, 0), g.codeLit(), g.codeLit())
	}
}

func (g *gen) expr(t genType, depth int) string {
	if depth >= 3 {
		return g.leaf(t)
	}
	switch t {
	case tNum:
		switch g.rng.Intn(6) {
		case 0, 1:
			return g.leaf(tNum)
		case 2:
			return fmt.Sprintf("(%s %s %s)", g.expr(tNum, depth+1),
				[]string{"+", "-", "*"}[g.rng.Intn(3)], g.expr(tNum, depth+1))
		case 3:
			// Division and modulo with a nonzero literal divisor.
			return fmt.Sprintf("(%s %s %d)", g.expr(tNum, depth+1),
				[]string{"/", "%"}[g.rng.Intn(2)], 1+g.rng.Intn(7))
		case 4:
			return fmt.Sprintf("(-%s)", g.expr(tNum, depth+1))
		default:
			return fmt.Sprintf("(%s + %s)", g.leaf(tNum), g.leaf(tNum))
		}
	case tStr:
		switch g.rng.Intn(4) {
		case 0, 1:
			return g.leaf(tStr)
		case 2:
			return fmt.Sprintf("(%s + %s)", g.expr(tStr, depth+1), g.leaf(tStr))
		default:
			return fmt.Sprintf("clauseof(%s)", g.expr(tStr, depth+1))
		}
	default:
		switch g.rng.Intn(8) {
		case 0:
			return g.leaf(tBool)
		case 1:
			return fmt.Sprintf("(%s %s %s)", g.expr(tNum, depth+1),
				[]string{"==", "!=", "<", "<=", ">", ">="}[g.rng.Intn(6)], g.expr(tNum, depth+1))
		case 2:
			return fmt.Sprintf("(%s %s %s)", g.expr(tStr, depth+1),
				[]string{"==", "!=", "contains", "isa"}[g.rng.Intn(4)], g.expr(tStr, depth+1))
		case 3:
			return fmt.Sprintf("(%s and %s)", g.expr(tBool, depth+1), g.expr(tBool, depth+1))
		case 4:
			return fmt.Sprintf("(%s or %s)", g.expr(tBool, depth+1), g.expr(tBool, depth+1))
		case 5:
			return fmt.Sprintf("(not %s)", g.expr(tBool, depth+1))
		case 6:
			// evaluate() returns a code; compare it against a literal.
			return fmt.Sprintf("(evaluate(%q, %d, %d, %q, %d) == %s)",
				strings.Join(pick(g.rng.Intn(3), []string{"train", "stats", "infer"}), ","),
				g.rng.Intn(4), 1000*g.rng.Intn(2), // expiry 0 or 1000
				strings.Join(pick(g.rng.Intn(2), []string{"research", "ads"}), ","),
				g.rng.Intn(4), g.codeLit())
		default:
			return fmt.Sprintf("(load(%s) == %s)", g.expr(tStr, depth+1), g.leaf(genType(g.rng.Intn(3))))
		}
	}
}

func (g *gen) leaf(t genType) string {
	switch t {
	case tNum:
		if vs := g.varsOf(tNum); len(vs) > 0 && g.rng.Intn(2) == 0 {
			return vs[g.rng.Intn(len(vs))]
		}
		switch g.rng.Intn(5) {
		case 0:
			return "agg"
		case 1:
			return "height"
		case 2:
			return "uses"
		default:
			return fmt.Sprintf("%d", g.rng.Intn(100))
		}
	case tStr:
		if vs := g.varsOf(tStr); len(vs) > 0 && g.rng.Intn(2) == 0 {
			return vs[g.rng.Intn(len(vs))]
		}
		switch g.rng.Intn(5) {
		case 0:
			return "layer"
		case 1:
			return "class"
		case 2:
			return "purpose"
		default:
			return fmt.Sprintf("%q", []string{"train", "stats", "sensor.temp", "eu", "k1", "k2"}[g.rng.Intn(6)])
		}
	default:
		if vs := g.varsOf(tBool); len(vs) > 0 && g.rng.Intn(2) == 0 {
			return vs[g.rng.Intn(len(vs))]
		}
		if g.rng.Intn(2) == 0 {
			return "true"
		}
		return "false"
	}
}

func pick(n int, from []string) []string {
	if n >= len(from) {
		n = len(from) - 1
	}
	return from[:n+1]
}
