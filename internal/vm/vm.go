package vm

import (
	"fmt"

	"pds2/internal/semantic"
	"pds2/internal/telemetry"
)

// Dispatch-loop telemetry: per-execution and per-opcode counters, and
// an error counter.
var (
	mRuns   = telemetry.C("vm.dispatch.runs_total")
	mSteps  = telemetry.C("vm.dispatch.steps_total")
	mErrors = telemetry.C("vm.dispatch.errors_total")
)

var (
	errUnderflow = fmt.Errorf("vm: stack underflow")
	errOverflow  = fmt.Errorf("vm: stack overflow")
)

// Execute runs a verified module against a host. It is the bytecode
// twin of semantic.RunProgram: same Host contract, same verdicts, same
// error text, same gas charge sequence. The dispatch loop carries the
// pprof component label vm.exec so profiles attribute VM time.
//
// Callers must pass modules obtained from Decode or Compile (both
// verify); Execute still bounds the stack and counts loop edges, so
// even hand-forged code that slips through cannot run away — but
// operand bounds are the verifier's job.
func Execute(m *Module, h semantic.Host) (semantic.Verdict, error) {
	var v semantic.Verdict
	var err error
	telemetry.WithComponent("vm.exec", func() {
		v, err = run(m, h)
	})
	if err != nil {
		mErrors.Inc()
	}
	return v, err
}

// run is the dispatch loop. Stack manipulation is inlined (no closure
// calls) and the operand stack is reused across pops and pushes —
// this loop is a per-workload hot path, benchmarked by
// BenchmarkVMDispatch.
func run(m *Module, h semantic.Host) (semantic.Verdict, error) {
	mRuns.Inc()
	req := h.Request()
	locals := make([]semantic.Value, m.NumLocals)
	for i := range locals {
		locals[i] = semantic.Bool(false)
	}
	stack := make([]semantic.Value, 0, 16)
	var iters uint64
	var steps uint64
	defer func() { mSteps.Add(steps) }()

	code := m.Code
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		steps++
		if err := h.UseGas(semantic.CostStep); err != nil {
			return semantic.Verdict{}, err
		}
		switch op {
		case OpPush:
			if len(stack) >= MaxStack {
				return semantic.Verdict{}, errOverflow
			}
			stack = append(stack, m.Consts[u16(code, pc+1)])
			pc += 3

		case OpLoadLocal:
			if len(stack) >= MaxStack {
				return semantic.Verdict{}, errOverflow
			}
			stack = append(stack, locals[code[pc+1]])
			pc += 2

		case OpStoreLocal:
			if len(stack) == 0 {
				return semantic.Verdict{}, errUnderflow
			}
			locals[code[pc+1]] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			pc += 2

		case OpLoadReq:
			if len(stack) >= MaxStack {
				return semantic.Verdict{}, errOverflow
			}
			stack = append(stack, semantic.ReqValue(req, semantic.ReqField(code[pc+1])))
			pc += 2

		case OpNot, OpNeg:
			if len(stack) == 0 {
				return semantic.Verdict{}, errUnderflow
			}
			name := "not"
			if op == OpNeg {
				name = "-"
			}
			r, err := semantic.ApplyUnary(name, stack[len(stack)-1])
			if err != nil {
				return semantic.Verdict{}, err
			}
			stack[len(stack)-1] = r
			pc++

		case OpAdd, OpSub, OpMul, OpDiv, OpMod,
			OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpContains, OpIsa:
			if len(stack) < 2 {
				return semantic.Verdict{}, errUnderflow
			}
			x, y := stack[len(stack)-2], stack[len(stack)-1]
			r, err := semantic.ApplyBinary(binOpName[op], x, y)
			if err != nil {
				return semantic.Verdict{}, err
			}
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = r
			pc++

		case OpJump:
			pc = u16(code, pc+1)

		case OpJumpFalse, OpJumpTrue:
			if len(stack) == 0 {
				return semantic.Verdict{}, errUnderflow
			}
			t, err := semantic.TruthOf(stack[len(stack)-1])
			if err != nil {
				return semantic.Verdict{}, err
			}
			stack = stack[:len(stack)-1]
			if t == (op == OpJumpTrue) {
				pc = u16(code, pc+1)
			} else {
				pc += 3
			}

		case OpLoop:
			iters++
			if iters > semantic.MaxLoopIters {
				return semantic.Verdict{}, semantic.ErrLoopBound
			}
			pc = u16(code, pc+1)

		case OpLoad:
			if len(stack) == 0 {
				return semantic.Verdict{}, errUnderflow
			}
			v, err := semantic.HostLoad(h, stack[len(stack)-1])
			if err != nil {
				return semantic.Verdict{}, err
			}
			stack[len(stack)-1] = v
			pc++

		case OpStore:
			if len(stack) < 2 {
				return semantic.Verdict{}, errUnderflow
			}
			key, val := stack[len(stack)-2], stack[len(stack)-1]
			stack = stack[:len(stack)-2]
			if err := semantic.HostStore(h, key, val); err != nil {
				return semantic.Verdict{}, err
			}
			pc++

		case OpEmit:
			topic := m.Consts[u16(code, pc+1)].S
			argc := int(code[pc+3])
			if argc > len(stack) {
				return semantic.Verdict{}, errUnderflow
			}
			args := make([]semantic.Value, argc)
			copy(args, stack[len(stack)-argc:])
			stack = stack[:len(stack)-argc]
			if err := semantic.HostEmit(h, topic, args); err != nil {
				return semantic.Verdict{}, err
			}
			pc += 4

		case OpEvalPolicy:
			if len(stack) < 5 {
				return semantic.Verdict{}, errUnderflow
			}
			var args [5]semantic.Value
			copy(args[:], stack[len(stack)-5:])
			stack = stack[:len(stack)-5]
			v, err := semantic.HostEvalBuiltin(h, args[:])
			if err != nil {
				return semantic.Verdict{}, err
			}
			stack = append(stack, v)
			pc++

		case OpClauseOf:
			if len(stack) == 0 {
				return semantic.Verdict{}, errUnderflow
			}
			r, err := semantic.ClauseOfValue(stack[len(stack)-1])
			if err != nil {
				return semantic.Verdict{}, err
			}
			stack[len(stack)-1] = r
			pc++

		case OpAllow:
			return semantic.Verdict{Code: semantic.VerdictOK}, nil

		case OpDeny:
			if len(stack) < 2 {
				return semantic.Verdict{}, errUnderflow
			}
			return semantic.DenyVerdict(stack[len(stack)-2], stack[len(stack)-1])

		default:
			return semantic.Verdict{}, fmt.Errorf("vm: invalid opcode 0x%02x at %d", byte(op), pc)
		}
	}
	// Unreachable for verified code: the last instruction halts.
	return semantic.Verdict{}, fmt.Errorf("vm: execution fell off the end")
}

func u16(code []byte, at int) int {
	return int(code[at])<<8 | int(code[at+1])
}
