package vm

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"pds2/internal/contract"
	"pds2/internal/policy"
	"pds2/internal/semantic"
)

// diffHost is an instrumented in-memory Host recording everything both
// engines do: gas consumption, ordered state writes, final state, and
// emitted events. Two hosts with the same inputs must end byte-equal
// when the engines agree.
type diffHost struct {
	gas    uint64
	req    semantic.Request
	state  map[string][]byte
	writes []string
	events []diffEvent
}

type diffEvent struct {
	Topic string
	Data  string
}

func newDiffHost(gas uint64, req semantic.Request, seedState map[string][]byte) *diffHost {
	st := make(map[string][]byte)
	for k, v := range seedState {
		st[k] = append([]byte(nil), v...)
	}
	return &diffHost{gas: gas, req: req, state: st}
}

func (h *diffHost) UseGas(n uint64) error {
	if h.gas < n {
		h.gas = 0
		return contract.ErrOutOfGas
	}
	h.gas -= n
	return nil
}
func (h *diffHost) Request() semantic.Request { return h.req }
func (h *diffHost) Load(key string) ([]byte, error) {
	// Charge like contract.Context.Get.
	if err := h.UseGas(contract.GasSload); err != nil {
		return nil, err
	}
	return h.state[key], nil
}
func (h *diffHost) Store(key string, val []byte) error {
	if err := h.UseGas(contract.GasSstore); err != nil {
		return err
	}
	h.state[key] = append([]byte(nil), val...)
	h.writes = append(h.writes, key)
	return nil
}
func (h *diffHost) EmitEvent(topic string, data []byte) error {
	if err := h.UseGas(contract.GasLogBase + contract.GasLogPerByte*uint64(len(topic)+len(data))); err != nil {
		return err
	}
	h.events = append(h.events, diffEvent{Topic: topic, Data: string(data)})
	return nil
}
func (h *diffHost) EvalBuiltin(classes []string, minAgg, expiry uint64, purposes []string, maxInv uint64) (string, error) {
	if err := h.UseGas(GasEvalBuiltin); err != nil {
		return "", err
	}
	dec := policy.Evaluate(&policy.Policy{
		AllowedClasses: classes, MinAggregation: minAgg, ExpiryHeight: expiry,
		Purposes: purposes, MaxInvocations: maxInv,
	}, policy.Request{
		Layer: h.req.Layer, Class: h.req.Class, Purpose: h.req.Purpose,
		Aggregation: h.req.Aggregation, Height: h.req.Height, Invocations: h.req.Invocations,
	})
	return dec.Code, nil
}

// outcome flattens one engine run for comparison.
type outcome struct {
	Verdict semantic.Verdict
	Err     string
	GasLeft uint64
	Writes  []string
	State   map[string]string
	Events  []diffEvent
}

func runEngine(h *diffHost, exec func() (semantic.Verdict, error)) outcome {
	v, err := exec()
	o := outcome{Verdict: v, GasLeft: h.gas, Writes: h.writes, Events: h.events,
		State: make(map[string]string)}
	if err != nil {
		o.Err = err.Error()
		o.Verdict = semantic.Verdict{}
	}
	for k, val := range h.state {
		o.State[k] = string(val)
	}
	return o
}

// assertAgree runs source through both engines on identical hosts and
// fails on any divergence — verdict, error text, remaining gas (the
// exhaustion point), write order, final state, or events.
func assertAgree(t *testing.T, src string, gas uint64, req semantic.Request, seedState map[string][]byte) (outcome, bool) {
	t.Helper()
	prog, err := semantic.ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram(%q): %v", src, err)
	}
	mod, err := Compile(prog)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	refHost := newDiffHost(gas, req, seedState)
	ref := runEngine(refHost, func() (semantic.Verdict, error) {
		return semantic.RunProgram(prog, refHost)
	})
	vmHost := newDiffHost(gas, req, seedState)
	got := runEngine(vmHost, func() (semantic.Verdict, error) {
		return Execute(mod, vmHost)
	})
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("divergence on %q (gas %d):\nreference: %+v\nvm:        %+v\n%s",
			src, gas, ref, got, Disasm(mod))
		return ref, false
	}
	return ref, true
}

// TestDifferentialHandWritten drives divergence-prone programs through
// both engines: short-circuit evaluation, loop-bound edges, reverts
// after state writes, type errors mid-expression, and host failures.
func TestDifferentialHandWritten(t *testing.T) {
	req := semantic.Request{
		Layer: "match", Class: "train", Purpose: "research",
		Aggregation: 3, Height: 50, Invocations: 1,
	}
	cases := []string{
		// Short-circuit: the RHS type error must never evaluate.
		`let a = false let x = a and not 5 allow`,
		`let a = true let x = a or not 5 allow`,
		// Short-circuit result values (and/or return the RHS value).
		`let x = true and 5 store("x", x == 5) allow`,
		`let x = false or "s" store("x", x) allow`,
		// Loop-bound edges: zero iterations, off-by-one, equal bounds.
		`for i = 1 to 0 { store("never", true) } allow`,
		`let n = 0 for i = 0 to 0 { n = n + 1 } store("n", n) allow`,
		`let n = 0 for i = 1 to 5 { n = n + i } store("n", n) allow`,
		// Loop variable mutated inside the body.
		`let n = 0 for i = 1 to 10 { i = i + 1 n = n + 1 } store("n", n) allow`,
		// Revert mid-write: writes before the error must match exactly.
		`store("a", 1) store("b", 2) let z = 1 + "s" store("c", 3) allow`,
		`store("a", 1) emit("went", 1) deny 5 6`,
		// Deny with computed operands and clauseof.
		`let c = "class_forbidden" deny c clauseof(c)`,
		`deny clauseof("min_aggregation") + "x" ""`,
		// Nested conditionals and else-if chains.
		`if agg > 5 { deny "a" "" } else if agg > 2 { emit("mid") allow } else { deny "b" "" }`,
		// Request projection of every field.
		`emit("req", layer, class, purpose, agg, height, uses) allow`,
		// State round trips including absent-key reads.
		`let v = load("missing") if v == false { store("missing", "now") } allow`,
		`store("k", 2.5) let v = load("k") store("k2", v * 2) allow`,
		// Division/modulo error paths.
		`let x = 1 / 0 allow`,
		`let x = agg % 0 allow`,
		// evaluate() delegation both allowed and denied.
		`let c = evaluate("train,stats", 2, 100, "research", 3) if c == "ok" { allow } deny c clauseof(c)`,
		`let c = evaluate("infer", 1, 0, "", 0) deny c clauseof(c)`,
		// Comparison chains over strings and numbers.
		`if "abc" < "abd" and 2 <= 2 and "sensor.t.x" isa "sensor.t" { allow } deny "cmp" ""`,
		// Unary minus and precedence.
		`let x = -3 + 2 * 4 if x == 5 { allow } deny "prec" ""`,
		// Allow nested deep in a loop halts without the back-edge.
		`for i = 0 to 100 { if i == 3 { allow } } deny "never" ""`,
	}
	for _, src := range cases {
		if _, ok := assertAgree(t, src, 1<<22, req, nil); !ok {
			continue
		}
		// Sweep every gas budget below full consumption: the engines
		// must hit out-of-gas at the same point with identical partial
		// effects.
		full, _ := assertAgree(t, src, 1<<22, req, nil)
		used := uint64(1<<22) - full.GasLeft
		step := used/23 + 1
		for g := uint64(0); g <= used; g += step {
			assertAgree(t, src, g, req, nil)
		}
		assertAgree(t, src, used-1, req, nil)
	}
}

// TestDifferentialLoopBound checks both engines stop a runaway loop at
// the same back-edge count with the shared sentinel.
func TestDifferentialLoopBound(t *testing.T) {
	src := `for i = 0 to 100000 { }`
	prog := semantic.MustParseProgram(src)
	mod, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	refHost := newDiffHost(1<<40, semantic.Request{}, nil)
	_, refErr := semantic.RunProgram(prog, refHost)
	vmHost := newDiffHost(1<<40, semantic.Request{}, nil)
	_, vmErr := Execute(mod, vmHost)
	if !errors.Is(refErr, semantic.ErrLoopBound) || !errors.Is(vmErr, semantic.ErrLoopBound) {
		t.Fatalf("errs = %v / %v, want ErrLoopBound", refErr, vmErr)
	}
	if refHost.gas != vmHost.gas {
		t.Fatalf("gas at loop bound: reference %d vs vm %d", refHost.gas, vmHost.gas)
	}
}

// TestDifferentialRandomPrograms is the seeded generator harness: for
// each seed, generate a program, run both engines with an ample budget,
// then probe partial budgets around the consumption point.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 60
	}
	reqs := []semantic.Request{
		{Layer: "match", Class: "train", Purpose: "research", Aggregation: 3, Height: 10, Invocations: 0},
		{Layer: "admission", Class: "stats", Purpose: "ads", Aggregation: 1, Height: 2000, Invocations: 7},
		{Layer: "enclave", Class: "infer", Purpose: "", Aggregation: 64, Height: 999, Invocations: 3},
	}
	seedState := map[string][]byte{
		"k1": semantic.EncodeValue(semantic.Number(7)),
		"k2": semantic.EncodeValue(semantic.String("train")),
	}
	for seed := 0; seed < seeds; seed++ {
		src := GenSource(uint64(seed))
		req := reqs[seed%len(reqs)]
		full, ok := assertAgree(t, src, 1<<24, req, seedState)
		if !ok {
			t.Fatalf("seed %d diverged:\n%s", seed, src)
		}
		used := uint64(1<<24) - full.GasLeft
		// Three partial budgets per seed keep the sweep fast while
		// covering early, middle and boundary exhaustion.
		for _, g := range []uint64{used / 3, 2 * used / 3, used - 1} {
			if g >= used {
				continue
			}
			if _, ok := assertAgree(t, src, g, req, seedState); !ok {
				t.Fatalf("seed %d diverged at gas %d:\n%s", seed, g, src)
			}
		}
	}
}

// TestDifferentialBuiltinSource cross-checks BuiltinPolicySource
// against policy.Evaluate itself across all six decision codes.
func TestDifferentialBuiltinSource(t *testing.T) {
	pol := &policy.Policy{
		AllowedClasses: []string{"train", "stats"},
		Purposes:       []string{"research"},
		MinAggregation: 2,
		ExpiryHeight:   100,
		MaxInvocations: 3,
	}
	src := BuiltinPolicySource(pol)
	mod, err := CompileSource(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	reqs := []policy.Request{
		{Layer: "match", Class: "train", Purpose: "research", Aggregation: 5, Height: 10},                  // ok
		{Layer: "match", Class: "train", Purpose: "research", Aggregation: 5, Height: 101},                 // expired
		{Layer: "match", Class: "infer", Purpose: "research", Aggregation: 5, Height: 10},                  // class
		{Layer: "match", Class: "train", Purpose: "ads", Aggregation: 5, Height: 10},                       // purpose
		{Layer: "match", Class: "train", Purpose: "research", Aggregation: 1, Height: 10},                  // aggregation
		{Layer: "match", Class: "train", Purpose: "research", Aggregation: 5, Height: 10, Invocations: 3},  // exhausted
		{Layer: "match", Class: "train", Purpose: "research", Aggregation: 5, Height: 100, Invocations: 2}, // boundary ok
	}
	for _, preq := range reqs {
		want := policy.Evaluate(pol, preq)
		h := newDiffHost(1<<22, semantic.Request{
			Layer: preq.Layer, Class: preq.Class, Purpose: preq.Purpose,
			Aggregation: preq.Aggregation, Height: preq.Height, Invocations: preq.Invocations,
		}, nil)
		v, err := Execute(mod, h)
		if err != nil {
			t.Fatalf("req %+v: %v", preq, err)
		}
		if v.Code != want.Code || v.Clause != want.Clause {
			t.Errorf("req %+v: program says %+v, Evaluate says code=%q clause=%q",
				preq, v, want.Code, want.Clause)
		}
	}
	// Zero policy compiles to a bare allow.
	if got := BuiltinPolicySource(&policy.Policy{}); got != "allow\n" {
		t.Errorf("zero policy source = %q", got)
	}
}

// TestContainerRoundTrip pins encode/decode/verify for generated
// modules.
func TestContainerRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		src := GenSource(seed)
		mod, err := CompileSource(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		art := mod.Encode()
		back, err := Decode(art)
		if err != nil {
			t.Fatalf("seed %d decode: %v", seed, err)
		}
		if !reflect.DeepEqual(mod, back) {
			t.Fatalf("seed %d round trip mismatch", seed)
		}
		if err := VerifySource(back); err != nil {
			t.Fatalf("seed %d VerifySource: %v", seed, err)
		}
		// Flipping any byte must be rejected (checksum).
		for _, i := range []int{0, len(art) / 2, len(art) - 1} {
			bad := append([]byte(nil), art...)
			bad[i] ^= 0x40
			if _, err := Decode(bad); err == nil {
				t.Fatalf("seed %d: corrupted artifact (byte %d) accepted", seed, i)
			}
		}
	}
}

// TestContainerRejects pins decode failures on malformed frames.
func TestContainerRejects(t *testing.T) {
	mod, err := CompileSource(`allow`)
	if err != nil {
		t.Fatal(err)
	}
	good := mod.Encode()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", good[:8]},
		{"oversized", make([]byte, MaxArtifact+1)},
		{"truncated-tail", good[:len(good)-4]},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// Tampered source with a re-computed checksum decodes but fails
	// VerifySource.
	tampered := *mod
	tampered.Source = `deny "x" ""`
	if _, err := CompileSource(tampered.Source); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(tampered.Encode())
	if err != nil {
		t.Fatalf("tampered decode: %v", err)
	}
	if err := VerifySource(back); err == nil {
		t.Error("tampered source passed VerifySource")
	}
}

// TestVerifyRejectsForgedCode drives the static verifier's rejection
// paths with hand-forged modules.
func TestVerifyRejectsForgedCode(t *testing.T) {
	c := func(code ...byte) *Module {
		return &Module{NumLocals: 1, Consts: []semantic.Value{semantic.String("t")}, Code: code}
	}
	cases := []struct {
		name string
		m    *Module
	}{
		{"empty", c()},
		{"bad-opcode", c(0xEE, byte(OpAllow))},
		{"truncated-operand", c(byte(OpPush), 0)},
		{"const-oob", c(byte(OpPush), 0, 9, byte(OpAllow))},
		{"local-oob", c(byte(OpLoadLocal), 5, byte(OpAllow))},
		{"req-oob", c(byte(OpLoadReq), 99, byte(OpAllow))},
		{"no-halt", c(byte(OpPush), 0, 0)},
		{"jump-backward", c(byte(OpAllow), byte(OpJump), 0, 0)},
		{"jump-into-operand", c(byte(OpPush), 0, 0, byte(OpJump), 0, 2, byte(OpAllow))},
		{"jump-past-end", c(byte(OpJump), 0, 99, byte(OpAllow))},
		{"loop-forward", c(byte(OpLoop), 0, 3, byte(OpAllow))},
		{"emit-topic-not-string", &Module{NumLocals: 0,
			Consts: []semantic.Value{semantic.Number(1)},
			Code:   []byte{byte(OpEmit), 0, 0, 0, byte(OpAllow)}}},
		{"too-many-locals", &Module{NumLocals: semantic.MaxLocals + 1, Code: []byte{byte(OpAllow)}}},
	}
	for _, tc := range cases {
		if err := Verify(tc.m); err == nil {
			t.Errorf("%s verified", tc.name)
		}
	}
}

// TestForgedCodeCannotEscape executes verifier-passing but compiler-
// unreachable code shapes and checks the runtime guards hold.
func TestForgedCodeCannotEscape(t *testing.T) {
	// Infinite loop via OpLoop: terminated by the back-edge counter
	// even with effectively unlimited gas.
	m := &Module{Code: []byte{byte(OpLoop), 0, 0}}
	if err := Verify(m); err != nil {
		t.Fatalf("loop module: %v", err)
	}
	h := newDiffHost(1<<60, semantic.Request{}, nil)
	if _, err := Execute(m, h); !errors.Is(err, semantic.ErrLoopBound) {
		t.Fatalf("err = %v, want ErrLoopBound", err)
	}
	// Stack underflow errors out instead of panicking.
	m = &Module{Code: []byte{byte(OpAdd), byte(OpAllow)}}
	if err := Verify(m); err != nil {
		t.Fatalf("underflow module: %v", err)
	}
	if _, err := Execute(m, newDiffHost(1<<20, semantic.Request{}, nil)); err == nil {
		t.Fatal("stack underflow succeeded")
	}
}

func TestDisasmCoversEveryOpcode(t *testing.T) {
	src := `
		let x = 1 + 2 * 3 - 4 / 5 % 6
		let r = agg + height * uses
		let s = "a" + "b" + layer + class + purpose
		let b = not (x == 1) and x != 2 or x < 3
		if x <= 4 { emit("t", x) } else { store("k", b) }
		for i = 0 to 2 { }
		let l = load("k")
		let c = clauseof("ok")
		let e = evaluate("train", 1, 0, "", 0)
		if x > 5 { allow }
		if "a" contains "b" { allow }
		if "a" isa "b" { allow }
		if x >= 6 { deny (-x) + 0 == 0 and true or false "c" }
		deny "a" "b"`
	mod, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disasm(mod)
	for op := opInvalid + 1; op < opMax; op++ {
		if !containsInstr(dis, op.String()) {
			t.Errorf("opcode %s missing from disassembly:\n%s", op, dis)
		}
	}
}

func containsInstr(dis, name string) bool {
	for _, line := range splitLines(dis) {
		fields := splitFields(line)
		if len(fields) >= 2 && fields[1] == name {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func splitFields(s string) []string {
	var out []string
	field := ""
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\t' || s[i] == ' ' {
			if field != "" {
				out = append(out, field)
				field = ""
			}
			continue
		}
		field += string(s[i])
	}
	return out
}

func TestGenSourceDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a, b := GenSource(seed), GenSource(seed)
		if a != b {
			t.Fatalf("seed %d nondeterministic", seed)
		}
		if _, err := CompileSource(a); err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, a)
		}
	}
	if GenSource(1) == GenSource(2) {
		t.Error("distinct seeds produced identical programs")
	}
}

func TestDisasmExample(t *testing.T) {
	// Keep a stable smoke on the human-facing format used by
	// `pds2 compile -disasm`.
	mod, err := CompileSource(`if agg < 2 { deny "aggregation_floor" "min_aggregation" } allow`)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disasm(mod)
	for _, want := range []string{"loadreq", "push", "lt", "jf", "deny", "allow"} {
		if !containsInstr(dis, want) {
			t.Errorf("disasm missing %q:\n%s", want, dis)
		}
	}
	if len(fmt.Sprint(mod.Checksum())) == 0 {
		t.Error("empty checksum")
	}
}
