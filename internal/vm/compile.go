package vm

import (
	"fmt"

	"pds2/internal/semantic"
)

// Compile lowers a parsed program to a bytecode module. Compilation is
// deterministic: the same program yields byte-identical code (the
// on-chain deployPolicy verifier depends on this to re-derive the
// bytecode from the embedded source).
//
// The opcode layout per construct is load-bearing: the reference
// interpreter (semantic.RunProgram) charges gas in exactly this
// sequence, which is what makes the gas-exhaustion point differential
// property hold. Change one side only with the other.
func Compile(p *semantic.Program) (*Module, error) {
	c := &compiler{constIdx: make(map[string]int)}
	if err := c.stmts(p.Stmts); err != nil {
		return nil, err
	}
	// Implicit allow on falling off the end; also guarantees the last
	// instruction halts, which the static verifier requires.
	c.emit(OpAllow)
	m := &Module{
		NumLocals: p.NumLocals,
		Consts:    c.consts,
		Code:      c.code,
		Source:    p.Source,
	}
	if err := Verify(m); err != nil {
		return nil, fmt.Errorf("vm: compiler produced invalid code: %w", err)
	}
	return m, nil
}

// CompileSource parses and compiles program source in one step.
func CompileSource(src string) (*Module, error) {
	p, err := semantic.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return Compile(p)
}

type compiler struct {
	consts   []semantic.Value
	constIdx map[string]int
	code     []byte
}

// constIndex interns a constant, returning its pool index.
func (c *compiler) constIndex(v semantic.Value) (int, error) {
	key := fmt.Sprintf("%d|%s", v.Kind, v.String())
	if i, ok := c.constIdx[key]; ok {
		return i, nil
	}
	if len(c.consts) >= MaxConsts {
		return 0, fmt.Errorf("vm: constant pool exceeds %d entries", MaxConsts)
	}
	i := len(c.consts)
	c.consts = append(c.consts, v)
	c.constIdx[key] = i
	return i, nil
}

func (c *compiler) emit(op Op, operands ...byte) {
	c.code = append(c.code, byte(op))
	c.code = append(c.code, operands...)
}

func (c *compiler) emitU16(op Op, v int) {
	c.emit(op, byte(v>>8), byte(v))
}

// emitJump emits a jump with a placeholder target and returns the
// operand offset for patch.
func (c *compiler) emitJump(op Op) int {
	c.emit(op, 0xff, 0xff)
	return len(c.code) - 2
}

// patch points a previously emitted jump at the current code position.
func (c *compiler) patch(at int) {
	target := len(c.code)
	c.code[at] = byte(target >> 8)
	c.code[at+1] = byte(target)
}

func (c *compiler) stmts(list []semantic.Stmt) error {
	for _, s := range list {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s semantic.Stmt) error {
	switch s := s.(type) {
	case *semantic.LetStmt:
		if err := c.expr(s.X); err != nil {
			return err
		}
		c.emit(OpStoreLocal, byte(s.Slot))
		return nil

	case *semantic.IfStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		jf := c.emitJump(OpJumpFalse)
		if err := c.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			end := c.emitJump(OpJump)
			c.patch(jf)
			if err := c.stmts(s.Else); err != nil {
				return err
			}
			c.patch(end)
		} else {
			c.patch(jf)
		}
		return nil

	case *semantic.ForStmt:
		if err := c.expr(s.From); err != nil {
			return err
		}
		c.emit(OpStoreLocal, byte(s.Slot))
		if err := c.expr(s.To); err != nil {
			return err
		}
		c.emit(OpStoreLocal, byte(s.LimitSlot))
		top := len(c.code)
		c.emit(OpLoadLocal, byte(s.Slot))
		c.emit(OpLoadLocal, byte(s.LimitSlot))
		c.emit(OpLe)
		jf := c.emitJump(OpJumpFalse)
		if err := c.stmts(s.Body); err != nil {
			return err
		}
		one, err := c.constIndex(semantic.Number(1))
		if err != nil {
			return err
		}
		c.emit(OpLoadLocal, byte(s.Slot))
		c.emitU16(OpPush, one)
		c.emit(OpAdd)
		c.emit(OpStoreLocal, byte(s.Slot))
		c.emitU16(OpLoop, top)
		c.patch(jf)
		return nil

	case *semantic.AllowStmt:
		c.emit(OpAllow)
		return nil

	case *semantic.DenyStmt:
		if err := c.expr(s.Code); err != nil {
			return err
		}
		if err := c.expr(s.Clause); err != nil {
			return err
		}
		c.emit(OpDeny)
		return nil

	case *semantic.EmitStmt:
		topic, err := c.constIndex(semantic.String(s.Topic))
		if err != nil {
			return err
		}
		for _, a := range s.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.emit(OpEmit, byte(topic>>8), byte(topic), byte(len(s.Args)))
		return nil

	case *semantic.StoreStmt:
		if err := c.expr(s.Key); err != nil {
			return err
		}
		if err := c.expr(s.Val); err != nil {
			return err
		}
		c.emit(OpStore)
		return nil
	}
	return fmt.Errorf("vm: unknown statement %T", s)
}

func (c *compiler) expr(e semantic.PExpr) error {
	switch e := e.(type) {
	case *semantic.LitExpr:
		idx, err := c.constIndex(e.V)
		if err != nil {
			return err
		}
		c.emitU16(OpPush, idx)
		return nil

	case *semantic.VarExpr:
		c.emit(OpLoadLocal, byte(e.Slot))
		return nil

	case *semantic.ReqExpr:
		c.emit(OpLoadReq, byte(e.Field))
		return nil

	case *semantic.UnExpr:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if e.Op == "not" {
			c.emit(OpNot)
		} else {
			c.emit(OpNeg)
		}
		return nil

	case *semantic.BinExpr:
		switch e.Op {
		case "and", "or":
			// X; JumpFalse/JumpTrue sc; Y; Jump end; sc: Push bool; end:
			if err := c.expr(e.X); err != nil {
				return err
			}
			op := OpJumpFalse
			if e.Op == "or" {
				op = OpJumpTrue
			}
			sc := c.emitJump(op)
			if err := c.expr(e.Y); err != nil {
				return err
			}
			end := c.emitJump(OpJump)
			c.patch(sc)
			idx, err := c.constIndex(semantic.Bool(e.Op == "or"))
			if err != nil {
				return err
			}
			c.emitU16(OpPush, idx)
			c.patch(end)
			return nil
		}
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		op, ok := binOpFor[e.Op]
		if !ok {
			return fmt.Errorf("vm: unknown operator %q", e.Op)
		}
		c.emit(op)
		return nil

	case *semantic.CallExpr:
		for _, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		switch e.Fn {
		case "load":
			c.emit(OpLoad)
		case "clauseof":
			c.emit(OpClauseOf)
		case "evaluate":
			c.emit(OpEvalPolicy)
		default:
			return fmt.Errorf("vm: unknown builtin %q", e.Fn)
		}
		return nil
	}
	return fmt.Errorf("vm: unknown expression %T", e)
}
