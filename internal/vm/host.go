package vm

import (
	"pds2/internal/contract"
	"pds2/internal/policy"
	"pds2/internal/semantic"
)

// EventTopicPrefix namespaces program-emitted events. The registry
// contract emits audit events (PolicyDecision, PolicySet, …) from the
// same address, so program topics are prefixed to make forging them
// from policy code impossible.
const EventTopicPrefix = "vm/"

// GasEvalBuiltin is the surcharge of one evaluate() host call,
// mirroring the registry's per-evaluation charge for the built-in
// engine so a program delegating to evaluate() costs what the
// hardwired path costs.
const GasEvalBuiltin = 500

// ContextHost adapts a contract execution context to the semantic.Host
// interface: gas flows into the journaled runtime's meter (so
// out-of-gas unwinds through the journal), state lives under a
// caller-chosen key prefix, and events are topic-namespaced. It is the
// production host — the same instance drives both the VM and, in the
// reference-replica runtime, the tree-walking oracle.
type ContextHost struct {
	ctx    *contract.Context
	prefix string
	req    semantic.Request
}

// NewContextHost builds a host over ctx with the given state-key
// prefix.
func NewContextHost(ctx *contract.Context, prefix string, req semantic.Request) *ContextHost {
	return &ContextHost{ctx: ctx, prefix: prefix, req: req}
}

// UseGas charges the runtime gas meter.
func (h *ContextHost) UseGas(n uint64) error { return h.ctx.UseGas(n) }

// Request returns the request under evaluation.
func (h *ContextHost) Request() semantic.Request { return h.req }

// Load reads from the program's state partition (charges GasSload via
// the context).
func (h *ContextHost) Load(key string) ([]byte, error) {
	return h.ctx.Get(h.prefix + key)
}

// Store writes the program's state partition (charges GasSstore via the
// context).
func (h *ContextHost) Store(key string, val []byte) error {
	return h.ctx.Set(h.prefix+key, val)
}

// EmitEvent appends a namespaced program event (charges log gas via the
// context).
func (h *ContextHost) EmitEvent(topic string, data []byte) error {
	return h.ctx.Emit(EventTopicPrefix+topic, data)
}

// EvalBuiltin charges GasEvalBuiltin and runs the built-in five-clause
// evaluator against the host request.
func (h *ContextHost) EvalBuiltin(classes []string, minAgg, expiry uint64, purposes []string, maxInv uint64) (string, error) {
	if err := h.ctx.UseGas(GasEvalBuiltin); err != nil {
		return "", err
	}
	dec := policy.Evaluate(&policy.Policy{
		AllowedClasses: classes,
		MinAggregation: minAgg,
		ExpiryHeight:   expiry,
		Purposes:       purposes,
		MaxInvocations: maxInv,
	}, policy.Request{
		Layer:       h.req.Layer,
		Class:       h.req.Class,
		Purpose:     h.req.Purpose,
		Aggregation: h.req.Aggregation,
		Height:      h.req.Height,
		Invocations: h.req.Invocations,
	})
	return dec.Code, nil
}
