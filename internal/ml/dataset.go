package ml

import (
	"fmt"
	"math"

	"pds2/internal/crypto"
)

// Dataset is a dense supervised dataset. For classification, labels are
// ±1; for regression they are real-valued.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimension (zero for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Slice returns a view of examples [lo, hi).
func (d *Dataset) Slice(lo, hi int) *Dataset {
	return &Dataset{X: d.X[lo:hi], Y: d.Y[lo:hi]}
}

// Subset returns a view containing the examples at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{X: make([][]float64, len(idx)), Y: make([]float64, len(idx))}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Concat returns a dataset that concatenates the given parts (views, not
// copies).
func Concat(parts ...*Dataset) *Dataset {
	out := &Dataset{}
	for _, p := range parts {
		out.X = append(out.X, p.X...)
		out.Y = append(out.Y, p.Y...)
	}
	return out
}

// Shuffle permutes the dataset in place, deterministically from rng.
func (d *Dataset) Shuffle(rng *crypto.DRBG) {
	rng.Shuffle(d.Len(), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Hash returns a content digest of the dataset, the identifier under
// which it is registered on the governance ledger and deeded as an NFT.
func (d *Dataset) Hash() crypto.Digest {
	h := make([][]byte, 0, d.Len())
	for i := range d.X {
		row := make([]byte, 0, 8*(len(d.X[i])+1))
		for _, v := range d.X[i] {
			row = appendFloat(row, v)
		}
		row = appendFloat(row, d.Y[i])
		h = append(h, row)
	}
	return crypto.MerkleRootOf(h)
}

func appendFloat(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	return append(b, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// SyntheticConfig parameterizes the classification generator.
type SyntheticConfig struct {
	N          int     // number of examples
	Dim        int     // feature dimension
	LabelNoise float64 // probability of flipping a label
	Margin     float64 // scale of the ground-truth weight vector
}

// GenerateClassification draws a random ground-truth hyperplane and
// samples x ~ N(0, I), y = sign(w·x) with label noise. It returns the
// dataset and the ground-truth weights, so experiments can measure how
// close the learned model comes to the generating process.
func GenerateClassification(cfg SyntheticConfig, rng *crypto.DRBG) (*Dataset, []float64) {
	if cfg.Margin == 0 {
		cfg.Margin = 2
	}
	truth := make([]float64, cfg.Dim)
	for i := range truth {
		truth[i] = rng.NormFloat64() * cfg.Margin / math.Sqrt(float64(cfg.Dim))
	}
	d := &Dataset{X: make([][]float64, cfg.N), Y: make([]float64, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		x := make([]float64, cfg.Dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := 1.0
		if Dot(truth, x) < 0 {
			y = -1
		}
		if rng.Float64() < cfg.LabelNoise {
			y = -y
		}
		d.X[i] = x
		d.Y[i] = y
	}
	return d, truth
}

// GenerateRegression samples a linear-regression dataset with Gaussian
// feature and observation noise. It returns the dataset and ground truth.
func GenerateRegression(n, dim int, noise float64, rng *crypto.DRBG) (*Dataset, []float64) {
	truth := make([]float64, dim)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	d := &Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		d.X[i] = x
		d.Y[i] = Dot(truth, x) + noise*rng.NormFloat64()
	}
	return d, truth
}

// GenerateSensorReadings produces the IoT-flavoured dataset used by the
// device and marketplace examples: each example is a window of simulated
// sensor statistics (mean temperature, humidity, vibration energy, …) and
// the binary label indicates an anomaly. Structurally it is a
// classification task whose positive class is rare.
func GenerateSensorReadings(n int, anomalyRate float64, rng *crypto.DRBG) *Dataset {
	const dim = 8
	d := &Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		anomalous := rng.Float64() < anomalyRate
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if anomalous {
			// Anomalies shift a random pair of channels.
			c := rng.Intn(dim - 1)
			x[c] += 3 + rng.Float64()*2
			x[c+1] -= 3 + rng.Float64()*2
			d.Y[i] = 1
		} else {
			d.Y[i] = -1
		}
		d.X[i] = x
	}
	return d
}

// PartitionIID splits the dataset into n near-equal random parts, the
// "uniform assignment" scenario of the gossip-vs-federated comparisons.
func (d *Dataset) PartitionIID(n int, rng *crypto.DRBG) []*Dataset {
	if n <= 0 {
		panic(fmt.Sprintf("ml: partition into %d parts", n))
	}
	perm := rng.Perm(d.Len())
	parts := make([]*Dataset, n)
	for i := range parts {
		parts[i] = &Dataset{}
	}
	for i, j := range perm {
		p := parts[i%n]
		p.X = append(p.X, d.X[j])
		p.Y = append(p.Y, d.Y[j])
	}
	return parts
}

// PartitionByLabel assigns each node examples from a single class, the
// worst-case "1-class per node" non-IID scenario of [25]. Nodes are
// assigned classes round-robin.
func (d *Dataset) PartitionByLabel(n int, rng *crypto.DRBG) []*Dataset {
	byLabel := map[float64][]int{}
	for i, y := range d.Y {
		byLabel[y] = append(byLabel[y], i)
	}
	labels := make([]float64, 0, len(byLabel))
	for y := range byLabel {
		labels = append(labels, y)
	}
	// Deterministic label order (map iteration is random).
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			if labels[j] < labels[i] {
				labels[i], labels[j] = labels[j], labels[i]
			}
		}
	}
	parts := make([]*Dataset, n)
	for i := range parts {
		parts[i] = &Dataset{}
	}
	// Round-robin nodes over labels, then deal that label's examples to
	// its nodes.
	nodesOfLabel := make(map[float64][]int)
	for node := 0; node < n; node++ {
		y := labels[node%len(labels)]
		nodesOfLabel[y] = append(nodesOfLabel[y], node)
	}
	for _, y := range labels {
		nodes := nodesOfLabel[y]
		if len(nodes) == 0 {
			continue
		}
		idx := byLabel[y]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, j := range idx {
			p := parts[nodes[i%len(nodes)]]
			p.X = append(p.X, d.X[j])
			p.Y = append(p.Y, d.Y[j])
		}
	}
	return parts
}

// TrainTestSplit splits the dataset into a training and a test part, with
// testFrac of the examples (rounded down) going to the test set.
func (d *Dataset) TrainTestSplit(testFrac float64, rng *crypto.DRBG) (train, test *Dataset) {
	perm := rng.Perm(d.Len())
	nTest := int(float64(d.Len()) * testFrac)
	testIdx, trainIdx := perm[:nTest], perm[nTest:]
	return d.Subset(trainIdx), d.Subset(testIdx)
}
