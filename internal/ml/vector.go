// Package ml is the machine-learning substrate of PDS². The paper's
// workloads of interest are "ML training tasks … one of the most relevant
// and valuable data aggregation workloads" (§I); this package provides
// the models those workloads train — logistic regression and Pegasos SVM,
// the models used throughout the gossip-learning literature the paper
// builds on [22][25] — together with dense vector kernels, synthetic
// dataset generators with controllable non-IID partitioning, and
// evaluation metrics.
package ml

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on mismatched
// lengths, which always indicates a programming error.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: dot of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("ml: axpy of mismatched lengths %d and %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	return append([]float64(nil), x...)
}

// Lerp overwrites dst with (1-t)*a + t*b.
func Lerp(dst, a, b []float64, t float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("ml: lerp of mismatched lengths")
	}
	for i := range dst {
		dst[i] = (1-t)*a[i] + t*b[i]
	}
}

// Sigmoid is the logistic function, computed in a numerically stable way
// for large negative inputs.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
