package ml

import "math"

// Predictor is anything that maps a feature vector to a decision value;
// both Model implementations and oblivious-execution backends satisfy it.
type Predictor interface {
	Predict(x []float64) float64
}

// ZeroOneError returns the misclassification rate of p on d (labels ±1),
// the metric reported by the gossip-learning literature [25].
func ZeroOneError(p Predictor, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	wrong := 0
	for i := range d.X {
		pred := 1.0
		if p.Predict(d.X[i]) < 0 {
			pred = -1
		}
		if pred != d.Y[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(d.Len())
}

// Accuracy is 1 - ZeroOneError.
func Accuracy(p Predictor, d *Dataset) float64 {
	return 1 - ZeroOneError(p, d)
}

// MSE returns the mean squared error of p on d (real-valued labels).
func MSE(p Predictor, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	var s float64
	for i := range d.X {
		e := p.Predict(d.X[i]) - d.Y[i]
		s += e * e
	}
	return s / float64(d.Len())
}

// LogLoss returns the mean negative log-likelihood of a logistic
// predictor on d (labels ±1).
func LogLoss(p Predictor, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	var s float64
	for i := range d.X {
		z := p.Predict(d.X[i])
		// -log sigmoid(y*z), computed stably.
		m := d.Y[i] * z
		if m > 0 {
			s += math.Log1p(math.Exp(-m))
		} else {
			s += -m + math.Log1p(math.Exp(m))
		}
	}
	return s / float64(d.Len())
}

// TrainEpochs runs SGD over the dataset for the given number of epochs,
// in order. Callers that want stochastic order shuffle first.
func TrainEpochs(m Model, d *Dataset, epochs int) {
	for e := 0; e < epochs; e++ {
		for i := range d.X {
			m.Update(d.X[i], d.Y[i])
		}
	}
}
