package ml

import (
	"math"
	"testing"
	"testing/quick"

	"pds2/internal/crypto"
)

func TestDotAxpyScaleNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("dot = %v", Dot(a, b))
	}
	y := CloneVec(b)
	Axpy(2, a, y) // y = b + 2a = [6, 9, 12]
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3 || y[1] != 4.5 || y[2] != 6 {
		t.Fatalf("scale = %v", y)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("norm = %v", got)
	}
}

func TestDotMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); s != 0.5 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); s < 0.999 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s > 0.001 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
	// Stability: huge negative input must not NaN.
	if s := Sigmoid(-1e9); math.IsNaN(s) {
		t.Fatal("sigmoid NaN")
	}
	// Symmetry property.
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) || math.Abs(z) > 500 {
			return true
		}
		return math.Abs(Sigmoid(z)+Sigmoid(-z)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogisticLearnsSeparableData(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(1, "ml")
	data, _ := GenerateClassification(SyntheticConfig{N: 2000, Dim: 10, LabelNoise: 0}, rng)
	train, test := data.TrainTestSplit(0.25, rng)

	m := NewLogisticModel(10, 1e-3)
	TrainEpochs(m, train, 5)
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Fatalf("logistic accuracy on separable data = %v", acc)
	}
}

func TestPegasosLearnsSeparableData(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(2, "ml")
	data, _ := GenerateClassification(SyntheticConfig{N: 2000, Dim: 10, LabelNoise: 0}, rng)
	train, test := data.TrainTestSplit(0.25, rng)

	m := NewPegasosSVM(10, 1e-3)
	TrainEpochs(m, train, 5)
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Fatalf("pegasos accuracy = %v", acc)
	}
}

func TestLinearRegressionRecoversTruth(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(3, "ml")
	data, truth := GenerateRegression(5000, 5, 0.01, rng)
	m := NewLinearRegression(5, 0.1)
	TrainEpochs(m, data, 3)
	for i := range truth {
		if math.Abs(m.W[i]-truth[i]) > 0.1 {
			t.Fatalf("weight %d = %v, truth %v", i, m.W[i], truth[i])
		}
	}
	if mse := MSE(m, data); mse > 0.05 {
		t.Fatalf("mse = %v", mse)
	}
}

func TestModelAgeCountsUpdates(t *testing.T) {
	m := NewLogisticModel(3, 0)
	x := []float64{1, 0, 0}
	for i := 0; i < 7; i++ {
		m.Update(x, 1)
	}
	if m.Age() != 7 {
		t.Fatalf("age = %d", m.Age())
	}
}

func TestMergeConvexCombination(t *testing.T) {
	a := NewLogisticModel(2, 1e-4)
	b := NewLogisticModel(2, 1e-4)
	a.W = []float64{1, 2}
	b.W = []float64{3, 6}
	a.SetAge(10)
	b.SetAge(30)
	if err := a.MergeFrom(b, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	if a.W[0] != 2 || a.W[1] != 4 {
		t.Fatalf("merged W = %v", a.W)
	}
	if a.Age() != 20 {
		t.Fatalf("merged age = %d", a.Age())
	}
}

func TestMergeTypeMismatch(t *testing.T) {
	a := NewLogisticModel(2, 1e-4)
	b := NewPegasosSVM(2, 1e-4)
	if err := a.MergeFrom(b, 0.5, 0.5); err == nil {
		t.Fatal("cross-type merge accepted")
	}
	if err := b.MergeFrom(a, 0.5, 0.5); err == nil {
		t.Fatal("cross-type merge accepted")
	}
}

func TestMergeDimMismatch(t *testing.T) {
	a := NewLogisticModel(2, 1e-4)
	b := NewLogisticModel(3, 1e-4)
	if err := a.MergeFrom(b, 0.5, 0.5); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewLogisticModel(2, 1e-4)
	m.W = []float64{1, 1}
	c := m.Clone().(*LogisticModel)
	c.W[0] = 99
	if m.W[0] != 1 {
		t.Fatal("clone shares weights")
	}
}

func TestGenerateClassificationShapes(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(4, "ml")
	d, truth := GenerateClassification(SyntheticConfig{N: 100, Dim: 7}, rng)
	if d.Len() != 100 || d.Dim() != 7 || len(truth) != 7 {
		t.Fatalf("shapes: %d %d %d", d.Len(), d.Dim(), len(truth))
	}
	for _, y := range d.Y {
		if y != 1 && y != -1 {
			t.Fatalf("label %v", y)
		}
	}
}

func TestLabelNoiseRate(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(5, "ml")
	d, truth := GenerateClassification(SyntheticConfig{N: 5000, Dim: 5, LabelNoise: 0.2}, rng)
	flipped := 0
	for i := range d.X {
		want := 1.0
		if Dot(truth, d.X[i]) < 0 {
			want = -1
		}
		if d.Y[i] != want {
			flipped++
		}
	}
	rate := float64(flipped) / float64(d.Len())
	if math.Abs(rate-0.2) > 0.03 {
		t.Fatalf("label noise rate = %v", rate)
	}
}

func TestPartitionIIDCoversAll(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(6, "ml")
	d, _ := GenerateClassification(SyntheticConfig{N: 103, Dim: 3}, rng)
	parts := d.PartitionIID(10, rng)
	total := 0
	for _, p := range parts {
		total += p.Len()
		if p.Len() < 10 || p.Len() > 11 {
			t.Fatalf("unbalanced part: %d", p.Len())
		}
	}
	if total != 103 {
		t.Fatalf("partition lost examples: %d", total)
	}
}

func TestPartitionByLabelIsSingleClass(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(7, "ml")
	d, _ := GenerateClassification(SyntheticConfig{N: 1000, Dim: 3}, rng)
	parts := d.PartitionByLabel(10, rng)
	total := 0
	for i, p := range parts {
		total += p.Len()
		if p.Len() == 0 {
			continue
		}
		first := p.Y[0]
		for _, y := range p.Y {
			if y != first {
				t.Fatalf("node %d mixes classes", i)
			}
		}
	}
	if total != 1000 {
		t.Fatalf("partition lost examples: %d", total)
	}
}

func TestTrainTestSplitDisjointAndComplete(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(8, "ml")
	d, _ := GenerateClassification(SyntheticConfig{N: 100, Dim: 2}, rng)
	train, test := d.TrainTestSplit(0.3, rng)
	if test.Len() != 30 || train.Len() != 70 {
		t.Fatalf("split sizes: %d/%d", train.Len(), test.Len())
	}
}

func TestDatasetHashSensitive(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(9, "ml")
	d, _ := GenerateClassification(SyntheticConfig{N: 20, Dim: 3}, rng)
	h1 := d.Hash()
	if h1 != d.Hash() {
		t.Fatal("hash not deterministic")
	}
	d.Y[0] = -d.Y[0]
	if d.Hash() == h1 {
		t.Fatal("hash insensitive to label change")
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	m := NewLogisticModel(2, 1e-4)
	empty := &Dataset{}
	if ZeroOneError(m, empty) != 0 || MSE(m, empty) != 0 || LogLoss(m, empty) != 0 {
		t.Fatal("empty dataset metrics not zero")
	}
}

func TestLogLossDecreasesWithTraining(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(10, "ml")
	d, _ := GenerateClassification(SyntheticConfig{N: 1000, Dim: 5}, rng)
	m := NewLogisticModel(5, 1e-3)
	before := LogLoss(m, d)
	TrainEpochs(m, d, 3)
	after := LogLoss(m, d)
	if after >= before {
		t.Fatalf("log loss did not decrease: %v -> %v", before, after)
	}
}

func TestGenerateSensorReadings(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(11, "ml")
	d := GenerateSensorReadings(2000, 0.1, rng)
	pos := 0
	for _, y := range d.Y {
		if y == 1 {
			pos++
		}
	}
	rate := float64(pos) / float64(d.Len())
	if math.Abs(rate-0.1) > 0.03 {
		t.Fatalf("anomaly rate = %v", rate)
	}
	// Anomalies must be learnable.
	train, test := d.TrainTestSplit(0.25, rng)
	m := NewLogisticModel(d.Dim(), 1e-3)
	TrainEpochs(m, train, 10)
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Fatalf("sensor anomaly accuracy = %v", acc)
	}
}

func TestSubsetAndConcat(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{1}, {2}, {3}, {4}},
		Y: []float64{1, -1, 1, -1},
	}
	s := d.Subset([]int{0, 2})
	if s.Len() != 2 || s.X[1][0] != 3 {
		t.Fatalf("subset: %+v", s)
	}
	c := Concat(s, d.Slice(3, 4))
	if c.Len() != 3 || c.Y[2] != -1 {
		t.Fatalf("concat: %+v", c)
	}
}

func TestLerp(t *testing.T) {
	a := []float64{0, 10}
	b := []float64{10, 20}
	dst := make([]float64, 2)
	Lerp(dst, a, b, 0.25)
	if dst[0] != 2.5 || dst[1] != 12.5 {
		t.Fatalf("lerp = %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lerp did not panic")
		}
	}()
	Lerp(dst, a, []float64{1}, 0.5)
}

func TestIntercept(t *testing.T) {
	lm := NewLogisticModel(2, 1e-3)
	lm.SetIntercept(1.5)
	if lm.Intercept() != 1.5 {
		t.Fatal("logistic intercept")
	}
	svm := NewPegasosSVM(2, 1e-3)
	svm.SetIntercept(9)
	if svm.Intercept() != 0 {
		t.Fatal("svm intercept should stay 0")
	}
	lr := NewLinearRegression(2, 0.1)
	lr.SetIntercept(-2)
	if lr.Intercept() != -2 {
		t.Fatal("regression intercept")
	}
}
