package ml

import (
	"fmt"
	"math"
)

// Model is the training-state abstraction shared by gossip learning,
// federated learning and the oblivious-execution backends. All PDS²
// linear models implement it.
//
// Age counts the total number of SGD examples a model has absorbed; the
// gossip-learning merge rule weighs models by age so that a model that
// has seen more data dominates the average ([22], [25]).
type Model interface {
	// Update performs one SGD step on example (x, y). Labels are ±1.
	Update(x []float64, y float64)

	// Predict returns the raw decision value for x (positive = class +1).
	Predict(x []float64) float64

	// Age returns the number of examples absorbed so far.
	Age() uint64

	// Clone returns an independent deep copy.
	Clone() Model

	// MergeFrom folds another model into this one with the given convex
	// weights (selfWeight + otherWeight should be 1).
	MergeFrom(other Model, selfWeight, otherWeight float64) error

	// Weights exposes the parameter vector (shared slice, not a copy).
	Weights() []float64

	// Intercept returns the bias term (zero for models without one).
	Intercept() float64

	// SetIntercept overrides the bias term; a no-op for models without
	// one.
	SetIntercept(b float64)

	// WireSize returns the serialized size in bytes, used by the network
	// simulator for bandwidth accounting.
	WireSize() int
}

// LogisticModel is L2-regularized logistic regression trained by SGD with
// the 1/(lambda*t) Pegasos-style learning-rate schedule.
type LogisticModel struct {
	W      []float64
	Bias   float64
	Lambda float64 // L2 regularization strength
	age    uint64
}

// NewLogisticModel creates a zero-initialized model for dim features.
func NewLogisticModel(dim int, lambda float64) *LogisticModel {
	if lambda <= 0 {
		lambda = 1e-4
	}
	return &LogisticModel{W: make([]float64, dim), Lambda: lambda}
}

// Update implements Model. y must be ±1.
func (m *LogisticModel) Update(x []float64, y float64) {
	m.age++
	lr := 1 / (m.Lambda * float64(m.age+1))
	// Gradient of log loss: -y*sigmoid(-y*z)*x  (for y in ±1)
	z := Dot(m.W, x) + m.Bias
	g := -y * Sigmoid(-y*z)
	// L2 shrink then gradient step.
	Scale(1-lr*m.Lambda, m.W)
	Axpy(-lr*g, x, m.W)
	m.Bias -= lr * g
}

// Predict implements Model.
func (m *LogisticModel) Predict(x []float64) float64 {
	return Dot(m.W, x) + m.Bias
}

// PredictProb returns P(y=+1 | x).
func (m *LogisticModel) PredictProb(x []float64) float64 {
	return Sigmoid(m.Predict(x))
}

// Age implements Model.
func (m *LogisticModel) Age() uint64 { return m.age }

// SetAge overrides the example counter; used when injecting pre-trained
// models into a simulation.
func (m *LogisticModel) SetAge(a uint64) { m.age = a }

// Clone implements Model.
func (m *LogisticModel) Clone() Model {
	return &LogisticModel{W: CloneVec(m.W), Bias: m.Bias, Lambda: m.Lambda, age: m.age}
}

// MergeFrom implements Model: convex combination of parameters; ages add
// proportionally to the mixing weights, following the gossip-learning
// merge rule.
func (m *LogisticModel) MergeFrom(other Model, selfWeight, otherWeight float64) error {
	o, ok := other.(*LogisticModel)
	if !ok {
		return fmt.Errorf("ml: cannot merge %T into LogisticModel", other)
	}
	if len(o.W) != len(m.W) {
		return fmt.Errorf("ml: merge dimension mismatch: %d vs %d", len(o.W), len(m.W))
	}
	for i := range m.W {
		m.W[i] = selfWeight*m.W[i] + otherWeight*o.W[i]
	}
	m.Bias = selfWeight*m.Bias + otherWeight*o.Bias
	m.age = uint64(math.Round(selfWeight*float64(m.age) + otherWeight*float64(o.age)))
	return nil
}

// Weights implements Model.
func (m *LogisticModel) Weights() []float64 { return m.W }

// Intercept implements Model.
func (m *LogisticModel) Intercept() float64 { return m.Bias }

// SetIntercept implements Model.
func (m *LogisticModel) SetIntercept(b float64) { m.Bias = b }

// WireSize implements Model: 8 bytes per weight plus bias and age.
func (m *LogisticModel) WireSize() int { return 8*len(m.W) + 8 + 8 }

// PegasosSVM is a linear SVM trained with the Pegasos algorithm, the
// model of the original gossip-learning paper [22].
type PegasosSVM struct {
	W      []float64
	Lambda float64
	age    uint64
}

// NewPegasosSVM creates a zero-initialized SVM for dim features.
func NewPegasosSVM(dim int, lambda float64) *PegasosSVM {
	if lambda <= 0 {
		lambda = 1e-4
	}
	return &PegasosSVM{W: make([]float64, dim), Lambda: lambda}
}

// Update implements Model. y must be ±1.
func (m *PegasosSVM) Update(x []float64, y float64) {
	m.age++
	lr := 1 / (m.Lambda * float64(m.age+1))
	Scale(1-lr*m.Lambda, m.W)
	if y*Dot(m.W, x) < 1 { // hinge-loss subgradient active
		Axpy(lr*y, x, m.W)
	}
}

// Predict implements Model.
func (m *PegasosSVM) Predict(x []float64) float64 { return Dot(m.W, x) }

// Age implements Model.
func (m *PegasosSVM) Age() uint64 { return m.age }

// Clone implements Model.
func (m *PegasosSVM) Clone() Model {
	return &PegasosSVM{W: CloneVec(m.W), Lambda: m.Lambda, age: m.age}
}

// MergeFrom implements Model.
func (m *PegasosSVM) MergeFrom(other Model, selfWeight, otherWeight float64) error {
	o, ok := other.(*PegasosSVM)
	if !ok {
		return fmt.Errorf("ml: cannot merge %T into PegasosSVM", other)
	}
	if len(o.W) != len(m.W) {
		return fmt.Errorf("ml: merge dimension mismatch: %d vs %d", len(o.W), len(m.W))
	}
	for i := range m.W {
		m.W[i] = selfWeight*m.W[i] + otherWeight*o.W[i]
	}
	m.age = uint64(math.Round(selfWeight*float64(m.age) + otherWeight*float64(o.age)))
	return nil
}

// Weights implements Model.
func (m *PegasosSVM) Weights() []float64 { return m.W }

// Intercept implements Model (Pegasos has no bias term).
func (m *PegasosSVM) Intercept() float64 { return 0 }

// SetIntercept implements Model; a no-op for the bias-free SVM.
func (m *PegasosSVM) SetIntercept(float64) {}

// WireSize implements Model.
func (m *PegasosSVM) WireSize() int { return 8*len(m.W) + 8 }

// LinearRegression is ordinary least squares trained by SGD, used by the
// pricing and Shapley experiments where a real-valued target is needed.
type LinearRegression struct {
	W    []float64
	Bias float64
	LR   float64
	age  uint64
}

// NewLinearRegression creates a zero-initialized regressor.
func NewLinearRegression(dim int, lr float64) *LinearRegression {
	if lr <= 0 {
		lr = 0.01
	}
	return &LinearRegression{W: make([]float64, dim), LR: lr}
}

// Update performs one SGD step on squared loss; y is the real target.
func (m *LinearRegression) Update(x []float64, y float64) {
	m.age++
	pred := Dot(m.W, x) + m.Bias
	g := pred - y
	lr := m.LR / math.Sqrt(float64(m.age))
	Axpy(-lr*g, x, m.W)
	m.Bias -= lr * g
}

// Predict returns the regression estimate for x.
func (m *LinearRegression) Predict(x []float64) float64 {
	return Dot(m.W, x) + m.Bias
}

// Age implements Model.
func (m *LinearRegression) Age() uint64 { return m.age }

// Clone implements Model.
func (m *LinearRegression) Clone() Model {
	return &LinearRegression{W: CloneVec(m.W), Bias: m.Bias, LR: m.LR, age: m.age}
}

// MergeFrom implements Model.
func (m *LinearRegression) MergeFrom(other Model, selfWeight, otherWeight float64) error {
	o, ok := other.(*LinearRegression)
	if !ok {
		return fmt.Errorf("ml: cannot merge %T into LinearRegression", other)
	}
	if len(o.W) != len(m.W) {
		return fmt.Errorf("ml: merge dimension mismatch: %d vs %d", len(o.W), len(m.W))
	}
	for i := range m.W {
		m.W[i] = selfWeight*m.W[i] + otherWeight*o.W[i]
	}
	m.Bias = selfWeight*m.Bias + otherWeight*o.Bias
	m.age = uint64(math.Round(selfWeight*float64(m.age) + otherWeight*float64(o.age)))
	return nil
}

// Weights implements Model.
func (m *LinearRegression) Weights() []float64 { return m.W }

// Intercept implements Model.
func (m *LinearRegression) Intercept() float64 { return m.Bias }

// SetIntercept implements Model.
func (m *LinearRegression) SetIntercept(b float64) { m.Bias = b }

// WireSize implements Model.
func (m *LinearRegression) WireSize() int { return 8*len(m.W) + 16 }
