package he

import (
	"math"
	"math/big"
	"testing"

	"pds2/internal/crypto"
)

// testKeyBits keeps unit tests fast; benchmark code uses 2048.
const testKeyBits = 512

func testKey(t *testing.T, seed uint64) (*PrivateKey, *crypto.DRBG) {
	t.Helper()
	rng := crypto.NewDRBGFromUint64(seed, "he-test")
	key, err := GenerateKey(testKeyBits, rng)
	if err != nil {
		t.Fatal(err)
	}
	return key, rng
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key, rng := testKey(t, 1)
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		c, err := key.Encrypt(big.NewInt(m), rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := key.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Fatalf("decrypt = %v, want %d", got, m)
		}
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	key, rng := testKey(t, 2)
	c1, _ := key.Encrypt(big.NewInt(7), rng)
	c2, _ := key.Encrypt(big.NewInt(7), rng)
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	key, rng := testKey(t, 3)
	c1, _ := key.Encrypt(big.NewInt(100), rng)
	c2, _ := key.Encrypt(big.NewInt(23), rng)
	sum, err := key.Decrypt(key.Add(c1, c2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 123 {
		t.Fatalf("homomorphic sum = %v", sum)
	}
}

func TestHomomorphicAddPlainMulPlain(t *testing.T) {
	key, rng := testKey(t, 4)
	c, _ := key.Encrypt(big.NewInt(10), rng)
	got, _ := key.Decrypt(key.AddPlain(c, big.NewInt(5)))
	if got.Int64() != 15 {
		t.Fatalf("AddPlain = %v", got)
	}
	got, _ = key.Decrypt(key.MulPlain(c, big.NewInt(7)))
	if got.Int64() != 70 {
		t.Fatalf("MulPlain = %v", got)
	}
}

func TestPlaintextRangeEnforced(t *testing.T) {
	key, rng := testKey(t, 5)
	if _, err := key.Encrypt(big.NewInt(-1), rng); err == nil {
		t.Fatal("negative plaintext accepted")
	}
	if _, err := key.Encrypt(new(big.Int).Set(key.N), rng); err == nil {
		t.Fatal("plaintext >= n accepted")
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	key, _ := testKey(t, 6)
	if _, err := key.Decrypt(&Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Fatal("zero ciphertext accepted")
	}
	if _, err := key.Decrypt(&Ciphertext{C: new(big.Int).Set(key.N2)}); err == nil {
		t.Fatal("out-of-range ciphertext accepted")
	}
}

func TestFloatEncodeDecode(t *testing.T) {
	key, _ := testKey(t, 7)
	for _, f := range []float64{0, 1.5, -2.75, 1e-3, -1e-3, 1234.5678} {
		m := key.EncodeFloat(f, DefaultScale)
		got := key.DecodeFloat(m, DefaultScale)
		if math.Abs(got-f) > 1e-6 {
			t.Fatalf("float round trip %v -> %v", f, got)
		}
	}
}

func TestEncryptFloatNegative(t *testing.T) {
	key, rng := testKey(t, 8)
	c, err := key.EncryptFloat(-3.25, DefaultScale, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptFloat(c, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+3.25) > 1e-6 {
		t.Fatalf("decrypted %v", got)
	}
}

func TestDotEncryptedMatchesPlain(t *testing.T) {
	key, rng := testKey(t, 9)
	x := []float64{1.5, -2.0, 0.25, 3.0}
	w := []float64{0.5, 1.0, -4.0, 0.125}
	bias := 0.75

	encX, err := key.EncryptVector(x, DefaultScale, rng)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := key.DotEncrypted(encX, w, bias, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.DecryptFloat(ct, DefaultScale*DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	want := bias
	for i := range x {
		want += x[i] * w[i]
	}
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("encrypted dot = %v, want %v", got, want)
	}
}

func TestDotEncryptedDimensionMismatch(t *testing.T) {
	key, rng := testKey(t, 10)
	encX, _ := key.EncryptVector([]float64{1, 2}, DefaultScale, rng)
	if _, err := key.DotEncrypted(encX, []float64{1}, 0, DefaultScale); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestKeyGenDeterministic(t *testing.T) {
	k1, err := GenerateKey(256, crypto.NewDRBGFromUint64(42, "kg"))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateKey(256, crypto.NewDRBGFromUint64(42, "kg"))
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k2.N) != 0 {
		t.Fatal("same-seed keygen differs")
	}
	k3, _ := GenerateKey(256, crypto.NewDRBGFromUint64(43, "kg"))
	if k1.N.Cmp(k3.N) == 0 {
		t.Fatal("different seeds gave same key")
	}
}

func TestGenerateKeyRejectsTinyModulus(t *testing.T) {
	if _, err := GenerateKey(32, crypto.NewDRBGFromUint64(1, "kg")); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}

func TestCiphertextWireSize(t *testing.T) {
	key, rng := testKey(t, 11)
	c, _ := key.Encrypt(big.NewInt(1), rng)
	// Ciphertexts live mod n², so ~2x key bits.
	if sz := c.WireSize(); sz < testKeyBits/8 || sz > 2*testKeyBits/8+2 {
		t.Fatalf("wire size = %d bytes", sz)
	}
}

func TestAddManyRandomizedProperty(t *testing.T) {
	key, rng := testKey(t, 12)
	// Sum of 20 random small values survives the homomorphism.
	var want int64
	acc, _ := key.Encrypt(big.NewInt(0), rng)
	for i := 0; i < 20; i++ {
		v := int64(rng.Intn(1000))
		want += v
		c, _ := key.Encrypt(big.NewInt(v), rng)
		acc = key.Add(acc, c)
	}
	got, _ := key.Decrypt(acc)
	if got.Int64() != want {
		t.Fatalf("sum = %v, want %d", got, want)
	}
}
