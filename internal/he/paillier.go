// Package he implements the Paillier additively-homomorphic cryptosystem
// and encrypted linear-model evaluation on top of it.
//
// The paper (§III-B) surveys homomorphic encryption as a candidate for
// oblivious computation and concludes that it "introduce[s] large
// overheads in the computation … impractical for most applications,
// particularly when dealing with a massive amount of data as for the
// case of IoT". This package exists to reproduce that claim honestly:
// the ciphertext arithmetic is real (2048-bit modular exponentiation),
// so the measured HE-vs-plain overhead ratios in experiment E3 come from
// actual cryptography rather than a synthetic slowdown factor.
package he

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	cryptorand "crypto/rand"

	"pds2/internal/crypto"
)

// PublicKey is the Paillier public key. With g = n+1 the scheme needs
// only n; n² is cached.
type PublicKey struct {
	N  *big.Int
	N2 *big.Int // n², cached
}

// PrivateKey holds the decryption trapdoor.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // lambda^{-1} mod n
}

// Ciphertext is a Paillier ciphertext. Values are immutable; homomorphic
// operations return fresh ciphertexts.
type Ciphertext struct {
	C *big.Int
}

// Clone returns an independent copy.
func (c *Ciphertext) Clone() *Ciphertext {
	return &Ciphertext{C: new(big.Int).Set(c.C)}
}

// WireSize returns the serialized size in bytes.
func (c *Ciphertext) WireSize() int { return (c.C.BitLen() + 7) / 8 }

// GenerateKey creates a Paillier key pair with an n of roughly the given
// bit length, drawing primes deterministically from rng.
func GenerateKey(bits int, rng *crypto.DRBG) (*PrivateKey, error) {
	if bits < 64 {
		return nil, errors.New("he: modulus below 64 bits is meaningless")
	}
	// rand.Prime consumes the DRBG as its entropy source, so key
	// generation is reproducible from the seed.
	p, err := cryptorand.Prime(rng, bits/2)
	if err != nil {
		return nil, fmt.Errorf("he: prime generation: %w", err)
	}
	q, err := cryptorand.Prime(rng, bits/2)
	if err != nil {
		return nil, fmt.Errorf("he: prime generation: %w", err)
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("he: degenerate key (p == q)")
	}
	n := new(big.Int).Mul(p, q)
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)
	mu := new(big.Int).ModInverse(lambda, n)
	if mu == nil {
		return nil, errors.New("he: lambda not invertible (bad primes)")
	}
	pub := PublicKey{N: n, N2: new(big.Int).Mul(n, n)}
	return &PrivateKey{PublicKey: pub, lambda: lambda, mu: mu}, nil
}

// Encrypt encrypts m ∈ [0, n). With g = n+1, g^m = 1 + m·n (mod n²),
// avoiding one modular exponentiation.
func (pk *PublicKey) Encrypt(m *big.Int, rng *crypto.DRBG) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("he: plaintext out of range [0, n)")
	}
	r, err := pk.randomUnit(rng)
	if err != nil {
		return nil, err
	}
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// randomUnit draws r ∈ [1, n) with gcd(r, n) = 1.
func (pk *PublicKey) randomUnit(rng *crypto.DRBG) (*big.Int, error) {
	one := big.NewInt(1)
	for i := 0; i < 128; i++ {
		r, err := cryptorand.Int(rng, pk.N)
		if err != nil {
			return nil, fmt.Errorf("he: random unit: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
	return nil, errors.New("he: could not find unit mod n")
}

// Decrypt recovers the plaintext in [0, n).
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if c == nil || c.C == nil || c.C.Sign() <= 0 || c.C.Cmp(sk.N2) >= 0 {
		return nil, errors.New("he: ciphertext out of range")
	}
	u := new(big.Int).Exp(c.C, sk.lambda, sk.N2)
	// L(u) = (u - 1) / n
	u.Sub(u, big.NewInt(1))
	u.Div(u, sk.N)
	u.Mul(u, sk.mu)
	u.Mod(u, sk.N)
	return u, nil
}

// Add returns the encryption of m1 + m2 (mod n).
func (pk *PublicKey) Add(c1, c2 *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(c1.C, c2.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// AddPlain returns the encryption of m + k (mod n) for plaintext k >= 0.
func (pk *PublicKey) AddPlain(c *Ciphertext, k *big.Int) *Ciphertext {
	gk := new(big.Int).Mul(new(big.Int).Mod(k, pk.N), pk.N)
	gk.Add(gk, big.NewInt(1))
	gk.Mod(gk, pk.N2)
	out := gk.Mul(gk, c.C)
	out.Mod(out, pk.N2)
	return &Ciphertext{C: out}
}

// MulPlain returns the encryption of m · k (mod n) for plaintext k.
func (pk *PublicKey) MulPlain(c *Ciphertext, k *big.Int) *Ciphertext {
	out := new(big.Int).Exp(c.C, new(big.Int).Mod(k, pk.N), pk.N2)
	return &Ciphertext{C: out}
}

// EncryptZero returns a fresh encryption of zero, used for
// re-randomization.
func (pk *PublicKey) EncryptZero(rng *crypto.DRBG) (*Ciphertext, error) {
	return pk.Encrypt(big.NewInt(0), rng)
}

// Fixed-point encoding of floats into the plaintext space. Negative
// values map to the upper half of [0, n), mirroring two's complement.

// DefaultScale is the fixed-point scale: 2^24 keeps ML values exact to
// ~6e-8 while leaving ample headroom in a 1024-bit plaintext space.
const DefaultScale = 1 << 24

// EncodeFloat maps f to the plaintext space of pk at the given scale.
func (pk *PublicKey) EncodeFloat(f float64, scale int64) *big.Int {
	v := big.NewInt(int64(math.Round(f * float64(scale))))
	return v.Mod(v, pk.N)
}

// DecodeFloat inverts EncodeFloat, interpreting the upper half of the
// plaintext space as negative.
func (pk *PublicKey) DecodeFloat(m *big.Int, scale int64) float64 {
	half := new(big.Int).Rsh(pk.N, 1)
	v := new(big.Int).Set(m)
	if v.Cmp(half) > 0 {
		v.Sub(v, pk.N)
	}
	f, _ := new(big.Float).SetInt(v).Float64()
	return f / float64(scale)
}

// EncryptFloat encrypts a float at the given scale.
func (pk *PublicKey) EncryptFloat(f float64, scale int64, rng *crypto.DRBG) (*Ciphertext, error) {
	return pk.Encrypt(pk.EncodeFloat(f, scale), rng)
}

// DecryptFloat decrypts a float encoded at the given scale. totalScale
// lets callers decode products, whose scale is the product of the factor
// scales.
func (sk *PrivateKey) DecryptFloat(c *Ciphertext, totalScale int64) (float64, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return 0, err
	}
	return sk.DecodeFloat(m, totalScale), nil
}

// EncryptVector encrypts every component of x at the given scale.
func (pk *PublicKey) EncryptVector(x []float64, scale int64, rng *crypto.DRBG) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(x))
	for i, v := range x {
		c, err := pk.EncryptFloat(v, scale, rng)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// DotEncrypted computes Enc(w · x + b·scale²-adjusted bias) from an
// encrypted feature vector and a *plaintext* model — the private-
// inference setting of MiniONN-style protocols: the provider encrypts
// its features, the executor holds the consumer's model in plaintext and
// evaluates the linear part homomorphically without ever seeing the
// features. The result is encoded at scale² (one scale from the features,
// one from the weights).
func (pk *PublicKey) DotEncrypted(encX []*Ciphertext, w []float64, bias float64, scale int64) (*Ciphertext, error) {
	if len(encX) != len(w) {
		return nil, fmt.Errorf("he: dot of %d ciphertexts with %d weights", len(encX), len(w))
	}
	// Start from bias at scale².
	acc := pk.EncodeFloat(bias, scale)
	acc.Mul(acc, big.NewInt(scale))
	acc.Mod(acc, pk.N)
	// Enc(bias·scale²) without randomness: (1 + acc·n); re-randomization
	// is the caller's choice via AddPlain with EncryptZero.
	accCt := &Ciphertext{C: new(big.Int).Mod(new(big.Int).Add(big.NewInt(1), new(big.Int).Mul(acc, pk.N)), pk.N2)}
	for i, c := range encX {
		term := pk.MulPlain(c, pk.EncodeFloat(w[i], scale))
		accCt = pk.Add(accCt, term)
	}
	return accCt, nil
}
