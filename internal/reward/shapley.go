// Package reward implements the reward schemes of §IV-A: Shapley-value
// attribution of a workload's value to the contributing data providers —
// exact (exponential, "unfeasible to use as is"), permutation-sampling
// Monte Carlo, and truncated Monte Carlo (TMC-Shapley, Ghorbani & Zou
// [30]) — plus the leave-one-out baseline, payout allocation, and the
// model-based pricing scheme of Chen et al. [32] where a buyer's budget
// buys a correspondingly noisy version of the optimal model.
package reward

import (
	"errors"
	"fmt"
	"math"

	"pds2/internal/crypto"
	"pds2/internal/ml"
)

// ValueFn evaluates a coalition of players (provider indices) and
// returns its utility — in PDS², typically the test accuracy of a model
// trained on the union of the coalition's datasets. Implementations must
// be deterministic: the same coalition always yields the same value.
type ValueFn func(coalition []int) float64

// CachedValue memoizes a ValueFn by coalition bitmask, which is what
// makes exact Shapley (2^n evaluations, each reused n times) tractable
// for the feasible range of n. It also counts distinct evaluations, the
// cost metric of experiment E8. Only usable for n <= 63 players.
type CachedValue struct {
	fn    ValueFn
	cache map[uint64]float64

	// Evaluations counts calls that missed the cache — the number of
	// model trainings a real deployment would pay for.
	Evaluations int
}

// NewCachedValue wraps fn with memoization.
func NewCachedValue(fn ValueFn) *CachedValue {
	return &CachedValue{fn: fn, cache: make(map[uint64]float64)}
}

// Value evaluates the coalition given as a bitmask.
func (c *CachedValue) Value(mask uint64) float64 {
	if v, ok := c.cache[mask]; ok {
		return v
	}
	coalition := maskToCoalition(mask)
	v := c.fn(coalition)
	c.cache[mask] = v
	c.Evaluations++
	return v
}

func maskToCoalition(mask uint64) []int {
	var out []int
	for i := 0; mask != 0; i++ {
		if mask&1 == 1 {
			out = append(out, i)
		}
		mask >>= 1
	}
	return out
}

// ExactShapley computes exact Shapley values for n players by direct
// summation over all subsets: φ_i = Σ_S |S|!(n-|S|-1)!/n! [v(S∪{i})-v(S)].
// Cost is Θ(2^n) value evaluations — the exponential blow-up §IV-A warns
// about; callers should keep n below ~20.
func ExactShapley(n int, fn ValueFn) ([]float64, int, error) {
	if n < 1 {
		return nil, 0, errors.New("reward: need at least one player")
	}
	if n > 25 {
		return nil, 0, fmt.Errorf("reward: exact Shapley for n=%d is infeasible (2^%d evaluations); use TMCShapley", n, n)
	}
	cv := NewCachedValue(fn)
	// Precompute |S|!(n-|S|-1)!/n! for every subset size.
	weights := make([]float64, n)
	for s := 0; s < n; s++ {
		weights[s] = math.Exp(lnFact(s) + lnFact(n-1-s) - lnFact(n))
	}
	phi := make([]float64, n)
	full := uint64(1)<<n - 1
	for mask := uint64(0); mask <= full; mask++ {
		size := popcount(mask)
		if size == n {
			continue
		}
		vS := cv.Value(mask)
		for i := 0; i < n; i++ {
			bit := uint64(1) << i
			if mask&bit != 0 {
				continue
			}
			phi[i] += weights[size] * (cv.Value(mask|bit) - vS)
		}
	}
	return phi, cv.Evaluations, nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// lnFact returns ln(k!).
func lnFact(k int) float64 {
	s := 0.0
	for i := 2; i <= k; i++ {
		s += math.Log(float64(i))
	}
	return s
}

// MonteCarloShapley estimates Shapley values by permutation sampling:
// for each sampled permutation, players are added one by one and credited
// their marginal contribution. Converges at O(1/√samples) with
// n evaluations per sample.
func MonteCarloShapley(n int, fn ValueFn, samples int, rng *crypto.DRBG) ([]float64, int, error) {
	return tmcShapley(n, fn, samples, 0, rng)
}

// TMCShapley is truncated Monte Carlo Shapley [30]: within each sampled
// permutation, once the running coalition's value is within tolerance of
// the full-coalition value, the remaining players are credited zero
// marginal contribution without evaluating the model — the standard
// answer to the exponential cost §IV-A describes.
func TMCShapley(n int, fn ValueFn, samples int, tolerance float64, rng *crypto.DRBG) ([]float64, int, error) {
	if tolerance <= 0 {
		return nil, 0, errors.New("reward: TMC tolerance must be positive")
	}
	return tmcShapley(n, fn, samples, tolerance, rng)
}

func tmcShapley(n int, fn ValueFn, samples int, tolerance float64, rng *crypto.DRBG) ([]float64, int, error) {
	if n < 1 {
		return nil, 0, errors.New("reward: need at least one player")
	}
	if n > 63 {
		return nil, 0, errors.New("reward: bitmask caching supports up to 63 players")
	}
	if samples < 1 {
		return nil, 0, errors.New("reward: need at least one sample")
	}
	cv := NewCachedValue(fn)
	full := uint64(1)<<n - 1
	vFull := cv.Value(full)
	vEmpty := cv.Value(0)

	phi := make([]float64, n)
	for s := 0; s < samples; s++ {
		perm := rng.Perm(n)
		mask := uint64(0)
		prev := vEmpty
		truncated := false
		for _, p := range perm {
			if truncated {
				// Remaining players get zero credit this permutation.
				continue
			}
			mask |= uint64(1) << p
			cur := cv.Value(mask)
			phi[p] += cur - prev
			prev = cur
			if tolerance > 0 && math.Abs(vFull-cur) < tolerance {
				truncated = true
			}
		}
	}
	for i := range phi {
		phi[i] /= float64(samples)
	}
	return phi, cv.Evaluations, nil
}

// LeaveOneOut is the naive baseline: each player's value is the drop in
// utility when only that player is removed. It is cheap (n+1
// evaluations) but ignores interactions, which the experiments contrast
// with Shapley.
func LeaveOneOut(n int, fn ValueFn) ([]float64, int, error) {
	if n < 1 {
		return nil, 0, errors.New("reward: need at least one player")
	}
	if n > 63 {
		return nil, 0, errors.New("reward: bitmask caching supports up to 63 players")
	}
	cv := NewCachedValue(fn)
	full := uint64(1)<<n - 1
	vFull := cv.Value(full)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = vFull - cv.Value(full&^(uint64(1)<<i))
	}
	return out, cv.Evaluations, nil
}

// Allocate converts attribution scores into token payouts summing to
// budget: negative scores are clamped to zero (a provider cannot owe the
// platform), the rest share pro rata, and rounding residue goes to the
// highest-valued provider so the sum is exact. A zero or all-negative
// score vector splits the budget equally.
func Allocate(scores []float64, budget uint64) []uint64 {
	n := len(scores)
	out := make([]uint64, n)
	if n == 0 || budget == 0 {
		return out
	}
	clamped := make([]float64, n)
	var total float64
	best := 0
	for i, s := range scores {
		if s > 0 {
			clamped[i] = s
			total += s
		}
		if scores[i] > scores[best] {
			best = i
		}
	}
	if total <= 0 {
		// Degenerate: equal split.
		each := budget / uint64(n)
		var used uint64
		for i := range out {
			out[i] = each
			used += each
		}
		out[0] += budget - used
		return out
	}
	var used uint64
	for i := range out {
		out[i] = uint64(float64(budget) * clamped[i] / total)
		used += out[i]
	}
	out[best] += budget - used
	return out
}

// DataValueFn builds the canonical PDS² value function: the utility of a
// coalition is the test accuracy of a model trained on the union of the
// coalition members' datasets. The training order is fixed per coalition
// so values are deterministic.
func DataValueFn(parts []*ml.Dataset, test *ml.Dataset, factory func() ml.Model, epochs int) ValueFn {
	return func(coalition []int) float64 {
		if len(coalition) == 0 {
			return 0.5 // random-guess accuracy for balanced binary labels
		}
		union := make([]*ml.Dataset, 0, len(coalition))
		for _, i := range coalition {
			union = append(union, parts[i])
		}
		m := factory()
		ml.TrainEpochs(m, ml.Concat(union...), epochs)
		return ml.Accuracy(m, test)
	}
}
