package reward

import (
	"math"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/ml"
)

// additiveGame returns a ValueFn where each player contributes a fixed
// weight; the Shapley value of an additive game is exactly the weight.
func additiveGame(weights []float64) ValueFn {
	return func(coalition []int) float64 {
		var s float64
		for _, i := range coalition {
			s += weights[i]
		}
		return s
	}
}

// gloveGame: player 0 holds a left glove, players 1 and 2 right gloves;
// a pair is worth 1. Known Shapley values: 2/3, 1/6, 1/6.
func gloveGame(coalition []int) float64 {
	var left, right bool
	for _, p := range coalition {
		if p == 0 {
			left = true
		} else {
			right = true
		}
	}
	if left && right {
		return 1
	}
	return 0
}

func TestExactShapleyAdditiveGame(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	phi, evals, err := ExactShapley(4, additiveGame(weights))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range weights {
		if math.Abs(phi[i]-w) > 1e-9 {
			t.Fatalf("phi[%d] = %v, want %v", i, phi[i], w)
		}
	}
	if evals != 16 {
		t.Fatalf("evaluations = %d, want 2^4", evals)
	}
}

func TestExactShapleyGloveGame(t *testing.T) {
	phi, _, err := ExactShapley(3, gloveGame)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.0 / 3, 1.0 / 6, 1.0 / 6}
	for i := range want {
		if math.Abs(phi[i]-want[i]) > 1e-9 {
			t.Fatalf("phi = %v, want %v", phi, want)
		}
	}
}

func TestExactShapleyEfficiency(t *testing.T) {
	// Sum of Shapley values equals v(N) - v(∅) for any game.
	game := func(coalition []int) float64 {
		s := 0.3 // v(∅) offset
		for _, i := range coalition {
			s += float64(i+1) * 0.1
			if len(coalition) > 2 {
				s += 0.05 // superadditive interaction
			}
		}
		return s
	}
	n := 5
	phi, _, err := ExactShapley(n, game)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range phi {
		sum += p
	}
	full := make([]int, n)
	for i := range full {
		full[i] = i
	}
	want := game(full) - game(nil)
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("efficiency violated: sum %v, want %v", sum, want)
	}
}

func TestExactShapleyDummyPlayer(t *testing.T) {
	// Player 2 never changes the value: its Shapley value must be zero.
	game := func(coalition []int) float64 {
		for _, p := range coalition {
			if p == 0 {
				return 10
			}
		}
		return 0
	}
	phi, _, err := ExactShapley(3, game)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[1]) > 1e-9 || math.Abs(phi[2]) > 1e-9 {
		t.Fatalf("dummy players credited: %v", phi)
	}
	if math.Abs(phi[0]-10) > 1e-9 {
		t.Fatalf("carrier player: %v", phi[0])
	}
}

func TestExactShapleyRefusesLargeN(t *testing.T) {
	if _, _, err := ExactShapley(26, additiveGame(make([]float64, 26))); err == nil {
		t.Fatal("n=26 accepted")
	}
}

func TestMonteCarloApproximatesExact(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(1, "mc")
	weights := []float64{5, 1, 1, 1, 2}
	exact, _, _ := ExactShapley(5, additiveGame(weights))
	approx, _, err := MonteCarloShapley(5, additiveGame(weights), 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-approx[i]) > 0.3 {
			t.Fatalf("MC estimate %v far from exact %v", approx, exact)
		}
	}
}

func TestTMCFewerEvaluationsThanMC(t *testing.T) {
	// A saturating game: value plateaus once 3 players joined, so TMC
	// truncates most permutations early.
	game := func(coalition []int) float64 {
		v := float64(len(coalition))
		if v > 3 {
			v = 3
		}
		return v
	}
	rng1 := crypto.NewDRBGFromUint64(2, "tmc")
	rng2 := crypto.NewDRBGFromUint64(2, "tmc")
	_, evalsMC, err := MonteCarloShapley(12, game, 50, rng1)
	if err != nil {
		t.Fatal(err)
	}
	_, evalsTMC, err := TMCShapley(12, game, 50, 0.01, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if evalsTMC >= evalsMC {
		t.Fatalf("TMC evals %d not fewer than MC %d", evalsTMC, evalsMC)
	}
}

func TestTMCStillAccurate(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(3, "tmc")
	weights := []float64{3, 1, 0.5, 0.5}
	exact, _, _ := ExactShapley(4, additiveGame(weights))
	approx, _, err := TMCShapley(4, additiveGame(weights), 800, 1e-6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-approx[i]) > 0.3 {
			t.Fatalf("TMC estimate %v far from exact %v", approx, exact)
		}
	}
}

func TestLeaveOneOut(t *testing.T) {
	phi, evals, err := LeaveOneOut(3, additiveGame([]float64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(phi[i]-want) > 1e-9 {
			t.Fatalf("LOO = %v", phi)
		}
	}
	if evals != 4 {
		t.Fatalf("evaluations = %d, want n+1", evals)
	}
	// LOO misses interaction effects: in the glove game it credits both
	// right-glove holders zero (removing either one changes nothing).
	loo, _, _ := LeaveOneOut(3, gloveGame)
	if loo[1] != 0 || loo[2] != 0 {
		t.Fatalf("glove LOO = %v", loo)
	}
}

func TestParamValidation(t *testing.T) {
	if _, _, err := ExactShapley(0, additiveGame(nil)); err == nil {
		t.Fatal("n=0 accepted")
	}
	rng := crypto.NewDRBGFromUint64(4, "x")
	if _, _, err := MonteCarloShapley(2, gloveGame, 0, rng); err == nil {
		t.Fatal("0 samples accepted")
	}
	if _, _, err := TMCShapley(2, gloveGame, 10, 0, rng); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, _, err := LeaveOneOut(0, gloveGame); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestAllocateProRata(t *testing.T) {
	out := Allocate([]float64{1, 3, 0, -2}, 1000)
	var sum uint64
	for _, v := range out {
		sum += v
	}
	if sum != 1000 {
		t.Fatalf("allocation sums to %d", sum)
	}
	if out[3] != 0 {
		t.Fatal("negative contributor paid")
	}
	if out[1] <= out[0] {
		t.Fatalf("allocation not proportional: %v", out)
	}
}

func TestAllocateDegenerate(t *testing.T) {
	// All non-positive: equal split.
	out := Allocate([]float64{-1, 0, -3}, 100)
	var sum uint64
	for _, v := range out {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("sum = %d", sum)
	}
	if out[1] < 33 || out[2] < 33 {
		t.Fatalf("not near-equal: %v", out)
	}
	// Empty and zero-budget cases.
	if len(Allocate(nil, 100)) != 0 {
		t.Fatal("nil scores")
	}
	if Allocate([]float64{1}, 0)[0] != 0 {
		t.Fatal("zero budget paid")
	}
}

func TestDataValueFnRewardsInformativeData(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(5, "dv")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 1200, Dim: 8}, rng)
	train, test := data.TrainTestSplit(0.3, rng)
	parts := train.PartitionIID(4, rng)
	// Replace part 3 with label noise: its marginal value should be the
	// lowest.
	for i := range parts[3].Y {
		if rng.Float64() < 0.5 {
			parts[3].Y[i] = -parts[3].Y[i]
		}
	}
	fn := DataValueFn(parts, test, func() ml.Model { return ml.NewLogisticModel(8, 1e-3) }, 2)
	phi, _, err := ExactShapley(4, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if phi[3] >= phi[i] {
			t.Fatalf("noisy provider not penalized: %v", phi)
		}
	}
}

func TestPricingSigmaMonotone(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(6, "price")
	m := ml.NewLogisticModel(4, 1e-3)
	market, err := NewModelMarket(m, 1000, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, p := range []uint64{100, 250, 500, 900, 1000} {
		sigma, err := market.Sigma(p)
		if err != nil {
			t.Fatal(err)
		}
		if sigma > prev {
			t.Fatalf("sigma not monotone decreasing at price %d", p)
		}
		prev = sigma
	}
	if s, _ := market.Sigma(1000); s != 0 {
		t.Fatalf("full price sigma = %v", s)
	}
	if s, _ := market.Sigma(2000); s != 0 {
		t.Fatal("overpaying adds noise")
	}
	if _, err := market.Sigma(0); err == nil {
		t.Fatal("zero price accepted")
	}
}

func TestPricingAccuracyIncreasesWithBudget(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(7, "price")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 3000, Dim: 10}, rng)
	train, test := data.TrainTestSplit(0.3, rng)
	optimal := ml.NewLogisticModel(10, 1e-3)
	ml.TrainEpochs(optimal, train, 5)

	market, _ := NewModelMarket(optimal, 1000, 2.0, rng)
	curve, err := market.Curve([]uint64{50, 200, 1000}, test, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(curve[0].Accuracy < curve[2].Accuracy) {
		t.Fatalf("accuracy not increasing with budget: %+v", curve)
	}
	if curve[2].Accuracy < 0.85 {
		t.Fatalf("full-price accuracy = %v", curve[2].Accuracy)
	}
}

func TestPurchaseDoesNotMutateOptimal(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(8, "price")
	optimal := ml.NewLogisticModel(3, 1e-3)
	optimal.W[0] = 1
	market, _ := NewModelMarket(optimal, 100, 5.0, rng)
	if _, err := market.Purchase(10); err != nil {
		t.Fatal(err)
	}
	clean, _ := market.Purchase(100)
	if clean.Weights()[0] != 1 {
		t.Fatal("optimal model mutated by purchases")
	}
}

func TestNewModelMarketValidation(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(9, "price")
	m := ml.NewLogisticModel(2, 1e-3)
	if _, err := NewModelMarket(m, 0, 1, rng); err == nil {
		t.Fatal("zero price accepted")
	}
	if _, err := NewModelMarket(m, 10, 0, rng); err == nil {
		t.Fatal("zero sigma accepted")
	}
}
