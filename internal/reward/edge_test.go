package reward

import (
	"strings"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/ml"
)

// TestAllocateConservesBudget is the table-driven conservation check:
// whatever the score vector looks like — negatives, zeros, ties,
// rounding-hostile ratios — every unit of budget must be paid out and
// none invented.
func TestAllocateConservesBudget(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
		budget uint64
	}{
		{"rounding residue", []float64{1, 1, 1}, 100},
		{"hostile ratios", []float64{0.1, 0.3, 0.7, 1e-9}, 997},
		{"negatives clamped", []float64{-5, 3, -1, 2}, 1_000},
		{"all negative", []float64{-1, -2, -3}, 10},
		{"all zero", []float64{0, 0, 0, 0, 0}, 7},
		{"single provider", []float64{0.42}, 123_456},
		{"dominant score", []float64{1e12, 1, 1}, 999},
		{"budget one", []float64{2, 3}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := Allocate(tc.scores, tc.budget)
			if len(out) != len(tc.scores) {
				t.Fatalf("len %d, want %d", len(out), len(tc.scores))
			}
			var sum uint64
			for _, v := range out {
				sum += v
			}
			if sum != tc.budget {
				t.Fatalf("allocated %d of budget %d: %v", sum, tc.budget, out)
			}
			// Negative contributors never get paid more than the pure
			// rounding residue could hand them (residue goes to best).
			for i, s := range tc.scores {
				hasPositive := false
				for _, s2 := range tc.scores {
					if s2 > 0 {
						hasPositive = true
					}
				}
				if hasPositive && s <= 0 && out[i] != 0 {
					// The residue recipient is the single best scorer;
					// a non-positive score can only be best when no
					// positive score exists.
					t.Fatalf("non-positive score %v at %d was paid %d", s, i, out[i])
				}
			}
		})
	}
	// Empty and zero-budget degenerate cases return all-zero vectors.
	if out := Allocate(nil, 100); len(out) != 0 {
		t.Fatalf("nil scores: %v", out)
	}
	if out := Allocate([]float64{1, 2}, 0); out[0] != 0 || out[1] != 0 {
		t.Fatalf("zero budget: %v", out)
	}
}

// TestPricingErrorPaths covers the model-market refusals: zero price is
// invalid everywhere it can be smuggled in, and paying at or above full
// price buys the noiseless model.
func TestPricingErrorPaths(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(9, "reward-edge")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 60, Dim: 3}, rng)
	model := ml.NewLogisticModel(3, 1e-3)
	ml.TrainEpochs(model, data, 2)

	mkt, err := NewModelMarket(model, 1_000, 0.5, rng.Fork("mkt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mkt.Sigma(0); err == nil {
		t.Fatal("Sigma(0) accepted")
	}
	if _, err := mkt.Purchase(0); err == nil {
		t.Fatal("Purchase(0) accepted")
	}
	if _, err := mkt.Curve([]uint64{500, 0}, data, 1); err == nil ||
		!strings.Contains(err.Error(), "price 0") {
		t.Fatalf("Curve with zero price: %v", err)
	}
	// At and above full price the buyer gets the exact model.
	for _, p := range []uint64{1_000, 2_000} {
		sigma, err := mkt.Sigma(p)
		if err != nil {
			t.Fatal(err)
		}
		if sigma != 0 {
			t.Fatalf("Sigma(%d) = %v, want 0", p, sigma)
		}
		bought, err := mkt.Purchase(p)
		if err != nil {
			t.Fatal(err)
		}
		bw, mw := bought.Weights(), model.Weights()
		for i := range bw {
			if bw[i] != mw[i] {
				t.Fatalf("full-price purchase perturbed weight %d", i)
			}
		}
	}
}

// TestNoiseInjectedClones pins that noise injection never aliases the
// source model's weight storage, even at sigma 0 where it could be
// tempting to return the input.
func TestNoiseInjectedClones(t *testing.T) {
	model := ml.NewLogisticModel(4, 1e-3)
	out := NoiseInjected(model, 0, crypto.NewDRBGFromUint64(1, "noise"))
	w := out.Weights()
	for i := range w {
		w[i] = 99
	}
	for i, v := range model.Weights() {
		if v == 99 {
			t.Fatalf("weight %d aliased into the source model", i)
		}
	}
}
