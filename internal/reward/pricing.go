package reward

import (
	"errors"
	"fmt"
	"math"

	"pds2/internal/crypto"
	"pds2/internal/ml"
)

// ModelMarket implements model-based pricing (Chen et al. [32], §IV-A):
// "given an ML model, an optimal instance is trained. Then based on the
// budget available to the potential buyer, Gaussian noise is injected
// into the model to reduce its accuracy. The larger the buyer's budget,
// the smaller the injected noise variance and the greater the accuracy."
//
// The noise schedule σ(p) = BaseSigma · √(FullPrice/p − 1) is monotone
// decreasing in the price p, reaches zero at the full price, and grows
// without bound as p → 0 — which yields a monotone price/accuracy curve
// and rules out the trivial arbitrage of buying cheap and having the
// noisy model be as good as the clean one.
type ModelMarket struct {
	optimal   ml.Model
	FullPrice uint64  // price of the noise-free model
	BaseSigma float64 // noise scale at half price
	rng       *crypto.DRBG
}

// NewModelMarket creates a market around a trained optimal model.
func NewModelMarket(optimal ml.Model, fullPrice uint64, baseSigma float64, rng *crypto.DRBG) (*ModelMarket, error) {
	if fullPrice == 0 {
		return nil, errors.New("reward: full price must be positive")
	}
	if baseSigma <= 0 {
		return nil, errors.New("reward: base sigma must be positive")
	}
	return &ModelMarket{
		optimal:   optimal.Clone(),
		FullPrice: fullPrice,
		BaseSigma: baseSigma,
		rng:       rng,
	}, nil
}

// Sigma returns the noise standard deviation sold at the given price.
func (m *ModelMarket) Sigma(price uint64) (float64, error) {
	if price == 0 {
		return 0, errors.New("reward: price must be positive")
	}
	if price >= m.FullPrice {
		return 0, nil
	}
	ratio := float64(m.FullPrice)/float64(price) - 1
	return m.BaseSigma * math.Sqrt(ratio), nil
}

// Purchase returns a noise-injected copy of the optimal model for the
// given price.
func (m *ModelMarket) Purchase(price uint64) (ml.Model, error) {
	sigma, err := m.Sigma(price)
	if err != nil {
		return nil, err
	}
	return NoiseInjected(m.optimal, sigma, m.rng), nil
}

// NoiseInjected returns a copy of the model with iid Gaussian noise of
// the given standard deviation added to every weight.
func NoiseInjected(m ml.Model, sigma float64, rng *crypto.DRBG) ml.Model {
	out := m.Clone()
	if sigma <= 0 {
		return out
	}
	w := out.Weights()
	for i := range w {
		w[i] += sigma * rng.NormFloat64()
	}
	return out
}

// PricePoint is one sample of the price/accuracy curve.
type PricePoint struct {
	Price    uint64
	Sigma    float64
	Accuracy float64
}

// Curve evaluates the price/accuracy curve at the given prices,
// averaging accuracy over trials noise draws per point to smooth the
// randomness of a single injection.
func (m *ModelMarket) Curve(prices []uint64, test *ml.Dataset, trials int) ([]PricePoint, error) {
	if trials < 1 {
		trials = 1
	}
	out := make([]PricePoint, 0, len(prices))
	for _, p := range prices {
		sigma, err := m.Sigma(p)
		if err != nil {
			return nil, fmt.Errorf("reward: curve at price %d: %w", p, err)
		}
		var acc float64
		for t := 0; t < trials; t++ {
			noisy := NoiseInjected(m.optimal, sigma, m.rng)
			acc += ml.Accuracy(noisy, test)
		}
		out = append(out, PricePoint{Price: p, Sigma: sigma, Accuracy: acc / float64(trials)})
	}
	return out, nil
}
