package token

import (
	"bytes"
	"testing"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// env wires a chain with both token contracts registered.
type env struct {
	chain     *ledger.Chain
	rt        *contract.Runtime
	authority *identity.Identity
	alice     *identity.Identity
	bob       *identity.Identity
	carol     *identity.Identity
	ts        uint64
}

func newEnv(t *testing.T) *env {
	t.Helper()
	rt := contract.NewRuntime()
	if err := rt.RegisterCode(ERC20CodeName, ERC20{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterCode(ERC721CodeName, ERC721{}); err != nil {
		t.Fatal(err)
	}
	authority := identity.New("auth", crypto.NewDRBGFromUint64(100, "token-test"))
	alice := identity.New("alice", crypto.NewDRBGFromUint64(1, "token-test"))
	bob := identity.New("bob", crypto.NewDRBGFromUint64(2, "token-test"))
	carol := identity.New("carol", crypto.NewDRBGFromUint64(3, "token-test"))
	chain, err := ledger.NewChain(ledger.ChainConfig{
		Authorities: []identity.Address{authority.Address()},
		Applier:     rt,
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 1_000_000,
			bob.Address():   1_000_000,
			carol.Address(): 1_000_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &env{chain: chain, rt: rt, authority: authority, alice: alice, bob: bob, carol: carol}
}

func (e *env) send(t *testing.T, from *identity.Identity, to identity.Address, data []byte) *ledger.Receipt {
	t.Helper()
	nonce := e.chain.State().Nonce(from.Address())
	tx := ledger.SignTx(from, to, 0, nonce, 10_000_000, data)
	e.ts++
	if _, err := e.chain.ProposeBlock(e.authority, e.ts, []*ledger.Transaction{tx}); err != nil {
		t.Fatalf("propose: %v", err)
	}
	rcpt, _ := e.chain.Receipt(tx.Hash())
	return rcpt
}

func (e *env) mustSend(t *testing.T, from *identity.Identity, to identity.Address, data []byte) *ledger.Receipt {
	t.Helper()
	rcpt := e.send(t, from, to, data)
	if !rcpt.Succeeded() {
		t.Fatalf("tx failed: %s", rcpt.Err)
	}
	return rcpt
}

func (e *env) deploy(t *testing.T, from *identity.Identity, code string, initArgs []byte) identity.Address {
	t.Helper()
	rcpt := e.mustSend(t, from, identity.ZeroAddress, contract.DeployData(code, initArgs))
	var addr identity.Address
	copy(addr[:], rcpt.Return)
	return addr
}

func (e *env) erc20Balance(t *testing.T, tok, who identity.Address) uint64 {
	t.Helper()
	ret, err := e.rt.View(e.chain.State(), who, tok, "balanceOf", ERC20BalanceArgs(who))
	if err != nil {
		t.Fatalf("balanceOf: %v", err)
	}
	v, _ := contract.NewDecoder(ret).Uint64()
	return v
}

func TestERC20DeployAndMetadata(t *testing.T) {
	e := newEnv(t)
	tok := e.deploy(t, e.alice, ERC20CodeName, ERC20InitArgs("Reward", "RWD", 1_000))

	ret, err := e.rt.View(e.chain.State(), e.bob.Address(), tok, "name", nil)
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := contract.NewDecoder(ret).String(); name != "Reward" {
		t.Fatalf("name = %q", name)
	}
	ret, _ = e.rt.View(e.chain.State(), e.bob.Address(), tok, "totalSupply", nil)
	if s, _ := contract.NewDecoder(ret).Uint64(); s != 1_000 {
		t.Fatalf("supply = %d", s)
	}
	if got := e.erc20Balance(t, tok, e.alice.Address()); got != 1_000 {
		t.Fatalf("deployer balance = %d", got)
	}
}

func TestERC20Transfer(t *testing.T) {
	e := newEnv(t)
	tok := e.deploy(t, e.alice, ERC20CodeName, ERC20InitArgs("R", "R", 1_000))
	rcpt := e.mustSend(t, e.alice, tok, ERC20TransferData(e.bob.Address(), 250))
	if got := e.erc20Balance(t, tok, e.bob.Address()); got != 250 {
		t.Fatalf("bob = %d", got)
	}
	if got := e.erc20Balance(t, tok, e.alice.Address()); got != 750 {
		t.Fatalf("alice = %d", got)
	}
	// Transfer event in the audit log.
	found := false
	for _, ev := range rcpt.Events {
		if ev.Topic == "Transfer" {
			found = true
		}
	}
	if !found {
		t.Fatal("no Transfer event")
	}
}

func TestERC20TransferOverdraft(t *testing.T) {
	e := newEnv(t)
	tok := e.deploy(t, e.alice, ERC20CodeName, ERC20InitArgs("R", "R", 100))
	rcpt := e.send(t, e.alice, tok, ERC20TransferData(e.bob.Address(), 101))
	if rcpt.Succeeded() {
		t.Fatal("overdraft succeeded")
	}
	if got := e.erc20Balance(t, tok, e.alice.Address()); got != 100 {
		t.Fatalf("failed transfer changed balance: %d", got)
	}
}

func TestERC20ApproveTransferFrom(t *testing.T) {
	e := newEnv(t)
	tok := e.deploy(t, e.alice, ERC20CodeName, ERC20InitArgs("R", "R", 1_000))
	e.mustSend(t, e.alice, tok, ERC20ApproveData(e.bob.Address(), 300))

	// Bob moves 200 of alice's tokens to carol.
	e.mustSend(t, e.bob, tok, ERC20TransferFromData(e.alice.Address(), e.carol.Address(), 200))
	if got := e.erc20Balance(t, tok, e.carol.Address()); got != 200 {
		t.Fatalf("carol = %d", got)
	}
	// Remaining allowance is 100: moving 101 fails.
	rcpt := e.send(t, e.bob, tok, ERC20TransferFromData(e.alice.Address(), e.carol.Address(), 101))
	if rcpt.Succeeded() {
		t.Fatal("allowance exceeded")
	}
	// Moving exactly 100 succeeds.
	e.mustSend(t, e.bob, tok, ERC20TransferFromData(e.alice.Address(), e.carol.Address(), 100))
}

func TestERC20MintOnlyMinter(t *testing.T) {
	e := newEnv(t)
	tok := e.deploy(t, e.alice, ERC20CodeName, ERC20InitArgs("R", "R", 0))
	rcpt := e.send(t, e.bob, tok, ERC20MintData(e.bob.Address(), 500))
	if rcpt.Succeeded() {
		t.Fatal("non-minter minted")
	}
	e.mustSend(t, e.alice, tok, ERC20MintData(e.bob.Address(), 500))
	if got := e.erc20Balance(t, tok, e.bob.Address()); got != 500 {
		t.Fatalf("bob = %d", got)
	}
}

func TestERC20Burn(t *testing.T) {
	e := newEnv(t)
	tok := e.deploy(t, e.alice, ERC20CodeName, ERC20InitArgs("R", "R", 1_000))
	e.mustSend(t, e.alice, tok, ERC20BurnData(400))
	if got := e.erc20Balance(t, tok, e.alice.Address()); got != 600 {
		t.Fatalf("alice = %d", got)
	}
	ret, _ := e.rt.View(e.chain.State(), e.alice.Address(), tok, "totalSupply", nil)
	if s, _ := contract.NewDecoder(ret).Uint64(); s != 600 {
		t.Fatalf("supply = %d", s)
	}
	rcpt := e.send(t, e.alice, tok, ERC20BurnData(601))
	if rcpt.Succeeded() {
		t.Fatal("burned more than balance")
	}
}

func TestERC721MintOwnTransfer(t *testing.T) {
	e := newEnv(t)
	nft := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("DataDeeds"))
	dataID := crypto.HashString("dataset-1")

	e.mustSend(t, e.alice, nft, ERC721MintData(e.bob.Address(), dataID, []byte("meta")))

	ret, err := e.rt.View(e.chain.State(), e.alice.Address(), nft, "ownerOf", ERC721OwnerArgs(dataID))
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := contract.NewDecoder(ret).Address()
	if owner != e.bob.Address() {
		t.Fatalf("owner = %s", owner.Short())
	}

	// Bob transfers to carol.
	e.mustSend(t, e.bob, nft, ERC721TransferFromData(e.bob.Address(), e.carol.Address(), dataID))
	ret, _ = e.rt.View(e.chain.State(), e.alice.Address(), nft, "ownerOf", ERC721OwnerArgs(dataID))
	owner, _ = contract.NewDecoder(ret).Address()
	if owner != e.carol.Address() {
		t.Fatalf("owner after transfer = %s", owner.Short())
	}

	// Balances updated.
	ret, _ = e.rt.View(e.chain.State(), e.alice.Address(), nft, "balanceOf",
		contract.NewEncoder().Address(e.carol.Address()).Bytes())
	if cnt, _ := contract.NewDecoder(ret).Uint64(); cnt != 1 {
		t.Fatalf("carol count = %d", cnt)
	}
}

func TestERC721DuplicateMintRejected(t *testing.T) {
	e := newEnv(t)
	nft := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("D"))
	id := crypto.HashString("x")
	e.mustSend(t, e.alice, nft, ERC721MintData(e.bob.Address(), id, nil))
	rcpt := e.send(t, e.alice, nft, ERC721MintData(e.carol.Address(), id, nil))
	if rcpt.Succeeded() {
		t.Fatal("duplicate token minted")
	}
}

func TestERC721UnauthorizedTransferRejected(t *testing.T) {
	e := newEnv(t)
	nft := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("D"))
	id := crypto.HashString("x")
	e.mustSend(t, e.alice, nft, ERC721MintData(e.bob.Address(), id, nil))

	// Carol tries to steal bob's token.
	rcpt := e.send(t, e.carol, nft, ERC721TransferFromData(e.bob.Address(), e.carol.Address(), id))
	if rcpt.Succeeded() {
		t.Fatal("unauthorized transfer succeeded")
	}
}

func TestERC721ApprovalFlow(t *testing.T) {
	e := newEnv(t)
	nft := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("D"))
	id := crypto.HashString("x")
	e.mustSend(t, e.alice, nft, ERC721MintData(e.bob.Address(), id, nil))

	// Bob approves carol for this token; carol moves it.
	e.mustSend(t, e.bob, nft, ERC721ApproveData(e.carol.Address(), id))
	e.mustSend(t, e.carol, nft, ERC721TransferFromData(e.bob.Address(), e.carol.Address(), id))

	// Approval cleared after transfer: carol cannot move it back via the
	// old approval once she transfers it onward to alice... verify the
	// cleared approval directly: bob (old owner) cannot move it.
	rcpt := e.send(t, e.bob, nft, ERC721TransferFromData(e.carol.Address(), e.bob.Address(), id))
	if rcpt.Succeeded() {
		t.Fatal("stale approval honoured")
	}
}

func TestERC721OperatorApproval(t *testing.T) {
	e := newEnv(t)
	nft := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("D"))
	id1, id2 := crypto.HashString("a"), crypto.HashString("b")
	e.mustSend(t, e.alice, nft, ERC721MintData(e.bob.Address(), id1, nil))
	e.mustSend(t, e.alice, nft, ERC721MintData(e.bob.Address(), id2, nil))

	// Blanket operator can move every token.
	e.mustSend(t, e.bob, nft, contract.CallData("setApprovalForAll",
		contract.NewEncoder().Address(e.carol.Address()).Bool(true).Bytes()))
	e.mustSend(t, e.carol, nft, ERC721TransferFromData(e.bob.Address(), e.carol.Address(), id1))

	// Revoked operator cannot.
	e.mustSend(t, e.bob, nft, contract.CallData("setApprovalForAll",
		contract.NewEncoder().Address(e.carol.Address()).Bool(false).Bytes()))
	rcpt := e.send(t, e.carol, nft, ERC721TransferFromData(e.bob.Address(), e.carol.Address(), id2))
	if rcpt.Succeeded() {
		t.Fatal("revoked operator moved token")
	}
}

func TestERC721TokenURI(t *testing.T) {
	e := newEnv(t)
	nft := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("D"))
	id := crypto.HashString("x")
	meta := []byte(`{"kind":"dataset"}`)
	e.mustSend(t, e.alice, nft, ERC721MintData(e.bob.Address(), id, meta))

	ret, err := e.rt.View(e.chain.State(), e.bob.Address(), nft, "tokenURI", ERC721OwnerArgs(id))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := contract.NewDecoder(ret).Blob()
	if !bytes.Equal(got, meta) {
		t.Fatalf("uri = %q", got)
	}
	// Nonexistent token errors.
	if _, err := e.rt.View(e.chain.State(), e.bob.Address(), nft, "tokenURI", ERC721OwnerArgs(crypto.HashString("none"))); err == nil {
		t.Fatal("missing token URI served")
	}
}

func TestERC20MalformedArgsRevert(t *testing.T) {
	e := newEnv(t)
	tok := e.deploy(t, e.alice, ERC20CodeName, ERC20InitArgs("R", "R", 100))
	calls := []string{"transfer", "approve", "allowance", "transferFrom", "mint", "burn", "balanceOf"}
	for _, method := range calls {
		rcpt := e.send(t, e.alice, tok, contract.CallData(method, []byte{0xde, 0xad}))
		if rcpt.Succeeded() {
			t.Errorf("erc20.%s accepted garbage args", method)
		}
	}
	// Unknown method reverts.
	rcpt := e.send(t, e.alice, tok, contract.CallData("nope", nil))
	if rcpt.Succeeded() {
		t.Error("unknown method accepted")
	}
	// Bad constructor args.
	rcpt = e.send(t, e.alice, identity.ZeroAddress, contract.DeployData(ERC20CodeName, []byte{1}))
	if rcpt.Succeeded() {
		t.Error("bad erc20 constructor accepted")
	}
}

func TestERC721MalformedArgsRevert(t *testing.T) {
	e := newEnv(t)
	nft := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("D"))
	calls := []string{"mint", "ownerOf", "balanceOf", "tokenURI", "approve", "setApprovalForAll", "transferFrom", "transferMinter"}
	for _, method := range calls {
		rcpt := e.send(t, e.alice, nft, contract.CallData(method, []byte{0xde, 0xad}))
		if rcpt.Succeeded() {
			t.Errorf("erc721.%s accepted garbage args", method)
		}
	}
	rcpt := e.send(t, e.alice, identity.ZeroAddress, contract.DeployData(ERC721CodeName, []byte{9}))
	if rcpt.Succeeded() {
		t.Error("bad erc721 constructor accepted")
	}
}

func TestERC721TransferMinter(t *testing.T) {
	e := newEnv(t)
	nft := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("D"))
	// Non-minter cannot hand over the role.
	rcpt := e.send(t, e.bob, nft, ERC721TransferMinterData(e.bob.Address()))
	if rcpt.Succeeded() {
		t.Fatal("non-minter transferred the minter role")
	}
	// Minter hands the role to bob; alice can no longer mint, bob can.
	e.mustSend(t, e.alice, nft, ERC721TransferMinterData(e.bob.Address()))
	id := crypto.HashString("deed")
	rcpt = e.send(t, e.alice, nft, ERC721MintData(e.alice.Address(), id, nil))
	if rcpt.Succeeded() {
		t.Fatal("old minter still mints")
	}
	e.mustSend(t, e.bob, nft, ERC721MintData(e.carol.Address(), id, nil))
}

func TestERC20InitRejectsTrailingGarbage(t *testing.T) {
	e := newEnv(t)
	args := append(ERC20InitArgs("R", "R", 1), 0xff)
	rcpt := e.send(t, e.alice, identity.ZeroAddress, contract.DeployData(ERC20CodeName, args))
	if rcpt.Succeeded() {
		t.Fatal("trailing garbage accepted")
	}
}
