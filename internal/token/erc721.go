package token

import (
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// ERC721CodeName is the registry name of the non-fungible deed contract.
const ERC721CodeName = "pds2/erc721"

// ERC721 is the non-fungible deed contract. In PDS² an NFT models an
// "indivisible, unique asset" (§III-A): token IDs are content digests, so
// the deed for a dataset or a workload's code is its hash, which makes
// ownership claims verifiable against the content itself. Storage layout:
//
//	name                — collection name
//	minter              — address allowed to mint (the deployer)
//	owner/<id>          — token owner
//	cnt/<addr>          — per-owner token count
//	approved/<id>       — single-token approval
//	operator/<o>/<op>   — blanket operator approval
//	uri/<id>            — token metadata (free-form bytes)
type ERC721 struct{}

// Init expects (name string).
func (ERC721) Init(ctx *contract.Context, args []byte) error {
	dec := contract.NewDecoder(args)
	name, err := dec.String()
	if err != nil {
		return contract.Revertf("erc721 init: %v", err)
	}
	if err := dec.Done(); err != nil {
		return contract.Revertf("erc721 init: %v", err)
	}
	if err := ctx.Set("name", []byte(name)); err != nil {
		return err
	}
	return ctx.Set("minter", ctx.Caller[:])
}

func ownerKey(id crypto.Digest) string    { return "owner/" + id.Hex() }
func countKey(a identity.Address) string  { return "cnt/" + a.Hex() }
func approvedKey(id crypto.Digest) string { return "approved/" + id.Hex() }
func operatorKey(owner, op identity.Address) string {
	return "operator/" + owner.Hex() + "/" + op.Hex()
}
func uriKey(id crypto.Digest) string { return "uri/" + id.Hex() }

// Call dispatches the ERC-721 method set.
func (e ERC721) Call(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	dec := contract.NewDecoder(args)
	switch method {
	case "name":
		v, err := ctx.Get("name")
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().String(string(v)).Bytes(), nil

	case "mint":
		to, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("mint: %v", err)
		}
		id, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("mint: %v", err)
		}
		uri, err := dec.Blob()
		if err != nil {
			return nil, contract.Revertf("mint: %v", err)
		}
		minter, err := ctx.Get("minter")
		if err != nil {
			return nil, err
		}
		if string(minter) != string(ctx.Caller[:]) {
			return nil, contract.Revertf("mint: caller is not the minter")
		}
		if existing, err := ctx.Get(ownerKey(id)); err != nil {
			return nil, err
		} else if len(existing) > 0 {
			return nil, contract.Revertf("mint: token %s already exists", id.Short())
		}
		if err := ctx.Set(ownerKey(id), to[:]); err != nil {
			return nil, err
		}
		if len(uri) > 0 {
			if err := ctx.Set(uriKey(id), uri); err != nil {
				return nil, err
			}
		}
		cnt, err := ctx.GetUint64(countKey(to))
		if err != nil {
			return nil, err
		}
		if err := ctx.SetUint64(countKey(to), cnt+1); err != nil {
			return nil, err
		}
		return nil, ctx.Emit("TransferNFT", contract.NewEncoder().
			Address(identity.ZeroAddress).Address(to).Digest(id).Bytes())

	case "transferMinter":
		// (newMinter) — hand the mint capability to another account or
		// contract; used to let the platform registry mint data deeds.
		newMinter, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("transferMinter: %v", err)
		}
		minter, err := ctx.Get("minter")
		if err != nil {
			return nil, err
		}
		if string(minter) != string(ctx.Caller[:]) {
			return nil, contract.Revertf("transferMinter: caller is not the minter")
		}
		return nil, ctx.Set("minter", newMinter[:])

	case "ownerOf":
		id, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("ownerOf: %v", err)
		}
		owner, err := e.ownerOf(ctx, id)
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Address(owner).Bytes(), nil

	case "balanceOf":
		addr, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("balanceOf: %v", err)
		}
		cnt, err := ctx.GetUint64(countKey(addr))
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(cnt).Bytes(), nil

	case "tokenURI":
		id, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("tokenURI: %v", err)
		}
		if _, err := e.ownerOf(ctx, id); err != nil {
			return nil, err
		}
		uri, err := ctx.Get(uriKey(id))
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Blob(uri).Bytes(), nil

	case "approve":
		spender, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("approve: %v", err)
		}
		id, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("approve: %v", err)
		}
		owner, err := e.ownerOf(ctx, id)
		if err != nil {
			return nil, err
		}
		if owner != ctx.Caller {
			return nil, contract.Revertf("approve: caller does not own token")
		}
		return nil, ctx.Set(approvedKey(id), spender[:])

	case "setApprovalForAll":
		op, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("setApprovalForAll: %v", err)
		}
		approved, err := dec.Bool()
		if err != nil {
			return nil, contract.Revertf("setApprovalForAll: %v", err)
		}
		if approved {
			return nil, ctx.Set(operatorKey(ctx.Caller, op), []byte{1})
		}
		return nil, ctx.Set(operatorKey(ctx.Caller, op), nil)

	case "transferFrom":
		from, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("transferFrom: %v", err)
		}
		to, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("transferFrom: %v", err)
		}
		id, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("transferFrom: %v", err)
		}
		owner, err := e.ownerOf(ctx, id)
		if err != nil {
			return nil, err
		}
		if owner != from {
			return nil, contract.Revertf("transferFrom: %s does not own token", from.Short())
		}
		ok, err := e.authorized(ctx, owner, id)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, contract.Revertf("transferFrom: caller not authorized")
		}
		if err := ctx.Set(ownerKey(id), to[:]); err != nil {
			return nil, err
		}
		if err := ctx.Set(approvedKey(id), nil); err != nil {
			return nil, err
		}
		fromCnt, err := ctx.GetUint64(countKey(from))
		if err != nil {
			return nil, err
		}
		if err := ctx.SetUint64(countKey(from), fromCnt-1); err != nil {
			return nil, err
		}
		toCnt, err := ctx.GetUint64(countKey(to))
		if err != nil {
			return nil, err
		}
		if err := ctx.SetUint64(countKey(to), toCnt+1); err != nil {
			return nil, err
		}
		return nil, ctx.Emit("TransferNFT", contract.NewEncoder().
			Address(from).Address(to).Digest(id).Bytes())

	default:
		return nil, fmt.Errorf("%w: erc721.%s", contract.ErrUnknownMethod, method)
	}
}

func (ERC721) ownerOf(ctx *contract.Context, id crypto.Digest) (identity.Address, error) {
	raw, err := ctx.Get(ownerKey(id))
	if err != nil {
		return identity.ZeroAddress, err
	}
	if len(raw) != identity.AddressSize {
		return identity.ZeroAddress, contract.Revertf("erc721: token %s does not exist", id.Short())
	}
	var a identity.Address
	copy(a[:], raw)
	return a, nil
}

// authorized reports whether the caller may move the token: owner,
// per-token approvee or blanket operator.
func (ERC721) authorized(ctx *contract.Context, owner identity.Address, id crypto.Digest) (bool, error) {
	if ctx.Caller == owner {
		return true, nil
	}
	approved, err := ctx.Get(approvedKey(id))
	if err != nil {
		return false, err
	}
	if len(approved) == identity.AddressSize && string(approved) == string(ctx.Caller[:]) {
		return true, nil
	}
	op, err := ctx.Get(operatorKey(owner, ctx.Caller))
	if err != nil {
		return false, err
	}
	return len(op) > 0, nil
}

// Client-side call-data builders.

// ERC721InitArgs encodes constructor arguments.
func ERC721InitArgs(name string) []byte {
	return contract.NewEncoder().String(name).Bytes()
}

// ERC721MintData builds call data for mint.
func ERC721MintData(to identity.Address, id crypto.Digest, uri []byte) []byte {
	return contract.CallData("mint", contract.NewEncoder().Address(to).Digest(id).Blob(uri).Bytes())
}

// ERC721TransferFromData builds call data for transferFrom.
func ERC721TransferFromData(from, to identity.Address, id crypto.Digest) []byte {
	return contract.CallData("transferFrom", contract.NewEncoder().Address(from).Address(to).Digest(id).Bytes())
}

// ERC721TransferMinterData builds call data for transferMinter.
func ERC721TransferMinterData(newMinter identity.Address) []byte {
	return contract.CallData("transferMinter", contract.NewEncoder().Address(newMinter).Bytes())
}

// ERC721ApproveData builds call data for approve.
func ERC721ApproveData(spender identity.Address, id crypto.Digest) []byte {
	return contract.CallData("approve", contract.NewEncoder().Address(spender).Digest(id).Bytes())
}

// ERC721OwnerArgs encodes view arguments for ownerOf.
func ERC721OwnerArgs(id crypto.Digest) []byte {
	return contract.NewEncoder().Digest(id).Bytes()
}
