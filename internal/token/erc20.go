// Package token implements the two Ethereum token standards the paper
// assigns to PDS² asset management (§III-A): ERC-20 fungible tokens for
// rewards ("divisible, non-unique assets, such as currency") and ERC-721
// non-fungible deeds for datasets and workload code ("indivisible, unique
// assets").
//
// Both are contracts for the internal/contract runtime; the package also
// provides client-side helpers that build the call data for every method.
package token

import (
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/identity"
)

// ERC20CodeName is the registry name under which the fungible token
// contract is deployed.
const ERC20CodeName = "pds2/erc20"

// ERC20 is the fungible reward-token contract. Storage layout:
//
//	name, symbol      — immutable metadata
//	minter            — address allowed to mint (the deployer)
//	supply            — total supply
//	bal/<addr>        — balances
//	allow/<o>/<s>     — allowances
type ERC20 struct{}

// Init expects (name string, symbol string, initialSupply uint64); the
// initial supply is credited to the deployer, who also becomes minter.
func (ERC20) Init(ctx *contract.Context, args []byte) error {
	dec := contract.NewDecoder(args)
	name, err := dec.String()
	if err != nil {
		return contract.Revertf("erc20 init: %v", err)
	}
	symbol, err := dec.String()
	if err != nil {
		return contract.Revertf("erc20 init: %v", err)
	}
	supply, err := dec.Uint64()
	if err != nil {
		return contract.Revertf("erc20 init: %v", err)
	}
	if err := dec.Done(); err != nil {
		return contract.Revertf("erc20 init: %v", err)
	}
	if err := ctx.Set("name", []byte(name)); err != nil {
		return err
	}
	if err := ctx.Set("symbol", []byte(symbol)); err != nil {
		return err
	}
	if err := ctx.Set("minter", ctx.Caller[:]); err != nil {
		return err
	}
	if err := ctx.SetUint64("supply", supply); err != nil {
		return err
	}
	if supply > 0 {
		if err := ctx.SetUint64(balKey(ctx.Caller), supply); err != nil {
			return err
		}
		if err := emitTransfer(ctx, identity.ZeroAddress, ctx.Caller, supply); err != nil {
			return err
		}
	}
	return nil
}

func balKey(a identity.Address) string { return "bal/" + a.Hex() }

func allowKey(owner, spender identity.Address) string {
	return "allow/" + owner.Hex() + "/" + spender.Hex()
}

func emitTransfer(ctx *contract.Context, from, to identity.Address, amount uint64) error {
	return ctx.Emit("Transfer", contract.NewEncoder().
		Address(from).Address(to).Uint64(amount).Bytes())
}

// Call dispatches the ERC-20 method set.
func (e ERC20) Call(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	dec := contract.NewDecoder(args)
	switch method {
	case "balanceOf":
		addr, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("balanceOf: %v", err)
		}
		bal, err := ctx.GetUint64(balKey(addr))
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(bal).Bytes(), nil

	case "totalSupply":
		s, err := ctx.GetUint64("supply")
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(s).Bytes(), nil

	case "name", "symbol":
		v, err := ctx.Get(method)
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().String(string(v)).Bytes(), nil

	case "transfer":
		to, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("transfer: %v", err)
		}
		amount, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("transfer: %v", err)
		}
		return nil, e.move(ctx, ctx.Caller, to, amount)

	case "approve":
		spender, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("approve: %v", err)
		}
		amount, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("approve: %v", err)
		}
		if err := ctx.SetUint64(allowKey(ctx.Caller, spender), amount); err != nil {
			return nil, err
		}
		return nil, ctx.Emit("Approval", contract.NewEncoder().
			Address(ctx.Caller).Address(spender).Uint64(amount).Bytes())

	case "allowance":
		owner, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("allowance: %v", err)
		}
		spender, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("allowance: %v", err)
		}
		a, err := ctx.GetUint64(allowKey(owner, spender))
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(a).Bytes(), nil

	case "transferFrom":
		from, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("transferFrom: %v", err)
		}
		to, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("transferFrom: %v", err)
		}
		amount, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("transferFrom: %v", err)
		}
		allowance, err := ctx.GetUint64(allowKey(from, ctx.Caller))
		if err != nil {
			return nil, err
		}
		if allowance < amount {
			return nil, contract.Revertf("allowance %d < amount %d", allowance, amount)
		}
		if err := ctx.SetUint64(allowKey(from, ctx.Caller), allowance-amount); err != nil {
			return nil, err
		}
		return nil, e.move(ctx, from, to, amount)

	case "mint":
		to, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("mint: %v", err)
		}
		amount, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("mint: %v", err)
		}
		minter, err := ctx.Get("minter")
		if err != nil {
			return nil, err
		}
		if string(minter) != string(ctx.Caller[:]) {
			return nil, contract.Revertf("mint: caller is not the minter")
		}
		supply, err := ctx.GetUint64("supply")
		if err != nil {
			return nil, err
		}
		if supply+amount < supply {
			return nil, contract.Revertf("mint: supply overflow")
		}
		if err := ctx.SetUint64("supply", supply+amount); err != nil {
			return nil, err
		}
		bal, err := ctx.GetUint64(balKey(to))
		if err != nil {
			return nil, err
		}
		if err := ctx.SetUint64(balKey(to), bal+amount); err != nil {
			return nil, err
		}
		return nil, emitTransfer(ctx, identity.ZeroAddress, to, amount)

	case "burn":
		amount, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("burn: %v", err)
		}
		bal, err := ctx.GetUint64(balKey(ctx.Caller))
		if err != nil {
			return nil, err
		}
		if bal < amount {
			return nil, contract.Revertf("burn: balance %d < amount %d", bal, amount)
		}
		if err := ctx.SetUint64(balKey(ctx.Caller), bal-amount); err != nil {
			return nil, err
		}
		supply, err := ctx.GetUint64("supply")
		if err != nil {
			return nil, err
		}
		if err := ctx.SetUint64("supply", supply-amount); err != nil {
			return nil, err
		}
		return nil, emitTransfer(ctx, ctx.Caller, identity.ZeroAddress, amount)

	default:
		return nil, fmt.Errorf("%w: erc20.%s", contract.ErrUnknownMethod, method)
	}
}

// move transfers tokens between balances with overdraft and overflow
// checks, emitting the Transfer event.
func (ERC20) move(ctx *contract.Context, from, to identity.Address, amount uint64) error {
	fromBal, err := ctx.GetUint64(balKey(from))
	if err != nil {
		return err
	}
	if fromBal < amount {
		return contract.Revertf("erc20: balance %d < amount %d", fromBal, amount)
	}
	if from == to {
		// A self-transfer must be a balance no-op. Debiting and crediting
		// through separate reads would credit the stale pre-debit balance
		// and mint `amount` out of thin air.
		return emitTransfer(ctx, from, to, amount)
	}
	toBal, err := ctx.GetUint64(balKey(to))
	if err != nil {
		return err
	}
	if toBal+amount < toBal {
		return contract.Revertf("erc20: balance overflow")
	}
	if err := ctx.SetUint64(balKey(from), fromBal-amount); err != nil {
		return err
	}
	if err := ctx.SetUint64(balKey(to), toBal+amount); err != nil {
		return err
	}
	return emitTransfer(ctx, from, to, amount)
}

// Client-side call-data builders.

// ERC20InitArgs encodes constructor arguments.
func ERC20InitArgs(name, symbol string, supply uint64) []byte {
	return contract.NewEncoder().String(name).String(symbol).Uint64(supply).Bytes()
}

// ERC20TransferData builds call data for transfer.
func ERC20TransferData(to identity.Address, amount uint64) []byte {
	return contract.CallData("transfer", contract.NewEncoder().Address(to).Uint64(amount).Bytes())
}

// ERC20ApproveData builds call data for approve.
func ERC20ApproveData(spender identity.Address, amount uint64) []byte {
	return contract.CallData("approve", contract.NewEncoder().Address(spender).Uint64(amount).Bytes())
}

// ERC20TransferFromData builds call data for transferFrom.
func ERC20TransferFromData(from, to identity.Address, amount uint64) []byte {
	return contract.CallData("transferFrom", contract.NewEncoder().Address(from).Address(to).Uint64(amount).Bytes())
}

// ERC20MintData builds call data for mint.
func ERC20MintData(to identity.Address, amount uint64) []byte {
	return contract.CallData("mint", contract.NewEncoder().Address(to).Uint64(amount).Bytes())
}

// ERC20BurnData builds call data for burn.
func ERC20BurnData(amount uint64) []byte {
	return contract.CallData("burn", contract.NewEncoder().Uint64(amount).Bytes())
}

// ERC20BalanceArgs encodes view arguments for balanceOf.
func ERC20BalanceArgs(addr identity.Address) []byte {
	return contract.NewEncoder().Address(addr).Bytes()
}
