package token

import (
	"strings"
	"testing"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// TestERC20SelfTransferConservesSupply is the regression for a minting
// bug found by the property harness (proptest seed 2, shrunk to a
// single op): move() read the recipient balance before debiting the
// sender, so a self-transfer credited the stale pre-debit balance and
// created amount tokens out of thin air.
func TestERC20SelfTransferConservesSupply(t *testing.T) {
	e := newEnv(t)
	tok := e.deploy(t, e.alice, ERC20CodeName, ERC20InitArgs("R", "R", 1_000))

	rcpt := e.mustSend(t, e.alice, tok, ERC20TransferData(e.alice.Address(), 400))
	if got := e.erc20Balance(t, tok, e.alice.Address()); got != 1_000 {
		t.Fatalf("balance after self-transfer = %d, want 1000", got)
	}
	// The Transfer event must still fire — observers rely on it.
	if len(rcpt.Events) != 1 || rcpt.Events[0].Topic != "Transfer" {
		t.Fatalf("expected one Transfer event, got %v", rcpt.Events)
	}

	// Self-transferFrom through an allowance takes the same move() path.
	e.mustSend(t, e.alice, tok, ERC20ApproveData(e.bob.Address(), 500))
	e.mustSend(t, e.bob, tok, ERC20TransferFromData(e.alice.Address(), e.alice.Address(), 300))
	if got := e.erc20Balance(t, tok, e.alice.Address()); got != 1_000 {
		t.Fatalf("balance after self-transferFrom = %d, want 1000", got)
	}

	// An overdrafting self-transfer must still revert.
	rcpt = e.send(t, e.alice, tok, ERC20TransferData(e.alice.Address(), 1_001))
	if rcpt.Succeeded() || !strings.Contains(rcpt.Err, "balance") {
		t.Fatalf("overdraft self-transfer: %v", rcpt.Err)
	}

	ret, err := e.rt.View(e.chain.State(), e.alice.Address(), tok, "totalSupply", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := contract.NewDecoder(ret).Uint64(); s != 1_000 {
		t.Fatalf("supply drifted to %d", s)
	}
}

// TestERC721SelfTransferStable pins the non-fungible analogue: a
// self-transfer keeps ownership and the per-owner count stable (the
// count is read after the debit write, so it never shared the ERC-20
// bug) and still clears any outstanding approval.
func TestERC721SelfTransferStable(t *testing.T) {
	e := newEnv(t)
	deeds := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("Deeds"))
	id := crypto.HashString("deed-1")
	e.mustSend(t, e.alice, deeds, ERC721MintData(e.bob.Address(), id, []byte("uri://1")))
	e.mustSend(t, e.bob, deeds, ERC721ApproveData(e.carol.Address(), id))

	e.mustSend(t, e.bob, deeds, ERC721TransferFromData(e.bob.Address(), e.bob.Address(), id))

	ret, err := e.rt.View(e.chain.State(), e.bob.Address(), deeds, "ownerOf", ERC721OwnerArgs(id))
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := contract.NewDecoder(ret).Address()
	if owner != e.bob.Address() {
		t.Fatalf("owner changed to %s", owner.Short())
	}
	ret, err = e.rt.View(e.chain.State(), e.bob.Address(), deeds, "balanceOf",
		contract.NewEncoder().Address(e.bob.Address()).Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if cnt, _ := contract.NewDecoder(ret).Uint64(); cnt != 1 {
		t.Fatalf("owner count = %d, want 1", cnt)
	}
	// The transfer must have consumed carol's approval.
	rcpt := e.send(t, e.carol, deeds, ERC721TransferFromData(e.bob.Address(), e.carol.Address(), id))
	if rcpt.Succeeded() {
		t.Fatal("stale approval survived a self-transfer")
	}
}

// TestERC721ErrorPaths is a table of approval/transfer refusals beyond
// the happy-path suite: operations on nonexistent tokens, transfers
// with a mismatched from, approvals by strangers.
func TestERC721ErrorPaths(t *testing.T) {
	missing := crypto.HashString("no-such-deed")
	minted := crypto.HashString("deed-A")
	cases := []struct {
		name    string
		data    func(e *env) (from *identity.Identity, data []byte)
		wantErr string
	}{
		{
			name: "approve nonexistent token",
			data: func(e *env) (*identity.Identity, []byte) {
				return e.bob, ERC721ApproveData(e.carol.Address(), missing)
			},
			wantErr: "does not exist",
		},
		{
			name: "transfer nonexistent token",
			data: func(e *env) (*identity.Identity, []byte) {
				return e.bob, ERC721TransferFromData(e.bob.Address(), e.carol.Address(), missing)
			},
			wantErr: "does not exist",
		},
		{
			name: "transfer with mismatched from",
			data: func(e *env) (*identity.Identity, []byte) {
				// carol claims the deed is hers; it belongs to bob.
				return e.bob, ERC721TransferFromData(e.carol.Address(), e.bob.Address(), minted)
			},
			wantErr: "does not own token",
		},
		{
			name: "approval by a stranger",
			data: func(e *env) (*identity.Identity, []byte) {
				return e.carol, ERC721ApproveData(e.carol.Address(), minted)
			},
			wantErr: "does not own token",
		},
		{
			name: "duplicate mint",
			data: func(e *env) (*identity.Identity, []byte) {
				return e.alice, ERC721MintData(e.carol.Address(), minted, []byte("uri://dup"))
			},
			wantErr: "already exists",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t)
			deeds := e.deploy(t, e.alice, ERC721CodeName, ERC721InitArgs("Deeds"))
			e.mustSend(t, e.alice, deeds, ERC721MintData(e.bob.Address(), minted, []byte("uri://A")))
			from, data := tc.data(e)
			rcpt := e.send(t, from, deeds, data)
			if rcpt.Succeeded() {
				t.Fatalf("call succeeded; want revert containing %q", tc.wantErr)
			}
			if !strings.Contains(rcpt.Err, tc.wantErr) {
				t.Fatalf("revert %q does not contain %q", rcpt.Err, tc.wantErr)
			}
		})
	}
}
