// Package smc implements passively-secure multiparty computation over
// additive secret shares in GF(2^61-1): input sharing, opening, local
// addition, Beaver-triple multiplication and dot products, with explicit
// accounting of communication rounds and bytes.
//
// The paper (§III-B) observes that SMC "reduce[s] the overhead in
// comparison to homomorphic encryption" but that "delays introduced
// during communication make it difficult to employ SMC for applications
// that use many operations". This package reproduces both halves of that
// claim in experiment E4: field arithmetic is fast (no big integers),
// while every interactive operation pays a network round whose cost the
// engine reports against a configurable latency model — the structure of
// Falcon-style 3-party honest-majority protocols [14].
package smc

import (
	"errors"
	"fmt"
	"math"

	"pds2/internal/crypto"
	"pds2/internal/simnet"
)

// FixedScale is the default fixed-point scale for encoding real values
// into the field: 2^16 leaves room for one multiplication (scale 2^32)
// plus large sums inside the 61-bit field.
const FixedScale int64 = 1 << 16

// Encode maps a float to a field element at the given scale.
func Encode(f float64, scale int64) crypto.FieldElem {
	return crypto.FieldFromInt64(int64(math.Round(f * float64(scale))))
}

// Decode inverts Encode at the given (possibly accumulated) scale.
func Decode(e crypto.FieldElem, scale int64) float64 {
	return float64(e.Int64()) / float64(scale)
}

// Triple is one party's share of a Beaver multiplication triple
// (a, b, c) with c = a·b.
type Triple struct {
	A, B, C crypto.FieldElem
}

// SharedVector is a secret-shared vector: Shares[p][i] is party p's
// additive share of element i. Scale records the accumulated fixed-point
// scale (multiplications multiply scales; decoding divides by it).
type SharedVector struct {
	Shares [][]crypto.FieldElem
	Scale  int64
}

// Len returns the vector length.
func (sv *SharedVector) Len() int {
	if len(sv.Shares) == 0 {
		return 0
	}
	return len(sv.Shares[0])
}

// Engine orchestrates an n-party computation, tracking the communication
// cost of every interactive step. The engine is the "ideal-world"
// executor: shares are held in one process, but every value that a real
// deployment would move across the network is counted.
type Engine struct {
	NumParties int
	rng        *crypto.DRBG
	triples    [][]Triple // per party, consumed FIFO
	tripleIdx  int

	// Communication accounting.
	Rounds    int
	BytesSent int64
}

// NewEngine creates an engine for n >= 2 parties.
func NewEngine(n int, rng *crypto.DRBG) (*Engine, error) {
	if n < 2 {
		return nil, errors.New("smc: at least 2 parties required")
	}
	return &Engine{NumParties: n, rng: rng}, nil
}

// DealTriples pre-generates count Beaver triples, the offline phase run
// by a trusted dealer (or, in Falcon, by the third helper party). Offline
// cost is not charged to Rounds/BytesSent, matching how the literature
// reports online performance.
func (e *Engine) DealTriples(count int) {
	fresh := make([][]Triple, e.NumParties)
	for p := range fresh {
		fresh[p] = make([]Triple, count)
	}
	for k := 0; k < count; k++ {
		a := e.rng.FieldElem()
		b := e.rng.FieldElem()
		c := crypto.FieldMul(a, b)
		as := e.splitScalar(a)
		bs := e.splitScalar(b)
		cs := e.splitScalar(c)
		for p := 0; p < e.NumParties; p++ {
			fresh[p][k] = Triple{A: as[p], B: bs[p], C: cs[p]}
		}
	}
	if e.triples == nil {
		e.triples = fresh
		e.tripleIdx = 0
		return
	}
	for p := range e.triples {
		e.triples[p] = append(e.triples[p], fresh[p]...)
	}
}

// TriplesLeft returns the number of unconsumed triples.
func (e *Engine) TriplesLeft() int {
	if e.triples == nil {
		return 0
	}
	return len(e.triples[0]) - e.tripleIdx
}

// splitScalar produces n additive shares of v.
func (e *Engine) splitScalar(v crypto.FieldElem) []crypto.FieldElem {
	shares := make([]crypto.FieldElem, e.NumParties)
	rest := v
	for p := 0; p < e.NumParties-1; p++ {
		s := e.rng.FieldElem()
		shares[p] = s
		rest = crypto.FieldSub(rest, s)
	}
	shares[e.NumParties-1] = rest
	return shares
}

// Share secret-shares the input vector at the given scale. The input
// owner sends one share vector to each party: one round, n·len·8 bytes.
func (e *Engine) Share(x []float64, scale int64) *SharedVector {
	sv := &SharedVector{Scale: scale, Shares: make([][]crypto.FieldElem, e.NumParties)}
	for p := range sv.Shares {
		sv.Shares[p] = make([]crypto.FieldElem, len(x))
	}
	for i, f := range x {
		shares := e.splitScalar(Encode(f, scale))
		for p, s := range shares {
			sv.Shares[p][i] = s
		}
	}
	e.Rounds++
	e.BytesSent += int64(e.NumParties) * int64(len(x)) * 8
	return sv
}

// Open reconstructs the vector: every party broadcasts its shares
// (one round, n·(n-1)·len·8 bytes) and decodes locally.
func (e *Engine) Open(sv *SharedVector) []float64 {
	e.Rounds++
	e.BytesSent += int64(e.NumParties) * int64(e.NumParties-1) * int64(sv.Len()) * 8
	out := make([]float64, sv.Len())
	for i := range out {
		sum := crypto.FieldElem(0)
		for p := 0; p < e.NumParties; p++ {
			sum = crypto.FieldAdd(sum, sv.Shares[p][i])
		}
		out[i] = Decode(sum, sv.Scale)
	}
	return out
}

// Add returns the element-wise sum; purely local, no communication.
func (e *Engine) Add(a, b *SharedVector) (*SharedVector, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("smc: add of lengths %d and %d", a.Len(), b.Len())
	}
	if a.Scale != b.Scale {
		return nil, fmt.Errorf("smc: add of scales %d and %d", a.Scale, b.Scale)
	}
	out := &SharedVector{Scale: a.Scale, Shares: make([][]crypto.FieldElem, e.NumParties)}
	for p := 0; p < e.NumParties; p++ {
		out.Shares[p] = make([]crypto.FieldElem, a.Len())
		for i := range out.Shares[p] {
			out.Shares[p][i] = crypto.FieldAdd(a.Shares[p][i], b.Shares[p][i])
		}
	}
	return out, nil
}

// Mul returns the element-wise product via Beaver triples: the parties
// open the masked differences d = x-a and f = y-b (one batched round),
// then combine locally. The result's scale is the product of the input
// scales; decode accordingly or rescale at open time.
func (e *Engine) Mul(x, y *SharedVector) (*SharedVector, error) {
	if x.Len() != y.Len() {
		return nil, fmt.Errorf("smc: mul of lengths %d and %d", x.Len(), y.Len())
	}
	n := x.Len()
	if e.TriplesLeft() < n {
		return nil, fmt.Errorf("smc: %d triples needed, %d available", n, e.TriplesLeft())
	}
	// One communication round: every party broadcasts its shares of d and
	// f for the whole batch.
	e.Rounds++
	e.BytesSent += int64(e.NumParties) * int64(e.NumParties-1) * int64(2*n) * 8

	out := &SharedVector{Scale: x.Scale * y.Scale, Shares: make([][]crypto.FieldElem, e.NumParties)}
	for p := range out.Shares {
		out.Shares[p] = make([]crypto.FieldElem, n)
	}
	for i := 0; i < n; i++ {
		k := e.tripleIdx + i
		// Reconstruct the masked openings d and f.
		var d, f crypto.FieldElem
		for p := 0; p < e.NumParties; p++ {
			tr := e.triples[p][k]
			d = crypto.FieldAdd(d, crypto.FieldSub(x.Shares[p][i], tr.A))
			f = crypto.FieldAdd(f, crypto.FieldSub(y.Shares[p][i], tr.B))
		}
		df := crypto.FieldMul(d, f)
		for p := 0; p < e.NumParties; p++ {
			tr := e.triples[p][k]
			// [xy] = [c] + d·[y] + f·[x] - d·f, with the public -d·f
			// constant applied by party 0 only.
			share := crypto.FieldAdd(tr.C, crypto.FieldMul(d, y.Shares[p][i]))
			share = crypto.FieldAdd(share, crypto.FieldMul(f, x.Shares[p][i]))
			if p == 0 {
				share = crypto.FieldSub(share, df)
			}
			out.Shares[p][i] = share
		}
	}
	e.tripleIdx += n
	return out, nil
}

// Dot computes the inner product of two shared vectors: one Beaver round
// for the products, then a local sum. Returns a length-1 shared vector.
func (e *Engine) Dot(x, y *SharedVector) (*SharedVector, error) {
	prod, err := e.Mul(x, y)
	if err != nil {
		return nil, err
	}
	out := &SharedVector{Scale: prod.Scale, Shares: make([][]crypto.FieldElem, e.NumParties)}
	for p := 0; p < e.NumParties; p++ {
		sum := crypto.FieldElem(0)
		for i := 0; i < prod.Len(); i++ {
			sum = crypto.FieldAdd(sum, prod.Shares[p][i])
		}
		out.Shares[p] = []crypto.FieldElem{sum}
	}
	return out, nil
}

// ScaleByPlain multiplies every element by a public constant; local.
func (e *Engine) ScaleByPlain(x *SharedVector, k float64, kScale int64) *SharedVector {
	ke := Encode(k, kScale)
	out := &SharedVector{Scale: x.Scale * kScale, Shares: make([][]crypto.FieldElem, e.NumParties)}
	for p := 0; p < e.NumParties; p++ {
		out.Shares[p] = make([]crypto.FieldElem, x.Len())
		for i := range out.Shares[p] {
			out.Shares[p][i] = crypto.FieldMul(x.Shares[p][i], ke)
		}
	}
	return out
}

// VirtualTime converts the accumulated communication cost into simulated
// wall-clock time under a latency/bandwidth model: every round pays one
// latency, and all bytes stream at the given bandwidth.
func (e *Engine) VirtualTime(latency simnet.Time, bandwidthBytesPerSec int64) simnet.Time {
	t := simnet.Time(e.Rounds) * latency
	if bandwidthBytesPerSec > 0 {
		t += simnet.Time(e.BytesSent * int64(simnet.Second) / bandwidthBytesPerSec)
	}
	return t
}

// ResetCost zeroes the communication counters (e.g. between experiment
// phases); shares and triples are unaffected.
func (e *Engine) ResetCost() {
	e.Rounds = 0
	e.BytesSent = 0
}
