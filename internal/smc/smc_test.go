package smc

import (
	"math"
	"testing"
	"testing/quick"

	"pds2/internal/crypto"
	"pds2/internal/simnet"
)

func newEngine(t *testing.T, parties int, seed uint64) *Engine {
	t.Helper()
	e, err := NewEngine(parties, crypto.NewDRBGFromUint64(seed, "smc-test"))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1.5, -2.25, 100.0625, -0.0001} {
		got := Decode(Encode(f, FixedScale), FixedScale)
		if math.Abs(got-f) > 1e-4 {
			t.Fatalf("%v -> %v", f, got)
		}
	}
}

func TestShareOpenRoundTrip(t *testing.T) {
	e := newEngine(t, 3, 1)
	x := []float64{1.5, -2.5, 0, 42.125}
	sv := e.Share(x, FixedScale)
	got := e.Open(sv)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-4 {
			t.Fatalf("element %d: %v != %v", i, got[i], x[i])
		}
	}
}

func TestSharesIndividuallyUseless(t *testing.T) {
	e := newEngine(t, 3, 2)
	secret := []float64{123.456}
	sv := e.Share(secret, FixedScale)
	// Any single party's share decodes to nonsense (whp): check it is far
	// from the secret.
	for p := 0; p < 3; p++ {
		v := Decode(sv.Shares[p][0], FixedScale)
		if math.Abs(v-123.456) < 1e-3 {
			t.Fatalf("party %d share leaks the secret", p)
		}
	}
}

func TestAddLocalAndCorrect(t *testing.T) {
	e := newEngine(t, 3, 3)
	a := e.Share([]float64{1, 2, 3}, FixedScale)
	b := e.Share([]float64{10, 20, 30}, FixedScale)
	rounds, bytes := e.Rounds, e.BytesSent
	sum, err := e.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rounds != rounds || e.BytesSent != bytes {
		t.Fatal("addition consumed communication")
	}
	got := e.Open(sum)
	for i, want := range []float64{11, 22, 33} {
		if math.Abs(got[i]-want) > 1e-3 {
			t.Fatalf("sum[%d] = %v", i, got[i])
		}
	}
}

func TestAddValidation(t *testing.T) {
	e := newEngine(t, 3, 4)
	a := e.Share([]float64{1}, FixedScale)
	b := e.Share([]float64{1, 2}, FixedScale)
	if _, err := e.Add(a, b); err == nil {
		t.Fatal("length mismatch accepted")
	}
	c := e.Share([]float64{1}, FixedScale*2)
	if _, err := e.Add(a, c); err == nil {
		t.Fatal("scale mismatch accepted")
	}
}

func TestMulBeaverCorrect(t *testing.T) {
	e := newEngine(t, 3, 5)
	e.DealTriples(10)
	x := []float64{1.5, -2, 3.25}
	y := []float64{2, 4, -0.5}
	sx := e.Share(x, FixedScale)
	sy := e.Share(y, FixedScale)
	prod, err := e.Mul(sx, sy)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Open(prod)
	for i := range x {
		want := x[i] * y[i]
		if math.Abs(got[i]-want) > 1e-3 {
			t.Fatalf("prod[%d] = %v, want %v", i, got[i], want)
		}
	}
	if e.TriplesLeft() != 7 {
		t.Fatalf("triples left = %d", e.TriplesLeft())
	}
}

func TestMulWithoutTriplesFails(t *testing.T) {
	e := newEngine(t, 3, 6)
	x := e.Share([]float64{1}, FixedScale)
	if _, err := e.Mul(x, x); err == nil {
		t.Fatal("mul without triples succeeded")
	}
}

func TestDotMatchesPlain(t *testing.T) {
	e := newEngine(t, 3, 7)
	e.DealTriples(100)
	x := []float64{1, 2, 3, 4}
	w := []float64{0.5, -1, 0.25, 2}
	sx := e.Share(x, FixedScale)
	sw := e.Share(w, FixedScale)
	dot, err := e.Dot(sx, sw)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Open(dot)
	want := 0.5 - 2 + 0.75 + 8
	if math.Abs(got[0]-want) > 1e-3 {
		t.Fatalf("dot = %v, want %v", got[0], want)
	}
}

func TestMulPropertyQuick(t *testing.T) {
	e := newEngine(t, 3, 8)
	e.DealTriples(2000)
	f := func(a, b int16) bool {
		x, y := float64(a)/16, float64(b)/16
		sx := e.Share([]float64{x}, FixedScale)
		sy := e.Share([]float64{y}, FixedScale)
		prod, err := e.Mul(sx, sy)
		if err != nil {
			return false
		}
		got := e.Open(prod)
		return math.Abs(got[0]-x*y) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleByPlain(t *testing.T) {
	e := newEngine(t, 3, 9)
	x := e.Share([]float64{2, -4}, FixedScale)
	y := e.ScaleByPlain(x, 0.5, FixedScale)
	got := e.Open(y)
	if math.Abs(got[0]-1) > 1e-3 || math.Abs(got[1]+2) > 1e-3 {
		t.Fatalf("scaled = %v", got)
	}
}

func TestCommunicationAccounting(t *testing.T) {
	e := newEngine(t, 3, 10)
	e.DealTriples(10)
	if e.Rounds != 0 || e.BytesSent != 0 {
		t.Fatal("dealer charged to online cost")
	}
	x := e.Share([]float64{1, 2}, FixedScale) // round 1
	y := e.Share([]float64{3, 4}, FixedScale) // round 2
	e.Mul(x, y)                               // round 3
	e.Open(x)                                 // round 4
	if e.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4", e.Rounds)
	}
	if e.BytesSent == 0 {
		t.Fatal("no bytes accounted")
	}
	e.ResetCost()
	if e.Rounds != 0 || e.BytesSent != 0 {
		t.Fatal("ResetCost did not zero counters")
	}
}

func TestVirtualTimeModel(t *testing.T) {
	e := newEngine(t, 3, 11)
	e.Rounds = 10
	e.BytesSent = 1000
	// 10 rounds at 10ms + 1000 bytes at 1 KB/s = 100ms + 1s.
	got := e.VirtualTime(10*simnet.Millisecond, 1000)
	want := 100*simnet.Millisecond + simnet.Second
	if got != want {
		t.Fatalf("virtual time = %v, want %v", got, want)
	}
	// Zero bandwidth = latency only.
	if got := e.VirtualTime(10*simnet.Millisecond, 0); got != 100*simnet.Millisecond {
		t.Fatalf("latency-only time = %v", got)
	}
}

func TestTwoPartyEngine(t *testing.T) {
	e := newEngine(t, 2, 12)
	e.DealTriples(5)
	x := e.Share([]float64{3}, FixedScale)
	y := e.Share([]float64{7}, FixedScale)
	prod, err := e.Mul(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Open(prod); math.Abs(got[0]-21) > 1e-3 {
		t.Fatalf("2-party mul = %v", got)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(1, crypto.NewDRBGFromUint64(1, "x")); err == nil {
		t.Fatal("single-party engine accepted")
	}
}

func TestDealTriplesAppends(t *testing.T) {
	e := newEngine(t, 3, 13)
	e.DealTriples(3)
	e.DealTriples(2)
	if e.TriplesLeft() != 5 {
		t.Fatalf("triples = %d", e.TriplesLeft())
	}
}
