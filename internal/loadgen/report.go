package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pds2/internal/api"
	"pds2/internal/telemetry"
)

// ReportSchema versions the BENCH_*.json layout so bench_compare.sh can
// refuse to diff incompatible reports.
const ReportSchema = "pds2/bench/v1"

// ClassReport is the per-traffic-class result. Quantiles come from the
// generator-side "loadgen.<class>_seconds" histogram — for the submit
// classes that is the HTTP round trip to admission; lifecycle ops are
// receipt-gated and so include a commit round trip.
type ClassReport struct {
	Class      string  `json:"class"`
	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
	RatePerSec float64 `json:"rate_per_sec"`
	P50        float64 `json:"p50_seconds"`
	P95        float64 `json:"p95_seconds"`
	P99        float64 `json:"p99_seconds"`
	Max        float64 `json:"max_seconds"`
}

// Report is one load run's result — the BENCH_<date>.json payload.
type Report struct {
	Schema      string  `json:"schema"`
	Date        string  `json:"date"`
	Target      string  `json:"target"`
	Seed        uint64  `json:"seed"`
	Accounts    int     `json:"accounts"`
	Workers     int     `json:"workers"`
	OfferedRate float64 `json:"offered_rate_per_sec"`
	Mix         Mix     `json:"mix"`
	DurationSec float64 `json:"duration_seconds"`

	StartHeight uint64 `json:"start_height"`
	EndHeight   uint64 `json:"end_height"`
	Blocks      uint64 `json:"blocks"`

	// CommittedTxs is the delta of the node's ledger.tx.applied_total
	// counter over the run — transactions that actually executed in
	// sealed blocks, the honest throughput number (admission without
	// commitment is not throughput).
	CommittedTxs      uint64  `json:"committed_txs"`
	CommittedTxPerSec float64 `json:"committed_tx_per_sec"`

	Ops       uint64  `json:"ops"`
	Errors    uint64  `json:"errors"`
	Shed      uint64  `json:"shed"`
	ErrorRate float64 `json:"error_rate"`

	// PolicyOverheadPct is the median-latency tax of the policy-bearing
	// submit path relative to plain transfers — both are single HTTP
	// round trips to admission, but the dataset/policy endpoints add the
	// server-side envelope decode and policy validation. Present only
	// when the run drove both classes; scripts/bench_compare.sh gates it
	// at 2%.
	PolicyOverheadPct float64 `json:"policy_overhead_pct,omitempty"`

	Classes []ClassReport `json:"classes"`

	// Build identifies the generator binary and host (git commit, Go
	// version, CPU count); NodeBuild is the node's own identity read
	// from GET /v1/buildinfo, absent when the node predates the
	// endpoint. Self-hosted runs show the same commit on both.
	Build     telemetry.BuildInfo  `json:"build"`
	NodeBuild *telemetry.BuildInfo `json:"node_build,omitempty"`

	// Runtime summarizes the Go runtime during the measured phase —
	// what the throughput numbers cost in GC and memory terms.
	Runtime RuntimeReport `json:"runtime"`

	SLO      SLO      `json:"slo"`
	Breaches []string `json:"breaches,omitempty"`
}

// RuntimeReport is the runtime-health section of a bench report: GC
// pause tail, peak heap occupancy and peak goroutine count over the
// run. Source says whose runtime was measured — "node" when the node
// under test runs the runtime sampler (the interesting side), falling
// back to "loadgen" (the generator's own process) against nodes that
// don't export runtime gauges.
type RuntimeReport struct {
	Source             string  `json:"source"`
	GCPauseP99Seconds  float64 `json:"gc_pause_p99_seconds"`
	HeapInusePeakBytes uint64  `json:"heap_inuse_peak_bytes"`
	GoroutinesPeak     uint64  `json:"goroutines_peak"`
}

// runtimeReport builds the runtime section, preferring the node-side
// snapshot. The peak-heap gauge doubles as the "did the sampler run"
// probe: it is zero only when no sample was ever taken.
func runtimeReport(node, local telemetry.Snapshot) RuntimeReport {
	if r, ok := runtimeFrom(node, "node"); ok {
		return r
	}
	r, _ := runtimeFrom(local, "loadgen")
	return r
}

func runtimeFrom(s telemetry.Snapshot, source string) (RuntimeReport, bool) {
	peak := counterValue(s, telemetry.MetricHeapInusePeak)
	if peak == 0 {
		return RuntimeReport{Source: source}, false
	}
	return RuntimeReport{
		Source:             source,
		GCPauseP99Seconds:  counterValue(s, telemetry.MetricGCPauseP99),
		HeapInusePeakBytes: uint64(peak),
		GoroutinesPeak:     uint64(counterValue(s, telemetry.MetricGoroutinesPeak)),
	}, true
}

// Filename returns the canonical report name for its date.
func (r *Report) Filename() string { return "BENCH_" + r.Date + ".json" }

// WriteFile writes the report into dir under its canonical name and
// returns the full path.
func (r *Report) WriteFile(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Filename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// checkSLO evaluates the report against slo and returns human-readable
// breach descriptions (empty = pass).
func (r *Report) checkSLO(slo SLO) []string {
	var breaches []string
	if slo.MinTxPerSec > 0 && r.CommittedTxPerSec < slo.MinTxPerSec {
		breaches = append(breaches, fmt.Sprintf(
			"committed throughput %.1f tx/s below the %.1f tx/s floor",
			r.CommittedTxPerSec, slo.MinTxPerSec))
	}
	if slo.MaxP99 > 0 {
		limit := slo.MaxP99.Seconds()
		for _, c := range r.Classes {
			if c.Class == ClassLifecycle || c.Ops == 0 {
				continue // receipt-gated: block-interval dominated
			}
			if c.P99 > limit {
				breaches = append(breaches, fmt.Sprintf(
					"%s p99 %.1fms over the %.1fms ceiling",
					c.Class, c.P99*1e3, limit*1e3))
			}
		}
	}
	if slo.MaxErrorRate > 0 && r.ErrorRate > slo.MaxErrorRate {
		breaches = append(breaches, fmt.Sprintf(
			"error rate %.2f%% over the %.2f%% ceiling",
			r.ErrorRate*100, slo.MaxErrorRate*100))
	}
	return breaches
}

// counterValue finds a counter's value in a telemetry snapshot.
func counterValue(s telemetry.Snapshot, name string) float64 {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// snapshotClasses plucks the per-class latency histograms out of a
// snapshot. The histograms are process-lifetime instruments, so in a
// multi-run process the quantiles cover every run so far; each Run's
// op and error counts, by contrast, are exact per-run worker tallies.
func snapshotClasses(s telemetry.Snapshot) map[string]telemetry.Metric {
	out := make(map[string]telemetry.Metric, len(Classes))
	for _, class := range Classes {
		name := "loadgen." + class + "_seconds"
		for _, m := range s.Metrics {
			if m.Name == name {
				out[class] = m
				break
			}
		}
	}
	return out
}

func buildReport(cfg Config, elapsed time.Duration, before, after telemetry.Snapshot,
	local map[string]telemetry.Metric, h0, h1 api.StatusResponse,
	workers []*worker, shed uint64) *Report {

	rep := &Report{
		Schema:      ReportSchema,
		Date:        time.Now().UTC().Format("2006-01-02"),
		Target:      cfg.Target,
		Seed:        cfg.Seed,
		Accounts:    cfg.Accounts,
		Workers:     len(workers),
		OfferedRate: cfg.Rate,
		Mix:         cfg.Mix,
		DurationSec: elapsed.Seconds(),
		StartHeight: h0.Height,
		EndHeight:   h1.Height,
		Blocks:      h1.Height - h0.Height,
		SLO:         cfg.SLO,
		Shed:        shed,
	}
	applied := counterValue(after, "ledger.tx.applied_total") - counterValue(before, "ledger.tx.applied_total")
	if applied > 0 {
		rep.CommittedTxs = uint64(applied)
	}
	if elapsed > 0 {
		rep.CommittedTxPerSec = applied / elapsed.Seconds()
	}
	for _, class := range Classes {
		var ops, errs uint64
		for _, wk := range workers {
			ops += wk.ops[class]
			errs += wk.errs[class]
		}
		rep.Ops += ops
		rep.Errors += errs
		cr := ClassReport{Class: class, Ops: ops, Errors: errs}
		if elapsed > 0 {
			cr.RatePerSec = float64(ops) / elapsed.Seconds()
		}
		if m, ok := local[class]; ok {
			cr.P50, cr.P95, cr.P99, cr.Max = m.P50, m.P95, m.P99, m.Max
		}
		rep.Classes = append(rep.Classes, cr)
	}
	if rep.Ops > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Ops)
	}
	if tm, ok := local[ClassTransfer]; ok && tm.P50 > 0 {
		if pm, ok := local[ClassPolicy]; ok && pm.P50 > 0 {
			rep.PolicyOverheadPct = (pm.P50 - tm.P50) / tm.P50 * 100
		}
	}
	return rep
}
