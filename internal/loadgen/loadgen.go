// Package loadgen is the open-loop load harness for a PDS² governance
// node: it derives a deterministic population of simulated accounts,
// partitions them across workers, and offers a configurable traffic mix
// — native transfers, ERC-20 mints, account reads and full workload
// lifecycles — against the node's real HTTP API at a fixed arrival
// rate, independent of how fast the node answers (the open-loop
// property that exposes queueing collapse, which closed-loop harnesses
// hide by slowing down with the system under test).
//
// Latency per traffic class is observed into the process-wide telemetry
// histograms ("loadgen.<class>_seconds"), committed throughput is read
// from the node's own ledger counters over GET /metrics, and the run is
// judged against SLO thresholds. Results serialize as a BENCH_<date>.json
// report that scripts/bench_compare.sh diffs across commits.
//
// The generator and the node agree on the account population purely
// through (seed, n): `pds2-node -load-accounts n -load-seed s` funds
// exactly the addresses `pds2-load -accounts n -seed s` will drive, so
// no key material ever crosses the wire.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"pds2/internal/api"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

// Traffic class names; each gets a "loadgen.<class>_seconds" histogram.
const (
	ClassTransfer  = "transfer"
	ClassMint      = "mint"
	ClassRead      = "read"
	ClassLifecycle = "lifecycle"
	ClassPolicy    = "policy"
)

// Classes lists every traffic class in report order.
var Classes = []string{ClassTransfer, ClassMint, ClassRead, ClassLifecycle, ClassPolicy}

// Harness instrumentation. Shed counts offered operations the worker
// pool could not absorb (the open-loop backlog signal); errors count
// operations the node answered with a failure.
var (
	mOps    = telemetry.C("loadgen.ops_total")
	mErrors = telemetry.C("loadgen.errors_total")
	mShed   = telemetry.C("loadgen.shed_total")
	logLoad = telemetry.L("loadgen")
)

func classHist(class string) *telemetry.Histogram {
	return telemetry.H("loadgen."+class+"_seconds", telemetry.TimeBuckets)
}

// Mix is a traffic mix as integer weights; an op's class is drawn with
// probability weight/total. Zero-weight classes never run.
type Mix struct {
	Transfers int `json:"transfers"`
	Mints     int `json:"mints"`
	Reads     int `json:"reads"`
	Lifecycle int `json:"lifecycle"`
	// Policy drives the usage-control surface: dataset registrations and
	// policy mutations through the /v1/datasets endpoints, plus policy
	// check reads (where a denial is a correct answer, not an error).
	Policy int `json:"policy,omitempty"`
}

// DefaultMix approximates a marketplace in steady state: mostly value
// movement, some token mints and reads, a trickle of workload
// lifecycles (which are multi-transaction and receipt-gated, hence far
// heavier per op) and of dataset/policy traffic — enough of the latter
// that every default report carries the policy_overhead_pct gauge.
func DefaultMix() Mix { return Mix{Transfers: 70, Mints: 10, Reads: 15, Lifecycle: 2, Policy: 3} }

func (m Mix) total() int { return m.Transfers + m.Mints + m.Reads + m.Lifecycle + m.Policy }

// ParseMix parses "transfers=70,mints=10,reads=15,lifecycle=2,policy=3".
// Omitted classes get weight 0; an empty string is the default mix.
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("loadgen: bad mix entry %q (want class=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: bad mix weight %q", val)
		}
		switch key {
		case "transfers":
			m.Transfers = w
		case "mints":
			m.Mints = w
		case "reads":
			m.Reads = w
		case "lifecycle":
			m.Lifecycle = w
		case "policy":
			m.Policy = w
		default:
			return m, fmt.Errorf("loadgen: unknown traffic class %q", key)
		}
	}
	if m.total() == 0 {
		return m, errors.New("loadgen: mix has zero total weight")
	}
	return m, nil
}

// SLO is the pass/fail contract a load run is judged against. Zero
// values disable the corresponding check.
type SLO struct {
	// MinTxPerSec is the committed-transaction throughput floor,
	// measured from the node's ledger.tx.applied_total counter.
	MinTxPerSec float64 `json:"min_tx_per_sec,omitempty"`

	// MaxP99 bounds the p99 submit/read latency of the single-request
	// classes (transfer, mint, read). Lifecycle ops are receipt-gated
	// and block-interval dominated, so they are exempt.
	MaxP99 time.Duration `json:"max_p99,omitempty"`

	// MaxErrorRate bounds errors/ops across all classes (shed offered
	// load is reported separately and not counted as an error).
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// Config parameterizes a load run.
type Config struct {
	// Target is the base URL of the node under test.
	Target string

	// Accounts is the simulated account population (default 100_000).
	Accounts int

	// Workers is the number of concurrent workers; accounts are
	// partitioned across them so no two workers race a nonce
	// (default 16).
	Workers int

	// Rate is the offered load in operations per second across all
	// classes (default 400). The arrival schedule is open-loop: slots
	// fire on time regardless of node latency, and slots no worker is
	// free to take are counted as shed.
	Rate float64

	// Duration bounds the measured phase (default 10s). Setup (worker
	// registration, token deploys) happens before the clock starts.
	Duration time.Duration

	// Mix is the traffic mix (zero value selects DefaultMix).
	Mix Mix

	// Seed derives the account population and every random choice the
	// generator makes. The node must have funded Accounts(Seed, n).
	Seed uint64

	// FundEach is the expected genesis balance per account, used only
	// for the pre-flight funding check (default 1_000_000).
	FundEach uint64

	// SLO is the pass/fail contract; the zero value disables checks.
	SLO SLO

	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Accounts <= 0 {
		c.Accounts = 100_000
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Rate <= 0 {
		c.Rate = 400
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix()
	}
	if c.FundEach == 0 {
		c.FundEach = 1_000_000
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Workers > c.Accounts/2 {
		c.Workers = max(1, c.Accounts/2)
	}
	return c
}

// Accounts derives the deterministic simulated population: same seed
// and count always yield the same identities, on the generator and on
// the node funding them.
func Accounts(seed uint64, n int) []*identity.Identity {
	rng := crypto.NewDRBGFromUint64(seed, "loadgen/accounts")
	ids := make([]*identity.Identity, n)
	for i := range ids {
		ids[i] = identity.New("load-"+strconv.Itoa(i), rng)
	}
	return ids
}

// GenesisAlloc builds the genesis funding map for Accounts(seed, n),
// amount native tokens each — what `pds2-node -load-accounts` installs.
func GenesisAlloc(seed uint64, n int, amount uint64) map[identity.Address]uint64 {
	alloc := make(map[identity.Address]uint64, n)
	for _, id := range Accounts(seed, n) {
		alloc[id.Address()] = amount
	}
	return alloc
}

// Run executes one load run against cfg.Target and returns the report.
// An SLO breach is reported in Report.Breaches, not as an error; err is
// reserved for runs that could not execute at all (unreachable node,
// unfunded accounts, setup failure).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	client := api.NewClient(cfg.Target,
		api.WithRetryPolicy(api.NoRetry), // retries would launder latency
		api.WithTimeout(15*time.Second))

	status, err := client.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: node unreachable: %w", err)
	}

	cfg.Logf("deriving %d accounts (seed %d)", cfg.Accounts, cfg.Seed)
	ids := Accounts(cfg.Seed, cfg.Accounts)

	// Pre-flight: the population must actually be funded, or every
	// transfer would bounce and the run would measure nothing.
	probe, err := client.Account(ctx, ids[len(ids)-1].Address())
	if err != nil {
		return nil, fmt.Errorf("loadgen: funding probe: %w", err)
	}
	if probe.Balance == 0 {
		return nil, fmt.Errorf("loadgen: account population is unfunded — start the node with -load-accounts %d -load-seed %d (or matching -fund)", cfg.Accounts, cfg.Seed)
	}

	// Partition accounts across workers and run per-worker setup
	// (consumer registration, ERC-20 deploy) before the clock starts.
	cfg.Logf("setting up %d workers (token deploys, consumer registration)", cfg.Workers)
	workers := make([]*worker, cfg.Workers)
	var (
		wg       sync.WaitGroup
		setupErr error
		errOnce  sync.Once
	)
	for w := range workers {
		lo := w * cfg.Accounts / cfg.Workers
		hi := (w + 1) * cfg.Accounts / cfg.Workers
		workers[w] = newWorker(w, cfg, client, ids, lo, hi, status.QAPub, status.Registry)
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			if err := wk.setup(ctx); err != nil {
				errOnce.Do(func() { setupErr = fmt.Errorf("loadgen: worker %d setup: %w", wk.index, err) })
			}
		}(workers[w])
	}
	wg.Wait()
	if setupErr != nil {
		return nil, setupErr
	}

	// Run the generator-side runtime sampler for the measured phase so
	// the report's runtime section has a fallback when the node under
	// test doesn't export runtime gauges.
	sampler := telemetry.StartRuntimeSampler(telemetry.Default(), time.Second)
	defer sampler.Stop()

	// Baselines around the measured phase.
	before, err := client.Metrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: read metrics baseline: %w", err)
	}
	h0, err := client.Status(ctx)
	if err != nil {
		return nil, err
	}

	cfg.Logf("offering %.0f ops/s for %s (mix %+v)", cfg.Rate, cfg.Duration, cfg.Mix)
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Open-loop dispatcher: slots fire on the wall clock; the buffer
	// bounds the backlog to one op per worker, and a slot that cannot
	// even be queued is shed — never silently delayed behind slow
	// responses, which is what makes the loop open.
	slots := make(chan struct{}, cfg.Workers)
	var shed uint64
	for _, wk := range workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			wk.run(runCtx, slots)
		}(wk)
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	next := start
dispatch:
	for {
		next = next.Add(interval)
		d := time.Until(next)
		if d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-runCtx.Done():
				timer.Stop()
				break dispatch
			case <-timer.C:
			}
		} else if runCtx.Err() != nil {
			break dispatch
		}
		select {
		case slots <- struct{}{}:
		case <-runCtx.Done():
			break dispatch
		default:
			shed++
			mShed.Inc()
		}
	}
	close(slots)
	cancel()
	wg.Wait()
	elapsed := time.Since(start)

	after, err := client.Metrics(context.WithoutCancel(ctx))
	if err != nil {
		return nil, fmt.Errorf("loadgen: read metrics after run: %w", err)
	}
	h1, err := client.Status(context.WithoutCancel(ctx))
	if err != nil {
		return nil, err
	}
	sampler.Sample() // final tick so short runs still record peaks
	localSnap := telemetry.Default().Snapshot()
	local := snapshotClasses(localSnap)

	rep := buildReport(cfg, elapsed, before, after, local, h0, h1, workers, shed)
	rep.Build = telemetry.CollectBuildInfo()
	if bi, err := client.BuildInfo(context.WithoutCancel(ctx)); err == nil {
		rep.NodeBuild = &bi
	}
	rep.Runtime = runtimeReport(after, localSnap)
	rep.Breaches = rep.checkSLO(cfg.SLO)
	logLoad.Info("load run complete",
		telemetry.U64("ops", rep.Ops),
		telemetry.U64("errors", rep.Errors),
		telemetry.U64("shed", rep.Shed),
		telemetry.Int("breaches", len(rep.Breaches)))
	return rep, nil
}
