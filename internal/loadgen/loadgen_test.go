package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pds2/internal/api"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

// startNode spins up a real API server over HTTP with the loadgen
// population funded at genesis, plus the same auto-sealer loop
// pds2-node runs.
func startNode(t *testing.T, seed uint64, accounts int) (string, context.CancelFunc) {
	t.Helper()
	telemetry.Enable()
	m, err := market.New(market.Config{
		Seed:         seed,
		GenesisAlloc: GenesisAlloc(seed, accounts, 1_000_000),
		MempoolSize:  50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.NewServer(m, true))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		client := api.NewClient(ts.URL)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			if st, err := client.Status(ctx); err == nil && st.Pending > 0 {
				_, _ = client.Seal(ctx)
			}
		}
	}()
	t.Cleanup(ts.Close)
	return ts.URL, cancel
}

func TestRunAgainstInProcessNode(t *testing.T) {
	const seed, accounts = 42, 300
	url, stop := startNode(t, seed, accounts)
	defer stop()

	rep, err := Run(context.Background(), Config{
		Target:   url,
		Accounts: accounts,
		Workers:  4,
		Rate:     250,
		Duration: 3 * time.Second,
		Seed:     seed,
		SLO:      SLO{MinTxPerSec: 5, MaxErrorRate: 0.05},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("no operations executed")
	}
	if rep.CommittedTxs == 0 {
		t.Fatal("no transactions committed — throughput measurement broken")
	}
	if rep.Blocks == 0 {
		t.Fatal("no blocks sealed during the run")
	}
	for _, c := range rep.Classes {
		if c.Class == ClassLifecycle {
			continue // low weight; may legitimately draw zero ops in 3s
		}
		if c.Ops == 0 {
			t.Errorf("class %s drew no operations", c.Class)
		}
		if c.Ops > 0 && c.P99 == 0 {
			t.Errorf("class %s has ops but no latency quantiles", c.Class)
		}
	}
	if len(rep.Breaches) != 0 {
		t.Fatalf("unexpected SLO breaches: %v", rep.Breaches)
	}
	// The runtime and build sections carry real measurements.
	if rep.Runtime.HeapInusePeakBytes == 0 || rep.Runtime.GoroutinesPeak == 0 {
		t.Fatalf("runtime section empty: %+v", rep.Runtime)
	}
	if rep.Build.GoVersion == "" || rep.Build.NumCPU == 0 {
		t.Fatalf("build section empty: %+v", rep.Build)
	}
	if rep.NodeBuild == nil || rep.NodeBuild.GoVersion == "" {
		t.Fatalf("node build section missing: %+v", rep.NodeBuild)
	}

	// The report round-trips through its canonical file.
	dir := t.TempDir()
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != rep.Filename() {
		t.Fatalf("wrote %s, want %s", path, rep.Filename())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.CommittedTxs != rep.CommittedTxs {
		t.Fatal("report did not round-trip")
	}
}

func TestRunRefusesUnfundedPopulation(t *testing.T) {
	url, stop := startNode(t, 7, 50)
	defer stop()
	// Different seed: the funded population and the driven population
	// are disjoint, which must fail fast instead of measuring noise.
	_, err := Run(context.Background(), Config{
		Target: url, Accounts: 50, Workers: 2, Rate: 50,
		Duration: time.Second, Seed: 8,
	})
	if err == nil {
		t.Fatal("run against an unfunded population succeeded")
	}
}

func TestSLOEvaluation(t *testing.T) {
	rep := &Report{
		CommittedTxPerSec: 100,
		ErrorRate:         0.02,
		Classes: []ClassReport{
			{Class: ClassTransfer, Ops: 1000, P99: 0.050},
			{Class: ClassLifecycle, Ops: 10, P99: 2.0}, // exempt from MaxP99
		},
	}
	if b := rep.checkSLO(SLO{MinTxPerSec: 50, MaxP99: 100 * time.Millisecond, MaxErrorRate: 0.05}); len(b) != 0 {
		t.Fatalf("healthy run breached: %v", b)
	}
	b := rep.checkSLO(SLO{MinTxPerSec: 200, MaxP99: 10 * time.Millisecond, MaxErrorRate: 0.01})
	if len(b) != 3 {
		t.Fatalf("want 3 breaches (throughput, p99, error rate), got %d: %v", len(b), b)
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("transfers=50,reads=50")
	if err != nil || m.Transfers != 50 || m.Reads != 50 || m.Mints != 0 || m.Lifecycle != 0 {
		t.Fatalf("got %+v, %v", m, err)
	}
	if m, err := ParseMix(""); err != nil || m != DefaultMix() {
		t.Fatalf("empty mix should select the default, got %+v, %v", m, err)
	}
	for _, bad := range []string{"transfers", "transfers=x", "bogus=1", "transfers=0,reads=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestAccountsDeterministic(t *testing.T) {
	a, b := Accounts(3, 10), Accounts(3, 10)
	for i := range a {
		if a[i].Address() != b[i].Address() {
			t.Fatal("account derivation is not deterministic")
		}
	}
	if Accounts(4, 1)[0].Address() == a[0].Address() {
		t.Fatal("different seeds derived the same account")
	}
	alloc := GenesisAlloc(3, 10, 500)
	if len(alloc) != 10 || alloc[a[0].Address()] != 500 {
		t.Fatalf("bad alloc: %d entries", len(alloc))
	}
}
