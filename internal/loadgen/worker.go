package loadgen

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"pds2/internal/api"
	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/policy"
	"pds2/internal/token"
)

// Gas limits attached to generated transactions. Transfers carry the
// exact intrinsic cost; contract calls carry generous headroom — the
// chain packs blocks by gas actually used, so headroom is free.
const (
	callGas   = 2_000_000
	deployGas = 5_000_000
)

// loadMeasurement is the enclave measurement stamped on generated
// workload specs; no executor ever attests against it — lifecycle load
// exercises submit/list/cancel, not execution.
var loadMeasurement = crypto.HashBytes([]byte("pds2/loadgen/enclave"))

// pendingWorkload is a workload this worker deployed and will cancel
// once the chain passes its expiry.
type pendingWorkload struct {
	addr   identity.Address
	expiry uint64
}

// worker drives one shard of the account population. Each worker owns
// accounts [lo, hi) exclusively — nonces never race across workers —
// and runs ops strictly sequentially, so its banker account (shard
// index 0: ERC-20 owner, registered consumer, lifecycle actor) needs no
// locking either.
type worker struct {
	index    int
	cfg      Config
	client   *api.Client
	ids      []*identity.Identity
	lo, hi   int
	qaPub    []byte
	registry identity.Address

	rng    *crypto.DRBG
	nonces []uint64 // local nonce view per shard account
	dirty  []bool   // resync from chain before next use
	cursor int

	token   identity.Address
	pending []pendingWorkload

	// dataset is the worker's policy-bearing base dataset (policy
	// traffic); polSeq rotates the policy op kind and derives fresh
	// dataset IDs for registration traffic.
	dataset crypto.Digest
	polSeq  int

	ops, errs map[string]uint64
}

func newWorker(index int, cfg Config, client *api.Client, ids []*identity.Identity, lo, hi int, qaPub []byte, registry identity.Address) *worker {
	return &worker{
		index:    index,
		cfg:      cfg,
		client:   client,
		ids:      ids,
		lo:       lo,
		hi:       hi,
		qaPub:    qaPub,
		registry: registry,
		rng:      crypto.NewDRBGFromUint64(cfg.Seed, "loadgen/worker/"+strconv.Itoa(index)),
		nonces:   make([]uint64, hi-lo),
		dirty:    make([]bool, hi-lo),
		ops:      make(map[string]uint64),
		errs:     make(map[string]uint64),
	}
}

func (w *worker) banker() *identity.Identity { return w.ids[w.lo] }

// setup runs once before the measured phase: the banker deploys the
// worker's ERC-20 (mint traffic) and registers as a consumer (lifecycle
// traffic). Skipped entirely when the mix never uses them.
func (w *worker) setup(ctx context.Context) error {
	if w.cfg.Mix.Mints > 0 {
		nonce := w.nonces[0]
		tx := ledger.SignTx(w.banker(), identity.ZeroAddress, 0, nonce, deployGas,
			contract.DeployData(token.ERC20CodeName, token.ERC20InitArgs("Load", "LOAD", 0)))
		rcpt, err := w.submitAndWait(ctx, tx, 0)
		if err != nil {
			return fmt.Errorf("deploy ERC-20: %w", err)
		}
		copy(w.token[:], rcpt.Return)
	}
	if w.cfg.Mix.Lifecycle > 0 {
		nonce := w.nonces[0]
		tx := ledger.SignTx(w.banker(), w.registry, 0, nonce, callGas,
			market.RegisterActorData(identity.RoleConsumer))
		if _, err := w.submitAndWait(ctx, tx, 0); err != nil {
			return fmt.Errorf("register consumer: %w", err)
		}
	}
	if w.cfg.Mix.Policy > 0 {
		// The banker registers the worker's base dataset and attaches a
		// class-restricted policy, receipt-gated so the measured phase's
		// policy mutations and checks always hit a registered dataset.
		w.dataset = crypto.HashString(fmt.Sprintf("loadgen/%d/worker/%d/base", w.cfg.Seed, w.index))
		nonce := w.nonces[0]
		tx := ledger.SignTx(w.banker(), w.registry, 0, nonce, callGas,
			market.RegisterDataData(w.dataset, crypto.HashString("loadgen/meta")))
		if _, err := w.submitAndWait(ctx, tx, 0); err != nil {
			return fmt.Errorf("register base dataset: %w", err)
		}
		nonce = w.nonces[0]
		pol := &policy.Policy{AllowedClasses: []string{market.DefaultComputationClass}}
		tx = ledger.SignTx(w.banker(), w.registry, 0, nonce, callGas,
			market.SetPolicyData(w.dataset, pol))
		if _, err := w.submitAndWait(ctx, tx, 0); err != nil {
			return fmt.Errorf("attach base policy: %w", err)
		}
	}
	return nil
}

// run consumes dispatcher slots until the channel closes or the run
// context expires.
func (w *worker) run(ctx context.Context, slots <-chan struct{}) {
	for range slots {
		if ctx.Err() != nil {
			// Drain remaining slots without doing work so the
			// dispatcher never blocks on a stopped worker.
			continue
		}
		class := w.pickClass()
		t0 := time.Now()
		err := w.do(ctx, class)
		if ctx.Err() != nil {
			continue // cut off mid-op by the deadline; not a node failure
		}
		classHist(class).Observe(time.Since(t0).Seconds())
		mOps.Inc()
		w.ops[class]++
		if err != nil {
			mErrors.Inc()
			w.errs[class]++
		}
	}
}

// pickClass draws a traffic class from the mix.
func (w *worker) pickClass() string {
	m := w.cfg.Mix
	n := w.rng.Intn(m.total())
	switch {
	case n < m.Transfers:
		return ClassTransfer
	case n < m.Transfers+m.Mints:
		return ClassMint
	case n < m.Transfers+m.Mints+m.Reads:
		return ClassRead
	case n < m.Transfers+m.Mints+m.Reads+m.Lifecycle:
		return ClassLifecycle
	default:
		return ClassPolicy
	}
}

func (w *worker) do(ctx context.Context, class string) error {
	switch class {
	case ClassTransfer:
		return w.doTransfer(ctx)
	case ClassMint:
		return w.doMint(ctx)
	case ClassRead:
		return w.doRead(ctx)
	case ClassPolicy:
		return w.doPolicy(ctx)
	default:
		return w.doLifecycle(ctx)
	}
}

// nonceFor returns the next usable nonce for shard account j, resyncing
// from the chain after a failed submission. Resyncing to the committed
// nonce can re-issue a nonce that is still pooled; the mempool's
// same-nonce replacement makes that harmless.
func (w *worker) nonceFor(ctx context.Context, j int) (uint64, error) {
	if w.dirty[j] {
		acct, err := w.client.Account(ctx, w.ids[w.lo+j].Address())
		if err != nil {
			return 0, err
		}
		w.nonces[j] = acct.Nonce
		w.dirty[j] = false
	}
	return w.nonces[j], nil
}

// randomAddr picks a recipient from the whole population — transfers
// cross worker shards, so the state working set is the full population,
// not a per-worker slice.
func (w *worker) randomAddr() identity.Address {
	return w.ids[w.rng.Intn(len(w.ids))].Address()
}

// doTransfer sends one native-token transfer from the next shard
// account (round-robin, so each account submits rarely and its local
// nonce view stays ahead of the chain by at most one block's worth).
func (w *worker) doTransfer(ctx context.Context) error {
	shard := w.hi - w.lo
	j := 1 + w.cursor%(shard-1)
	w.cursor++
	sender := w.ids[w.lo+j]
	nonce, err := w.nonceFor(ctx, j)
	if err != nil {
		return err
	}
	to := w.randomAddr()
	if to == sender.Address() {
		to = w.banker().Address()
	}
	tx := ledger.SignTx(sender, to, 1, nonce, ledger.TxBaseGas, nil)
	if _, err := w.client.SubmitTx(ctx, tx); err != nil {
		w.dirty[j] = true
		return err
	}
	w.nonces[j]++
	return nil
}

// doMint mints one unit of the worker's ERC-20 to a random account.
func (w *worker) doMint(ctx context.Context) error {
	nonce, err := w.nonceFor(ctx, 0)
	if err != nil {
		return err
	}
	data := token.ERC20MintData(w.randomAddr(), 1)
	tx := ledger.SignTx(w.banker(), w.token, 0, nonce, callGas, data)
	if _, err := w.client.SubmitTx(ctx, tx); err != nil {
		w.dirty[0] = true
		return err
	}
	w.nonces[0]++
	return nil
}

// doRead fetches a random account — the cheap read path a wallet or
// explorer hammers.
func (w *worker) doRead(ctx context.Context) error {
	_, err := w.client.Account(ctx, w.randomAddr())
	return err
}

// doLifecycle advances this worker's workload lifecycle traffic: cancel
// the oldest deployed workload once the chain passes its expiry,
// otherwise deploy-and-list a fresh one. Unlike the submit-only
// classes, a deploy is receipt-gated (the workload address comes from
// the deploy receipt), so lifecycle latency includes a commit round
// trip and is dominated by the block interval.
func (w *worker) doLifecycle(ctx context.Context) error {
	status, err := w.client.Status(ctx)
	if err != nil {
		return err
	}
	if len(w.pending) > 0 && status.Height > w.pending[0].expiry {
		p := w.pending[0]
		w.pending = w.pending[1:]
		nonce, err := w.nonceFor(ctx, 0)
		if err != nil {
			return err
		}
		tx := ledger.SignTx(w.banker(), p.addr, 0, nonce, callGas, contract.CallData("cancel", nil))
		if _, err := w.client.SubmitTx(ctx, tx); err != nil {
			w.dirty[0] = true
			return err
		}
		w.nonces[0]++
		return nil
	}

	spec := &market.Spec{
		Predicate:      "class=loadgen",
		MinProviders:   1,
		MinItems:       1,
		ExpiryHeight:   status.Height + 3,
		ExecutorFeeBps: 1000,
		Measurement:    loadMeasurement,
		QAPub:          w.qaPub,
		Params:         []byte("noop"),
	}
	nonce, err := w.nonceFor(ctx, 0)
	if err != nil {
		return err
	}
	deploy := ledger.SignTx(w.banker(), identity.ZeroAddress, 10, nonce, deployGas,
		contract.DeployData(market.WorkloadCodeName, spec.Encode()))
	rcpt, err := w.submitAndWait(ctx, deploy, 0)
	if err != nil {
		return fmt.Errorf("deploy workload: %w", err)
	}
	var addr identity.Address
	copy(addr[:], rcpt.Return)

	nonce, err = w.nonceFor(ctx, 0)
	if err != nil {
		return err
	}
	list := ledger.SignTx(w.banker(), w.registry, 0, nonce, callGas, market.RegisterWorkloadData(addr))
	if _, err := w.client.SubmitTx(ctx, list); err != nil {
		w.dirty[0] = true
		return fmt.Errorf("list workload: %w", err)
	}
	w.nonces[0]++
	w.pending = append(w.pending, pendingWorkload{addr: addr, expiry: spec.ExpiryHeight})
	return nil
}

// doPolicy drives the usage-control surface, rotating through the three
// op kinds: register a fresh dataset (POST /v1/datasets), tighten or
// relax the base dataset's policy (PUT /v1/datasets/{id}/policy), and a
// policy check read (GET .../check). Like transfer/mint, the mutations
// are submit-only — latency measures the HTTP round trip to admission,
// which for these endpoints includes the server-side envelope and
// policy validation, so the policy class's submit quantiles read
// directly against the transfer class's as the policy tax.
func (w *worker) doPolicy(ctx context.Context) error {
	seq := w.polSeq
	w.polSeq++
	switch seq % 3 {
	case 0: // fresh dataset registration
		nonce, err := w.nonceFor(ctx, 0)
		if err != nil {
			return err
		}
		dataID := crypto.HashString(fmt.Sprintf("loadgen/%d/worker/%d/data/%d", w.cfg.Seed, w.index, seq))
		tx := ledger.SignTx(w.banker(), w.registry, 0, nonce, callGas,
			market.RegisterDataData(dataID, crypto.HashString("loadgen/meta")))
		if _, err := w.client.RegisterDataset(ctx, tx); err != nil {
			w.dirty[0] = true
			return err
		}
		w.nonces[0]++
		return nil
	case 1: // policy churn on the base dataset
		nonce, err := w.nonceFor(ctx, 0)
		if err != nil {
			return err
		}
		pol := &policy.Policy{
			AllowedClasses: []string{market.DefaultComputationClass},
			MinAggregation: uint64(1 + seq%4),
		}
		tx := ledger.SignTx(w.banker(), w.registry, 0, nonce, callGas,
			market.SetPolicyData(w.dataset, pol))
		if _, err := w.client.SetPolicy(ctx, w.dataset, tx); err != nil {
			w.dirty[0] = true
			return err
		}
		w.nonces[0]++
		return nil
	default: // check read, alternating allowed and forbidden classes
		class := market.DefaultComputationClass
		if seq%2 == 0 {
			class = "loadgen-forbidden"
		}
		_, err := w.client.CheckPolicy(ctx, w.dataset, "", class, "", 4)
		var ae *api.APIError
		if errors.As(err, &ae) && ae.Code == api.CodePolicyViolation {
			// A denial is the policy working, not a node failure.
			return nil
		}
		return err
	}
}

// submitAndWait submits a transaction from shard account j and polls
// until its receipt commits (the node's auto-sealer or an external
// sealer must be running). The local nonce advances only on success.
func (w *worker) submitAndWait(ctx context.Context, tx *ledger.Transaction, j int) (*ledger.Receipt, error) {
	hash, err := w.client.SubmitTx(ctx, tx)
	if err != nil {
		w.dirty[j] = true
		return nil, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		rcpt, err := w.client.Receipt(ctx, hash)
		if err == nil {
			w.nonces[j] = tx.Nonce + 1
			w.dirty[j] = false
			if !rcpt.Succeeded() {
				return nil, fmt.Errorf("loadgen: tx %s reverted: %s", hash.Short(), rcpt.Err)
			}
			return rcpt, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			w.dirty[j] = true
			return nil, fmt.Errorf("loadgen: tx %s not committed after 30s (is a sealer running?)", hash.Short())
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
