// Package storage implements the storage subsystem of PDS² (§II-C): it
// "is responsible for permanently storing the providers' data. It then
// matches data against available workloads and gives the executors
// access to them, when authorized by the providers."
//
// Data is encrypted at rest under per-item keys derived from the owner's
// vault key, addressed by the plaintext content digest (which is also the
// identifier registered on the governance ledger and deeded as an NFT),
// and released to executors only against a signed, workload-bound access
// grant — the §II-E requirement that even storage operators cannot read
// the data they hold.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pds2/internal/crypto"
)

// BlobStore is the raw ciphertext store under a vault. Implementations
// must be safe for concurrent use.
type BlobStore interface {
	// Put stores a blob under the given key, overwriting any previous
	// content.
	Put(key crypto.Digest, blob []byte) error

	// Get returns the blob stored under key.
	Get(key crypto.Digest) ([]byte, error)

	// Has reports whether a blob exists under key.
	Has(key crypto.Digest) bool

	// Delete removes the blob under key; deleting a missing key is a
	// no-op, making deletes idempotent.
	Delete(key crypto.Digest) error
}

// ErrNotFound is returned by Get for missing blobs.
var ErrNotFound = errors.New("storage: blob not found")

// MemStore is an in-memory BlobStore, the default for simulations.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[crypto.Digest][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[crypto.Digest][]byte)}
}

// Put implements BlobStore.
func (s *MemStore) Put(key crypto.Digest, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[key] = append([]byte(nil), blob...)
	return nil
}

// Get implements BlobStore.
func (s *MemStore) Get(key crypto.Digest) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key.Short())
	}
	return append([]byte(nil), b...), nil
}

// Has implements BlobStore.
func (s *MemStore) Has(key crypto.Digest) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[key]
	return ok
}

// Delete implements BlobStore.
func (s *MemStore) Delete(key crypto.Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, key)
	return nil
}

// Len returns the number of stored blobs.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// DirStore is a filesystem-backed BlobStore, one file per blob, sharded
// by digest prefix — the "own hardware" storage option of Fig. 3.
type DirStore struct {
	root string
	mu   sync.Mutex
}

// NewDirStore creates (if needed) and opens a store rooted at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	return &DirStore{root: dir}, nil
}

func (s *DirStore) path(key crypto.Digest) string {
	hex := key.Hex()
	return filepath.Join(s.root, hex[:2], hex)
}

// Put implements BlobStore.
func (s *DirStore) Put(key crypto.Digest, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: shard dir: %w", err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("storage: write: %w", err)
	}
	return os.Rename(tmp, p)
}

// Get implements BlobStore.
func (s *DirStore) Get(key crypto.Digest) ([]byte, error) {
	b, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key.Short())
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read: %w", err)
	}
	return b, nil
}

// Has implements BlobStore.
func (s *DirStore) Has(key crypto.Digest) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Delete implements BlobStore.
func (s *DirStore) Delete(key crypto.Digest) error {
	err := os.Remove(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}
