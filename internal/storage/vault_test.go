package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// TestVaultRoundTripSizes exercises seal/unseal across payload sizes,
// including one smaller than a GCM nonce and one spanning many blocks.
func TestVaultRoundTripSizes(t *testing.T) {
	v, _ := testVault(t, 1)
	rng := crypto.NewDRBGFromUint64(99, "vault-roundtrip")
	for _, size := range []int{1, 15, 16, 17, 1024, 64 * 1024} {
		t.Run(fmt.Sprintf("size-%d", size), func(t *testing.T) {
			data := rng.Bytes(size)
			ref, err := v.Store(data, sensorMeta(float64(size)))
			if err != nil {
				t.Fatal(err)
			}
			if ref.Size != int64(size) {
				t.Fatalf("ref size %d, want %d", ref.Size, size)
			}
			got, err := v.Retrieve(ref.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("round-trip mismatch")
			}
		})
	}
}

// TestVaultTamperDetected flips one ciphertext bit and expects both the
// owner path and the grant path to reject the blob.
func TestVaultTamperDetected(t *testing.T) {
	v, _ := testVault(t, 2)
	data := []byte("confidential readings")
	ref, err := v.Store(data, sensorMeta(1))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := v.store.Get(ref.ID)
	if err != nil {
		t.Fatal(err)
	}
	ct[len(ct)/2] ^= 0x01
	if err := v.store.Put(ref.ID, ct); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Retrieve(ref.ID); err == nil {
		t.Fatal("retrieve accepted a tampered ciphertext")
	}
	exec := identity.New("exec", crypto.NewDRBGFromUint64(3, "vault-test"))
	g, err := v.Grant(ref.ID, crypto.HashString("wl"), exec.Address(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Open(ct); err == nil {
		t.Fatal("grant opened a tampered ciphertext")
	}
}

// TestGrantExpiryBoundary pins the expiry comparison: a grant is valid
// at exactly its expiry height and invalid one block later.
func TestGrantExpiryBoundary(t *testing.T) {
	v, _ := testVault(t, 4)
	ref, err := v.Store([]byte("data"), sensorMeta(1))
	if err != nil {
		t.Fatal(err)
	}
	wl := crypto.HashString("wl")
	exec := identity.New("exec", crypto.NewDRBGFromUint64(5, "vault-test"))
	g, err := v.Grant(ref.ID, wl, exec.Address(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(wl, exec.Address(), 50); err != nil {
		t.Fatalf("grant invalid at its own expiry height: %v", err)
	}
	if err := g.Verify(wl, exec.Address(), 51); !errors.Is(err, ErrGrantExpired) {
		t.Fatalf("err = %v, want ErrGrantExpired", err)
	}
}

// TestVaultPerItemKeys pins the per-item key separation: items get
// distinct keys, and a grant for one item cannot open another.
func TestVaultPerItemKeys(t *testing.T) {
	v, _ := testVault(t, 6)
	refA, err := v.Store([]byte("item A plaintext"), sensorMeta(1))
	if err != nil {
		t.Fatal(err)
	}
	refB, err := v.Store([]byte("item B plaintext"), sensorMeta(2))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(v.itemKey(refA.ID), v.itemKey(refB.ID)) {
		t.Fatal("two items share an encryption key")
	}
	wl := crypto.HashString("wl")
	exec := identity.New("exec", crypto.NewDRBGFromUint64(7, "vault-test"))
	gA, err := v.Grant(refA.ID, wl, exec.Address(), 100)
	if err != nil {
		t.Fatal(err)
	}
	ctB, err := v.store.Get(refB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gA.Open(ctB); err == nil {
		t.Fatal("grant for item A opened item B")
	}
}

// TestGrantTamperedFieldsFailVerify mutates each signed grant field and
// expects signature verification to fail.
func TestGrantTamperedFieldsFailVerify(t *testing.T) {
	v, _ := testVault(t, 8)
	ref, err := v.Store([]byte("data"), sensorMeta(1))
	if err != nil {
		t.Fatal(err)
	}
	wl := crypto.HashString("wl")
	exec := identity.New("exec", crypto.NewDRBGFromUint64(9, "vault-test"))
	mallory := identity.New("mallory", crypto.NewDRBGFromUint64(10, "vault-test"))
	base, err := v.Grant(ref.ID, wl, exec.Address(), 100)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Grant){
		"expiry": func(g *Grant) { g.Expiry = 1 << 40 },
		"key":    func(g *Grant) { g.Key = append([]byte(nil), g.Key...); g.Key[0] ^= 1 },
		"owner":  func(g *Grant) { g.Owner = mallory.Address(); g.Pub = mallory.PublicKey() },
		"data":   func(g *Grant) { g.DataID = crypto.HashString("other") },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			g := base
			mutate(&g)
			if err := g.Verify(g.WorkloadID, g.Grantee, 10); err == nil {
				t.Fatal("verify accepted a tampered grant")
			}
		})
	}
}
