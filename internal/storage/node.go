package storage

import (
	"fmt"
	"sort"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/semantic"
)

// Node is a storage-subsystem operator: it hosts the (encrypted) blobs
// of many vaults, keeps a metadata index, and matches registered data
// against workload predicates on behalf of providers. A Node never holds
// decryption keys — it serves ciphertext to executors who present grants.
//
// The leakage budget realizes the §IV-C trade-off: predicates whose
// metadata leakage exceeds the budget are refused, bounding what a
// workload (or a curious consumer flooding the platform with probe
// workloads) can learn about the data population from matching alone.
type Node struct {
	store         BlobStore
	refs          map[crypto.Digest]DataRef
	LeakageBudget float64 // 0 = unlimited
}

// NewNode creates a storage node over the given blob store.
func NewNode(store BlobStore) *Node {
	return &Node{store: store, refs: make(map[crypto.Digest]DataRef)}
}

// Host ingests one encrypted item from a provider's vault: the provider
// pushes the ciphertext and the public reference. This is the Fig. 3
// "third-party storage" configuration; providers using their own
// hardware simply run their own Node.
func (n *Node) Host(ref DataRef, ciphertext []byte) error {
	if ref.ID.IsZero() {
		return fmt.Errorf("storage: zero data ID")
	}
	if err := n.store.Put(ref.ID, ciphertext); err != nil {
		return err
	}
	n.refs[ref.ID] = ref
	return nil
}

// HostFromVault copies one item's ciphertext from a vault's backing
// store into this node.
func (n *Node) HostFromVault(v *Vault, id crypto.Digest) error {
	ref, ok := v.index[id]
	if !ok {
		return fmt.Errorf("storage: vault has no item %s", id.Short())
	}
	ct, err := v.store.Get(id)
	if err != nil {
		return err
	}
	return n.Host(ref, ct)
}

// Refs returns all hosted references sorted by ID.
func (n *Node) Refs() []DataRef {
	out := make([]DataRef, 0, len(n.refs))
	for _, ref := range n.refs {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Hex() < out[j].ID.Hex() })
	return out
}

// ErrLeakageBudget is returned when a predicate reveals more metadata
// than the node permits.
type ErrLeakageBudget struct {
	Score  float64
	Budget float64
}

func (e *ErrLeakageBudget) Error() string {
	return fmt.Sprintf("storage: predicate leakage %.1f exceeds budget %.1f", e.Score, e.Budget)
}

// Match evaluates a workload predicate over the hosted metadata and
// returns matching references, enforcing the leakage budget.
func (n *Node) Match(pred semantic.Expr) ([]DataRef, error) {
	if n.LeakageBudget > 0 {
		if score := semantic.Analyze(pred).Score(); score > n.LeakageBudget {
			return nil, &ErrLeakageBudget{Score: score, Budget: n.LeakageBudget}
		}
	}
	var out []DataRef
	for _, ref := range n.Refs() {
		if pred.Eval(ref.Meta) {
			out = append(out, ref)
		}
	}
	return out, nil
}

// Release serves the ciphertext of one item to an executor presenting a
// valid grant. The node checks the grant's binding (grantee, workload,
// expiry, owner signature) and that the grant owner matches the
// registered data owner; it cannot and does not decrypt.
func (n *Node) Release(g *Grant, requester identity.Address, workloadID crypto.Digest, height uint64) ([]byte, error) {
	ref, ok := n.refs[g.DataID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, g.DataID.Short())
	}
	if err := g.Verify(workloadID, requester, height); err != nil {
		return nil, err
	}
	if ref.Owner != g.Owner {
		return nil, fmt.Errorf("storage: grant owner %s does not own data %s", g.Owner.Short(), g.DataID.Short())
	}
	return n.store.Get(g.DataID)
}
