package storage

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/semantic"
)

// DataRef is the public description of a stored dataset: everything the
// marketplace may see. The data itself stays encrypted in the vault.
type DataRef struct {
	ID    crypto.Digest     `json:"id"` // digest of the plaintext
	Owner identity.Address  `json:"owner"`
	Size  int64             `json:"size"`
	Meta  semantic.Metadata `json:"meta"`
}

// Vault is one provider's encrypted data store. Every item is encrypted
// under its own derived key, so access can be granted per item without
// exposing anything else in the vault.
type Vault struct {
	owner *identity.Identity
	store BlobStore
	root  []byte // vault master secret
	rng   *crypto.DRBG
	index map[crypto.Digest]DataRef
}

// NewVault creates a vault for owner on top of the given blob store.
func NewVault(owner *identity.Identity, store BlobStore, rng *crypto.DRBG) *Vault {
	return &Vault{
		owner: owner,
		store: store,
		root:  rng.Bytes(32),
		rng:   rng.Fork("vault"),
		index: make(map[crypto.Digest]DataRef),
	}
}

// Owner returns the vault owner's address.
func (v *Vault) Owner() identity.Address { return v.owner.Address() }

func (v *Vault) itemKey(id crypto.Digest) []byte {
	return crypto.DeriveKey(v.root, "item/"+id.Hex())
}

// Store encrypts and stores a dataset with its metadata, returning the
// public reference. The ID is the plaintext digest, so anyone holding
// the plaintext can verify it against the on-chain registration.
func (v *Vault) Store(data []byte, meta semantic.Metadata) (DataRef, error) {
	if len(data) == 0 {
		return DataRef{}, errors.New("storage: refusing to store empty dataset")
	}
	id := crypto.HashBytes(data)
	ct, err := encryptBlob(v.itemKey(id), data, v.rng)
	if err != nil {
		return DataRef{}, err
	}
	if err := v.store.Put(id, ct); err != nil {
		return DataRef{}, err
	}
	ref := DataRef{ID: id, Owner: v.owner.Address(), Size: int64(len(data)), Meta: meta}
	v.index[id] = ref
	return ref, nil
}

// Retrieve decrypts an item for the owner.
func (v *Vault) Retrieve(id crypto.Digest) ([]byte, error) {
	ct, err := v.store.Get(id)
	if err != nil {
		return nil, err
	}
	pt, err := decryptBlob(v.itemKey(id), ct)
	if err != nil {
		return nil, err
	}
	if crypto.HashBytes(pt) != id {
		return nil, errors.New("storage: content digest mismatch after decrypt")
	}
	return pt, nil
}

// Refs returns all references in the vault, sorted by ID for determinism.
func (v *Vault) Refs() []DataRef {
	out := make([]DataRef, 0, len(v.index))
	for _, ref := range v.index {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].ID.Hex() < out[j].ID.Hex()
	})
	return out
}

// Match returns the vault's references whose metadata satisfies the
// predicate — the storage-side half of workload discovery (§IV-C): the
// decision uses metadata only, never the data.
func (v *Vault) Match(pred semantic.Expr) []DataRef {
	var out []DataRef
	for _, ref := range v.Refs() {
		if pred.Eval(ref.Meta) {
			out = append(out, ref)
		}
	}
	return out
}

// Grant is a signed, workload-bound capability releasing one item's
// decryption key to one executor. In production the key would be wrapped
// for the grantee's public key; the simulation carries it in the clear
// inside the (authenticated) grant object.
type Grant struct {
	DataID     crypto.Digest    `json:"data_id"`
	WorkloadID crypto.Digest    `json:"workload_id"`
	Grantee    identity.Address `json:"grantee"`
	Expiry     uint64           `json:"expiry"` // ledger height
	Key        []byte           `json:"key"`
	Owner      identity.Address `json:"owner"`
	Pub        []byte           `json:"pub"`
	Sig        []byte           `json:"sig"`
}

func grantSigningBytes(g *Grant) []byte {
	buf := make([]byte, 0, 2*crypto.HashSize+2*identity.AddressSize+8+len(g.Key)+24)
	buf = append(buf, "pds2/grant/v1"...)
	buf = append(buf, g.DataID[:]...)
	buf = append(buf, g.WorkloadID[:]...)
	buf = append(buf, g.Grantee[:]...)
	buf = append(buf, g.Owner[:]...)
	buf = binary.BigEndian.AppendUint64(buf, g.Expiry)
	buf = append(buf, g.Key...)
	return buf
}

// Grant issues an access capability for one item to one executor for one
// workload.
func (v *Vault) Grant(id, workloadID crypto.Digest, grantee identity.Address, expiry uint64) (Grant, error) {
	if _, ok := v.index[id]; !ok {
		return Grant{}, fmt.Errorf("storage: no item %s in vault", id.Short())
	}
	g := Grant{
		DataID:     id,
		WorkloadID: workloadID,
		Grantee:    grantee,
		Expiry:     expiry,
		Key:        v.itemKey(id),
		Owner:      v.owner.Address(),
		Pub:        v.owner.PublicKey(),
	}
	g.Sig = v.owner.Sign(grantSigningBytes(&g))
	return g, nil
}

// Grant verification errors.
var (
	ErrGrantSignature = errors.New("storage: grant signature invalid")
	ErrGrantGrantee   = errors.New("storage: grant bound to a different executor")
	ErrGrantWorkload  = errors.New("storage: grant bound to a different workload")
	ErrGrantExpired   = errors.New("storage: grant expired")
)

// Verify checks the grant against the claimed executor, workload and
// ledger height.
func (g *Grant) Verify(workloadID crypto.Digest, grantee identity.Address, height uint64) error {
	if g.WorkloadID != workloadID {
		return ErrGrantWorkload
	}
	if g.Grantee != grantee {
		return ErrGrantGrantee
	}
	if height > g.Expiry {
		return ErrGrantExpired
	}
	if identity.AddressFromPub(g.Pub) != g.Owner {
		return ErrGrantSignature
	}
	if !identity.Verify(g.Pub, grantSigningBytes(g), g.Sig) {
		return ErrGrantSignature
	}
	return nil
}

// Open decrypts a ciphertext fetched from a blob store using the grant's
// key, verifying content integrity against the granted data ID.
func (g *Grant) Open(ciphertext []byte) ([]byte, error) {
	pt, err := decryptBlob(g.Key, ciphertext)
	if err != nil {
		return nil, err
	}
	if crypto.HashBytes(pt) != g.DataID {
		return nil, errors.New("storage: grant opened data with wrong digest")
	}
	return pt, nil
}

// encryptBlob seals data with AES-256-GCM under key.
func encryptBlob(key, data []byte, rng *crypto.DRBG) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("storage: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("storage: gcm: %w", err)
	}
	nonce := rng.Bytes(gcm.NonceSize())
	return gcm.Seal(nonce, nonce, data, nil), nil
}

// decryptBlob reverses encryptBlob.
func decryptBlob(key, blob []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("storage: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("storage: gcm: %w", err)
	}
	if len(blob) < gcm.NonceSize() {
		return nil, errors.New("storage: ciphertext too short")
	}
	nonce, ct := blob[:gcm.NonceSize()], blob[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, errors.New("storage: decryption failed (wrong key or tampered data)")
	}
	return pt, nil
}
