package storage

import (
	"bytes"
	"errors"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/semantic"
)

func testVault(t *testing.T, seed uint64) (*Vault, *identity.Identity) {
	t.Helper()
	rng := crypto.NewDRBGFromUint64(seed, "storage-test")
	owner := identity.New("owner", rng)
	return NewVault(owner, NewMemStore(), rng), owner
}

func sensorMeta(samples float64) semantic.Metadata {
	return semantic.Metadata{
		"category": semantic.String("sensor.temperature"),
		"samples":  semantic.Number(samples),
	}
}

func TestMemStoreCRUD(t *testing.T) {
	s := NewMemStore()
	k := crypto.HashString("k")
	if s.Has(k) {
		t.Fatal("empty store has key")
	}
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("get = %q, %v", got, err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if s.Has(k) {
		t.Fatal("deleted key present")
	}
	if err := s.Delete(k); err != nil {
		t.Fatal("idempotent delete failed")
	}
}

func TestMemStoreCopies(t *testing.T) {
	s := NewMemStore()
	k := crypto.HashString("k")
	val := []byte("abc")
	s.Put(k, val)
	val[0] = 'X'
	got, _ := s.Get(k)
	if got[0] != 'a' {
		t.Fatal("store aliases caller slice")
	}
	got[1] = 'Y'
	got2, _ := s.Get(k)
	if got2[1] != 'b' {
		t.Fatal("get aliases stored slice")
	}
}

func TestDirStoreCRUD(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := crypto.HashString("k")
	if err := s.Put(k, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if !s.Has(k) {
		t.Fatal("missing after put")
	}
	got, err := s.Get(k)
	if err != nil || !bytes.Equal(got, []byte("persisted")) {
		t.Fatalf("get = %q, %v", got, err)
	}
	if _, err := s.Get(crypto.HashString("other")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if s.Has(k) {
		t.Fatal("deleted key present")
	}
}

func TestVaultStoreRetrieve(t *testing.T) {
	v, _ := testVault(t, 1)
	data := []byte("temperature series")
	ref, err := v.Store(data, sensorMeta(100))
	if err != nil {
		t.Fatal(err)
	}
	if ref.ID != crypto.HashBytes(data) {
		t.Fatal("ID is not the plaintext digest")
	}
	if ref.Size != int64(len(data)) {
		t.Fatalf("size = %d", ref.Size)
	}
	got, err := v.Retrieve(ref.ID)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("retrieve = %q, %v", got, err)
	}
}

func TestVaultRejectsEmpty(t *testing.T) {
	v, _ := testVault(t, 2)
	if _, err := v.Store(nil, nil); err == nil {
		t.Fatal("empty dataset stored")
	}
}

func TestVaultEncryptsAtRest(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(3, "storage-test")
	owner := identity.New("owner", rng)
	backing := NewMemStore()
	v := NewVault(owner, backing, rng)
	data := []byte("very secret plaintext content")
	ref, _ := v.Store(data, nil)
	raw, _ := backing.Get(ref.ID)
	if bytes.Contains(raw, []byte("secret")) {
		t.Fatal("plaintext visible in backing store")
	}
}

func TestVaultMatch(t *testing.T) {
	v, _ := testVault(t, 4)
	v.Store([]byte("a"), sensorMeta(10))
	v.Store([]byte("b"), sensorMeta(500))
	v.Store([]byte("c"), semantic.Metadata{"category": semantic.String("gps.track")})

	pred := semantic.MustParse(`category isa "sensor" and samples >= 100`)
	refs := v.Match(pred)
	if len(refs) != 1 {
		t.Fatalf("matched %d refs", len(refs))
	}
	if refs[0].ID != crypto.HashBytes([]byte("b")) {
		t.Fatal("wrong ref matched")
	}
}

func TestGrantFlow(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(5, "storage-test")
	owner := identity.New("owner", rng)
	executor := identity.New("executor", rng)
	backing := NewMemStore()
	v := NewVault(owner, backing, rng)
	data := []byte("granted dataset")
	ref, _ := v.Store(data, sensorMeta(50))

	wid := crypto.HashString("workload")
	grant, err := v.Grant(ref.ID, wid, executor.Address(), 100)
	if err != nil {
		t.Fatal(err)
	}

	// The executor fetches the ciphertext from a storage node and opens.
	node := NewNode(NewMemStore())
	if err := node.HostFromVault(v, ref.ID); err != nil {
		t.Fatal(err)
	}
	ct, err := node.Release(&grant, executor.Address(), wid, 50)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := grant.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, data) {
		t.Fatalf("opened %q", pt)
	}
}

func TestGrantBindings(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(6, "storage-test")
	owner := identity.New("owner", rng)
	executor := identity.New("executor", rng)
	mallory := identity.New("mallory", rng)
	v := NewVault(owner, NewMemStore(), rng)
	ref, _ := v.Store([]byte("x"), nil)
	wid := crypto.HashString("w")
	grant, _ := v.Grant(ref.ID, wid, executor.Address(), 100)

	if err := grant.Verify(crypto.HashString("other"), executor.Address(), 1); !errors.Is(err, ErrGrantWorkload) {
		t.Fatalf("want ErrGrantWorkload, got %v", err)
	}
	if err := grant.Verify(wid, mallory.Address(), 1); !errors.Is(err, ErrGrantGrantee) {
		t.Fatalf("want ErrGrantGrantee, got %v", err)
	}
	if err := grant.Verify(wid, executor.Address(), 101); !errors.Is(err, ErrGrantExpired) {
		t.Fatalf("want ErrGrantExpired, got %v", err)
	}
	// Tampered key invalidates the signature.
	bad := grant
	bad.Key = append([]byte(nil), grant.Key...)
	bad.Key[0] ^= 1
	if err := bad.Verify(wid, executor.Address(), 1); !errors.Is(err, ErrGrantSignature) {
		t.Fatalf("want ErrGrantSignature, got %v", err)
	}
}

func TestGrantForMissingItem(t *testing.T) {
	v, _ := testVault(t, 7)
	if _, err := v.Grant(crypto.HashString("none"), crypto.HashString("w"), identity.ZeroAddress, 1); err == nil {
		t.Fatal("grant for missing item issued")
	}
}

func TestGrantOpenWrongKeyFails(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(8, "storage-test")
	owner := identity.New("owner", rng)
	executor := identity.New("executor", rng)
	backing := NewMemStore()
	v := NewVault(owner, backing, rng)
	refA, _ := v.Store([]byte("item a"), nil)
	refB, _ := v.Store([]byte("item b"), nil)
	wid := crypto.HashString("w")
	grantA, _ := v.Grant(refA.ID, wid, executor.Address(), 100)
	ctB, _ := backing.Get(refB.ID)
	if _, err := grantA.Open(ctB); err == nil {
		t.Fatal("grant for item A opened item B")
	}
}

func TestNodeMatchAndLeakageBudget(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(9, "storage-test")
	owner := identity.New("owner", rng)
	v := NewVault(owner, NewMemStore(), rng)
	r1, _ := v.Store([]byte("a"), sensorMeta(500))
	r2, _ := v.Store([]byte("b"), sensorMeta(5))

	node := NewNode(NewMemStore())
	node.HostFromVault(v, r1.ID)
	node.HostFromVault(v, r2.ID)

	refs, err := node.Match(semantic.MustParse(`samples >= 100`))
	if err != nil || len(refs) != 1 {
		t.Fatalf("match: %d refs, %v", len(refs), err)
	}

	node.LeakageBudget = 2.5
	// A range query (weight 2) passes; an exact probe (weight 3) fails.
	if _, err := node.Match(semantic.MustParse(`samples >= 100`)); err != nil {
		t.Fatalf("range query refused: %v", err)
	}
	_, err = node.Match(semantic.MustParse(`samples == 500`))
	var lb *ErrLeakageBudget
	if !errors.As(err, &lb) {
		t.Fatalf("want ErrLeakageBudget, got %v", err)
	}
}

func TestNodeReleaseChecksOwner(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(10, "storage-test")
	owner := identity.New("owner", rng)
	executor := identity.New("executor", rng)
	mallory := identity.New("mallory", rng)

	v := NewVault(owner, NewMemStore(), rng)
	ref, _ := v.Store([]byte("data"), nil)
	node := NewNode(NewMemStore())
	node.HostFromVault(v, ref.ID)

	// Mallory runs her own vault and forges a "grant" over the same data
	// ID; the node must reject it because she does not own the data.
	mv := NewVault(mallory, NewMemStore(), rng)
	mref, _ := mv.Store([]byte("data"), nil) // same content, same ID
	wid := crypto.HashString("w")
	forged, _ := mv.Grant(mref.ID, wid, executor.Address(), 100)
	if _, err := node.Release(&forged, executor.Address(), wid, 1); err == nil {
		t.Fatal("node released data against a non-owner grant")
	}
}

func TestNodeReleaseUnknownData(t *testing.T) {
	node := NewNode(NewMemStore())
	g := &Grant{DataID: crypto.HashString("missing")}
	if _, err := node.Release(g, identity.ZeroAddress, crypto.HashString("w"), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}
