package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/policy"
)

// E18Policy measures what the usage-control engine costs: the raw
// per-decision evaluation time at each enforcement layer, and the
// dataset-import throughput tax of having policies bound in the
// registry — the paper's premise is that owner-declared usage policies
// are enforceable without making the marketplace's hot paths (data
// import foremost) meaningfully slower.
func E18Policy(quick bool) Table {
	t := Table{
		ID:         "E18",
		Title:      "Usage-control enforcement overhead",
		PaperClaim: "§II-C/§III: owners attach usage policies to their data and the platform enforces them at matching, admission and inside the enclave; enforcement must not tax the data-import path",
		Columns:    []string{"datasets", "import/s plain", "import/s policy-bound", "tax %", "match ns", "admission ns", "enclave ns"},
	}

	sizes := []int{10, 100, 1_000, 10_000}
	if quick {
		sizes = []int{10, 100}
	}

	// Per-layer evaluation cost is state-independent (one policy, one
	// request), so measure it once over a representative policy carrying
	// every clause.
	pol := &policy.Policy{
		AllowedClasses: []string{"train", "stats"},
		MinAggregation: 2,
		ExpiryHeight:   1 << 30,
		Purposes:       []string{"research", "audit"},
		MaxInvocations: 1 << 20,
	}
	layerNS := func(layer string, agg uint64) float64 {
		const iters = 200_000
		req := policy.Request{
			Layer: layer, Class: "train", Purpose: "research",
			Aggregation: agg, Height: 100, Invocations: 3,
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if d := policy.Evaluate(pol, req); !d.Allowed {
				panic("E18: representative request denied: " + d.Code)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	matchNS := layerNS(policy.LayerMatch, 2)
	admissionNS := layerNS(policy.LayerAdmission, 4)
	enclaveNS := layerNS(policy.LayerEnclave, 4)

	// The two arms run interleaved in pairs and the reported tax is the
	// median of the per-pair taxes: wall-clock rates on shared hardware
	// drift by far more than the effect under measurement, and pairing
	// cancels the drift while the median sheds GC outliers.
	reps := 5
	if quick {
		reps = 3
	}
	for _, n := range sizes {
		var taxes, plains, bounds []float64
		fail := ""
		for rep := 0; rep < reps; rep++ {
			plain, err := importRate(n, false)
			if err != nil {
				fail = err.Error()
				break
			}
			bound, err := importRate(n, true)
			if err != nil {
				fail = err.Error()
				break
			}
			plains = append(plains, plain)
			bounds = append(bounds, bound)
			taxes = append(taxes, (plain-bound)/plain*100)
		}
		if fail != "" {
			t.AddRow(n, "ERROR", fail, "", "", "", "")
			continue
		}
		t.AddRow(n, median(plains), median(bounds),
			fmt.Sprintf("%.2f", median(taxes)), matchNS, admissionNS, enclaveNS)
	}
	t.Notes = append(t.Notes,
		"import/s: registerData transactions committed per second into a registry already holding <datasets> entries (plain: none carry policies; policy-bound: all do)",
		"the plain arm pads to equal transaction counts and comparable stored state (a policy is one storage key, a registration about three); the tax isolates the enforcement engine, not generic storage growth",
		"tax %: median of per-pair relative import-throughput loss; the gate in scripts/bench_compare.sh holds the API-path equivalent under 2%",
		"per-layer ns: one policy.Evaluate over a policy carrying every clause (class, purpose, aggregation floor, expiry, invocation cap)")
	return t
}

// median returns the middle value of xs (mean of the middle two for
// even lengths). xs must be non-empty; it is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

// importRate builds a market whose registry already holds n datasets
// (with a policy bound on each when withPolicies is set), then measures
// the committed-transaction rate of importing up to 2000 further
// datasets in sealed batches.
func importRate(n int, withPolicies bool) (float64, error) {
	owner := identity.New("e18-owner", crypto.NewDRBGFromUint64(18, "experiments/policy"))
	m, err := market.New(market.Config{
		Seed:         18,
		GenesisAlloc: map[identity.Address]uint64{owner.Address(): 1 << 62},
	})
	if err != nil {
		return 0, err
	}
	pol := &policy.Policy{AllowedClasses: []string{"train"}, MinAggregation: 2}
	dataID := func(kind string, i int) crypto.Digest {
		return crypto.HashString(fmt.Sprintf("e18/%s/%d", kind, i))
	}
	meta := crypto.HashString("e18/meta")

	// Pre-state: n registered datasets, policy-bound or not. The plain
	// arm pads to the same transaction count and to comparable stored
	// state — the chain recomputes the state root over every key at each
	// seal, so un-padded, the policy-bound arm's extra storage would read
	// as import tax when it is really generic state-size cost any stored
	// bytes incur. A setPolicy writes one key (policy/<id>); a dataset
	// registration writes about three (ownership, metadata, deed), so the
	// padding is one shadow registration per three datasets and plain
	// transfers for the rest.
	const batch = 500
	sink := identity.New("e18-sink", crypto.NewDRBGFromUint64(19, "experiments/policy"))
	flush := func(pending int) error {
		if pending == 0 {
			return nil
		}
		_, err := m.SealBlock()
		return err
	}
	pending := 0
	for i := 0; i < n; i++ {
		if err := m.Submit(m.SignedTx(owner, m.Registry, 0, market.RegisterDataData(dataID("pre", i), meta))); err != nil {
			return 0, err
		}
		var second *ledger.Transaction
		switch {
		case withPolicies:
			second = m.SignedTx(owner, m.Registry, 0, market.SetPolicyData(dataID("pre", i), pol))
		case i%3 == 0:
			second = m.SignedTx(owner, m.Registry, 0, market.RegisterDataData(dataID("pad", i), meta))
		default:
			second = m.SignedTx(owner, sink.Address(), 1, nil)
		}
		if err := m.Submit(second); err != nil {
			return 0, err
		}
		if pending += 2; pending >= batch {
			if err := flush(pending); err != nil {
				return 0, err
			}
			pending = 0
		}
	}
	if err := flush(pending); err != nil {
		return 0, err
	}

	// Measured phase: import fresh datasets in sealed batches. A GC
	// cycle first, so garbage from building the pre-state is not
	// collected on the measured clock.
	imports := n
	if imports > 2000 {
		imports = 2000
	}
	runtime.GC()
	start := time.Now()
	pending = 0
	for i := 0; i < imports; i++ {
		if err := m.Submit(m.SignedTx(owner, m.Registry, 0, market.RegisterDataData(dataID("import", i), meta))); err != nil {
			return 0, err
		}
		if pending++; pending >= batch {
			if err := flush(pending); err != nil {
				return 0, err
			}
			pending = 0
		}
	}
	if err := flush(pending); err != nil {
		return 0, err
	}
	return float64(imports) / time.Since(start).Seconds(), nil
}
