package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at quick size and checks
// structural sanity: rows present, no ERROR cells, rendering works.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run(true)
			if table.ID != e.ID {
				t.Fatalf("table ID %q != %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Fatalf("row width %d != %d columns: %v", len(row), len(table.Columns), row)
				}
				for _, cell := range row {
					if strings.Contains(cell, "ERROR") {
						t.Fatalf("experiment reported error row: %v", row)
					}
				}
			}
			out := table.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, table.Columns[0]) {
				t.Fatalf("rendering broken:\n%s", out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

// TestE10AllAttacksRejected checks the authenticity experiment's core
// promise in detail.
func TestE10AllAttacksRejected(t *testing.T) {
	table := E10Authenticity(true)
	for _, row := range table.Rows {
		switch {
		case row[0] == "honest":
			if row[3] != "0" {
				t.Fatalf("honest readings rejected: %v", row)
			}
		case strings.HasPrefix(row[0], "throughput"):
		default:
			if row[2] != "0" {
				t.Fatalf("attack accepted: %v", row)
			}
		}
	}
}

// TestE14AllDetected checks that every injected attack was caught.
func TestE14AllDetected(t *testing.T) {
	table := E14Tamper(true)
	if len(table.Rows) != 4 {
		t.Fatalf("expected 4 attacks, got %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("attack not detected: %v", row)
		}
	}
}

// TestE9Monotone checks the price/accuracy curve shape.
func TestE9Monotone(t *testing.T) {
	table := E9Pricing(true)
	var prev float64 = -1
	for _, row := range table.Rows {
		var acc float64
		if _, err := fmt.Sscan(row[2], &acc); err != nil {
			t.Fatalf("bad accuracy cell %q", row[2])
		}
		if acc+0.02 < prev { // allow small noise wiggle
			t.Fatalf("accuracy decreased along the curve: %v", table.Rows)
		}
		if acc > prev {
			prev = acc
		}
	}
}
