package experiments

import (
	"fmt"
	"runtime"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// A5BlockPipeline ablates the governance layer's block-import pipeline:
// the double-execution replica path (audit-verify, then re-execute on
// import — the pre-optimization behavior) against single-execution
// import, and the stateless signature-verification phase at increasing
// worker counts. The table is the governance-throughput counterpart of
// E2: it isolates how fast a replica can absorb blocks produced
// elsewhere, which bounds how heavy workload-lifecycle traffic the
// marketplace can replicate.
func A5BlockPipeline(quick bool) Table {
	t := Table{
		ID:         "A5",
		Title:      "Ablation: block import pipeline (execution count × stateless workers)",
		PaperClaim: "§III-A: the governance chain must absorb every lifecycle transaction; import cost bounds replica throughput",
		Columns:    []string{"pipeline", "workers", "txs/block", "blocks", "tx/s", "speedup"},
	}
	txPerBlock, blocks := 1_000, 8
	if quick {
		txPerBlock, blocks = 200, 3
	}

	produced, cfg, err := producePipelineBlocks(txPerBlock, blocks)
	if err != nil {
		t.AddRow("setup", "ERR", err.Error(), "", "", "")
		return t
	}

	type mode struct {
		name    string
		workers int
		audit   bool // verify first, then import: executes txs twice
	}
	modes := []mode{
		{"verify+import (double-exec)", 1, true},
		{"import (single-exec)", 1, false},
		{"import (single-exec)", 2, false},
		{"import (single-exec)", 0, false}, // 0 = GOMAXPROCS
	}
	var baseline float64
	for _, md := range modes {
		mcfg := cfg
		mcfg.StatelessWorkers = md.workers
		replica, err := ledger.NewChain(mcfg)
		if err != nil {
			t.AddRow(md.name, md.workers, "ERR", err.Error(), "", "")
			continue
		}
		start := time.Now()
		for _, b := range produced {
			if md.audit {
				if err := replica.VerifyBlock(b); err != nil {
					t.AddRow(md.name, md.workers, "ERR", err.Error(), "", "")
					return t
				}
			}
			if err := replica.ImportBlock(b); err != nil {
				t.AddRow(md.name, md.workers, "ERR", err.Error(), "", "")
				return t
			}
		}
		elapsed := time.Since(start).Seconds()
		tps := float64(txPerBlock*blocks) / elapsed
		if baseline == 0 {
			baseline = tps
		}
		workers := md.workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		t.AddRow(md.name, workers, txPerBlock, blocks,
			fmt.Sprintf("%.0f", tps), fmt.Sprintf("%.2fx", tps/baseline))
	}
	t.Notes = append(t.Notes,
		"double-exec replays the pre-optimization replica path: audit-verify on a snapshot, revert, re-execute on import",
		"speedup is relative to the double-exec single-worker baseline")
	return t
}

// producePipelineBlocks builds a producer chain and seals `blocks`
// transfer-only blocks of txPerBlock transactions each, returning them
// with the replica config that validates them.
func producePipelineBlocks(txPerBlock, blocks int) ([]*ledger.Block, ledger.ChainConfig, error) {
	rng := crypto.NewDRBGFromUint64(44, "a4")
	authority := identity.New("auth", rng.Fork("auth"))
	users := make([]*identity.Identity, 50)
	alloc := map[identity.Address]uint64{}
	for i := range users {
		users[i] = identity.New("u", rng.Fork(fmt.Sprintf("u%d", i)))
		alloc[users[i].Address()] = 1 << 40
	}
	cfg := ledger.ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: alloc,
	}
	producer, err := ledger.NewChain(cfg)
	if err != nil {
		return nil, cfg, err
	}
	nonces := make([]uint64, len(users))
	out := make([]*ledger.Block, 0, blocks)
	for h := 1; h <= blocks; h++ {
		txs := make([]*ledger.Transaction, txPerBlock)
		for j := range txs {
			u := j % len(users)
			txs[j] = ledger.SignTx(users[u], users[(u+1)%len(users)].Address(), 1, nonces[u], 50_000, nil)
			nonces[u]++
		}
		b, err := producer.ProposeBlock(authority, uint64(h), txs)
		if err != nil {
			return nil, cfg, err
		}
		out = append(out, b)
	}
	return out, cfg, nil
}

func init() {
	All = append(All,
		Experiment{"A5", "ablation: block import pipeline", A5BlockPipeline},
	)
}
