package experiments

import (
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/ml"
	"pds2/internal/semantic"
	"pds2/internal/storage"
)

// A4Poisoning measures the aggregation-rule choice §II-F leaves to the
// consumer: a malicious executor feeds a flipped, blown-up local model
// into the aggregation. All executors aggregate the same inputs, so the
// result hashes agree and the E14 consistency check cannot fire — only
// a robust rule protects the result.
func A4Poisoning(quick bool) Table {
	t := Table{
		ID:         "A4",
		Title:      "Ablation: aggregation rule under a poisoned local model",
		PaperClaim: "§II-F: consumers direct executors to use one of several decentralized aggregation mechanisms; robustness is one reason to choose",
		Columns:    []string{"aggregation", "poisoned-executors", "state", "final-accuracy"},
	}
	for _, agg := range []string{"mean", "median"} {
		for _, poisoned := range []int{0, 1} {
			st, acc, err := runPoisonedWorkload(agg, poisoned, quick)
			if err != nil {
				t.AddRow(agg, poisoned, "ERROR", err.Error())
				continue
			}
			t.AddRow(agg, poisoned, st.String(), acc)
		}
	}
	t.Notes = append(t.Notes,
		"1 of 3 executors poisons its local model (sign-flipped, scaled 1e6)",
		"state stays complete in all cases: the attack is invisible to result-consistency, which is exactly why the median matters")
	return t
}

func runPoisonedWorkload(aggregation string, poisoned int, quick bool) (market.WorkloadState, float64, error) {
	const nProviders, nExecutors = 3, 3
	samples := 300
	if quick {
		samples = 150
	}
	rng := crypto.NewDRBGFromUint64(44, "a4")
	ids := make([]*identity.Identity, 0, nProviders+nExecutors+1)
	alloc := map[identity.Address]uint64{}
	for i := 0; i < nProviders+nExecutors+1; i++ {
		id := identity.New("a", rng.Fork("id"))
		ids = append(ids, id)
		alloc[id.Address()] = 1_000_000
	}
	m, err := market.New(market.Config{Seed: 44, GenesisAlloc: alloc})
	if err != nil {
		return 0, 0, err
	}
	node := storage.NewNode(storage.NewMemStore())
	consumer, err := market.NewConsumer(m, ids[0])
	if err != nil {
		return 0, 0, err
	}
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: samples * nProviders, Dim: 8, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.25, rng)
	parts := train.PartitionIID(nProviders, rng)

	providers := make([]*market.Provider, nProviders)
	for i := range providers {
		providers[i], err = market.NewProvider(m, ids[1+i], node)
		if err != nil {
			return 0, 0, err
		}
		if _, err := providers[i].AddDataset(parts[i], semantic.Metadata{
			"category": semantic.String("sensor.x"),
			"samples":  semantic.Number(float64(parts[i].Len())),
		}); err != nil {
			return 0, 0, err
		}
	}
	executors := make([]*market.Executor, nExecutors)
	for i := range executors {
		executors[i], err = market.NewExecutor(m, ids[1+nProviders+i], node)
		if err != nil {
			return 0, 0, err
		}
		executors[i].PoisonLocal = i < poisoned
	}

	params := market.TrainerParams{Dim: 8, Epochs: 2, Lambda: 1e-3, Aggregation: aggregation}
	spec := &market.Spec{
		Predicate:      `category isa "sensor"`,
		MinProviders:   nProviders,
		MinItems:       nProviders,
		ExpiryHeight:   m.Height() + 10_000,
		ExecutorFeeBps: 1_000,
		Measurement:    market.TrainerMeasurement(params.Encode()),
		QAPub:          m.QA.PublicKey(),
		Params:         params.Encode(),
	}
	addr, err := consumer.SubmitWorkload(spec, 30_000)
	if err != nil {
		return 0, 0, err
	}
	for i, p := range providers {
		refs, err := p.EligibleData(spec)
		if err != nil {
			return 0, 0, err
		}
		auths, err := p.Authorize(addr, executors[i].ID.Address(), refs, spec.ExpiryHeight)
		if err != nil {
			return 0, 0, err
		}
		executors[i].Accept(addr, auths)
	}
	for _, e := range executors {
		if err := e.Register(addr); err != nil {
			return 0, 0, err
		}
	}
	if err := consumer.Start(addr); err != nil {
		return 0, 0, err
	}
	payload, err := market.RunWorkloadExecution(addr, executors)
	if err != nil {
		return 0, 0, err
	}
	if err := consumer.Finalize(addr); err != nil {
		return 0, 0, err
	}
	st, err := m.WorkloadStateOf(addr)
	if err != nil {
		return 0, 0, err
	}
	model, _, err := market.DecodeResultModel(payload, params.Lambda)
	if err != nil {
		return 0, 0, err
	}
	return st, ml.Accuracy(model, test), nil
}

func init() {
	All = append(All, Experiment{"A4", "ablation: aggregation rule under poisoning", A4Poisoning})
}
