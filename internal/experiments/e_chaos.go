package experiments

import (
	"fmt"
	"sort"
	"strings"

	"pds2/internal/faults"
)

// E15Chaos runs the full workload lifecycle — register, submit, match,
// seal, settle — over the HTTP API under every shipped fault schedule
// and records whether it converged. This is the resilience counterpart
// to E1: the paper's marketplace must tolerate the unreliable,
// adversarial networks its decentralized deployment implies, and here
// the dropped requests, torn responses, injected 5xx storms, connection
// resets, slow links and skewed sealer clocks are all absorbed by the
// client's retry engine and the idempotent submission path.
func E15Chaos(quick bool) Table {
	t := Table{
		ID:    "E15",
		Title: "lifecycle convergence under injected faults",
		PaperClaim: "the decentralized marketplace completes workloads despite " +
			"unreliable peers and networks; no retry double-spends a nonce",
		Columns: []string{"schedule", "converged", "ops", "injected", "fault mix", "height", "consumer txs"},
	}
	const seed = 1
	schedules := faults.AllSchedules(seed)
	if quick {
		schedules = []faults.Schedule{
			faults.Baseline(seed),
			faults.FlakyServer(seed),
			faults.Everything(seed),
		}
	}
	for _, sched := range schedules {
		rep, err := faults.RunChaosLifecycle(faults.ChaosConfig{Seed: seed, Schedule: sched})
		if err != nil {
			t.AddRow(sched.Name, "NO: "+err.Error(), "-", "-", "-", "-", "-")
			continue
		}
		var total uint64
		kinds := make([]string, 0, len(rep.Injected))
		for k, v := range rep.Injected {
			total += v
			kinds = append(kinds, fmt.Sprintf("%s:%d", k, v))
		}
		sort.Strings(kinds)
		mix := strings.Join(kinds, " ")
		if mix == "" {
			mix = "-"
		}
		t.AddRow(sched.Name, "yes", rep.Ops, total, mix, rep.Height, rep.ConsumerTxs)
	}
	t.Notes = append(t.Notes,
		"each run drives register/submit/match/seal/settle through a fault-injected HTTP client and server with a fixed seed",
		"convergence requires the workload to complete with a result on chain and the consumer nonce to equal logical txs sent")
	return t
}
