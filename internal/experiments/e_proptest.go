package experiments

import (
	"pds2/internal/faults"
	"pds2/internal/proptest"
)

// E16Proptest soaks the property-based invariant harness: seed-driven
// randomized marketplace histories (transfers, token ops, forced
// reverts, workload lifecycles, mempool churn) audited against the
// global invariants after every sealed block, with each generated chain
// re-validated through the three-way differential replay oracle
// (import / verify-audit / export-replay). §II-E's trustless audit
// claim is only as good as a replica's ability to re-derive the exact
// same state — this experiment measures that agreement continuously
// rather than on one hand-written trace.
func E16Proptest(quick bool) Table {
	t := Table{
		ID:    "E16",
		Title: "property-based invariant soak with differential replay",
		PaperClaim: "all actions are automatically audited in a trustless decentralized " +
			"fashion: any replica replaying the chain reaches an identical state",
		Columns: []string{"seed", "faults", "ops", "blocks", "txs", "violations", "replay agreement"},
	}
	ops := 400
	seeds := []uint64{1, 2, 3, 4, 5}
	if quick {
		ops = 60
		seeds = []uint64{1, 2}
	}
	run := func(seed uint64, sched *faults.Schedule, label string) {
		cfg := proptest.Config{Seed: seed, Ops: ops, Schedule: sched}
		res, err := proptest.Run(cfg, proptest.Plan(cfg))
		if err != nil {
			t.AddRow(seed, label, ops, "-", "-", "setup: "+err.Error(), "-")
			return
		}
		var txs int
		for _, b := range res.History.Blocks {
			txs += b.Txs
		}
		agreement := "yes"
		if data, err := proptest.ExportMarket(res.Market); err != nil {
			agreement = "export: " + err.Error()
		} else if err := proptest.DifferentialCheck(proptest.RunReplayModes(data), res.Market); err != nil {
			agreement = "NO: " + err.Error()
		}
		t.AddRow(seed, label, ops, len(res.History.Blocks), txs, len(res.History.Violations), agreement)
	}
	for _, seed := range seeds {
		run(seed, nil, "none")
	}
	// One seed additionally churns under the kitchen-sink fault schedule.
	sched := faults.Everything(seeds[0])
	run(seeds[0], &sched, sched.Name)
	t.Notes = append(t.Notes,
		"violations counts broken global invariants (supply conservation, nonce accounting, gas bounds, journal hygiene, receipt/event consistency, state-root determinism); the expected value is 0",
		"replay agreement requires live chain, fresh import, read-only verify-audit and export-replay to converge on the same height and state root")
	return t
}
