package experiments

import (
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/oblivious"
	"pds2/internal/simnet"
	"pds2/internal/tee"
)

// backendLink is the provider↔executor link model used by E3–E5:
// a 20 ms wide-area latency at 100 Mbit/s.
var backendLink = oblivious.Link{
	Latency:   20 * simnet.Millisecond,
	Bandwidth: 100 << 20 / 8,
}

// randomWorkload builds a dim-feature linear workload over n rows.
func randomWorkload(dim, n int, seed uint64) (w []float64, X [][]float64) {
	rng := crypto.NewDRBGFromUint64(seed, "workload")
	w = make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	X = make([][]float64, n)
	for i := range X {
		X[i] = make([]float64, dim)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
	}
	return w, X
}

// E3HEOverhead measures homomorphic encryption against the plain
// baseline on linear inference across data scales.
func E3HEOverhead(quick bool) Table {
	t := Table{
		ID:         "E3",
		Title:      "Homomorphic encryption overhead on linear inference",
		PaperClaim: "§III-B: HE introduces \"large overheads in the computation … impractical for most applications, particularly … massive amount of data as for the case of IoT\"",
		Columns:    []string{"dim", "rows", "keybits", "plain-cpu", "he-cpu", "overhead-x", "he-bytes"},
	}
	keyBits := 1024
	type cfg struct{ dim, rows int }
	cfgs := []cfg{{16, 50}, {64, 50}, {256, 50}, {64, 200}}
	if quick {
		keyBits = 512
		cfgs = []cfg{{16, 10}, {64, 10}}
	}
	plain := oblivious.Plain{}
	heb, err := oblivious.NewHE(keyBits, 42, backendLink)
	if err != nil {
		t.Notes = append(t.Notes, "HE setup failed: "+err.Error())
		return t
	}
	for i, c := range cfgs {
		w, X := randomWorkload(c.dim, c.rows, uint64(i))
		_, pc, err := plain.LinearPredict(w, 0, X)
		if err != nil {
			t.AddRow(c.dim, c.rows, keyBits, "ERROR", err.Error(), "", "")
			continue
		}
		_, hc, err := heb.LinearPredict(w, 0, X)
		if err != nil {
			t.AddRow(c.dim, c.rows, keyBits, "ERROR", err.Error(), "", "")
			continue
		}
		ratio := float64(hc.CPU) / float64(pc.CPU+1)
		t.AddRow(c.dim, c.rows, keyBits, pc.CPU, hc.CPU, fmt.Sprintf("%.0fx", ratio), hc.CommBytes)
	}
	t.Notes = append(t.Notes, "overhead-x is CPU-time ratio HE/plain; real Paillier arithmetic, no synthetic slowdown")
	return t
}

// E4SMC measures secret-sharing MPC against HE and plain, varying the
// inter-party latency — the communication-bound regime the paper warns
// about.
func E4SMC(quick bool) Table {
	t := Table{
		ID:         "E4",
		Title:      "SMC cost vs HE and plain under varying latency",
		PaperClaim: "§III-B: SMC techniques \"reduce the overhead in comparison to homomorphic encryption\" but \"delays introduced during communication make it difficult … for applications that use many operations\"",
		Columns:    []string{"latency", "backend", "cpu", "rounds", "comm-bytes", "virtual-total"},
	}
	dim, rows := 64, 50
	keyBits := 1024
	if quick {
		dim, rows, keyBits = 32, 10, 512
	}
	w, X := randomWorkload(dim, rows, 7)
	latencies := []simnet.Time{simnet.Millisecond, 10 * simnet.Millisecond, 100 * simnet.Millisecond}
	for _, lat := range latencies {
		link := oblivious.Link{Latency: lat, Bandwidth: backendLink.Bandwidth}
		heb, err := oblivious.NewHE(keyBits, 42, link)
		if err != nil {
			t.Notes = append(t.Notes, "HE setup failed: "+err.Error())
			return t
		}
		backends := []oblivious.Backend{oblivious.Plain{}, oblivious.NewSMC(3, 42, link), heb}
		for _, b := range backends {
			_, c, err := b.LinearPredict(w, 0, X)
			if err != nil {
				t.AddRow(lat, b.Name(), "ERROR", err.Error(), "", "")
				continue
			}
			t.AddRow(lat, b.Name(), c.CPU, c.CommRounds, c.CommBytes, c.Virtual)
		}
	}
	t.Notes = append(t.Notes,
		"SMC compute is cheap (61-bit field ops) but every multiplication batch pays a round",
		"virtual-total = modelled compute + communication time")
	return t
}

// E5TEE compares all four backends across model sizes and ablates the
// EPC paging model.
func E5TEE(quick bool) Table {
	t := Table{
		ID:         "E5",
		Title:      "TEE vs crypto backends across workload size",
		PaperClaim: "§III-B: TEEs \"introduce smaller overheads compared to homomorphic encryption\" and \"exhibited better scalability\" [15]; the chosen building block",
		Columns:    []string{"dim", "rows", "backend", "cpu", "virtual-total", "comm-bytes"},
	}
	type cfg struct{ dim, rows int }
	cfgs := []cfg{{64, 100}, {1024, 100}, {4096, 100}}
	keyBits := 1024
	if quick {
		cfgs = []cfg{{64, 20}, {512, 20}}
		keyBits = 512
	}
	rng := crypto.NewDRBGFromUint64(5, "e5")
	qa := tee.NewQuotingAuthority(rng)
	platform := tee.NewPlatform(qa, tee.DefaultCostModel(), rng)
	heb, err := oblivious.NewHE(keyBits, 42, backendLink)
	if err != nil {
		t.Notes = append(t.Notes, "HE setup failed: "+err.Error())
		return t
	}
	backends := []oblivious.Backend{
		oblivious.Plain{},
		oblivious.NewTEE(platform, backendLink),
		oblivious.NewSMC(3, 42, backendLink),
		heb,
	}
	for i, c := range cfgs {
		w, X := randomWorkload(c.dim, c.rows, uint64(20+i))
		heRows := c.rows
		if c.dim >= 1024 {
			heRows = 10 // full HE at dim 4096 takes minutes; scale and note
		}
		for _, b := range backends {
			rows := c.rows
			Xb := X
			if b.Name() == "he" && heRows != c.rows {
				rows = heRows
				Xb = X[:heRows]
			}
			_, cost, err := b.LinearPredict(w, 0, Xb)
			if err != nil {
				t.AddRow(c.dim, rows, b.Name(), "ERROR", err.Error(), "")
				continue
			}
			label := b.Name()
			if rows != c.rows {
				label += fmt.Sprintf(" (%d rows)", rows)
			}
			t.AddRow(c.dim, rows, label, cost.CPU, cost.Virtual, cost.CommBytes)
		}
	}

	// EPC paging ablation: the modelled enclave slowdown factor as the
	// working set outgrows the 92 MiB EPC (the [15] scalability cliff).
	cm := tee.DefaultCostModel()
	for _, ws := range []int64{1 << 20, cm.EPCBytes, 2 * cm.EPCBytes, 4 * cm.EPCBytes, 100 * cm.EPCBytes} {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"EPC ablation: working set %4d MiB → slowdown factor %.2fx",
			ws>>20, cm.OverheadFactor(ws)))
	}
	t.Notes = append(t.Notes,
		"TEE virtual time = native compute × EPC overhead model + enclave create/ecall costs",
		"expected ordering of compute cost: plain < tee < smc << he")
	return t
}
