package experiments

import (
	"fmt"
	"math"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/ml"
	"pds2/internal/reward"
)

// E8Shapley reproduces the §IV-A cost analysis: exact Shapley blows up
// exponentially; truncated Monte Carlo approximates it with orders of
// magnitude fewer model trainings.
func E8Shapley(quick bool) Table {
	t := Table{
		ID:         "E8",
		Title:      "Shapley reward schemes: exact blow-up and TMC approximation",
		PaperClaim: "§IV-A: \"the complexity of calculating the Shapley value is exponential, and thus it is unfeasible to use it as is\"; TMC-style approximation [30] is the proposed remedy",
		Columns:    []string{"method", "providers", "evaluations", "wall", "max-err-vs-exact"},
	}
	// Part 1: exact cost blow-up on a real data-valuation game.
	sizes := []int{4, 8, 12, 16}
	if quick {
		sizes = []int{4, 8, 10}
	}
	rng := crypto.NewDRBGFromUint64(8, "e8")
	maxN := sizes[len(sizes)-1]
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 60 * maxN, Dim: 6, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.3, rng)

	for _, n := range sizes {
		parts := train.PartitionIID(n, rng.Fork(fmt.Sprintf("parts-%d", n)))
		fn := reward.DataValueFn(parts, test, func() ml.Model { return ml.NewLogisticModel(6, 1e-3) }, 1)
		start := time.Now()
		_, evals, err := reward.ExactShapley(n, fn)
		if err != nil {
			t.AddRow("exact", n, "ERROR", err.Error(), "")
			continue
		}
		t.AddRow("exact", n, evals, time.Since(start).Round(time.Millisecond), "0")
	}

	// Part 2: approximation quality at a size where exact is still
	// computable, then TMC at a size where it is not.
	n := 12
	if quick {
		n = 10
	}
	parts := train.PartitionIID(n, rng.Fork("approx-parts"))
	fn := reward.DataValueFn(parts, test, func() ml.Model { return ml.NewLogisticModel(6, 1e-3) }, 1)
	exact, _, err := reward.ExactShapley(n, fn)
	if err != nil {
		t.Notes = append(t.Notes, "exact reference failed: "+err.Error())
		return t
	}
	samples := 200
	if quick {
		samples = 60
	}
	for _, m := range []struct {
		name string
		run  func() ([]float64, int, error)
	}{
		{"monte-carlo", func() ([]float64, int, error) {
			return reward.MonteCarloShapley(n, fn, samples, rng.Fork("mc"))
		}},
		{"tmc(tol=0.02)", func() ([]float64, int, error) {
			return reward.TMCShapley(n, fn, samples, 0.02, rng.Fork("tmc"))
		}},
		{"leave-one-out", func() ([]float64, int, error) {
			return reward.LeaveOneOut(n, fn)
		}},
	} {
		start := time.Now()
		approx, evals, err := m.run()
		if err != nil {
			t.AddRow(m.name, n, "ERROR", err.Error(), "")
			continue
		}
		var maxErr float64
		for i := range exact {
			if e := math.Abs(approx[i] - exact[i]); e > maxErr {
				maxErr = e
			}
		}
		t.AddRow(m.name, n, evals, time.Since(start).Round(time.Millisecond), maxErr)
	}

	// Part 3: TMC at marketplace scale (exact infeasible).
	big := 64
	if quick {
		big = 24
	}
	bigParts := train.PartitionIID(big, rng.Fork("big-parts"))
	bigFn := reward.DataValueFn(bigParts, test, func() ml.Model { return ml.NewLogisticModel(6, 1e-3) }, 1)
	start := time.Now()
	_, evals, err := reward.TMCShapley(big, bigFn, samples/2, 0.02, rng.Fork("tmc-big"))
	if err == nil {
		t.AddRow("tmc(tol=0.02)", big, evals, time.Since(start).Round(time.Millisecond),
			fmt.Sprintf("n/a (exact needs 2^%d evals)", big))
	}
	t.Notes = append(t.Notes,
		"evaluations = distinct coalition model trainings (memoized)",
		"every evaluation trains a logistic model on the coalition's data union")
	return t
}

// E9Pricing reproduces the model-based pricing curve of [32]: the
// buyer's budget buys a correspondingly noisy model.
func E9Pricing(quick bool) Table {
	t := Table{
		ID:         "E9",
		Title:      "Model-based pricing: budget → noise → accuracy",
		PaperClaim: "§IV-A / [32]: \"The larger the buyer's budget, the smaller the injected noise variance and the greater the accuracy\"",
		Columns:    []string{"price", "sigma", "accuracy", "accuracy-drop"},
	}
	rng := crypto.NewDRBGFromUint64(9, "e9")
	n := 5000
	if quick {
		n = 2000
	}
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: n, Dim: 10, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.3, rng)
	optimal := ml.NewLogisticModel(10, 1e-3)
	ml.TrainEpochs(optimal, train, 5)
	base := ml.Accuracy(optimal, test)

	market, err := reward.NewModelMarket(optimal, 1_000, 1.5, rng)
	if err != nil {
		t.Notes = append(t.Notes, "market setup failed: "+err.Error())
		return t
	}
	prices := []uint64{25, 50, 100, 250, 500, 1_000}
	trials := 30
	if quick {
		trials = 10
	}
	curve, err := market.Curve(prices, test, trials)
	if err != nil {
		t.Notes = append(t.Notes, "curve failed: "+err.Error())
		return t
	}
	for _, p := range curve {
		t.AddRow(p.Price, p.Sigma, p.Accuracy, base-p.Accuracy)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("noise-free model accuracy: %.4f (price %d buys it exactly)", base, prices[len(prices)-1]),
		"accuracy is averaged over noise draws; monotone non-decreasing in price")
	return t
}
