// Package experiments regenerates every experiment in DESIGN.md's
// experiment index (E1–E18). The paper is an architecture paper without
// quantitative result tables, so each experiment validates a figure or a
// quantitative *claim* from the text; the PaperClaim field records what
// the paper leads us to expect and the generated table is the measured
// counterpart recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Runner generates one experiment table. quick selects reduced problem
// sizes for use inside unit tests and benchmarks; the full sizes are
// what EXPERIMENTS.md records.
type Runner func(quick bool) Table

// Experiment binds an ID to its runner.
type Experiment struct {
	ID   string
	Name string
	Run  Runner
}

// All lists every experiment in DESIGN.md order.
var All = []Experiment{
	{"E1", "workload lifecycle (Fig. 2)", E1Lifecycle},
	{"E2", "governance gas & throughput", E2Governance},
	{"E3", "homomorphic-encryption overhead", E3HEOverhead},
	{"E4", "SMC communication cost", E4SMC},
	{"E5", "TEE vs crypto backends", E5TEE},
	{"E6", "gossip vs federated learning", E6GossipVsFed},
	{"E7", "gossip under heterogeneity", E7Heterogeneity},
	{"E8", "Shapley reward schemes", E8Shapley},
	{"E9", "model-based pricing", E9Pricing},
	{"E10", "IoT data authenticity", E10Authenticity},
	{"E11", "discovery & metadata leakage", E11Discovery},
	{"E12", "membership-inference leakage & DP", E12Leakage},
	{"E13", "hardware configurations (Fig. 3)", E13Configs},
	{"E14", "tamper detection by governance", E14Tamper},
	{"E15", "chaos: lifecycle under injected faults", E15Chaos},
	{"E16", "property-based invariant soak", E16Proptest},
	{"E17", "durable store & load SLOs", E17Durability},
	{"E18", "usage-control enforcement overhead", E18Policy},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
