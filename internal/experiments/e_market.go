package experiments

import (
	"encoding/json"
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/ml"
	"pds2/internal/semantic"
	"pds2/internal/storage"
)

// e13World is a small two-provider marketplace whose storage and
// execution placement can be varied per Fig. 3.
type e13World struct {
	m         *market.Market
	consumer  *market.Consumer
	providers []*market.Provider
	executors []*market.Executor
	spec      *market.Spec
	thirdNode *storage.Node
	ownNodes  []*storage.Node
}

func newE13World(seed uint64, ownStorage, ownExecution bool) (*e13World, error) {
	rng := crypto.NewDRBGFromUint64(seed, "e13")
	const nProviders = 2
	ids := make([]*identity.Identity, 0, nProviders*2+1)
	alloc := map[identity.Address]uint64{}
	for i := 0; i < nProviders*2+1; i++ {
		id := identity.New("a", rng.Fork("id"))
		ids = append(ids, id)
		alloc[id.Address()] = 1_000_000
	}
	m, err := market.New(market.Config{Seed: seed, GenesisAlloc: alloc})
	if err != nil {
		return nil, err
	}
	w := &e13World{m: m, thirdNode: storage.NewNode(storage.NewMemStore())}
	if w.consumer, err = market.NewConsumer(m, ids[0]); err != nil {
		return nil, err
	}

	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 200, Dim: 6, LabelNoise: 0.05}, rng)
	parts := data.PartitionIID(nProviders, rng)

	for i := 0; i < nProviders; i++ {
		node := w.thirdNode
		if ownStorage {
			node = storage.NewNode(storage.NewMemStore()) // provider's own hardware
			w.ownNodes = append(w.ownNodes, node)
		}
		p, err := market.NewProvider(m, ids[1+i], node)
		if err != nil {
			return nil, err
		}
		if _, err := p.AddDataset(parts[i], semantic.Metadata{
			"category": semantic.String("sensor.x"),
			"samples":  semantic.Number(float64(parts[i].Len())),
		}); err != nil {
			return nil, err
		}
		w.providers = append(w.providers, p)
	}
	for i := 0; i < nProviders; i++ {
		// Own execution: the provider's identity also acts as executor on
		// its own hardware; third-party execution: a distinct identity.
		execID := ids[1+nProviders+i]
		if ownExecution {
			execID = ids[1+i]
		}
		// The executor reads from the node where provider i's data lives.
		e, err := market.NewExecutor(m, execID, w.providers[i].Node)
		if err != nil {
			return nil, err
		}
		w.executors = append(w.executors, e)
	}

	params := market.TrainerParams{Dim: 6, Epochs: 2, Lambda: 1e-3}
	w.spec = &market.Spec{
		Predicate:      `category isa "sensor"`,
		MinProviders:   nProviders,
		MinItems:       nProviders,
		ExpiryHeight:   m.Height() + 10_000,
		ExecutorFeeBps: 1_000,
		Measurement:    market.TrainerMeasurement(params.Encode()),
		QAPub:          m.QA.PublicKey(),
		Params:         params.Encode(),
	}
	return w, nil
}

// run drives the lifecycle with provider i assigned to executor i.
func (w *e13World) run(budget uint64) (crypto.Digest, error) {
	addr, err := w.consumer.SubmitWorkload(w.spec, budget)
	if err != nil {
		return crypto.ZeroDigest, err
	}
	for i, p := range w.providers {
		refs, err := p.EligibleData(w.spec)
		if err != nil {
			return crypto.ZeroDigest, err
		}
		auths, err := p.Authorize(addr, w.executors[i].ID.Address(), refs, w.spec.ExpiryHeight)
		if err != nil {
			return crypto.ZeroDigest, err
		}
		w.executors[i].Accept(addr, auths)
	}
	for _, e := range w.executors {
		if err := e.Register(addr); err != nil {
			return crypto.ZeroDigest, err
		}
	}
	if err := w.consumer.Start(addr); err != nil {
		return crypto.ZeroDigest, err
	}
	if _, err := market.RunWorkloadExecution(addr, w.executors); err != nil {
		return crypto.ZeroDigest, err
	}
	if err := w.consumer.Finalize(addr); err != nil {
		return crypto.ZeroDigest, err
	}
	hash, _, err := w.m.WorkloadResultOf(addr)
	return hash, err
}

// E13Configs runs the same workload in all four Fig. 3 hardware
// configurations and verifies identical results with different
// trust/transfer profiles.
func E13Configs(quick bool) Table {
	t := Table{
		ID:         "E13",
		Title:      "Fig. 3 hardware configurations",
		PaperClaim: "§II-F/Fig. 3: providers \"can outsource data storage and/or execution to third parties, or can choose to retain control of the entire stack\" with identical platform behaviour",
		Columns:    []string{"storage", "execution", "state", "result-hash", "third-party-blobs", "self-roles"},
	}
	type cfg struct {
		name          string
		ownSt, ownExe bool
	}
	cfgs := []cfg{
		{"third-party / third-party", false, false},
		{"own / third-party", true, false},
		{"third-party / own", false, true},
		{"own / own", true, true},
	}
	var hashes []crypto.Digest
	for _, c := range cfgs {
		w, err := newE13World(13, c.ownSt, c.ownExe)
		if err != nil {
			t.AddRow(c.name, "", "ERROR", err.Error(), "", "")
			continue
		}
		hash, err := w.run(10_000)
		if err != nil {
			t.AddRow(c.name, "", "ERROR", err.Error(), "", "")
			continue
		}
		hashes = append(hashes, hash)
		thirdBlobs := len(w.thirdNode.Refs())
		selfRoles := "none"
		switch {
		case c.ownSt && c.ownExe:
			selfRoles = "storage+executor"
		case c.ownSt:
			selfRoles = "storage"
		case c.ownExe:
			selfRoles = "executor"
		}
		st := "-"
		if list, err := w.m.Workloads(); err == nil && len(list) > 0 {
			if s, err := w.m.WorkloadStateOf(list[0]); err == nil {
				st = s.String()
			}
		}
		parts := [2]string{"third-party", "own"}
		t.AddRow(parts[b2i(c.ownSt)], parts[b2i(c.ownExe)], st, hash.Short(), thirdBlobs, selfRoles)
	}
	same := true
	for _, h := range hashes {
		if h != hashes[0] {
			same = false
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("result hashes identical across configurations: %v", same),
		"third-party-blobs: ciphertexts a third party ever holds (0 when storage is self-hosted)")
	return t
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// E14Tamper injects the §II-E attacks and records the governance layer's
// response to each.
func E14Tamper(quick bool) Table {
	t := Table{
		ID:         "E14",
		Title:      "Tamper detection by the governance layer",
		PaperClaim: "§II-E: executors have \"no way to tamper with the results without being detected\"; all and only willing providers' data is used",
		Columns:    []string{"attack", "governance response", "detected"},
	}

	// Attack 1: executor runs different code than the consumer pinned.
	{
		w, err := newE13World(141, false, false)
		if err == nil {
			addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
			refs, _ := w.providers[0].EligibleData(w.spec)
			auths, _ := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
			wrong := market.TrainerParams{Dim: 6, Epochs: 77, Lambda: 1e-3}
			prog := market.NewTrainerProgram(wrong.Encode()).Program()
			enclave, _ := w.executors[0].Platform.Launch(prog)
			wid := market.WorkloadIDFor(addr)
			quote := enclave.Quote(market.RegistrationReport(wid, w.executors[0].ID.Address()))
			quoteRaw, _ := json.Marshal(quote)
			certsRaw, _ := json.Marshal([]identity.ParticipationCert{auths[0].Cert})
			args := contract.NewEncoder().Blob(quoteRaw).Blob(certsRaw).Bytes()
			rcpt, _ := w.m.SendAndSeal(w.executors[0].ID, addr, 0, contract.CallData("registerExecution", args))
			detected := rcpt != nil && !rcpt.Succeeded()
			t.AddRow("wrong enclave code", "registration reverted (measurement mismatch)", detected)
		}
	}

	// Attack 2: forged participation certificate.
	{
		w, err := newE13World(142, false, false)
		if err == nil {
			addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
			wid := market.WorkloadIDFor(addr)
			exec := w.executors[0]
			mallory := identity.New("mallory", crypto.NewDRBGFromUint64(999, "m"))
			forged := identity.IssueCert(mallory, wid, crypto.HashString("stolen"),
				exec.ID.Address(), w.spec.ExpiryHeight)
			forged.Provider = w.providers[0].ID.Address()
			spec, _ := w.m.WorkloadSpecOf(addr)
			prog := market.NewTrainerProgram(spec.Params).Program()
			enclave, _ := exec.Platform.Launch(prog)
			quote := enclave.Quote(market.RegistrationReport(wid, exec.ID.Address()))
			quoteRaw, _ := json.Marshal(quote)
			certsRaw, _ := json.Marshal([]identity.ParticipationCert{forged})
			args := contract.NewEncoder().Blob(quoteRaw).Blob(certsRaw).Bytes()
			rcpt, _ := w.m.SendAndSeal(exec.ID, addr, 0, contract.CallData("registerExecution", args))
			detected := rcpt != nil && !rcpt.Succeeded()
			t.AddRow("forged participation certificate", "registration reverted (bad signature)", detected)
		}
	}

	// Attack 3: an executor fetches data it was never granted.
	{
		w, err := newE13World(143, false, false)
		if err == nil {
			addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
			refs, _ := w.providers[0].EligibleData(w.spec)
			auths, _ := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
			// Executor 1 replays executor 0's grant.
			wid := market.WorkloadIDFor(addr)
			_, err := w.thirdNode.Release(&auths[0].Grant, w.executors[1].ID.Address(), wid, w.m.Height())
			t.AddRow("grant replay by another executor", "storage node refused release (grantee mismatch)", err != nil)
		}
	}

	// Attack 4: divergent (tampered) result submission.
	{
		w, err := newE13World(144, false, false)
		if err == nil {
			w.executors[1].TamperResult = true
			_, runErr := w.run(10_000)
			detected := false
			if list, err := w.m.Workloads(); err == nil && len(list) > 0 {
				if st, err := w.m.WorkloadStateOf(list[0]); err == nil && st == market.StateDisputed {
					detected = true
				}
			}
			_ = runErr
			refunded := w.m.Chain.State().Balance(w.consumer.ID.Address()) == 1_000_000
			t.AddRow("tampered result (1 of 2 executors)",
				fmt.Sprintf("workload disputed, consumer refunded=%v", refunded), detected)
		}
	}
	t.Notes = append(t.Notes, "every attack must show detected=true")
	return t
}
