package experiments

import (
	"fmt"
	"time"

	"pds2/internal/contract"
	"pds2/internal/core"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/ml"
	"pds2/internal/semantic"
	"pds2/internal/storage"
)

// E1Lifecycle runs the full Fig. 2 lifecycle at increasing scale and
// verifies that it completes, trains a usable model, pays out the exact
// budget and leaves a complete audit trail.
func E1Lifecycle(quick bool) Table {
	t := Table{
		ID:         "E1",
		Title:      "Full workload lifecycle at increasing scale",
		PaperClaim: "Fig. 2: the submission → discovery → certification → execution → reward sequence is executable end to end with full on-chain audit",
		Columns:    []string{"providers", "executors", "blocks", "gas", "audit-events", "accuracy", "payout/budget", "wall"},
	}
	type cfg struct{ p, e int }
	cfgs := []cfg{{4, 2}, {16, 4}, {64, 8}}
	if quick {
		cfgs = []cfg{{4, 2}, {8, 4}}
	}
	for i, c := range cfgs {
		start := time.Now()
		res, err := core.Run(core.Scenario{
			Seed: uint64(100 + i), Providers: c.p, Executors: c.e,
			SamplesEach: 100, Budget: 1_000_000,
		})
		if err != nil {
			t.AddRow(c.p, c.e, "ERROR", err.Error(), "", "", "", "")
			continue
		}
		var paid uint64
		for _, v := range res.Payouts {
			paid += v
		}
		t.AddRow(c.p, c.e, res.Blocks, res.TotalGas, res.AuditEvents,
			res.Accuracy, fmt.Sprintf("%d/%d", paid, 1_000_000),
			time.Since(start).Round(time.Millisecond))
	}
	t.Notes = append(t.Notes, "payout/budget must be exact: the contract escrow settles fully")
	return t
}

// E2Governance measures the gas cost of each lifecycle phase and the
// governance layer's transaction throughput.
func E2Governance(quick bool) Table {
	t := Table{
		ID:         "E2",
		Title:      "Gas per lifecycle phase and governance throughput",
		PaperClaim: "§III-A: Turing-complete contracts can validate every lifecycle step; costs must stay within public-chain orders of magnitude",
		Columns:    []string{"providers", "deploy", "register(total)", "start", "submit", "finalize", "tx/s"},
	}
	sizes := []int{2, 8, 32}
	if quick {
		sizes = []int{2, 8}
	}
	for _, n := range sizes {
		row, err := governanceGasRow(n)
		if err != nil {
			t.AddRow(n, "ERROR", err.Error(), "", "", "", "")
			continue
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"register(total) covers all executor registrations incl. certificate and quote verification",
		"tx/s measured over the whole lifecycle on one core")
	return t
}

func governanceGasRow(nProviders int) ([]string, error) {
	rng := crypto.NewDRBGFromUint64(uint64(nProviders), "e2")
	ids := make([]*identity.Identity, 0, nProviders+2)
	alloc := map[identity.Address]uint64{}
	for i := 0; i < nProviders+2; i++ {
		id := identity.New("a", rng.Fork("id"))
		ids = append(ids, id)
		alloc[id.Address()] = 10_000_000
	}
	m, err := market.New(market.Config{Seed: uint64(nProviders), GenesisAlloc: alloc})
	if err != nil {
		return nil, err
	}
	node := storage.NewNode(storage.NewMemStore())
	consumer, err := market.NewConsumer(m, ids[0])
	if err != nil {
		return nil, err
	}
	exec, err := market.NewExecutor(m, ids[1], node)
	if err != nil {
		return nil, err
	}

	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 40 * nProviders, Dim: 4}, rng)
	parts := data.PartitionIID(nProviders, rng)
	providers := make([]*market.Provider, nProviders)
	for i := range providers {
		providers[i], err = market.NewProvider(m, ids[2+i], node)
		if err != nil {
			return nil, err
		}
		if _, err := providers[i].AddDataset(parts[i], semantic.Metadata{
			"category": semantic.String("sensor.x"),
			"samples":  semantic.Number(float64(parts[i].Len())),
		}); err != nil {
			return nil, err
		}
	}

	params := market.TrainerParams{Dim: 4, Epochs: 1, Lambda: 1e-3}
	spec := &market.Spec{
		Predicate:      `category isa "sensor"`,
		MinProviders:   uint64(nProviders),
		MinItems:       uint64(nProviders),
		ExpiryHeight:   m.Height() + 10_000,
		ExecutorFeeBps: 1_000,
		Measurement:    market.TrainerMeasurement(params.Encode()),
		QAPub:          m.QA.PublicKey(),
		Params:         params.Encode(),
	}

	startWall := time.Now()
	txCount := 0
	gasOf := func(rcpt *ledger.Receipt, err error) (uint64, error) {
		if err != nil {
			return 0, err
		}
		txCount++
		return rcpt.GasUsed, nil
	}

	// Deploy.
	rcpt, err := market.MustSucceed(m.SendAndSeal(consumer.ID, identity.ZeroAddress, 500_000,
		contract.DeployData(market.WorkloadCodeName, spec.Encode())))
	deployGas, err := gasOf(rcpt, err)
	if err != nil {
		return nil, err
	}
	var workload identity.Address
	copy(workload[:], rcpt.Return)
	rcpt, err = market.MustSucceed(m.SendAndSeal(consumer.ID, m.Registry, 0, market.RegisterWorkloadData(workload)))
	if _, err = gasOf(rcpt, err); err != nil {
		return nil, err
	}

	// Providers authorize; executor registers all certs in one tx.
	for _, p := range providers {
		refs, err := p.EligibleData(spec)
		if err != nil {
			return nil, err
		}
		auths, err := p.Authorize(workload, exec.ID.Address(), refs, spec.ExpiryHeight)
		if err != nil {
			return nil, err
		}
		exec.Accept(workload, auths)
	}
	hBefore := m.Height()
	if err := exec.Register(workload); err != nil {
		return nil, err
	}
	var registerGas uint64
	for h := hBefore + 1; h <= m.Height(); h++ {
		b, _ := m.Chain.BlockAt(h)
		registerGas += b.Header.GasUsed
		txCount += len(b.Txs)
	}

	rcpt, err = market.MustSucceed(m.SendAndSeal(consumer.ID, workload, 0, contract.CallData("start", nil)))
	startGas, err := gasOf(rcpt, err)
	if err != nil {
		return nil, err
	}

	if _, err := market.RunWorkloadExecution(workload, []*market.Executor{exec}); err != nil {
		return nil, err
	}
	// The submit gas is in the last block.
	lastBlock, _ := m.Chain.BlockAt(m.Height())
	submitGas := lastBlock.Header.GasUsed
	txCount += len(lastBlock.Txs)

	rcpt, err = market.MustSucceed(m.SendAndSeal(consumer.ID, workload, 0, contract.CallData("finalize", nil)))
	finalizeGas, err := gasOf(rcpt, err)
	if err != nil {
		return nil, err
	}

	elapsed := time.Since(startWall).Seconds()
	tps := float64(txCount) / elapsed
	return []string{
		fmt.Sprintf("%d", nProviders),
		fmt.Sprintf("%d", deployGas),
		fmt.Sprintf("%d", registerGas),
		fmt.Sprintf("%d", startGas),
		fmt.Sprintf("%d", submitGas),
		fmt.Sprintf("%d", finalizeGas),
		fmt.Sprintf("%.0f", tps),
	}, nil
}
