package experiments

import (
	"fmt"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/device"
	"pds2/internal/ml"
	"pds2/internal/privacy"
	"pds2/internal/semantic"
	"pds2/internal/storage"
)

// E10Authenticity runs the §IV-B data-authenticity pipeline over a
// signed reading stream with an injected attack mix and reports per-
// attack rejection plus verification throughput.
func E10Authenticity(quick bool) Table {
	t := Table{
		ID:         "E10",
		Title:      "IoT data authenticity: attack rejection and throughput",
		PaperClaim: "§IV-B: device-signed, timestamped readings prevent forgery and prevent users \"from creating multiple copies and reselling them\"",
		Columns:    []string{"class", "submitted", "accepted", "rejected", "rejection-reason"},
	}
	nDevices, nReadings := 50, 10_000
	if quick {
		nDevices, nReadings = 10, 1_000
	}
	rng := crypto.NewDRBGFromUint64(10, "e10")
	fleet, err := device.NewFleet(nDevices, "tk", rng)
	if err != nil {
		t.Notes = append(t.Notes, "fleet setup failed: "+err.Error())
		return t
	}
	verifier := device.NewVerifier(fleet.Registry)

	// Honest stream.
	honest := make([]device.Reading, 0, nReadings)
	for i := 0; i < nReadings; i++ {
		d := fleet.Devices[i%nDevices]
		honest = append(honest, d.Produce([]byte(fmt.Sprintf("reading-%d", i)), uint64(1000+i)))
	}

	// Attack streams.
	rogue := device.New("rogue", crypto.NewDRBGFromUint64(666, "rogue"))
	var forged, tampered, replayed, resold []device.Reading
	for i := 0; i < nReadings/10; i++ {
		forged = append(forged, rogue.Produce([]byte(fmt.Sprintf("fake-%d", i)), uint64(2000+i)))

		r := fleet.Devices[i%nDevices].Produce([]byte(fmt.Sprintf("tamper-%d", i)), uint64(3000+i))
		r.Payload = append(r.Payload, byte('!'))
		tampered = append(tampered, r)

		replayed = append(replayed, honest[i]) // exact duplicates

		// Re-signed duplicate payloads (resale attempt).
		resold = append(resold, fleet.Devices[i%nDevices].Produce(honest[i].Payload, uint64(4000+i)))
	}

	start := time.Now()
	acceptedHonest, rejHonest := verifier.VerifyBatch(honest, 0)
	elapsed := time.Since(start)
	t.AddRow("honest", len(honest), len(acceptedHonest), len(rejHonest), "-")

	classes := []struct {
		name string
		rs   []device.Reading
		why  string
	}{
		{"forged (unregistered key)", forged, "unknown device"},
		{"tampered payload", tampered, "bad signature"},
		{"replayed", replayed, "sequence replay"},
		{"resold (re-signed copy)", resold, "duplicate payload"},
	}
	for _, c := range classes {
		acc, rej := verifier.VerifyBatch(c.rs, 0)
		t.AddRow(c.name, len(c.rs), len(acc), len(rej), c.why)
	}
	t.AddRow("throughput", fmt.Sprintf("%d readings", len(honest)), "",
		fmt.Sprintf("%.0f/s", float64(len(honest))/elapsed.Seconds()), "-")
	t.Notes = append(t.Notes, "all attack classes must show 0 accepted; honest must show 0 rejected")
	return t
}

// E11Discovery measures the §IV-C trade-off: predicate expressiveness vs
// metadata leakage, with matching quality against ground truth.
func E11Discovery(quick bool) Table {
	t := Table{
		ID:         "E11",
		Title:      "Semantic discovery: expressiveness vs metadata leakage",
		PaperClaim: "§IV-C: \"a tradeoff between the amount of information leaked by the metadata and the complexity of the verifiable requirements\"",
		Columns:    []string{"predicate", "ast-nodes", "leakage", "matches", "recall", "precision"},
	}
	n := 1000
	if quick {
		n = 200
	}
	rng := crypto.NewDRBGFromUint64(11, "e11")
	cats := []string{
		"sensor.temperature.indoor", "sensor.temperature.outdoor",
		"sensor.humidity", "gps.track", "health.heartrate",
	}
	regions := []string{"eu-north", "eu-south", "us-east", "ap-east"}
	node := storage.NewNode(storage.NewMemStore())
	type truth struct {
		cat     string
		samples float64
		region  string
	}
	truths := make([]truth, n)
	for i := 0; i < n; i++ {
		tr := truth{
			cat:     cats[rng.Intn(len(cats))],
			samples: float64(10 + rng.Intn(1000)),
			region:  regions[rng.Intn(len(regions))],
		}
		truths[i] = tr
		ref := storage.DataRef{
			ID: crypto.HashString(fmt.Sprintf("ds-%d", i)),
			Meta: semantic.Metadata{
				"category": semantic.String(tr.cat),
				"samples":  semantic.Number(tr.samples),
				"region":   semantic.String(tr.region),
			},
		}
		if err := node.Host(ref, []byte{1}); err != nil {
			t.Notes = append(t.Notes, "host failed: "+err.Error())
			return t
		}
	}

	preds := []struct {
		src  string
		want func(truth) bool
	}{
		{`has samples`, func(truth) bool { return true }},
		{`category isa "sensor"`, func(tr truth) bool { return len(tr.cat) >= 6 && tr.cat[:6] == "sensor" }},
		{`category isa "sensor.temperature" and samples >= 500`,
			func(tr truth) bool {
				return len(tr.cat) >= 18 && tr.cat[:18] == "sensor.temperature" && tr.samples >= 500
			}},
		{`category isa "sensor" and samples >= 100 and (region == "eu-north" or region == "eu-south")`,
			func(tr truth) bool {
				return len(tr.cat) >= 6 && tr.cat[:6] == "sensor" && tr.samples >= 100 &&
					(tr.region == "eu-north" || tr.region == "eu-south")
			}},
	}
	for _, p := range preds {
		expr, err := semantic.Parse(p.src)
		if err != nil {
			t.AddRow(p.src, "PARSE ERROR", err.Error(), "", "", "")
			continue
		}
		stats := semantic.Analyze(expr)
		matched, err := node.Match(expr)
		if err != nil {
			t.AddRow(p.src, stats.Nodes, stats.Score(), "REFUSED", "", "")
			continue
		}
		matchedIDs := map[crypto.Digest]bool{}
		for _, ref := range matched {
			matchedIDs[ref.ID] = true
		}
		var wantCount, hit int
		for i, tr := range truths {
			id := crypto.HashString(fmt.Sprintf("ds-%d", i))
			if p.want(tr) {
				wantCount++
				if matchedIDs[id] {
					hit++
				}
			}
		}
		recall, precision := 1.0, 1.0
		if wantCount > 0 {
			recall = float64(hit) / float64(wantCount)
		}
		if len(matched) > 0 {
			precision = float64(hit) / float64(len(matched))
		}
		t.AddRow(p.src, stats.Nodes, stats.Score(), len(matched), recall, precision)
	}
	// Leakage budget demonstration.
	node.LeakageBudget = 4
	probe := semantic.MustParse(`region == "eu-north" and samples == 500`)
	if _, err := node.Match(probe); err != nil {
		t.Notes = append(t.Notes, "budget=4 refused exact probe: "+err.Error())
	}
	t.Notes = append(t.Notes, "recall/precision must be 1: matching is exact over metadata; leakage grows with expressiveness")
	return t
}

// E12Leakage reproduces §IV-D: membership-inference leakage of released
// models, with and without differential privacy, across the privacy
// budget.
func E12Leakage(quick bool) Table {
	t := Table{
		ID:         "E12",
		Title:      "Membership-inference leakage and the DP remedy",
		PaperClaim: "§IV-D: information \"may still leak … through the results\"; solutions are \"often based on differential privacy\" [36][37]",
		Columns:    []string{"release", "attack-advantage", "attack-auc", "model-accuracy"},
	}
	// A small, noisy, high-dimensional training set trained to
	// convergence: the memorization regime where release leakage is
	// worst (the models the attack literature studies).
	rng := crypto.NewDRBGFromUint64(12, "e12")
	n := 300
	epochs := 600
	if quick {
		n, epochs = 300, 200
	}
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: n, Dim: 40, LabelNoise: 0.25}, rng)
	train, test := data.TrainTestSplit(0.5, rng)
	model := privacy.TrainOverfitModel(train, epochs)

	res, err := privacy.MembershipAttack(model, train, test)
	if err != nil {
		t.Notes = append(t.Notes, "attack failed: "+err.Error())
		return t
	}
	t.AddRow("raw (no DP)", res.Advantage, res.AUC, ml.Accuracy(model, test))

	trials := 10
	if quick {
		trials = 5
	}
	for _, eps := range []float64{10, 1, 0.5, 0.1} {
		var adv, auc, acc float64
		for i := 0; i < trials; i++ {
			released, err := privacy.ReleaseModelDP(model, 1.0, eps, 1e-5, nil, rng)
			if err != nil {
				t.AddRow(fmt.Sprintf("dp eps=%.1f", eps), "ERROR", err.Error(), "")
				break
			}
			r, err := privacy.MembershipAttack(released, train, test)
			if err != nil {
				break
			}
			adv += r.Advantage
			auc += r.AUC
			acc += ml.Accuracy(released, test)
		}
		t.AddRow(fmt.Sprintf("dp eps=%.1f", eps),
			adv/float64(trials), auc/float64(trials), acc/float64(trials))
	}
	t.Notes = append(t.Notes,
		"advantage = max(TPR−FPR) of the loss-threshold attack; smaller epsilon must shrink it, at an accuracy cost")
	return t
}
