package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// A6ParallelExec ablates the parallel conflict-aware block executor:
// the serial baseline against the optimistic scheduler over a single
// state shard (scheduler overhead with maximal lock contention) and
// over the default 16 shards, for plain native transfers and for a
// storage-heavy contract-style workload. Every arm's final state root
// is checked against the serial reference, so the table can never
// report a fast-but-divergent configuration.
//
// Parallel arms pin 8 workers — the roadmap's 8-core target — rather
// than GOMAXPROCS, so the scheduler's coordination cost is visible even
// on single-core hosts. On such hosts the parallel arms pay the full
// speculation/validation overhead with zero real concurrency and land
// well below the serial baseline; the speedup column only becomes
// meaningful on multi-core hardware.
func A6ParallelExec(quick bool) Table {
	t := Table{
		ID:         "A6",
		Title:      "Ablation: parallel tx execution (scheduler × state shards)",
		PaperClaim: "§III-A: the governance chain must absorb every lifecycle transaction; parallel execution raises the per-replica throughput ceiling",
		Columns:    []string{"workload", "executor", "workers", "shards", "txs", "tx/s", "speedup"},
	}
	nTxs, rounds := 8_192, 3
	if quick {
		nTxs, rounds = 512, 1
	}

	workloads := []struct {
		name    string
		applier ledger.TxApplier
	}{
		{"native-transfer", ledger.TransferApplier{}},
		{"contract-storage", a6StorageApplier{slots: 8}},
	}
	arms := []struct {
		name            string
		workers, shards int
	}{
		{"serial", 1, 16},
		{"parallel", 8, 1},
		{"parallel", 8, 16},
	}

	for _, w := range workloads {
		ref, refTxs, err := a6Chain(w.applier, 1, 16, nTxs)
		if err != nil {
			t.AddRow(w.name, "setup", "ERR", err.Error(), "", "", "")
			continue
		}
		_, wantRoot, err := ref.ExecuteBatch(refTxs)
		if err != nil {
			t.AddRow(w.name, "reference", "ERR", err.Error(), "", "", "")
			continue
		}

		var baseline float64
		for _, arm := range arms {
			c, txs, err := a6Chain(w.applier, arm.workers, arm.shards, nTxs)
			if err != nil {
				t.AddRow(w.name, arm.name, arm.workers, arm.shards, "ERR", err.Error(), "")
				continue
			}
			start := time.Now()
			var root crypto.Digest
			for r := 0; r < rounds; r++ {
				_, root, err = c.ExecuteBatch(txs)
				if err != nil {
					break
				}
			}
			elapsed := time.Since(start).Seconds()
			if err != nil {
				t.AddRow(w.name, arm.name, arm.workers, arm.shards, "ERR", err.Error(), "")
				continue
			}
			if root != wantRoot {
				t.AddRow(w.name, arm.name, arm.workers, arm.shards, "ERR",
					"state root diverged from serial", "")
				continue
			}
			tps := float64(nTxs*rounds) / elapsed
			if baseline == 0 {
				baseline = tps
			}
			t.AddRow(w.name, arm.name, arm.workers, arm.shards, nTxs,
				fmt.Sprintf("%.0f", tps), fmt.Sprintf("%.2fx", tps/baseline))
		}
	}
	t.Notes = append(t.Notes,
		"every arm's state root is asserted equal to the serial reference before timing is reported",
		"parallel arms pin 8 workers; on hosts with fewer cores they measure pure scheduler overhead",
		"speedup is relative to the serial arm of the same workload")
	return t
}

// a6StorageApplier mirrors the contract-execution profile: each
// transaction rewrites 8 storage slots under its own sender, so the
// workload is conflict-free and isolates scheduler plus shard-lock
// cost.
type a6StorageApplier struct{ slots int }

func (a a6StorageApplier) Apply(st ledger.StateAccessor, tx *ledger.Transaction, height uint64) (*ledger.Receipt, error) {
	rcpt := &ledger.Receipt{TxHash: tx.Hash(), GasUsed: tx.IntrinsicGas(), Height: height}
	st.BumpNonce(tx.From)
	if err := st.SubBalance(tx.From, tx.Value); err != nil {
		rcpt.Status = ledger.StatusFailed
		rcpt.Err = err.Error()
		return rcpt, nil
	}
	if err := st.AddBalance(tx.To, tx.Value); err != nil {
		rcpt.Status = ledger.StatusFailed
		rcpt.Err = err.Error()
		return rcpt, nil
	}
	for k := 0; k < a.slots; k++ {
		key := fmt.Sprintf("s/%d", k)
		var n uint64
		if b := st.GetStorage(tx.From, key); len(b) == 8 {
			n = binary.BigEndian.Uint64(b)
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], n+tx.Value)
		st.SetStorage(tx.From, key, buf[:])
	}
	rcpt.Status = ledger.StatusOK
	return rcpt, nil
}

// a6Addr fabricates a deterministic address whose first byte spreads
// across shards; the executor ablation bypasses signatures entirely.
func a6Addr(i uint64) identity.Address {
	var a identity.Address
	a[0] = byte(i)
	binary.BigEndian.PutUint64(a[1:9], i)
	return a
}

func a6Chain(applier ledger.TxApplier, workers, shards, nTxs int) (*ledger.Chain, []*ledger.Transaction, error) {
	alloc := make(map[identity.Address]uint64, nTxs)
	txs := make([]*ledger.Transaction, nTxs)
	for i := 0; i < nTxs; i++ {
		from := a6Addr(uint64(i))
		alloc[from] = 1 << 40
		txs[i] = &ledger.Transaction{
			From:     from,
			To:       a6Addr(uint64(nTxs + i)),
			Value:    1,
			Nonce:    0,
			GasLimit: 1_000_000,
		}
	}
	var auth identity.Address
	auth[0] = 0xA6
	c, err := ledger.NewChain(ledger.ChainConfig{
		Authorities:      []identity.Address{auth},
		Applier:          applier,
		GenesisAlloc:     alloc,
		ExecWorkers:      workers,
		ParallelMinBatch: 1,
		StateShards:      shards,
		BlockGasLimit:    1 << 62,
	})
	if err != nil {
		return nil, nil, err
	}
	return c, txs, nil
}

func init() {
	All = append(All,
		Experiment{"A6", "ablation: parallel tx execution", A6ParallelExec},
	)
}
