package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"pds2/internal/api"
	"pds2/internal/chainstore"
	"pds2/internal/loadgen"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

// E17Durability measures the durable-node story end to end: an
// open-loop load run (deterministic simulated accounts, mixed traffic)
// against the real HTTP API, first in memory, then writing through the
// segmented chain store; afterwards the durable node is torn down like
// a crash — torn bytes appended to its active log segment — and
// reopened from snapshot + log tail, which must land on the identical
// height and state root. §II-E's audit guarantee is only worth anything
// if the chain a node restarts from is the chain it sealed.
func E17Durability(quick bool) Table {
	t := Table{
		ID:    "E17",
		Title: "durable store: load SLOs and crash recovery",
		PaperClaim: "the governance layer records every marketplace action on chain; " +
			"a node must survive restarts without losing committed state while sustaining traffic",
		Columns: []string{"scenario", "accounts", "offered/s", "committed tx/s", "p99 transfer (ms)", "errors", "blocks", "outcome"},
	}
	// The load harness reads throughput from /metrics, which answers
	// 503 while telemetry is off (the experiments CLI may run with
	// -telemetry=false; that flag governs the printed summaries, not
	// whether this experiment can measure).
	telemetry.Enable()

	accounts, rate, duration := 20_000, 500.0, 10*time.Second
	if quick {
		accounts, rate, duration = 500, 150.0, 2*time.Second
	}
	cfg := loadgen.Config{
		Accounts: accounts,
		Workers:  8,
		Rate:     rate,
		Duration: duration,
		Seed:     17,
		SLO:      loadgen.SLO{MinTxPerSec: 10, MaxErrorRate: 0.05},
	}

	row := func(scenario string, rep *loadgen.Report, outcome string) {
		p99 := 0.0
		for _, c := range rep.Classes {
			if c.Class == loadgen.ClassTransfer {
				p99 = c.P99 * 1e3
			}
		}
		t.AddRow(scenario, rep.Accounts, rep.OfferedRate, rep.CommittedTxPerSec, p99, rep.Errors, rep.Blocks, outcome)
	}
	sloOutcome := func(rep *loadgen.Report) string {
		if len(rep.Breaches) > 0 {
			return "SLO BREACH: " + rep.Breaches[0]
		}
		return "SLO pass"
	}

	// Scenario 1: in-memory node — the latency/throughput baseline.
	rep, _, err := loadNode(cfg, "")
	if err != nil {
		t.AddRow("in-memory", accounts, rate, "-", "-", "-", "-", "setup: "+err.Error())
		return t
	}
	row("in-memory", rep, sloOutcome(rep))

	// Scenario 2: durable node — every block fsynced through the chain
	// store, snapshots every 25 blocks. The SLO must hold here too:
	// durability that costs the throughput floor is not shippable.
	dir, err := os.MkdirTemp("", "pds2-e17-*")
	if err != nil {
		t.AddRow("durable", accounts, rate, "-", "-", "-", "-", "setup: "+err.Error())
		return t
	}
	defer os.RemoveAll(dir)
	rep2, final, err := loadNode(cfg, dir)
	if err != nil {
		t.AddRow("durable", accounts, rate, "-", "-", "-", "-", "setup: "+err.Error())
		return t
	}
	row("durable", rep2, sloOutcome(rep2))

	// Scenario 3: crash the durable node (torn bytes appended to its
	// active segment, no clean close happened for the tail) and reopen
	// from snapshot + log tail.
	outcome := func() string {
		if err := tearNewestSegment(dir); err != nil {
			return "tear: " + err.Error()
		}
		store, err := chainstore.Open(dir, nil)
		if err != nil {
			return "reopen: " + err.Error()
		}
		defer store.Close()
		m2, err := market.Open(market.Config{
			Seed:         cfg.Seed,
			GenesisAlloc: loadgen.GenesisAlloc(cfg.Seed, accounts, 1_000_000),
		}, store)
		if err != nil {
			return "recover: " + err.Error()
		}
		if m2.Height() != final.height {
			return fmt.Sprintf("LOST BLOCKS: recovered height %d, sealed %d", m2.Height(), final.height)
		}
		if m2.Chain.State().Root().Hex() != final.root {
			return "STATE DIVERGED after recovery"
		}
		return fmt.Sprintf("recovered @%d from snapshot @%d, root match", m2.Height(), m2.Chain.Base())
	}()
	t.AddRow("crash+reopen", accounts, "-", "-", "-", "-", "-", outcome)

	t.Notes = append(t.Notes,
		"open-loop harness (internal/loadgen): ops fire on the wall clock at the offered rate; shed load is reported, never silently delayed",
		"crash+reopen appends torn bytes to the active log segment before reopening — recovery must truncate the tear and resume from snapshot + log tail",
		"the same harness is reproducible standalone: go run ./cmd/pds2-load (BENCH_<date>.json)")
	return t
}

// finalState captures where a load node's chain ended.
type finalState struct {
	height uint64
	root   string
}

// loadNode self-hosts a node (durable when dir is non-empty) on a
// loopback listener, runs the load config against it over real HTTP,
// and tears it down cleanly except for the store, which is abandoned
// un-closed when durable — the crash scenario reopens it.
func loadNode(cfg loadgen.Config, dir string) (*loadgen.Report, finalState, error) {
	var fin finalState
	var store *chainstore.Store
	if dir != "" {
		var err error
		if store, err = chainstore.Open(dir, nil); err != nil {
			return nil, fin, err
		}
	}
	m, err := market.Open(market.Config{
		Seed:         cfg.Seed,
		GenesisAlloc: loadgen.GenesisAlloc(cfg.Seed, cfg.Accounts, 1_000_000),
		MempoolSize:  100_000,
	}, store)
	if err != nil {
		return nil, fin, err
	}
	if store != nil {
		store.AttachSnapshotting(m.Chain, 25)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fin, err
	}
	hs := &http.Server{Handler: api.NewServer(m, true)}
	go func() { _ = hs.Serve(ln) }()
	cfg.Target = "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		client := api.NewClient(cfg.Target)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			if st, err := client.Status(ctx); err == nil && st.Pending > 0 {
				_, _ = client.Seal(ctx)
			}
		}
	}()

	rep, runErr := loadgen.Run(ctx, cfg)
	cancel()
	shutCtx, done := context.WithTimeout(context.Background(), 2*time.Second)
	_ = hs.Shutdown(shutCtx)
	done()
	fin = finalState{height: m.Height(), root: m.Chain.State().Root().Hex()}
	// The store is deliberately NOT closed: the crash scenario reopens
	// it as a killed process would find it.
	return rep, fin, runErr
}

// tearNewestSegment simulates dying mid-append: a frame header
// promising more bytes than were written lands at the log's tail.
func tearNewestSegment(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "segments", "seg-*.log"))
	if err != nil || len(names) == 0 {
		return fmt.Errorf("no segments found: %v", err)
	}
	f, err := os.OpenFile(names[len(names)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte{0x00, 0x00, 0x40, 0x00, 0xDE, 0xAD, 0xBE, 0xEF})
	return err
}
