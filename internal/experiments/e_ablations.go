package experiments

import (
	"fmt"
	"math"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/gossip"
	"pds2/internal/ml"
	"pds2/internal/reward"
	"pds2/internal/simnet"
)

// The A-series tables are the ablations DESIGN.md §4 calls out: they
// vary one design choice at a time and measure its effect.

// A1MergeRules ablates the gossip merge rule.
func A1MergeRules(quick bool) Table {
	t := Table{
		ID:         "A1",
		Title:      "Ablation: gossip merge rule",
		PaperClaim: "[22]: age-weighted merging dominates overwrite and plain averaging",
		Columns:    []string{"merge-rule", "err@50%", "err@end", "spread(max-min)"},
	}
	nodes, horizon := 50, 1200*simnet.Second
	if quick {
		nodes, horizon = 20, 400*simnet.Second
	}
	for _, rule := range []gossip.MergeRule{gossip.MergeNone, gossip.MergeAverage, gossip.MergeAgeWeighted} {
		rng := crypto.NewDRBGFromUint64(31, "a1")
		data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: nodes * 40, Dim: 10, LabelNoise: 0.05}, rng)
		train, test := data.TrainTestSplit(0.2, rng)
		parts := train.PartitionIID(nodes, rng)
		net := simnet.New(simnet.Config{Seed: 31})
		r, err := gossip.NewRunner(net, parts, gossip.Config{
			Cycle:        10 * simnet.Second,
			ModelFactory: func() ml.Model { return ml.NewLogisticModel(10, 1e-2) },
			Merge:        rule,
		})
		if err != nil {
			t.AddRow(rule.String(), "ERROR", err.Error(), "")
			continue
		}
		hist := r.Track(test, horizon/4)
		r.Start()
		net.Run(horizon)
		h := *hist
		final := r.Evaluate(test)
		t.AddRow(rule.String(), h[1].MeanError, final.MeanError, final.MaxError-final.MinError)
	}
	return t
}

// A2ViewSize ablates the peer-sampling view size under churn.
func A2ViewSize(quick bool) Table {
	t := Table{
		ID:         "A2",
		Title:      "Ablation: peer-sampling view size under 50% churn",
		PaperClaim: "partial views must be large enough to keep the overlay connected when half the nodes are offline",
		Columns:    []string{"view-size", "err@end", "messages-delivered%"},
	}
	nodes, horizon := 50, 1200*simnet.Second
	if quick {
		nodes, horizon = 20, 400*simnet.Second
	}
	for _, view := range []int{2, 4, 8, 16} {
		rng := crypto.NewDRBGFromUint64(32, "a2")
		data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: nodes * 40, Dim: 10, LabelNoise: 0.05}, rng)
		train, test := data.TrainTestSplit(0.2, rng)
		parts := train.PartitionIID(nodes, rng)
		net := simnet.New(simnet.Config{Seed: 32})
		r, err := gossip.NewRunner(net, parts, gossip.Config{
			Cycle:        10 * simnet.Second,
			ModelFactory: func() ml.Model { return ml.NewLogisticModel(10, 1e-2) },
			Merge:        gossip.MergeAgeWeighted,
			ViewSize:     view,
		})
		if err != nil {
			t.AddRow(view, "ERROR", err.Error())
			continue
		}
		tr := simnet.GenerateChurn(nodes, horizon, 60*simnet.Second, 60*simnet.Second,
			crypto.NewDRBGFromUint64(32, "churn"))
		tr.Apply(net)
		r.Start()
		net.Run(horizon)
		st := net.Stats()
		delivered := float64(st.MessagesDelivered) / float64(st.MessagesSent+1) * 100
		t.AddRow(view, r.Evaluate(test).MeanError, fmt.Sprintf("%.0f%%", delivered))
	}
	return t
}

// A3TMCTolerance ablates the truncated-Monte-Carlo truncation threshold.
func A3TMCTolerance(quick bool) Table {
	t := Table{
		ID:         "A3",
		Title:      "Ablation: TMC-Shapley truncation tolerance",
		PaperClaim: "[30]: looser truncation saves model trainings at bounded attribution error",
		Columns:    []string{"tolerance", "evaluations", "wall", "max-err-vs-exact"},
	}
	n := 12
	samples := 200
	if quick {
		n, samples = 10, 60
	}
	rng := crypto.NewDRBGFromUint64(33, "a3")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 60 * n, Dim: 6, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.3, rng)
	parts := train.PartitionIID(n, rng)
	fn := reward.DataValueFn(parts, test, func() ml.Model { return ml.NewLogisticModel(6, 1e-3) }, 1)
	exact, _, err := reward.ExactShapley(n, fn)
	if err != nil {
		t.Notes = append(t.Notes, "exact failed: "+err.Error())
		return t
	}
	for _, tol := range []float64{0.005, 0.02, 0.05, 0.1} {
		start := time.Now()
		approx, evals, err := reward.TMCShapley(n, fn, samples, tol, rng.Fork(fmt.Sprintf("tol-%v", tol)))
		if err != nil {
			t.AddRow(tol, "ERROR", err.Error(), "")
			continue
		}
		var maxErr float64
		for i := range exact {
			if e := math.Abs(approx[i] - exact[i]); e > maxErr {
				maxErr = e
			}
		}
		t.AddRow(tol, evals, time.Since(start).Round(time.Millisecond), maxErr)
	}
	return t
}

func init() {
	All = append(All,
		Experiment{"A1", "ablation: gossip merge rule", A1MergeRules},
		Experiment{"A2", "ablation: peer-sampling view size", A2ViewSize},
		Experiment{"A3", "ablation: TMC truncation tolerance", A3TMCTolerance},
	)
}
