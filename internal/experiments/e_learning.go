package experiments

import (
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/fed"
	"pds2/internal/gossip"
	"pds2/internal/ml"
	"pds2/internal/simnet"
)

// learningSetup builds the shared gossip/federated test bed.
type learningSetup struct {
	train, test *ml.Dataset
	nodes       int
	dim         int
}

func newLearningSetup(quick bool, seed uint64, nonIID bool) (*learningSetup, []*ml.Dataset, *crypto.DRBG) {
	nodes, samples, dim := 100, 5000, 10
	if quick {
		nodes, samples = 20, 1500
	}
	rng := crypto.NewDRBGFromUint64(seed, "learning")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: samples, Dim: dim, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.2, rng)
	var parts []*ml.Dataset
	if nonIID {
		parts = train.PartitionByLabel(nodes, rng)
	} else {
		parts = train.PartitionIID(nodes, rng)
	}
	return &learningSetup{train: train, test: test, nodes: nodes, dim: dim}, parts, rng
}

// E6GossipVsFed reproduces the gossip-vs-federated comparison of [25]:
// 0-1 error over time and over transferred bytes, under IID and
// single-class non-IID assignment, with and without churn.
func E6GossipVsFed(quick bool) Table {
	t := Table{
		ID:         "E6",
		Title:      "Gossip learning vs federated learning",
		PaperClaim: "§III-C: \"recent studies suggest that gossip learning compares favorably to federated learning\" [25]; gossip avoids the central coordinator's bottleneck and trust issues",
		Columns:    []string{"scenario", "protocol", "err@25%", "err@50%", "err@end", "MB-sent", "server-share"},
	}
	// [25] compares the protocols over long horizons; gossip's mean node
	// error keeps descending well past the point where FedAvg plateaus,
	// so the full-size run uses 4800 s (~480 gossip cycles).
	horizon := simnet.Time(4800) * simnet.Second
	if quick {
		horizon = 400 * simnet.Second
	}
	type scen struct {
		name   string
		nonIID bool
		churn  bool
	}
	scens := []scen{{"iid", false, false}, {"non-iid(1class)", true, false}, {"iid+churn50%", false, true}}
	for si, sc := range scens {
		seed := uint64(60 + si)

		// Gossip run.
		setup, parts, _ := newLearningSetup(quick, seed, sc.nonIID)
		gnet := simnet.New(simnet.Config{Seed: seed, Latency: simnet.UniformLatency{Min: 10 * simnet.Millisecond, Max: 150 * simnet.Millisecond}})
		gr, err := gossip.NewRunner(gnet, parts, gossip.Config{
			Cycle:        10 * simnet.Second,
			ModelFactory: func() ml.Model { return ml.NewLogisticModel(setup.dim, 1e-2) },
			Merge:        gossip.MergeAgeWeighted,
		})
		if err != nil {
			t.AddRow(sc.name, "gossip", "ERROR", err.Error(), "", "", "")
			continue
		}
		if sc.churn {
			tr := simnet.GenerateChurn(setup.nodes, horizon, 60*simnet.Second, 60*simnet.Second,
				crypto.NewDRBGFromUint64(seed, "churn"))
			tr.Apply(gnet)
		}
		ghist := gr.Track(setup.test, horizon/8)
		gr.Start()
		gnet.Run(horizon)
		gp := *ghist
		t.AddRow(sc.name, "gossip",
			gp[1].MeanError, gp[3].MeanError, gp[len(gp)-1].MeanError,
			fmt.Sprintf("%.1f", float64(gnet.Stats().BytesSent)/1e6), "0%")

		// Federated run on identically distributed data.
		setup, parts, _ = newLearningSetup(quick, seed, sc.nonIID)
		fnet := simnet.New(simnet.Config{Seed: seed, Latency: simnet.UniformLatency{Min: 10 * simnet.Millisecond, Max: 150 * simnet.Millisecond}})
		fr, err := fed.NewRunner(fnet, parts, fed.Config{
			Round:          10 * simnet.Second,
			ModelFactory:   func() ml.Model { return ml.NewLogisticModel(setup.dim, 1e-2) },
			ClientFraction: 0.2,
		})
		if err != nil {
			t.AddRow(sc.name, "fedavg", "ERROR", err.Error(), "", "", "")
			continue
		}
		if sc.churn {
			tr := simnet.GenerateChurn(setup.nodes+1, horizon, 60*simnet.Second, 60*simnet.Second,
				crypto.NewDRBGFromUint64(seed, "churn"))
			// Never churn the server (node 0 in fed's network).
			kept := tr.Events[:0]
			for _, ev := range tr.Events {
				if ev.Node != fr.ServerID() {
					kept = append(kept, ev)
				}
			}
			tr.Events = kept
			tr.Apply(fnet)
		}
		fhist := fr.Track(setup.test, horizon/8)
		fr.Start()
		fnet.Run(horizon)
		fp := *fhist
		server := fnet.NodeStats(fr.ServerID())
		share := float64(server.BytesSent+server.BytesDelivered) /
			float64(fnet.Stats().BytesSent+fnet.Stats().BytesDelivered+1) * 100
		t.AddRow(sc.name, "fedavg",
			fp[1].Error, fp[3].Error, fp[len(fp)-1].Error,
			fmt.Sprintf("%.1f", float64(fnet.Stats().BytesSent)/1e6),
			fmt.Sprintf("%.0f%%", share))
	}
	t.Notes = append(t.Notes,
		"server-share: fraction of all traffic touching the coordinator (gossip has none — the §III-C bottleneck argument)",
		"err@k%: mean node (gossip) / global (fed) 0-1 error after k% of the horizon")
	return t
}

// E7Heterogeneity reproduces the heterogeneous-capacity scenario of
// [26]: slow devices drag the overlay unless token-based flow control
// limits their participation.
func E7Heterogeneity(quick bool) Table {
	t := Table{
		ID:         "E7",
		Title:      "Gossip under heterogeneous device capacities",
		PaperClaim: "§III-C: gossip learning \"can be extended to work in constrained and highly heterogeneous environments\" [26]",
		Columns:    []string{"config", "mean-err", "max-err", "slow-node-msgs", "total-msgs"},
	}
	nodes := 50
	horizon := 1200 * simnet.Second
	if quick {
		nodes, horizon = 20, 400*simnet.Second
	}
	slowFrac := 0.3
	run := func(name string, hetero bool, sendFraction float64, seed uint64) {
		rng := crypto.NewDRBGFromUint64(seed, "e7")
		data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: nodes * 40, Dim: 10, LabelNoise: 0.05}, rng)
		train, test := data.TrainTestSplit(0.2, rng)
		parts := train.PartitionIID(nodes, rng)
		caps := make([]float64, nodes)
		nSlow := int(slowFrac * float64(nodes))
		for i := range caps {
			caps[i] = 1
			if hetero && i < nSlow {
				caps[i] = 0.1
			}
		}
		net := simnet.New(simnet.Config{Seed: seed})
		r, err := gossip.NewRunner(net, parts, gossip.Config{
			Cycle:        10 * simnet.Second,
			ModelFactory: func() ml.Model { return ml.NewLogisticModel(10, 1e-2) },
			Merge:        gossip.MergeAgeWeighted,
			Capacities:   caps,
			SendFraction: sendFraction,
		})
		if err != nil {
			t.AddRow(name, "ERROR", err.Error(), "", "")
			return
		}
		r.Start()
		net.Run(horizon)
		p := r.Evaluate(test)
		var slowMsgs int64
		for i, id := range r.NodeIDs() {
			if hetero && i < nSlow {
				slowMsgs += net.NodeStats(id).MessagesSent
			}
		}
		t.AddRow(name, p.MeanError, p.MaxError, slowMsgs,
			fmt.Sprintf("%d (%.2f MB)", net.Stats().MessagesSent, float64(net.Stats().BytesSent)/1e6))
	}
	run("uniform", false, 0, 71)
	run("hetero(30% at 0.1x)", true, 0, 71)
	run("hetero+subsample(25%)", true, 0.25, 71)
	t.Notes = append(t.Notes,
		"slow nodes gossip at one tenth the rate; the overlay still converges because fast nodes route around them",
		"subsampling sends 25% of the coordinates per message — the constrained-device adaptation of [26] — cutting bytes ~4x at a modest error cost")
	return t
}
