package semantic

import (
	"errors"
	"testing"
)

// FuzzParse checks that the predicate parser never panics and that any
// successfully parsed expression can be rendered and re-parsed to an
// equivalent expression (evaluation agreement on a fixed metadata set).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`samples > 100`,
		`category isa "sensor" and not (region == "eu" or has restricted)`,
		`a in [1, 2, "x", true]`,
		`x contains "y" and z <= -4.5`,
		`((((a == 1))))`,
		`not not not has a`,
		"", "(", `"`, `a >`, `a in []`, `𝛼 == 1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	m := Metadata{
		"samples":  Number(500),
		"category": String("sensor.temperature"),
		"region":   String("eu"),
		"a":        Number(1),
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := expr.String()
		again, err := Parse(rendered)
		if err != nil {
			// Rendering parenthesizes every "not", so an input parsed
			// just under MaxParseDepth can legitimately render past it.
			if errors.Is(err, ErrTooDeep) {
				return
			}
			t.Fatalf("re-parse of %q (from %q) failed: %v", rendered, src, err)
		}
		if expr.Eval(m) != again.Eval(m) {
			t.Fatalf("round trip changed semantics: %q vs %q", src, rendered)
		}
		// Leakage analysis must not panic either.
		_ = Analyze(expr).Score()
	})
}
