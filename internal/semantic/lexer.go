// Package semantic implements the data discovery and filtering layer of
// PDS² (§IV-C): machine-readable metadata for datasets, a predicate
// language in which consumers express "the data requirements of [the]
// workload", an evaluator the storage subsystem runs to match provider
// data against workloads without reading the data itself, and a leakage
// score quantifying "the amount of information leaked by the metadata" —
// the §IV-C trade-off between expressiveness and privacy.
//
// The predicate grammar:
//
//	expr   := or
//	or     := and ("or" and)*
//	and    := unary ("and" unary)*
//	unary  := "not" unary | "(" expr ")" | comparison
//	comparison :=
//	       "has" FIELD
//	     | FIELD "isa" STRING          (ontology subsumption)
//	     | FIELD "contains" STRING
//	     | FIELD ("=="|"!="|"<"|"<="|">"|">=") value
//	     | FIELD "in" "[" value ("," value)* "]"
//	value  := STRING | NUMBER | "true" | "false"
//
// Example: `category isa "sensor.temperature" and samples >= 100 and not
// (region == "restricted")`.
package semantic

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokOp     // == != < <= > >= + - * / % =
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokLBrace // {
	tokRBrace // }
	tokComma
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits a predicate string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the source or returns a position-annotated error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '[':
			l.emit(tokLBrack, "[")
		case c == ']':
			l.emit(tokRBrack, "]")
		case c == '{':
			l.emit(tokLBrace, "{")
		case c == '}':
			l.emit(tokRBrace, "}")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '=' || c == '!' || c == '<' || c == '>':
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		case c == '+' || c == '*' || c == '/' || c == '%':
			l.emit(tokOp, string(c))
		case c == '-':
			// '-' is a number sign only when a digit follows and the
			// previous token cannot end an expression; everywhere else it
			// is the subtraction / negation operator of the program
			// dialect. This keeps predicate literals like `>= -5` intact
			// while letting `a - 1` and `-x` lex as operators.
			if l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) && !l.prevEndsValue() {
				if err := l.lexNumber(); err != nil {
					return nil, err
				}
			} else {
				l.emit(tokOp, "-")
			}
		case unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			return nil, fmt.Errorf("semantic: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
	l.pos += len(text)
}

// prevEndsValue reports whether the last emitted token can terminate an
// expression, which disambiguates '-' between subtraction and a number
// sign.
func (l *lexer) prevEndsValue() bool {
	if len(l.toks) == 0 {
		return false
	}
	switch l.toks[len(l.toks)-1].kind {
	case tokIdent, tokNumber, tokString, tokRParen, tokRBrack:
		return true
	}
	return false
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("semantic: unterminated string at %d", start)
}

func (l *lexer) lexOp() error {
	start := l.pos
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "==" || two == "!=" || two == "<=" || two == ">=":
		l.toks = append(l.toks, token{kind: tokOp, text: two, pos: start})
		l.pos += 2
	case c == '<' || c == '>' || c == '=':
		l.toks = append(l.toks, token{kind: tokOp, text: string(c), pos: start})
		l.pos++
	default:
		return fmt.Errorf("semantic: invalid operator at %d", start)
	}
	return nil
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	digits := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			digits = true
			l.pos++
		} else if c == '.' {
			l.pos++
		} else {
			break
		}
	}
	if !digits {
		return fmt.Errorf("semantic: malformed number at %d", start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' {
			l.pos++
		} else {
			break
		}
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}
