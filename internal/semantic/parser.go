package semantic

import (
	"errors"
	"fmt"
	"strconv"
)

// MaxParseDepth bounds expression and statement nesting. The limit keeps
// both parsers (predicate and program dialect) on bounded recursion for
// arbitrary input, and — because the bytecode compiler maps nesting
// depth to operand-stack depth — statically bounds the VM stack.
const MaxParseDepth = 100

// ErrTooDeep is wrapped by parse errors raised when input nests deeper
// than MaxParseDepth.
var ErrTooDeep = errors.New("nesting exceeds depth limit")

// Parse compiles a predicate string into an evaluable expression.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("semantic: trailing input at %d", p.peek().pos)
	}
	return e, nil
}

// MustParse is Parse for statically-known predicates; it panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks  []token
	pos   int
	depth int
}

func (p *parser) peek() token { return p.toks[p.pos] }

// push enters one nesting level, failing once the depth limit is hit.
// Every call must be paired with pop on the success path.
func (p *parser) push(pos int) error {
	p.depth++
	if p.depth > MaxParseDepth {
		return fmt.Errorf("semantic: %w at %d", ErrTooDeep, pos)
	}
	return nil
}

func (p *parser) pop() { p.depth-- }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// acceptIdent consumes the next token if it is the given keyword.
func (p *parser) acceptIdent(kw string) bool {
	if p.peek().kind == tokIdent && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "or", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "and", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if err := p.push(p.peek().pos); err != nil {
		return nil, err
	}
	defer p.pop()
	if p.acceptIdent("not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notExpr{inner: inner}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("semantic: missing ')' at %d", p.peek().pos)
		}
		p.next()
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	if p.acceptIdent("has") {
		f := p.next()
		if f.kind != tokIdent {
			return nil, fmt.Errorf("semantic: 'has' needs a field at %d", f.pos)
		}
		return &hasExpr{field: f.text}, nil
	}
	f := p.next()
	if f.kind != tokIdent {
		return nil, fmt.Errorf("semantic: expected field at %d", f.pos)
	}
	switch reservedWord(f.text) {
	case true:
		return nil, fmt.Errorf("semantic: reserved word %q used as field at %d", f.text, f.pos)
	}
	op := p.next()
	switch {
	case op.kind == tokOp:
		// The lexer also produces arithmetic tokens for the program
		// dialect; the predicate grammar only compares.
		switch op.text {
		case "==", "!=", "<", "<=", ">", ">=":
		default:
			return nil, fmt.Errorf("semantic: invalid comparison operator %q at %d", op.text, op.pos)
		}
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return &cmpExpr{field: f.text, op: op.text, value: val}, nil
	case op.kind == tokIdent && (op.text == "contains" || op.text == "isa"):
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if val.Kind != KindString {
			return nil, fmt.Errorf("semantic: %q requires a string at %d", op.text, op.pos)
		}
		return &cmpExpr{field: f.text, op: op.text, value: val}, nil
	case op.kind == tokIdent && op.text == "in":
		if p.peek().kind != tokLBrack {
			return nil, fmt.Errorf("semantic: 'in' needs '[' at %d", p.peek().pos)
		}
		p.next()
		var values []Value
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			values = append(values, v)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tokRBrack {
			return nil, fmt.Errorf("semantic: missing ']' at %d", p.peek().pos)
		}
		p.next()
		return &inExpr{field: f.text, values: values}, nil
	default:
		return nil, fmt.Errorf("semantic: expected operator after %q at %d", f.text, op.pos)
	}
}

func (p *parser) parseValue() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return String(t.text), nil
	case tokNumber:
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("semantic: bad number %q at %d", t.text, t.pos)
		}
		return Number(n), nil
	case tokIdent:
		switch t.text {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		}
	}
	return Value{}, fmt.Errorf("semantic: expected value at %d", t.pos)
}

func reservedWord(s string) bool {
	switch s {
	case "and", "or", "not", "has", "in", "contains", "isa", "true", "false":
		return true
	}
	return false
}
