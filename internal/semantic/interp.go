package semantic

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// This file is the reference evaluator for the program dialect: a
// tree-walking interpreter whose only job is to be obviously correct.
// The bytecode VM in internal/vm is differentially tested against it —
// on verdicts, errors, state writes, events, AND the exact
// gas-exhaustion point. To make that last property hold, both engines
// share one cost discipline (CostStep per abstract machine step, charged
// before the step's work) and this interpreter charges in the precise
// order the compiled opcode sequence would execute. Comments on each
// charge name the opcode it mirrors; changing compilation order in
// internal/vm requires the matching change here.
//
// All value operations, host-call plumbing, and error constructors live
// here and are exported for internal/vm: a single implementation cannot
// diverge, and error text is part of the contract (receipts carry it).

// CostStep is the gas charged for one VM dispatch step — and, in the
// reference interpreter, for the abstract step mirroring it.
const CostStep uint64 = 2

// MaxLoopIters bounds the total number of loop back-edges one execution
// may take; combined with forward-only jumps it proves termination even
// under an unbounded gas budget.
const MaxLoopIters = 1 << 16

// ErrLoopBound is returned when an execution exceeds MaxLoopIters
// back-edges.
var ErrLoopBound = errors.New("program: loop iteration bound exceeded")

// VerdictOK is the decision code of an allow verdict (mirrors
// policy.CodeOK without importing internal/policy).
const VerdictOK = "ok"

// Verdict is the outcome of a policy program: a decision code and, for
// denials, the clause blamed.
type Verdict struct {
	Code   string
	Clause string
}

// Allowed reports whether the verdict permits the request.
func (v Verdict) Allowed() bool { return v.Code == VerdictOK }

// Request is the evaluation input a policy program reads through the
// layer/class/purpose/agg/height/uses variables.
type Request struct {
	Layer       string
	Class       string
	Purpose     string
	Aggregation uint64
	Height      uint64
	Invocations uint64
}

// Host is the execution environment of a policy program: gas accounting,
// the request under evaluation, a state partition, event emission, and
// the built-in five-clause evaluator. Both the reference interpreter and
// the bytecode VM run against the same Host, so gas charged inside host
// calls is engine-independent by construction.
type Host interface {
	// UseGas charges n gas, returning the runtime's out-of-gas error
	// once the budget is exhausted.
	UseGas(n uint64) error
	// Request returns the request under evaluation.
	Request() Request
	// Load reads a key from the program's state partition; a nil/empty
	// result means absent.
	Load(key string) ([]byte, error)
	// Store writes a key in the program's state partition.
	Store(key string, val []byte) error
	// EmitEvent appends an event with the given topic and payload.
	EmitEvent(topic string, data []byte) error
	// EvalBuiltin runs the built-in five-clause policy evaluator and
	// returns the decision code.
	EvalBuiltin(classes []string, minAgg, expiry uint64, purposes []string, maxInv uint64) (string, error)
}

// --- shared value operations (used verbatim by internal/vm) ---

// MaxStateKeyLen caps program storage keys.
const MaxStateKeyLen = 256

func errNonBool(v Value) error {
	return fmt.Errorf("program: condition must be a bool, got %s", v)
}

func errBinaryType(op string, a, b Value) error {
	return fmt.Errorf("program: cannot apply %q to %s and %s", op, a, b)
}

// ErrDivisionByZero is returned by / and % with a zero divisor.
var ErrDivisionByZero = errors.New("program: division by zero")

// TruthOf coerces a condition value, failing on non-booleans.
func TruthOf(v Value) (bool, error) {
	if v.Kind != KindBool {
		return false, errNonBool(v)
	}
	return v.B, nil
}

// ApplyUnary applies "not" or unary "-".
func ApplyUnary(op string, v Value) (Value, error) {
	switch op {
	case "not":
		if v.Kind != KindBool {
			return Value{}, fmt.Errorf("program: cannot apply %q to %s", op, v)
		}
		return Bool(!v.B), nil
	case "-":
		if v.Kind != KindNumber {
			return Value{}, fmt.Errorf("program: cannot apply %q to %s", op, v)
		}
		return Number(-v.N), nil
	}
	return Value{}, fmt.Errorf("program: unknown unary operator %q", op)
}

// ApplyBinary applies a non-short-circuit binary operator.
func ApplyBinary(op string, a, b Value) (Value, error) {
	switch op {
	case "+":
		if a.Kind == KindNumber && b.Kind == KindNumber {
			return Number(a.N + b.N), nil
		}
		if a.Kind == KindString && b.Kind == KindString {
			return String(a.S + b.S), nil
		}
		return Value{}, errBinaryType(op, a, b)
	case "-", "*":
		if a.Kind != KindNumber || b.Kind != KindNumber {
			return Value{}, errBinaryType(op, a, b)
		}
		if op == "-" {
			return Number(a.N - b.N), nil
		}
		return Number(a.N * b.N), nil
	case "/", "%":
		if a.Kind != KindNumber || b.Kind != KindNumber {
			return Value{}, errBinaryType(op, a, b)
		}
		if b.N == 0 {
			return Value{}, ErrDivisionByZero
		}
		if op == "/" {
			return Number(a.N / b.N), nil
		}
		return Number(math.Mod(a.N, b.N)), nil
	case "==":
		return Bool(a.Equal(b)), nil
	case "!=":
		return Bool(!a.Equal(b)), nil
	case "<", "<=", ">", ">=":
		if a.Kind == KindNumber && b.Kind == KindNumber {
			return Bool(cmpOrder(op, a.N < b.N, a.N == b.N)), nil
		}
		if a.Kind == KindString && b.Kind == KindString {
			return Bool(cmpOrder(op, a.S < b.S, a.S == b.S)), nil
		}
		return Value{}, errBinaryType(op, a, b)
	case "contains":
		return Bool(a.Kind == KindString && b.Kind == KindString &&
			strings.Contains(a.S, b.S)), nil
	case "isa":
		// Same ontology subsumption as the predicate dialect.
		if a.Kind != KindString || b.Kind != KindString {
			return Bool(false), nil
		}
		return Bool(a.S == b.S || strings.HasPrefix(a.S, b.S+".")), nil
	}
	return Value{}, fmt.Errorf("program: unknown operator %q", op)
}

func cmpOrder(op string, lt, eq bool) bool {
	switch op {
	case "<":
		return lt
	case "<=":
		return lt || eq
	case ">":
		return !lt && !eq
	default: // ">="
		return !lt
	}
}

// ReqValue projects one field of the request as a Value.
func ReqValue(req Request, f ReqField) Value {
	switch f {
	case ReqLayer:
		return String(req.Layer)
	case ReqClass:
		return String(req.Class)
	case ReqPurpose:
		return String(req.Purpose)
	case ReqAgg:
		return Number(float64(req.Aggregation))
	case ReqHeight:
		return Number(float64(req.Height))
	default: // ReqUses
		return Number(float64(req.Invocations))
	}
}

// --- stored value / event payload codec ---

// Stored-value tags.
const (
	tagString byte = 1
	tagNumber byte = 2
	tagBool   byte = 3
)

// EncodeValue serializes a Value for program state storage; the result
// is never empty, so "stored false" and "absent" stay distinct.
func EncodeValue(v Value) []byte {
	switch v.Kind {
	case KindString:
		return append([]byte{tagString}, v.S...)
	case KindNumber:
		bits := math.Float64bits(v.N)
		return []byte{tagNumber,
			byte(bits >> 56), byte(bits >> 48), byte(bits >> 40), byte(bits >> 32),
			byte(bits >> 24), byte(bits >> 16), byte(bits >> 8), byte(bits)}
	default:
		if v.B {
			return []byte{tagBool, 1}
		}
		return []byte{tagBool, 0}
	}
}

// DecodeValue reverses EncodeValue.
func DecodeValue(b []byte) (Value, error) {
	if len(b) == 0 {
		return Value{}, fmt.Errorf("program: empty stored value")
	}
	switch b[0] {
	case tagString:
		return String(string(b[1:])), nil
	case tagNumber:
		if len(b) != 9 {
			return Value{}, fmt.Errorf("program: malformed stored number")
		}
		bits := uint64(b[1])<<56 | uint64(b[2])<<48 | uint64(b[3])<<40 | uint64(b[4])<<32 |
			uint64(b[5])<<24 | uint64(b[6])<<16 | uint64(b[7])<<8 | uint64(b[8])
		return Number(math.Float64frombits(bits)), nil
	case tagBool:
		if len(b) != 2 {
			return Value{}, fmt.Errorf("program: malformed stored bool")
		}
		return Bool(b[1] != 0), nil
	}
	return Value{}, fmt.Errorf("program: unknown stored value tag %d", b[0])
}

// EncodeEventData frames emit arguments as length-prefixed encoded
// values.
func EncodeEventData(args []Value) []byte {
	var out []byte
	for _, v := range args {
		ev := EncodeValue(v)
		out = append(out, byte(len(ev)>>8), byte(len(ev)))
		out = append(out, ev...)
	}
	return out
}

// DecodeEventData reverses EncodeEventData.
func DecodeEventData(b []byte) ([]Value, error) {
	var out []Value
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("program: truncated event frame")
		}
		n := int(b[0])<<8 | int(b[1])
		b = b[2:]
		if len(b) < n {
			return nil, fmt.Errorf("program: truncated event frame")
		}
		v, err := DecodeValue(b[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = b[n:]
	}
	return out, nil
}

// --- shared host-call plumbing ---

func stateKey(key Value) (string, error) {
	if key.Kind != KindString {
		return "", fmt.Errorf("program: storage key must be a string, got %s", key)
	}
	if len(key.S) > MaxStateKeyLen {
		return "", fmt.Errorf("program: storage key exceeds %d bytes", MaxStateKeyLen)
	}
	return key.S, nil
}

// HostLoad reads a value from the host state partition; absent keys read
// as false.
func HostLoad(h Host, key Value) (Value, error) {
	k, err := stateKey(key)
	if err != nil {
		return Value{}, err
	}
	raw, err := h.Load(k)
	if err != nil {
		return Value{}, err
	}
	if len(raw) == 0 {
		return Bool(false), nil
	}
	v, err := DecodeValue(raw)
	if err != nil {
		return Value{}, fmt.Errorf("program: corrupt stored value at key %q", k)
	}
	return v, nil
}

// HostStore writes a value into the host state partition.
func HostStore(h Host, key, val Value) error {
	k, err := stateKey(key)
	if err != nil {
		return err
	}
	return h.Store(k, EncodeValue(val))
}

// HostEmit encodes and emits a program event.
func HostEmit(h Host, topic string, args []Value) error {
	return h.EmitEvent(topic, EncodeEventData(args))
}

// valueUint converts an evaluate() argument to a non-negative integer.
func valueUint(v Value, what string) (uint64, error) {
	if v.Kind != KindNumber || v.N < 0 || v.N != math.Trunc(v.N) || v.N > 1<<53 {
		return 0, fmt.Errorf("program: evaluate %s must be a non-negative integer, got %s", what, v)
	}
	return uint64(v.N), nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// HostEvalBuiltin validates and dispatches an evaluate(classes, minagg,
// expiry, purposes, maxinv) call, returning the decision code as a
// string value.
func HostEvalBuiltin(h Host, args []Value) (Value, error) {
	if args[0].Kind != KindString || args[3].Kind != KindString {
		return Value{}, fmt.Errorf("program: evaluate classes and purposes must be strings, got %s and %s", args[0], args[3])
	}
	minAgg, err := valueUint(args[1], "minagg")
	if err != nil {
		return Value{}, err
	}
	expiry, err := valueUint(args[2], "expiry")
	if err != nil {
		return Value{}, err
	}
	maxInv, err := valueUint(args[4], "maxinv")
	if err != nil {
		return Value{}, err
	}
	code, err := h.EvalBuiltin(splitCSV(args[0].S), minAgg, expiry, splitCSV(args[3].S), maxInv)
	if err != nil {
		return Value{}, err
	}
	return String(code), nil
}

// ClauseOf maps a decision code to the policy clause it blames,
// mirroring internal/policy's code→clause pairing without the import.
func ClauseOf(code string) string {
	switch code {
	case "policy_expired":
		return "expiry_height"
	case "class_forbidden":
		return "allowed_classes"
	case "purpose_mismatch":
		return "purposes"
	case "aggregation_floor":
		return "min_aggregation"
	case "invocations_exhausted":
		return "max_invocations"
	}
	return ""
}

// ClauseOfValue is the clauseof(code) builtin.
func ClauseOfValue(v Value) (Value, error) {
	if v.Kind != KindString {
		return Value{}, fmt.Errorf("program: clauseof needs a string, got %s", v)
	}
	return String(ClauseOf(v.S)), nil
}

// DenyVerdict validates deny operands and builds the verdict.
func DenyVerdict(code, clause Value) (Verdict, error) {
	if code.Kind != KindString || clause.Kind != KindString {
		return Verdict{}, fmt.Errorf("program: deny needs string code and clause, got %s and %s", code, clause)
	}
	return Verdict{Code: code.S, Clause: clause.S}, nil
}

// --- the reference interpreter ---

type interp struct {
	h      Host
	req    Request
	locals []Value
	iters  uint64
}

// RunProgram executes a program against a host with the reference
// tree-walking evaluator. It is the differential oracle for
// vm.Execute: same verdicts, same errors, same host-call sequence, and
// the same gas-exhaustion point.
func RunProgram(p *Program, h Host) (Verdict, error) {
	in := &interp{h: h, req: h.Request(), locals: make([]Value, p.NumLocals)}
	for i := range in.locals {
		in.locals[i] = Bool(false)
	}
	halted, v, err := in.execBlock(p.Stmts)
	if err != nil {
		return Verdict{}, err
	}
	if halted {
		return v, nil
	}
	// Mirrors the implicit trailing OpAllow the compiler appends.
	if err := in.step(); err != nil {
		return Verdict{}, err
	}
	return Verdict{Code: VerdictOK}, nil
}

// step charges the dispatch cost of one abstract opcode.
func (in *interp) step() error { return in.h.UseGas(CostStep) }

// execBlock runs statements until one halts the program.
func (in *interp) execBlock(stmts []Stmt) (bool, Verdict, error) {
	for _, s := range stmts {
		halted, v, err := in.execStmt(s)
		if err != nil || halted {
			return halted, v, err
		}
	}
	return false, Verdict{}, nil
}

func (in *interp) execStmt(s Stmt) (bool, Verdict, error) {
	switch s := s.(type) {
	case *LetStmt:
		v, err := in.eval(s.X)
		if err != nil {
			return false, Verdict{}, err
		}
		if err := in.step(); err != nil { // OpStoreLocal
			return false, Verdict{}, err
		}
		in.locals[s.Slot] = v
		return false, Verdict{}, nil

	case *IfStmt:
		c, err := in.eval(s.Cond)
		if err != nil {
			return false, Verdict{}, err
		}
		if err := in.step(); err != nil { // OpJumpFalse
			return false, Verdict{}, err
		}
		t, err := TruthOf(c)
		if err != nil {
			return false, Verdict{}, err
		}
		if t {
			halted, v, err := in.execBlock(s.Then)
			if err != nil || halted {
				return halted, v, err
			}
			if len(s.Else) > 0 {
				if err := in.step(); err != nil { // OpJump over else
					return false, Verdict{}, err
				}
			}
			return false, Verdict{}, nil
		}
		return in.execBlock(s.Else)

	case *ForStmt:
		from, err := in.eval(s.From)
		if err != nil {
			return false, Verdict{}, err
		}
		if err := in.step(); err != nil { // OpStoreLocal i
			return false, Verdict{}, err
		}
		in.locals[s.Slot] = from
		to, err := in.eval(s.To)
		if err != nil {
			return false, Verdict{}, err
		}
		if err := in.step(); err != nil { // OpStoreLocal limit
			return false, Verdict{}, err
		}
		in.locals[s.LimitSlot] = to
		for {
			// Loop head: OpLoadLocal i, OpLoadLocal limit, OpLe,
			// OpJumpFalse.
			for j := 0; j < 3; j++ {
				if err := in.step(); err != nil {
					return false, Verdict{}, err
				}
			}
			cond, err := ApplyBinary("<=", in.locals[s.Slot], in.locals[s.LimitSlot])
			if err != nil {
				return false, Verdict{}, err
			}
			if err := in.step(); err != nil { // OpJumpFalse
				return false, Verdict{}, err
			}
			t, err := TruthOf(cond)
			if err != nil {
				return false, Verdict{}, err
			}
			if !t {
				return false, Verdict{}, nil
			}
			halted, v, err := in.execBlock(s.Body)
			if err != nil || halted {
				return halted, v, err
			}
			// Increment: OpLoadLocal i, OpPush 1, OpAdd, OpStoreLocal i.
			for j := 0; j < 3; j++ {
				if err := in.step(); err != nil {
					return false, Verdict{}, err
				}
			}
			next, err := ApplyBinary("+", in.locals[s.Slot], Number(1))
			if err != nil {
				return false, Verdict{}, err
			}
			if err := in.step(); err != nil { // OpStoreLocal i
				return false, Verdict{}, err
			}
			in.locals[s.Slot] = next
			if err := in.step(); err != nil { // OpLoop back-edge
				return false, Verdict{}, err
			}
			in.iters++
			if in.iters > MaxLoopIters {
				return false, Verdict{}, ErrLoopBound
			}
		}

	case *AllowStmt:
		if err := in.step(); err != nil { // OpAllow
			return false, Verdict{}, err
		}
		return true, Verdict{Code: VerdictOK}, nil

	case *DenyStmt:
		code, err := in.eval(s.Code)
		if err != nil {
			return false, Verdict{}, err
		}
		clause, err := in.eval(s.Clause)
		if err != nil {
			return false, Verdict{}, err
		}
		if err := in.step(); err != nil { // OpDeny
			return false, Verdict{}, err
		}
		v, err := DenyVerdict(code, clause)
		if err != nil {
			return false, Verdict{}, err
		}
		return true, v, nil

	case *EmitStmt:
		args := make([]Value, len(s.Args))
		for i, a := range s.Args {
			v, err := in.eval(a)
			if err != nil {
				return false, Verdict{}, err
			}
			args[i] = v
		}
		if err := in.step(); err != nil { // OpEmit
			return false, Verdict{}, err
		}
		return false, Verdict{}, HostEmit(in.h, s.Topic, args)

	case *StoreStmt:
		key, err := in.eval(s.Key)
		if err != nil {
			return false, Verdict{}, err
		}
		val, err := in.eval(s.Val)
		if err != nil {
			return false, Verdict{}, err
		}
		if err := in.step(); err != nil { // OpStore
			return false, Verdict{}, err
		}
		return false, Verdict{}, HostStore(in.h, key, val)
	}
	return false, Verdict{}, fmt.Errorf("program: unknown statement %T", s)
}

func (in *interp) eval(e PExpr) (Value, error) {
	switch e := e.(type) {
	case *LitExpr:
		if err := in.step(); err != nil { // OpPush
			return Value{}, err
		}
		return e.V, nil

	case *VarExpr:
		if err := in.step(); err != nil { // OpLoadLocal
			return Value{}, err
		}
		return in.locals[e.Slot], nil

	case *ReqExpr:
		if err := in.step(); err != nil { // OpLoadReq
			return Value{}, err
		}
		return ReqValue(in.req, e.Field), nil

	case *UnExpr:
		x, err := in.eval(e.X)
		if err != nil {
			return Value{}, err
		}
		if err := in.step(); err != nil { // OpNot / OpNeg
			return Value{}, err
		}
		return ApplyUnary(e.Op, x)

	case *BinExpr:
		switch e.Op {
		case "and", "or":
			// Compiled as X; JumpFalse/JumpTrue L; Y; Jump end;
			// L: Push false/true; end: — so the short-circuit path
			// costs two steps after X, the long path one step after Y.
			x, err := in.eval(e.X)
			if err != nil {
				return Value{}, err
			}
			if err := in.step(); err != nil { // OpJumpFalse / OpJumpTrue
				return Value{}, err
			}
			t, err := TruthOf(x)
			if err != nil {
				return Value{}, err
			}
			if (e.Op == "and" && !t) || (e.Op == "or" && t) {
				if err := in.step(); err != nil { // OpPush short-circuit value
					return Value{}, err
				}
				return Bool(t), nil
			}
			y, err := in.eval(e.Y)
			if err != nil {
				return Value{}, err
			}
			if err := in.step(); err != nil { // OpJump past the push
				return Value{}, err
			}
			return y, nil
		}
		x, err := in.eval(e.X)
		if err != nil {
			return Value{}, err
		}
		y, err := in.eval(e.Y)
		if err != nil {
			return Value{}, err
		}
		if err := in.step(); err != nil { // the binary opcode
			return Value{}, err
		}
		return ApplyBinary(e.Op, x, y)

	case *CallExpr:
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			v, err := in.eval(a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		if err := in.step(); err != nil { // the host-call opcode
			return Value{}, err
		}
		switch e.Fn {
		case "load":
			return HostLoad(in.h, args[0])
		case "clauseof":
			return ClauseOfValue(args[0])
		case "evaluate":
			return HostEvalBuiltin(in.h, args)
		}
		return Value{}, fmt.Errorf("program: unknown builtin %q", e.Fn)
	}
	return Value{}, fmt.Errorf("program: unknown expression %T", e)
}
