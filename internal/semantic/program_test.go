package semantic

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// progHost is a minimal in-memory Host for interpreter unit tests.
type progHost struct {
	gas    uint64
	req    Request
	state  map[string][]byte
	events []struct {
		topic string
		data  []byte
	}
	builtinCode string
}

var errHostOOG = errors.New("out of gas")

func (h *progHost) UseGas(n uint64) error {
	if h.gas < n {
		h.gas = 0
		return errHostOOG
	}
	h.gas -= n
	return nil
}
func (h *progHost) Request() Request { return h.req }
func (h *progHost) Load(key string) ([]byte, error) {
	return h.state[key], nil
}
func (h *progHost) Store(key string, val []byte) error {
	if h.state == nil {
		h.state = make(map[string][]byte)
	}
	h.state[key] = val
	return nil
}
func (h *progHost) EmitEvent(topic string, data []byte) error {
	h.events = append(h.events, struct {
		topic string
		data  []byte
	}{topic, data})
	return nil
}
func (h *progHost) EvalBuiltin([]string, uint64, uint64, []string, uint64) (string, error) {
	if err := h.UseGas(500); err != nil {
		return "", err
	}
	if h.builtinCode == "" {
		return VerdictOK, nil
	}
	return h.builtinCode, nil
}

func runSrc(t *testing.T, src string, h *progHost) (Verdict, error) {
	t.Helper()
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram(%q): %v", src, err)
	}
	return RunProgram(p, h)
}

func TestRunProgramVerdicts(t *testing.T) {
	cases := []struct {
		src        string
		wantCode   string
		wantClause string
	}{
		{`allow`, "ok", ""},
		{``, "ok", ""}, // implicit allow
		{`deny "class_forbidden" "allowed_classes"`, "class_forbidden", "allowed_classes"},
		{`if agg < 5 { deny "aggregation_floor" "min_aggregation" } allow`, "aggregation_floor", "min_aggregation"},
		{`if agg >= 5 { deny "x" "y" } allow`, "ok", ""},
		{`let c = "purpose_mismatch" deny c clauseof(c)`, "purpose_mismatch", "purposes"},
		{`let n = 0 for i = 1 to 4 { n = n + i } if n == 10 { allow } deny "sum" ""`, "ok", ""},
		{`if class == "train" or class == "stats" { allow } deny "class_forbidden" clauseof("class_forbidden")`, "ok", ""},
		{`let v = evaluate("train,stats", 1, 0, "", 0) if v == "ok" { allow } deny v clauseof(v)`, "ok", ""},
	}
	for _, tc := range cases {
		h := &progHost{gas: 1 << 20, req: Request{Class: "train", Aggregation: 3}}
		v, err := runSrc(t, tc.src, h)
		if err != nil {
			t.Errorf("run(%q): %v", tc.src, err)
			continue
		}
		if v.Code != tc.wantCode || v.Clause != tc.wantClause {
			t.Errorf("run(%q) = %+v, want code=%q clause=%q", tc.src, v, tc.wantCode, tc.wantClause)
		}
	}
}

func TestRunProgramStateAndEvents(t *testing.T) {
	src := `
		let seen = load("seen")
		if seen == false { store("seen", 1) } else { store("seen", seen + 1) }
		emit("audit", class, agg, seen)
		allow`
	h := &progHost{gas: 1 << 20, req: Request{Class: "train", Aggregation: 2}}
	if _, err := runSrc(t, src, h); err != nil {
		t.Fatal(err)
	}
	v, err := DecodeValue(h.state["seen"])
	if err != nil || !v.Equal(Number(1)) {
		t.Fatalf("seen = %v (%v), want 1", v, err)
	}
	// Second run increments.
	h.gas = 1 << 20
	if _, err := runSrc(t, src, h); err != nil {
		t.Fatal(err)
	}
	if v, _ = DecodeValue(h.state["seen"]); !v.Equal(Number(2)) {
		t.Fatalf("seen after second run = %v, want 2", v)
	}
	if len(h.events) != 2 {
		t.Fatalf("events = %d, want 2", len(h.events))
	}
	vals, err := DecodeEventData(h.events[1].data)
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{String("train"), Number(2), Number(1)}
	if len(vals) != len(want) {
		t.Fatalf("event args = %v", vals)
	}
	for i := range want {
		if !vals[i].Equal(want[i]) {
			t.Errorf("event arg %d = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestRunProgramErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`let x = 1 / 0 allow`, "division by zero"},
		{`let x = 1 + "s" allow`, `cannot apply "+"`},
		{`if 5 { allow }`, "condition must be a bool"},
		{`deny 1 2`, "deny needs string code"},
		{`store(5, 1)`, "storage key must be a string"},
		{`let x = not 3 allow`, `cannot apply "not"`},
		{`let x = evaluate("a", -1, 0, "", 0) allow`, "non-negative integer"},
		{`for i = 0 to 100000 { }`, "loop iteration bound"},
	}
	for _, tc := range cases {
		h := &progHost{gas: 1 << 62}
		_, err := runSrc(t, tc.src, h)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("run(%q) err = %v, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

// TestRunProgramGasExhaustion verifies out-of-gas surfaces the host
// error and that the total cost of a fixed program is deterministic.
func TestRunProgramGasExhaustion(t *testing.T) {
	src := `let n = 0 for i = 1 to 8 { n = n + i store("n", n) } allow`
	full := &progHost{gas: 1 << 30}
	if _, err := runSrc(t, src, full); err != nil {
		t.Fatal(err)
	}
	used := 1<<30 - full.gas
	if used == 0 {
		t.Fatal("program used no gas")
	}
	// Re-running with the exact budget succeeds; one less fails.
	if _, err := runSrc(t, src, &progHost{gas: used}); err != nil {
		t.Fatalf("exact budget failed: %v", err)
	}
	if _, err := runSrc(t, src, &progHost{gas: used - 1}); !errors.Is(err, errHostOOG) {
		t.Fatalf("budget-1 err = %v, want host OOG", err)
	}
	// Every budget below the requirement fails with OOG, never panics.
	for g := uint64(0); g < used; g += 7 {
		if _, err := runSrc(t, src, &progHost{gas: g}); !errors.Is(err, errHostOOG) {
			t.Fatalf("budget %d err = %v, want host OOG", g, err)
		}
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []Value{
		String(""), String("hello"), String(strings.Repeat("x", 300)),
		Number(0), Number(-12.5), Number(1 << 52), Bool(true), Bool(false),
	}
	for _, v := range vals {
		enc := EncodeValue(v)
		if len(enc) == 0 {
			t.Fatalf("EncodeValue(%v) empty", v)
		}
		got, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
	for _, bad := range [][]byte{{}, {0}, {9, 1}, {2, 1, 2}, {3}, {3, 1, 2}} {
		if _, err := DecodeValue(bad); err == nil {
			t.Errorf("DecodeValue(%v) succeeded", bad)
		}
	}
	if _, err := DecodeEventData([]byte{0, 5, 1}); err == nil {
		t.Error("truncated event frame accepted")
	}
}

func TestReqFieldNames(t *testing.T) {
	for f := ReqField(0); f < NumReqFields; f++ {
		name := f.String()
		got, ok := reqFieldByName(name)
		if !ok || got != f {
			t.Errorf("field %d name %q does not round trip", f, name)
		}
	}
	if fmt.Sprint(ReqField(99)) != "req(99)" {
		t.Error("out-of-range field name")
	}
}
