package semantic

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a metadata value: a string, a number or a boolean.
type Value struct {
	Kind ValueKind
	S    string
	N    float64
	B    bool
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	KindString ValueKind = iota
	KindNumber
	KindBool
)

// String builds a string value.
func String(s string) Value { return Value{Kind: KindString, S: s} }

// Number builds a numeric value.
func Number(n float64) Value { return Value{Kind: KindNumber, N: n} }

// Bool builds a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Equal compares two values of any kind.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.S == o.S
	case KindNumber:
		return v.N == o.N
	default:
		return v.B == o.B
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return strconv.Quote(v.S)
	case KindNumber:
		return strconv.FormatFloat(v.N, 'g', -1, 64)
	default:
		return strconv.FormatBool(v.B)
	}
}

// Metadata is the machine-readable description a provider attaches to a
// dataset. Field names are dotted paths ("device.model"); values follow
// the ontology conventions of the deployment.
type Metadata map[string]Value

// Expr is a parsed predicate node.
type Expr interface {
	// Eval evaluates the predicate against metadata.
	Eval(m Metadata) bool

	// String renders the node back to predicate syntax.
	String() string

	// leakage accumulates the leakage/complexity statistics.
	leakage(stats *LeakageStats)
}

// binaryExpr is "and" / "or".
type binaryExpr struct {
	op    string // "and" | "or"
	left  Expr
	right Expr
}

func (e *binaryExpr) Eval(m Metadata) bool {
	if e.op == "and" {
		return e.left.Eval(m) && e.right.Eval(m)
	}
	return e.left.Eval(m) || e.right.Eval(m)
}

func (e *binaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.left, e.op, e.right)
}

func (e *binaryExpr) leakage(st *LeakageStats) {
	st.Nodes++
	e.left.leakage(st)
	e.right.leakage(st)
}

// notExpr is negation.
type notExpr struct{ inner Expr }

func (e *notExpr) Eval(m Metadata) bool { return !e.inner.Eval(m) }
func (e *notExpr) String() string       { return fmt.Sprintf("(not %s)", e.inner) }
func (e *notExpr) leakage(st *LeakageStats) {
	st.Nodes++
	e.inner.leakage(st)
}

// hasExpr checks field presence.
type hasExpr struct{ field string }

func (e *hasExpr) Eval(m Metadata) bool {
	_, ok := m[e.field]
	return ok
}
func (e *hasExpr) String() string { return "has " + e.field }
func (e *hasExpr) leakage(st *LeakageStats) {
	st.Nodes++
	st.addField(e.field, leakPresence)
}

// cmpExpr is a field-against-constant comparison.
type cmpExpr struct {
	field string
	op    string // == != < <= > >= contains isa
	value Value
}

func (e *cmpExpr) Eval(m Metadata) bool {
	v, ok := m[e.field]
	if !ok {
		return false
	}
	switch e.op {
	case "==":
		return v.Equal(e.value)
	case "!=":
		return !v.Equal(e.value)
	case "contains":
		return v.Kind == KindString && e.value.Kind == KindString &&
			strings.Contains(v.S, e.value.S)
	case "isa":
		// Ontology subsumption over dotted category paths:
		// "sensor.temperature.indoor" isa "sensor.temperature".
		if v.Kind != KindString || e.value.Kind != KindString {
			return false
		}
		return v.S == e.value.S || strings.HasPrefix(v.S, e.value.S+".")
	case "<", "<=", ">", ">=":
		if v.Kind != KindNumber || e.value.Kind != KindNumber {
			return false
		}
		switch e.op {
		case "<":
			return v.N < e.value.N
		case "<=":
			return v.N <= e.value.N
		case ">":
			return v.N > e.value.N
		default:
			return v.N >= e.value.N
		}
	default:
		return false
	}
}

func (e *cmpExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.field, e.op, e.value)
}

func (e *cmpExpr) leakage(st *LeakageStats) {
	st.Nodes++
	switch e.op {
	case "==", "!=":
		st.addField(e.field, leakExact)
	case "isa", "contains":
		st.addField(e.field, leakCategory)
	default:
		st.addField(e.field, leakRange)
	}
}

// inExpr is set membership.
type inExpr struct {
	field  string
	values []Value
}

func (e *inExpr) Eval(m Metadata) bool {
	v, ok := m[e.field]
	if !ok {
		return false
	}
	for _, cand := range e.values {
		if v.Equal(cand) {
			return true
		}
	}
	return false
}

func (e *inExpr) String() string {
	parts := make([]string, len(e.values))
	for i, v := range e.values {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s in [%s]", e.field, strings.Join(parts, ", "))
}

func (e *inExpr) leakage(st *LeakageStats) {
	st.Nodes++
	st.addField(e.field, leakExact)
}

// Leakage weights per comparison granularity: learning the exact value of
// a field reveals more than learning a range, which reveals more than
// mere presence. These weights realize §IV-C's "tradeoff between the
// amount of information leaked by the metadata and the complexity of the
// verifiable requirements".
const (
	leakPresence = 1.0
	leakCategory = 2.0
	leakRange    = 2.0
	leakExact    = 3.0
)

// LeakageStats quantifies what a predicate reveals about matching data.
type LeakageStats struct {
	Nodes  int                // AST size: requirement complexity
	Fields map[string]float64 // per-field maximum leakage weight
}

func (st *LeakageStats) addField(field string, weight float64) {
	if st.Fields == nil {
		st.Fields = make(map[string]float64)
	}
	if st.Fields[field] < weight {
		st.Fields[field] = weight
	}
}

// Score is the total leakage: the sum of per-field weights. A storage
// subsystem can refuse to evaluate predicates above a leakage budget.
func (st LeakageStats) Score() float64 {
	var s float64
	for _, w := range st.Fields {
		s += w
	}
	return s
}

// Analyze computes leakage statistics for a predicate.
func Analyze(e Expr) LeakageStats {
	var st LeakageStats
	e.leakage(&st)
	return st
}
