package semantic

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestLexerErrorPositions pins the exact error text — including the byte
// position — of every lexer rejection path. Positions are part of the
// compiler contract: FuzzCompile asserts every rejection is positioned.
func TestLexerErrorPositions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`a == @`, `semantic: unexpected character '@' at 5`},
		{"\x00", `semantic: unexpected character '\x00' at 0`},
		{`. == 1`, `semantic: unexpected character '.' at 0`},
		{`a == "unterminated`, `semantic: unterminated string at 5`},
		{`"`, `semantic: unterminated string at 0`},
		{`a == "esc\`, `semantic: unterminated string at 5`},
		{`a ! b`, `semantic: invalid operator at 2`},
		{`a == -`, `semantic: expected value at 5`},
		{`x == ---`, `semantic: expected value at 5`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want %q", tc.src, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.src, err.Error(), tc.want)
		}
	}
}

// TestParserErrorPositions pins parser-level rejection messages for the
// predicate dialect.
func TestParserErrorPositions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`(a == 1`, `semantic: missing ')' at 7`},
		{`a == 1)`, `semantic: trailing input at 6`},
		{`a in ["x"`, `semantic: missing ']' at 9`},
		{`a in (1)`, `semantic: 'in' needs '[' at 5`},
		{`has 5`, `semantic: 'has' needs a field at 4`},
		{`5 == 5`, `semantic: expected field at 0`},
		{`in == 1`, `semantic: reserved word "in" used as field at 0`},
		{`a isa 5`, `semantic: "isa" requires a string at 2`},
		{`a ==`, `semantic: expected value at 4`},
		{`a`, `semantic: expected operator after "a" at 1`},
		{`a + 1`, `semantic: invalid comparison operator "+" at 2`},
		{`a = 1`, `semantic: invalid comparison operator "=" at 2`},
		{`a % 2`, `semantic: invalid comparison operator "%" at 2`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want %q", tc.src, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.src, err.Error(), tc.want)
		}
	}
}

// TestParseDepthLimit drives both dialects past MaxParseDepth and
// verifies the sentinel wrap, then checks inputs just under the limit
// still parse.
func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("not ", MaxParseDepth+1) + "has a"
	if _, err := Parse(deep); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("Parse deep nots: err = %v, want ErrTooDeep", err)
	}
	deepParens := strings.Repeat("(", MaxParseDepth+1) + "a == 1" + strings.Repeat(")", MaxParseDepth+1)
	if _, err := Parse(deepParens); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("Parse deep parens: err = %v, want ErrTooDeep", err)
	}
	ok := strings.Repeat("not ", MaxParseDepth-2) + "has a"
	if _, err := Parse(ok); err != nil {
		t.Fatalf("Parse near-limit: %v", err)
	}

	deepExpr := "let x = " + strings.Repeat("(", MaxParseDepth+1) + "1" + strings.Repeat(")", MaxParseDepth+1)
	if _, err := ParseProgram(deepExpr); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("ParseProgram deep expr: err = %v, want ErrTooDeep", err)
	}
	var sb strings.Builder
	for i := 0; i < MaxParseDepth+1; i++ {
		sb.WriteString("if true { ")
	}
	sb.WriteString("allow")
	for i := 0; i < MaxParseDepth+1; i++ {
		sb.WriteString(" }")
	}
	if _, err := ParseProgram(sb.String()); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("ParseProgram deep blocks: err = %v, want ErrTooDeep", err)
	}
	// The depth error must be positioned like every other parse error.
	_, err := ParseProgram(sb.String())
	if err == nil || !strings.Contains(err.Error(), " at ") {
		t.Fatalf("depth error not positioned: %v", err)
	}
}

// TestProgramParseErrors pins program-dialect rejection messages.
func TestProgramParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`let 5 = 1`, `semantic: 'let' needs a variable name at 4`},
		{`let layer = 1`, `semantic: request field "layer" used as variable at 4`},
		{`let for = 1`, `semantic: reserved word "for" used as variable at 4`},
		{`let x = 1 let x = 2`, `semantic: variable "x" redeclared at 14`},
		{`let x = y`, `semantic: undeclared variable "y" at 8`},
		{`y = 1`, `semantic: expected statement at 0 (undeclared "y")`},
		{`if true { allow`, `semantic: missing '}' at 15`},
		{`if true allow }`, `semantic: expected '{' at 8`},
		{`for x = 1 3 { }`, `semantic: 'for' needs 'to' at 10`},
		{`emit(topic)`, `semantic: 'emit' needs a literal topic string at 5`},
		{`store("k")`, `semantic: 'store' needs ',' at 9`},
		{`deny "c"`, `semantic: expected expression at 8`},
		{`let x = load()`, `semantic: expected expression at 13`},
		{`let x = evaluate("a", 1)`, `semantic: "evaluate" takes 5 arguments, missing ',' at 23`},
		{`let x = 1 +`, `semantic: expected expression at 11`},
		{`allow }`, `semantic: expected statement at 6`},
	}
	for _, tc := range cases {
		_, err := ParseProgram(tc.src)
		if err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want %q", tc.src, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("ParseProgram(%q) = %q, want %q", tc.src, err.Error(), tc.want)
		}
	}
}

// TestTooManyLocals checks the MaxLocals cap fires with a positioned
// error.
func TestTooManyLocals(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= MaxLocals; i++ {
		fmt.Fprintf(&sb, "let v%d = 1\n", i)
	}
	_, err := ParseProgram(sb.String())
	if err == nil || !strings.Contains(err.Error(), "too many locals") {
		t.Fatalf("err = %v, want too-many-locals", err)
	}
}
