package semantic

import (
	"testing"
)

func meta() Metadata {
	return Metadata{
		"category":     String("sensor.temperature.indoor"),
		"samples":      Number(500),
		"region":       String("eu-north"),
		"calibrated":   Bool(true),
		"device.model": String("tk-300"),
	}
}

func evalOK(t *testing.T, src string, m Metadata) bool {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e.Eval(m)
}

func TestComparisons(t *testing.T) {
	m := meta()
	cases := []struct {
		src  string
		want bool
	}{
		{`samples == 500`, true},
		{`samples != 500`, false},
		{`samples > 499`, true},
		{`samples >= 500`, true},
		{`samples < 500`, false},
		{`samples <= 500`, true},
		{`region == "eu-north"`, true},
		{`region == "us-east"`, false},
		{`calibrated == true`, true},
		{`calibrated == false`, false},
		{`region contains "north"`, true},
		{`region contains "south"`, false},
		{`category isa "sensor.temperature"`, true},
		{`category isa "sensor"`, true},
		{`category isa "sensor.temperature.indoor"`, true},
		{`category isa "sensor.humidity"`, false},
		{`category isa "sensor.temp"`, false}, // no partial segments
		{`has calibrated`, true},
		{`has missing`, false},
		{`region in ["us-east", "eu-north"]`, true},
		{`region in ["us-east", "us-west"]`, false},
		{`samples in [100, 500]`, true},
		{`device.model == "tk-300"`, true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src, m); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBooleanStructure(t *testing.T) {
	m := meta()
	cases := []struct {
		src  string
		want bool
	}{
		{`samples > 100 and calibrated == true`, true},
		{`samples > 1000 and calibrated == true`, false},
		{`samples > 1000 or calibrated == true`, true},
		{`not (samples > 1000)`, true},
		{`not calibrated == true`, false},
		{`samples > 100 and (region == "us-east" or region == "eu-north")`, true},
		// Precedence: and binds tighter than or.
		{`samples > 1000 or samples > 100 and calibrated == true`, true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src, m); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestMissingFieldsFailClosed(t *testing.T) {
	m := Metadata{}
	for _, src := range []string{
		`samples > 0`, `region == "x"`, `region contains "x"`,
		`category isa "a"`, `region in ["x"]`,
	} {
		if evalOK(t, src, m) {
			t.Errorf("%q matched empty metadata", src)
		}
	}
}

func TestTypeMismatchFailsClosed(t *testing.T) {
	m := Metadata{"samples": String("not-a-number")}
	if evalOK(t, `samples > 5`, m) {
		t.Fatal("range comparison on string matched")
	}
	m2 := Metadata{"category": Number(5)}
	if evalOK(t, `category isa "sensor"`, m2) {
		t.Fatal("isa on number matched")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`samples >`,
		`samples > > 5`,
		`(samples > 5`,
		`samples > 5)`,
		`region == "unterminated`,
		`region in []`,
		`region in ["a"`,
		`and and`,
		`has`,
		`"string" == region`,
		`samples isa 5`,
		`not`,
		`samples @ 5`,
		`in in ["x"]`, // reserved word as field
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse(`samples >`)
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`samples > 100 and (region == "eu" or not has restricted)`,
		`category isa "sensor" and samples in [1, 2, 3]`,
	}
	m := meta()
	for _, src := range srcs {
		e := MustParse(src)
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", e.String(), err)
		}
		if e.Eval(m) != again.Eval(m) {
			t.Fatalf("round trip changed semantics for %q", src)
		}
	}
}

func TestLeakageScoring(t *testing.T) {
	// Exact matches leak more than ranges, ranges more than presence.
	exact := Analyze(MustParse(`region == "eu-north"`))
	rng := Analyze(MustParse(`samples > 100`))
	pres := Analyze(MustParse(`has samples`))
	if !(exact.Score() > rng.Score() && rng.Score() > pres.Score()) {
		t.Fatalf("leakage ordering violated: %v %v %v", exact.Score(), rng.Score(), pres.Score())
	}
}

func TestLeakagePerFieldMax(t *testing.T) {
	// The same field probed twice counts once, at its max granularity.
	st := Analyze(MustParse(`samples > 100 and samples == 500`))
	if len(st.Fields) != 1 {
		t.Fatalf("fields = %v", st.Fields)
	}
	if st.Fields["samples"] != leakExact {
		t.Fatalf("weight = %v", st.Fields["samples"])
	}
	// Distinct fields accumulate.
	st2 := Analyze(MustParse(`samples > 100 and region == "eu"`))
	if st2.Score() <= st.Score() {
		t.Fatal("two-field predicate should leak more")
	}
}

func TestComplexityCountsNodes(t *testing.T) {
	small := Analyze(MustParse(`samples > 1`))
	big := Analyze(MustParse(`samples > 1 and (a == 1 or not b == 2)`))
	if big.Nodes <= small.Nodes {
		t.Fatalf("node counts: %d vs %d", big.Nodes, small.Nodes)
	}
}

func TestValueString(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want string
	}{
		{String("a b"), `"a b"`},
		{Number(1.5), "1.5"},
		{Bool(true), "true"},
	} {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEscapedStrings(t *testing.T) {
	e := MustParse(`name == "say \"hi\""`)
	m := Metadata{"name": String(`say "hi"`)}
	if !e.Eval(m) {
		t.Fatal("escaped string mismatch")
	}
}

func TestNegativeNumbers(t *testing.T) {
	e := MustParse(`delta > -5.5`)
	if !e.Eval(Metadata{"delta": Number(-2)}) {
		t.Fatal("negative comparison failed")
	}
	if e.Eval(Metadata{"delta": Number(-7)}) {
		t.Fatal("negative comparison matched wrongly")
	}
}

func TestDeeplyNestedParse(t *testing.T) {
	src := `a == 1`
	for i := 0; i < 50; i++ {
		src = "(" + src + " or b == 2)"
	}
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep nesting failed: %v", err)
	}
}
