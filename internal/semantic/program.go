package semantic

import (
	"fmt"
	"strconv"
)

// This file defines the program dialect of the policy language: a small
// imperative layer over the predicate expression grammar, used to author
// deployable workload policies. A program reads the evaluation request
// (layer/class/purpose/agg/height/uses), may keep per-dataset state via
// load/store host calls, emits events, and terminates with an explicit
// allow, a deny carrying a decision code and clause, or by falling off
// the end (an implicit allow).
//
// Grammar (expressions reuse the predicate lexer):
//
//	program  := stmt*
//	stmt     := "let" IDENT "=" expr
//	          | IDENT "=" expr
//	          | "if" expr block ("else" (block | ifstmt))?
//	          | "for" IDENT "=" expr "to" expr block
//	          | "allow"
//	          | "deny" expr expr
//	          | "emit" "(" STRING ("," expr)* ")"
//	          | "store" "(" expr "," expr ")"
//	block    := "{" stmt* "}"
//	expr     := or ; or := and ("or" and)* ; and := cmp ("and" cmp)*
//	cmp      := add (("=="|"!="|"<"|"<="|">"|">="|"contains"|"isa") add)?
//	add      := mul (("+"|"-") mul)*
//	mul      := unary (("*"|"/"|"%") unary)*
//	unary    := "not" unary | "-" unary | primary
//	primary  := "(" expr ")" | STRING | NUMBER | "true" | "false"
//	          | "load" "(" expr ")" | "clauseof" "(" expr ")"
//	          | "evaluate" "(" expr "," expr "," expr "," expr "," expr ")"
//	          | REQVAR | IDENT
//
// Variables are flat-scoped and resolved to dense local slots at parse
// time: redeclaration and reads of undeclared names are parse errors, so
// neither evaluator needs a name table at run time.

// MaxLocals caps the number of local slots a program may declare; slot
// indexes must fit the one-byte operands of the bytecode ISA.
const MaxLocals = 128

// MaxEmitArgs caps the payload arity of an emit statement.
const MaxEmitArgs = 8

// ReqField names one field of the evaluation Request, addressed by index
// in both evaluators and the bytecode ISA.
type ReqField int

// Request fields, in wire order.
const (
	ReqLayer ReqField = iota
	ReqClass
	ReqPurpose
	ReqAgg
	ReqHeight
	ReqUses
	NumReqFields
)

var reqFieldNames = [NumReqFields]string{
	"layer", "class", "purpose", "agg", "height", "uses",
}

// String returns the source-level name of the field.
func (f ReqField) String() string {
	if f < 0 || f >= NumReqFields {
		return fmt.Sprintf("req(%d)", int(f))
	}
	return reqFieldNames[f]
}

func reqFieldByName(name string) (ReqField, bool) {
	for i, n := range reqFieldNames {
		if n == name {
			return ReqField(i), true
		}
	}
	return 0, false
}

// Program is a parsed policy program. NumLocals counts the dense local
// slots the statements reference; Source is the exact text it was parsed
// from (embedded in compiled artifacts for re-verification).
type Program struct {
	Stmts     []Stmt
	NumLocals int
	Source    string
}

// Stmt is one statement of a policy program.
type Stmt interface{ isStmt() }

// PExpr is one expression node of the program dialect. (Expr is taken by
// the predicate grammar.)
type PExpr interface{ isPExpr() }

// LetStmt is both declaration ("let x = e", Decl true) and assignment
// ("x = e"); by parse time both are a store to a resolved slot.
type LetStmt struct {
	Name string
	Slot int
	X    PExpr
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Cond PExpr
	Then []Stmt
	Else []Stmt
}

// ForStmt iterates Slot from From to To inclusive, stepping by one. The
// loop limit is evaluated once into the hidden LimitSlot.
type ForStmt struct {
	Name      string
	Slot      int
	LimitSlot int
	From      PExpr
	To        PExpr
	Body      []Stmt
}

// AllowStmt terminates the program with an allow verdict.
type AllowStmt struct{}

// DenyStmt terminates the program with a deny verdict carrying a
// decision code and clause (both must evaluate to strings).
type DenyStmt struct {
	Code   PExpr
	Clause PExpr
}

// EmitStmt emits a program event with a literal topic and encoded args.
type EmitStmt struct {
	Topic string
	Args  []PExpr
}

// StoreStmt writes Val under Key in the program's state partition.
type StoreStmt struct {
	Key PExpr
	Val PExpr
}

func (*LetStmt) isStmt()   {}
func (*IfStmt) isStmt()    {}
func (*ForStmt) isStmt()   {}
func (*AllowStmt) isStmt() {}
func (*DenyStmt) isStmt()  {}
func (*EmitStmt) isStmt()  {}
func (*StoreStmt) isStmt() {}

// LitExpr is a literal constant.
type LitExpr struct{ V Value }

// VarExpr reads a resolved local slot.
type VarExpr struct {
	Name string
	Slot int
}

// ReqExpr reads a field of the evaluation request.
type ReqExpr struct{ Field ReqField }

// UnExpr is "not" or unary "-".
type UnExpr struct {
	Op string
	X  PExpr
}

// BinExpr is a binary operator; "and"/"or" short-circuit.
type BinExpr struct {
	Op   string
	X, Y PExpr
}

// CallExpr is a host-call expression: load, clauseof or evaluate.
type CallExpr struct {
	Fn   string
	Args []PExpr
}

func (*LitExpr) isPExpr()  {}
func (*VarExpr) isPExpr()  {}
func (*ReqExpr) isPExpr()  {}
func (*UnExpr) isPExpr()   {}
func (*BinExpr) isPExpr()  {}
func (*CallExpr) isPExpr() {}

// programKeyword reports words that introduce statements or are builtin
// call names — unusable as variable names.
func programKeyword(s string) bool {
	switch s {
	case "let", "if", "else", "for", "to", "allow", "deny", "emit",
		"store", "load", "clauseof", "evaluate":
		return true
	}
	return false
}

// resolver assigns dense local slots to variable names at parse time.
type resolver struct {
	slots map[string]int
	next  int
}

func (r *resolver) declare(name string, pos int) (int, error) {
	if _, ok := r.slots[name]; ok {
		return 0, fmt.Errorf("semantic: variable %q redeclared at %d", name, pos)
	}
	if r.next >= MaxLocals {
		return 0, fmt.Errorf("semantic: too many locals (max %d) at %d", MaxLocals, pos)
	}
	if r.slots == nil {
		r.slots = make(map[string]int)
	}
	slot := r.next
	r.slots[name] = slot
	r.next++
	return slot, nil
}

func (r *resolver) hidden(pos int) (int, error) {
	if r.next >= MaxLocals {
		return 0, fmt.Errorf("semantic: too many locals (max %d) at %d", MaxLocals, pos)
	}
	slot := r.next
	r.next++
	return slot, nil
}

// checkName rejects names the program dialect reserves.
func checkName(name string, pos int) error {
	if programKeyword(name) || reservedWord(name) {
		return fmt.Errorf("semantic: reserved word %q used as variable at %d", name, pos)
	}
	if _, ok := reqFieldByName(name); ok {
		return fmt.Errorf("semantic: request field %q used as variable at %d", name, pos)
	}
	return nil
}

// ParseProgram parses policy-program source. All variable references are
// statically resolved; errors carry byte positions.
func ParseProgram(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	res := &resolver{}
	stmts, err := p.parseStmts(res, tokEOF)
	if err != nil {
		return nil, err
	}
	return &Program{Stmts: stmts, NumLocals: res.next, Source: src}, nil
}

// MustParseProgram is ParseProgram for statically-known programs.
func MustParseProgram(src string) *Program {
	prog, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// parseStmts parses statements until the closing token (tokRBrace for
// blocks, tokEOF at top level), which it consumes for blocks.
func (p *parser) parseStmts(res *resolver, until tokenKind) ([]Stmt, error) {
	stmts := []Stmt{}
	for {
		t := p.peek()
		if t.kind == until {
			if until != tokEOF {
				p.next()
			}
			return stmts, nil
		}
		if t.kind == tokEOF {
			return nil, fmt.Errorf("semantic: missing '}' at %d", t.pos)
		}
		s, err := p.parseStmt(res)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

// parseBlock parses "{" stmt* "}".
func (p *parser) parseBlock(res *resolver) ([]Stmt, error) {
	if err := p.push(p.peek().pos); err != nil {
		return nil, err
	}
	defer p.pop()
	if p.peek().kind != tokLBrace {
		return nil, fmt.Errorf("semantic: expected '{' at %d", p.peek().pos)
	}
	p.next()
	return p.parseStmts(res, tokRBrace)
}

func (p *parser) parseStmt(res *resolver) (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("semantic: expected statement at %d", t.pos)
	}
	switch t.text {
	case "let":
		p.next()
		name := p.next()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("semantic: 'let' needs a variable name at %d", name.pos)
		}
		if err := checkName(name.text, name.pos); err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		x, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		slot, err := res.declare(name.text, name.pos)
		if err != nil {
			return nil, err
		}
		return &LetStmt{Name: name.text, Slot: slot, X: x}, nil

	case "if":
		return p.parseIf(res)

	case "for":
		p.next()
		name := p.next()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("semantic: 'for' needs a variable name at %d", name.pos)
		}
		if err := checkName(name.text, name.pos); err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		from, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		if !p.acceptIdent("to") {
			return nil, fmt.Errorf("semantic: 'for' needs 'to' at %d", p.peek().pos)
		}
		to, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		slot, ok := res.slots[name.text]
		if !ok {
			if slot, err = res.declare(name.text, name.pos); err != nil {
				return nil, err
			}
		}
		limit, err := res.hidden(name.pos)
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock(res)
		if err != nil {
			return nil, err
		}
		return &ForStmt{Name: name.text, Slot: slot, LimitSlot: limit, From: from, To: to, Body: body}, nil

	case "allow":
		p.next()
		return &AllowStmt{}, nil

	case "deny":
		p.next()
		code, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		clause, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		return &DenyStmt{Code: code, Clause: clause}, nil

	case "emit":
		p.next()
		if p.peek().kind != tokLParen {
			return nil, fmt.Errorf("semantic: 'emit' needs '(' at %d", p.peek().pos)
		}
		p.next()
		topic := p.next()
		if topic.kind != tokString {
			return nil, fmt.Errorf("semantic: 'emit' needs a literal topic string at %d", topic.pos)
		}
		var args []PExpr
		for p.peek().kind == tokComma {
			p.next()
			a, err := p.parseExprP(res)
			if err != nil {
				return nil, err
			}
			if len(args) >= MaxEmitArgs {
				return nil, fmt.Errorf("semantic: 'emit' takes at most %d arguments at %d", MaxEmitArgs, p.peek().pos)
			}
			args = append(args, a)
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("semantic: missing ')' at %d", p.peek().pos)
		}
		p.next()
		return &EmitStmt{Topic: topic.text, Args: args}, nil

	case "store":
		p.next()
		if p.peek().kind != tokLParen {
			return nil, fmt.Errorf("semantic: 'store' needs '(' at %d", p.peek().pos)
		}
		p.next()
		key, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokComma {
			return nil, fmt.Errorf("semantic: 'store' needs ',' at %d", p.peek().pos)
		}
		p.next()
		val, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("semantic: missing ')' at %d", p.peek().pos)
		}
		p.next()
		return &StoreStmt{Key: key, Val: val}, nil
	}

	// Plain assignment: IDENT "=" expr.
	if slot, ok := res.slots[t.text]; ok {
		p.next()
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		x, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		return &LetStmt{Name: t.text, Slot: slot, X: x}, nil
	}
	return nil, fmt.Errorf("semantic: expected statement at %d (undeclared %q)", t.pos, t.text)
}

func (p *parser) parseIf(res *resolver) (Stmt, error) {
	p.next() // "if"
	cond, err := p.parseExprP(res)
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock(res)
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.acceptIdent("else") {
		if p.peek().kind == tokIdent && p.peek().text == "if" {
			chained, err := p.parseIf(res)
			if err != nil {
				return nil, err
			}
			els = []Stmt{chained}
		} else {
			if els, err = p.parseBlock(res); err != nil {
				return nil, err
			}
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) expectOp(text string) error {
	t := p.next()
	if t.kind != tokOp || t.text != text {
		return fmt.Errorf("semantic: expected %q at %d", text, t.pos)
	}
	return nil
}

// --- program expression grammar ---

func (p *parser) parseExprP(res *resolver) (PExpr, error) {
	return p.parseOrP(res)
}

func (p *parser) parseOrP(res *resolver) (PExpr, error) {
	left, err := p.parseAndP(res)
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("or") {
		right, err := p.parseAndP(res)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "or", X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseAndP(res *resolver) (PExpr, error) {
	left, err := p.parseCmpP(res)
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("and") {
		right, err := p.parseCmpP(res)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "and", X: left, Y: right}
	}
	return left, nil
}

// parseCmpP parses a non-associative comparison.
func (p *parser) parseCmpP(res *resolver) (PExpr, error) {
	left, err := p.parseAddP(res)
	if err != nil {
		return nil, err
	}
	t := p.peek()
	var op string
	switch {
	case t.kind == tokOp:
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			op = t.text
		default:
			return left, nil
		}
	case t.kind == tokIdent && (t.text == "contains" || t.text == "isa"):
		op = t.text
	default:
		return left, nil
	}
	p.next()
	right, err := p.parseAddP(res)
	if err != nil {
		return nil, err
	}
	return &BinExpr{Op: op, X: left, Y: right}, nil
}

func (p *parser) parseAddP(res *resolver) (PExpr, error) {
	left, err := p.parseMulP(res)
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		right, err := p.parseMulP(res)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseMulP(res *resolver) (PExpr, error) {
	left, err := p.parseUnaryP(res)
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "%") {
		op := p.next().text
		right, err := p.parseUnaryP(res)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseUnaryP(res *resolver) (PExpr, error) {
	if err := p.push(p.peek().pos); err != nil {
		return nil, err
	}
	defer p.pop()
	if p.acceptIdent("not") {
		x, err := p.parseUnaryP(res)
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "not", X: x}, nil
	}
	if p.peek().kind == tokOp && p.peek().text == "-" {
		p.next()
		x, err := p.parseUnaryP(res)
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimaryP(res)
}

func (p *parser) parsePrimaryP(res *resolver) (PExpr, error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		e, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("semantic: missing ')' at %d", p.peek().pos)
		}
		p.next()
		return e, nil
	case tokString:
		p.next()
		return &LitExpr{V: String(t.text)}, nil
	case tokNumber:
		p.next()
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("semantic: bad number %q at %d", t.text, t.pos)
		}
		return &LitExpr{V: Number(n)}, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.next()
			return &LitExpr{V: Bool(true)}, nil
		case "false":
			p.next()
			return &LitExpr{V: Bool(false)}, nil
		case "load", "clauseof":
			p.next()
			args, err := p.parseCallArgs(res, t.text, 1)
			if err != nil {
				return nil, err
			}
			return &CallExpr{Fn: t.text, Args: args}, nil
		case "evaluate":
			p.next()
			args, err := p.parseCallArgs(res, t.text, 5)
			if err != nil {
				return nil, err
			}
			return &CallExpr{Fn: t.text, Args: args}, nil
		}
		if f, ok := reqFieldByName(t.text); ok {
			p.next()
			return &ReqExpr{Field: f}, nil
		}
		if slot, ok := res.slots[t.text]; ok {
			p.next()
			return &VarExpr{Name: t.text, Slot: slot}, nil
		}
		if programKeyword(t.text) || reservedWord(t.text) {
			return nil, fmt.Errorf("semantic: unexpected keyword %q at %d", t.text, t.pos)
		}
		return nil, fmt.Errorf("semantic: undeclared variable %q at %d", t.text, t.pos)
	}
	return nil, fmt.Errorf("semantic: expected expression at %d", t.pos)
}

// parseCallArgs parses "(" expr ("," expr)* ")" with an exact arity.
func (p *parser) parseCallArgs(res *resolver, fn string, arity int) ([]PExpr, error) {
	if p.peek().kind != tokLParen {
		return nil, fmt.Errorf("semantic: %q needs '(' at %d", fn, p.peek().pos)
	}
	p.next()
	args := make([]PExpr, 0, arity)
	for i := 0; i < arity; i++ {
		if i > 0 {
			if p.peek().kind != tokComma {
				return nil, fmt.Errorf("semantic: %q takes %d arguments, missing ',' at %d", fn, arity, p.peek().pos)
			}
			p.next()
		}
		a, err := p.parseExprP(res)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if p.peek().kind != tokRParen {
		return nil, fmt.Errorf("semantic: missing ')' at %d", p.peek().pos)
	}
	p.next()
	return args, nil
}
