package proptest

import (
	"fmt"
	"strings"
)

// Greedy history shrinking: when a plan fails, chunks of ops are
// removed — halving the chunk size until single ops — keeping any
// candidate that still fails. Ops carry their own sub-seeds, so removal
// never perturbs the survivors' behaviour and every candidate replays
// deterministically.

// FailureFunc decides whether an executed plan still exhibits the
// failure being minimized. It must be deterministic in (cfg, plan).
type FailureFunc func(cfg Config, plan []Op) bool

// InvariantFailure is the standard oracle: the plan produces at least
// one invariant violation.
func InvariantFailure(cfg Config, plan []Op) bool {
	res, err := Run(cfg, plan)
	if err != nil {
		return false // setup failures are not the bug under minimization
	}
	return res.Failed()
}

// Shrink minimizes a failing plan under the oracle, returning the
// smallest still-failing plan found and the number of executions spent.
// The input plan must fail; Shrink never returns a passing plan.
func Shrink(cfg Config, plan []Op, fails FailureFunc) ([]Op, int) {
	runs := 0
	current := append([]Op(nil), plan...)
	for chunk := len(current) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(current); {
			candidate := make([]Op, 0, len(current)-chunk)
			candidate = append(candidate, current[:start]...)
			candidate = append(candidate, current[start+chunk:]...)
			runs++
			if fails(cfg, candidate) {
				current = candidate
				// Do not advance: the window now holds fresh ops.
				continue
			}
			start += chunk
		}
	}
	return current, runs
}

// MinimizeFailure runs a config, and on failure shrinks the plan and
// formats a replayable report. It returns nil when the run passes.
func MinimizeFailure(cfg Config) *FailureReport {
	plan := Plan(cfg)
	res, err := Run(cfg, plan)
	if err != nil {
		return &FailureReport{Config: cfg, SetupErr: err}
	}
	if !res.Failed() {
		return nil
	}
	minPlan, runs := Shrink(cfg, plan, InvariantFailure)
	minRes, _ := Run(cfg, minPlan)
	return &FailureReport{
		Config:     cfg,
		Plan:       minPlan,
		Violations: minRes.History.Violations,
		ShrinkRuns: runs,
		Original:   len(plan),
	}
}

// FailureReport is a minimized, replayable failure.
type FailureReport struct {
	Config     Config
	Plan       []Op
	Violations []Violation
	ShrinkRuns int
	Original   int
	SetupErr   error
}

// String renders the report with the exact reproduction recipe.
func (r *FailureReport) String() string {
	var b strings.Builder
	if r.SetupErr != nil {
		fmt.Fprintf(&b, "proptest: setup failed for seed %d: %v\n", r.Config.Seed, r.SetupErr)
		return b.String()
	}
	fmt.Fprintf(&b, "proptest: invariant failure, seed %d (plan shrunk %d -> %d ops in %d runs)\n",
		r.Config.Seed, r.Original, len(r.Plan), r.ShrinkRuns)
	fmt.Fprintf(&b, "reproduce: PDS2_PROPTEST_SEED=%d PDS2_PROPTEST_OPS=%d go test ./internal/proptest -run TestProptestSeedRepro -v\n",
		r.Config.Seed, r.Config.Ops)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	fmt.Fprintf(&b, "minimized plan:\n")
	for i, op := range r.Plan {
		fmt.Fprintf(&b, "  %3d %s\n", i, op)
	}
	return b.String()
}
