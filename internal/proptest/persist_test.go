package proptest

import (
	"testing"

	"pds2/internal/faults"
)

// TestPersistModeSurvivesKillEveryBlock is the crash-recovery oracle at
// maximum hostility: the durable replica is killed after every single
// imported block (torn bytes appended to the log each time) and must
// still converge to the exact root the in-memory import produces.
func TestPersistModeSurvivesKillEveryBlock(t *testing.T) {
	res, err := RunSeed(5, smokeOps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("baseline run violated invariants:\n%v", res.History.Violations)
	}
	data, err := ExportMarket(res.Market)
	if err != nil {
		t.Fatal(err)
	}
	want := runImportMode(data)
	if want.Err != nil {
		t.Fatalf("import mode rejected the chain: %v", want.Err)
	}

	sched := faults.Schedule{Name: "kill-always", Seed: 1, Rules: []faults.Rule{
		{Kind: faults.Kill, Rate: 1, Endpoint: "node.commit"},
	}}
	got, kills := persistReplay(data, sched)
	if got.Err != nil {
		t.Fatalf("persist mode failed: %v", got.Err)
	}
	if kills < len(res.History.Blocks) {
		t.Fatalf("only %d kills over %d blocks (schedule not firing)", kills, len(res.History.Blocks))
	}
	if got.Height != want.Height || got.Root != want.Root {
		t.Fatalf("persist diverged: %s vs %s", got, want)
	}
}

// TestPersistModeDeterministic pins that the persist oracle (including
// its derived kill schedule) is reproducible: same export, same result.
func TestPersistModeDeterministic(t *testing.T) {
	res, err := RunSeed(6, smokeOps)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ExportMarket(res.Market)
	if err != nil {
		t.Fatal(err)
	}
	a, b := runPersistMode(data), runPersistMode(data)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("persist errors: %v / %v", a.Err, b.Err)
	}
	if a.Height != b.Height || a.Root != b.Root {
		t.Fatalf("persist mode not deterministic: %s vs %s", a, b)
	}
	// And it fires at least sometimes under the default schedule across
	// the smoke seeds (rate 1/8 per block over dozens of blocks).
	_, kills := persistReplay(data, faults.KillRestart(uint64(len(data))*2654435761))
	if len(res.History.Blocks) >= 24 && kills == 0 {
		t.Logf("note: no kills fired for this export (%d blocks)", len(res.History.Blocks))
	}
}
