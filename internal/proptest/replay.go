package proptest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"pds2/internal/chainstore"
	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/faults"
	"pds2/internal/ledger"
	"pds2/internal/market"
)

// The differential replay oracle: every generated chain is executed
// six independent ways and any divergence — in acceptance, in height,
// or in final state root — is a correctness failure of the ledger's
// import pipeline.
//
//	import   — a fresh replica importing block-by-block (ImportBlock)
//	audit    — a read-only auditor verifying each block (VerifyBlock)
//	           before advancing, checking that verification itself is
//	           side-effect free
//	replay   — the ledger's own export/replay path (ledger.Replay)
//	persist  — a durable replica importing through a chainstore, killed
//	           mid-run (deterministic kill/restart schedule, torn bytes
//	           appended to the log to simulate a crash mid-write) and
//	           reopened from snapshot + log tail each time
//	parallel — serial and parallel-executor replicas importing in
//	           lockstep, compared block-by-block on receipts and event
//	           order on top of ImportBlock's own root check
//	vm       — a bytecode-VM replica and a reference-interpreter replica
//	           (deployed policy programs re-executed from embedded
//	           source by the tree-walking oracle) importing in lockstep,
//	           compared on receipts, events and roots

// MarketRuntime builds a contract runtime with the full marketplace
// code registry — the applier any replica must run to re-validate a
// market chain.
func MarketRuntime() (*contract.Runtime, error) {
	return market.NewRuntime()
}

// ModeResult is the outcome of one replay mode over one exported chain.
type ModeResult struct {
	Mode     string
	Err      error  // nil when the whole chain was accepted
	FailedAt uint64 // height of the first rejected block (0 = none)
	Height   uint64 // final height reached
	Root     crypto.Digest
}

func (m ModeResult) String() string {
	if m.Err != nil {
		return fmt.Sprintf("%s: rejected block %d: %v", m.Mode, m.FailedAt, m.Err)
	}
	return fmt.Sprintf("%s: height %d root %s", m.Mode, m.Height, m.Root.Short())
}

// ExportMarket serializes a market's chain into the portable form the
// replay modes consume.
func ExportMarket(m *market.Market) ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Chain.Export(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// freshReplica rebuilds an empty chain from an export's embedded
// genesis configuration, with the marketplace applier.
func freshReplica(exp *ledger.ChainExport) (*ledger.Chain, error) {
	rt, err := MarketRuntime()
	if err != nil {
		return nil, err
	}
	return ledger.NewChain(ledger.ChainConfig{
		Authorities:   exp.Authorities,
		BlockGasLimit: exp.BlockGasLimit,
		GenesisAlloc:  exp.GenesisAlloc,
		Applier:       rt,
	})
}

// parallelReplica is freshReplica with the optimistic parallel executor
// forced on: 8 workers regardless of GOMAXPROCS and a minimum batch of
// one, so every block — however small — runs through the scheduler.
func parallelReplica(exp *ledger.ChainExport) (*ledger.Chain, error) {
	rt, err := MarketRuntime()
	if err != nil {
		return nil, err
	}
	return ledger.NewChain(ledger.ChainConfig{
		Authorities:      exp.Authorities,
		BlockGasLimit:    exp.BlockGasLimit,
		GenesisAlloc:     exp.GenesisAlloc,
		Applier:          rt,
		ExecWorkers:      8,
		ParallelMinBatch: 1,
	})
}

// decodeExport parses exported chain bytes.
func decodeExport(data []byte) (*ledger.ChainExport, error) {
	var exp ledger.ChainExport
	if err := json.Unmarshal(data, &exp); err != nil {
		return nil, fmt.Errorf("proptest: decode export: %w", err)
	}
	return &exp, nil
}

// runImportMode replays the chain on a fresh replica through
// ImportBlock — the path a following node runs.
func runImportMode(data []byte) ModeResult {
	res := ModeResult{Mode: "import"}
	exp, err := decodeExport(data)
	if err != nil {
		res.Err = err
		return res
	}
	chain, err := freshReplica(exp)
	if err != nil {
		res.Err = err
		return res
	}
	for _, b := range exp.Blocks {
		if err := chain.ImportBlock(b); err != nil {
			res.Err = err
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = chain.State().Root()
			return res
		}
	}
	res.Height = chain.Height()
	res.Root = chain.State().Root()
	return res
}

// runAuditMode replays the chain on a fresh replica through
// VerifyBlock — the read-only auditor's path — checking after every
// verification that the state is bit-identical to before (verification
// must be a pure read), then advancing with ImportBlock.
func runAuditMode(data []byte) ModeResult {
	res := ModeResult{Mode: "audit"}
	exp, err := decodeExport(data)
	if err != nil {
		res.Err = err
		return res
	}
	chain, err := freshReplica(exp)
	if err != nil {
		res.Err = err
		return res
	}
	for _, b := range exp.Blocks {
		before := chain.State().Root()
		verr := chain.VerifyBlock(b)
		if after := chain.State().Root(); after != before {
			res.Err = fmt.Errorf("proptest: VerifyBlock mutated state: %s -> %s", before.Short(), after.Short())
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = after
			return res
		}
		if verr != nil {
			res.Err = verr
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = before
			return res
		}
		if err := chain.ImportBlock(b); err != nil {
			res.Err = fmt.Errorf("proptest: verified block failed import: %w", err)
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = chain.State().Root()
			return res
		}
	}
	res.Height = chain.Height()
	res.Root = chain.State().Root()
	return res
}

// runReplayMode replays the chain through the ledger's own
// export/replay API.
func runReplayMode(data []byte) ModeResult {
	res := ModeResult{Mode: "replay"}
	rt, err := MarketRuntime()
	if err != nil {
		res.Err = err
		return res
	}
	chain, err := ledger.Replay(bytes.NewReader(data), rt)
	if err != nil {
		res.Err = err
		return res
	}
	res.Height = chain.Height()
	res.Root = chain.State().Root()
	return res
}

// runPersistMode replays the chain on a durable replica: blocks import
// through a chain attached to a chainstore in a scratch directory, a
// snapshot is taken every few blocks, and a deterministic kill/restart
// schedule (faults.KillRestart) crashes the replica mid-run — torn
// bytes are appended to the active log segment to simulate dying inside
// a write, then the store is reopened and the chain rebuilt from
// snapshot + log tail before importing resumes. The final root must
// match every other mode: persistence must be invisible to consensus.
func runPersistMode(data []byte) ModeResult {
	// Seed the kill schedule from the export content so each generated
	// chain crashes at different (but reproducible) heights.
	res, _ := persistReplay(data, faults.KillRestart(uint64(len(data))*2654435761))
	return res
}

// persistReplay is the persist oracle with an explicit kill schedule;
// it also reports how many kill/restart cycles actually fired so
// harnesses can assert the crash path was exercised.
func persistReplay(data []byte, sched faults.Schedule) (ModeResult, int) {
	res := ModeResult{Mode: "persist"}
	kills := 0
	exp, err := decodeExport(data)
	if err != nil {
		res.Err = err
		return res, kills
	}
	dir, err := os.MkdirTemp("", "pds2-persist-*")
	if err != nil {
		res.Err = err
		return res, kills
	}
	defer os.RemoveAll(dir)

	inj := faults.NewInjector(sched)

	const snapshotEvery = 4
	store, err := chainstore.Open(dir, nil)
	if err != nil {
		res.Err = err
		return res, kills
	}
	rt, err := MarketRuntime()
	if err != nil {
		res.Err = err
		return res, kills
	}
	chain, err := freshReplica(exp)
	if err != nil {
		res.Err = err
		return res, kills
	}
	if err := store.InitChain(chain); err != nil {
		res.Err = err
		return res, kills
	}
	store.AttachSnapshotting(chain, snapshotEvery)

	for i := 0; i < len(exp.Blocks); {
		b := exp.Blocks[i]
		if err := chain.ImportBlock(b); err != nil {
			res.Err = err
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = chain.State().Root()
			store.Close()
			return res, kills
		}
		i++
		if !inj.ShouldKill() {
			continue
		}
		kills++
		// Crash: abandon the store without Close, tear the log's tail
		// (a frame died mid-write), then reopen and rebuild.
		_ = store.Close() // the fsynced prefix is what survives either way
		if err := tearActiveSegment(dir); err != nil {
			res.Err = err
			return res, kills
		}
		store, err = chainstore.Open(dir, nil)
		if err != nil {
			res.Err = fmt.Errorf("proptest: reopen after kill: %w", err)
			return res, kills
		}
		chain, err = store.OpenChain(rt)
		if err != nil {
			res.Err = fmt.Errorf("proptest: rebuild after kill: %w", err)
			store.Close()
			return res, kills
		}
		store.AttachSnapshotting(chain, snapshotEvery)
		// Torn-tail truncation may have dropped the last committed
		// block; re-import from wherever the durable prefix ends.
		i = int(chain.Height()) - firstImportOffset(exp)
	}
	res.Height = chain.Height()
	res.Root = chain.State().Root()
	store.Close()
	return res, kills
}

// firstImportOffset maps a chain height back to an index into
// exp.Blocks (whose first entry is height 1... unless a market sealed
// setup blocks before the export; the blocks slice always starts at
// height Blocks[0].Header.Height).
func firstImportOffset(exp *ledger.ChainExport) int {
	if len(exp.Blocks) == 0 {
		return 0
	}
	return int(exp.Blocks[0].Header.Height) - 1
}

// tearActiveSegment appends garbage to the newest log segment,
// simulating a crash partway through an append: a frame header
// promising more bytes than were ever written.
func tearActiveSegment(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "segments", "seg-*.log"))
	if err != nil || len(names) == 0 {
		return err
	}
	f, err := os.OpenFile(names[len(names)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte{0x00, 0x01, 0xFF, 0x03, 0xDE, 0xAD})
	return err
}

// runParallelMode replays the chain through the optimistic parallel
// executor, importing every block into a serial replica and a parallel
// replica in lockstep. ImportBlock already rejects any state-root or
// gas divergence against the header; on top of that, this mode asserts
// after every block that the two replicas agree on each transaction's
// receipt and on the cumulative event log — order included. A scheduler
// that commits out of order, loses a conflict, or rewrites an error
// message diverges here even if the state root happens to survive.
func runParallelMode(data []byte) ModeResult {
	res := ModeResult{Mode: "parallel"}
	exp, err := decodeExport(data)
	if err != nil {
		res.Err = err
		return res
	}
	serial, err := freshReplica(exp)
	if err != nil {
		res.Err = err
		return res
	}
	par, err := parallelReplica(exp)
	if err != nil {
		res.Err = err
		return res
	}
	fail := func(b *ledger.Block, err error) ModeResult {
		res.Err = err
		res.FailedAt = b.Header.Height
		res.Height = par.Height()
		res.Root = par.State().Root()
		return res
	}
	for _, b := range exp.Blocks {
		serr, perr := serial.ImportBlock(b), par.ImportBlock(b)
		if (serr == nil) != (perr == nil) {
			return fail(b, fmt.Errorf("proptest: serial/parallel acceptance split: serial %v, parallel %v", serr, perr))
		}
		if perr != nil {
			return fail(b, perr)
		}
		for _, tx := range b.Txs {
			sr, sok := serial.Receipt(tx.Hash())
			pr, pok := par.Receipt(tx.Hash())
			if !sok || !pok || !reflect.DeepEqual(sr, pr) {
				return fail(b, fmt.Errorf("proptest: receipt divergence for tx %s: serial %+v, parallel %+v",
					tx.Hash().Short(), sr, pr))
			}
		}
		if sev, pev := serial.Events(""), par.Events(""); !reflect.DeepEqual(sev, pev) {
			return fail(b, fmt.Errorf("proptest: event-log divergence at height %d: serial %d events, parallel %d",
				b.Header.Height, len(sev), len(pev)))
		}
	}
	res.Height = par.Height()
	res.Root = par.State().Root()
	return res
}

// runVMMode replays the chain on a replica whose registry runs deployed
// policy programs through the reference tree-walking evaluator instead
// of the bytecode VM, importing in lockstep with a normal (VM) replica.
// The two engines share one host adapter and one gas charge schedule,
// so every block must land on identical receipts, event logs and state
// roots — a VM miscompilation, dispatch bug or gas-charge drift breaks
// this mode even when each engine is self-consistent.
func runVMMode(data []byte) ModeResult {
	res := ModeResult{Mode: "vm"}
	exp, err := decodeExport(data)
	if err != nil {
		res.Err = err
		return res
	}
	vmChain, err := freshReplica(exp)
	if err != nil {
		res.Err = err
		return res
	}
	refRT, err := market.NewReferenceRuntime()
	if err != nil {
		res.Err = err
		return res
	}
	refChain, err := ledger.NewChain(ledger.ChainConfig{
		Authorities:   exp.Authorities,
		BlockGasLimit: exp.BlockGasLimit,
		GenesisAlloc:  exp.GenesisAlloc,
		Applier:       refRT,
	})
	if err != nil {
		res.Err = err
		return res
	}
	fail := func(b *ledger.Block, err error) ModeResult {
		res.Err = err
		res.FailedAt = b.Header.Height
		res.Height = refChain.Height()
		res.Root = refChain.State().Root()
		return res
	}
	for _, b := range exp.Blocks {
		verr, rerr := vmChain.ImportBlock(b), refChain.ImportBlock(b)
		if (verr == nil) != (rerr == nil) {
			return fail(b, fmt.Errorf("proptest: vm/reference acceptance split: vm %v, reference %v", verr, rerr))
		}
		if rerr != nil {
			return fail(b, rerr)
		}
		for _, tx := range b.Txs {
			vr, vok := vmChain.Receipt(tx.Hash())
			rr, rok := refChain.Receipt(tx.Hash())
			if !vok || !rok || !reflect.DeepEqual(vr, rr) {
				return fail(b, fmt.Errorf("proptest: vm/reference receipt divergence for tx %s: vm %+v, reference %+v",
					tx.Hash().Short(), vr, rr))
			}
		}
		if vev, rev := vmChain.Events(""), refChain.Events(""); !reflect.DeepEqual(vev, rev) {
			return fail(b, fmt.Errorf("proptest: vm/reference event-log divergence at height %d: vm %d events, reference %d",
				b.Header.Height, len(vev), len(rev)))
		}
	}
	res.Height = refChain.Height()
	res.Root = refChain.State().Root()
	return res
}

// RunReplayModes executes an exported chain through all six modes.
func RunReplayModes(data []byte) []ModeResult {
	return []ModeResult{
		runImportMode(data),
		runAuditMode(data),
		runReplayMode(data),
		runPersistMode(data),
		runParallelMode(data),
		runVMMode(data),
	}
}

// DifferentialCheck asserts that every mode accepted the chain and that
// all modes converged on the same height and state root; live, when
// non-nil, is the originating market every mode must also agree with.
func DifferentialCheck(results []ModeResult, live *market.Market) error {
	if len(results) == 0 {
		return fmt.Errorf("proptest: no replay results")
	}
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("proptest: mode %s rejected the chain: %w", r.Mode, r.Err)
		}
	}
	want := results[0]
	for _, r := range results[1:] {
		if r.Height != want.Height || r.Root != want.Root {
			return fmt.Errorf("proptest: divergence: %s vs %s", want, r)
		}
	}
	if live != nil {
		if h := live.Height(); h != want.Height {
			return fmt.Errorf("proptest: replicas at height %d, live chain at %d", want.Height, h)
		}
		if root := live.Chain.State().Root(); root != want.Root {
			return fmt.Errorf("proptest: replica root %s, live root %s", want.Root.Short(), root.Short())
		}
	}
	return nil
}

// CheckDetection asserts that every mode rejected a (corrupted) chain —
// a corruption that slips past any replica is a validation hole.
func CheckDetection(results []ModeResult) error {
	for _, r := range results {
		if r.Err == nil {
			return fmt.Errorf("proptest: mode %s accepted a corrupted chain (height %d, root %s)",
				r.Mode, r.Height, r.Root.Short())
		}
	}
	return nil
}
