package proptest

import (
	"bytes"
	"encoding/json"
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/token"
)

// The differential replay oracle: every generated chain is executed
// three independent ways and any divergence — in acceptance, in height,
// or in final state root — is a correctness failure of the ledger's
// import pipeline.
//
//	import — a fresh replica importing block-by-block (ImportBlock)
//	audit  — a read-only auditor verifying each block (VerifyBlock)
//	         before advancing, checking that verification itself is
//	         side-effect free
//	replay — the ledger's own export/replay path (ledger.Replay)

// MarketRuntime builds a contract runtime with the full marketplace
// code registry — the applier any replica must run to re-validate a
// market chain.
func MarketRuntime() (*contract.Runtime, error) {
	rt := contract.NewRuntime()
	for name, code := range map[string]contract.Contract{
		market.RegistryCodeName: market.RegistryContract{},
		market.WorkloadCodeName: market.WorkloadContract{},
		token.ERC20CodeName:     token.ERC20{},
		token.ERC721CodeName:    token.ERC721{},
	} {
		if err := rt.RegisterCode(name, code); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// ModeResult is the outcome of one replay mode over one exported chain.
type ModeResult struct {
	Mode     string
	Err      error  // nil when the whole chain was accepted
	FailedAt uint64 // height of the first rejected block (0 = none)
	Height   uint64 // final height reached
	Root     crypto.Digest
}

func (m ModeResult) String() string {
	if m.Err != nil {
		return fmt.Sprintf("%s: rejected block %d: %v", m.Mode, m.FailedAt, m.Err)
	}
	return fmt.Sprintf("%s: height %d root %s", m.Mode, m.Height, m.Root.Short())
}

// ExportMarket serializes a market's chain into the portable form the
// replay modes consume.
func ExportMarket(m *market.Market) ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Chain.Export(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// freshReplica rebuilds an empty chain from an export's embedded
// genesis configuration, with the marketplace applier.
func freshReplica(exp *ledger.ChainExport) (*ledger.Chain, error) {
	rt, err := MarketRuntime()
	if err != nil {
		return nil, err
	}
	return ledger.NewChain(ledger.ChainConfig{
		Authorities:   exp.Authorities,
		BlockGasLimit: exp.BlockGasLimit,
		GenesisAlloc:  exp.GenesisAlloc,
		Applier:       rt,
	})
}

// decodeExport parses exported chain bytes.
func decodeExport(data []byte) (*ledger.ChainExport, error) {
	var exp ledger.ChainExport
	if err := json.Unmarshal(data, &exp); err != nil {
		return nil, fmt.Errorf("proptest: decode export: %w", err)
	}
	return &exp, nil
}

// runImportMode replays the chain on a fresh replica through
// ImportBlock — the path a following node runs.
func runImportMode(data []byte) ModeResult {
	res := ModeResult{Mode: "import"}
	exp, err := decodeExport(data)
	if err != nil {
		res.Err = err
		return res
	}
	chain, err := freshReplica(exp)
	if err != nil {
		res.Err = err
		return res
	}
	for _, b := range exp.Blocks {
		if err := chain.ImportBlock(b); err != nil {
			res.Err = err
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = chain.State().Root()
			return res
		}
	}
	res.Height = chain.Height()
	res.Root = chain.State().Root()
	return res
}

// runAuditMode replays the chain on a fresh replica through
// VerifyBlock — the read-only auditor's path — checking after every
// verification that the state is bit-identical to before (verification
// must be a pure read), then advancing with ImportBlock.
func runAuditMode(data []byte) ModeResult {
	res := ModeResult{Mode: "audit"}
	exp, err := decodeExport(data)
	if err != nil {
		res.Err = err
		return res
	}
	chain, err := freshReplica(exp)
	if err != nil {
		res.Err = err
		return res
	}
	for _, b := range exp.Blocks {
		before := chain.State().Root()
		verr := chain.VerifyBlock(b)
		if after := chain.State().Root(); after != before {
			res.Err = fmt.Errorf("proptest: VerifyBlock mutated state: %s -> %s", before.Short(), after.Short())
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = after
			return res
		}
		if verr != nil {
			res.Err = verr
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = before
			return res
		}
		if err := chain.ImportBlock(b); err != nil {
			res.Err = fmt.Errorf("proptest: verified block failed import: %w", err)
			res.FailedAt = b.Header.Height
			res.Height = chain.Height()
			res.Root = chain.State().Root()
			return res
		}
	}
	res.Height = chain.Height()
	res.Root = chain.State().Root()
	return res
}

// runReplayMode replays the chain through the ledger's own
// export/replay API.
func runReplayMode(data []byte) ModeResult {
	res := ModeResult{Mode: "replay"}
	rt, err := MarketRuntime()
	if err != nil {
		res.Err = err
		return res
	}
	chain, err := ledger.Replay(bytes.NewReader(data), rt)
	if err != nil {
		res.Err = err
		return res
	}
	res.Height = chain.Height()
	res.Root = chain.State().Root()
	return res
}

// RunReplayModes executes an exported chain through all three modes.
func RunReplayModes(data []byte) []ModeResult {
	return []ModeResult{
		runImportMode(data),
		runAuditMode(data),
		runReplayMode(data),
	}
}

// DifferentialCheck asserts that every mode accepted the chain and that
// all modes converged on the same height and state root; live, when
// non-nil, is the originating market every mode must also agree with.
func DifferentialCheck(results []ModeResult, live *market.Market) error {
	if len(results) == 0 {
		return fmt.Errorf("proptest: no replay results")
	}
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("proptest: mode %s rejected the chain: %w", r.Mode, r.Err)
		}
	}
	want := results[0]
	for _, r := range results[1:] {
		if r.Height != want.Height || r.Root != want.Root {
			return fmt.Errorf("proptest: divergence: %s vs %s", want, r)
		}
	}
	if live != nil {
		if h := live.Height(); h != want.Height {
			return fmt.Errorf("proptest: replicas at height %d, live chain at %d", want.Height, h)
		}
		if root := live.Chain.State().Root(); root != want.Root {
			return fmt.Errorf("proptest: replica root %s, live root %s", want.Root.Short(), root.Short())
		}
	}
	return nil
}

// CheckDetection asserts that every mode rejected a (corrupted) chain —
// a corruption that slips past any replica is a validation hole.
func CheckDetection(results []ModeResult) error {
	for _, r := range results {
		if r.Err == nil {
			return fmt.Errorf("proptest: mode %s accepted a corrupted chain (height %d, root %s)",
				r.Mode, r.Height, r.Root.Short())
		}
	}
	return nil
}
