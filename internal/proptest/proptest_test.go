package proptest

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"pds2/internal/faults"
	"pds2/internal/policy"
)

// smokeOps keeps the default test-size plans inside a CI smoke budget:
// big enough to cross dozens of sealed blocks and one full lifecycle,
// small enough to run in seconds.
const smokeOps = 80

// TestProptestDeterminism runs the same config twice and demands
// byte-for-byte identical histories — the reproducibility guarantee
// every failing seed relies on.
func TestProptestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Ops: smokeOps}
	plan1 := Plan(cfg)
	plan2 := Plan(cfg)
	if len(plan1) != len(plan2) {
		t.Fatalf("plan lengths differ: %d vs %d", len(plan1), len(plan2))
	}
	for i := range plan1 {
		if plan1[i] != plan2[i] {
			t.Fatalf("plan op %d differs: %s vs %s", i, plan1[i], plan2[i])
		}
	}
	res1, err := Run(cfg, plan1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(cfg, plan2)
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := res1.History.Fingerprint(), res2.History.Fingerprint()
	if !bytes.Equal(fp1, fp2) {
		t.Fatalf("histories diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", fp1, fp2)
	}
	if len(res1.History.Blocks) == 0 {
		t.Fatal("run sealed no blocks")
	}
}

// TestProptestSmoke sweeps a handful of seeds: every invariant must
// hold and the three replay modes must agree with the live chain.
func TestProptestSmoke(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		res, err := RunSeed(seed, smokeOps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			report := MinimizeFailure(Config{Seed: seed, Ops: smokeOps})
			t.Fatalf("seed %d violated invariants:\n%s", seed, report)
		}
		data, err := ExportMarket(res.Market)
		if err != nil {
			t.Fatalf("seed %d export: %v", seed, err)
		}
		if err := DifferentialCheck(RunReplayModes(data), res.Market); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestVMPolicyReplay pins the VM leg of the differential oracle: a
// seeded run must actually deploy compiled policy programs and log
// decisions for program-governed datasets, and the resulting chain must
// survive all six replay modes — in particular the vm mode, which
// re-executes every deployed program with the reference tree-walking
// evaluator and demands identical receipts, events and roots.
func TestVMPolicyReplay(t *testing.T) {
	var programs, decisions int
	for _, seed := range []uint64{5, 6, 8, 9} {
		res, err := RunSeed(seed, smokeOps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d violated invariants:\n%v", seed, res.History.Violations)
		}
		programmed := make(map[string]bool)
		for _, ev := range res.Market.Chain.Events(policy.EvPolicyCode) {
			dataID, _, _, err := policy.DecodePolicySet(ev.Data)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			programmed[dataID.Hex()] = true
			programs++
		}
		for _, ev := range res.Market.Chain.Events(policy.EvPolicyDecision) {
			rec, err := policy.DecodeDecisionRecord(ev.Data)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if programmed[rec.DataID.Hex()] {
				decisions++
			}
		}
		data, err := ExportMarket(res.Market)
		if err != nil {
			t.Fatalf("seed %d export: %v", seed, err)
		}
		if err := DifferentialCheck(RunReplayModes(data), res.Market); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if programs == 0 || decisions == 0 {
		t.Fatalf("swept seeds deployed %d programs with %d program decisions; the vm replay mode was never exercised", programs, decisions)
	}
}

// TestProptestUnderFaults churns the mempool under the kitchen-sink
// fault schedule: dropped submissions, clock-skewed seals. Invariants
// and replayability must survive.
func TestProptestUnderFaults(t *testing.T) {
	sched := faults.Everything(99)
	cfg := Config{Seed: 7, Ops: smokeOps, Schedule: &sched}
	res, err := Run(cfg, Plan(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("invariants violated under faults:\n%v", res.History.Violations)
	}
	data, err := ExportMarket(res.Market)
	if err != nil {
		t.Fatal(err)
	}
	if err := DifferentialCheck(RunReplayModes(data), res.Market); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptBlocksDetected sweeps every export-level corruption kind
// and both forged-block kinds over a generated chain: all three replay
// modes must reject every variant.
func TestCorruptBlocksDetected(t *testing.T) {
	res, err := RunSeed(11, smokeOps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("baseline run violated invariants:\n%v", res.History.Violations)
	}
	data, err := ExportMarket(res.Market)
	if err != nil {
		t.Fatal(err)
	}
	// The clean export must pass before any corrupted variant may fail.
	if err := DifferentialCheck(RunReplayModes(data), res.Market); err != nil {
		t.Fatal(err)
	}
	for _, kind := range Corruptions {
		for seed := uint64(0); seed < 3; seed++ {
			bad, err := CorruptExport(data, kind, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", kind, seed, err)
			}
			if err := CheckDetection(RunReplayModes(bad)); err != nil {
				t.Errorf("%s seed %d: %v", kind, seed, err)
			}
		}
	}
	// Malicious-authority forgeries: valid seals, hostile payloads.
	forged := map[string][]byte{}
	if bad, err := AppendForgedBlock(data, ForgeSkippedNonceBlock(res.Market, res.Authority, res.Sender)); err != nil {
		t.Fatal(err)
	} else {
		forged["forged-skipped-nonce"] = bad
	}
	if bad, err := AppendForgedBlock(data, ForgeBalanceClaimBlock(res.Market, res.Authority, res.Sender)); err != nil {
		t.Fatal(err)
	} else {
		forged["forged-balance-claim"] = bad
	}
	for name, bad := range forged {
		if err := CheckDetection(RunReplayModes(bad)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestShrinkMinimizes plants a synthetic failure (an op kind the oracle
// flags) in a large plan and checks the shrinker reduces the plan to
// essentially just the trigger while preserving determinism.
func TestShrinkMinimizes(t *testing.T) {
	// Synthetic trigger: the oracle fails iff the plan still contains an
	// overdraft op following at least one transfer. Cheap to evaluate,
	// with a known 2-op minimum.
	oracle := func(_ Config, p []Op) bool {
		seenTransfer := false
		for _, op := range p {
			if op.Kind == OpTransfer {
				seenTransfer = true
			}
			if op.Kind == OpOverdraft && seenTransfer {
				return true
			}
		}
		return false
	}
	// Scan seeds for a plan containing the trigger; the scan is
	// deterministic, so the test always exercises the same plan.
	var (
		cfg  Config
		plan []Op
	)
	for seed := uint64(1); ; seed++ {
		cfg = Config{Seed: seed, Ops: 64}
		plan = Plan(cfg)
		if oracle(cfg, plan) {
			break
		}
		if seed > 100 {
			t.Fatal("no seed in 1..100 produced a transfer→overdraft pair")
		}
	}
	minPlan, runs := Shrink(cfg, plan, oracle)
	if !oracle(cfg, minPlan) {
		t.Fatal("shrinker returned a passing plan")
	}
	if len(minPlan) != 2 {
		t.Fatalf("expected 2-op minimum, got %d ops (in %d runs): %v", len(minPlan), runs, minPlan)
	}
	if minPlan[0].Kind != OpTransfer || minPlan[1].Kind != OpOverdraft {
		t.Fatalf("wrong minimum: %v", minPlan)
	}
}

// TestProptestSeedRepro replays a failing seed from the environment —
// the reproduction entry point printed by FailureReport. Without the
// variable it validates the default seed end to end.
func TestProptestSeedRepro(t *testing.T) {
	seed, ops := uint64(1), smokeOps
	if v := os.Getenv("PDS2_PROPTEST_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("PDS2_PROPTEST_SEED: %v", err)
		}
		seed = n
	}
	if v := os.Getenv("PDS2_PROPTEST_OPS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("PDS2_PROPTEST_OPS: %v", err)
		}
		ops = n
	}
	if report := MinimizeFailure(Config{Seed: seed, Ops: ops}); report != nil {
		t.Fatalf("\n%s", report)
	}
}

// TestChaosChainReplayable is the regression pinning that the E15 chaos
// lifecycle's chain — sealed under drops, 5xxs, torn responses and
// clock skew — replays identically through all three modes. No
// invariant violations were uncovered during this harness's
// development, so per the issue this stands as the three-mode agreement
// regression on the chaos chain.
func TestChaosChainReplayable(t *testing.T) {
	report, err := faults.RunChaosLifecycle(faults.ChaosConfig{
		Seed:     1,
		Schedule: faults.Everything(1),
	})
	if err != nil {
		t.Fatalf("chaos lifecycle did not converge: %v", err)
	}
	data, err := ExportMarket(report.Market)
	if err != nil {
		t.Fatal(err)
	}
	if err := DifferentialCheck(RunReplayModes(data), report.Market); err != nil {
		t.Fatalf("chaos chain diverged across replay modes: %v", err)
	}
}
