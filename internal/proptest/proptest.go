// Package proptest is the deterministic property-testing subsystem of
// the PDS² reproduction: a seed-driven generator of randomized
// full-lifecycle marketplace histories (accounts, native transfers,
// ERC-20/721 operations, contract calls with forced reverts, workload
// register→match→seal→settle flows, and mempool churn under the
// internal/faults schedules) with a global-invariant audit after every
// sealed block and a three-way differential replay oracle over every
// generated chain.
//
// The design goals, in order:
//
//  1. Determinism — a Config (seed + sizes) fully determines the plan,
//     the execution, and the recorded History, byte for byte. A failing
//     run reproduces from its seed alone.
//  2. Shrinking — a failing plan minimizes by greedy chunk removal
//     (Shrink); ops are self-contained (own sub-seeds), so removing one
//     never shifts the randomness of the survivors.
//  3. Depth — invariants are global (supply conservation, nonce
//     accounting, gas bounds, journal hygiene, receipt/event and
//     state-root consistency), not per-op oracles, so they catch
//     cross-transaction interactions no table-driven test enumerates.
//
// The harness is the correctness backstop the ROADMAP's scaling work
// runs against: any import-pipeline or mempool optimisation that breaks
// replayability fails here with a replayable seed.
package proptest

import (
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/faults"
)

// Config fully determines a generated history.
type Config struct {
	// Seed drives every random choice: the plan, the market's keys, the
	// synthetic datasets inside lifecycle ops.
	Seed uint64

	// Ops is the number of generated operations (default 200).
	Ops int

	// Accounts is the number of externally-owned accounts the generator
	// transacts between (default 6, minimum 2).
	Accounts int

	// Lifecycles bounds how many full workload lifecycles
	// (register→match→seal→settle) the plan may weave in (default 1).
	// Lifecycles dominate runtime; CI smokes keep this small.
	Lifecycles int

	// Schedule, when non-nil, churns the mempool under fault injection:
	// submissions can be dropped before admission and seal timestamps
	// skewed, driving the chain's monotonicity and the pool's
	// eviction/replacement machinery.
	Schedule *faults.Schedule
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 200
	}
	if c.Accounts < 2 {
		c.Accounts = 6
	}
	if c.Lifecycles < 0 {
		c.Lifecycles = 0
	} else if c.Lifecycles == 0 {
		c.Lifecycles = 1
	}
	return c
}

// OpKind enumerates the generated operation classes.
type OpKind int

// Operation classes. Submission ops sign and enqueue transactions; the
// chain only advances on seal ops (and inside lifecycle ops), which is
// when invariants are audited.
const (
	OpTransfer      OpKind = iota // native transfer, bounded amount
	OpOverdraft                   // native transfer of balance+ε → failed receipt
	OpERC20Transfer               // token transfer, may revert on balance
	OpERC20Mint                   // mint; reverts unless sender is the minter
	OpERC20Approve                // allowance grant
	OpERC20XferFrom               // transferFrom; may revert on allowance
	OpERC20Burn                   // burn; may revert on balance
	OpERC721Mint                  // deed mint; reverts unless sender is the minter
	OpERC721Approve               // deed approval; reverts unless sender owns it
	OpERC721Xfer                  // deed transferFrom; may revert on authorization
	OpBadCall                     // unknown contract method → forced revert
	OpFutureNonce                 // nonce-gapped tx parks in the mempool
	OpReplace                     // two txs, same nonce: newer replaces older
	OpResubmit                    // byte-identical resubmission → duplicate verdict
	OpSeal                        // seal a block (possibly clock-skewed), audit invariants
	OpPrune                       // evict stale mempool entries
	OpRevertProbe                 // snapshot → mutate → revert must be an exact no-op
	OpLifecycle                   // full workload register→match→seal→settle
	OpSetPolicy                   // dataset registration + usage-control policy churn
	OpVMPolicy                    // dataset registration + compiled policy-program deployment
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	names := [...]string{
		"transfer", "overdraft", "erc20-transfer", "erc20-mint",
		"erc20-approve", "erc20-transfer-from", "erc20-burn",
		"erc721-mint", "erc721-approve", "erc721-transfer", "bad-call",
		"future-nonce", "replace", "resubmit", "seal", "prune",
		"revert-probe", "lifecycle", "set-policy", "vm-policy",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one self-contained planned operation. A and B index accounts,
// Amount parameterizes values, and Seed feeds any op-local randomness
// (lifecycle datasets, forged token IDs) so that removing sibling ops
// during shrinking never changes this op's behaviour.
type Op struct {
	Kind   OpKind
	A, B   int
	Amount uint64
	Seed   uint64
}

// String renders the op compactly for history logs and shrink reports.
func (o Op) String() string {
	return fmt.Sprintf("%s(a=%d,b=%d,v=%d)", o.Kind, o.A, o.B, o.Amount)
}

// planWeights is the sampling table for plan generation. Seal is
// frequent so invariants audit continuously; lifecycle draws are
// bounded separately by Config.Lifecycles.
var planWeights = []struct {
	kind   OpKind
	weight int
}{
	{OpTransfer, 16},
	{OpOverdraft, 4},
	{OpERC20Transfer, 8},
	{OpERC20Mint, 4},
	{OpERC20Approve, 4},
	{OpERC20XferFrom, 4},
	{OpERC20Burn, 3},
	{OpERC721Mint, 4},
	{OpERC721Approve, 3},
	{OpERC721Xfer, 4},
	{OpBadCall, 3},
	{OpFutureNonce, 4},
	{OpReplace, 4},
	{OpResubmit, 3},
	{OpSeal, 14},
	{OpPrune, 3},
	{OpRevertProbe, 3},
	{OpSetPolicy, 4},
	{OpVMPolicy, 4},
}

// Plan expands a Config into its deterministic operation list. The same
// Config always yields the same plan; execution (Run) is equally
// deterministic, so Plan+Run is reproducible end to end.
func Plan(cfg Config) []Op {
	cfg = cfg.withDefaults()
	rng := crypto.NewDRBGFromUint64(cfg.Seed, "proptest/plan")
	var total int
	for _, w := range planWeights {
		total += w.weight
	}
	ops := make([]Op, 0, cfg.Ops)
	lifecyclesLeft := cfg.Lifecycles
	for i := 0; i < cfg.Ops; i++ {
		// Spread lifecycle ops evenly through the plan rather than
		// sampling them: they are orders of magnitude heavier than
		// everything else and their count is a budget, not a rate.
		if lifecyclesLeft > 0 && i == (cfg.Ops/(cfg.Lifecycles+1))*(cfg.Lifecycles-lifecyclesLeft+1) {
			ops = append(ops, Op{Kind: OpLifecycle, Seed: rng.Uint64()})
			lifecyclesLeft--
			continue
		}
		pick := rng.Intn(total)
		var kind OpKind
		for _, w := range planWeights {
			if pick < w.weight {
				kind = w.kind
				break
			}
			pick -= w.weight
		}
		ops = append(ops, Op{
			Kind:   kind,
			A:      rng.Intn(cfg.Accounts),
			B:      rng.Intn(cfg.Accounts),
			Amount: rng.Uint64(),
			Seed:   rng.Uint64(),
		})
	}
	return ops
}
