package proptest

import (
	"errors"
	"fmt"
	"strings"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/faults"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/ml"
	"pds2/internal/policy"
	"pds2/internal/semantic"
	"pds2/internal/storage"
	"pds2/internal/token"
	"pds2/internal/vm"
)

// deedSpace bounds the ERC-721 token-ID universe the generator draws
// from. Keeping it tiny makes mint collisions (revert path) and
// approve/transfer hits on live tokens both frequent.
const deedSpace = 8

// deedID derives the nth deterministic token ID.
func deedID(n uint64) crypto.Digest {
	return crypto.HashString(fmt.Sprintf("proptest/deed/%d", n%deedSpace))
}

// polDataSpace bounds the shared dataset-ID universe the set-policy op
// draws from: small enough that accounts race for the same
// registrations (first-come-first-served reverts) and re-attach
// policies to datasets other ops already probed.
const polDataSpace = 6

// polDataID derives the nth deterministic policy-churn dataset ID.
func polDataID(n uint64) crypto.Digest {
	return crypto.HashString(fmt.Sprintf("proptest/poldata/%d", n%polDataSpace))
}

// policyFor derives a structurally valid usage-control policy from the
// op's own randomness, mixing permissive and restrictive clauses so the
// match-layer probes exercise every deny code.
func policyFor(op Op, height uint64) *policy.Policy {
	pol := &policy.Policy{
		AllowedClasses: []string{market.DefaultComputationClass},
		MinAggregation: 1 + op.Amount%3,
		ExpiryHeight:   height + 1 + op.Seed%200,
		MaxInvocations: 1 + op.Seed%8,
	}
	if op.Seed%3 == 0 {
		pol.AllowedClasses = []string{"stats"}
	}
	if op.Seed%5 == 0 {
		pol.Purposes = []string{"research"}
	}
	return pol
}

// BlockSummary is the canonical record of one sealed block in a
// History — everything the determinism fingerprint commits to.
type BlockSummary struct {
	Height    uint64
	Timestamp uint64
	Txs       int
	GasUsed   uint64
	StateRoot crypto.Digest
	TxRoot    crypto.Digest
	// Receipts digests every receipt (status, gas, error, events) of the
	// block in order, so two runs agreeing on it executed identically.
	Receipts crypto.Digest
}

// History is the full deterministic trace of one run: an op log, every
// sealed block, and any invariant violations.
type History struct {
	Seed       uint64
	OpLog      []string
	Blocks     []BlockSummary
	Violations []Violation
}

// Fingerprint renders the history canonically. Two runs of the same
// Config must produce byte-identical fingerprints; anything that may
// legitimately differ between runs must not appear here.
func (h *History) Fingerprint() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", h.Seed)
	for i, line := range h.OpLog {
		fmt.Fprintf(&b, "op %04d %s\n", i, line)
	}
	for _, blk := range h.Blocks {
		fmt.Fprintf(&b, "block %d ts=%d txs=%d gas=%d state=%s txroot=%s receipts=%s\n",
			blk.Height, blk.Timestamp, blk.Txs, blk.GasUsed,
			blk.StateRoot.Hex(), blk.TxRoot.Hex(), blk.Receipts.Hex())
	}
	for _, v := range h.Violations {
		fmt.Fprintf(&b, "violation %s\n", v.String())
	}
	return []byte(b.String())
}

// Result bundles everything a run produced: the executed plan, the
// trace, and the live market (for export, replay, and corruption
// experiments).
type Result struct {
	Config  Config
	Plan    []Op
	History *History
	Market  *market.Market

	// Authority is the market's (sole) sealing identity, exposed so the
	// corruption helpers can forge validly-sealed hostile blocks.
	Authority *identity.Identity

	// Sender is a funded account whose key the corruption helpers may
	// sign forged transactions with.
	Sender *identity.Identity

	// Coin and Deeds are the generator's own ERC-20 and ERC-721
	// deployments (minter: account 0). The market's data-deeds contract
	// is audited too; see Auditor.
	Coin  identity.Address
	Deeds identity.Address
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.History.Violations) > 0 }

// runner is the mutable execution world behind one Run call.
type runner struct {
	cfg      Config
	m        *market.Market
	accounts []*identity.Identity
	coin     identity.Address
	deeds    identity.Address
	inj      *faults.Injector
	auditor  *Auditor
	hist     *History
	synced   uint64 // height up to which blocks were audited
}

// RunSeed generates and executes the default-sized plan for a seed.
func RunSeed(seed uint64, ops int) (*Result, error) {
	cfg := Config{Seed: seed, Ops: ops}
	return Run(cfg, Plan(cfg))
}

// Run executes a plan against a fresh market, auditing every global
// invariant after each sealed block. The returned error reports harness
// setup failures only; system misbehaviour surfaces as
// History.Violations so it can be shrunk and replayed.
func Run(cfg Config, plan []Op) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := crypto.NewDRBGFromUint64(cfg.Seed, "proptest/run")

	accounts := make([]*identity.Identity, cfg.Accounts)
	alloc := make(map[identity.Address]uint64, cfg.Accounts)
	for i := range accounts {
		accounts[i] = identity.New(fmt.Sprintf("prop-%d", i), rng.Fork(fmt.Sprintf("account/%d", i)))
		alloc[accounts[i].Address()] = 10_000_000
	}
	// The authority is created explicitly (rather than letting the market
	// default one) so corruption experiments can forge validly-sealed
	// blocks carrying bad payloads.
	authority := identity.New("prop-authority", rng.Fork("authority"))
	m, err := market.New(market.Config{
		Seed:         cfg.Seed,
		GenesisAlloc: alloc,
		Authorities:  []*identity.Identity{authority},
	})
	if err != nil {
		return nil, fmt.Errorf("proptest: market: %w", err)
	}

	// The generator's own token worlds, minted by account 0.
	rcpt, err := market.MustSucceed(m.SendAndSeal(accounts[0], identity.ZeroAddress, 0,
		contract.DeployData(token.ERC20CodeName, token.ERC20InitArgs("PropCoin", "PRC", 1_000_000))))
	if err != nil {
		return nil, fmt.Errorf("proptest: deploy coin: %w", err)
	}
	var coin identity.Address
	copy(coin[:], rcpt.Return)
	rcpt, err = market.MustSucceed(m.SendAndSeal(accounts[0], identity.ZeroAddress, 0,
		contract.DeployData(token.ERC721CodeName, token.ERC721InitArgs("PropDeeds"))))
	if err != nil {
		return nil, fmt.Errorf("proptest: deploy deeds: %w", err)
	}
	var deeds identity.Address
	copy(deeds[:], rcpt.Return)

	r := &runner{
		cfg:      cfg,
		m:        m,
		accounts: accounts,
		coin:     coin,
		deeds:    deeds,
		auditor:  NewAuditor(m, []identity.Address{coin}, []identity.Address{deeds, m.Deeds}),
		hist:     &History{Seed: cfg.Seed},
	}
	if cfg.Schedule != nil {
		r.inj = faults.NewInjector(*cfg.Schedule)
	}
	// Absorb the setup blocks (market deploys + token deploys) without
	// attributing them to any op, then audit once to pin the baseline.
	r.syncBlocks(-1)

	for i, op := range plan {
		r.exec(i, op)
		r.syncBlocks(i)
	}
	// A forced final seal flushes whatever the plan left in the pool so
	// every submitted-and-includable transaction faces the invariants.
	if _, err := r.m.SealBlock(); err != nil {
		r.logf("final-seal: %v", err)
	} else {
		r.logf("final-seal: ok")
	}
	r.syncBlocks(len(plan))

	return &Result{
		Config:    cfg,
		Plan:      plan,
		History:   r.hist,
		Market:    m,
		Authority: authority,
		Sender:    accounts[0],
		Coin:      coin,
		Deeds:     deeds,
	}, nil
}

func (r *runner) logf(format string, args ...any) {
	r.hist.OpLog = append(r.hist.OpLog, fmt.Sprintf(format, args...))
}

// submit routes a signed transaction through the (possibly faulty)
// admission path and returns a canonical outcome string.
func (r *runner) submit(tx *ledger.Transaction) string {
	if r.inj != nil && r.inj.Decide("/v1/transactions", "").Drop {
		return "dropped"
	}
	if err := r.m.Submit(tx); err != nil {
		return "rejected: " + err.Error()
	}
	return "queued"
}

// acct returns a planned account, clamping the plan's index.
func (r *runner) acct(i int) *identity.Identity {
	return r.accounts[i%len(r.accounts)]
}

func (r *runner) exec(i int, op Op) {
	from, to := r.acct(op.A), r.acct(op.B)
	switch op.Kind {
	case OpTransfer:
		amt := op.Amount % 1_000
		tx := r.m.SignedTx(from, to.Address(), amt, nil)
		r.logf("%s -> %s", op, r.submit(tx))
	case OpOverdraft:
		// Current balance plus a margin: guaranteed to fail at apply
		// time unless incoming pool transfers outrun it — either way the
		// receipt, not the block, carries the verdict.
		amt := r.m.Chain.State().Balance(from.Address()) + 1 + op.Amount%1_000
		tx := r.m.SignedTx(from, to.Address(), amt, nil)
		r.logf("%s -> %s", op, r.submit(tx))
	case OpERC20Transfer:
		tx := r.m.SignedTx(from, r.coin, 0, token.ERC20TransferData(to.Address(), op.Amount%5_000))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpERC20Mint:
		tx := r.m.SignedTx(from, r.coin, 0, token.ERC20MintData(to.Address(), op.Amount%10_000))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpERC20Approve:
		tx := r.m.SignedTx(from, r.coin, 0, token.ERC20ApproveData(to.Address(), op.Amount%5_000))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpERC20XferFrom:
		tx := r.m.SignedTx(from, r.coin, 0,
			token.ERC20TransferFromData(to.Address(), from.Address(), op.Amount%5_000))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpERC20Burn:
		tx := r.m.SignedTx(from, r.coin, 0, token.ERC20BurnData(op.Amount%2_000))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpERC721Mint:
		tx := r.m.SignedTx(from, r.deeds, 0, token.ERC721MintData(to.Address(), deedID(op.Seed), nil))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpERC721Approve:
		tx := r.m.SignedTx(from, r.deeds, 0, token.ERC721ApproveData(to.Address(), deedID(op.Seed)))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpERC721Xfer:
		tx := r.m.SignedTx(from, r.deeds, 0,
			token.ERC721TransferFromData(from.Address(), to.Address(), deedID(op.Seed)))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpBadCall:
		tx := r.m.SignedTx(from, r.coin, 0, contract.CallData("no-such-method", nil))
		r.logf("%s -> %s", op, r.submit(tx))
	case OpFutureNonce:
		gap := 1 + op.Amount%3
		nonce := r.m.Pool.NextNonce(from.Address(), r.m.Chain.State().Nonce(from.Address())) + gap
		tx := ledger.SignTx(from, to.Address(), 1, nonce, r.m.DefaultGasLimit, nil)
		r.logf("%s gap=%d -> %s", op, gap, r.submit(tx))
	case OpReplace:
		nonce := r.m.Pool.NextNonce(from.Address(), r.m.Chain.State().Nonce(from.Address()))
		first := ledger.SignTx(from, to.Address(), op.Amount%100, nonce, r.m.DefaultGasLimit, nil)
		second := ledger.SignTx(from, to.Address(), op.Amount%100+1, nonce, r.m.DefaultGasLimit, nil)
		r.logf("%s -> %s then %s", op, r.submit(first), r.submit(second))
	case OpResubmit:
		tx := r.m.SignedTx(from, to.Address(), op.Amount%100, nil)
		r.logf("%s -> %s then %s", op, r.submit(tx), r.submit(tx))
	case OpSeal:
		ts := int64(r.m.Timestamp()) + 1
		if r.inj != nil {
			ts += r.inj.SealSkew()
		}
		if ts < 0 {
			ts = 0
		}
		if _, err := r.m.SealBlockAt(uint64(ts)); err != nil {
			r.logf("%s ts=%d -> %v", op, ts, err)
		} else {
			r.logf("%s ts=%d -> sealed", op, ts)
		}
	case OpPrune:
		r.logf("%s -> evicted %d", op, r.m.Pool.Prune(r.m.Chain.State()))
	case OpRevertProbe:
		r.revertProbe(i, op)
	case OpSetPolicy:
		// Register a dataset from the tiny shared ID space and attach a
		// seeded policy. Registration races (duplicate registerData) and
		// non-owner setPolicy calls revert by design; half the ops also
		// submit a match-layer enforcement probe whose decision — allow
		// or deny — lands in the audit log and must replay.
		id := polDataID(op.Seed)
		meta := crypto.HashString(fmt.Sprintf("proptest/polmeta/%d", op.Seed%polDataSpace))
		reg := r.m.SignedTx(from, r.m.Registry, 0, market.RegisterDataData(id, meta))
		set := r.m.SignedTx(from, r.m.Registry, 0, market.SetPolicyData(id, policyFor(op, r.m.Height())))
		r.logf("%s -> %s then %s", op, r.submit(reg), r.submit(set))
		if op.Amount%2 == 0 {
			class := market.DefaultComputationClass
			if op.Amount%4 == 0 {
				class = "stats"
			}
			probe := r.m.SignedTx(from, r.m.Registry, 0, market.EnforcePolicyData(
				policy.LayerMatch, class, "", 1+op.Amount%4, id))
			r.logf("%s probe -> %s", op, r.submit(probe))
		}
	case OpVMPolicy:
		// Register a dataset from the same tiny ID space and deploy a
		// generated, well-typed policy program compiled to bytecode.
		// Ownership races revert by design; deployed code supersedes any
		// declarative policy a sibling OpSetPolicy attached, and the
		// auditor re-verifies every accepted artifact against its
		// embedded source. Half the ops also probe enforcement at the
		// match layer so program verdicts land in the decision log and
		// flow through the vm-vs-reference replay mode.
		id := polDataID(op.Seed)
		meta := crypto.HashString(fmt.Sprintf("proptest/polmeta/%d", op.Seed%polDataSpace))
		artifact, err := vm.BuildSource(vm.GenSource(op.Seed))
		if err != nil {
			r.hist.Violations = append(r.hist.Violations, Violation{
				Invariant: "vm-policy-compile", OpIndex: i, Height: r.m.Height(),
				Detail: fmt.Sprintf("seed %d: %v", op.Seed, err),
			})
			r.logf("%s -> generator produced uncompilable source: %v", op, err)
			return
		}
		reg := r.m.SignedTx(from, r.m.Registry, 0, market.RegisterDataData(id, meta))
		dep := r.m.SignedTx(from, r.m.Registry, 0, market.DeployPolicyData(id, artifact))
		r.logf("%s -> %s then %s", op, r.submit(reg), r.submit(dep))
		if op.Amount%2 == 0 {
			class := market.DefaultComputationClass
			if op.Amount%4 == 0 {
				class = "stats"
			}
			probe := r.m.SignedTx(from, r.m.Registry, 0, market.EnforcePolicyData(
				policy.LayerMatch, class, "", 1+op.Amount%4, id))
			r.logf("%s probe -> %s", op, r.submit(probe))
		}
	case OpLifecycle:
		if outcome, err := r.lifecycle(op); err != nil {
			// A failed lifecycle on an in-process market is a genuine
			// defect, not an expected revert path: report it as a
			// violation so it shrinks like any other failure.
			r.hist.Violations = append(r.hist.Violations, Violation{
				Invariant: "lifecycle", OpIndex: i, Height: r.m.Height(),
				Detail: err.Error(),
			})
			r.logf("%s -> FAILED: %v", op, err)
		} else {
			r.logf("%s -> %s", op, outcome)
		}
	default:
		r.logf("%s -> unknown kind", op)
	}
}

// revertProbe checks that Snapshot → mutate → RevertTo is an exact
// no-op on the world state: identical root and journal position.
func (r *runner) revertProbe(i int, op Op) {
	st := r.m.Chain.State()
	before := st.Root()
	journalBefore := st.JournalLen()
	snap := st.Snapshot()
	addr := r.acct(op.A).Address()
	st.SetBalance(addr, st.Balance(addr)+1+op.Amount%100)
	st.BumpNonce(addr)
	st.SetStorage(r.coin, "proptest/probe", []byte{byte(op.Seed)})
	st.SetStorage(r.coin, "proptest/probe", nil) // write-then-delete path
	st.RevertTo(snap)
	if after := st.Root(); after != before {
		r.hist.Violations = append(r.hist.Violations, Violation{
			Invariant: "journal-revert", OpIndex: i, Height: r.m.Height(),
			Detail: fmt.Sprintf("root %s != %s after revert", after.Short(), before.Short()),
		})
	}
	if st.JournalLen() != journalBefore {
		r.hist.Violations = append(r.hist.Violations, Violation{
			Invariant: "journal-revert", OpIndex: i, Height: r.m.Height(),
			Detail: fmt.Sprintf("journal %d != %d after revert", st.JournalLen(), journalBefore),
		})
	}
	r.logf("%s -> ok", op)
}

// lifecycle drives one full workload register→match→seal→settle flow
// with actors derived from the op's own seed, interleaved with whatever
// the rest of the plan left in the mempool. The op seed also picks a
// usage-control mode: plain (no policy), policy-bearing (permissive
// policy, decisions logged, must settle), forbidden-class (must be
// denied at match), tighten-after-match (allowed at match, policy then
// mutated, must be denied at admission and enclave), or the same
// permissive/forbidden pair re-expressed as compiled policy programs
// executed by the bytecode VM — the whole lifecycle must behave
// identically to its declarative twin. The returned string is the
// canonical outcome for the history log.
func (r *runner) lifecycle(op Op) (string, error) {
	const (
		modePlain = iota
		modePolicy
		modeForbidden
		modeTighten
		modeVMPolicy
		modeVMForbidden
	)
	mode := int(op.Seed % 6)
	rng := crypto.NewDRBGFromUint64(op.Seed, "proptest/lifecycle")
	consumerID := identity.New("prop-consumer", rng.Fork("consumer"))
	providerID := identity.New("prop-provider", rng.Fork("provider"))
	executorID := identity.New("prop-executor", rng.Fork("executor"))
	// Fund the fresh actors from account 0 — actors pay escrow in native
	// tokens, and value conservation is audited across these transfers
	// like any others.
	for _, id := range []*identity.Identity{consumerID, providerID, executorID} {
		if _, err := market.MustSucceed(r.m.SendAndSeal(r.accounts[0], id.Address(), 300_000, nil)); err != nil {
			return "", fmt.Errorf("fund actor: %w", err)
		}
	}
	consumer, err := market.NewConsumer(r.m, consumerID)
	if err != nil {
		return "", fmt.Errorf("consumer: %w", err)
	}
	node := storage.NewNode(storage.NewMemStore())
	provider, err := market.NewProvider(r.m, providerID, node)
	if err != nil {
		return "", fmt.Errorf("provider: %w", err)
	}
	executor, err := market.NewExecutor(r.m, executorID, node)
	if err != nil {
		return "", fmt.Errorf("executor: %w", err)
	}
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 40, Dim: 2}, rng.Fork("data"))
	ref, err := provider.AddDataset(data, semantic.Metadata{
		"category": semantic.String("sensor.temperature"),
		"samples":  semantic.Number(float64(data.Len())),
	})
	if err != nil {
		return "", fmt.Errorf("add dataset: %w", err)
	}
	permissive := &policy.Policy{
		AllowedClasses: []string{market.DefaultComputationClass},
		MinAggregation: 1,
		ExpiryHeight:   r.m.Height() + 1_000,
		MaxInvocations: 4,
	}
	forbidden := &policy.Policy{
		AllowedClasses: []string{"stats"},
		MinAggregation: 1,
		ExpiryHeight:   r.m.Height() + 1_000,
		MaxInvocations: 4,
	}
	switch mode {
	case modePolicy, modeTighten:
		if err := provider.SetPolicy(ref.ID, permissive); err != nil {
			return "", fmt.Errorf("set policy: %w", err)
		}
	case modeForbidden:
		if err := provider.SetPolicy(ref.ID, forbidden); err != nil {
			return "", fmt.Errorf("set policy: %w", err)
		}
	case modeVMPolicy:
		if err := provider.DeployPolicy(ref.ID, vm.BuiltinPolicySource(permissive)); err != nil {
			return "", fmt.Errorf("deploy policy: %w", err)
		}
	case modeVMForbidden:
		if err := provider.DeployPolicy(ref.ID, vm.BuiltinPolicySource(forbidden)); err != nil {
			return "", fmt.Errorf("deploy policy: %w", err)
		}
	}
	params := market.TrainerParams{Dim: 2, Epochs: 1, Lambda: 1e-3}
	spec := &market.Spec{
		Predicate:      `category isa "sensor"`,
		MinProviders:   1,
		MinItems:       1,
		ExpiryHeight:   r.m.Height() + 1_000,
		ExecutorFeeBps: 1_000,
		Measurement:    market.TrainerMeasurement(params.Encode()),
		QAPub:          r.m.QA.PublicKey(),
		Params:         params.Encode(),
	}
	workload, err := consumer.SubmitWorkload(spec, 100_000)
	if err != nil {
		return "", fmt.Errorf("submit workload: %w", err)
	}
	refs, err := provider.EligibleData(spec)
	if err != nil {
		return "", fmt.Errorf("eligible data: %w", err)
	}
	if len(refs) == 0 {
		return "", fmt.Errorf("no eligible data")
	}
	auths, err := provider.Authorize(workload, executorID.Address(), refs, spec.ExpiryHeight)
	if mode == modeForbidden || mode == modeVMForbidden {
		// The forbidden-class policy must stop the lifecycle at the
		// match layer with the stable class_forbidden reason — whether
		// the policy is declarative or a compiled program.
		var denial *market.PolicyDenialError
		if !errors.As(err, &denial) {
			return "", fmt.Errorf("forbidden-class authorize: got %v, want policy denial", err)
		}
		if denial.Record.Layer != policy.LayerMatch || denial.Record.Code != policy.CodeClassForbidden {
			return "", fmt.Errorf("forbidden-class denial = %+v", denial.Record)
		}
		if mode == modeVMForbidden {
			return "match-denied(vm-policy)", nil
		}
		return "match-denied(policy)", nil
	}
	if err != nil {
		return "", fmt.Errorf("authorize: %w", err)
	}
	executor.Accept(workload, auths)
	if mode == modeTighten {
		// Tighten the policy after the match-time allow: admission and
		// enclave must both still catch the violation.
		if err := provider.SetPolicy(ref.ID, forbidden); err != nil {
			return "", fmt.Errorf("tighten policy: %w", err)
		}
		var denial *market.PolicyDenialError
		if err := executor.Register(workload); !errors.As(err, &denial) {
			return "", fmt.Errorf("tightened admission: got %v, want policy denial", err)
		}
		if denial.Record.Layer != policy.LayerAdmission {
			return "", fmt.Errorf("tightened admission denial layer = %s", denial.Record.Layer)
		}
		denial = nil
		if err := executor.TrainLocal(workload); !errors.As(err, &denial) {
			return "", fmt.Errorf("tightened enclave: got %v, want policy denial", err)
		}
		if denial.Record.Layer != policy.LayerEnclave {
			return "", fmt.Errorf("tightened enclave denial layer = %s", denial.Record.Layer)
		}
		return "late-denied(policy)", nil
	}
	if err := executor.Register(workload); err != nil {
		return "", fmt.Errorf("register execution: %w", err)
	}
	if err := consumer.Start(workload); err != nil {
		return "", fmt.Errorf("start: %w", err)
	}
	if _, err := market.RunWorkloadExecution(workload, []*market.Executor{executor}); err != nil {
		return "", fmt.Errorf("execute: %w", err)
	}
	if err := consumer.Finalize(workload); err != nil {
		return "", fmt.Errorf("finalize: %w", err)
	}
	st, err := r.m.WorkloadStateOf(workload)
	if err != nil {
		return "", err
	}
	if st != market.StateComplete {
		return "", fmt.Errorf("workload state %s, want %s", st, market.StateComplete)
	}
	if mode == modePolicy {
		return "settled(policy)", nil
	}
	if mode == modeVMPolicy {
		return "settled(vm-policy)", nil
	}
	return "settled", nil
}

// syncBlocks audits every block sealed since the last call, attributing
// violations to the op that produced them. opIndex -1 marks setup
// blocks (market construction and token deploys).
func (r *runner) syncBlocks(opIndex int) {
	head := r.m.Height()
	var fresh bool
	for h := r.synced + 1; h <= head; h++ {
		blk, err := r.m.Chain.BlockAt(h)
		if err != nil {
			r.hist.Violations = append(r.hist.Violations, Violation{
				Invariant: "block-access", OpIndex: opIndex, Height: h, Detail: err.Error(),
			})
			continue
		}
		fresh = true
		r.auditor.ObserveBlock(blk)
		vs := r.auditor.CheckBlock(blk)
		for j := range vs {
			vs[j].OpIndex = opIndex
		}
		r.hist.Violations = append(r.hist.Violations, vs...)
		r.hist.Blocks = append(r.hist.Blocks, r.summarize(blk))
	}
	r.synced = head
	if fresh {
		vs := r.auditor.CheckGlobal()
		for j := range vs {
			vs[j].OpIndex = opIndex
		}
		r.hist.Violations = append(r.hist.Violations, vs...)
	}
}

// summarize reduces a block to its canonical fingerprint record.
func (r *runner) summarize(blk *ledger.Block) BlockSummary {
	parts := make([][]byte, 0, len(blk.Txs))
	for _, tx := range blk.Txs {
		rcpt, ok := r.m.Chain.Receipt(tx.Hash())
		if !ok {
			parts = append(parts, []byte("missing"))
			continue
		}
		parts = append(parts, []byte(fmt.Sprintf("%d|%d|%s|%d",
			rcpt.Status, rcpt.GasUsed, rcpt.Err, len(rcpt.Events))))
	}
	return BlockSummary{
		Height:    blk.Header.Height,
		Timestamp: blk.Header.Timestamp,
		Txs:       len(blk.Txs),
		GasUsed:   blk.Header.GasUsed,
		StateRoot: blk.Header.StateRoot,
		TxRoot:    blk.Header.TxRoot,
		Receipts:  crypto.HashConcat(parts...),
	}
}
