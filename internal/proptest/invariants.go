package proptest

import (
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/policy"
	"pds2/internal/vm"
)

// Violation is one broken invariant, pinned to the block and plan
// position that exposed it.
type Violation struct {
	// Invariant names the broken property (e.g. "supply-conservation").
	Invariant string
	// Height is the chain height at which the check fired.
	Height uint64
	// OpIndex is the plan position whose execution exposed it; -1 marks
	// the setup phase before the first op.
	OpIndex int
	// Detail is the human-readable mismatch.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] op=%d height=%d: %s", v.Invariant, v.OpIndex, v.Height, v.Detail)
}

// Auditor checks the global invariants of a live market. It is fed
// every sealed block in order (ObserveBlock) so cumulative properties —
// nonce accounting, event totals — can be checked in O(accounts)
// instead of re-walking the chain.
type Auditor struct {
	m *market.Market

	// baselineSupply is the native-token total at construction. Nothing
	// after genesis mints or burns native tokens, so it is conserved.
	baselineSupply uint64

	// erc20s and erc721s are the token contracts under audit.
	erc20s  []identity.Address
	erc721s []identity.Address

	// txsSent counts transactions per sender across observed blocks —
	// the ground truth every account nonce must equal, since both
	// successful and reverted transactions consume exactly one nonce.
	txsSent map[identity.Address]uint64

	// eventsSeen totals receipt events across observed blocks; the
	// chain's flat audit log must grow by exactly this much.
	eventsSeen int
}

// NewAuditor captures the conservation baseline of a market. Call it
// after setup (deploys move value around; they do not create it) and
// before feeding blocks.
func NewAuditor(m *market.Market, erc20s, erc721s []identity.Address) *Auditor {
	return &Auditor{
		m:              m,
		baselineSupply: m.Chain.State().TotalBalance(),
		erc20s:         erc20s,
		erc721s:        erc721s,
		txsSent:        make(map[identity.Address]uint64),
	}
}

// ObserveBlock folds one sealed block into the cumulative accounting.
// Blocks must be fed exactly once each, in height order.
func (a *Auditor) ObserveBlock(blk *ledger.Block) {
	for _, tx := range blk.Txs {
		a.txsSent[tx.From]++
		if rcpt, ok := a.m.Chain.Receipt(tx.Hash()); ok {
			a.eventsSeen += len(rcpt.Events)
		}
	}
}

// CheckBlock verifies the per-block invariants: the gas bound, the tx
// root commitment, and receipt consistency (every transaction has a
// receipt at this height whose gas totals match the header claim).
func (a *Auditor) CheckBlock(blk *ledger.Block) []Violation {
	var out []Violation
	h := blk.Header.Height
	add := func(inv, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, Height: h, Detail: fmt.Sprintf(format, args...)})
	}
	if limit := a.m.Chain.GasLimit(); blk.Header.GasUsed > limit {
		add("gas-limit", "block gas %d > limit %d", blk.Header.GasUsed, limit)
	}
	if root := ledger.TxRoot(blk.Txs); root != blk.Header.TxRoot {
		add("tx-root", "computed %s, header %s", root.Short(), blk.Header.TxRoot.Short())
	}
	var gasSum uint64
	for i, tx := range blk.Txs {
		rcpt, ok := a.m.Chain.Receipt(tx.Hash())
		if !ok {
			add("receipts", "tx %d (%s) has no receipt", i, tx.Hash().Short())
			continue
		}
		if rcpt.Height != h {
			add("receipts", "tx %d receipt height %d, block %d", i, rcpt.Height, h)
		}
		gasSum += rcpt.GasUsed
		if !rcpt.Succeeded() && len(rcpt.Events) != 0 {
			add("receipts", "tx %d failed but kept %d events", i, len(rcpt.Events))
		}
	}
	if gasSum != blk.Header.GasUsed {
		add("gas-accounting", "receipts total %d, header claims %d", gasSum, blk.Header.GasUsed)
	}
	return out
}

// CheckGlobal verifies the whole-state invariants against the live
// market: native supply conservation, per-account nonce accounting,
// state-root and journal hygiene, and token-contract conservation.
func (a *Auditor) CheckGlobal() []Violation {
	var out []Violation
	st := a.m.Chain.State()
	h := a.m.Height()
	add := func(inv, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, Height: h, Detail: fmt.Sprintf(format, args...)})
	}

	if total := st.TotalBalance(); total != a.baselineSupply {
		add("supply-conservation", "native total %d, genesis total %d", total, a.baselineSupply)
	}

	// Nonce accounting: every account's nonce equals the transactions it
	// sent; no account sent transactions without its nonce keeping up.
	seen := make(map[identity.Address]bool, len(a.txsSent))
	for _, addr := range st.Accounts() {
		seen[addr] = true
		if n := st.Nonce(addr); n != a.txsSent[addr] {
			add("nonce-accounting", "%s nonce %d, sent %d txs", addr.Short(), n, a.txsSent[addr])
		}
	}
	for addr, sent := range a.txsSent {
		if !seen[addr] && sent != 0 {
			add("nonce-accounting", "%s sent %d txs but is absent from state", addr.Short(), sent)
		}
	}

	// State-root determinism and journal hygiene at the tip.
	head := a.m.Chain.Head()
	if root := st.Root(); root != head.Header.StateRoot {
		add("state-root", "live root %s, head commits %s", root.Short(), head.Header.StateRoot.Short())
	}
	if n := st.JournalLen(); n != 0 {
		add("journal", "%d uncommitted journal entries after seal", n)
	}

	// Event-log consistency: the flat audit log is exactly the
	// concatenation of every observed receipt's events.
	if logged := len(a.m.Chain.Events("")); logged != a.eventsSeen {
		add("event-log", "audit log has %d events, receipts carried %d", logged, a.eventsSeen)
	}

	// Usage-control invariants over the flat audit log: every recorded
	// policy decision must re-derive identically offline (same code from
	// the policy in force and the replay-derived invocation count, every
	// late deny explained by the match-time policy or a mutation), and no
	// settled workload may carry a policy-bearing dataset without an
	// allowed admission decision.
	events := a.m.Chain.Events("")
	rep := policy.ReplayDecisions(events)
	for _, mm := range rep.Mismatches {
		add("policy-decision-replay", "%s", mm)
	}
	for _, u := range rep.UnexplainedDenies {
		add("policy-decision-replay", "%s", u)
	}
	for _, v := range market.VerifyPolicySettlements(events) {
		add("policy-settlement", "%s", v)
	}

	// Deployed policy bytecode: every artifact the chain ever accepted
	// must still decode, pass static verification, and re-verify against
	// its embedded source — deployed code stays auditable forever.
	for i, ev := range events {
		if ev.Topic != policy.EvPolicyCode {
			continue
		}
		dataID, _, blob, err := policy.DecodePolicySet(ev.Data)
		if err != nil {
			add("policy-code-audit", "event %d: %v", i, err)
			continue
		}
		mod, err := vm.Decode(blob)
		if err != nil {
			add("policy-code-audit", "event %d: dataset %s artifact: %v", i, dataID.Short(), err)
			continue
		}
		if err := vm.VerifySource(mod); err != nil {
			add("policy-code-audit", "event %d: dataset %s artifact: %v", i, dataID.Short(), err)
		}
	}

	for _, c := range a.erc20s {
		out = append(out, a.checkERC20(c, h)...)
	}
	for _, c := range a.erc721s {
		out = append(out, a.checkERC721(c, h)...)
	}
	return out
}

// storageUint64 decodes a stored uint64, mapping the zero-deletes
// convention (absent key) to 0.
func storageUint64(st *ledger.State, c identity.Address, key string) (uint64, error) {
	raw := st.GetStorage(c, key)
	if raw == nil {
		return 0, nil
	}
	return contract.NewDecoder(raw).Uint64()
}

// checkERC20 verifies token conservation: the balance map sums to the
// recorded total supply.
func (a *Auditor) checkERC20(c identity.Address, h uint64) []Violation {
	var out []Violation
	st := a.m.Chain.State()
	var sum uint64
	for _, key := range st.StorageKeys(c, "bal/") {
		v, err := storageUint64(st, c, key)
		if err != nil {
			out = append(out, Violation{Invariant: "erc20-conservation", Height: h,
				Detail: fmt.Sprintf("%s %s: %v", c.Short(), key, err)})
			continue
		}
		sum += v
	}
	supply, err := storageUint64(st, c, "supply")
	if err != nil {
		return append(out, Violation{Invariant: "erc20-conservation", Height: h,
			Detail: fmt.Sprintf("%s supply: %v", c.Short(), err)})
	}
	if sum != supply {
		out = append(out, Violation{Invariant: "erc20-conservation", Height: h,
			Detail: fmt.Sprintf("%s balances sum %d, supply %d", c.Short(), sum, supply)})
	}
	return out
}

// checkERC721 verifies deed consistency: per-owner counters sum to the
// number of owned tokens, and no approval dangles for a token without
// an owner.
func (a *Auditor) checkERC721(c identity.Address, h uint64) []Violation {
	var out []Violation
	st := a.m.Chain.State()
	owners := st.StorageKeys(c, "owner/")
	var cntSum uint64
	for _, key := range st.StorageKeys(c, "cnt/") {
		v, err := storageUint64(st, c, key)
		if err != nil {
			out = append(out, Violation{Invariant: "erc721-consistency", Height: h,
				Detail: fmt.Sprintf("%s %s: %v", c.Short(), key, err)})
			continue
		}
		cntSum += v
	}
	if cntSum != uint64(len(owners)) {
		out = append(out, Violation{Invariant: "erc721-consistency", Height: h,
			Detail: fmt.Sprintf("%s counters sum %d, %d tokens owned", c.Short(), cntSum, len(owners))})
	}
	owned := make(map[string]bool, len(owners))
	for _, key := range owners {
		owned[key[len("owner/"):]] = true
	}
	for _, key := range st.StorageKeys(c, "approved/") {
		if id := key[len("approved/"):]; !owned[id] {
			out = append(out, Violation{Invariant: "erc721-consistency", Height: h,
				Detail: fmt.Sprintf("%s approval dangles for unowned token %s", c.Short(), id)})
		}
	}
	return out
}
