package proptest

import (
	"encoding/json"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
)

// Corruption injectors: each takes a valid exported chain and produces
// a subtly broken variant. The detection test demands that every replay
// mode rejects every variant — if any slips through, the ledger has a
// validation hole.
//
// The export-level kinds (CorruptExport) simulate a tampering relay:
// they break the transaction signature, the tx-root commitment, or the
// proposer seal, and must be caught by the header/stateless checks. The
// forged-block kinds (ForgeSkippedNonceBlock, ForgeBalanceClaimBlock)
// simulate a *malicious authority*: the seal is genuine, every
// commitment is internally consistent with the hostile payload, and
// only the execution-level checks (nonce continuity, recomputed state
// root) can catch them.

// Corruption enumerates the export-level tampering kinds.
type Corruption int

// Export-level corruption kinds.
const (
	// CorruptValue bumps a transaction's value — a mutated balance
	// transfer. Breaks the sender signature.
	CorruptValue Corruption = iota
	// CorruptDropTx removes a block's last transaction — a dropped
	// receipt. Breaks the tx-root commitment.
	CorruptDropTx
	// CorruptNonce bumps a transaction's nonce — a skipped nonce.
	// Breaks the sender signature.
	CorruptNonce
	// CorruptGasUsed bumps a header's gas total. Breaks the seal.
	CorruptGasUsed
	// CorruptStateRoot flips a byte of a header's state root. Breaks
	// the seal.
	CorruptStateRoot
)

// Corruptions lists every export-level kind, for exhaustive sweeps.
var Corruptions = []Corruption{
	CorruptValue, CorruptDropTx, CorruptNonce, CorruptGasUsed, CorruptStateRoot,
}

// String implements fmt.Stringer.
func (c Corruption) String() string {
	switch c {
	case CorruptValue:
		return "mutated-value"
	case CorruptDropTx:
		return "dropped-tx"
	case CorruptNonce:
		return "skipped-nonce"
	case CorruptGasUsed:
		return "mutated-gas"
	case CorruptStateRoot:
		return "mutated-state-root"
	default:
		return fmt.Sprintf("Corruption(%d)", int(c))
	}
}

// CorruptExport applies one corruption kind to an exported chain. seed
// picks which eligible block is hit, so sweeps can vary the target. It
// fails if the export holds no block eligible for the kind (e.g. no
// block with transactions).
func CorruptExport(data []byte, kind Corruption, seed uint64) ([]byte, error) {
	exp, err := decodeExport(data)
	if err != nil {
		return nil, err
	}
	var eligible []int
	for i, b := range exp.Blocks {
		if len(b.Txs) > 0 || kind == CorruptGasUsed || kind == CorruptStateRoot {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("proptest: no block eligible for %s", kind)
	}
	target := exp.Blocks[eligible[seed%uint64(len(eligible))]]

	switch kind {
	case CorruptValue:
		target.Txs[0].Value++
	case CorruptDropTx:
		target.Txs = target.Txs[:len(target.Txs)-1]
	case CorruptNonce:
		target.Txs[0].Nonce++
	case CorruptGasUsed:
		target.Header.GasUsed++
	case CorruptStateRoot:
		target.Header.StateRoot[0] ^= 0xff
	default:
		return nil, fmt.Errorf("proptest: unknown corruption %d", int(kind))
	}
	return json.Marshal(exp)
}

// forgeHeader assembles an internally consistent header over txs on top
// of the live chain's head, claiming the given state root.
func forgeHeader(m *market.Market, txs []*ledger.Transaction, claimRoot crypto.Digest, gasUsed uint64) ledger.Header {
	parent := m.Chain.Head()
	return ledger.Header{
		Parent:    parent.Hash(),
		Height:    parent.Header.Height + 1,
		Timestamp: parent.Header.Timestamp + 1,
		TxRoot:    ledger.TxRoot(txs),
		StateRoot: claimRoot,
		GasUsed:   gasUsed,
	}
}

// ForgeSkippedNonceBlock builds a validly-sealed block whose single
// transaction skips the sender's next nonce. Seal, tx root, signatures
// and intrinsic gas all check out; only the apply-level nonce
// continuity check can reject it.
func ForgeSkippedNonceBlock(m *market.Market, authority, sender *identity.Identity) *ledger.Block {
	nonce := m.Chain.State().Nonce(sender.Address()) + 1 // skip one
	tx := ledger.SignTx(sender, authority.Address(), 1, nonce, ledger.TxBaseGas, nil)
	blk := &ledger.Block{
		Header: forgeHeader(m, []*ledger.Transaction{tx},
			m.Chain.Head().Header.StateRoot, tx.IntrinsicGas()),
		Txs: []*ledger.Transaction{tx},
	}
	blk.Seal(authority)
	return blk
}

// ForgeBalanceClaimBlock builds a validly-sealed block whose
// transaction is perfectly valid but whose header claims the parent's
// state root — a balance mutation hidden behind a stale commitment.
// Everything up to execution checks out; only the recomputed state root
// exposes the lie.
func ForgeBalanceClaimBlock(m *market.Market, authority, sender *identity.Identity) *ledger.Block {
	nonce := m.Chain.State().Nonce(sender.Address())
	tx := ledger.SignTx(sender, authority.Address(), 1, nonce, ledger.TxBaseGas, nil)
	blk := &ledger.Block{
		Header: forgeHeader(m, []*ledger.Transaction{tx},
			m.Chain.Head().Header.StateRoot, tx.IntrinsicGas()),
		Txs: []*ledger.Transaction{tx},
	}
	blk.Seal(authority)
	return blk
}

// AppendForgedBlock attaches a forged block to an exported chain,
// producing the byte stream a replica syncing from a malicious
// authority would receive.
func AppendForgedBlock(data []byte, blk *ledger.Block) ([]byte, error) {
	exp, err := decodeExport(data)
	if err != nil {
		return nil, err
	}
	exp.Blocks = append(exp.Blocks, blk)
	return json.Marshal(exp)
}
