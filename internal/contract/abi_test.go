package contract

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

func TestABIRoundTrip(t *testing.T) {
	addr, _ := identity.AddressFromHex("0102030405060708090a0b0c0d0e0f1011121314")
	dg := crypto.HashString("digest")
	enc := NewEncoder().
		Bool(true).
		Uint64(42).
		Int64(-7).
		String("hello").
		Blob([]byte{1, 2, 3}).
		Address(addr).
		Digest(dg)

	dec := NewDecoder(enc.Bytes())
	if v, err := dec.Bool(); err != nil || v != true {
		t.Fatalf("Bool: %v %v", v, err)
	}
	if v, err := dec.Uint64(); err != nil || v != 42 {
		t.Fatalf("Uint64: %v %v", v, err)
	}
	if v, err := dec.Int64(); err != nil || v != -7 {
		t.Fatalf("Int64: %v %v", v, err)
	}
	if v, err := dec.String(); err != nil || v != "hello" {
		t.Fatalf("String: %v %v", v, err)
	}
	if v, err := dec.Blob(); err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Blob: %v %v", v, err)
	}
	if v, err := dec.Address(); err != nil || v != addr {
		t.Fatalf("Address: %v %v", v, err)
	}
	if v, err := dec.Digest(); err != nil || v != dg {
		t.Fatalf("Digest: %v %v", v, err)
	}
	if err := dec.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestABITypeMismatch(t *testing.T) {
	enc := NewEncoder().Uint64(1)
	dec := NewDecoder(enc.Bytes())
	if _, err := dec.String(); !errors.Is(err, ErrABIType) {
		t.Fatalf("want ErrABIType, got %v", err)
	}
}

func TestABITruncated(t *testing.T) {
	enc := NewEncoder().String("hello")
	b := enc.Bytes()
	dec := NewDecoder(b[:len(b)-2])
	if _, err := dec.String(); !errors.Is(err, ErrABITruncated) {
		t.Fatalf("want ErrABITruncated, got %v", err)
	}
	empty := NewDecoder(nil)
	if _, err := empty.Uint64(); !errors.Is(err, ErrABITruncated) {
		t.Fatalf("want ErrABITruncated, got %v", err)
	}
}

func TestABIDoneRejectsTrailing(t *testing.T) {
	enc := NewEncoder().Uint64(1).Uint64(2)
	dec := NewDecoder(enc.Bytes())
	dec.Uint64()
	if err := dec.Done(); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestABIBlobCopied(t *testing.T) {
	enc := NewEncoder().Blob([]byte{9, 9})
	buf := enc.Bytes()
	dec := NewDecoder(buf)
	blob, _ := dec.Blob()
	blob[0] = 0
	dec2 := NewDecoder(buf)
	blob2, _ := dec2.Blob()
	if blob2[0] != 9 {
		t.Fatal("decoded blob aliases the input buffer")
	}
}

func TestABIPropertyQuick(t *testing.T) {
	f := func(u uint64, i int64, s string, b []byte, flag bool) bool {
		enc := NewEncoder().Uint64(u).Int64(i).String(s).Blob(b).Bool(flag)
		dec := NewDecoder(enc.Bytes())
		gu, err := dec.Uint64()
		if err != nil || gu != u {
			return false
		}
		gi, err := dec.Int64()
		if err != nil || gi != i {
			return false
		}
		gs, err := dec.String()
		if err != nil || gs != s {
			return false
		}
		gb, err := dec.Blob()
		if err != nil || !bytes.Equal(gb, b) {
			return false
		}
		gf, err := dec.Bool()
		if err != nil || gf != flag {
			return false
		}
		return dec.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
