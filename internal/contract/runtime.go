package contract

import (
	"encoding/binary"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/telemetry"
)

// Runtime instrumentation: call/deploy volume, the revert rate, per-call
// gas and the state-journal depth left by each applied transaction.
var (
	mCalls        = telemetry.C("contract.calls_total")
	mDeploys      = telemetry.C("contract.deploys_total")
	mReverts      = telemetry.C("contract.reverts_total")
	mCallGas      = telemetry.H("contract.call.gas", telemetry.GasBuckets)
	mCallSeconds  = telemetry.H("contract.call.seconds", telemetry.TimeBuckets)
	mJournalDepth = telemetry.H("contract.journal.depth", telemetry.CountBuckets)
)

// codeKey is the reserved storage slot holding a contract's code name.
const codeKey = "__code"

// Contract is a deployed program. Implementations must be stateless Go
// values: all persistent data lives in the Context's storage, so the same
// instance can serve every deployment of its code.
type Contract interface {
	// Init runs once at deployment with the constructor arguments.
	Init(ctx *Context, args []byte) error

	// Call executes a method invocation and returns its ABI-encoded
	// result. Returning an error reverts all effects of the call.
	Call(ctx *Context, method string, args []byte) ([]byte, error)
}

// Runtime dispatches deploy and call transactions to registered contract
// code. It implements ledger.TxApplier, wrapping plain transfers for
// non-contract destinations.
type Runtime struct {
	codes map[string]Contract
}

// NewRuntime returns a runtime with an empty code registry.
func NewRuntime() *Runtime {
	return &Runtime{codes: make(map[string]Contract)}
}

// RegisterCode makes a contract implementation deployable under the given
// code name. Registration is not a deployment; it corresponds to the
// bytecode being known to the network.
func (r *Runtime) RegisterCode(name string, c Contract) error {
	if name == "" {
		return fmt.Errorf("contract: empty code name")
	}
	if _, dup := r.codes[name]; dup {
		return fmt.Errorf("contract: code %q already registered", name)
	}
	r.codes[name] = c
	return nil
}

// ContractAddress computes the deterministic deployment address for a
// deployer/nonce pair, mirroring Ethereum's CREATE rule.
func ContractAddress(deployer identity.Address, nonce uint64) identity.Address {
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	d := crypto.HashConcat([]byte("pds2/create"), deployer[:], nb[:])
	var a identity.Address
	copy(a[:], d[:identity.AddressSize])
	return a
}

// DeployData encodes the transaction payload for a deployment.
func DeployData(codeName string, initArgs []byte) []byte {
	return NewEncoder().String(codeName).Blob(initArgs).Bytes()
}

// CallData encodes the transaction payload for a method call.
func CallData(method string, args []byte) []byte {
	return NewEncoder().String(method).Blob(args).Bytes()
}

// Apply implements ledger.TxApplier: it routes contract creations and
// calls, and falls back to a plain transfer for ordinary destinations.
func (r *Runtime) Apply(st ledger.StateAccessor, tx *ledger.Transaction, height uint64) (*ledger.Receipt, error) {
	isCall := !tx.IsContractCreation() && len(st.GetStorage(tx.To, codeKey)) > 0
	if !tx.IsContractCreation() && !isCall {
		return ledger.TransferApplier{}.Apply(st, tx, height)
	}

	if tx.IsContractCreation() {
		mDeploys.Inc()
	} else {
		mCalls.Inc()
	}
	timer := mCallSeconds.Time()
	rcpt := &ledger.Receipt{TxHash: tx.Hash(), Height: height}
	gasLeft := tx.GasLimit - tx.IntrinsicGas()
	var events []ledger.Event

	snap := st.Snapshot()
	nonce := st.Nonce(tx.From)
	st.BumpNonce(tx.From)

	fail := func(err error) (*ledger.Receipt, error) {
		st.RevertTo(snap)
		st.BumpNonce(tx.From) // failed txs still consume their nonce
		rcpt.Status = ledger.StatusFailed
		rcpt.Err = err.Error()
		rcpt.GasUsed = tx.GasLimit - gasLeft
		mReverts.Inc()
		mCallGas.Observe(float64(rcpt.GasUsed))
		mJournalDepth.Observe(float64(st.Snapshot()))
		timer.Stop()
		return rcpt, nil
	}

	if tx.IsContractCreation() {
		dec := NewDecoder(tx.Data)
		codeName, err := dec.String()
		if err != nil {
			return fail(fmt.Errorf("contract: bad deploy data: %w", err))
		}
		initArgs, err := dec.Blob()
		if err != nil {
			return fail(fmt.Errorf("contract: bad deploy data: %w", err))
		}
		code, ok := r.codes[codeName]
		if !ok {
			return fail(fmt.Errorf("contract: unknown code %q", codeName))
		}
		if gasLeft < GasCreate {
			return fail(ErrOutOfGas)
		}
		gasLeft -= GasCreate

		addr := ContractAddress(tx.From, nonce)
		if len(st.GetStorage(addr, codeKey)) > 0 {
			return fail(fmt.Errorf("contract: address %s already deployed", addr.Short()))
		}
		if err := st.SubBalance(tx.From, tx.Value); err != nil {
			return fail(err)
		}
		if err := st.AddBalance(addr, tx.Value); err != nil {
			return fail(err)
		}
		st.SetStorage(addr, codeKey, []byte(codeName))

		ctx := &Context{
			rt: r, st: st,
			Self: addr, Caller: tx.From, Origin: tx.From,
			Value: tx.Value, Height: height,
			gasLeft: &gasLeft, events: &events,
		}
		if err := code.Init(ctx, initArgs); err != nil {
			return fail(err)
		}
		rcpt.Return = addr[:]
	} else {
		dec := NewDecoder(tx.Data)
		method, err := dec.String()
		if err != nil {
			return fail(fmt.Errorf("contract: bad call data: %w", err))
		}
		args, err := dec.Blob()
		if err != nil {
			return fail(fmt.Errorf("contract: bad call data: %w", err))
		}
		if err := st.SubBalance(tx.From, tx.Value); err != nil {
			return fail(err)
		}
		if err := st.AddBalance(tx.To, tx.Value); err != nil {
			return fail(err)
		}
		ret, err := r.call(st, tx.From, tx.From, tx.To, method, args, 0, height, &gasLeft, &events, 0)
		if err != nil {
			return fail(err)
		}
		rcpt.Return = ret
	}

	rcpt.Status = ledger.StatusOK
	rcpt.GasUsed = tx.GasLimit - gasLeft
	rcpt.Events = events
	mCallGas.Observe(float64(rcpt.GasUsed))
	mJournalDepth.Observe(float64(st.Snapshot()))
	timer.Stop()
	return rcpt, nil
}

// call runs a (possibly nested) contract method. value moves from caller
// to callee before execution. On error, all callee effects are reverted.
func (r *Runtime) call(st ledger.StateAccessor, caller, origin, to identity.Address, method string, args []byte, value uint64, height uint64, gasLeft *uint64, events *[]ledger.Event, depth int) ([]byte, error) {
	code, err := r.codeAt(st, to)
	if err != nil {
		return nil, err
	}
	snap := st.Snapshot()
	eventsLen := len(*events)
	if value > 0 {
		if err := st.SubBalance(caller, value); err != nil {
			return nil, Revertf("call value: %v", err)
		}
		if err := st.AddBalance(to, value); err != nil {
			return nil, Revertf("call value: %v", err)
		}
	}
	ctx := &Context{
		rt: r, st: st,
		Self: to, Caller: caller, Origin: origin,
		Value: value, Height: height,
		gasLeft: gasLeft, events: events, depth: depth,
	}
	ret, err := code.Call(ctx, method, args)
	if err != nil {
		st.RevertTo(snap)
		*events = (*events)[:eventsLen]
		return nil, err
	}
	return ret, nil
}

// callStatic runs a method with all mutations disabled.
func (r *Runtime) callStatic(st ledger.StateAccessor, caller, origin, to identity.Address, method string, args []byte, height uint64, gasLeft *uint64, depth int) ([]byte, error) {
	code, err := r.codeAt(st, to)
	if err != nil {
		return nil, err
	}
	var events []ledger.Event
	ctx := &Context{
		rt: r, st: st,
		Self: to, Caller: caller, Origin: origin,
		Height:  height,
		gasLeft: gasLeft, events: &events, depth: depth,
		static: true,
	}
	return code.Call(ctx, method, args)
}

func (r *Runtime) codeAt(st ledger.StateAccessor, addr identity.Address) (Contract, error) {
	name := st.GetStorage(addr, codeKey)
	if len(name) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotContract, addr.Short())
	}
	code, ok := r.codes[string(name)]
	if !ok {
		return nil, fmt.Errorf("contract: code %q not registered on this node", name)
	}
	return code, nil
}

// ViewGasLimit is the gas allowance for read-only view calls from
// off-chain clients.
const ViewGasLimit uint64 = 50_000_000

// View executes a read-only method against the current state without a
// transaction. Any state the method tries to write causes a revert; the
// state is always left untouched.
func (r *Runtime) View(st ledger.StateAccessor, caller, to identity.Address, method string, args []byte) ([]byte, error) {
	gasLeft := ViewGasLimit
	snap := st.Snapshot()
	defer st.RevertTo(snap)
	return r.callStatic(st, caller, caller, to, method, args, 0, &gasLeft, 0)
}
