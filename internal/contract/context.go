package contract

import (
	"errors"
	"fmt"

	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// Gas schedule for contract operations, following the order of magnitude
// of the EVM so that per-lifecycle gas results (experiment E2) are
// comparable with a public-chain deployment.
const (
	GasSload      uint64 = 200   // storage read
	GasSstore     uint64 = 5_000 // storage write
	GasLogBase    uint64 = 375   // event emission
	GasLogPerByte uint64 = 8
	GasCall       uint64 = 700 // cross-contract call
	GasTransfer   uint64 = 9_000
	GasCreate     uint64 = 32_000 // contract deployment
	GasCompute    uint64 = 1      // unit of metered contract computation
	GasVMDeploy   uint64 = 20_000 // policy bytecode deployment (decode + source re-verify)
)

// MaxCallDepth bounds cross-contract call recursion.
const MaxCallDepth = 64

// Execution errors. ErrRevert wraps contract-level failures so callers
// can distinguish them from runtime misuse.
var (
	ErrOutOfGas      = errors.New("contract: out of gas")
	ErrRevert        = errors.New("contract: execution reverted")
	ErrCallDepth     = errors.New("contract: max call depth exceeded")
	ErrUnknownMethod = errors.New("contract: unknown method")
	ErrNotContract   = errors.New("contract: destination is not a contract")
)

// Revertf builds a contract-level revert error; the message lands in the
// transaction receipt.
func Revertf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrRevert, fmt.Sprintf(format, args...))
}

// Context is the execution environment handed to a contract method. It
// scopes all storage access to the contract's own address, meters gas and
// collects emitted events. A Context is valid only for the duration of
// the call it was created for.
type Context struct {
	rt      *Runtime
	st      ledger.StateAccessor
	Self    identity.Address // the executing contract
	Caller  identity.Address // immediate caller (account or contract)
	Origin  identity.Address // externally-owned account that sent the tx
	Value   uint64           // native value attached to this call
	Height  uint64           // block height being executed
	gasLeft *uint64
	events  *[]ledger.Event
	depth   int
	static  bool // true in view calls: all mutations are rejected
}

// UseGas consumes n units of gas, failing with ErrOutOfGas when the
// budget is exhausted.
func (c *Context) UseGas(n uint64) error {
	if *c.gasLeft < n {
		*c.gasLeft = 0
		return ErrOutOfGas
	}
	*c.gasLeft -= n
	return nil
}

// GasLeft returns the remaining gas budget.
func (c *Context) GasLeft() uint64 { return *c.gasLeft }

// Get reads a key from the contract's own storage.
func (c *Context) Get(key string) ([]byte, error) {
	if err := c.UseGas(GasSload); err != nil {
		return nil, err
	}
	return c.st.GetStorage(c.Self, key), nil
}

// Set writes a key in the contract's own storage. Empty values delete.
func (c *Context) Set(key string, value []byte) error {
	if c.static {
		return Revertf("state write in view call")
	}
	if err := c.UseGas(GasSstore); err != nil {
		return err
	}
	c.st.SetStorage(c.Self, key, value)
	return nil
}

// GetUint64 reads a uint64 slot; a missing key reads as zero.
func (c *Context) GetUint64(key string) (uint64, error) {
	b, err := c.Get(key)
	if err != nil {
		return 0, err
	}
	if len(b) == 0 {
		return 0, nil
	}
	d := NewDecoder(b)
	return d.Uint64()
}

// SetUint64 writes a uint64 slot. Zero deletes the slot, so unset and
// zero are indistinguishable — the usual convention for balances.
func (c *Context) SetUint64(key string, v uint64) error {
	if v == 0 {
		return c.Set(key, nil)
	}
	return c.Set(key, NewEncoder().Uint64(v).Bytes())
}

// Keys lists the contract's storage keys with the given prefix, in sorted
// order, charging one read per returned key.
func (c *Context) Keys(prefix string) ([]string, error) {
	keys := c.st.StorageKeys(c.Self, prefix)
	if err := c.UseGas(GasSload * uint64(len(keys)+1)); err != nil {
		return nil, err
	}
	return keys, nil
}

// Emit appends an event to the transaction's audit log.
func (c *Context) Emit(topic string, data []byte) error {
	if c.static {
		return Revertf("event emission in view call")
	}
	if err := c.UseGas(GasLogBase + GasLogPerByte*uint64(len(topic)+len(data))); err != nil {
		return err
	}
	*c.events = append(*c.events, ledger.Event{
		Contract: c.Self,
		Topic:    topic,
		Data:     append([]byte(nil), data...),
	})
	return nil
}

// EmitEncoded is Emit with ABI-encoded fields.
func (c *Context) EmitEncoded(topic string, enc *Encoder) error {
	return c.Emit(topic, enc.Bytes())
}

// BalanceOf returns the native-token balance of any account.
func (c *Context) BalanceOf(addr identity.Address) (uint64, error) {
	if err := c.UseGas(GasSload); err != nil {
		return 0, err
	}
	return c.st.Balance(addr), nil
}

// Transfer moves native tokens from the contract's own balance.
func (c *Context) Transfer(to identity.Address, amount uint64) error {
	if c.static {
		return Revertf("transfer in view call")
	}
	if err := c.UseGas(GasTransfer); err != nil {
		return err
	}
	if err := c.st.SubBalance(c.Self, amount); err != nil {
		return Revertf("contract balance too low: %v", err)
	}
	if err := c.st.AddBalance(to, amount); err != nil {
		return Revertf("credit failed: %v", err)
	}
	return nil
}

// CallContract invokes a method on another contract, transferring value
// from the current contract. The callee runs against the same journal, so
// an error reverts its effects while the caller may continue.
func (c *Context) CallContract(to identity.Address, method string, args []byte, value uint64) ([]byte, error) {
	if err := c.UseGas(GasCall); err != nil {
		return nil, err
	}
	if c.depth+1 > MaxCallDepth {
		return nil, ErrCallDepth
	}
	if c.static {
		return c.rt.callStatic(c.st, c.Self, c.Origin, to, method, args, c.Height, c.gasLeft, c.depth+1)
	}
	return c.rt.call(c.st, c.Self, c.Origin, to, method, args, value, c.Height, c.gasLeft, c.events, c.depth+1)
}

// ContractExists reports whether an address holds deployed code.
func (c *Context) ContractExists(addr identity.Address) (bool, error) {
	if err := c.UseGas(GasSload); err != nil {
		return false, err
	}
	return len(c.st.GetStorage(addr, codeKey)) > 0, nil
}
