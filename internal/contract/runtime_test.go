package contract

import (
	"errors"
	"strings"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// counterContract is a minimal test contract: an owner-set counter with
// increment, a failing method and a view.
type counterContract struct{}

func (counterContract) Init(ctx *Context, args []byte) error {
	dec := NewDecoder(args)
	start, err := dec.Uint64()
	if err != nil {
		return Revertf("bad init args: %v", err)
	}
	if err := ctx.SetUint64("count", start); err != nil {
		return err
	}
	return ctx.Set("owner", ctx.Caller[:])
}

func (counterContract) Call(ctx *Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "inc":
		v, err := ctx.GetUint64("count")
		if err != nil {
			return nil, err
		}
		if err := ctx.SetUint64("count", v+1); err != nil {
			return nil, err
		}
		if err := ctx.Emit("Incremented", NewEncoder().Uint64(v+1).Bytes()); err != nil {
			return nil, err
		}
		return NewEncoder().Uint64(v + 1).Bytes(), nil
	case "get":
		v, err := ctx.GetUint64("count")
		if err != nil {
			return nil, err
		}
		return NewEncoder().Uint64(v).Bytes(), nil
	case "boom":
		// Mutate first, then revert: effects must be rolled back.
		if err := ctx.SetUint64("count", 9999); err != nil {
			return nil, err
		}
		return nil, Revertf("boom")
	case "burn":
		for {
			if err := ctx.UseGas(10_000); err != nil {
				return nil, err
			}
		}
	case "callOther":
		dec := NewDecoder(args)
		other, err := dec.Address()
		if err != nil {
			return nil, Revertf("bad args: %v", err)
		}
		return ctx.CallContract(other, "inc", nil, 0)
	case "recurse":
		return ctx.CallContract(ctx.Self, "recurse", nil, 0)
	default:
		return nil, ErrUnknownMethod
	}
}

// payoutContract holds value and pays it out on demand; used to test
// native-value handling inside contracts.
type payoutContract struct{}

func (payoutContract) Init(*Context, []byte) error { return nil }

func (payoutContract) Call(ctx *Context, method string, args []byte) ([]byte, error) {
	switch method {
	case "payout":
		dec := NewDecoder(args)
		to, err := dec.Address()
		if err != nil {
			return nil, Revertf("bad args: %v", err)
		}
		amount, err := dec.Uint64()
		if err != nil {
			return nil, Revertf("bad args: %v", err)
		}
		return nil, ctx.Transfer(to, amount)
	default:
		return nil, ErrUnknownMethod
	}
}

// testEnv is a chain wired to a contract runtime with two funded users.
type testEnv struct {
	chain     *ledger.Chain
	rt        *Runtime
	authority *identity.Identity
	alice     *identity.Identity
	bob       *identity.Identity
	ts        uint64
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	rt := NewRuntime()
	if err := rt.RegisterCode("test/counter", counterContract{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterCode("test/payout", payoutContract{}); err != nil {
		t.Fatal(err)
	}
	authority := identity.New("auth", crypto.NewDRBGFromUint64(100, "contract-test"))
	alice := identity.New("alice", crypto.NewDRBGFromUint64(1, "contract-test"))
	bob := identity.New("bob", crypto.NewDRBGFromUint64(2, "contract-test"))
	chain, err := ledger.NewChain(ledger.ChainConfig{
		Authorities: []identity.Address{authority.Address()},
		Applier:     rt,
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 1_000_000,
			bob.Address():   1_000_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{chain: chain, rt: rt, authority: authority, alice: alice, bob: bob}
}

// run executes one transaction in its own block and returns the receipt.
func (e *testEnv) run(t *testing.T, tx *ledger.Transaction) *ledger.Receipt {
	t.Helper()
	e.ts++
	if _, err := e.chain.ProposeBlock(e.authority, e.ts, []*ledger.Transaction{tx}); err != nil {
		t.Fatalf("propose: %v", err)
	}
	rcpt, ok := e.chain.Receipt(tx.Hash())
	if !ok {
		t.Fatal("missing receipt")
	}
	return rcpt
}

// deployCounter deploys a counter starting at start and returns its address.
func (e *testEnv) deployCounter(t *testing.T, start uint64) identity.Address {
	t.Helper()
	nonce := e.chain.State().Nonce(e.alice.Address())
	data := DeployData("test/counter", NewEncoder().Uint64(start).Bytes())
	tx := ledger.SignTx(e.alice, identity.ZeroAddress, 0, nonce, 10_000_000, data)
	rcpt := e.run(t, tx)
	if !rcpt.Succeeded() {
		t.Fatalf("deploy failed: %s", rcpt.Err)
	}
	var addr identity.Address
	copy(addr[:], rcpt.Return)
	return addr
}

func TestDeployAndCall(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 10)

	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, counter, 0, nonce, 1_000_000, CallData("inc", nil))
	rcpt := e.run(t, tx)
	if !rcpt.Succeeded() {
		t.Fatalf("call failed: %s", rcpt.Err)
	}
	v, err := NewDecoder(rcpt.Return).Uint64()
	if err != nil || v != 11 {
		t.Fatalf("inc returned %d, %v", v, err)
	}
	if len(rcpt.Events) != 1 || rcpt.Events[0].Topic != "Incremented" {
		t.Fatalf("events: %+v", rcpt.Events)
	}
}

func TestViewCall(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 5)
	ret, err := e.rt.View(e.chain.State(), e.bob.Address(), counter, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := NewDecoder(ret).Uint64(); v != 5 {
		t.Fatalf("view returned %d", v)
	}
	// Views cannot mutate.
	if _, err := e.rt.View(e.chain.State(), e.bob.Address(), counter, "inc", nil); err == nil {
		t.Fatal("mutating view accepted")
	}
}

func TestRevertRollsBackState(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 7)

	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, counter, 0, nonce, 1_000_000, CallData("boom", nil))
	rcpt := e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("boom succeeded")
	}
	if !strings.Contains(rcpt.Err, "boom") {
		t.Fatalf("revert reason lost: %q", rcpt.Err)
	}
	// Counter still 7.
	ret, err := e.rt.View(e.chain.State(), e.alice.Address(), counter, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := NewDecoder(ret).Uint64(); v != 7 {
		t.Fatalf("state not rolled back: count = %d", v)
	}
	// Nonce was still consumed.
	if e.chain.State().Nonce(e.alice.Address()) != nonce+1 {
		t.Fatal("failed call did not consume nonce")
	}
}

func TestOutOfGas(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 0)
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, counter, 0, nonce, 200_000, CallData("burn", nil))
	rcpt := e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("gas burner succeeded")
	}
	if !strings.Contains(rcpt.Err, "out of gas") {
		t.Fatalf("err = %q", rcpt.Err)
	}
	if rcpt.GasUsed != 200_000 {
		t.Fatalf("out-of-gas tx used %d of 200000", rcpt.GasUsed)
	}
}

func TestCrossContractCall(t *testing.T) {
	e := newTestEnv(t)
	c1 := e.deployCounter(t, 0)
	c2 := e.deployCounter(t, 100)

	nonce := e.chain.State().Nonce(e.alice.Address())
	args := NewEncoder().Address(c2).Bytes()
	tx := ledger.SignTx(e.alice, c1, 0, nonce, 1_000_000, CallData("callOther", args))
	rcpt := e.run(t, tx)
	if !rcpt.Succeeded() {
		t.Fatalf("cross call failed: %s", rcpt.Err)
	}
	ret, _ := e.rt.View(e.chain.State(), e.alice.Address(), c2, "get", nil)
	if v, _ := NewDecoder(ret).Uint64(); v != 101 {
		t.Fatalf("callee count = %d, want 101", v)
	}
}

func TestCallDepthLimit(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 0)
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, counter, 0, nonce, 40_000_000, CallData("recurse", nil))
	rcpt := e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("infinite recursion succeeded")
	}
	if !strings.Contains(rcpt.Err, "depth") {
		t.Fatalf("err = %q", rcpt.Err)
	}
}

func TestContractHoldsAndPaysValue(t *testing.T) {
	e := newTestEnv(t)
	// Deploy payout contract funded with 500.
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, identity.ZeroAddress, 500, nonce, 10_000_000, DeployData("test/payout", nil))
	rcpt := e.run(t, tx)
	if !rcpt.Succeeded() {
		t.Fatalf("deploy: %s", rcpt.Err)
	}
	var addr identity.Address
	copy(addr[:], rcpt.Return)
	if e.chain.State().Balance(addr) != 500 {
		t.Fatalf("contract balance = %d", e.chain.State().Balance(addr))
	}

	// Pay 200 to bob.
	before := e.chain.State().Balance(e.bob.Address())
	nonce = e.chain.State().Nonce(e.alice.Address())
	args := NewEncoder().Address(e.bob.Address()).Uint64(200).Bytes()
	tx = ledger.SignTx(e.alice, addr, 0, nonce, 1_000_000, CallData("payout", args))
	rcpt = e.run(t, tx)
	if !rcpt.Succeeded() {
		t.Fatalf("payout: %s", rcpt.Err)
	}
	if got := e.chain.State().Balance(e.bob.Address()); got != before+200 {
		t.Fatalf("bob balance = %d, want %d", got, before+200)
	}
	if e.chain.State().Balance(addr) != 300 {
		t.Fatalf("contract balance = %d, want 300", e.chain.State().Balance(addr))
	}

	// Overdraft reverts.
	nonce = e.chain.State().Nonce(e.alice.Address())
	args = NewEncoder().Address(e.bob.Address()).Uint64(1_000).Bytes()
	tx = ledger.SignTx(e.alice, addr, 0, nonce, 1_000_000, CallData("payout", args))
	rcpt = e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("overdraft payout succeeded")
	}
	if e.chain.State().Balance(addr) != 300 {
		t.Fatal("failed payout changed contract balance")
	}
}

func TestDeployUnknownCodeFails(t *testing.T) {
	e := newTestEnv(t)
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, identity.ZeroAddress, 0, nonce, 10_000_000, DeployData("no/such", nil))
	rcpt := e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("unknown code deployed")
	}
}

func TestUnknownMethodReverts(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 0)
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, counter, 0, nonce, 1_000_000, CallData("nope", nil))
	rcpt := e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("unknown method succeeded")
	}
}

func TestPlainTransferStillWorks(t *testing.T) {
	e := newTestEnv(t)
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, e.bob.Address(), 123, nonce, 50_000, nil)
	rcpt := e.run(t, tx)
	if !rcpt.Succeeded() {
		t.Fatalf("transfer failed: %s", rcpt.Err)
	}
	if e.chain.State().Balance(e.bob.Address()) != 1_000_123 {
		t.Fatal("transfer not applied")
	}
}

func TestContractAddressDeterministic(t *testing.T) {
	a := identity.New("x", crypto.NewDRBGFromUint64(9, "t")).Address()
	if ContractAddress(a, 0) != ContractAddress(a, 0) {
		t.Fatal("not deterministic")
	}
	if ContractAddress(a, 0) == ContractAddress(a, 1) {
		t.Fatal("nonce ignored")
	}
}

func TestRegisterCodeValidation(t *testing.T) {
	rt := NewRuntime()
	if err := rt.RegisterCode("", counterContract{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := rt.RegisterCode("a", counterContract{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterCode("a", counterContract{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestViewCannotCallMutatingNested(t *testing.T) {
	e := newTestEnv(t)
	c1 := e.deployCounter(t, 0)
	c2 := e.deployCounter(t, 0)
	// A view on "callOther" must fail: the nested call mutates.
	args := NewEncoder().Address(c2).Bytes()
	if _, err := e.rt.View(e.chain.State(), e.alice.Address(), c1, "callOther", args); !errors.Is(err, ErrRevert) {
		t.Fatalf("want ErrRevert, got %v", err)
	}
}

func TestContextHelpers(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 1)
	// Keys listing through a contract: use the runtime's View with a
	// bespoke code that lists keys. Instead exercise helpers directly on
	// a context by calling View on "get" and checking gas movement via
	// the receipt of a mutating call.
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, counter, 0, nonce, 1_000_000, CallData("inc", nil))
	rcpt := e.run(t, tx)
	if !rcpt.Succeeded() {
		t.Fatal(rcpt.Err)
	}
	// Gas must cover intrinsic + at least one sload and one sstore.
	if rcpt.GasUsed < ledger.TxBaseGas+GasSload+GasSstore {
		t.Fatalf("gas %d implausibly low", rcpt.GasUsed)
	}
}

func TestViewOnNonContract(t *testing.T) {
	e := newTestEnv(t)
	if _, err := e.rt.View(e.chain.State(), e.alice.Address(), e.bob.Address(), "get", nil); !errors.Is(err, ErrNotContract) {
		t.Fatalf("want ErrNotContract, got %v", err)
	}
}

func TestViewLeavesStateUntouched(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 5)
	rootBefore := e.chain.State().Root()
	e.rt.View(e.chain.State(), e.alice.Address(), counter, "get", nil)
	e.rt.View(e.chain.State(), e.alice.Address(), counter, "inc", nil) // reverts
	if e.chain.State().Root() != rootBefore {
		t.Fatal("view mutated state")
	}
}

func TestDeployWithTruncatedDataFails(t *testing.T) {
	e := newTestEnv(t)
	data := DeployData("test/counter", NewEncoder().Uint64(1).Bytes())
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, identity.ZeroAddress, 0, nonce, 10_000_000, data[:len(data)-2])
	rcpt := e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("truncated deploy data accepted")
	}
	// Nonce still consumed; a fresh deploy works afterwards.
	e.deployCounter(t, 0)
}

func TestCallWithTruncatedDataFails(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 0)
	data := CallData("inc", nil)
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, counter, 0, nonce, 1_000_000, data[:len(data)-1])
	rcpt := e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("truncated call data accepted")
	}
}

func TestCallValueMovesWithCall(t *testing.T) {
	e := newTestEnv(t)
	counter := e.deployCounter(t, 0)
	nonce := e.chain.State().Nonce(e.alice.Address())
	tx := ledger.SignTx(e.alice, counter, 250, nonce, 1_000_000, CallData("inc", nil))
	rcpt := e.run(t, tx)
	if !rcpt.Succeeded() {
		t.Fatal(rcpt.Err)
	}
	if e.chain.State().Balance(counter) != 250 {
		t.Fatalf("contract balance = %d", e.chain.State().Balance(counter))
	}
	// A reverting call refunds the value.
	before := e.chain.State().Balance(e.alice.Address())
	nonce = e.chain.State().Nonce(e.alice.Address())
	tx = ledger.SignTx(e.alice, counter, 99, nonce, 1_000_000, CallData("boom", nil))
	rcpt = e.run(t, tx)
	if rcpt.Succeeded() {
		t.Fatal("boom succeeded")
	}
	if e.chain.State().Balance(e.alice.Address()) != before {
		t.Fatal("failed call kept the value")
	}
}
