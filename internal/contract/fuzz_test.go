package contract

import (
	"bytes"
	"testing"
)

// FuzzDecoder checks that the ABI decoder never panics on arbitrary
// input, whatever sequence of reads a contract performs.
func FuzzDecoder(f *testing.F) {
	f.Add(NewEncoder().Uint64(1).String("x").Blob([]byte{1}).Bool(true).Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x03, 0xff, 0xff, 0xff, 0xff}) // string with absurd length
	f.Add([]byte{0x05, 1, 2})                   // truncated address
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for i := 0; i < 16 && d.Remaining() > 0; i++ {
			// Try every decode in turn from the current offset; at most
			// one can succeed, the rest must fail cleanly.
			before := d.Remaining()
			if _, err := d.Uint64(); err == nil {
				continue
			}
			if _, err := d.Int64(); err == nil {
				continue
			}
			if _, err := d.Bool(); err == nil {
				continue
			}
			if _, err := d.String(); err == nil {
				continue
			}
			if _, err := d.Blob(); err == nil {
				continue
			}
			if _, err := d.Address(); err == nil {
				continue
			}
			if _, err := d.Digest(); err == nil {
				continue
			}
			if d.Remaining() != before {
				t.Fatal("failed decode consumed input")
			}
			break
		}
	})
}

// FuzzEncoderRoundTrip drives the ABI through encode→decode with
// fuzz-chosen values and checks every field survives byte-for-byte —
// the round-trip property every contract argument and every stored
// spec relies on.
func FuzzEncoderRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(-1), true, "hello", []byte{1, 2, 3})
	f.Add(uint64(1)<<63, int64(42), false, "", []byte{})
	f.Add(^uint64(0), int64(-1)<<62, true, "日本語", []byte{0xff})
	f.Fuzz(func(t *testing.T, u uint64, i int64, b bool, s string, blob []byte) {
		enc := NewEncoder().Uint64(u).Int64(i).Bool(b).String(s).Blob(blob).Bytes()
		d := NewDecoder(enc)
		gu, err := d.Uint64()
		if err != nil || gu != u {
			t.Fatalf("uint64 round-trip: got %d err %v, want %d", gu, err, u)
		}
		gi, err := d.Int64()
		if err != nil || gi != i {
			t.Fatalf("int64 round-trip: got %d err %v, want %d", gi, err, i)
		}
		gb, err := d.Bool()
		if err != nil || gb != b {
			t.Fatalf("bool round-trip: got %v err %v, want %v", gb, err, b)
		}
		gs, err := d.String()
		if err != nil || gs != s {
			t.Fatalf("string round-trip: got %q err %v, want %q", gs, err, s)
		}
		gblob, err := d.Blob()
		if err != nil || !bytes.Equal(gblob, blob) {
			t.Fatalf("blob round-trip: got %x err %v, want %x", gblob, err, blob)
		}
		if err := d.Done(); err != nil {
			t.Fatalf("trailing bytes after full decode: %v", err)
		}
	})
}

// FuzzDeployData checks the deploy/call payload decoding path the
// runtime exercises on every transaction.
func FuzzDeployData(f *testing.F) {
	f.Add(DeployData("pds2/erc20", []byte{1, 2}))
	f.Add(CallData("transfer", []byte{3}))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		if _, err := d.String(); err != nil {
			return
		}
		_, _ = d.Blob()
	})
}
