package contract

import "testing"

// FuzzDecoder checks that the ABI decoder never panics on arbitrary
// input, whatever sequence of reads a contract performs.
func FuzzDecoder(f *testing.F) {
	f.Add(NewEncoder().Uint64(1).String("x").Blob([]byte{1}).Bool(true).Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x03, 0xff, 0xff, 0xff, 0xff}) // string with absurd length
	f.Add([]byte{0x05, 1, 2})                   // truncated address
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for i := 0; i < 16 && d.Remaining() > 0; i++ {
			// Try every decode in turn from the current offset; at most
			// one can succeed, the rest must fail cleanly.
			before := d.Remaining()
			if _, err := d.Uint64(); err == nil {
				continue
			}
			if _, err := d.Int64(); err == nil {
				continue
			}
			if _, err := d.Bool(); err == nil {
				continue
			}
			if _, err := d.String(); err == nil {
				continue
			}
			if _, err := d.Blob(); err == nil {
				continue
			}
			if _, err := d.Address(); err == nil {
				continue
			}
			if _, err := d.Digest(); err == nil {
				continue
			}
			if d.Remaining() != before {
				t.Fatal("failed decode consumed input")
			}
			break
		}
	})
}

// FuzzDeployData checks the deploy/call payload decoding path the
// runtime exercises on every transaction.
func FuzzDeployData(f *testing.F) {
	f.Add(DeployData("pds2/erc20", []byte{1, 2}))
	f.Add(CallData("transfer", []byte{3}))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		if _, err := d.String(); err != nil {
			return
		}
		_, _ = d.Blob()
	})
}
