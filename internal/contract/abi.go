// Package contract implements the smart-contract runtime of the PDS²
// governance layer. Contracts are deterministic Go objects that keep all
// persistent data in the ledger's journaled contract storage; the runtime
// provides gas metering, revert semantics, cross-contract calls, event
// emission and a deploy/call transaction dispatcher that plugs into the
// ledger as its TxApplier.
//
// The paper (§III-A) calls for "Turing-complete smart contracts, which
// enable the complex validation behaviours described"; running contracts
// as native Go against journaled state reproduces exactly the programming
// model the governance layer needs — deterministic, metered, reversible
// state transitions — without re-implementing the EVM instruction set.
package contract

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// ABI type tags. Every encoded value is a one-byte tag followed by a
// fixed- or length-prefixed payload, so decoding is self-describing and
// type mismatches are detected rather than misread.
const (
	tagBool   byte = 0x01
	tagUint64 byte = 0x02
	tagString byte = 0x03
	tagBytes  byte = 0x04
	tagAddr   byte = 0x05
	tagDigest byte = 0x06
	tagInt64  byte = 0x07
)

// ABI encoding errors.
var (
	ErrABITruncated = errors.New("contract: truncated ABI data")
	ErrABIType      = errors.New("contract: ABI type mismatch")
)

// Encoder builds an ABI-encoded argument list.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Bool appends a boolean.
func (e *Encoder) Bool(v bool) *Encoder {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, tagBool, b)
	return e
}

// Uint64 appends an unsigned integer.
func (e *Encoder) Uint64(v uint64) *Encoder {
	e.buf = append(e.buf, tagUint64)
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
	return e
}

// Int64 appends a signed integer.
func (e *Encoder) Int64(v int64) *Encoder {
	e.buf = append(e.buf, tagInt64)
	e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(v))
	return e
}

// String appends a string.
func (e *Encoder) String(s string) *Encoder {
	e.buf = append(e.buf, tagString)
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends a byte slice.
func (e *Encoder) Blob(b []byte) *Encoder {
	e.buf = append(e.buf, tagBytes)
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// Address appends a ledger address.
func (e *Encoder) Address(a identity.Address) *Encoder {
	e.buf = append(e.buf, tagAddr)
	e.buf = append(e.buf, a[:]...)
	return e
}

// Digest appends a content digest.
func (e *Encoder) Digest(d crypto.Digest) *Encoder {
	e.buf = append(e.buf, tagDigest)
	e.buf = append(e.buf, d[:]...)
	return e
}

// Decoder reads values back from an ABI-encoded buffer in order. A
// failed decode consumes no input: the offset is restored, so callers
// may probe for alternatives.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps an encoded buffer for sequential decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done returns an error unless all input has been consumed; contracts
// call it after decoding to reject trailing garbage in call data.
func (d *Decoder) Done() error {
	if d.Remaining() != 0 {
		return fmt.Errorf("contract: %d trailing bytes in ABI data", d.Remaining())
	}
	return nil
}

func (d *Decoder) tag(want byte) error {
	if d.off >= len(d.buf) {
		return ErrABITruncated
	}
	got := d.buf[d.off]
	if got != want {
		return fmt.Errorf("%w: want tag %#x, got %#x at offset %d", ErrABIType, want, got, d.off)
	}
	d.off++
	return nil
}

func (d *Decoder) take(n int) ([]byte, error) {
	if d.off+n > len(d.buf) {
		return nil, ErrABITruncated
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Bool decodes a boolean.
func (d *Decoder) Bool() (bool, error) {
	start := d.off
	if err := d.tag(tagBool); err != nil {
		return false, err
	}
	b, err := d.take(1)
	if err != nil {
		d.off = start
		return false, err
	}
	return b[0] != 0, nil
}

// Uint64 decodes an unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	start := d.off
	if err := d.tag(tagUint64); err != nil {
		return 0, err
	}
	b, err := d.take(8)
	if err != nil {
		d.off = start
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Int64 decodes a signed integer.
func (d *Decoder) Int64() (int64, error) {
	start := d.off
	if err := d.tag(tagInt64); err != nil {
		return 0, err
	}
	b, err := d.take(8)
	if err != nil {
		d.off = start
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}

// String decodes a string.
func (d *Decoder) String() (string, error) {
	start := d.off
	if err := d.tag(tagString); err != nil {
		return "", err
	}
	lb, err := d.take(4)
	if err != nil {
		d.off = start
		return "", err
	}
	b, err := d.take(int(binary.BigEndian.Uint32(lb)))
	if err != nil {
		d.off = start
		return "", err
	}
	return string(b), nil
}

// Blob decodes a byte slice (copied out of the buffer).
func (d *Decoder) Blob() ([]byte, error) {
	start := d.off
	if err := d.tag(tagBytes); err != nil {
		return nil, err
	}
	lb, err := d.take(4)
	if err != nil {
		d.off = start
		return nil, err
	}
	b, err := d.take(int(binary.BigEndian.Uint32(lb)))
	if err != nil {
		d.off = start
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// Address decodes a ledger address.
func (d *Decoder) Address() (identity.Address, error) {
	var a identity.Address
	start := d.off
	if err := d.tag(tagAddr); err != nil {
		return a, err
	}
	b, err := d.take(identity.AddressSize)
	if err != nil {
		d.off = start
		return a, err
	}
	copy(a[:], b)
	return a, nil
}

// Digest decodes a content digest.
func (d *Decoder) Digest() (crypto.Digest, error) {
	var dg crypto.Digest
	start := d.off
	if err := d.tag(tagDigest); err != nil {
		return dg, err
	}
	b, err := d.take(crypto.HashSize)
	if err != nil {
		d.off = start
		return dg, err
	}
	copy(dg[:], b)
	return dg, nil
}
