// Package fed implements federated learning (FedAvg, McMahan et al.
// [17]), the centralized baseline that PDS² compares gossip learning
// against (§III-C). A central server ships the global model to a sample
// of clients each round; clients train locally and return their updates;
// the server averages them weighted by local dataset size.
//
// The implementation runs on the same simnet.Network as the gossip
// learner, so convergence-versus-bytes comparisons (experiment E6) see
// identical latency, drop and churn conditions.
package fed

import (
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/ml"
	"pds2/internal/simnet"
)

// Config parameterizes a federated-learning run.
type Config struct {
	// Round is the server's aggregation period.
	Round simnet.Time

	// ModelFactory builds the initial global model.
	ModelFactory func() ml.Model

	// ClientFraction is the fraction of clients sampled per round
	// (FedAvg's C parameter, default 0.1, clamped to at least 1 client).
	ClientFraction float64

	// LocalPasses is the number of passes over local data per selected
	// client per round (FedAvg's E parameter, default 1).
	LocalPasses int
}

// clientUpdate is the payload a client returns to the server.
type clientUpdate struct {
	round   int
	model   ml.Model
	samples int
}

// downlink is the payload the server ships to sampled clients.
type downlink struct {
	round int
	model ml.Model
}

// client is one federated participant.
type client struct {
	id   simnet.NodeID
	data *ml.Dataset
}

// Runner drives a FedAvg simulation.
type Runner struct {
	cfg      Config
	net      *simnet.Network
	serverID simnet.NodeID
	global   ml.Model
	clients  []*client
	rng      *crypto.DRBG

	round    int
	pending  []clientUpdate // updates received for the current round
	expected int
}

// NewRunner registers the server and one client per dataset partition.
func NewRunner(net *simnet.Network, parts []*ml.Dataset, cfg Config) (*Runner, error) {
	if cfg.ModelFactory == nil {
		return nil, fmt.Errorf("fed: ModelFactory is required")
	}
	if cfg.Round <= 0 {
		return nil, fmt.Errorf("fed: Round must be positive")
	}
	if cfg.ClientFraction <= 0 || cfg.ClientFraction > 1 {
		cfg.ClientFraction = 0.1
	}
	if cfg.LocalPasses <= 0 {
		cfg.LocalPasses = 1
	}
	r := &Runner{cfg: cfg, net: net, global: cfg.ModelFactory(), rng: net.Rng().Fork("fed")}
	r.serverID = net.AddNode(simnet.HandlerFunc(func(now simnet.Time, msg simnet.Message) {
		r.onServerReceive(msg)
	}))
	for _, part := range parts {
		c := &client{data: part}
		c.id = net.AddNode(simnet.HandlerFunc(func(now simnet.Time, msg simnet.Message) {
			r.onClientReceive(c, msg)
		}))
		r.clients = append(r.clients, c)
	}
	return r, nil
}

// ServerID returns the simnet ID of the coordinator.
func (r *Runner) ServerID() simnet.NodeID { return r.serverID }

// Start schedules the training rounds.
func (r *Runner) Start() {
	r.net.Every(0, r.cfg.Round, func(now simnet.Time) bool {
		r.startRound()
		return true
	})
}

// startRound aggregates the previous round's updates (if any) and ships
// the global model to a fresh client sample.
func (r *Runner) startRound() {
	r.aggregate()
	r.round++
	k := int(r.cfg.ClientFraction * float64(len(r.clients)))
	if k < 1 {
		k = 1
	}
	perm := r.rng.Perm(len(r.clients))
	r.expected = 0
	for _, idx := range perm[:min(k, len(r.clients))] {
		c := r.clients[idx]
		if !r.net.Online(c.id) {
			continue // offline clients are simply skipped this round
		}
		snapshot := r.global.Clone()
		r.net.Send(r.serverID, c.id, downlink{round: r.round, model: snapshot}, snapshot.WireSize())
		r.expected++
	}
}

// aggregate folds the collected client updates into the global model,
// weighted by sample counts (the FedAvg rule).
func (r *Runner) aggregate() {
	if len(r.pending) == 0 {
		return
	}
	var total float64
	for _, u := range r.pending {
		total += float64(u.samples)
	}
	if total == 0 {
		r.pending = r.pending[:0]
		return
	}
	agg := r.pending[0].model.Clone()
	accWeight := float64(r.pending[0].samples) / total
	// Incremental convex combination: after step i, agg is the weighted
	// mean of updates 0..i.
	for _, u := range r.pending[1:] {
		w := float64(u.samples) / total
		newAcc := accWeight + w
		_ = agg.MergeFrom(u.model, accWeight/newAcc, w/newAcc)
		accWeight = newAcc
	}
	r.global = agg
	r.pending = r.pending[:0]
}

// onClientReceive trains on local data and returns the update.
func (r *Runner) onClientReceive(c *client, msg simnet.Message) {
	dl, ok := msg.Payload.(downlink)
	if !ok {
		return
	}
	local := dl.model.Clone()
	for p := 0; p < r.cfg.LocalPasses; p++ {
		ml.TrainEpochs(local, c.data, 1)
	}
	r.net.Send(c.id, r.serverID, clientUpdate{
		round: dl.round, model: local, samples: c.data.Len(),
	}, local.WireSize())
}

// onServerReceive collects one client update.
func (r *Runner) onServerReceive(msg simnet.Message) {
	u, ok := msg.Payload.(clientUpdate)
	if !ok || u.round != r.round {
		return // stale update from an earlier round
	}
	r.pending = append(r.pending, u)
	if len(r.pending) >= r.expected && r.expected > 0 {
		r.aggregate() // all sampled clients answered: aggregate early
	}
}

// Global returns the current global model.
func (r *Runner) Global() ml.Model { return r.global }

// EvalPoint is one sample of training progress, mirroring gossip's.
type EvalPoint struct {
	T         simnet.Time
	Error     float64 // 0-1 error of the global model
	BytesSent int64   // cumulative network bytes at sample time
}

// Track schedules periodic evaluation of the global model.
func (r *Runner) Track(test *ml.Dataset, every simnet.Time) *[]EvalPoint {
	history := &[]EvalPoint{}
	r.net.Every(every, every, func(now simnet.Time) bool {
		*history = append(*history, EvalPoint{
			T:         now,
			Error:     ml.ZeroOneError(r.global, test),
			BytesSent: r.net.Stats().BytesSent,
		})
		return true
	})
	return history
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
