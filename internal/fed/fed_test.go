package fed

import (
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/ml"
	"pds2/internal/simnet"
)

func testSetup(t *testing.T, seed uint64, clientFrac float64) (*simnet.Network, *Runner, *ml.Dataset) {
	t.Helper()
	rng := crypto.NewDRBGFromUint64(seed, "fed-test")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 2000, Dim: 10, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.25, rng)
	parts := train.PartitionIID(20, rng)

	net := simnet.New(simnet.Config{Seed: seed, Latency: simnet.UniformLatency{Min: 10 * simnet.Millisecond, Max: 100 * simnet.Millisecond}})
	r, err := NewRunner(net, parts, Config{
		Round:          10 * simnet.Second,
		ModelFactory:   func() ml.Model { return ml.NewLogisticModel(10, 1e-3) },
		ClientFraction: clientFrac,
		LocalPasses:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, r, test
}

func TestFedAvgConverges(t *testing.T) {
	net, r, test := testSetup(t, 1, 0.5)
	r.Start()
	net.Run(600 * simnet.Second)
	if err := ml.ZeroOneError(r.Global(), test); err > 0.15 {
		t.Fatalf("fedavg error = %v", err)
	}
}

func TestFedAvgNonIID(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(2, "fed-test")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 2000, Dim: 10}, rng)
	train, test := data.TrainTestSplit(0.25, rng)
	parts := train.PartitionByLabel(20, rng)

	net := simnet.New(simnet.Config{Seed: 2})
	r, err := NewRunner(net, parts, Config{
		Round:          10 * simnet.Second,
		ModelFactory:   func() ml.Model { return ml.NewLogisticModel(10, 1e-3) },
		ClientFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	net.Run(900 * simnet.Second)
	if e := ml.ZeroOneError(r.Global(), test); e > 0.3 {
		t.Fatalf("non-IID fedavg error = %v", e)
	}
}

func TestFedAvgTrackHistory(t *testing.T) {
	net, r, test := testSetup(t, 3, 0.5)
	hist := r.Track(test, 60*simnet.Second)
	r.Start()
	net.Run(300 * simnet.Second)
	if len(*hist) != 5 {
		t.Fatalf("history samples = %d", len(*hist))
	}
	first, last := (*hist)[0], (*hist)[len(*hist)-1]
	if last.Error > first.Error {
		t.Fatalf("error increased: %v -> %v", first.Error, last.Error)
	}
}

func TestFedAvgSkipsOfflineClients(t *testing.T) {
	net, r, test := testSetup(t, 4, 1.0)
	// Take half the clients offline permanently.
	for i, c := range r.clients {
		if i%2 == 0 {
			net.SetOnline(c.id, false)
		}
	}
	r.Start()
	net.Run(600 * simnet.Second)
	if e := ml.ZeroOneError(r.Global(), test); e > 0.2 {
		t.Fatalf("fedavg with offline clients error = %v", e)
	}
}

func TestFedAvgServerTrafficConcentration(t *testing.T) {
	// The defining property of federated learning: all traffic flows
	// through the coordinator. The server's byte count must equal the
	// global byte count.
	net, r, _ := testSetup(t, 5, 0.5)
	r.Start()
	net.Run(300 * simnet.Second)
	server := net.NodeStats(r.ServerID())
	global := net.Stats()
	if server.BytesSent+server.BytesDelivered != global.BytesSent-global.BytesSent+global.BytesDelivered+server.BytesSent {
		// server sends downlinks and receives uplinks; every byte in the
		// system touches it.
		t.Logf("server: %+v global: %+v", server, global)
	}
	if server.MessagesSent == 0 || server.MessagesDelivered == 0 {
		t.Fatal("server exchanged no traffic")
	}
	// All delivered bytes either originate from or terminate at the server.
	if global.MessagesDelivered != server.MessagesDelivered+countClientDeliveries(net, r) {
		t.Fatal("traffic bypassed the server")
	}
}

func countClientDeliveries(net *simnet.Network, r *Runner) int64 {
	var n int64
	for _, c := range r.clients {
		n += net.NodeStats(c.id).MessagesDelivered
	}
	return n
}

func TestFedAvgStaleUpdatesIgnored(t *testing.T) {
	net, r, _ := testSetup(t, 6, 0.5)
	r.Start()
	// Inject a stale update for round 0 (rounds start at 1).
	stale := clientUpdate{round: 0, model: ml.NewLogisticModel(10, 1e-3), samples: 100}
	net.Send(r.clients[0].id, r.serverID, stale, 10)
	net.Run(50 * simnet.Second)
	// If the stale update were admitted, pending would grow without an
	// expected counter; the absence of a panic plus convergence checks in
	// other tests cover behaviour — here assert it was not queued.
	for _, u := range r.pending {
		if u.round == 0 {
			t.Fatal("stale update queued")
		}
	}
}

func TestFedConfigValidation(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 1})
	parts := []*ml.Dataset{{}}
	if _, err := NewRunner(net, parts, Config{Round: simnet.Second}); err == nil {
		t.Fatal("missing factory accepted")
	}
	if _, err := NewRunner(net, parts, Config{ModelFactory: func() ml.Model { return ml.NewLogisticModel(1, 0) }}); err == nil {
		t.Fatal("zero round accepted")
	}
}
