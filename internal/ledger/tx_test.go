package ledger

import (
	"errors"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

func testIdentity(seed uint64) *identity.Identity {
	return identity.New("t", crypto.NewDRBGFromUint64(seed, "ledger-test"))
}

func TestSignTxVerifyBasic(t *testing.T) {
	alice := testIdentity(1)
	bob := testIdentity(2)
	tx := SignTx(alice, bob.Address(), 10, 0, 50_000, []byte("data"))
	if err := tx.VerifyBasic(); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}
}

func TestTxTamperDetection(t *testing.T) {
	alice := testIdentity(1)
	bob := testIdentity(2)
	tx := SignTx(alice, bob.Address(), 10, 0, 50_000, nil)

	tampered := *tx
	tampered.Value = 11
	if err := tampered.VerifyBasic(); !errors.Is(err, ErrTxSignature) {
		t.Fatalf("want ErrTxSignature, got %v", err)
	}

	wrongSender := *tx
	wrongSender.From = testIdentity(3).Address()
	if err := wrongSender.VerifyBasic(); !errors.Is(err, ErrTxSender) {
		t.Fatalf("want ErrTxSender, got %v", err)
	}
}

func TestTxIntrinsicGas(t *testing.T) {
	alice := testIdentity(1)
	tx := SignTx(alice, testIdentity(2).Address(), 0, 0, 1_000_000, make([]byte, 100))
	want := TxBaseGas + 100*TxDataGasPerB
	if tx.IntrinsicGas() != want {
		t.Fatalf("intrinsic gas = %d, want %d", tx.IntrinsicGas(), want)
	}
}

func TestTxGasLimitBelowIntrinsicRejected(t *testing.T) {
	alice := testIdentity(1)
	tx := SignTx(alice, testIdentity(2).Address(), 0, 0, TxBaseGas-1, nil)
	if err := tx.VerifyBasic(); !errors.Is(err, ErrTxGasLimit) {
		t.Fatalf("want ErrTxGasLimit, got %v", err)
	}
}

func TestTxHashUniqueness(t *testing.T) {
	alice := testIdentity(1)
	to := testIdentity(2).Address()
	a := SignTx(alice, to, 1, 0, 50_000, nil)
	b := SignTx(alice, to, 1, 1, 50_000, nil)
	if a.Hash() == b.Hash() {
		t.Fatal("different nonces, same hash")
	}
	c := SignTx(alice, to, 1, 0, 50_000, nil)
	if a.Hash() != c.Hash() {
		t.Fatal("identical txs hash differently")
	}
}

func TestTxContractCreation(t *testing.T) {
	alice := testIdentity(1)
	deploy := SignTx(alice, identity.ZeroAddress, 0, 0, 100_000, []byte("code"))
	if !deploy.IsContractCreation() {
		t.Fatal("deploy tx not recognized")
	}
	call := SignTx(alice, testIdentity(2).Address(), 0, 0, 100_000, []byte("code"))
	if call.IsContractCreation() {
		t.Fatal("call tx misclassified as creation")
	}
}

func TestTxDataTooLarge(t *testing.T) {
	alice := testIdentity(1)
	tx := SignTx(alice, testIdentity(2).Address(), 0, 0, ^uint64(0)/2, make([]byte, MaxTxDataBytes+1))
	if err := tx.VerifyBasic(); !errors.Is(err, ErrTxTooLarge) {
		t.Fatalf("want ErrTxTooLarge, got %v", err)
	}
}
