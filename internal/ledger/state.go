package ledger

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

// mStateWrites counts journaled primitive mutations (balance, nonce and
// storage writes) — the state-pressure signal behind every gas number.
var mStateWrites = telemetry.C("ledger.state.writes_total")

// StateAccessor is the mutation surface transaction appliers execute
// against: the committed *State during serial execution and commit, or a
// speculative txView (parallel.go) during optimistic concurrency. The
// contract runtime is written against this interface, so the same
// contract code runs unchanged on both paths.
type StateAccessor interface {
	Balance(addr identity.Address) uint64
	SetBalance(addr identity.Address, v uint64)
	AddBalance(addr identity.Address, v uint64) error
	SubBalance(addr identity.Address, v uint64) error
	Nonce(addr identity.Address) uint64
	SetNonce(addr identity.Address, v uint64)
	BumpNonce(addr identity.Address)
	GetStorage(contract identity.Address, key string) []byte
	SetStorage(contract identity.Address, key string, value []byte)
	StorageKeys(contract identity.Address, prefix string) []string
	Snapshot() int
	RevertTo(snap int)
}

// addBalanceTo and subBalanceTo centralize the checked balance
// arithmetic so the committed state and speculative views fail with
// byte-identical errors — receipts produced on either path must match.
func addBalanceTo(st StateAccessor, addr identity.Address, v uint64) error {
	cur := st.Balance(addr)
	if cur+v < cur {
		return fmt.Errorf("ledger: balance overflow for %s", addr.Short())
	}
	st.SetBalance(addr, cur+v)
	return nil
}

func subBalanceTo(st StateAccessor, addr identity.Address, v uint64) error {
	cur := st.Balance(addr)
	if cur < v {
		return fmt.Errorf("ledger: insufficient balance for %s: have %d, need %d", addr.Short(), cur, v)
	}
	st.SetBalance(addr, cur-v)
	return nil
}

// DefaultStateShards is the number of address-prefix shards the world
// state is split across. Each shard carries its own RWMutex, so the
// parallel executor's speculative readers and the in-order committer
// contend per shard instead of funneling through one state-wide lock.
const DefaultStateShards = 16

// stateShard is one lock-striped slice of the world state. Addresses
// map to shards by their first byte, so a shard holds a contiguous
// address-prefix range.
type stateShard struct {
	mu       sync.RWMutex
	balances map[identity.Address]uint64
	nonces   map[identity.Address]uint64
	storage  map[identity.Address]map[string][]byte
}

// State is the replicated world state of the governance ledger: native
// token balances, account nonces and per-contract key/value storage,
// sharded by address prefix.
//
// All mutations are journaled, so the contract runtime can take snapshots
// and revert to them — the mechanism behind transactional contract calls
// ("revert semantics"). Commit collapses the journal at the end of every
// successfully applied transaction.
//
// Concurrency contract: exactly one goroutine mutates the state (and
// owns the journal) at a time, but any number of goroutines may read
// concurrently with that writer — each primitive access takes its
// shard's lock. This is what lets the parallel executor speculate
// transactions against the live state while the committer applies
// validated write sets.
type State struct {
	shards  []stateShard
	mask    byte
	journal []journalEntry
}

// journalEntry is the undo record for one primitive mutation.
type journalEntry struct {
	kind     journalKind
	addr     identity.Address
	key      string
	prevU64  uint64
	prevBlob []byte
	existed  bool
}

type journalKind uint8

const (
	jBalance journalKind = iota
	jNonce
	jStorage
)

// NewState returns an empty world state with the default shard count.
func NewState() *State { return NewStateSharded(DefaultStateShards) }

// NewStateSharded returns an empty world state split across n
// address-prefix shards. n is clamped to [1, 256] and rounded down to a
// power of two; n <= 0 selects the default. A single shard reproduces
// the pre-sharding behavior (one lock for everything) and is kept for
// the A-series contention ablation.
func NewStateSharded(n int) *State {
	if n <= 0 {
		n = DefaultStateShards
	}
	if n > 256 {
		n = 256
	}
	for n&(n-1) != 0 {
		n &= n - 1 // clear lowest set bit until a power of two remains
	}
	s := &State{shards: make([]stateShard, n), mask: byte(n - 1)}
	for i := range s.shards {
		s.shards[i] = stateShard{
			balances: make(map[identity.Address]uint64),
			nonces:   make(map[identity.Address]uint64),
			storage:  make(map[identity.Address]map[string][]byte),
		}
	}
	return s
}

// Shards returns the number of address-prefix shards.
func (s *State) Shards() int { return len(s.shards) }

// ShardIndex returns the shard an address routes to — the key the
// parallel executor's per-shard conflict counters are bucketed by.
func (s *State) ShardIndex(addr identity.Address) int { return int(addr[0] & s.mask) }

func (s *State) shard(addr identity.Address) *stateShard {
	return &s.shards[addr[0]&s.mask]
}

// Balance returns the native-token balance of addr.
func (s *State) Balance(addr identity.Address) uint64 {
	sh := s.shard(addr)
	sh.mu.RLock()
	v := sh.balances[addr]
	sh.mu.RUnlock()
	return v
}

// SetBalance sets the balance of addr, journaling the previous value.
func (s *State) SetBalance(addr identity.Address, v uint64) {
	sh := s.shard(addr)
	sh.mu.Lock()
	s.journal = append(s.journal, journalEntry{kind: jBalance, addr: addr, prevU64: sh.balances[addr]})
	sh.balances[addr] = v
	sh.mu.Unlock()
	mStateWrites.Inc()
}

// AddBalance credits addr. It returns an error on overflow.
func (s *State) AddBalance(addr identity.Address, v uint64) error {
	return addBalanceTo(s, addr, v)
}

// SubBalance debits addr. It returns an error on insufficient funds.
func (s *State) SubBalance(addr identity.Address, v uint64) error {
	return subBalanceTo(s, addr, v)
}

// Nonce returns the next expected transaction nonce for addr.
func (s *State) Nonce(addr identity.Address) uint64 {
	sh := s.shard(addr)
	sh.mu.RLock()
	v := sh.nonces[addr]
	sh.mu.RUnlock()
	return v
}

// SetNonce sets addr's nonce, journaling the previous value. Normal
// transaction flow only ever bumps; this exists for snapshot restore.
func (s *State) SetNonce(addr identity.Address, v uint64) {
	sh := s.shard(addr)
	sh.mu.Lock()
	s.journal = append(s.journal, journalEntry{kind: jNonce, addr: addr, prevU64: sh.nonces[addr]})
	sh.nonces[addr] = v
	sh.mu.Unlock()
	mStateWrites.Inc()
}

// BumpNonce increments addr's nonce.
func (s *State) BumpNonce(addr identity.Address) {
	sh := s.shard(addr)
	sh.mu.Lock()
	s.journal = append(s.journal, journalEntry{kind: jNonce, addr: addr, prevU64: sh.nonces[addr]})
	sh.nonces[addr]++
	sh.mu.Unlock()
	mStateWrites.Inc()
}

// GetStorage returns the stored value for (contract, key), or nil.
func (s *State) GetStorage(contract identity.Address, key string) []byte {
	v := s.storageRef(contract, key)
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// storageRef returns the live stored slice for (contract, key) without
// copying. Stored values are immutable — every write installs a fresh
// copy — so holding the returned slice across later mutations is safe;
// it keeps observing the value as of the read. The parallel executor's
// read-set recording and validation lean on this to avoid one copy per
// speculative read.
func (s *State) storageRef(contract identity.Address, key string) []byte {
	sh := s.shard(contract)
	sh.mu.RLock()
	v := sh.storage[contract][key]
	sh.mu.RUnlock()
	return v
}

// SetStorage writes a value to (contract, key). A nil or empty value
// deletes the key.
func (s *State) SetStorage(contract identity.Address, key string, value []byte) {
	sh := s.shard(contract)
	sh.mu.Lock()
	slot := sh.storage[contract]
	prev, existed := slot[key]
	s.journal = append(s.journal, journalEntry{
		kind: jStorage, addr: contract, key: key,
		prevBlob: append([]byte(nil), prev...), existed: existed,
	})
	if len(value) == 0 {
		delete(slot, key)
	} else {
		if slot == nil {
			slot = make(map[string][]byte)
			sh.storage[contract] = slot
		}
		slot[key] = append([]byte(nil), value...)
	}
	sh.mu.Unlock()
	mStateWrites.Inc()
}

// StorageKeys returns the sorted keys under a contract's storage with the
// given prefix. Sorted iteration keeps contract logic deterministic.
func (s *State) StorageKeys(contract identity.Address, prefix string) []string {
	sh := s.shard(contract)
	sh.mu.RLock()
	var keys []string
	for k := range sh.storage[contract] {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sh.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// forEachBalance walks every (address, balance) pair, shard by shard,
// in no particular order. The callback must not mutate the state.
func (s *State) forEachBalance(fn func(identity.Address, uint64)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for a, v := range sh.balances {
			fn(a, v)
		}
		sh.mu.RUnlock()
	}
}

// forEachNonce walks every (address, nonce) pair.
func (s *State) forEachNonce(fn func(identity.Address, uint64)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for a, v := range sh.nonces {
			fn(a, v)
		}
		sh.mu.RUnlock()
	}
}

// forEachStorage walks every contract's storage slot map.
func (s *State) forEachStorage(fn func(identity.Address, map[string][]byte)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for a, slot := range sh.storage {
			fn(a, slot)
		}
		sh.mu.RUnlock()
	}
}

// TotalBalance returns the sum of every native-token balance. Nothing in
// the transaction semantics mints or burns native tokens after genesis,
// so this quantity is conserved across every block — the supply
// invariant the property-testing harness (internal/proptest) audits
// after each seal.
func (s *State) TotalBalance() uint64 {
	var total uint64
	s.forEachBalance(func(_ identity.Address, v uint64) { total += v })
	return total
}

// Accounts returns every address carrying a non-zero balance or nonce,
// in deterministic (address) order — the enumeration surface invariant
// auditors walk to compare replicas account by account.
func (s *State) Accounts() []identity.Address {
	seen := make(map[identity.Address]bool)
	s.forEachBalance(func(a identity.Address, v uint64) {
		if v != 0 {
			seen[a] = true
		}
	})
	s.forEachNonce(func(a identity.Address, v uint64) {
		if v != 0 {
			seen[a] = true
		}
	})
	addrs := make([]identity.Address, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sortAddresses(addrs)
	return addrs
}

// JournalLen returns the number of uncommitted journal entries. A chain
// that just sealed a block must report zero — Commit collapses the
// journal — which the invariant harness checks to pin that no partial
// transaction effects leak across block boundaries.
func (s *State) JournalLen() int { return len(s.journal) }

// Snapshot returns a marker for the current journal position.
func (s *State) Snapshot() int { return len(s.journal) }

// RevertTo undoes every mutation recorded after the snapshot marker.
func (s *State) RevertTo(snap int) {
	if snap < 0 || snap > len(s.journal) {
		panic(fmt.Sprintf("ledger: invalid snapshot %d (journal %d)", snap, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= snap; i-- {
		e := s.journal[i]
		sh := s.shard(e.addr)
		sh.mu.Lock()
		switch e.kind {
		case jBalance:
			sh.balances[e.addr] = e.prevU64
		case jNonce:
			sh.nonces[e.addr] = e.prevU64
		case jStorage:
			slot := sh.storage[e.addr]
			if e.existed {
				if slot == nil {
					slot = make(map[string][]byte)
					sh.storage[e.addr] = slot
				}
				slot[e.key] = e.prevBlob
			} else if slot != nil {
				delete(slot, e.key)
			}
		}
		sh.mu.Unlock()
	}
	s.journal = s.journal[:snap]
}

// Commit discards undo information, making all mutations permanent.
func (s *State) Commit() { s.journal = s.journal[:0] }

// Root computes a deterministic digest of the entire world state. It is
// recomputed per block and stored in the header, so any two replicas can
// cheaply compare their states. The digest is independent of the shard
// count: addresses are gathered across shards and sorted globally, so a
// 1-shard and a 16-shard state with identical contents share a root.
func (s *State) Root() crypto.Digest {
	var h [][]byte

	balances := make(map[identity.Address]uint64)
	s.forEachBalance(func(a identity.Address, v uint64) {
		if v != 0 {
			balances[a] = v
		}
	})
	addrs := make([]identity.Address, 0, len(balances))
	for a := range balances {
		addrs = append(addrs, a)
	}
	sortAddresses(addrs)
	for _, a := range addrs {
		rec := make([]byte, 0, identity.AddressSize+9)
		rec = append(rec, 'B')
		rec = append(rec, a[:]...)
		rec = binary.BigEndian.AppendUint64(rec, balances[a])
		h = append(h, rec)
	}

	nonces := make(map[identity.Address]uint64)
	s.forEachNonce(func(a identity.Address, v uint64) {
		if v != 0 {
			nonces[a] = v
		}
	})
	addrs = addrs[:0]
	for a := range nonces {
		addrs = append(addrs, a)
	}
	sortAddresses(addrs)
	for _, a := range addrs {
		rec := make([]byte, 0, identity.AddressSize+9)
		rec = append(rec, 'N')
		rec = append(rec, a[:]...)
		rec = binary.BigEndian.AppendUint64(rec, nonces[a])
		h = append(h, rec)
	}

	storage := make(map[identity.Address]map[string][]byte)
	s.forEachStorage(func(a identity.Address, slot map[string][]byte) {
		storage[a] = slot
	})
	addrs = addrs[:0]
	for a := range storage {
		addrs = append(addrs, a)
	}
	sortAddresses(addrs)
	for _, a := range addrs {
		slot := storage[a]
		keys := make([]string, 0, len(slot))
		for k := range slot {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec := make([]byte, 0, identity.AddressSize+len(k)+len(slot[k])+10)
			rec = append(rec, 'S')
			rec = append(rec, a[:]...)
			rec = binary.BigEndian.AppendUint64(rec, uint64(len(k)))
			rec = append(rec, k...)
			rec = append(rec, slot[k]...)
			h = append(h, rec)
		}
	}
	return crypto.MerkleRootOf(h)
}

func sortAddresses(addrs []identity.Address) {
	sort.Slice(addrs, func(i, j int) bool {
		for k := 0; k < identity.AddressSize; k++ {
			if addrs[i][k] != addrs[j][k] {
				return addrs[i][k] < addrs[j][k]
			}
		}
		return false
	})
}
