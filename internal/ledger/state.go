package ledger

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

// mStateWrites counts journaled primitive mutations (balance, nonce and
// storage writes) — the state-pressure signal behind every gas number.
var mStateWrites = telemetry.C("ledger.state.writes_total")

// State is the replicated world state of the governance ledger: native
// token balances, account nonces and per-contract key/value storage.
//
// All mutations are journaled, so the contract runtime can take snapshots
// and revert to them — the mechanism behind transactional contract calls
// ("revert semantics"). Commit collapses the journal at the end of every
// successfully applied transaction.
type State struct {
	balances map[identity.Address]uint64
	nonces   map[identity.Address]uint64
	storage  map[identity.Address]map[string][]byte
	journal  []journalEntry
}

// journalEntry is the undo record for one primitive mutation.
type journalEntry struct {
	kind     journalKind
	addr     identity.Address
	key      string
	prevU64  uint64
	prevBlob []byte
	existed  bool
}

type journalKind uint8

const (
	jBalance journalKind = iota
	jNonce
	jStorage
)

// NewState returns an empty world state.
func NewState() *State {
	return &State{
		balances: make(map[identity.Address]uint64),
		nonces:   make(map[identity.Address]uint64),
		storage:  make(map[identity.Address]map[string][]byte),
	}
}

// Balance returns the native-token balance of addr.
func (s *State) Balance(addr identity.Address) uint64 { return s.balances[addr] }

// SetBalance sets the balance of addr, journaling the previous value.
func (s *State) SetBalance(addr identity.Address, v uint64) {
	s.journal = append(s.journal, journalEntry{kind: jBalance, addr: addr, prevU64: s.balances[addr]})
	s.balances[addr] = v
	mStateWrites.Inc()
}

// AddBalance credits addr. It returns an error on overflow.
func (s *State) AddBalance(addr identity.Address, v uint64) error {
	cur := s.balances[addr]
	if cur+v < cur {
		return fmt.Errorf("ledger: balance overflow for %s", addr.Short())
	}
	s.SetBalance(addr, cur+v)
	return nil
}

// SubBalance debits addr. It returns an error on insufficient funds.
func (s *State) SubBalance(addr identity.Address, v uint64) error {
	cur := s.balances[addr]
	if cur < v {
		return fmt.Errorf("ledger: insufficient balance for %s: have %d, need %d", addr.Short(), cur, v)
	}
	s.SetBalance(addr, cur-v)
	return nil
}

// Nonce returns the next expected transaction nonce for addr.
func (s *State) Nonce(addr identity.Address) uint64 { return s.nonces[addr] }

// SetNonce sets addr's nonce, journaling the previous value. Normal
// transaction flow only ever bumps; this exists for snapshot restore.
func (s *State) SetNonce(addr identity.Address, v uint64) {
	s.journal = append(s.journal, journalEntry{kind: jNonce, addr: addr, prevU64: s.nonces[addr]})
	s.nonces[addr] = v
	mStateWrites.Inc()
}

// BumpNonce increments addr's nonce.
func (s *State) BumpNonce(addr identity.Address) {
	s.journal = append(s.journal, journalEntry{kind: jNonce, addr: addr, prevU64: s.nonces[addr]})
	s.nonces[addr]++
	mStateWrites.Inc()
}

// GetStorage returns the stored value for (contract, key), or nil.
func (s *State) GetStorage(contract identity.Address, key string) []byte {
	v, ok := s.storage[contract][key]
	if !ok {
		return nil
	}
	return append([]byte(nil), v...)
}

// SetStorage writes a value to (contract, key). A nil or empty value
// deletes the key.
func (s *State) SetStorage(contract identity.Address, key string, value []byte) {
	slot := s.storage[contract]
	prev, existed := slot[key]
	s.journal = append(s.journal, journalEntry{
		kind: jStorage, addr: contract, key: key,
		prevBlob: append([]byte(nil), prev...), existed: existed,
	})
	mStateWrites.Inc()
	if len(value) == 0 {
		delete(slot, key)
		return
	}
	if slot == nil {
		slot = make(map[string][]byte)
		s.storage[contract] = slot
	}
	slot[key] = append([]byte(nil), value...)
}

// StorageKeys returns the sorted keys under a contract's storage with the
// given prefix. Sorted iteration keeps contract logic deterministic.
func (s *State) StorageKeys(contract identity.Address, prefix string) []string {
	var keys []string
	for k := range s.storage[contract] {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// TotalBalance returns the sum of every native-token balance. Nothing in
// the transaction semantics mints or burns native tokens after genesis,
// so this quantity is conserved across every block — the supply
// invariant the property-testing harness (internal/proptest) audits
// after each seal.
func (s *State) TotalBalance() uint64 {
	var total uint64
	for _, v := range s.balances {
		total += v
	}
	return total
}

// Accounts returns every address carrying a non-zero balance or nonce,
// in deterministic (address) order — the enumeration surface invariant
// auditors walk to compare replicas account by account.
func (s *State) Accounts() []identity.Address {
	seen := make(map[identity.Address]bool, len(s.balances)+len(s.nonces))
	for a, v := range s.balances {
		if v != 0 {
			seen[a] = true
		}
	}
	for a, v := range s.nonces {
		if v != 0 {
			seen[a] = true
		}
	}
	addrs := make([]identity.Address, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sortAddresses(addrs)
	return addrs
}

// JournalLen returns the number of uncommitted journal entries. A chain
// that just sealed a block must report zero — Commit collapses the
// journal — which the invariant harness checks to pin that no partial
// transaction effects leak across block boundaries.
func (s *State) JournalLen() int { return len(s.journal) }

// Snapshot returns a marker for the current journal position.
func (s *State) Snapshot() int { return len(s.journal) }

// RevertTo undoes every mutation recorded after the snapshot marker.
func (s *State) RevertTo(snap int) {
	if snap < 0 || snap > len(s.journal) {
		panic(fmt.Sprintf("ledger: invalid snapshot %d (journal %d)", snap, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= snap; i-- {
		e := s.journal[i]
		switch e.kind {
		case jBalance:
			s.balances[e.addr] = e.prevU64
		case jNonce:
			s.nonces[e.addr] = e.prevU64
		case jStorage:
			slot := s.storage[e.addr]
			if e.existed {
				if slot == nil {
					slot = make(map[string][]byte)
					s.storage[e.addr] = slot
				}
				slot[e.key] = e.prevBlob
			} else if slot != nil {
				delete(slot, e.key)
			}
		}
	}
	s.journal = s.journal[:snap]
}

// Commit discards undo information, making all mutations permanent.
func (s *State) Commit() { s.journal = s.journal[:0] }

// Root computes a deterministic digest of the entire world state. It is
// recomputed per block and stored in the header, so any two replicas can
// cheaply compare their states.
func (s *State) Root() crypto.Digest {
	h := make([][]byte, 0, len(s.balances)+len(s.nonces)+len(s.storage))

	addrs := make([]identity.Address, 0, len(s.balances))
	for a := range s.balances {
		addrs = append(addrs, a)
	}
	sortAddresses(addrs)
	for _, a := range addrs {
		if s.balances[a] == 0 {
			continue
		}
		rec := make([]byte, 0, identity.AddressSize+9)
		rec = append(rec, 'B')
		rec = append(rec, a[:]...)
		rec = binary.BigEndian.AppendUint64(rec, s.balances[a])
		h = append(h, rec)
	}

	addrs = addrs[:0]
	for a := range s.nonces {
		addrs = append(addrs, a)
	}
	sortAddresses(addrs)
	for _, a := range addrs {
		if s.nonces[a] == 0 {
			continue
		}
		rec := make([]byte, 0, identity.AddressSize+9)
		rec = append(rec, 'N')
		rec = append(rec, a[:]...)
		rec = binary.BigEndian.AppendUint64(rec, s.nonces[a])
		h = append(h, rec)
	}

	addrs = addrs[:0]
	for a := range s.storage {
		addrs = append(addrs, a)
	}
	sortAddresses(addrs)
	for _, a := range addrs {
		slot := s.storage[a]
		keys := make([]string, 0, len(slot))
		for k := range slot {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec := make([]byte, 0, identity.AddressSize+len(k)+len(slot[k])+10)
			rec = append(rec, 'S')
			rec = append(rec, a[:]...)
			rec = binary.BigEndian.AppendUint64(rec, uint64(len(k)))
			rec = append(rec, k...)
			rec = append(rec, slot[k]...)
			h = append(h, rec)
		}
	}
	return crypto.MerkleRootOf(h)
}

func sortAddresses(addrs []identity.Address) {
	sort.Slice(addrs, func(i, j int) bool {
		for k := 0; k < identity.AddressSize; k++ {
			if addrs[i][k] != addrs[j][k] {
				return addrs[i][k] < addrs[j][k]
			}
		}
		return false
	})
}
