package ledger

import (
	"testing"

	"pds2/internal/identity"
)

// eventfulApplier wraps TransferApplier and tags each successful
// transfer with an event from the recipient "contract", alternating
// topics by value parity — enough structure to exercise the event-log
// query surface without a full contract runtime.
type eventfulApplier struct{ inner TransferApplier }

func (a eventfulApplier) Apply(st StateAccessor, tx *Transaction, height uint64) (*Receipt, error) {
	rcpt, err := a.inner.Apply(st, tx, height)
	if err != nil || !rcpt.Succeeded() {
		return rcpt, err
	}
	topic := "even"
	if tx.Value%2 == 1 {
		topic = "odd"
	}
	rcpt.Events = append(rcpt.Events, Event{Contract: tx.To, Topic: topic, Data: []byte{byte(height)}})
	return rcpt, err
}

// TestChainQuerySurface pins the exported read-only surface external
// consumers (audit tooling, the durable store, the API layer) build
// on: gas limit, commit hooks, event-log filtering, export config and
// the state enumeration accessors.
func TestChainQuerySurface(t *testing.T) {
	authority := testIdentity(100)
	alice := testIdentity(1)
	bob := testIdentity(2)
	carol := testIdentity(3)
	chain, err := NewChain(ChainConfig{
		Authorities: []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 1_000,
			bob.Address():   500,
		},
		Applier:     eventfulApplier{},
		StateShards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := chain.GasLimit(); got != DefaultBlockGasLimit {
		t.Fatalf("GasLimit() = %d, want default %d", got, DefaultBlockGasLimit)
	}
	if got := chain.State().Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}

	var committed []*Block
	chain.SetOnCommit(func(b *Block) { committed = append(committed, b) })

	txs := []*Transaction{
		SignTx(alice, bob.Address(), 100, 0, 50_000, nil),   // even → bob
		SignTx(alice, carol.Address(), 101, 1, 50_000, nil), // odd → carol
	}
	if _, err := chain.ProposeBlock(authority, 1, txs); err != nil {
		t.Fatal(err)
	}
	if len(committed) != 1 || committed[0].Header.Height != 1 {
		t.Fatalf("commit hook saw %d blocks", len(committed))
	}
	chain.SetOnCommit(nil)
	if _, err := chain.ProposeBlock(authority, 2, nil); err != nil {
		t.Fatal(err)
	}
	if len(committed) != 1 {
		t.Fatal("removed commit hook still fired")
	}

	if got := len(chain.Events("")); got != 2 {
		t.Fatalf("Events(\"\") = %d events, want 2", got)
	}
	if got := chain.Events("odd"); len(got) != 1 || got[0].Contract != carol.Address() {
		t.Fatalf("Events(odd) = %+v", got)
	}
	if got := chain.EventsFrom(bob.Address(), ""); len(got) != 1 || got[0].Topic != "even" {
		t.Fatalf("EventsFrom(bob) = %+v", got)
	}
	if got := chain.EventsFrom(bob.Address(), "odd"); len(got) != 0 {
		t.Fatalf("EventsFrom(bob, odd) = %+v, want none", got)
	}
	if got := chain.EventsFrom(carol.Address(), "odd"); len(got) != 1 {
		t.Fatalf("EventsFrom(carol, odd) = %+v", got)
	}

	exp := chain.ExportConfig()
	if len(exp.Blocks) != 0 {
		t.Fatalf("ExportConfig carried %d blocks", len(exp.Blocks))
	}
	if len(exp.Authorities) != 1 || exp.Authorities[0] != authority.Address() {
		t.Fatalf("ExportConfig authorities = %v", exp.Authorities)
	}
	if exp.BlockGasLimit != DefaultBlockGasLimit || exp.GenesisAlloc[alice.Address()] != 1_000 {
		t.Fatal("ExportConfig dropped config fields")
	}

	if got := chain.State().TotalBalance(); got != 1_500 {
		t.Fatalf("TotalBalance() = %d after transfers, want conserved 1500", got)
	}
	accounts := chain.State().Accounts()
	want := map[identity.Address]bool{alice.Address(): true, bob.Address(): true, carol.Address(): true}
	for _, a := range accounts {
		delete(want, a)
	}
	if len(want) != 0 {
		t.Fatalf("Accounts() missing %v (got %v)", want, accounts)
	}

	if got := NewMempool(7).Cap(); got != 7 {
		t.Fatalf("Mempool.Cap() = %d, want 7", got)
	}
}

// TestExternalProposerSealAndImport builds a block outside the chain —
// ExecuteBatch for the receipts and post-state root, the exported
// TxRoot and Seal for the header commitment and signature — and
// imports it through the full validation path. This is the external
// proposer workflow ExecuteBatch/Seal/TxRoot exist for.
func TestExternalProposerSealAndImport(t *testing.T) {
	chain, authority, alice, bob := testChain(t)

	tx := SignTx(alice, bob.Address(), 100, 0, 50_000, nil)
	receipts, root, err := chain.ExecuteBatch([]*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if len(receipts) != 1 || !receipts[0].Succeeded() {
		t.Fatalf("ExecuteBatch receipts = %+v", receipts)
	}
	// ExecuteBatch must leave the chain untouched.
	if chain.Height() != 0 || chain.State().Balance(alice.Address()) != 1_000 {
		t.Fatal("ExecuteBatch mutated the chain")
	}

	parent := chain.Head()
	blk := &Block{
		Header: Header{
			Parent:    parent.Hash(),
			Height:    1,
			Timestamp: parent.Header.Timestamp + 1,
			TxRoot:    TxRoot([]*Transaction{tx}),
			StateRoot: root,
			GasUsed:   receipts[0].GasUsed,
		},
		Txs: []*Transaction{tx},
	}
	blk.Seal(authority)
	if err := chain.ImportBlock(blk); err != nil {
		t.Fatalf("import externally sealed block: %v", err)
	}
	if chain.State().Balance(bob.Address()) != 600 {
		t.Fatal("imported block did not apply")
	}

	// A batch the execution layer rejects outright (skipped nonce)
	// surfaces the error and still leaves no trace on the state.
	bad := SignTx(alice, bob.Address(), 1, 9, 50_000, nil)
	if _, _, err := chain.ExecuteBatch([]*Transaction{bad}); err == nil {
		t.Fatal("ExecuteBatch accepted a skipped nonce")
	}
	if chain.State().Nonce(alice.Address()) != 1 {
		t.Fatal("failed ExecuteBatch left state mutated")
	}
}
