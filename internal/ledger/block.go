package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// Header is the sealed metadata of a block. Proposers sign the header;
// the transactions are bound through TxRoot and the resulting world state
// through StateRoot.
type Header struct {
	Parent    crypto.Digest    `json:"parent"`
	Height    uint64           `json:"height"`
	Timestamp uint64           `json:"timestamp"` // virtual, seconds
	TxRoot    crypto.Digest    `json:"tx_root"`
	StateRoot crypto.Digest    `json:"state_root"`
	GasUsed   uint64           `json:"gas_used"`
	Proposer  identity.Address `json:"proposer"`
	Pub       []byte           `json:"pub"`
	Sig       []byte           `json:"sig"`
}

// signingBytes is the canonical encoding covered by the proposer seal.
func (h *Header) signingBytes() []byte {
	buf := make([]byte, 0, 3*crypto.HashSize+identity.AddressSize+3*8+16)
	buf = append(buf, "pds2/block/v1"...)
	buf = append(buf, h.Parent[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.Height)
	buf = binary.BigEndian.AppendUint64(buf, h.Timestamp)
	buf = append(buf, h.TxRoot[:]...)
	buf = append(buf, h.StateRoot[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.GasUsed)
	buf = append(buf, h.Proposer[:]...)
	return buf
}

// Hash returns the block hash (over the sealed header).
func (h *Header) Hash() crypto.Digest {
	return crypto.HashConcat([]byte("pds2/blockhash"), h.signingBytes(), h.Sig)
}

// Block is a sealed header plus its ordered transaction list.
type Block struct {
	Header Header         `json:"header"`
	Txs    []*Transaction `json:"txs"`
}

// Hash returns the block hash.
func (b *Block) Hash() crypto.Digest { return b.Header.Hash() }

// txRoot computes the Merkle root of the block's transactions.
func txRoot(txs []*Transaction) crypto.Digest {
	leaves := make([][]byte, len(txs))
	for i, tx := range txs {
		h := tx.Hash()
		leaves[i] = h[:]
	}
	return crypto.MerkleRootOf(leaves)
}

// Block validation errors.
var (
	ErrBadParent      = errors.New("ledger: block parent mismatch")
	ErrBadHeight      = errors.New("ledger: block height mismatch")
	ErrBadTxRoot      = errors.New("ledger: block tx root mismatch")
	ErrBadStateRoot   = errors.New("ledger: block state root mismatch")
	ErrBadProposer    = errors.New("ledger: proposer not authorized for this height")
	ErrBadSeal        = errors.New("ledger: invalid proposer seal")
	ErrBlockGasLimit  = errors.New("ledger: block exceeds gas limit")
	ErrNonMonotonicTS = errors.New("ledger: block timestamp not monotonic")
)

// Seal signs the header with the proposer identity. ProposeBlock seals
// the blocks it builds itself; the exported form exists for external
// proposers and for adversarial harnesses (internal/proptest) that
// forge validly-sealed blocks carrying bad payloads to prove the
// execution-level checks catch what the signature checks cannot.
func (b *Block) Seal(proposer *identity.Identity) { b.seal(proposer) }

// TxRoot computes the Merkle root binding an ordered transaction list —
// the commitment stored in Header.TxRoot.
func TxRoot(txs []*Transaction) crypto.Digest { return txRoot(txs) }

// seal signs the header with the proposer identity.
func (b *Block) seal(proposer *identity.Identity) {
	b.Header.Proposer = proposer.Address()
	b.Header.Pub = proposer.PublicKey()
	b.Header.Sig = proposer.Sign(b.Header.signingBytes())
}

// verifySeal checks the proposer signature and address binding.
func (b *Block) verifySeal() error {
	if identity.AddressFromPub(b.Header.Pub) != b.Header.Proposer {
		return fmt.Errorf("%w: key/address mismatch", ErrBadSeal)
	}
	if !identity.Verify(b.Header.Pub, b.Header.signingBytes(), b.Header.Sig) {
		return ErrBadSeal
	}
	return nil
}
