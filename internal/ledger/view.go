package ledger

import (
	"strings"

	"pds2/internal/identity"
)

// txView is the speculative execution surface for one transaction under
// optimistic concurrency (parallel.go). It implements StateAccessor over
// three layers:
//
//	own writes  — buffered locally, never visible outside the view
//	lane        — accumulated writes of earlier same-sender transactions
//	              in the block (executed before this one, see laneState)
//	base        — the committed chain state, read-only from here
//
// Every value observed from the lane or the base is recorded in the
// view's read set together with the value seen. At commit time the
// committer re-reads each recorded location from the (by then advanced)
// committed state: if every location still holds the recorded value, the
// speculative execution was equivalent to a serial execution at its
// transaction index — its receipt and write set are adopted verbatim.
// Any mismatch is a conflict and the transaction re-executes serially.
//
// Recording lane reads against the *base* is what makes lane chaining
// sound without extra machinery: if the predecessor committed exactly
// the writes this view observed, the base holds those values at commit
// time and validation passes; if the predecessor conflicted and
// re-executed differently, validation fails and this transaction
// re-executes too.
type txView struct {
	base *State
	lane *laneState

	// Speculative writes. A nil storage value is a tombstone (deletion).
	// All maps allocate lazily — reads of nil maps are safe and most
	// transactions touch only a couple of locations, so eager allocation
	// would dominate the per-transaction speculation cost.
	balances map[identity.Address]uint64
	nonces   map[identity.Address]uint64
	storage  map[storageSlot][]byte

	// Read sets: the first value observed for each location not already
	// written locally. Doubles as a read-through cache.
	readBal   map[identity.Address]uint64
	readNonce map[identity.Address]uint64
	readStore map[storageSlot][]byte
	prefixes  []prefixRead

	journal []viewEntry
}

// storageSlot addresses one contract storage cell.
type storageSlot struct {
	addr identity.Address
	key  string
}

// prefixRead records one StorageKeys enumeration: the merged base+lane
// key list returned (before this view's own writes were overlaid).
// Validation recomputes the enumeration on the committed state and
// compares — a key appearing or disappearing under the prefix is a
// conflict even if no recorded point read changed.
type prefixRead struct {
	contract identity.Address
	prefix   string
	keys     []string
}

// viewEntry is the undo record for one speculative write: it restores
// the *local* layer (value and presence), never the base.
type viewEntry struct {
	kind     journalKind
	addr     identity.Address
	key      string
	prevU64  uint64
	prevBlob []byte
	existed  bool
}

// laneState accumulates the write sets of a sender's transactions as
// they speculate in block order, so the sender's next transaction sees
// its predecessors' effects (nonce bumps, balance debits) instead of
// conflicting on every chained nonce. Lanes are written by exactly one
// speculating worker at a time — the scheduler orders a lane's
// transactions by dependency — so they need no locking.
type laneState struct {
	balances map[identity.Address]uint64
	nonces   map[identity.Address]uint64
	storage  map[storageSlot][]byte
}

func newLaneState() *laneState {
	return &laneState{
		balances: make(map[identity.Address]uint64),
		nonces:   make(map[identity.Address]uint64),
		storage:  make(map[storageSlot][]byte),
	}
}

// absorb merges a completed view's write set into the lane, making it
// visible to the sender's next transaction.
func (l *laneState) absorb(v *txView) {
	for a, val := range v.balances {
		l.balances[a] = val
	}
	for a, val := range v.nonces {
		l.nonces[a] = val
	}
	for s, val := range v.storage {
		l.storage[s] = val
	}
}

func newTxView(base *State, lane *laneState) *txView {
	return &txView{base: base, lane: lane}
}

// Balance implements StateAccessor.
func (v *txView) Balance(addr identity.Address) uint64 {
	if val, ok := v.balances[addr]; ok {
		return val
	}
	if val, ok := v.readBal[addr]; ok {
		return val
	}
	val, fromLane := uint64(0), false
	if v.lane != nil {
		val, fromLane = v.lane.balances[addr]
	}
	if !fromLane {
		val = v.base.Balance(addr)
	}
	if v.readBal == nil {
		v.readBal = make(map[identity.Address]uint64, 4)
	}
	v.readBal[addr] = val
	return val
}

// SetBalance implements StateAccessor.
func (v *txView) SetBalance(addr identity.Address, val uint64) {
	prev, existed := v.balances[addr]
	v.journal = append(v.journal, viewEntry{kind: jBalance, addr: addr, prevU64: prev, existed: existed})
	if v.balances == nil {
		v.balances = make(map[identity.Address]uint64, 4)
	}
	v.balances[addr] = val
}

// AddBalance implements StateAccessor.
func (v *txView) AddBalance(addr identity.Address, val uint64) error {
	return addBalanceTo(v, addr, val)
}

// SubBalance implements StateAccessor.
func (v *txView) SubBalance(addr identity.Address, val uint64) error {
	return subBalanceTo(v, addr, val)
}

// Nonce implements StateAccessor.
func (v *txView) Nonce(addr identity.Address) uint64 {
	if val, ok := v.nonces[addr]; ok {
		return val
	}
	if val, ok := v.readNonce[addr]; ok {
		return val
	}
	val, fromLane := uint64(0), false
	if v.lane != nil {
		val, fromLane = v.lane.nonces[addr]
	}
	if !fromLane {
		val = v.base.Nonce(addr)
	}
	if v.readNonce == nil {
		v.readNonce = make(map[identity.Address]uint64, 2)
	}
	v.readNonce[addr] = val
	return val
}

// SetNonce implements StateAccessor.
func (v *txView) SetNonce(addr identity.Address, val uint64) {
	prev, existed := v.nonces[addr]
	v.journal = append(v.journal, viewEntry{kind: jNonce, addr: addr, prevU64: prev, existed: existed})
	if v.nonces == nil {
		v.nonces = make(map[identity.Address]uint64, 2)
	}
	v.nonces[addr] = val
}

// BumpNonce implements StateAccessor.
func (v *txView) BumpNonce(addr identity.Address) {
	v.SetNonce(addr, v.Nonce(addr)+1)
}

// storageRead returns the value visible at slot without the own-write
// layer applied, recording the observation.
func (v *txView) storageRead(s storageSlot) []byte {
	if val, ok := v.readStore[s]; ok {
		return val
	}
	val, fromLane := []byte(nil), false
	if v.lane != nil {
		val, fromLane = v.lane.storage[s]
	}
	if !fromLane {
		val = v.base.storageRef(s.addr, s.key)
	}
	if v.readStore == nil {
		v.readStore = make(map[storageSlot][]byte, 8)
	}
	v.readStore[s] = val
	return val
}

// GetStorage implements StateAccessor.
func (v *txView) GetStorage(contract identity.Address, key string) []byte {
	s := storageSlot{contract, key}
	if val, ok := v.storage[s]; ok {
		if val == nil {
			return nil
		}
		return append([]byte(nil), val...)
	}
	val := v.storageRead(s)
	if val == nil {
		return nil
	}
	return append([]byte(nil), val...)
}

// SetStorage implements StateAccessor.
func (v *txView) SetStorage(contract identity.Address, key string, value []byte) {
	s := storageSlot{contract, key}
	prev, existed := v.storage[s]
	v.journal = append(v.journal, viewEntry{kind: jStorage, addr: contract, key: key, prevBlob: prev, existed: existed})
	if v.storage == nil {
		v.storage = make(map[storageSlot][]byte, 8)
	}
	if len(value) == 0 {
		v.storage[s] = nil // tombstone
		return
	}
	v.storage[s] = append([]byte(nil), value...)
}

// StorageKeys implements StateAccessor: the base enumeration (recorded
// as a prefix read), overlaid with lane deltas (each recorded as a point
// read so a diverging predecessor is caught) and this view's own writes.
func (v *txView) StorageKeys(contract identity.Address, prefix string) []string {
	listed := v.prefixKeys(contract, prefix)
	merged := make(map[string]bool, len(listed)+4)
	for _, k := range listed {
		merged[k] = true
	}
	for s, val := range v.storage {
		if s.addr != contract || !strings.HasPrefix(s.key, prefix) {
			continue
		}
		if val == nil {
			delete(merged, s.key)
		} else {
			merged[s.key] = true
		}
	}
	out := make([]string, 0, len(merged))
	for k := range merged {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// prefixKeys returns (and records) the base+lane key enumeration for a
// prefix, deduplicating repeated enumerations of the same prefix.
func (v *txView) prefixKeys(contract identity.Address, prefix string) []string {
	for i := range v.prefixes {
		if v.prefixes[i].contract == contract && v.prefixes[i].prefix == prefix {
			return v.prefixes[i].keys
		}
	}
	keys := v.base.StorageKeys(contract, prefix)
	if v.lane != nil {
		merged := make(map[string]bool, len(keys)+4)
		for _, k := range keys {
			merged[k] = true
		}
		for s, val := range v.lane.storage {
			if s.addr != contract || !strings.HasPrefix(s.key, prefix) {
				continue
			}
			// Pin the lane delta as a point read: if the predecessor
			// commits a different value (or no value), validation fails.
			if v.readStore == nil {
				v.readStore = make(map[storageSlot][]byte, 8)
			}
			v.readStore[s] = val
			if val == nil {
				delete(merged, s.key)
			} else {
				merged[s.key] = true
			}
		}
		keys = make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sortStrings(keys)
	}
	v.prefixes = append(v.prefixes, prefixRead{contract: contract, prefix: prefix, keys: keys})
	return keys
}

// Snapshot implements StateAccessor over the view's local journal.
func (v *txView) Snapshot() int { return len(v.journal) }

// RevertTo implements StateAccessor: it restores the local write layer
// (value and presence). Read records survive reverts — validating reads
// from reverted branches is conservative (it can only add conflicts,
// never admit a wrong result).
func (v *txView) RevertTo(snap int) {
	for i := len(v.journal) - 1; i >= snap; i-- {
		e := v.journal[i]
		switch e.kind {
		case jBalance:
			if e.existed {
				v.balances[e.addr] = e.prevU64
			} else {
				delete(v.balances, e.addr)
			}
		case jNonce:
			if e.existed {
				v.nonces[e.addr] = e.prevU64
			} else {
				delete(v.nonces, e.addr)
			}
		case jStorage:
			s := storageSlot{e.addr, e.key}
			if e.existed {
				v.storage[s] = e.prevBlob
			} else {
				delete(v.storage, s)
			}
		}
	}
	v.journal = v.journal[:snap]
}

// validate re-reads every recorded location from the committed state.
// It returns true iff all observations still hold, i.e. the speculative
// execution is equivalent to a serial execution at this point.
func (v *txView) validate(base *State) bool {
	for a, val := range v.readBal {
		if base.Balance(a) != val {
			return false
		}
	}
	for a, val := range v.readNonce {
		if base.Nonce(a) != val {
			return false
		}
	}
	for s, val := range v.readStore {
		if !bytesEqual(base.storageRef(s.addr, s.key), val) {
			return false
		}
	}
	for i := range v.prefixes {
		pr := &v.prefixes[i]
		if !stringsEqual(base.StorageKeys(pr.contract, pr.prefix), pr.keys) {
			return false
		}
	}
	return true
}

// commitTo applies the view's write set to the committed state through
// the journaled setters, so a later block-level revert still unwinds it.
func (v *txView) commitTo(base *State) {
	for a, val := range v.balances {
		base.SetBalance(a, val)
	}
	for a, val := range v.nonces {
		base.SetNonce(a, val)
	}
	for s, val := range v.storage {
		base.SetStorage(s.addr, s.key, val)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
