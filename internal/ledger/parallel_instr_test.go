package ledger

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"

	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

// TestParallelExecutorInstrumentation pins the scheduler's observability
// contract: a conflict-heavy parallel block must leave (a) the aggregate
// conflict counter and per-shard conflict counters in agreement, (b) a
// lane-depth observation per sender, and (c) commit-stall totals that
// never exceed the block's transaction count.
func TestParallelExecutorInstrumentation(t *testing.T) {
	telemetry.Default().Reset()
	telemetry.Enable()
	defer telemetry.Disable()

	authority := testIdentity(1000)
	hot := testIdentity(999)
	const n = 64
	ids := make([]*identity.Identity, n)
	alloc := map[identity.Address]uint64{hot.Address(): 5}
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		alloc[ids[i].Address()] = 1_000_000
	}
	_, parallel := parallelFixture(t, TransferApplier{}, alloc, authority, 16)
	// Every transfer targets one hot recipient: each speculation's read
	// of the hot balance goes stale as its predecessor commits, so the
	// block is guaranteed to produce conflicts.
	var txs []*Transaction
	for i, id := range ids {
		txs = append(txs, SignTx(id, hot.Address(), uint64(i+1), 0, 100_000, nil))
	}
	if _, err := parallel.ProposeBlock(authority, 1, txs); err != nil {
		t.Fatal(err)
	}

	snap := telemetry.Default().Snapshot()
	conflicts, ok := snap.Get("ledger.parallel.conflicts_total")
	if !ok || conflicts.Value == 0 {
		t.Fatalf("hot-account block produced no conflicts: %+v", conflicts)
	}
	var byShard float64
	for _, m := range snap.Metrics {
		if strings.HasPrefix(m.Name, "ledger.parallel.conflicts_shard_") {
			byShard += m.Value
		}
	}
	if byShard != conflicts.Value {
		t.Fatalf("per-shard conflicts sum %v != aggregate %v", byShard, conflicts.Value)
	}

	lanes, ok := snap.Get("ledger.parallel.lane_depth")
	if !ok || lanes.Count != n {
		t.Fatalf("lane depth observations = %+v, want one per sender (%d)", lanes, n)
	}
	if lanes.Max != 1 {
		t.Fatalf("single-tx senders should observe depth 1, got max %v", lanes.Max)
	}

	if stall, ok := snap.Get("ledger.parallel.commit_stall_seconds"); ok && stall.Count > n {
		t.Fatalf("more commit stalls (%d) than transactions (%d)", stall.Count, n)
	}
}

// TestParallelLaneDepthObservesChains pins the lane-depth histogram on a
// chained-nonce workload: 4 senders × 16 txs each must observe 4 lanes
// of depth 16.
func TestParallelLaneDepthObservesChains(t *testing.T) {
	telemetry.Default().Reset()
	telemetry.Enable()
	defer telemetry.Disable()

	authority := testIdentity(1000)
	const senders, chain = 4, 16
	ids := make([]*identity.Identity, senders)
	alloc := make(map[identity.Address]uint64, senders)
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		alloc[ids[i].Address()] = 1_000_000
	}
	_, parallel := parallelFixture(t, TransferApplier{}, alloc, authority, 0)
	var txs []*Transaction
	for nonce := 0; nonce < chain; nonce++ {
		for i, id := range ids {
			txs = append(txs, SignTx(id, ids[(i+1)%senders].Address(), 1, uint64(nonce), 100_000, nil))
		}
	}
	if _, err := parallel.ProposeBlock(authority, 1, txs); err != nil {
		t.Fatal(err)
	}
	lanes, ok := telemetry.Default().Snapshot().Get("ledger.parallel.lane_depth")
	if !ok || lanes.Count != senders {
		t.Fatalf("lane observations = %+v, want %d", lanes, senders)
	}
	if lanes.Min != chain || lanes.Max != chain {
		t.Fatalf("lane depth min/max = %v/%v, want %d/%d", lanes.Min, lanes.Max, chain, chain)
	}
}

// labelProbeApplier captures a goroutine profile from inside the first
// Apply call it receives, so the test can assert the executing worker
// goroutine carries the component pprof label.
type labelProbeApplier struct {
	once    sync.Once
	profile bytes.Buffer
}

func (a *labelProbeApplier) Apply(st StateAccessor, tx *Transaction, height uint64) (*Receipt, error) {
	a.once.Do(func() {
		_ = pprof.Lookup("goroutine").WriteTo(&a.profile, 1)
	})
	return TransferApplier{}.Apply(st, tx, height)
}

// TestParallelWorkersCarryPprofLabel pins the profiling contract the
// diag bundle depends on: samples taken while the parallel executor
// runs must attribute worker goroutines to ledger.parallel.worker via
// the component label.
func TestParallelWorkersCarryPprofLabel(t *testing.T) {
	authority := testIdentity(1000)
	const n = 32
	ids := make([]*identity.Identity, n)
	alloc := make(map[identity.Address]uint64, n)
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		alloc[ids[i].Address()] = 1_000_000
	}
	probe := &labelProbeApplier{}
	_, parallel := parallelFixture(t, probe, alloc, authority, 0)
	var txs []*Transaction
	for i, id := range ids {
		txs = append(txs, SignTx(id, ids[(i+1)%n].Address(), 1, 0, 100_000, nil))
	}
	if _, err := parallel.ProposeBlock(authority, 1, txs); err != nil {
		t.Fatal(err)
	}
	prof := probe.profile.String()
	if prof == "" {
		t.Fatal("probe applier captured no goroutine profile")
	}
	if !strings.Contains(prof, telemetry.LabelComponent) || !strings.Contains(prof, parWorkerComponent) {
		t.Fatalf("goroutine profile lacks %s=%s label:\n%s", telemetry.LabelComponent, parWorkerComponent, prof)
	}
}
