package ledger

import (
	"errors"
	"sort"
	"sync"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

// Mempool instrumentation: live depth, admission outcomes and the
// lifecycle events that keep the pool healthy under sustained load.
var (
	mPoolDepth    = telemetry.G("ledger.mempool.depth")
	mPoolAdmitted = telemetry.C("ledger.mempool.admitted_total")
	mPoolRejected = telemetry.C("ledger.mempool.rejected_total")
	mPoolEvicted  = telemetry.C("ledger.mempool.evicted_total")
	mPoolOvergas  = telemetry.C("ledger.mempool.evicted_overgas_total")
	mPoolReplaced = telemetry.C("ledger.mempool.replaced_total")
	logPool       = telemetry.L("ledger")
)

// Mempool holds verified pending transactions, ordered per sender by
// nonce. It enforces stateless validity on admission, supports
// same-nonce replacement, evicts transactions made stale by chain
// progress, and hands the block proposer batches of executable
// transactions (those whose nonces chain directly from the sender's
// current account nonce).
//
// All methods are safe for concurrent use: admission (Add), queries and
// removal only touch the pool's own state under its mutex, so API
// handler goroutines can admit transactions without holding whatever
// lock serializes block production. The two methods that read chain
// state — NextBatch and Prune — take a *State; synchronizing that state
// against concurrent block execution remains the caller's job.
type Mempool struct {
	mu       sync.Mutex
	bySender map[identity.Address][]*Transaction // sorted by nonce
	byHash   map[crypto.Digest]*Transaction
	maxSize  int
}

// DefaultMempoolSize bounds the total number of pending transactions.
const DefaultMempoolSize = 100_000

// NewMempool returns an empty mempool. maxSize <= 0 selects the default.
func NewMempool(maxSize int) *Mempool {
	if maxSize <= 0 {
		maxSize = DefaultMempoolSize
	}
	return &Mempool{
		bySender: make(map[identity.Address][]*Transaction),
		byHash:   make(map[crypto.Digest]*Transaction),
		maxSize:  maxSize,
	}
}

// Mempool errors.
var (
	ErrMempoolFull      = errors.New("ledger: mempool full")
	ErrMempoolDuplicate = errors.New("ledger: transaction already pending")

	// ErrMempoolNonceDup reports a second, distinct transaction for a
	// (sender, nonce) slot. Add no longer returns it — the newer
	// transaction replaces the pending one — but the sentinel remains
	// for callers that classified the old rejection.
	ErrMempoolNonceDup = errors.New("ledger: duplicate nonce for sender")
)

// Add admits a transaction after stateless verification. A transaction
// with the same sender and nonce as a pending one replaces it (the
// newer submission wins — the fee-bump path of public chains, without
// fees); a byte-identical resubmission is rejected with
// ErrMempoolDuplicate.
func (m *Mempool) Add(tx *Transaction) error {
	if err := m.add(tx); err != nil {
		mPoolRejected.Inc()
		return err
	}
	mPoolAdmitted.Inc()
	return nil
}

func (m *Mempool) add(tx *Transaction) error {
	// Verify outside the lock: ed25519 checks dominate admission cost
	// and need nothing from the pool, so concurrent submitters verify
	// in parallel and only serialize for the map updates.
	if err := tx.VerifyBasic(); err != nil {
		return err
	}
	h := tx.Hash()

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byHash[h]; ok {
		return ErrMempoolDuplicate
	}
	list := m.bySender[tx.From]
	for i, pending := range list {
		if pending.Nonce == tx.Nonce {
			// Same-nonce replacement: swap in place, no capacity check —
			// the pool does not grow.
			delete(m.byHash, pending.Hash())
			list[i] = tx
			m.byHash[h] = tx
			mPoolReplaced.Inc()
			return nil
		}
	}
	if len(m.byHash) >= m.maxSize {
		logPool.Warn("mempool full, rejecting transaction",
			telemetry.Int("depth", len(m.byHash)), telemetry.Int("cap", m.maxSize))
		return ErrMempoolFull
	}
	list = append(list, tx)
	sort.Slice(list, func(i, j int) bool { return list[i].Nonce < list[j].Nonce })
	m.bySender[tx.From] = list
	m.byHash[h] = tx
	mPoolDepth.Set(float64(len(m.byHash)))
	return nil
}

// Len returns the number of pending transactions.
func (m *Mempool) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byHash)
}

// Cap returns the pool's admission capacity.
func (m *Mempool) Cap() int { return m.maxSize }

// Contains reports whether a transaction with the given hash is pending.
func (m *Mempool) Contains(h crypto.Digest) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.byHash[h]
	return ok
}

// NextNonce returns the lowest nonce >= chainNonce not occupied by a
// pending transaction from addr — the nonce a wallet should sign with
// next.
func (m *Mempool) NextNonce(addr identity.Address, chainNonce uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := chainNonce
	for _, tx := range m.bySender[addr] {
		if tx.Nonce < n {
			continue
		}
		if tx.Nonce != n {
			break
		}
		n++
	}
	return n
}

// evictStaleLocked drops addr's pending transactions whose nonce is
// below next (already executed on chain — they can never become
// executable again). The per-sender list is nonce-sorted, so stale
// entries form a prefix. Callers hold m.mu.
func (m *Mempool) evictStaleLocked(addr identity.Address, next uint64) int {
	list := m.bySender[addr]
	i := 0
	for i < len(list) && list[i].Nonce < next {
		delete(m.byHash, list[i].Hash())
		i++
	}
	if i == 0 {
		return 0
	}
	mPoolEvicted.Add(uint64(i))
	if i == len(list) {
		delete(m.bySender, addr)
	} else {
		m.bySender[addr] = list[i:]
	}
	return i
}

// Prune evicts every transaction whose nonce is below its sender's
// account nonce in st and returns the number evicted. Before this
// existed, such entries occupied capacity forever and a long-running
// node eventually rejected all new traffic with ErrMempoolFull.
func (m *Mempool) Prune(st *State) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	evicted := 0
	for _, addr := range m.sendersLocked() {
		evicted += m.evictStaleLocked(addr, st.Nonce(addr))
	}
	if evicted > 0 {
		mPoolDepth.Set(float64(len(m.byHash)))
		logPool.Info("mempool pruned stale transactions",
			telemetry.Int("evicted", evicted), telemetry.Int("depth", len(m.byHash)))
	}
	return evicted
}

// sendersLocked returns the sender set in deterministic (address)
// order. Callers hold m.mu.
func (m *Mempool) sendersLocked() []identity.Address {
	senders := make([]identity.Address, 0, len(m.bySender))
	for a := range m.bySender {
		senders = append(senders, a)
	}
	sortAddresses(senders)
	return senders
}

// NextBatch returns up to max transactions executable against the given
// state: for each sender, the longest prefix of its pending list whose
// nonces chain from the account nonce. Senders are visited in
// deterministic (address) order. Stale transactions encountered along
// the way are evicted, so the routine seal cadence keeps the pool
// self-pruning. The returned transactions remain in the pool until
// Remove is called — typically after block inclusion.
//
// Selection is gas-aware: each transaction's intrinsic gas — the
// guaranteed floor of what execution will consume, and its exact cost
// for plain transfers — accumulates against gasBudget, and a sender's
// chain is cut at the first transaction that no longer fits the
// remaining budget. Declared gas (tx.GasLimit) is useless as a packing
// signal on this fee-less chain: wallets default it far above the block
// gas limit, so packing by declaration would turn every batch into one
// transaction. With intrinsic packing a transfer-dominated backlog
// drains in exactly-full blocks and the seal path's halving loop
// becomes a fallback for contract calls that burn past their floor.
// gasBudget 0 means unlimited.
//
// A transaction whose intrinsic gas alone exceeds gasBudget can never
// be sealed — actual consumption only grows from there. Leaving it
// pending would wedge its sender's lane forever (the poison-tx bug this
// replaces), so such transactions are evicted on sight and counted in
// ledger.mempool.evicted_overgas_total.
func (m *Mempool) NextBatch(st *State, max int, gasBudget uint64) []*Transaction {
	m.mu.Lock()
	defer m.mu.Unlock()
	var batch []*Transaction
	var gas uint64
	evicted, overgas := 0, 0
	for _, sender := range m.sendersLocked() {
		next := st.Nonce(sender)
		evicted += m.evictStaleLocked(sender, next)
		for _, tx := range m.bySender[sender] {
			if len(batch) >= max {
				break
			}
			if tx.Nonce != next {
				break // gap: later nonces are not yet executable
			}
			floor := tx.IntrinsicGas()
			if gasBudget > 0 && floor > gasBudget {
				// Poison transaction: it can never fit any block. Evict
				// it; its successors are now gapped and wait for the
				// sender to resubmit the nonce.
				m.dropLocked(tx)
				overgas++
				break
			}
			if gasBudget > 0 && gas+floor > gasBudget {
				break // sender's chain is cut; try remaining senders
			}
			batch = append(batch, tx)
			gas += floor
			next++
		}
		if len(batch) >= max {
			break
		}
	}
	if overgas > 0 {
		mPoolOvergas.Add(uint64(overgas))
		logPool.Warn("mempool evicted transactions exceeding the block gas limit",
			telemetry.Int("evicted", overgas), telemetry.U64("gas_limit", gasBudget))
	}
	if evicted > 0 || overgas > 0 {
		mPoolDepth.Set(float64(len(m.byHash)))
		logPool.Debug("mempool evicted stale transactions in batch build",
			telemetry.Int("evicted", evicted), telemetry.Int("batch", len(batch)))
	}
	return batch
}

// dropLocked removes one transaction from both indexes. Callers hold
// m.mu and own depth-gauge/counter updates.
func (m *Mempool) dropLocked(tx *Transaction) bool {
	h := tx.Hash()
	if _, ok := m.byHash[h]; !ok {
		return false
	}
	delete(m.byHash, h)
	list := m.bySender[tx.From]
	for i, pending := range list {
		if pending.Hash() == h {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(m.bySender, tx.From)
	} else {
		m.bySender[tx.From] = list
	}
	return true
}

// EvictOvergas removes a transaction that proved unsealable because its
// gas demand exceeds the block gas limit, counting it in
// ledger.mempool.evicted_overgas_total. The seal path calls this as
// defense in depth when a single-transaction block still overflows —
// normally NextBatch has already screened such transactions out.
func (m *Mempool) EvictOvergas(tx *Transaction) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dropLocked(tx) {
		return false
	}
	mPoolOvergas.Inc()
	mPoolDepth.Set(float64(len(m.byHash)))
	logPool.Warn("evicted transaction exceeding the block gas limit",
		telemetry.U64("declared_gas", tx.GasLimit))
	return true
}

// Remove deletes the given transactions from the pool, typically after
// they have been included in a block.
func (m *Mempool) Remove(txs []*Transaction) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, tx := range txs {
		h := tx.Hash()
		if _, ok := m.byHash[h]; !ok {
			continue
		}
		delete(m.byHash, h)
		list := m.bySender[tx.From]
		for i, pending := range list {
			if pending.Hash() == h {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(m.bySender, tx.From)
		} else {
			m.bySender[tx.From] = list
		}
	}
	mPoolDepth.Set(float64(len(m.byHash)))
}
