package ledger

import (
	"errors"
	"fmt"
	"sort"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

// Mempool instrumentation: live depth plus admission outcomes.
var (
	mPoolDepth    = telemetry.G("ledger.mempool.depth")
	mPoolAdmitted = telemetry.C("ledger.mempool.admitted_total")
	mPoolRejected = telemetry.C("ledger.mempool.rejected_total")
)

// Mempool holds verified pending transactions, ordered per sender by
// nonce. It enforces stateless validity on admission and hands the block
// proposer batches of executable transactions (those whose nonces chain
// directly from the sender's current account nonce).
type Mempool struct {
	bySender map[identity.Address][]*Transaction // sorted by nonce
	byHash   map[crypto.Digest]*Transaction
	maxSize  int
}

// DefaultMempoolSize bounds the total number of pending transactions.
const DefaultMempoolSize = 100_000

// NewMempool returns an empty mempool. maxSize <= 0 selects the default.
func NewMempool(maxSize int) *Mempool {
	if maxSize <= 0 {
		maxSize = DefaultMempoolSize
	}
	return &Mempool{
		bySender: make(map[identity.Address][]*Transaction),
		byHash:   make(map[crypto.Digest]*Transaction),
		maxSize:  maxSize,
	}
}

// Mempool errors.
var (
	ErrMempoolFull      = errors.New("ledger: mempool full")
	ErrMempoolDuplicate = errors.New("ledger: transaction already pending")
	ErrMempoolNonceGap  = errors.New("ledger: duplicate nonce for sender")
)

// Add admits a transaction after stateless verification.
func (m *Mempool) Add(tx *Transaction) error {
	if err := m.add(tx); err != nil {
		mPoolRejected.Inc()
		return err
	}
	mPoolAdmitted.Inc()
	mPoolDepth.Set(float64(len(m.byHash)))
	return nil
}

func (m *Mempool) add(tx *Transaction) error {
	if err := tx.VerifyBasic(); err != nil {
		return err
	}
	h := tx.Hash()
	if _, ok := m.byHash[h]; ok {
		return ErrMempoolDuplicate
	}
	if len(m.byHash) >= m.maxSize {
		return ErrMempoolFull
	}
	list := m.bySender[tx.From]
	for _, pending := range list {
		if pending.Nonce == tx.Nonce {
			return fmt.Errorf("%w: nonce %d", ErrMempoolNonceGap, tx.Nonce)
		}
	}
	list = append(list, tx)
	sort.Slice(list, func(i, j int) bool { return list[i].Nonce < list[j].Nonce })
	m.bySender[tx.From] = list
	m.byHash[h] = tx
	return nil
}

// Len returns the number of pending transactions.
func (m *Mempool) Len() int { return len(m.byHash) }

// Contains reports whether a transaction with the given hash is pending.
func (m *Mempool) Contains(h crypto.Digest) bool {
	_, ok := m.byHash[h]
	return ok
}

// NextBatch returns up to max transactions executable against the given
// state: for each sender, the longest prefix of its pending list whose
// nonces chain from the account nonce. Senders are visited in
// deterministic (address) order. The returned transactions remain in the
// pool until Remove is called — typically after block inclusion.
func (m *Mempool) NextBatch(st *State, max int) []*Transaction {
	senders := make([]identity.Address, 0, len(m.bySender))
	for a := range m.bySender {
		senders = append(senders, a)
	}
	sortAddresses(senders)

	var batch []*Transaction
	for _, sender := range senders {
		next := st.Nonce(sender)
		for _, tx := range m.bySender[sender] {
			if len(batch) >= max {
				return batch
			}
			if tx.Nonce < next {
				continue // stale: already executed on chain
			}
			if tx.Nonce != next {
				break // gap: later nonces are not yet executable
			}
			batch = append(batch, tx)
			next++
		}
	}
	return batch
}

// Remove deletes the given transactions from the pool, typically after
// they have been included in a block.
func (m *Mempool) Remove(txs []*Transaction) {
	for _, tx := range txs {
		h := tx.Hash()
		if _, ok := m.byHash[h]; !ok {
			continue
		}
		delete(m.byHash, h)
		list := m.bySender[tx.From]
		for i, pending := range list {
			if pending.Hash() == h {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(m.bySender, tx.From)
		} else {
			m.bySender[tx.From] = list
		}
	}
	mPoolDepth.Set(float64(len(m.byHash)))
}
