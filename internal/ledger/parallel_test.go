package ledger

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pds2/internal/identity"
)

// storageApplier is a deliberately conflict-prone test applier: every
// transaction bumps the sender's nonce, moves value, and additionally
// increments a shared per-recipient counter slot plus a global total
// slot under a fixed "contract" address — so transactions to the same
// recipient, and in fact all transactions, carry read/write conflicts
// through storage.
type storageApplier struct{ contract identity.Address }

func (a storageApplier) Apply(st StateAccessor, tx *Transaction, height uint64) (*Receipt, error) {
	rcpt := &Receipt{TxHash: tx.Hash(), GasUsed: tx.IntrinsicGas(), Height: height}
	snap := st.Snapshot()
	st.BumpNonce(tx.From)
	if err := st.SubBalance(tx.From, tx.Value); err != nil {
		st.RevertTo(snap)
		st.BumpNonce(tx.From)
		rcpt.Status = StatusFailed
		rcpt.Err = err.Error()
		return rcpt, nil
	}
	if err := st.AddBalance(tx.To, tx.Value); err != nil {
		st.RevertTo(snap)
		st.BumpNonce(tx.From)
		rcpt.Status = StatusFailed
		rcpt.Err = err.Error()
		return rcpt, nil
	}
	bumpSlot := func(key string) {
		var n uint64
		if b := st.GetStorage(a.contract, key); len(b) == 8 {
			n = binary.BigEndian.Uint64(b)
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], n+tx.Value)
		st.SetStorage(a.contract, key, buf[:])
	}
	bumpSlot("recv/" + tx.To.Short())
	bumpSlot("total")
	// Exercise the prefix-read validation path too.
	keys := st.StorageKeys(a.contract, "recv/")
	rcpt.Events = append(rcpt.Events, Event{
		Contract: a.contract,
		Topic:    "moved",
		Data:     []byte(fmt.Sprintf("%s->%s:%d recv=%d", tx.From.Short(), tx.To.Short(), tx.Value, len(keys))),
	})
	rcpt.Status = StatusOK
	return rcpt, nil
}

// parallelFixture builds a serial chain and a parallel chain with
// identical genesis and applier; parallel executes every block through
// the optimistic scheduler regardless of size.
func parallelFixture(t *testing.T, applier TxApplier, alloc map[identity.Address]uint64, authority *identity.Identity, shards int) (serial, parallel *Chain) {
	t.Helper()
	base := ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		Applier:      applier,
		GenesisAlloc: alloc,
		ExecWorkers:  1,
	}
	var err error
	if serial, err = NewChain(base); err != nil {
		t.Fatal(err)
	}
	par := base
	par.ExecWorkers = 8
	par.ParallelMinBatch = 1
	par.StateShards = shards
	if parallel, err = NewChain(par); err != nil {
		t.Fatal(err)
	}
	return serial, parallel
}

// checkEquivalence seals txs on the serial chain and imports the sealed
// block on the parallel chain — import re-executes the block through
// the parallel scheduler and independently checks gas and state root
// against the header, so a scheduler divergence fails the import. It
// then compares receipts and the event log entry by entry.
func checkEquivalence(t *testing.T, serial, parallel *Chain, authority *identity.Identity, txs []*Transaction) {
	t.Helper()
	block, err := serial.ProposeBlock(authority, serial.Head().Header.Timestamp+1, txs)
	if err != nil {
		t.Fatalf("serial seal: %v", err)
	}
	if err := parallel.ImportBlock(block); err != nil {
		t.Fatalf("parallel import: %v", err)
	}
	if sr, pr := serial.State().Root(), parallel.State().Root(); sr != pr {
		t.Fatalf("state roots diverge: serial %s parallel %s", sr.Short(), pr.Short())
	}
	for i, tx := range txs {
		sr, _ := serial.Receipt(tx.Hash())
		pr, ok := parallel.Receipt(tx.Hash())
		if !ok {
			t.Fatalf("tx %d: no parallel receipt", i)
		}
		if !reflect.DeepEqual(sr, pr) {
			t.Fatalf("tx %d receipts diverge:\nserial   %+v\nparallel %+v", i, sr, pr)
		}
	}
	if se, pe := serial.Events(""), parallel.Events(""); !reflect.DeepEqual(se, pe) {
		t.Fatalf("event logs diverge: serial %d events, parallel %d events", len(se), len(pe))
	}
}

// TestParallelExecuteMatchesSerialTransfers covers the sparse case:
// distinct senders paying distinct recipients, near-zero conflicts, so
// almost every speculation is adopted verbatim.
func TestParallelExecuteMatchesSerialTransfers(t *testing.T) {
	authority := testIdentity(1000)
	const n = 64
	ids := make([]*identity.Identity, n)
	alloc := make(map[identity.Address]uint64, n)
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		alloc[ids[i].Address()] = 1_000_000
	}
	serial, parallel := parallelFixture(t, TransferApplier{}, alloc, authority, 0)
	var txs []*Transaction
	for i, id := range ids {
		txs = append(txs, SignTx(id, ids[(i+1)%n].Address(), uint64(i+1), 0, 100_000, nil))
	}
	checkEquivalence(t, serial, parallel, authority, txs)
}

// TestParallelExecuteMatchesSerialHotAccount drives every transfer at
// one hot recipient, so each transaction's speculative read of the hot
// balance goes stale the moment its predecessor commits — the
// maximum-conflict workload. Correctness must not depend on the
// conflict rate.
func TestParallelExecuteMatchesSerialHotAccount(t *testing.T) {
	authority := testIdentity(1000)
	hot := testIdentity(999)
	const n = 64
	ids := make([]*identity.Identity, n)
	alloc := map[identity.Address]uint64{hot.Address(): 5}
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		alloc[ids[i].Address()] = 1_000_000
	}
	serial, parallel := parallelFixture(t, TransferApplier{}, alloc, authority, 0)
	var txs []*Transaction
	for i, id := range ids {
		txs = append(txs, SignTx(id, hot.Address(), uint64(i+1), 0, 100_000, nil))
	}
	checkEquivalence(t, serial, parallel, authority, txs)
}

// TestParallelExecuteMatchesSerialLanes chains many transactions per
// sender (consecutive nonces), exercising the lane mechanism: a
// sender's later transactions speculate against its earlier ones'
// accumulated writes instead of conflicting on every nonce.
func TestParallelExecuteMatchesSerialLanes(t *testing.T) {
	authority := testIdentity(1000)
	const senders, chain = 8, 12
	ids := make([]*identity.Identity, senders)
	alloc := make(map[identity.Address]uint64, senders)
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		alloc[ids[i].Address()] = 1_000_000
	}
	serial, parallel := parallelFixture(t, TransferApplier{}, alloc, authority, 0)
	var txs []*Transaction
	for k := 0; k < chain; k++ {
		for i, id := range ids {
			txs = append(txs, SignTx(id, ids[(i+1)%senders].Address(), 1, uint64(k), 100_000, nil))
		}
	}
	checkEquivalence(t, serial, parallel, authority, txs)
}

// TestParallelExecuteMatchesSerialStorage runs the storage applier:
// every transaction collides on the shared "total" slot and the prefix
// enumeration, plus failed receipts from overdrawn senders — receipts,
// events, and roots must still match serial bit for bit.
func TestParallelExecuteMatchesSerialStorage(t *testing.T) {
	authority := testIdentity(1000)
	var contractAddr identity.Address
	contractAddr[0] = 0xCC
	applier := storageApplier{contract: contractAddr}
	const n = 48
	ids := make([]*identity.Identity, n)
	alloc := make(map[identity.Address]uint64, n)
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		bal := uint64(1_000)
		if i%5 == 0 {
			bal = 1 // most of this sender's transfers fail: insufficient balance
		}
		alloc[ids[i].Address()] = bal
	}
	for _, shards := range []int{1, 16} {
		serial, parallel := parallelFixture(t, applier, alloc, authority, shards)
		var txs []*Transaction
		for i, id := range ids {
			txs = append(txs, SignTx(id, ids[(i+3)%n].Address(), uint64(10+i), 0, 100_000, nil))
		}
		checkEquivalence(t, serial, parallel, authority, txs)
	}
}

// TestParallelExecuteErrorParity pins that a block invalid under serial
// execution fails identically under parallel execution — same error
// text — and leaves no state residue behind.
func TestParallelExecuteErrorParity(t *testing.T) {
	authority := testIdentity(1000)
	alice, bob := testIdentity(1), testIdentity(2)
	alloc := map[identity.Address]uint64{alice.Address(): 1_000_000, bob.Address(): 1_000_000}

	serial, parallel := parallelFixture(t, TransferApplier{}, alloc, authority, 0)
	txs := []*Transaction{
		SignTx(alice, bob.Address(), 1, 0, 100_000, nil),
		SignTx(bob, alice.Address(), 1, 7, 100_000, nil), // nonce gap: invalid mid-block
	}
	ts := serial.Head().Header.Timestamp + 1
	_, serr := serial.ProposeBlock(authority, ts, txs)
	if serr == nil || !strings.Contains(serr.Error(), "nonce") {
		t.Fatalf("serial proposal should fail on the nonce gap, got %v", serr)
	}
	rootBefore := parallel.State().Root()
	_, perr := parallel.ProposeBlock(authority, ts, txs)
	if perr == nil {
		t.Fatal("parallel proposal should fail on the nonce gap")
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error text diverges:\nserial   %q\nparallel %q", serr, perr)
	}
	if got := parallel.State().Root(); got != rootBefore {
		t.Fatal("failed parallel proposal left state residue")
	}
	if parallel.State().JournalLen() != 0 {
		t.Fatal("failed parallel proposal left journal entries")
	}
}

// TestParallelExecuteMultiBlock seals a sequence of blocks through the
// parallel path directly (ProposeBlock on the parallel chain) and
// cross-imports them into a serial replica, proving sealed headers are
// byte-compatible in both directions.
func TestParallelExecuteMultiBlock(t *testing.T) {
	authority := testIdentity(1000)
	const n = 32
	ids := make([]*identity.Identity, n)
	alloc := make(map[identity.Address]uint64, n)
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		alloc[ids[i].Address()] = 1_000_000
	}
	serial, parallel := parallelFixture(t, TransferApplier{}, alloc, authority, 0)
	for block := 0; block < 5; block++ {
		var txs []*Transaction
		for i, id := range ids {
			txs = append(txs, SignTx(id, ids[(i+block+1)%n].Address(), 1, uint64(block), 100_000, nil))
		}
		b, err := parallel.ProposeBlock(authority, parallel.Head().Header.Timestamp+1, txs)
		if err != nil {
			t.Fatalf("parallel seal %d: %v", block, err)
		}
		if err := serial.ImportBlock(b); err != nil {
			t.Fatalf("serial import %d: %v", block, err)
		}
	}
	if sr, pr := serial.State().Root(), parallel.State().Root(); sr != pr {
		t.Fatalf("state roots diverge after 5 blocks: %s vs %s", sr.Short(), pr.Short())
	}
}

// TestMempoolNextBatchEvictsOvergasPoison pins the poison-tx fix at the
// mempool layer: a transaction whose intrinsic gas exceeds the block
// budget is evicted during batch building instead of wedging selection.
func TestMempoolNextBatchEvictsOvergasPoison(t *testing.T) {
	st := NewState()
	pool := NewMempool(0)
	alice, bob := testIdentity(1), testIdentity(2)
	st.SetBalance(alice.Address(), 1_000_000)
	st.SetBalance(bob.Address(), 1_000_000)
	st.Commit()

	// 2kB payload: intrinsic gas 21000 + 16*2048 = 53768 > 50k budget.
	poison := SignTx(alice, bob.Address(), 1, 0, 100_000, make([]byte, 2048))
	follow := SignTx(alice, bob.Address(), 1, 1, 100_000, nil)
	ok := SignTx(bob, alice.Address(), 1, 0, 100_000, nil)
	for _, tx := range []*Transaction{poison, follow, ok} {
		if err := pool.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	batch := pool.NextBatch(st, 100, 50_000)
	if len(batch) != 1 || batch[0].Hash() != ok.Hash() {
		t.Fatalf("batch should hold only the healthy tx, got %d txs", len(batch))
	}
	if pool.Contains(poison.Hash()) {
		t.Fatal("poison tx survived NextBatch")
	}
	if !pool.Contains(follow.Hash()) {
		t.Fatal("poison eviction must not drop the sender's later (gapped) tx")
	}
}

// TestMempoolNextBatchGasAware pins declared-floor packing: batches cut
// at the gas budget, remainder stays pooled, and packing never splits a
// sender's nonce chain in a way that strands executable transactions.
func TestMempoolNextBatchGasAware(t *testing.T) {
	st := NewState()
	pool := NewMempool(0)
	const n = 10
	ids := make([]*identity.Identity, n)
	for i := range ids {
		ids[i] = testIdentity(uint64(i))
		st.SetBalance(ids[i].Address(), 1_000_000)
	}
	st.Commit()
	for _, id := range ids {
		if err := pool.Add(SignTx(id, ids[0].Address(), 1, 0, 100_000, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Budget for exactly four 21k-intrinsic transfers.
	batch := pool.NextBatch(st, 100, 4*21_000)
	if len(batch) != 4 {
		t.Fatalf("gas-aware batch took %d txs, want 4", len(batch))
	}
	if pool.Len() != n {
		t.Fatalf("selection must not evict fitting txs: pool has %d of %d", pool.Len(), n)
	}
	// Unlimited budget takes everything.
	if got := len(pool.NextBatch(st, 100, 0)); got != n {
		t.Fatalf("unlimited budget took %d txs, want %d", got, n)
	}
}

// TestEvictOvergas pins the seal path's defense-in-depth hook.
func TestEvictOvergas(t *testing.T) {
	pool := NewMempool(0)
	alice := testIdentity(1)
	var to identity.Address
	tx := SignTx(alice, to, 1, 0, 100_000, nil)
	if err := pool.Add(tx); err != nil {
		t.Fatal(err)
	}
	if !pool.EvictOvergas(tx) {
		t.Fatal("EvictOvergas should report the eviction")
	}
	if pool.Contains(tx.Hash()) || pool.Len() != 0 {
		t.Fatal("tx survived EvictOvergas")
	}
	if pool.EvictOvergas(tx) {
		t.Fatal("second eviction should report false")
	}
}
