package ledger

import (
	"errors"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// testChain builds a chain with a single authority and two funded users.
func testChain(t *testing.T) (*Chain, *identity.Identity, *identity.Identity, *identity.Identity) {
	t.Helper()
	authority := testIdentity(100)
	alice := testIdentity(1)
	bob := testIdentity(2)
	chain, err := NewChain(ChainConfig{
		Authorities: []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 1_000,
			bob.Address():   500,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return chain, authority, alice, bob
}

func TestChainGenesis(t *testing.T) {
	chain, _, alice, bob := testChain(t)
	if chain.Height() != 0 {
		t.Fatalf("genesis height = %d", chain.Height())
	}
	if chain.State().Balance(alice.Address()) != 1_000 || chain.State().Balance(bob.Address()) != 500 {
		t.Fatal("genesis allocation wrong")
	}
}

func TestChainTransfer(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	tx := SignTx(alice, bob.Address(), 100, 0, 50_000, nil)
	block, err := chain.ProposeBlock(authority, 1, []*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if block.Header.Height != 1 {
		t.Fatalf("height = %d", block.Header.Height)
	}
	if chain.State().Balance(alice.Address()) != 900 || chain.State().Balance(bob.Address()) != 600 {
		t.Fatal("transfer not applied")
	}
	rcpt, ok := chain.Receipt(tx.Hash())
	if !ok || !rcpt.Succeeded() {
		t.Fatalf("receipt: %+v ok=%v", rcpt, ok)
	}
}

func TestChainFailedTransferKeepsNonceAndFunds(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	tx := SignTx(alice, bob.Address(), 10_000, 0, 50_000, nil) // overdraft
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	rcpt, _ := chain.Receipt(tx.Hash())
	if rcpt.Succeeded() {
		t.Fatal("overdraft succeeded")
	}
	if chain.State().Balance(alice.Address()) != 1_000 {
		t.Fatal("failed tx moved funds")
	}
	if chain.State().Nonce(alice.Address()) != 1 {
		t.Fatal("failed tx did not consume nonce")
	}
}

func TestChainRejectsWrongNonce(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	tx := SignTx(alice, bob.Address(), 1, 5, 50_000, nil)
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx}); err == nil {
		t.Fatal("wrong nonce accepted")
	}
	if chain.Height() != 0 {
		t.Fatal("failed proposal advanced the chain")
	}
	if chain.State().Balance(alice.Address()) != 1_000 {
		t.Fatal("failed proposal mutated state")
	}
}

func TestChainRejectsWrongProposer(t *testing.T) {
	chain, _, alice, _ := testChain(t)
	if _, err := chain.ProposeBlock(alice, 1, nil); !errors.Is(err, ErrBadProposer) {
		t.Fatalf("want ErrBadProposer, got %v", err)
	}
}

func TestChainAuthorityRotation(t *testing.T) {
	auth1, auth2 := testIdentity(100), testIdentity(101)
	chain, err := NewChain(ChainConfig{
		Authorities: []identity.Address{auth1.Address(), auth2.Address()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.ProposeBlock(auth1, 1, nil); err != nil {
		t.Fatalf("auth1 at height 1: %v", err)
	}
	if _, err := chain.ProposeBlock(auth1, 2, nil); !errors.Is(err, ErrBadProposer) {
		t.Fatal("rotation not enforced")
	}
	if _, err := chain.ProposeBlock(auth2, 2, nil); err != nil {
		t.Fatalf("auth2 at height 2: %v", err)
	}
}

func TestChainTimestampMonotonic(t *testing.T) {
	chain, authority, _, _ := testChain(t)
	if _, err := chain.ProposeBlock(authority, 5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.ProposeBlock(authority, 5, nil); !errors.Is(err, ErrNonMonotonicTS) {
		t.Fatalf("want ErrNonMonotonicTS, got %v", err)
	}
}

func TestChainImportBlockReplica(t *testing.T) {
	// Two replicas with identical config; blocks produced on one must
	// import cleanly on the other and converge to the same state root.
	authority := testIdentity(100)
	alice := testIdentity(1)
	cfg := ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{alice.Address(): 1_000},
	}
	producer, _ := NewChain(cfg)
	replica, _ := NewChain(cfg)

	tx := SignTx(alice, testIdentity(2).Address(), 50, 0, 50_000, nil)
	block, err := producer.ProposeBlock(authority, 1, []*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ImportBlock(block); err != nil {
		t.Fatalf("replica rejected valid block: %v", err)
	}
	if producer.State().Root() != replica.State().Root() {
		t.Fatal("replicas diverged")
	}
}

func TestChainImportRejectsTamperedBlock(t *testing.T) {
	authority := testIdentity(100)
	alice := testIdentity(1)
	cfg := ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{alice.Address(): 1_000},
	}
	producer, _ := NewChain(cfg)

	tx := SignTx(alice, testIdentity(2).Address(), 50, 0, 50_000, nil)
	block, _ := producer.ProposeBlock(authority, 1, []*Transaction{tx})

	// Tampered state root.
	replica, _ := NewChain(cfg)
	bad := *block
	bad.Header.StateRoot = crypto.HashString("forged")
	if err := replica.ImportBlock(&bad); err == nil {
		t.Fatal("tampered state root accepted")
	}

	// Tampered tx list (tx root mismatch).
	bad2 := *block
	bad2.Txs = nil
	if err := replica.ImportBlock(&bad2); !errors.Is(err, ErrBadTxRoot) {
		t.Fatalf("want ErrBadTxRoot, got %v", err)
	}

	// Reseal by a non-authority.
	mallory := testIdentity(66)
	bad3 := *block
	bad3.seal(mallory)
	if err := replica.ImportBlock(&bad3); !errors.Is(err, ErrBadProposer) {
		t.Fatalf("want ErrBadProposer, got %v", err)
	}

	// The untampered block still imports.
	if err := replica.ImportBlock(block); err != nil {
		t.Fatalf("valid block rejected after attacks: %v", err)
	}
}

// countingApplier wraps an applier and counts Apply calls per tx hash,
// proving the import pipeline executes each transaction exactly once.
type countingApplier struct {
	inner  TxApplier
	counts map[crypto.Digest]int
}

func (a *countingApplier) Apply(st StateAccessor, tx *Transaction, height uint64) (*Receipt, error) {
	a.counts[tx.Hash()]++
	return a.inner.Apply(st, tx, height)
}

func TestChainImportExecutesExactlyOnce(t *testing.T) {
	authority := testIdentity(100)
	alice := testIdentity(1)
	cfg := ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{alice.Address(): 1_000},
	}
	producer, _ := NewChain(cfg)
	txs := []*Transaction{
		SignTx(alice, testIdentity(2).Address(), 50, 0, 50_000, nil),
		SignTx(alice, testIdentity(2).Address(), 25, 1, 50_000, nil),
	}
	block, err := producer.ProposeBlock(authority, 1, txs)
	if err != nil {
		t.Fatal(err)
	}

	counting := &countingApplier{inner: TransferApplier{}, counts: map[crypto.Digest]int{}}
	replicaCfg := cfg
	replicaCfg.Applier = counting
	replica, _ := NewChain(replicaCfg)
	if err := replica.ImportBlock(block); err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		if got := counting.counts[tx.Hash()]; got != 1 {
			t.Fatalf("tx executed %d times on import, want exactly 1", got)
		}
	}
	if producer.State().Root() != replica.State().Root() {
		t.Fatal("single-execution import diverged from producer")
	}

	// The standalone audit path still works and leaves no residue: the
	// same block re-verifies on a fresh replica without advancing it.
	audit := &countingApplier{inner: TransferApplier{}, counts: map[crypto.Digest]int{}}
	auditCfg := cfg
	auditCfg.Applier = audit
	auditor, _ := NewChain(auditCfg)
	if err := auditor.VerifyBlock(block); err != nil {
		t.Fatal(err)
	}
	if auditor.Height() != 0 || auditor.State().Nonce(alice.Address()) != 0 {
		t.Fatal("VerifyBlock mutated the auditor chain")
	}
	if got := audit.counts[txs[0].Hash()]; got != 1 {
		t.Fatalf("audit executed tx %d times, want 1", got)
	}
}

func TestChainImportWrongRotationProposer(t *testing.T) {
	auth1, auth2 := testIdentity(100), testIdentity(101)
	cfg := ChainConfig{
		Authorities:  []identity.Address{auth1.Address(), auth2.Address()},
		GenesisAlloc: map[identity.Address]uint64{testIdentity(1).Address(): 1_000},
	}
	producer, _ := NewChain(cfg)
	b1, err := producer.ProposeBlock(auth1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := producer.ProposeBlock(auth2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}

	replica, _ := NewChain(cfg)
	// Height-2 block sealed by the height-1 authority: valid seal, wrong
	// rotation slot.
	bad := *b2
	bad.Header.Parent = b1.Hash()
	bad.seal(auth1)
	if err := replica.ImportBlock(b1); err != nil {
		t.Fatal(err)
	}
	if err := replica.ImportBlock(&bad); !errors.Is(err, ErrBadProposer) {
		t.Fatalf("want ErrBadProposer, got %v", err)
	}
	if err := replica.ImportBlock(b2); err != nil {
		t.Fatalf("correct rotation rejected: %v", err)
	}
}

func TestChainImportTimestampAtHeightOne(t *testing.T) {
	// Height 1 is exempt from monotonicity (genesis carries timestamp
	// 0 and no real clock): a height-1 block with timestamp 0 imports,
	// while height 2 must strictly increase.
	authority := testIdentity(100)
	cfg := ChainConfig{Authorities: []identity.Address{authority.Address()}}
	producer, _ := NewChain(cfg)
	b1, err := producer.ProposeBlock(authority, 0, nil)
	if err != nil {
		t.Fatalf("timestamp 0 at height 1 rejected: %v", err)
	}
	replica, _ := NewChain(cfg)
	if err := replica.ImportBlock(b1); err != nil {
		t.Fatalf("height-1 import with timestamp 0: %v", err)
	}
	if _, err := producer.ProposeBlock(authority, 0, nil); !errors.Is(err, ErrNonMonotonicTS) {
		t.Fatalf("want ErrNonMonotonicTS at height 2, got %v", err)
	}
}

func TestChainGasLimitBoundary(t *testing.T) {
	authority := testIdentity(100)
	alice := testIdentity(1)
	mk := func(limit uint64) *Chain {
		c, _ := NewChain(ChainConfig{
			Authorities:   []identity.Address{authority.Address()},
			GenesisAlloc:  map[identity.Address]uint64{alice.Address(): 1_000},
			BlockGasLimit: limit,
		})
		return c
	}
	txs := []*Transaction{
		SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil),
		SignTx(alice, testIdentity(2).Address(), 1, 1, 50_000, nil),
	}
	// Exactly at the limit: accepted.
	exact := mk(2 * TxBaseGas)
	block, err := exact.ProposeBlock(authority, 1, txs)
	if err != nil {
		t.Fatalf("block exactly at gas limit rejected: %v", err)
	}
	if block.Header.GasUsed != 2*TxBaseGas {
		t.Fatalf("gas used %d, want %d", block.Header.GasUsed, 2*TxBaseGas)
	}
	replica := mk(2 * TxBaseGas)
	if err := replica.ImportBlock(block); err != nil {
		t.Fatalf("at-limit block failed to import: %v", err)
	}
	// One over: rejected, state untouched.
	over := mk(2*TxBaseGas - 1)
	if _, err := over.ProposeBlock(authority, 1, txs); !errors.Is(err, ErrBlockGasLimit) {
		t.Fatalf("want ErrBlockGasLimit, got %v", err)
	}
	if err := over.ImportBlock(block); !errors.Is(err, ErrBlockGasLimit) {
		t.Fatalf("import over limit: want ErrBlockGasLimit, got %v", err)
	}
	if over.Height() != 0 || over.State().Nonce(alice.Address()) != 0 {
		t.Fatal("rejected block left residue")
	}
}

func TestChainImportStateRootMismatchAfterPartialFailure(t *testing.T) {
	// A block whose second tx fails (overdraft) is still valid — failed
	// txs get failed receipts and consume their nonce. Tampering with
	// its state root must be detected on import, and the rejection must
	// fully revert the partially-applied state.
	authority := testIdentity(100)
	alice := testIdentity(1)
	cfg := ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{alice.Address(): 1_000},
	}
	producer, _ := NewChain(cfg)
	txs := []*Transaction{
		SignTx(alice, testIdentity(2).Address(), 100, 0, 50_000, nil),
		SignTx(alice, testIdentity(2).Address(), 10_000, 1, 50_000, nil), // overdraft: fails
	}
	block, err := producer.ProposeBlock(authority, 1, txs)
	if err != nil {
		t.Fatal(err)
	}
	rcpt, _ := producer.Receipt(txs[1].Hash())
	if rcpt.Succeeded() {
		t.Fatal("overdraft unexpectedly succeeded")
	}

	replica, _ := NewChain(cfg)
	bad := *block
	bad.Header.StateRoot = crypto.HashString("forged")
	bad.seal(authority) // reseal so only the state root is wrong
	if err := replica.ImportBlock(&bad); !errors.Is(err, ErrBadStateRoot) {
		t.Fatalf("want ErrBadStateRoot, got %v", err)
	}
	if replica.Height() != 0 {
		t.Fatal("rejected block advanced the chain")
	}
	if replica.State().Balance(alice.Address()) != 1_000 || replica.State().Nonce(alice.Address()) != 0 {
		t.Fatal("rejected import left partially-applied state")
	}
	// The honest block still imports and converges.
	if err := replica.ImportBlock(block); err != nil {
		t.Fatal(err)
	}
	if replica.State().Root() != producer.State().Root() {
		t.Fatal("replicas diverged after partial-failure block")
	}
}

func TestChainImportRejectsInvalidSignatureInBlock(t *testing.T) {
	// A tampered tx payload breaks both the tx root and the stateless
	// phase; with a recomputed root and reseal, the parallel stateless
	// verifier is the check that catches it, at every batch size around
	// the parallel threshold.
	authority := testIdentity(100)
	alice := testIdentity(1)
	for _, n := range []int{1, parallelVerifyThreshold, 64} {
		cfg := ChainConfig{
			Authorities:  []identity.Address{authority.Address()},
			GenesisAlloc: map[identity.Address]uint64{alice.Address(): 1 << 30},
		}
		producer, _ := NewChain(cfg)
		txs := make([]*Transaction, n)
		for i := range txs {
			txs[i] = SignTx(alice, testIdentity(2).Address(), 1, uint64(i), 50_000, nil)
		}
		block, err := producer.ProposeBlock(authority, 1, txs)
		if err != nil {
			t.Fatal(err)
		}
		bad := *block
		bad.Txs = append([]*Transaction(nil), block.Txs...)
		tampered := *block.Txs[n-1]
		tampered.Value = 999_999 // breaks the signature
		bad.Txs[n-1] = &tampered
		bad.Header.TxRoot = txRoot(bad.Txs)
		bad.seal(authority)
		replica, _ := NewChain(cfg)
		if err := replica.ImportBlock(&bad); !errors.Is(err, ErrTxSignature) {
			t.Fatalf("n=%d: want ErrTxSignature, got %v", n, err)
		}
		if replica.Height() != 0 {
			t.Fatalf("n=%d: invalid block advanced the chain", n)
		}
	}
}

func TestChainBlockGasLimit(t *testing.T) {
	authority := testIdentity(100)
	alice := testIdentity(1)
	chain, _ := NewChain(ChainConfig{
		Authorities:   []identity.Address{authority.Address()},
		GenesisAlloc:  map[identity.Address]uint64{alice.Address(): 1_000},
		BlockGasLimit: TxBaseGas + 10, // room for exactly one plain tx
	})
	tx0 := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	tx1 := SignTx(alice, testIdentity(2).Address(), 1, 1, 50_000, nil)
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx0, tx1}); !errors.Is(err, ErrBlockGasLimit) {
		t.Fatalf("want ErrBlockGasLimit, got %v", err)
	}
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx0}); err != nil {
		t.Fatalf("single tx should fit: %v", err)
	}
}

func TestChainBlockAt(t *testing.T) {
	chain, authority, _, _ := testChain(t)
	chain.ProposeBlock(authority, 1, nil)
	b, err := chain.BlockAt(1)
	if err != nil || b.Header.Height != 1 {
		t.Fatalf("BlockAt(1): %v, %v", b, err)
	}
	if _, err := chain.BlockAt(9); err == nil {
		t.Fatal("missing height accepted")
	}
}

func TestNewChainRequiresAuthority(t *testing.T) {
	if _, err := NewChain(ChainConfig{}); err == nil {
		t.Fatal("empty authority set accepted")
	}
}
