package ledger

import (
	"errors"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// testChain builds a chain with a single authority and two funded users.
func testChain(t *testing.T) (*Chain, *identity.Identity, *identity.Identity, *identity.Identity) {
	t.Helper()
	authority := testIdentity(100)
	alice := testIdentity(1)
	bob := testIdentity(2)
	chain, err := NewChain(ChainConfig{
		Authorities: []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 1_000,
			bob.Address():   500,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return chain, authority, alice, bob
}

func TestChainGenesis(t *testing.T) {
	chain, _, alice, bob := testChain(t)
	if chain.Height() != 0 {
		t.Fatalf("genesis height = %d", chain.Height())
	}
	if chain.State().Balance(alice.Address()) != 1_000 || chain.State().Balance(bob.Address()) != 500 {
		t.Fatal("genesis allocation wrong")
	}
}

func TestChainTransfer(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	tx := SignTx(alice, bob.Address(), 100, 0, 50_000, nil)
	block, err := chain.ProposeBlock(authority, 1, []*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if block.Header.Height != 1 {
		t.Fatalf("height = %d", block.Header.Height)
	}
	if chain.State().Balance(alice.Address()) != 900 || chain.State().Balance(bob.Address()) != 600 {
		t.Fatal("transfer not applied")
	}
	rcpt, ok := chain.Receipt(tx.Hash())
	if !ok || !rcpt.Succeeded() {
		t.Fatalf("receipt: %+v ok=%v", rcpt, ok)
	}
}

func TestChainFailedTransferKeepsNonceAndFunds(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	tx := SignTx(alice, bob.Address(), 10_000, 0, 50_000, nil) // overdraft
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	rcpt, _ := chain.Receipt(tx.Hash())
	if rcpt.Succeeded() {
		t.Fatal("overdraft succeeded")
	}
	if chain.State().Balance(alice.Address()) != 1_000 {
		t.Fatal("failed tx moved funds")
	}
	if chain.State().Nonce(alice.Address()) != 1 {
		t.Fatal("failed tx did not consume nonce")
	}
}

func TestChainRejectsWrongNonce(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	tx := SignTx(alice, bob.Address(), 1, 5, 50_000, nil)
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx}); err == nil {
		t.Fatal("wrong nonce accepted")
	}
	if chain.Height() != 0 {
		t.Fatal("failed proposal advanced the chain")
	}
	if chain.State().Balance(alice.Address()) != 1_000 {
		t.Fatal("failed proposal mutated state")
	}
}

func TestChainRejectsWrongProposer(t *testing.T) {
	chain, _, alice, _ := testChain(t)
	if _, err := chain.ProposeBlock(alice, 1, nil); !errors.Is(err, ErrBadProposer) {
		t.Fatalf("want ErrBadProposer, got %v", err)
	}
}

func TestChainAuthorityRotation(t *testing.T) {
	auth1, auth2 := testIdentity(100), testIdentity(101)
	chain, err := NewChain(ChainConfig{
		Authorities: []identity.Address{auth1.Address(), auth2.Address()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.ProposeBlock(auth1, 1, nil); err != nil {
		t.Fatalf("auth1 at height 1: %v", err)
	}
	if _, err := chain.ProposeBlock(auth1, 2, nil); !errors.Is(err, ErrBadProposer) {
		t.Fatal("rotation not enforced")
	}
	if _, err := chain.ProposeBlock(auth2, 2, nil); err != nil {
		t.Fatalf("auth2 at height 2: %v", err)
	}
}

func TestChainTimestampMonotonic(t *testing.T) {
	chain, authority, _, _ := testChain(t)
	if _, err := chain.ProposeBlock(authority, 5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.ProposeBlock(authority, 5, nil); !errors.Is(err, ErrNonMonotonicTS) {
		t.Fatalf("want ErrNonMonotonicTS, got %v", err)
	}
}

func TestChainImportBlockReplica(t *testing.T) {
	// Two replicas with identical config; blocks produced on one must
	// import cleanly on the other and converge to the same state root.
	authority := testIdentity(100)
	alice := testIdentity(1)
	cfg := ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{alice.Address(): 1_000},
	}
	producer, _ := NewChain(cfg)
	replica, _ := NewChain(cfg)

	tx := SignTx(alice, testIdentity(2).Address(), 50, 0, 50_000, nil)
	block, err := producer.ProposeBlock(authority, 1, []*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ImportBlock(block); err != nil {
		t.Fatalf("replica rejected valid block: %v", err)
	}
	if producer.State().Root() != replica.State().Root() {
		t.Fatal("replicas diverged")
	}
}

func TestChainImportRejectsTamperedBlock(t *testing.T) {
	authority := testIdentity(100)
	alice := testIdentity(1)
	cfg := ChainConfig{
		Authorities:  []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{alice.Address(): 1_000},
	}
	producer, _ := NewChain(cfg)

	tx := SignTx(alice, testIdentity(2).Address(), 50, 0, 50_000, nil)
	block, _ := producer.ProposeBlock(authority, 1, []*Transaction{tx})

	// Tampered state root.
	replica, _ := NewChain(cfg)
	bad := *block
	bad.Header.StateRoot = crypto.HashString("forged")
	if err := replica.ImportBlock(&bad); err == nil {
		t.Fatal("tampered state root accepted")
	}

	// Tampered tx list (tx root mismatch).
	bad2 := *block
	bad2.Txs = nil
	if err := replica.ImportBlock(&bad2); !errors.Is(err, ErrBadTxRoot) {
		t.Fatalf("want ErrBadTxRoot, got %v", err)
	}

	// Reseal by a non-authority.
	mallory := testIdentity(66)
	bad3 := *block
	bad3.seal(mallory)
	if err := replica.ImportBlock(&bad3); !errors.Is(err, ErrBadProposer) {
		t.Fatalf("want ErrBadProposer, got %v", err)
	}

	// The untampered block still imports.
	if err := replica.ImportBlock(block); err != nil {
		t.Fatalf("valid block rejected after attacks: %v", err)
	}
}

func TestChainBlockGasLimit(t *testing.T) {
	authority := testIdentity(100)
	alice := testIdentity(1)
	chain, _ := NewChain(ChainConfig{
		Authorities:   []identity.Address{authority.Address()},
		GenesisAlloc:  map[identity.Address]uint64{alice.Address(): 1_000},
		BlockGasLimit: TxBaseGas + 10, // room for exactly one plain tx
	})
	tx0 := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	tx1 := SignTx(alice, testIdentity(2).Address(), 1, 1, 50_000, nil)
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx0, tx1}); !errors.Is(err, ErrBlockGasLimit) {
		t.Fatalf("want ErrBlockGasLimit, got %v", err)
	}
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx0}); err != nil {
		t.Fatalf("single tx should fit: %v", err)
	}
}

func TestChainBlockAt(t *testing.T) {
	chain, authority, _, _ := testChain(t)
	chain.ProposeBlock(authority, 1, nil)
	b, err := chain.BlockAt(1)
	if err != nil || b.Header.Height != 1 {
		t.Fatalf("BlockAt(1): %v, %v", b, err)
	}
	if _, err := chain.BlockAt(9); err == nil {
		t.Fatal("missing height accepted")
	}
}

func TestNewChainRequiresAuthority(t *testing.T) {
	if _, err := NewChain(ChainConfig{}); err == nil {
		t.Fatal("empty authority set accepted")
	}
}
