package ledger

import (
	"errors"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

// Chain instrumentation: block production latency, per-block batch
// sizes, applied/failed transaction totals and the chain height. All
// are no-ops until telemetry is enabled.
var (
	mSealSeconds   = telemetry.H("ledger.block.seal_seconds", telemetry.TimeBuckets)
	mImportSeconds = telemetry.H("ledger.block.import_seconds", telemetry.TimeBuckets)
	mBlockTxs      = telemetry.H("ledger.block.txs", telemetry.CountBuckets)
	mBlockGas      = telemetry.H("ledger.block.gas", telemetry.GasBuckets)
	mTxApplied     = telemetry.C("ledger.tx.applied_total")
	mTxFailed      = telemetry.C("ledger.tx.failed_total")
	mHeight        = telemetry.G("ledger.block.height")
)

// TxApplier executes a transaction against the state and produces its
// receipt. The ledger ships a plain value-transfer applier; the contract
// runtime (internal/contract) wraps it to dispatch contract creation and
// calls. Apply must leave the state unchanged when it returns an error
// (as opposed to a failed receipt, which may still consume gas).
// Apply receives a StateAccessor rather than the concrete *State so the
// same applier executes on the committed state (serial path) and on
// speculative views (parallel path) without knowing which.
type TxApplier interface {
	Apply(st StateAccessor, tx *Transaction, height uint64) (*Receipt, error)
}

// TransferApplier is the base applier: native token transfers only.
// Transactions carrying data to a non-contract destination fail.
type TransferApplier struct{}

// Apply implements TxApplier.
func (TransferApplier) Apply(st StateAccessor, tx *Transaction, height uint64) (*Receipt, error) {
	rcpt := &Receipt{TxHash: tx.Hash(), GasUsed: tx.IntrinsicGas(), Height: height}
	snap := st.Snapshot()
	st.BumpNonce(tx.From)
	if err := st.SubBalance(tx.From, tx.Value); err != nil {
		st.RevertTo(snap)
		st.BumpNonce(tx.From) // failed txs still consume their nonce
		rcpt.Status = StatusFailed
		rcpt.Err = err.Error()
		return rcpt, nil
	}
	if err := st.AddBalance(tx.To, tx.Value); err != nil {
		st.RevertTo(snap)
		st.BumpNonce(tx.From)
		rcpt.Status = StatusFailed
		rcpt.Err = err.Error()
		return rcpt, nil
	}
	rcpt.Status = StatusOK
	return rcpt, nil
}

// ChainConfig parameterizes a Chain.
type ChainConfig struct {
	// Authorities is the proof-of-authority validator set, in rotation
	// order. Block at height h must be proposed (and sealed) by
	// Authorities[(h-1) % len(Authorities)].
	Authorities []identity.Address

	// BlockGasLimit bounds the total gas of a block. Zero selects
	// DefaultBlockGasLimit.
	BlockGasLimit uint64

	// Applier executes transactions. Nil selects TransferApplier.
	Applier TxApplier

	// Genesis allocations: balances credited at height 0.
	GenesisAlloc map[identity.Address]uint64

	// StatelessWorkers bounds the worker pool used for the stateless
	// transaction-verification phase (signature, sender binding and
	// intrinsic-gas checks). Zero selects GOMAXPROCS; one forces the
	// sequential path. Small batches always verify sequentially.
	StatelessWorkers int

	// ExecWorkers bounds the worker pool for optimistic parallel
	// transaction execution (parallel.go). Zero selects GOMAXPROCS; one
	// forces serial execution. The result is bit-identical either way —
	// parallel commits happen in transaction-index order.
	ExecWorkers int

	// ParallelMinBatch is the smallest block (tx count) routed through
	// the parallel executor; smaller blocks execute serially. Zero
	// selects defaultParallelMinBatch. Tests set 1 to force the
	// parallel path on tiny blocks.
	ParallelMinBatch int

	// StateShards is the number of address-prefix lock shards the world
	// state is split across (rounded down to a power of two, max 256).
	// Zero selects DefaultStateShards; one reproduces a single global
	// lock for the contention ablation.
	StateShards int
}

// DefaultBlockGasLimit matches the order of magnitude of Ethereum blocks.
const DefaultBlockGasLimit uint64 = 30_000_000

// Chain is a validated proof-of-authority blockchain with its world
// state, receipts and a queryable event log.
type Chain struct {
	cfg      ChainConfig
	blocks   []*Block
	base     uint64 // height of blocks[0]: 0 for genesis, >0 when restored from a snapshot
	state    *State
	receipts map[crypto.Digest]*Receipt
	events   []Event // flat, append-only audit log across all blocks

	// onCommit, when set, observes every block the moment it commits
	// (seal and import alike) — the durable-store hook. It runs under
	// whatever lock serializes chain mutation.
	onCommit func(*Block)
}

// NewChain creates a chain with a genesis block at height 0.
func NewChain(cfg ChainConfig) (*Chain, error) {
	if len(cfg.Authorities) == 0 {
		return nil, errors.New("ledger: proof of authority requires at least one authority")
	}
	if cfg.BlockGasLimit == 0 {
		cfg.BlockGasLimit = DefaultBlockGasLimit
	}
	if cfg.Applier == nil {
		cfg.Applier = TransferApplier{}
	}
	st := NewStateSharded(cfg.StateShards)
	for addr, bal := range cfg.GenesisAlloc {
		st.SetBalance(addr, bal)
	}
	st.Commit()
	genesis := &Block{Header: Header{
		Height:    0,
		StateRoot: st.Root(),
	}}
	return &Chain{
		cfg:      cfg,
		blocks:   []*Block{genesis},
		state:    st,
		receipts: make(map[crypto.Digest]*Receipt),
	}, nil
}

// Height returns the height of the latest block.
func (c *Chain) Height() uint64 { return c.blocks[len(c.blocks)-1].Header.Height }

// GasLimit returns the per-block gas limit this chain enforces.
func (c *Chain) GasLimit() uint64 { return c.cfg.BlockGasLimit }

// Head returns the latest block.
func (c *Chain) Head() *Block { return c.blocks[len(c.blocks)-1] }

// Base returns the height of the oldest block this chain holds: 0 for
// a chain grown from genesis, the snapshot height for a chain restored
// through NewChainFromSnapshot (earlier blocks are pruned).
func (c *Chain) Base() uint64 { return c.base }

// SetOnCommit installs a hook observing every committed block — the
// durable chain store's append point (nil removes it). The hook runs
// after the block and its receipts are recorded, under the caller's
// chain-serialization lock, so it must not call back into the chain.
func (c *Chain) SetOnCommit(fn func(*Block)) { c.onCommit = fn }

// BlockAt returns the block at the given height. Heights below the
// chain's base (pruned by a snapshot restore) are unavailable.
func (c *Chain) BlockAt(h uint64) (*Block, error) {
	if h < c.base {
		return nil, fmt.Errorf("ledger: block %d pruned (chain restored from snapshot at %d)", h, c.base)
	}
	if h-c.base >= uint64(len(c.blocks)) {
		return nil, fmt.Errorf("ledger: no block at height %d (head %d)", h, c.Height())
	}
	return c.blocks[h-c.base], nil
}

// State returns the live world state. Callers outside block processing
// must treat it as read-only; contract views go through it.
func (c *Chain) State() *State { return c.state }

// Receipt returns the receipt for a transaction hash.
func (c *Chain) Receipt(txHash crypto.Digest) (*Receipt, bool) {
	r, ok := c.receipts[txHash]
	return r, ok
}

// Events returns all audit-log events whose topic matches topic
// (empty string matches all), in chain order.
func (c *Chain) Events(topic string) []Event {
	if topic == "" {
		return append([]Event(nil), c.events...)
	}
	var out []Event
	for _, e := range c.events {
		if e.Topic == topic {
			out = append(out, e)
		}
	}
	return out
}

// EventsFrom returns events emitted by a specific contract, optionally
// filtered by topic.
func (c *Chain) EventsFrom(contract identity.Address, topic string) []Event {
	var out []Event
	for _, e := range c.events {
		if e.Contract != contract {
			continue
		}
		if topic != "" && e.Topic != topic {
			continue
		}
		out = append(out, e)
	}
	return out
}

// expectedProposer returns the authority expected to seal height h.
func (c *Chain) expectedProposer(h uint64) identity.Address {
	return c.cfg.Authorities[(h-1)%uint64(len(c.cfg.Authorities))]
}

// ProposeBlock builds, executes and seals the next block from the given
// transactions. The proposer identity must match the PoA rotation for the
// next height. On success the block is appended to the chain and its
// receipts recorded. Transactions that fail stateless verification cause
// the whole proposal to be rejected — a correct proposer never includes
// them.
func (c *Chain) ProposeBlock(proposer *identity.Identity, timestamp uint64, txs []*Transaction) (block *Block, err error) {
	// The component label makes seal cost (and everything it calls —
	// execution, root hashing, commit) attributable in CPU profiles.
	telemetry.WithComponent("ledger.seal", func() {
		block, err = c.proposeBlock(proposer, timestamp, txs)
	})
	return block, err
}

func (c *Chain) proposeBlock(proposer *identity.Identity, timestamp uint64, txs []*Transaction) (*Block, error) {
	timer := mSealSeconds.Time()
	height := c.Height() + 1
	if c.expectedProposer(height) != proposer.Address() {
		return nil, fmt.Errorf("%w: %s at height %d", ErrBadProposer, proposer.Address().Short(), height)
	}
	parent := c.Head()
	if timestamp <= parent.Header.Timestamp && height > 1 {
		return nil, ErrNonMonotonicTS
	}

	if err := c.verifyStateless(txs); err != nil {
		return nil, err
	}
	snap := c.state.Snapshot()
	receipts, gasUsed, err := c.applyTxs(txs, height)
	if err != nil {
		c.state.RevertTo(snap)
		return nil, err
	}

	block := &Block{
		Header: Header{
			Parent:    parent.Hash(),
			Height:    height,
			Timestamp: timestamp,
			TxRoot:    txRoot(txs),
			StateRoot: c.state.Root(),
			GasUsed:   gasUsed,
		},
		Txs: txs,
	}
	block.seal(proposer)
	c.commitBlock(block, receipts)
	timer.Stop()
	logPool.Info("sealed block",
		telemetry.U64("height", height), telemetry.Int("txs", len(txs)),
		telemetry.U64("gas", gasUsed))
	return block, nil
}

// applyTxs runs the already-stateless-verified transactions, enforcing
// nonces and the block gas limit. It returns the receipts and total gas
// used, leaving the state mutated; the caller owns snapshot/revert.
// Callers must run verifyStateless first — signature and intrinsic
// checks are not repeated here.
//
// Large batches route through the optimistic parallel executor when
// ExecWorkers permits; results are bit-identical to serial execution
// (same receipts, same state root, same error text on failure).
func (c *Chain) applyTxs(txs []*Transaction, height uint64) ([]*Receipt, uint64, error) {
	if workers := c.execWorkers(); workers > 1 && len(txs) >= c.parallelMinBatch() {
		return c.applyTxsParallel(txs, height)
	}
	return c.applyTxsSerial(txs, height)
}

func (c *Chain) applyTxsSerial(txs []*Transaction, height uint64) ([]*Receipt, uint64, error) {
	var gasUsed uint64
	receipts := make([]*Receipt, 0, len(txs))
	for i, tx := range txs {
		if want := c.state.Nonce(tx.From); tx.Nonce != want {
			return nil, 0, fmt.Errorf("ledger: tx %d nonce %d, want %d for %s", i, tx.Nonce, want, tx.From.Short())
		}
		rcpt, err := c.cfg.Applier.Apply(c.state, tx, height)
		if err != nil {
			return nil, 0, fmt.Errorf("ledger: tx %d apply: %w", i, err)
		}
		gasUsed += rcpt.GasUsed
		if gasUsed > c.cfg.BlockGasLimit {
			return nil, 0, fmt.Errorf("%w: %d > %d", ErrBlockGasLimit, gasUsed, c.cfg.BlockGasLimit)
		}
		receipts = append(receipts, rcpt)
	}
	return receipts, gasUsed, nil
}

// ExecuteBatch runs txs through the chain's configured execution path —
// serial or parallel, per ExecWorkers and ParallelMinBatch — against
// the current state, returns the receipts and the post-execution state
// root, then reverts the state to where it was. Stateless verification
// is skipped: the caller vouches for the transactions. This is the
// ablation and benchmark entry point; it isolates execution cost from
// signature checking and never mutates the chain.
func (c *Chain) ExecuteBatch(txs []*Transaction) ([]*Receipt, crypto.Digest, error) {
	snap := c.state.Snapshot()
	receipts, _, err := c.applyTxs(txs, c.Height()+1)
	if err != nil {
		c.state.RevertTo(snap)
		return nil, crypto.Digest{}, err
	}
	root := c.state.Root()
	c.state.RevertTo(snap)
	return receipts, root, nil
}

func (c *Chain) commitBlock(block *Block, receipts []*Receipt) {
	c.state.Commit()
	c.blocks = append(c.blocks, block)
	for _, r := range receipts {
		c.receipts[r.TxHash] = r
		c.events = append(c.events, r.Events...)
		if r.Status == StatusOK {
			mTxApplied.Inc()
		} else {
			mTxFailed.Inc()
		}
	}
	mBlockTxs.Observe(float64(len(block.Txs)))
	mBlockGas.Observe(float64(block.Header.GasUsed))
	mHeight.Set(float64(block.Header.Height))
	if c.onCommit != nil {
		c.onCommit(block)
	}
}

// verifyHeader checks everything about a block that does not require
// executing its transactions: parent linkage, height, timestamp
// monotonicity, proposer rotation, the proposer seal and the tx root.
func (c *Chain) verifyHeader(block *Block) error {
	parent := c.Head()
	if block.Header.Parent != parent.Hash() {
		return ErrBadParent
	}
	if block.Header.Height != parent.Header.Height+1 {
		return ErrBadHeight
	}
	if block.Header.Height > 1 && block.Header.Timestamp <= parent.Header.Timestamp {
		return ErrNonMonotonicTS
	}
	if c.expectedProposer(block.Header.Height) != block.Header.Proposer {
		return ErrBadProposer
	}
	if err := block.verifySeal(); err != nil {
		return err
	}
	if txRoot(block.Txs) != block.Header.TxRoot {
		return ErrBadTxRoot
	}
	return nil
}

// executeAndCheck runs the block's transactions against the live state
// and checks the header's gas and state-root commitments. On any error
// the state is rolled back to where it was; on success the journal is
// left open at snap so the caller chooses between commit (import) and
// revert (audit-only verification).
func (c *Chain) executeAndCheck(block *Block) (receipts []*Receipt, snap int, err error) {
	snap = c.state.Snapshot()
	receipts, gasUsed, err := c.applyTxs(block.Txs, block.Header.Height)
	if err != nil {
		c.state.RevertTo(snap)
		return nil, snap, err
	}
	if gasUsed != block.Header.GasUsed {
		c.state.RevertTo(snap)
		return nil, snap, fmt.Errorf("ledger: gas used %d, header claims %d", gasUsed, block.Header.GasUsed)
	}
	if root := c.state.Root(); root != block.Header.StateRoot {
		c.state.RevertTo(snap)
		return nil, snap, fmt.Errorf("%w: computed %s, header %s", ErrBadStateRoot, root.Short(), block.Header.StateRoot.Short())
	}
	return receipts, snap, nil
}

// VerifyBlock re-validates a sealed block against this chain's tip
// without applying it: header and seal checks, stateless transaction
// verification, then a replay on a snapshot that is reverted before
// returning. Replicas that only audit use this; replicas that follow the
// chain use ImportBlock, which executes the transactions once and keeps
// the result instead of throwing it away.
func (c *Chain) VerifyBlock(block *Block) error {
	if err := c.verifyHeader(block); err != nil {
		return err
	}
	if err := c.verifyStateless(block.Txs); err != nil {
		return err
	}
	receipts, snap, err := c.executeAndCheck(block)
	if err != nil {
		return err
	}
	_ = receipts
	c.state.RevertTo(snap)
	return nil
}

// ImportBlock validates and appends a block produced by another node.
// Transactions execute exactly once: the header, seal and tx root are
// checked first, the stateless phase (signatures, sender binding,
// intrinsic gas) runs across a worker pool, and the block is then
// executed once against a snapshot whose gas total and state root are
// compared with the header before that same snapshot is committed. Any
// mismatch reverts the state and leaves the chain untouched.
func (c *Chain) ImportBlock(block *Block) (err error) {
	telemetry.WithComponent("ledger.import", func() { err = c.importBlock(block) })
	return err
}

func (c *Chain) importBlock(block *Block) error {
	timer := mImportSeconds.Time()
	defer timer.Stop()
	if err := c.verifyHeader(block); err != nil {
		logPool.Error("block import rejected at header check",
			telemetry.U64("height", block.Header.Height), telemetry.Err(err))
		return err
	}
	if err := c.verifyStateless(block.Txs); err != nil {
		logPool.Error("block import rejected at stateless verification",
			telemetry.U64("height", block.Header.Height), telemetry.Err(err))
		return err
	}
	receipts, _, err := c.executeAndCheck(block)
	if err != nil {
		logPool.Error("block import rejected at execution",
			telemetry.U64("height", block.Header.Height), telemetry.Err(err))
		return err
	}
	c.commitBlock(block, receipts)
	logPool.Info("imported block",
		telemetry.U64("height", block.Header.Height), telemetry.Int("txs", len(block.Txs)))
	return nil
}
