package ledger

import (
	"encoding/binary"
	"fmt"
	"testing"

	"pds2/internal/identity"
)

// benchAddr fabricates a deterministic address whose first byte spreads
// across shards. Benchmarks bypass signature verification (applyTxs
// assumes verifyStateless already ran), so no keypairs are needed.
func benchAddr(i uint64) identity.Address {
	var a identity.Address
	a[0] = byte(i)
	binary.BigEndian.PutUint64(a[1:9], i)
	return a
}

// benchStorageApplier models contract execution with per-account
// storage: each transaction reads and rewrites `slots` keys under its
// sender's own address. Work is embarrassingly parallel — the workload
// that isolates scheduler and shard-lock overhead from conflicts.
type benchStorageApplier struct{ slots int }

func (a benchStorageApplier) Apply(st StateAccessor, tx *Transaction, height uint64) (*Receipt, error) {
	rcpt := &Receipt{TxHash: tx.Hash(), GasUsed: tx.IntrinsicGas(), Height: height}
	st.BumpNonce(tx.From)
	if err := st.SubBalance(tx.From, tx.Value); err != nil {
		rcpt.Status = StatusFailed
		rcpt.Err = err.Error()
		return rcpt, nil
	}
	if err := st.AddBalance(tx.To, tx.Value); err != nil {
		rcpt.Status = StatusFailed
		rcpt.Err = err.Error()
		return rcpt, nil
	}
	for k := 0; k < a.slots; k++ {
		key := fmt.Sprintf("s/%d", k)
		var n uint64
		if b := st.GetStorage(tx.From, key); len(b) == 8 {
			n = binary.BigEndian.Uint64(b)
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], n+tx.Value)
		st.SetStorage(tx.From, key, buf[:])
	}
	rcpt.Status = StatusOK
	return rcpt, nil
}

func benchParallelChain(b *testing.B, applier TxApplier, workers, shards, nTxs int) (*Chain, []*Transaction) {
	b.Helper()
	alloc := make(map[identity.Address]uint64, nTxs)
	txs := make([]*Transaction, nTxs)
	for i := 0; i < nTxs; i++ {
		from := benchAddr(uint64(i))
		alloc[from] = 1_000_000
		txs[i] = &Transaction{
			From:     from,
			To:       benchAddr(uint64(nTxs + i)), // unique recipient: conflict-free
			Value:    1,
			Nonce:    0,
			GasLimit: 1_000_000,
		}
	}
	var auth identity.Address
	auth[0] = 0xAA
	c, err := NewChain(ChainConfig{
		Authorities:      []identity.Address{auth},
		Applier:          applier,
		GenesisAlloc:     alloc,
		ExecWorkers:      workers,
		ParallelMinBatch: 1,
		StateShards:      shards,
		BlockGasLimit:    1 << 62,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c, txs
}

// BenchmarkParallelExecute measures block execution throughput across
// the serial baseline, the parallel scheduler over a single state shard
// (lock contention isolated), and the full parallel + 16-shard
// configuration — for plain transfers and for a storage-heavy contract
// workload. Every parallel iteration's state root is checked against
// the serial reference, so a scheduler divergence fails the benchmark
// rather than producing fast wrong answers. The per-op metric is one
// whole block; tx/s is reported explicitly.
func BenchmarkParallelExecute(b *testing.B) {
	workloads := []struct {
		name    string
		applier TxApplier
		nTxs    int
	}{
		{"transfers", TransferApplier{}, 8192},
		{"storage", benchStorageApplier{slots: 8}, 4096},
	}
	configs := []struct {
		name            string
		workers, shards int
	}{
		// Parallel arms pin 8 workers (the roadmap's 8-core target)
		// rather than GOMAXPROCS, so the scheduler runs — and its
		// overhead shows — even on smaller hosts.
		{"serial", 1, 16},
		{"parallel-1shard", 8, 1},
		{"parallel-16shards", 8, 16},
	}
	for _, w := range workloads {
		// Serial reference root for this workload, computed once; the
		// root digest is shard-count independent.
		ref, refTxs := benchParallelChain(b, w.applier, 1, 16, w.nTxs)
		if _, _, err := ref.applyTxsSerial(refTxs, 1); err != nil {
			b.Fatal(err)
		}
		wantRoot := ref.state.Root()

		for _, cfg := range configs {
			b.Run(fmt.Sprintf("%s/%s", w.name, cfg.name), func(b *testing.B) {
				c, txs := benchParallelChain(b, w.applier, cfg.workers, cfg.shards, w.nTxs)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					snap := c.state.Snapshot()
					if _, _, err := c.applyTxs(txs, 1); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if root := c.state.Root(); root != wantRoot {
						b.Fatalf("state root diverged from serial: %s != %s", root.Short(), wantRoot.Short())
					}
					c.state.RevertTo(snap)
					b.StartTimer()
				}
				b.ReportMetric(float64(w.nTxs)*float64(b.N)/b.Elapsed().Seconds(), "tx/s")
			})
		}
	}
}
