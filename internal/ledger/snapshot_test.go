package ledger

import (
	"bytes"
	"errors"
	"testing"
)

func TestSnapshotRoundTripAtNonGenesisHeight(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	for i := uint64(0); i < 6; i++ {
		tx := SignTx(alice, bob.Address(), 10, i, 50_000, nil)
		if _, err := chain.ProposeBlock(authority, i+1, []*Transaction{tx}); err != nil {
			t.Fatal(err)
		}
	}

	snap := chain.ExportSnapshot()
	if snap.Height() != 6 {
		t.Fatalf("snapshot height = %d, want 6", snap.Height())
	}

	// Serialize and parse — the on-disk round trip chainstore performs.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := NewChainFromSnapshot(parsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Height() != chain.Height() {
		t.Fatalf("restored height %d != %d", restored.Height(), chain.Height())
	}
	if restored.Base() != 6 {
		t.Fatalf("restored base = %d, want 6", restored.Base())
	}
	if restored.State().Root() != chain.State().Root() {
		t.Fatal("restored state root diverges")
	}
	if restored.State().Balance(bob.Address()) != 560 {
		t.Fatalf("bob = %d", restored.State().Balance(bob.Address()))
	}

	// The restored chain keeps sealing in lockstep with the original.
	tx := SignTx(alice, bob.Address(), 5, 6, 50_000, nil)
	orig, err := chain.ProposeBlock(authority, 7, []*Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ImportBlock(orig); err != nil {
		t.Fatalf("restored chain rejects block sealed by original: %v", err)
	}
	if restored.State().Root() != chain.State().Root() {
		t.Fatal("chains diverged after sealing past the snapshot")
	}

	// History below the snapshot is pruned; the head is retained.
	if _, err := restored.BlockAt(3); err == nil {
		t.Fatal("pruned block served")
	}
	if b, err := restored.BlockAt(6); err != nil || b.Header.Height != 6 {
		t.Fatalf("snapshot head unavailable: %v", err)
	}

	// A pruned chain cannot produce a from-genesis export.
	if err := restored.Export(&bytes.Buffer{}); err == nil {
		t.Fatal("export of pruned chain succeeded")
	}
}

func TestSnapshotCorruptedChecksumRejected(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	for i := uint64(0); i < 3; i++ {
		tx := SignTx(alice, bob.Address(), 10, i, 50_000, nil)
		if _, err := chain.ProposeBlock(authority, i+1, []*Transaction{tx}); err != nil {
			t.Fatal(err)
		}
	}
	snap := chain.ExportSnapshot()

	// Flip one balance: the restored root no longer matches the head
	// block's sealed StateRoot, so the restore must refuse.
	snap.Balances[bob.Address()]++
	if _, err := NewChainFromSnapshot(snap, nil); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("corrupted snapshot restored: err=%v", err)
	}
}

func TestSnapshotRejectsTamperedHead(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	tx := SignTx(alice, bob.Address(), 10, 0, 50_000, nil)
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx}); err != nil {
		t.Fatal(err)
	}

	// Tampered seal: mutate the header after sealing.
	snap := chain.ExportSnapshot()
	cp := *snap.Head
	cp.Header.Timestamp++
	snap.Head = &cp
	if _, err := NewChainFromSnapshot(snap, nil); err == nil {
		t.Fatal("snapshot with broken head seal restored")
	}
}
