package ledger

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pds2/internal/telemetry"
)

// mStatelessSeconds times the stateless verification phase of block
// proposal/import — the embarrassingly-parallel part of the pipeline.
var mStatelessSeconds = telemetry.H("ledger.block.stateless_seconds", telemetry.TimeBuckets)

// parallelVerifyThreshold is the batch size below which fanning out to a
// worker pool costs more than it saves: an ed25519 verification is tens
// of microseconds, so a handful of transactions verify faster inline.
const parallelVerifyThreshold = 8

// verifyStateless runs tx.VerifyBasic over the batch — signature, sender
// binding, size and intrinsic-gas checks, none of which touch state.
// Large batches are spread across a worker pool sized by
// cfg.StatelessWorkers (default GOMAXPROCS); small batches and
// single-worker configurations take the sequential path. The error, if
// any, is deterministic regardless of scheduling: the failure with the
// lowest transaction index wins.
func (c *Chain) verifyStateless(txs []*Transaction) error {
	timer := mStatelessSeconds.Time()
	defer timer.Stop()
	workers := c.cfg.StatelessWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(txs) < parallelVerifyThreshold {
		for i, tx := range txs {
			if err := tx.VerifyBasic(); err != nil {
				return fmt.Errorf("ledger: tx %d invalid: %w", i, err)
			}
		}
		return nil
	}
	if workers > len(txs) {
		workers = len(txs)
	}

	// Every transaction is verified even after a failure: a valid block
	// (the common case) needs the full sweep anyway, and finishing the
	// sweep is what makes the lowest-index-wins rule exact rather than
	// dependent on which worker happened to fail first.
	var (
		next atomic.Int64 // work distribution cursor
		errs = make([]error, len(txs))
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(txs) {
					return
				}
				if err := txs[i].VerifyBasic(); err != nil {
					errs[i] = err
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ledger: tx %d invalid: %w", i, err)
		}
	}
	return nil
}
