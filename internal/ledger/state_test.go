package ledger

import (
	"bytes"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

func testAddr(seed uint64) identity.Address {
	return identity.New("t", crypto.NewDRBGFromUint64(seed, "ledger-test")).Address()
}

func TestStateBalanceArithmetic(t *testing.T) {
	st := NewState()
	a := testAddr(1)
	if err := st.AddBalance(a, 100); err != nil {
		t.Fatal(err)
	}
	if st.Balance(a) != 100 {
		t.Fatalf("balance = %d", st.Balance(a))
	}
	if err := st.SubBalance(a, 40); err != nil {
		t.Fatal(err)
	}
	if st.Balance(a) != 60 {
		t.Fatalf("balance = %d", st.Balance(a))
	}
	if err := st.SubBalance(a, 61); err == nil {
		t.Fatal("overdraft allowed")
	}
}

func TestStateBalanceOverflow(t *testing.T) {
	st := NewState()
	a := testAddr(1)
	st.SetBalance(a, ^uint64(0))
	if err := st.AddBalance(a, 1); err == nil {
		t.Fatal("overflow not detected")
	}
}

func TestStateNonce(t *testing.T) {
	st := NewState()
	a := testAddr(1)
	if st.Nonce(a) != 0 {
		t.Fatal("fresh nonce not zero")
	}
	st.BumpNonce(a)
	st.BumpNonce(a)
	if st.Nonce(a) != 2 {
		t.Fatalf("nonce = %d", st.Nonce(a))
	}
}

func TestStateStorageRoundTrip(t *testing.T) {
	st := NewState()
	c := testAddr(9)
	st.SetStorage(c, "key", []byte("value"))
	if got := st.GetStorage(c, "key"); !bytes.Equal(got, []byte("value")) {
		t.Fatalf("got %q", got)
	}
	if st.GetStorage(c, "missing") != nil {
		t.Fatal("missing key returned non-nil")
	}
	// Empty value deletes.
	st.SetStorage(c, "key", nil)
	if st.GetStorage(c, "key") != nil {
		t.Fatal("deleted key still present")
	}
}

func TestStateStorageReturnsCopy(t *testing.T) {
	st := NewState()
	c := testAddr(9)
	st.SetStorage(c, "k", []byte("abc"))
	got := st.GetStorage(c, "k")
	got[0] = 'X'
	if !bytes.Equal(st.GetStorage(c, "k"), []byte("abc")) {
		t.Fatal("caller mutation leaked into state")
	}
}

func TestStateStorageKeysSortedWithPrefix(t *testing.T) {
	st := NewState()
	c := testAddr(9)
	st.SetStorage(c, "w/2", []byte("b"))
	st.SetStorage(c, "w/1", []byte("a"))
	st.SetStorage(c, "x/1", []byte("c"))
	keys := st.StorageKeys(c, "w/")
	if len(keys) != 2 || keys[0] != "w/1" || keys[1] != "w/2" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestStateSnapshotRevert(t *testing.T) {
	st := NewState()
	a, c := testAddr(1), testAddr(2)
	st.AddBalance(a, 100)
	st.SetStorage(c, "k", []byte("v0"))
	st.Commit()

	snap := st.Snapshot()
	st.SubBalance(a, 30)
	st.BumpNonce(a)
	st.SetStorage(c, "k", []byte("v1"))
	st.SetStorage(c, "new", []byte("n"))
	st.RevertTo(snap)

	if st.Balance(a) != 100 {
		t.Fatalf("balance after revert = %d", st.Balance(a))
	}
	if st.Nonce(a) != 0 {
		t.Fatalf("nonce after revert = %d", st.Nonce(a))
	}
	if !bytes.Equal(st.GetStorage(c, "k"), []byte("v0")) {
		t.Fatal("storage not reverted")
	}
	if st.GetStorage(c, "new") != nil {
		t.Fatal("new key survived revert")
	}
}

func TestStateNestedSnapshots(t *testing.T) {
	st := NewState()
	a := testAddr(1)
	st.AddBalance(a, 10)
	outer := st.Snapshot()
	st.AddBalance(a, 5)
	inner := st.Snapshot()
	st.AddBalance(a, 3)
	st.RevertTo(inner)
	if st.Balance(a) != 15 {
		t.Fatalf("after inner revert: %d", st.Balance(a))
	}
	st.RevertTo(outer)
	if st.Balance(a) != 10 {
		t.Fatalf("after outer revert: %d", st.Balance(a))
	}
}

func TestStateRevertDeleteRestores(t *testing.T) {
	st := NewState()
	c := testAddr(2)
	st.SetStorage(c, "k", []byte("keep"))
	st.Commit()
	snap := st.Snapshot()
	st.SetStorage(c, "k", nil) // delete
	st.RevertTo(snap)
	if !bytes.Equal(st.GetStorage(c, "k"), []byte("keep")) {
		t.Fatal("delete not reverted")
	}
}

func TestStateRootDeterministicAndSensitive(t *testing.T) {
	build := func(extra bool) crypto.Digest {
		st := NewState()
		a, b, c := testAddr(1), testAddr(2), testAddr(3)
		st.AddBalance(a, 5)
		st.AddBalance(b, 7)
		st.BumpNonce(a)
		st.SetStorage(c, "k1", []byte("v1"))
		if extra {
			st.SetStorage(c, "k2", []byte("v2"))
		}
		return st.Root()
	}
	if build(false) != build(false) {
		t.Fatal("state root not deterministic")
	}
	if build(false) == build(true) {
		t.Fatal("state root insensitive to storage change")
	}
}

func TestStateRootIgnoresZeroBalances(t *testing.T) {
	st1 := NewState()
	st2 := NewState()
	a := testAddr(1)
	st2.SetBalance(a, 0) // explicit zero should not change the root
	if st1.Root() != st2.Root() {
		t.Fatal("explicit zero balance changed the root")
	}
}

func TestStateRevertInvalidSnapshotPanics(t *testing.T) {
	st := NewState()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid snapshot did not panic")
		}
	}()
	st.RevertTo(5)
}
