package ledger

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestExportReplayRoundTrip(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	for i := uint64(0); i < 5; i++ {
		tx := SignTx(alice, bob.Address(), 10, i, 50_000, nil)
		if _, err := chain.ProposeBlock(authority, i+1, []*Transaction{tx}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := chain.Export(&buf); err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Height() != chain.Height() {
		t.Fatalf("height %d != %d", replayed.Height(), chain.Height())
	}
	if replayed.State().Root() != chain.State().Root() {
		t.Fatal("replayed state diverges")
	}
	if replayed.State().Balance(bob.Address()) != 550 {
		t.Fatalf("bob = %d", replayed.State().Balance(bob.Address()))
	}
	// Receipts were regenerated during replay.
	tx := chain.Head().Txs[0]
	if _, ok := replayed.Receipt(tx.Hash()); !ok {
		t.Fatal("replay lost receipts")
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	chain, authority, alice, bob := testChain(t)
	tx := SignTx(alice, bob.Address(), 10, 0, 50_000, nil)
	if _, err := chain.ProposeBlock(authority, 1, []*Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := chain.Export(&buf); err != nil {
		t.Fatal(err)
	}

	// Tamper with the exported JSON: inflate the transferred value.
	var exp ChainExport
	if err := json.Unmarshal(buf.Bytes(), &exp); err != nil {
		t.Fatal(err)
	}
	exp.Blocks[0].Txs[0].Value = 999_999
	tampered, _ := json.Marshal(exp)
	if _, err := Replay(bytes.NewReader(tampered), nil); err == nil {
		t.Fatal("tampered export replayed cleanly")
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(bytes.NewReader([]byte("not json")), nil); err == nil {
		t.Fatal("garbage accepted")
	}
}
