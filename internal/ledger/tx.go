// Package ledger implements the blockchain substrate of the PDS²
// governance layer (§III-A): signed transactions, a journaled account
// state, a mempool, proof-of-authority consensus and a validated chain
// with receipts and event logs.
//
// The paper selects Ethereum for governance; this package reproduces the
// Ethereum programming model that PDS² actually relies on — ordered,
// replayable, gas-metered state transitions; addresses; token balances;
// contract storage; and event logs for auditability — on top of a
// proof-of-authority validator set, which is the standard choice for
// permissioned research deployments.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// Gas costs. The absolute values follow Ethereum's order of magnitude so
// that gas-per-operation results are comparable with the public chain.
const (
	TxBaseGas      uint64 = 21_000 // flat cost of any transaction
	TxDataGasPerB  uint64 = 16     // per byte of call data
	MaxTxDataBytes        = 1 << 20
)

// Transaction is a signed state transition request. To == ZeroAddress
// with non-empty Data denotes contract creation, mirroring Ethereum.
type Transaction struct {
	From     identity.Address `json:"from"`
	To       identity.Address `json:"to"`
	Value    uint64           `json:"value"`
	Nonce    uint64           `json:"nonce"`
	GasLimit uint64           `json:"gas_limit"`
	Data     []byte           `json:"data"`
	Pub      []byte           `json:"pub"`
	Sig      []byte           `json:"sig"`
}

// signingBytes returns the canonical byte encoding covered by the sender
// signature. Every field except Pub and Sig is included.
func (tx *Transaction) signingBytes() []byte {
	buf := make([]byte, 0, 2*identity.AddressSize+3*8+len(tx.Data)+16)
	buf = append(buf, "pds2/tx/v1"...)
	buf = append(buf, tx.From[:]...)
	buf = append(buf, tx.To[:]...)
	buf = binary.BigEndian.AppendUint64(buf, tx.Value)
	buf = binary.BigEndian.AppendUint64(buf, tx.Nonce)
	buf = binary.BigEndian.AppendUint64(buf, tx.GasLimit)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(tx.Data)))
	buf = append(buf, tx.Data...)
	return buf
}

// Hash returns the transaction's unique digest, covering the signature so
// that two identically-signed transactions have the same hash.
func (tx *Transaction) Hash() crypto.Digest {
	return crypto.HashConcat([]byte("pds2/txhash"), tx.signingBytes(), tx.Sig)
}

// SignTx builds and signs a transaction from the given identity.
func SignTx(from *identity.Identity, to identity.Address, value, nonce, gasLimit uint64, data []byte) *Transaction {
	tx := &Transaction{
		From:     from.Address(),
		To:       to,
		Value:    value,
		Nonce:    nonce,
		GasLimit: gasLimit,
		Data:     append([]byte(nil), data...),
		Pub:      from.PublicKey(),
	}
	tx.Sig = from.Sign(tx.signingBytes())
	return tx
}

// Verification errors.
var (
	ErrTxSignature = errors.New("ledger: invalid transaction signature")
	ErrTxSender    = errors.New("ledger: public key does not match sender address")
	ErrTxTooLarge  = errors.New("ledger: transaction data too large")
	ErrTxGasLimit  = errors.New("ledger: gas limit below intrinsic gas")
)

// IntrinsicGas returns the gas charged before any execution happens.
func (tx *Transaction) IntrinsicGas() uint64 {
	return TxBaseGas + TxDataGasPerB*uint64(len(tx.Data))
}

// VerifyBasic performs stateless validity checks: size, signature, sender
// address binding and intrinsic gas affordability.
func (tx *Transaction) VerifyBasic() error {
	if len(tx.Data) > MaxTxDataBytes {
		return fmt.Errorf("%w: %d bytes", ErrTxTooLarge, len(tx.Data))
	}
	if identity.AddressFromPub(tx.Pub) != tx.From {
		return ErrTxSender
	}
	if !identity.Verify(tx.Pub, tx.signingBytes(), tx.Sig) {
		return ErrTxSignature
	}
	if tx.GasLimit < tx.IntrinsicGas() {
		return fmt.Errorf("%w: limit %d < intrinsic %d", ErrTxGasLimit, tx.GasLimit, tx.IntrinsicGas())
	}
	return nil
}

// IsContractCreation reports whether this transaction deploys a contract.
func (tx *Transaction) IsContractCreation() bool {
	return tx.To.IsZero() && len(tx.Data) > 0
}

// Event is an audit-log entry emitted by a contract during execution,
// the ledger-side realization of §II-E's "all actions in the platform
// should be automatically audited by the governance layer".
type Event struct {
	Contract identity.Address `json:"contract"`
	Topic    string           `json:"topic"`
	Data     []byte           `json:"data"`
}

// ReceiptStatus indicates whether a transaction's execution succeeded.
type ReceiptStatus uint8

// Receipt statuses.
const (
	StatusFailed ReceiptStatus = iota
	StatusOK
)

// Receipt records the outcome of executing one transaction.
type Receipt struct {
	TxHash  crypto.Digest `json:"tx_hash"`
	Status  ReceiptStatus `json:"status"`
	GasUsed uint64        `json:"gas_used"`
	Return  []byte        `json:"return,omitempty"`
	Err     string        `json:"err,omitempty"`
	Events  []Event       `json:"events,omitempty"`
	Height  uint64        `json:"height"`
}

// Succeeded reports whether the transaction executed without reverting.
func (r *Receipt) Succeeded() bool { return r.Status == StatusOK }
