package ledger

import (
	"bytes"
	"encoding/json"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// fuzzChainExport builds a small valid chain and returns its export
// bytes — the seed corpus for the block-import fuzz target.
func fuzzChainExport(t testing.TB) []byte {
	rng := crypto.NewDRBGFromUint64(7, "ledger-fuzz")
	auth := identity.New("auth", rng.Fork("auth"))
	alice := identity.New("alice", rng.Fork("alice"))
	bob := identity.New("bob", rng.Fork("bob"))
	chain, err := NewChain(ChainConfig{
		Authorities: []identity.Address{auth.Address()},
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 10_000,
			bob.Address():   5_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := []*Transaction{
		SignTx(alice, bob.Address(), 100, 0, TxBaseGas, nil),
		SignTx(bob, alice.Address(), 50, 0, TxBaseGas, nil),
	}
	if _, err := chain.ProposeBlock(auth, 1, txs); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.ProposeBlock(auth, 2, []*Transaction{
		SignTx(alice, bob.Address(), 7, 1, TxBaseGas, nil),
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := chain.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTxDecode feeds arbitrary JSON to the transaction decoder and runs
// the full stateless pipeline over whatever decodes: Hash, IntrinsicGas
// and VerifyBasic must never panic, and a transaction that round-trips
// through JSON must keep its hash.
func FuzzTxDecode(f *testing.F) {
	rng := crypto.NewDRBGFromUint64(3, "tx-fuzz")
	from := identity.New("from", rng.Fork("from"))
	to := identity.New("to", rng.Fork("to"))
	valid := SignTx(from, to.Address(), 42, 0, TxBaseGas+100, []byte("payload"))
	seed, _ := json.Marshal(valid)
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"from":"xx","nonce":18446744073709551615}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tx Transaction
		if err := json.Unmarshal(data, &tx); err != nil {
			return
		}
		h1 := tx.Hash()
		_ = tx.IntrinsicGas()
		_ = tx.VerifyBasic() // must not panic, any verdict is fine
		round, err := json.Marshal(&tx)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var tx2 Transaction
		if err := json.Unmarshal(round, &tx2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tx2.Hash() != h1 {
			t.Fatalf("hash changed across JSON round-trip: %s != %s", tx2.Hash().Short(), h1.Short())
		}
	})
}

// FuzzBlockImport mutates serialized chain exports and replays them
// through the full validation pipeline. Replay must never panic, and
// any export it accepts must leave a chain whose head commits to the
// recomputed state root — i.e. the importer can be fed attacker bytes
// and still only ever admits internally consistent chains.
func FuzzBlockImport(f *testing.F) {
	f.Add(fuzzChainExport(f))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"authorities":[],"blocks":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		chain, err := Replay(bytes.NewReader(data), nil)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		head := chain.Head()
		if root := chain.State().Root(); root != head.Header.StateRoot {
			t.Fatalf("accepted chain with inconsistent root: %s != header %s",
				root.Short(), head.Header.StateRoot.Short())
		}
		if chain.State().JournalLen() != 0 {
			t.Fatalf("accepted chain left %d uncommitted journal entries", chain.State().JournalLen())
		}
	})
}
