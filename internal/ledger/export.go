package ledger

import (
	"encoding/json"
	"fmt"
	"io"

	"pds2/internal/identity"
)

// Export/replay: §II-E requires that "all actions in the platform should
// be automatically audited … in a trustless decentralized fashion". The
// chain is that audit log; this file lets any third party export it,
// carry it elsewhere, and re-validate every block and state transition
// from genesis without trusting the exporter.

// ChainExport is the portable serialized form of a chain.
type ChainExport struct {
	Authorities   []identity.Address          `json:"authorities"`
	BlockGasLimit uint64                      `json:"block_gas_limit"`
	GenesisAlloc  map[identity.Address]uint64 `json:"genesis_alloc,omitempty"`
	Blocks        []*Block                    `json:"blocks"` // height 1..head
}

// Export serializes the chain (excluding genesis, which is derived from
// the config) as indented JSON. A chain restored from a snapshot has
// pruned its history below the snapshot height and cannot produce a
// from-genesis export.
func (c *Chain) Export(w io.Writer) error {
	if c.base != 0 {
		return fmt.Errorf("ledger: cannot export chain with pruned history (base %d)", c.base)
	}
	exp := ChainExport{
		Authorities:   c.cfg.Authorities,
		BlockGasLimit: c.cfg.BlockGasLimit,
		GenesisAlloc:  c.cfg.GenesisAlloc,
		Blocks:        c.blocks[1:],
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(exp)
}

// ExportConfig returns the chain's replayable configuration as a
// block-less export — the genesis record a durable store persists so a
// later open can rebuild the genesis block before replaying the log.
func (c *Chain) ExportConfig() ChainExport {
	return ChainExport{
		Authorities:   append([]identity.Address(nil), c.cfg.Authorities...),
		BlockGasLimit: c.cfg.BlockGasLimit,
		GenesisAlloc:  c.cfg.GenesisAlloc,
	}
}

// Replay reconstructs and fully re-validates a chain from an export: it
// rebuilds genesis from the embedded config and imports every block
// through the normal validation path (seals, proposer rotation, tx
// roots, gas accounting and state roots). applier must provide the same
// transaction semantics the original chain ran (e.g. the same contract
// runtime); a nil applier selects plain transfers.
func Replay(r io.Reader, applier TxApplier) (*Chain, error) {
	var exp ChainExport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&exp); err != nil {
		return nil, fmt.Errorf("ledger: decode export: %w", err)
	}
	chain, err := NewChain(ChainConfig{
		Authorities:   exp.Authorities,
		BlockGasLimit: exp.BlockGasLimit,
		GenesisAlloc:  exp.GenesisAlloc,
		Applier:       applier,
	})
	if err != nil {
		return nil, err
	}
	for i, b := range exp.Blocks {
		if err := chain.ImportBlock(b); err != nil {
			return nil, fmt.Errorf("ledger: replay block %d: %w", i+1, err)
		}
	}
	return chain, nil
}
