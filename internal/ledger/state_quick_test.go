package ledger

import (
	"bytes"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// TestStateJournalAgainstReferenceModel drives the journaled state with
// random operation sequences interleaved with snapshots and reverts, and
// checks it against a plain map-based reference model at every step.
// This is the property that makes contract revert semantics sound.
func TestStateJournalAgainstReferenceModel(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(1, "state-model")
	addrs := make([]identity.Address, 4)
	for i := range addrs {
		addrs[i] = identity.New("a", rng.Fork("addr")).Address()
	}
	keys := []string{"k1", "k2", "w/1"}

	type model struct {
		bal     map[identity.Address]uint64
		nonce   map[identity.Address]uint64
		storage map[identity.Address]map[string][]byte
	}
	clone := func(m model) model {
		out := model{
			bal:     map[identity.Address]uint64{},
			nonce:   map[identity.Address]uint64{},
			storage: map[identity.Address]map[string][]byte{},
		}
		for k, v := range m.bal {
			out.bal[k] = v
		}
		for k, v := range m.nonce {
			out.nonce[k] = v
		}
		for a, slot := range m.storage {
			out.storage[a] = map[string][]byte{}
			for k, v := range slot {
				out.storage[a][k] = append([]byte(nil), v...)
			}
		}
		return out
	}
	check := func(st *State, m model, step int) {
		for _, a := range addrs {
			if st.Balance(a) != m.bal[a] {
				t.Fatalf("step %d: balance[%s] = %d, want %d", step, a.Short(), st.Balance(a), m.bal[a])
			}
			if st.Nonce(a) != m.nonce[a] {
				t.Fatalf("step %d: nonce[%s] = %d, want %d", step, a.Short(), st.Nonce(a), m.nonce[a])
			}
			for _, k := range keys {
				got := st.GetStorage(a, k)
				want := m.storage[a][k]
				if !bytes.Equal(got, want) {
					t.Fatalf("step %d: storage[%s][%s] = %q, want %q", step, a.Short(), k, got, want)
				}
			}
		}
	}

	st := NewState()
	cur := model{
		bal:     map[identity.Address]uint64{},
		nonce:   map[identity.Address]uint64{},
		storage: map[identity.Address]map[string][]byte{},
	}
	type snap struct {
		journal int
		model   model
	}
	var snaps []snap

	for step := 0; step < 3000; step++ {
		a := addrs[rng.Intn(len(addrs))]
		switch rng.Intn(7) {
		case 0:
			v := rng.Uint64() % 1000
			st.SetBalance(a, v)
			cur.bal[a] = v
		case 1:
			st.BumpNonce(a)
			cur.nonce[a]++
		case 2:
			k := keys[rng.Intn(len(keys))]
			v := rng.Bytes(1 + rng.Intn(8))
			st.SetStorage(a, k, v)
			if cur.storage[a] == nil {
				cur.storage[a] = map[string][]byte{}
			}
			cur.storage[a][k] = v
		case 3:
			k := keys[rng.Intn(len(keys))]
			st.SetStorage(a, k, nil) // delete
			delete(cur.storage[a], k)
		case 4:
			snaps = append(snaps, snap{journal: st.Snapshot(), model: clone(cur)})
		case 5:
			if len(snaps) > 0 {
				i := rng.Intn(len(snaps))
				st.RevertTo(snaps[i].journal)
				cur = clone(snaps[i].model)
				snaps = snaps[:i] // deeper snapshots are invalidated
			}
		case 6:
			if rng.Intn(4) == 0 { // commit occasionally
				st.Commit()
				snaps = snaps[:0]
			}
		}
		if step%50 == 0 {
			check(st, cur, step)
		}
	}
	check(st, cur, 3000)
}
