package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// State snapshots: the chain export of export.go replays every block
// from genesis, which is the right trust model for a third-party audit
// but the wrong startup cost for a node restarting mid-run or a replica
// fast-syncing at height one million. A StateSnapshot captures the full
// world state at a block boundary, checksummed by the head block's
// sealed StateRoot, so a chain can resume from "snapshot + tail-of-log"
// (internal/chainstore) instead of re-executing history.

// StateSnapshot is the portable point-in-time form of a chain at a
// block boundary. It reuses the ledger export encoding for the chain
// configuration (authorities, gas limit, genesis allocations) and adds
// the head block plus the three world-state maps. The head block's
// sealed StateRoot is the snapshot's integrity checksum:
// NewChainFromSnapshot recomputes the root of the restored state and
// rejects the snapshot on any mismatch, so a flipped balance bit or a
// truncated storage value cannot produce a silently divergent replica.
type StateSnapshot struct {
	Authorities   []identity.Address                     `json:"authorities"`
	BlockGasLimit uint64                                 `json:"block_gas_limit"`
	GenesisAlloc  map[identity.Address]uint64            `json:"genesis_alloc,omitempty"`
	Head          *Block                                 `json:"head"`
	Balances      map[identity.Address]uint64            `json:"balances,omitempty"`
	Nonces        map[identity.Address]uint64            `json:"nonces,omitempty"`
	Storage       map[identity.Address]map[string][]byte `json:"storage,omitempty"`
}

// Height returns the block height the snapshot was taken at.
func (s *StateSnapshot) Height() uint64 {
	if s.Head == nil {
		return 0
	}
	return s.Head.Header.Height
}

// ErrSnapshotChecksum reports a snapshot whose restored state does not
// reproduce the head block's sealed state root — corruption, tampering,
// or a snapshot produced by incompatible state semantics.
var ErrSnapshotChecksum = errors.New("ledger: snapshot state does not match head state root")

// ExportSnapshot captures the chain's current state as a snapshot
// anchored at the head block. The maps are deep copies: callers may
// serialize the snapshot while the chain keeps sealing.
func (c *Chain) ExportSnapshot() *StateSnapshot {
	st := c.state
	snap := &StateSnapshot{
		Authorities:   append([]identity.Address(nil), c.cfg.Authorities...),
		BlockGasLimit: c.cfg.BlockGasLimit,
		Head:          c.Head(),
		Balances:      make(map[identity.Address]uint64),
		Nonces:        make(map[identity.Address]uint64),
		Storage:       make(map[identity.Address]map[string][]byte),
	}
	if len(c.cfg.GenesisAlloc) > 0 {
		snap.GenesisAlloc = make(map[identity.Address]uint64, len(c.cfg.GenesisAlloc))
		for a, v := range c.cfg.GenesisAlloc {
			snap.GenesisAlloc[a] = v
		}
	}
	st.forEachBalance(func(a identity.Address, v uint64) {
		if v != 0 {
			snap.Balances[a] = v
		}
	})
	st.forEachNonce(func(a identity.Address, v uint64) {
		if v != 0 {
			snap.Nonces[a] = v
		}
	})
	st.forEachStorage(func(a identity.Address, slot map[string][]byte) {
		if len(slot) == 0 {
			return
		}
		cp := make(map[string][]byte, len(slot))
		for k, v := range slot {
			cp[k] = append([]byte(nil), v...)
		}
		snap.Storage[a] = cp
	})
	return snap
}

// WriteSnapshot serializes a snapshot as JSON.
func WriteSnapshot(w io.Writer, snap *StateSnapshot) error {
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// ReadSnapshot parses a serialized snapshot. Integrity is checked by
// NewChainFromSnapshot, not here.
func ReadSnapshot(r io.Reader) (*StateSnapshot, error) {
	var snap StateSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ledger: decode snapshot: %w", err)
	}
	if snap.Head == nil {
		return nil, errors.New("ledger: snapshot has no head block")
	}
	return &snap, nil
}

// NewChainFromSnapshot restores a chain from a snapshot: the world
// state is rebuilt from the snapshot maps, its recomputed root is
// checked against the head block's sealed StateRoot (the checksum), and
// the head block's proposer seal is re-verified against the embedded
// authority set. The returned chain's base is the snapshot height:
// blocks below it are pruned (BlockAt reports them unavailable) but the
// chain imports, seals and verifies new blocks exactly as a
// genesis-grown chain does. applier must provide the same transaction
// semantics the original chain ran; nil selects plain transfers.
func NewChainFromSnapshot(snap *StateSnapshot, applier TxApplier) (*Chain, error) {
	if snap == nil || snap.Head == nil {
		return nil, errors.New("ledger: nil snapshot")
	}
	if len(snap.Authorities) == 0 {
		return nil, errors.New("ledger: snapshot carries no authority set")
	}
	if applier == nil {
		applier = TransferApplier{}
	}
	gasLimit := snap.BlockGasLimit
	if gasLimit == 0 {
		gasLimit = DefaultBlockGasLimit
	}
	head := snap.Head
	if head.Header.Height > 0 {
		// Genesis blocks are unsealed (derived, not proposed); every
		// other head must carry a valid seal by the rotation's proposer.
		if err := head.verifySeal(); err != nil {
			return nil, fmt.Errorf("ledger: snapshot head: %w", err)
		}
		expect := snap.Authorities[(head.Header.Height-1)%uint64(len(snap.Authorities))]
		if head.Header.Proposer != expect {
			return nil, fmt.Errorf("%w: snapshot head sealed by %s, rotation expects %s",
				ErrBadProposer, head.Header.Proposer.Short(), expect.Short())
		}
		if txRoot(head.Txs) != head.Header.TxRoot {
			return nil, fmt.Errorf("ledger: snapshot head: %w", ErrBadTxRoot)
		}
	}
	st := NewState()
	for a, v := range snap.Balances {
		st.SetBalance(a, v)
	}
	for a, v := range snap.Nonces {
		st.SetNonce(a, v)
	}
	for a, slot := range snap.Storage {
		for k, v := range slot {
			st.SetStorage(a, k, v)
		}
	}
	st.Commit()
	if root := st.Root(); root != head.Header.StateRoot {
		return nil, fmt.Errorf("%w: restored %s, head claims %s",
			ErrSnapshotChecksum, root.Short(), head.Header.StateRoot.Short())
	}
	return &Chain{
		cfg: ChainConfig{
			Authorities:   append([]identity.Address(nil), snap.Authorities...),
			BlockGasLimit: gasLimit,
			Applier:       applier,
			GenesisAlloc:  snap.GenesisAlloc,
		},
		blocks:   []*Block{head},
		base:     head.Header.Height,
		state:    st,
		receipts: make(map[crypto.Digest]*Receipt),
	}, nil
}
