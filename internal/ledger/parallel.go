package ledger

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

// Parallel execution instrumentation: blocks and transactions routed
// through the optimistic scheduler, validation conflicts, and serial
// re-executions (conflicts plus speculation failures); plus the
// scheduler-shape histograms — lane depth (same-sender chain length)
// and commit stall (how long the in-order committer waits for a
// speculation that isn't done yet) — that turn "where does the parallel
// overhead go" into a /metrics/history query.
var (
	mParBlocks      = telemetry.C("ledger.parallel.blocks_total")
	mParTxs         = telemetry.C("ledger.parallel.txs_total")
	mParConflicts   = telemetry.C("ledger.parallel.conflicts_total")
	mParReexec      = telemetry.C("ledger.parallel.reexec_total")
	mParLaneDepth   = telemetry.H("ledger.parallel.lane_depth", telemetry.CountBuckets)
	mParCommitStall = telemetry.H("ledger.parallel.commit_stall_seconds", telemetry.TimeBuckets)
)

// parWorkerComponent labels worker goroutines in CPU and goroutine
// profiles, so a profile of a busy sealer attributes speculation cost
// separately from the commit loop (componentCommit) and the rest of the
// import path.
const (
	parWorkerComponent = "ledger.parallel.worker"
	parCommitComponent = "ledger.parallel.commit"
)

// conflictShardCounter attributes a validation conflict to the state
// shard of the conflicted sender. Counters are looked up per conflict —
// conflicts are rare, so the registry lookup is noise — and named with
// a stable two-digit index so the family sorts in dumps.
func conflictShardCounter(shard int) *telemetry.Counter {
	return telemetry.C(fmt.Sprintf("ledger.parallel.conflicts_shard_%02d_total", shard))
}

// defaultParallelMinBatch is the block size below which parallel
// execution is not worth the scheduling overhead and blocks execute
// serially. Tests set ChainConfig.ParallelMinBatch to 1 to force the
// parallel path on tiny blocks.
const defaultParallelMinBatch = 32

// execWorkers resolves the configured execution worker count: zero
// selects GOMAXPROCS, one forces serial execution.
func (c *Chain) execWorkers() int {
	if c.cfg.ExecWorkers > 0 {
		return c.cfg.ExecWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Chain) parallelMinBatch() int {
	if c.cfg.ParallelMinBatch > 0 {
		return c.cfg.ParallelMinBatch
	}
	return defaultParallelMinBatch
}

// specResult is one transaction's speculative outcome. ok is false when
// speculation hit an error or panicked (possible under torn reads of
// in-flight commits); such transactions always re-execute serially so
// their receipts and error text match serial execution exactly.
type specResult struct {
	view *txView
	rcpt *Receipt
	ok   bool
}

// applyTxsParallel executes a block with optimistic concurrency,
// producing receipts, gas usage and final state bit-identical to
// applyTxsSerial:
//
//  1. Workers claim transaction indices from an atomic cursor and
//     speculate each against a txView layered over the live state.
//     Same-sender chains are "lanes": a transaction with an earlier
//     same-sender predecessor waits for it and additionally reads the
//     lane's accumulated writes, so chained nonces don't conflict.
//  2. The calling goroutine commits in transaction-index order: it
//     validates each speculation's read set against the committed
//     state (which now includes all earlier transactions) and either
//     adopts the write set and receipt verbatim, or — on conflict,
//     speculation error or panic — re-executes the transaction
//     serially against the committed state.
//
// Validation is sound because execution is a deterministic function of
// the values read: if every recorded read still holds at commit time,
// the speculative outcome is what serial execution would have produced
// at that index. All commits flow through the state's journaled
// setters, so the caller's block-level snapshot/revert still works.
//
// On abort the scheduler stops the workers and waits for them to exit
// before returning, so the caller may revert the state immediately.
func (c *Chain) applyTxsParallel(txs []*Transaction, height uint64) ([]*Receipt, uint64, error) {
	n := len(txs)
	workers := c.execWorkers()
	if workers > n {
		workers = n
	}
	mParBlocks.Inc()
	mParTxs.Add(uint64(n))

	// Dependency plan: deps[i] is the index of the previous transaction
	// from the same sender (-1 if none); senders with multiple
	// transactions share a lane accumulating their write sets.
	deps := make([]int, n)
	laneOf := make([]*laneState, n)
	senderTxs := make(map[identity.Address]int, n)
	for _, tx := range txs {
		senderTxs[tx.From]++
	}
	last := make(map[identity.Address]int, len(senderTxs))
	var lanes map[identity.Address]*laneState
	for i, tx := range txs {
		if j, seen := last[tx.From]; seen {
			deps[i] = j
		} else {
			deps[i] = -1
		}
		last[tx.From] = i
		if senderTxs[tx.From] > 1 {
			if lanes == nil {
				lanes = make(map[identity.Address]*laneState)
			}
			ln := lanes[tx.From]
			if ln == nil {
				ln = newLaneState()
				lanes[tx.From] = ln
			}
			laneOf[i] = ln
		}
	}
	// One lane-depth observation per sender: depth 1 for independent
	// transactions, the chain length for multi-tx senders. The deepest
	// lane is the block's critical path — a block dominated by one long
	// same-sender chain cannot parallelize no matter the worker count,
	// and that shows up here as a high lane-depth max.
	for _, depth := range senderTxs {
		mParLaneDepth.Observe(float64(depth))
	}

	results := make([]specResult, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var cursor atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// The component label costs one goroutine-local store per worker
		// (not per tx) and makes speculation cost attributable in CPU
		// profiles of a busy sealer.
		go telemetry.WithComponent(parWorkerComponent, func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if stop.Load() {
					close(done[i])
					continue
				}
				// Workers claim indices in cursor order, so deps[i] was
				// claimed before i and its channel will be closed even
				// under stop — this wait cannot deadlock.
				if d := deps[i]; d >= 0 {
					<-done[d]
				}
				if stop.Load() {
					close(done[i])
					continue
				}
				view := newTxView(c.state, laneOf[i])
				rcpt, ok := c.speculate(view, txs[i], height)
				results[i] = specResult{view: view, rcpt: rcpt, ok: ok}
				if laneOf[i] != nil {
					laneOf[i].absorb(view)
				}
				close(done[i])
			}
		})
	}

	abort := func(err error) ([]*Receipt, uint64, error) {
		stop.Store(true)
		cursor.Store(int64(n))
		wg.Wait()
		return nil, 0, err
	}

	var gasUsed uint64
	var commitErr error
	receipts := make([]*Receipt, 0, n)
	telemetry.WithComponent(parCommitComponent, func() {
		for i := 0; i < n; i++ {
			// Fast path: speculation already finished, no clock read. When
			// the committer outruns the workers, the wait is a commit stall
			// — the histogram that separates "workers starved the
			// committer" from "validation churned" when a parallel run
			// underperforms serial.
			select {
			case <-done[i]:
			default:
				start := time.Now()
				<-done[i]
				mParCommitStall.Observe(time.Since(start).Seconds())
			}
			res := &results[i]
			adopted := false
			if res.ok {
				if res.view.validate(c.state) {
					res.view.commitTo(c.state)
					receipts = append(receipts, res.rcpt)
					adopted = true
				} else {
					mParConflicts.Inc()
					conflictShardCounter(c.state.ShardIndex(txs[i].From)).Inc()
				}
			}
			if !adopted {
				mParReexec.Inc()
				tx := txs[i]
				if want := c.state.Nonce(tx.From); tx.Nonce != want {
					commitErr = fmt.Errorf("ledger: tx %d nonce %d, want %d for %s", i, tx.Nonce, want, tx.From.Short())
					return
				}
				rcpt, err := c.cfg.Applier.Apply(c.state, tx, height)
				if err != nil {
					commitErr = fmt.Errorf("ledger: tx %d apply: %w", i, err)
					return
				}
				receipts = append(receipts, rcpt)
			}
			gasUsed += receipts[i].GasUsed
			if gasUsed > c.cfg.BlockGasLimit {
				commitErr = fmt.Errorf("%w: %d > %d", ErrBlockGasLimit, gasUsed, c.cfg.BlockGasLimit)
				return
			}
		}
	})
	if commitErr != nil {
		return abort(commitErr)
	}
	wg.Wait()
	return receipts, gasUsed, nil
}

// speculate runs one transaction against its view. Any error — nonce
// mismatch, applier error, or a panic from executing over a torn read
// of an in-flight commit — marks the result not-ok; the committer then
// re-executes serially, which regenerates the serial outcome (including
// exact error text) or discovers the error was an artifact of stale
// reads.
func (c *Chain) speculate(view *txView, tx *Transaction, height uint64) (rcpt *Receipt, ok bool) {
	defer func() {
		if recover() != nil {
			rcpt, ok = nil, false
		}
	}()
	if want := view.Nonce(tx.From); tx.Nonce != want {
		return nil, false
	}
	r, err := c.cfg.Applier.Apply(view, tx, height)
	if err != nil {
		return nil, false
	}
	return r, true
}
