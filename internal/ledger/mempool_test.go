package ledger

import (
	"errors"
	"sync"
	"testing"

	"pds2/internal/identity"
)

func TestMempoolAddAndBatch(t *testing.T) {
	alice := testIdentity(1)
	bob := testIdentity(2)
	pool := NewMempool(0)
	st := NewState()

	// Out-of-order admission; batch must come out nonce-ordered.
	tx1 := SignTx(alice, bob.Address(), 1, 1, 50_000, nil)
	tx0 := SignTx(alice, bob.Address(), 1, 0, 50_000, nil)
	if err := pool.Add(tx1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Add(tx0); err != nil {
		t.Fatal(err)
	}
	batch := pool.NextBatch(st, 10, 0)
	if len(batch) != 2 || batch[0].Nonce != 0 || batch[1].Nonce != 1 {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestMempoolNonceGapBlocksLaterTxs(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	// Nonces 0 and 2: only nonce 0 is executable.
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil))
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 2, 50_000, nil))
	batch := pool.NextBatch(st, 10, 0)
	if len(batch) != 1 || batch[0].Nonce != 0 {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestMempoolRespectsStateNonce(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	st.BumpNonce(alice.Address()) // account nonce is now 1
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil))
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 1, 50_000, nil))
	batch := pool.NextBatch(st, 10, 0)
	if len(batch) != 1 || batch[0].Nonce != 1 {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestMempoolDuplicateRejected(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	tx := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	if err := pool.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := pool.Add(tx); !errors.Is(err, ErrMempoolDuplicate) {
		t.Fatalf("want ErrMempoolDuplicate, got %v", err)
	}
}

func TestMempoolSameNonceReplaces(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	old := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	if err := pool.Add(old); err != nil {
		t.Fatal(err)
	}
	// Same sender+nonce, different payload: the newer tx wins.
	repl := SignTx(alice, testIdentity(3).Address(), 2, 0, 50_000, nil)
	if err := pool.Add(repl); err != nil {
		t.Fatalf("replacement rejected: %v", err)
	}
	if pool.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pool.Len())
	}
	if pool.Contains(old.Hash()) || !pool.Contains(repl.Hash()) {
		t.Fatal("replacement did not swap the pending tx")
	}
	batch := pool.NextBatch(st, 10, 0)
	if len(batch) != 1 || batch[0].Hash() != repl.Hash() {
		t.Fatalf("batch = %+v", batch)
	}
}

// TestMempoolReplacementAtCapacity checks that replacement is exempt
// from the capacity check: it never grows the pool.
func TestMempoolReplacementAtCapacity(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(1)
	if err := pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)); err != nil {
		t.Fatal(err)
	}
	repl := SignTx(alice, testIdentity(3).Address(), 2, 0, 50_000, nil)
	if err := pool.Add(repl); err != nil {
		t.Fatalf("replacement at capacity rejected: %v", err)
	}
	if pool.Len() != 1 || !pool.Contains(repl.Hash()) {
		t.Fatal("replacement at capacity did not swap")
	}
}

// TestMempoolStaleEvictionUnclogsPool is the regression test for the
// stale-transaction leak: a pool filled to capacity with transactions
// whose nonces are already consumed on chain must accept new traffic
// again once eviction runs.
func TestMempoolStaleEvictionUnclogsPool(t *testing.T) {
	const cap = 8
	pool := NewMempool(cap)
	st := NewState()
	stale := make([]*identity.Identity, cap)
	for i := range stale {
		stale[i] = testIdentity(uint64(10 + i))
		if err := pool.Add(SignTx(stale[i], testIdentity(2).Address(), 1, 0, 50_000, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// The chain has moved past every pending nonce.
	for _, id := range stale {
		st.BumpNonce(id.Address())
	}
	fresh := SignTx(testIdentity(1), testIdentity(2).Address(), 1, 0, 50_000, nil)
	if err := pool.Add(fresh); !errors.Is(err, ErrMempoolFull) {
		t.Fatalf("want ErrMempoolFull before eviction, got %v", err)
	}
	if n := pool.Prune(st); n != cap {
		t.Fatalf("Prune evicted %d, want %d", n, cap)
	}
	if pool.Len() != 0 {
		t.Fatalf("Len = %d after prune", pool.Len())
	}
	if err := pool.Add(fresh); err != nil {
		t.Fatalf("admission still failing after prune: %v", err)
	}
}

// TestMempoolNextBatchEvictsStale checks the self-pruning path: the
// seal-cadence NextBatch call itself drops already-executed entries.
func TestMempoolNextBatchEvictsStale(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	tx0 := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	tx1 := SignTx(alice, testIdentity(2).Address(), 1, 1, 50_000, nil)
	pool.Add(tx0)
	pool.Add(tx1)
	st.BumpNonce(alice.Address()) // nonce 0 executed elsewhere
	batch := pool.NextBatch(st, 10, 0)
	if len(batch) != 1 || batch[0].Nonce != 1 {
		t.Fatalf("batch = %+v", batch)
	}
	if pool.Contains(tx0.Hash()) {
		t.Fatal("stale tx survived NextBatch")
	}
	if pool.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pool.Len())
	}
}

func TestMempoolNextNonce(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	if got := pool.NextNonce(alice.Address(), 3); got != 3 {
		t.Fatalf("empty pool NextNonce = %d, want 3", got)
	}
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 3, 50_000, nil))
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 4, 50_000, nil))
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 7, 50_000, nil)) // gap at 5
	if got := pool.NextNonce(alice.Address(), 3); got != 5 {
		t.Fatalf("NextNonce = %d, want 5", got)
	}
}

// TestMempoolConcurrentStress hammers the pool from many goroutines.
// Run with -race (make ci does): the pool is reachable from the API
// server's handler goroutines, so every method must be safe for
// concurrent use.
func TestMempoolConcurrentStress(t *testing.T) {
	const (
		workers = 8
		perSeed = 40
	)
	pool := NewMempool(workers * perSeed)
	st := NewState()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sender := testIdentity(uint64(100 + w))
			var mine []*Transaction
			for n := 0; n < perSeed; n++ {
				tx := SignTx(sender, testIdentity(2).Address(), 1, uint64(n), 50_000, nil)
				if err := pool.Add(tx); err != nil {
					t.Errorf("add: %v", err)
					return
				}
				mine = append(mine, tx)
				pool.Contains(tx.Hash())
				pool.Len()
				pool.NextNonce(sender.Address(), 0)
				if n%8 == 7 { // drop the newest: the executable prefix survives
					pool.Remove(mine[len(mine)-1:])
					mine = mine[:len(mine)-1]
				}
			}
		}(w)
	}
	// Concurrent batch/prune reader. State is owned by this goroutine
	// only — the pool is the shared structure under test.
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := NewState()
		for i := 0; i < 200; i++ {
			pool.NextBatch(local, 64, 0)
			pool.Prune(local)
		}
	}()
	wg.Wait()
	if pool.Len() == 0 {
		t.Fatal("stress left an empty pool; expected pending txs")
	}
	batch := pool.NextBatch(st, 1<<20, 0)
	if len(batch) == 0 {
		t.Fatal("no executable txs after stress")
	}
}

func TestMempoolCapacity(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(2)
	for n := uint64(0); n < 2; n++ {
		if err := pool.Add(SignTx(alice, testIdentity(2).Address(), 1, n, 50_000, nil)); err != nil {
			t.Fatal(err)
		}
	}
	err := pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 2, 50_000, nil))
	if !errors.Is(err, ErrMempoolFull) {
		t.Fatalf("want ErrMempoolFull, got %v", err)
	}
}

func TestMempoolRemove(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	tx0 := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	tx1 := SignTx(alice, testIdentity(2).Address(), 1, 1, 50_000, nil)
	pool.Add(tx0)
	pool.Add(tx1)
	pool.Remove([]*Transaction{tx0})
	if pool.Len() != 1 {
		t.Fatalf("Len = %d", pool.Len())
	}
	if pool.Contains(tx0.Hash()) {
		t.Fatal("removed tx still present")
	}
	st.BumpNonce(alice.Address())
	batch := pool.NextBatch(st, 10, 0)
	if len(batch) != 1 || batch[0].Nonce != 1 {
		t.Fatalf("batch = %+v", batch)
	}
	// Removing everything clears the sender bucket.
	pool.Remove([]*Transaction{tx1})
	if pool.Len() != 0 {
		t.Fatal("pool not empty")
	}
}

func TestMempoolRejectsInvalidTx(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	tx := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	tx.Value = 999 // break the signature
	if err := pool.Add(tx); err == nil {
		t.Fatal("invalid tx admitted")
	}
}

func TestMempoolBatchLimit(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	for n := uint64(0); n < 5; n++ {
		pool.Add(SignTx(alice, testIdentity(2).Address(), 1, n, 50_000, nil))
	}
	if got := len(pool.NextBatch(st, 3, 0)); got != 3 {
		t.Fatalf("batch size = %d, want 3", got)
	}
}
