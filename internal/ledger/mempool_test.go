package ledger

import (
	"errors"
	"testing"
)

func TestMempoolAddAndBatch(t *testing.T) {
	alice := testIdentity(1)
	bob := testIdentity(2)
	pool := NewMempool(0)
	st := NewState()

	// Out-of-order admission; batch must come out nonce-ordered.
	tx1 := SignTx(alice, bob.Address(), 1, 1, 50_000, nil)
	tx0 := SignTx(alice, bob.Address(), 1, 0, 50_000, nil)
	if err := pool.Add(tx1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Add(tx0); err != nil {
		t.Fatal(err)
	}
	batch := pool.NextBatch(st, 10)
	if len(batch) != 2 || batch[0].Nonce != 0 || batch[1].Nonce != 1 {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestMempoolNonceGapBlocksLaterTxs(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	// Nonces 0 and 2: only nonce 0 is executable.
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil))
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 2, 50_000, nil))
	batch := pool.NextBatch(st, 10)
	if len(batch) != 1 || batch[0].Nonce != 0 {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestMempoolRespectsStateNonce(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	st.BumpNonce(alice.Address()) // account nonce is now 1
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil))
	pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 1, 50_000, nil))
	batch := pool.NextBatch(st, 10)
	if len(batch) != 1 || batch[0].Nonce != 1 {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestMempoolDuplicateRejected(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	tx := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	if err := pool.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := pool.Add(tx); !errors.Is(err, ErrMempoolDuplicate) {
		t.Fatalf("want ErrMempoolDuplicate, got %v", err)
	}
	// Same sender+nonce, different payload: still rejected (nonce clash).
	other := SignTx(alice, testIdentity(3).Address(), 2, 0, 50_000, nil)
	if err := pool.Add(other); !errors.Is(err, ErrMempoolNonceGap) {
		t.Fatalf("want ErrMempoolNonceGap, got %v", err)
	}
}

func TestMempoolCapacity(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(2)
	for n := uint64(0); n < 2; n++ {
		if err := pool.Add(SignTx(alice, testIdentity(2).Address(), 1, n, 50_000, nil)); err != nil {
			t.Fatal(err)
		}
	}
	err := pool.Add(SignTx(alice, testIdentity(2).Address(), 1, 2, 50_000, nil))
	if !errors.Is(err, ErrMempoolFull) {
		t.Fatalf("want ErrMempoolFull, got %v", err)
	}
}

func TestMempoolRemove(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	tx0 := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	tx1 := SignTx(alice, testIdentity(2).Address(), 1, 1, 50_000, nil)
	pool.Add(tx0)
	pool.Add(tx1)
	pool.Remove([]*Transaction{tx0})
	if pool.Len() != 1 {
		t.Fatalf("Len = %d", pool.Len())
	}
	if pool.Contains(tx0.Hash()) {
		t.Fatal("removed tx still present")
	}
	st.BumpNonce(alice.Address())
	batch := pool.NextBatch(st, 10)
	if len(batch) != 1 || batch[0].Nonce != 1 {
		t.Fatalf("batch = %+v", batch)
	}
	// Removing everything clears the sender bucket.
	pool.Remove([]*Transaction{tx1})
	if pool.Len() != 0 {
		t.Fatal("pool not empty")
	}
}

func TestMempoolRejectsInvalidTx(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	tx := SignTx(alice, testIdentity(2).Address(), 1, 0, 50_000, nil)
	tx.Value = 999 // break the signature
	if err := pool.Add(tx); err == nil {
		t.Fatal("invalid tx admitted")
	}
}

func TestMempoolBatchLimit(t *testing.T) {
	alice := testIdentity(1)
	pool := NewMempool(0)
	st := NewState()
	for n := uint64(0); n < 5; n++ {
		pool.Add(SignTx(alice, testIdentity(2).Address(), 1, n, 50_000, nil))
	}
	if got := len(pool.NextBatch(st, 3)); got != 3 {
		t.Fatalf("batch size = %d, want 3", got)
	}
}
