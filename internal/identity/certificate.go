package identity

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pds2/internal/crypto"
)

// ParticipationCert is the signed authorization of Fig. 2: by issuing it,
// a data provider certifies that it has agreed to contribute the dataset
// identified by DataRef to the workload identified by WorkloadID, through
// the executor at Executor. The executor presents the certificate to the
// governance layer when registering its participation, which lets the
// chain verify that "all executors have indeed been granted access to a
// specific set of data for the specific workload in question" (§II-D).
type ParticipationCert struct {
	WorkloadID crypto.Digest `json:"workload_id"`
	DataRef    crypto.Digest `json:"data_ref"` // content hash of the dataset
	Provider   Address       `json:"provider"`
	Executor   Address       `json:"executor"`
	Expiry     uint64        `json:"expiry"` // ledger height after which the cert is void
	Pub        []byte        `json:"pub"`
	Sig        []byte        `json:"sig"`
}

// certSigningBytes produces the canonical byte string the provider signs.
func certSigningBytes(workloadID, dataRef crypto.Digest, provider, executor Address, expiry uint64) []byte {
	buf := make([]byte, 0, 2*crypto.HashSize+2*AddressSize+8+len("pds2/cert/v1"))
	buf = append(buf, "pds2/cert/v1"...)
	buf = append(buf, workloadID[:]...)
	buf = append(buf, dataRef[:]...)
	buf = append(buf, provider[:]...)
	buf = append(buf, executor[:]...)
	buf = binary.BigEndian.AppendUint64(buf, expiry)
	return buf
}

// IssueCert creates a participation certificate signed by provider.
func IssueCert(provider *Identity, workloadID, dataRef crypto.Digest, executor Address, expiry uint64) ParticipationCert {
	msg := certSigningBytes(workloadID, dataRef, provider.Address(), executor, expiry)
	return ParticipationCert{
		WorkloadID: workloadID,
		DataRef:    dataRef,
		Provider:   provider.Address(),
		Executor:   executor,
		Expiry:     expiry,
		Pub:        provider.PublicKey(),
		Sig:        provider.Sign(msg),
	}
}

// Errors returned by ParticipationCert.Verify.
var (
	ErrCertSignature = errors.New("identity: certificate signature invalid")
	ErrCertExpired   = errors.New("identity: certificate expired")
	ErrCertIssuer    = errors.New("identity: certificate public key does not match provider address")
	ErrCertExecutor  = errors.New("identity: certificate bound to a different executor")
	ErrCertWorkload  = errors.New("identity: certificate bound to a different workload")
)

// Verify checks the certificate against the claimed executor, workload
// and current ledger height. It verifies that the embedded public key
// matches the provider address, that the signature is valid, and that the
// certificate has not expired.
func (c ParticipationCert) Verify(workloadID crypto.Digest, executor Address, height uint64) error {
	if c.WorkloadID != workloadID {
		return ErrCertWorkload
	}
	if c.Executor != executor {
		return ErrCertExecutor
	}
	if height > c.Expiry {
		return fmt.Errorf("%w: height %d > expiry %d", ErrCertExpired, height, c.Expiry)
	}
	if AddressFromPub(c.Pub) != c.Provider {
		return ErrCertIssuer
	}
	msg := certSigningBytes(c.WorkloadID, c.DataRef, c.Provider, c.Executor, c.Expiry)
	if !Verify(c.Pub, msg, c.Sig) {
		return ErrCertSignature
	}
	return nil
}

// ID returns a unique digest identifying this certificate, used by the
// governance layer to prevent the same authorization from being replayed
// by multiple executors.
func (c ParticipationCert) ID() crypto.Digest {
	return crypto.HashConcat(
		[]byte("pds2/cert-id"),
		c.WorkloadID[:], c.DataRef[:], c.Provider[:], c.Executor[:],
	)
}
