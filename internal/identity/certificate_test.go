package identity

import (
	"errors"
	"testing"

	"pds2/internal/crypto"
)

func TestParticipationCertVerify(t *testing.T) {
	provider := newTestIdentity(t, "provider", 1)
	executor := newTestIdentity(t, "executor", 2)
	wid := crypto.HashString("workload-1")
	data := crypto.HashString("dataset-1")

	cert := IssueCert(provider, wid, data, executor.Address(), 100)
	if err := cert.Verify(wid, executor.Address(), 50); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
}

func TestParticipationCertExpired(t *testing.T) {
	provider := newTestIdentity(t, "provider", 1)
	executor := newTestIdentity(t, "executor", 2)
	wid := crypto.HashString("w")
	cert := IssueCert(provider, wid, crypto.HashString("d"), executor.Address(), 10)
	if err := cert.Verify(wid, executor.Address(), 11); !errors.Is(err, ErrCertExpired) {
		t.Fatalf("want ErrCertExpired, got %v", err)
	}
	// Boundary: exactly at expiry is still valid.
	if err := cert.Verify(wid, executor.Address(), 10); err != nil {
		t.Fatalf("cert at expiry height rejected: %v", err)
	}
}

func TestParticipationCertWrongBinding(t *testing.T) {
	provider := newTestIdentity(t, "provider", 1)
	executor := newTestIdentity(t, "executor", 2)
	mallory := newTestIdentity(t, "mallory", 3)
	wid := crypto.HashString("w")
	cert := IssueCert(provider, wid, crypto.HashString("d"), executor.Address(), 100)

	if err := cert.Verify(crypto.HashString("other"), executor.Address(), 1); !errors.Is(err, ErrCertWorkload) {
		t.Fatalf("want ErrCertWorkload, got %v", err)
	}
	if err := cert.Verify(wid, mallory.Address(), 1); !errors.Is(err, ErrCertExecutor) {
		t.Fatalf("want ErrCertExecutor, got %v", err)
	}
}

func TestParticipationCertForgedSignature(t *testing.T) {
	provider := newTestIdentity(t, "provider", 1)
	executor := newTestIdentity(t, "executor", 2)
	mallory := newTestIdentity(t, "mallory", 3)
	wid := crypto.HashString("w")
	cert := IssueCert(provider, wid, crypto.HashString("d"), executor.Address(), 100)

	// Mallory swaps in her own key: address check must fail.
	forged := cert
	forged.Pub = mallory.PublicKey()
	forged.Sig = mallory.Sign([]byte("whatever"))
	if err := forged.Verify(wid, executor.Address(), 1); !errors.Is(err, ErrCertIssuer) {
		t.Fatalf("want ErrCertIssuer, got %v", err)
	}

	// Tampering with the data reference invalidates the signature.
	tampered := cert
	tampered.DataRef = crypto.HashString("different data")
	if err := tampered.Verify(wid, executor.Address(), 1); !errors.Is(err, ErrCertSignature) {
		t.Fatalf("want ErrCertSignature, got %v", err)
	}
}

func TestParticipationCertIDUnique(t *testing.T) {
	provider := newTestIdentity(t, "provider", 1)
	executor := newTestIdentity(t, "executor", 2)
	wid := crypto.HashString("w")
	a := IssueCert(provider, wid, crypto.HashString("d1"), executor.Address(), 100)
	b := IssueCert(provider, wid, crypto.HashString("d2"), executor.Address(), 100)
	if a.ID() == b.ID() {
		t.Fatal("certs over different data share an ID")
	}
	// Expiry does not change the ID: re-issuing with a later expiry is the
	// same logical authorization.
	c := IssueCert(provider, wid, crypto.HashString("d1"), executor.Address(), 200)
	if a.ID() != c.ID() {
		t.Fatal("re-issued cert changed ID")
	}
}
