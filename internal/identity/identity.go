// Package identity implements the actor model of PDS²: every consumer,
// provider, executor, storage node and device owns an Ed25519 key pair
// from which a short ledger address is derived. The package also provides
// the participation certificates of Fig. 2 — the signed statements by
// which a provider authorizes an executor to use a specific dataset for a
// specific workload — and the verification logic the governance layer
// runs over them.
package identity

import (
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"fmt"

	"pds2/internal/crypto"
)

// AddressSize is the length of a ledger address in bytes.
const AddressSize = 20

// Address identifies an actor on the governance ledger. It is the first
// 20 bytes of the SHA-256 hash of the actor's public key, mirroring how
// Ethereum derives addresses from keys.
type Address [AddressSize]byte

// ZeroAddress is the all-zero address, used for contract-creation
// transactions and as a "nobody" sentinel.
var ZeroAddress Address

// AddressFromPub derives the ledger address of an Ed25519 public key.
func AddressFromPub(pub ed25519.PublicKey) Address {
	d := crypto.HashBytes(pub)
	var a Address
	copy(a[:], d[:AddressSize])
	return a
}

// Hex returns the lowercase hex encoding of the address.
func (a Address) Hex() string { return hex.EncodeToString(a[:]) }

// Short returns the first 8 hex characters, for logs.
func (a Address) Short() string { return a.Hex()[:8] }

// String implements fmt.Stringer.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// MarshalText implements encoding.TextMarshaler.
func (a Address) MarshalText() ([]byte, error) { return []byte(a.Hex()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Address) UnmarshalText(text []byte) error {
	b, err := hex.DecodeString(string(text))
	if err != nil {
		return fmt.Errorf("identity: invalid address hex: %w", err)
	}
	if len(b) != AddressSize {
		return fmt.Errorf("identity: address must be %d bytes, got %d", AddressSize, len(b))
	}
	copy(a[:], b)
	return nil
}

// AddressFromHex parses a 40-character hex string into an Address.
func AddressFromHex(s string) (Address, error) {
	var a Address
	err := a.UnmarshalText([]byte(s))
	return a, err
}

// Role labels the function an actor performs on the platform. A single
// identity may act in several roles (§II-C: "each entity … can act in
// multiple roles").
type Role string

// The five platform roles of Fig. 1, plus Device for the IoT hardware
// identities of §IV-B.
const (
	RoleConsumer Role = "consumer"
	RoleProvider Role = "provider"
	RoleExecutor Role = "executor"
	RoleStorage  Role = "storage"
	RoleGovernor Role = "governor"
	RoleDevice   Role = "device"
)

// Identity is a full actor identity: the key pair plus a human-readable
// name used only in logs and reports.
type Identity struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	addr Address
}

// New deterministically derives an identity from the given DRBG. All PDS²
// simulations create identities this way so that runs are reproducible.
func New(name string, rng *crypto.DRBG) *Identity {
	seed := rng.Bytes(ed25519.SeedSize)
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	return &Identity{Name: name, priv: priv, pub: pub, addr: AddressFromPub(pub)}
}

// Address returns the actor's ledger address.
func (id *Identity) Address() Address { return id.addr }

// PublicKey returns the actor's public key.
func (id *Identity) PublicKey() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), id.pub...)
}

// Sign signs msg with the actor's private key.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.priv, msg)
}

// Verify reports whether sig is a valid signature over msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// SignedMessage couples a payload with the signer's public key and
// signature, the wire format used for off-chain messages between actors.
type SignedMessage struct {
	Payload []byte `json:"payload"`
	Pub     []byte `json:"pub"`
	Sig     []byte `json:"sig"`
}

// SignMessage wraps payload in a SignedMessage from id.
func (id *Identity) SignMessage(payload []byte) SignedMessage {
	return SignedMessage{
		Payload: append([]byte(nil), payload...),
		Pub:     id.PublicKey(),
		Sig:     id.Sign(payload),
	}
}

// Sender verifies the message and returns the signer's address.
func (m SignedMessage) Sender() (Address, error) {
	if !Verify(m.Pub, m.Payload, m.Sig) {
		return ZeroAddress, errors.New("identity: invalid message signature")
	}
	return AddressFromPub(m.Pub), nil
}

// Registry maps addresses to public keys and declared roles. The
// governance layer consults it when validating signatures on-chain.
type Registry struct {
	keys  map[Address]ed25519.PublicKey
	roles map[Address]map[Role]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		keys:  make(map[Address]ed25519.PublicKey),
		roles: make(map[Address]map[Role]bool),
	}
}

// Register records the public key of an actor and grants it a role.
// Registering an existing actor with a new role extends its role set.
// It returns an error if a different key is already registered for the
// same address (which would indicate a hash collision or forgery).
func (r *Registry) Register(pub ed25519.PublicKey, role Role) (Address, error) {
	addr := AddressFromPub(pub)
	if existing, ok := r.keys[addr]; ok {
		if !existing.Equal(pub) {
			return ZeroAddress, fmt.Errorf("identity: address %s already bound to a different key", addr.Short())
		}
	} else {
		r.keys[addr] = append(ed25519.PublicKey(nil), pub...)
	}
	if r.roles[addr] == nil {
		r.roles[addr] = make(map[Role]bool)
	}
	r.roles[addr][role] = true
	return addr, nil
}

// Key returns the registered public key for addr.
func (r *Registry) Key(addr Address) (ed25519.PublicKey, bool) {
	k, ok := r.keys[addr]
	return k, ok
}

// HasRole reports whether addr has been registered under role.
func (r *Registry) HasRole(addr Address, role Role) bool {
	return r.roles[addr][role]
}

// Len returns the number of registered actors.
func (r *Registry) Len() int { return len(r.keys) }

// VerifyFrom checks that msg was signed by the key registered for addr.
func (r *Registry) VerifyFrom(addr Address, msg, sig []byte) error {
	pub, ok := r.keys[addr]
	if !ok {
		return fmt.Errorf("identity: address %s not registered", addr.Short())
	}
	if !Verify(pub, msg, sig) {
		return fmt.Errorf("identity: bad signature from %s", addr.Short())
	}
	return nil
}
