package identity

import (
	"testing"

	"pds2/internal/crypto"
)

func newTestIdentity(t *testing.T, name string, seed uint64) *Identity {
	t.Helper()
	return New(name, crypto.NewDRBGFromUint64(seed, "identity-test"))
}

func TestIdentityDeterministic(t *testing.T) {
	a := newTestIdentity(t, "alice", 1)
	b := newTestIdentity(t, "alice", 1)
	if a.Address() != b.Address() {
		t.Fatal("same seed produced different addresses")
	}
	c := newTestIdentity(t, "carol", 2)
	if a.Address() == c.Address() {
		t.Fatal("different seeds produced the same address")
	}
}

func TestSignVerify(t *testing.T) {
	id := newTestIdentity(t, "alice", 1)
	msg := []byte("hello pds2")
	sig := id.Sign(msg)
	if !Verify(id.PublicKey(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(id.PublicKey(), []byte("other"), sig) {
		t.Fatal("signature verified for wrong message")
	}
	other := newTestIdentity(t, "bob", 2)
	if Verify(other.PublicKey(), msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	id := newTestIdentity(t, "alice", 1)
	sig := id.Sign([]byte("m"))
	if Verify(id.PublicKey()[:10], []byte("m"), sig) {
		t.Fatal("short public key accepted")
	}
	if Verify(id.PublicKey(), []byte("m"), sig[:10]) {
		t.Fatal("short signature accepted")
	}
}

func TestAddressHexRoundTrip(t *testing.T) {
	id := newTestIdentity(t, "alice", 1)
	addr := id.Address()
	parsed, err := AddressFromHex(addr.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != addr {
		t.Fatal("address hex round trip failed")
	}
	if _, err := AddressFromHex("nothex"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := AddressFromHex("abcd"); err == nil {
		t.Fatal("short hex accepted")
	}
}

func TestSignedMessageSender(t *testing.T) {
	id := newTestIdentity(t, "alice", 1)
	m := id.SignMessage([]byte("payload"))
	from, err := m.Sender()
	if err != nil {
		t.Fatal(err)
	}
	if from != id.Address() {
		t.Fatal("sender mismatch")
	}
	m.Payload = []byte("tampered")
	if _, err := m.Sender(); err == nil {
		t.Fatal("tampered message accepted")
	}
}

func TestRegistryRolesAndKeys(t *testing.T) {
	r := NewRegistry()
	alice := newTestIdentity(t, "alice", 1)
	addr, err := r.Register(alice.PublicKey(), RoleProvider)
	if err != nil {
		t.Fatal(err)
	}
	if addr != alice.Address() {
		t.Fatal("registered address mismatch")
	}
	if !r.HasRole(addr, RoleProvider) {
		t.Fatal("role not recorded")
	}
	if r.HasRole(addr, RoleExecutor) {
		t.Fatal("unexpected role")
	}
	// Multi-role registration extends the role set.
	if _, err := r.Register(alice.PublicKey(), RoleExecutor); err != nil {
		t.Fatal(err)
	}
	if !r.HasRole(addr, RoleExecutor) || !r.HasRole(addr, RoleProvider) {
		t.Fatal("role set not extended")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	key, ok := r.Key(addr)
	if !ok || !key.Equal(alice.PublicKey()) {
		t.Fatal("Key lookup failed")
	}
}

func TestRegistryVerifyFrom(t *testing.T) {
	r := NewRegistry()
	alice := newTestIdentity(t, "alice", 1)
	bob := newTestIdentity(t, "bob", 2)
	r.Register(alice.PublicKey(), RoleProvider)

	msg := []byte("on-chain action")
	if err := r.VerifyFrom(alice.Address(), msg, alice.Sign(msg)); err != nil {
		t.Fatalf("valid: %v", err)
	}
	if err := r.VerifyFrom(alice.Address(), msg, bob.Sign(msg)); err == nil {
		t.Fatal("signature from wrong key accepted")
	}
	if err := r.VerifyFrom(bob.Address(), msg, bob.Sign(msg)); err == nil {
		t.Fatal("unregistered address accepted")
	}
}
