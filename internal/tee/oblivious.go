package tee

// Oblivious primitives: data-independent control flow and memory access
// patterns, the mitigation the paper cites for SGX side channels
// ("side-channel leaks are possible but can be avoided using oblivious
// primitives" [12], §III-B). Enclave workloads that branch on secrets
// should go through these helpers instead.

import (
	"math"
	"math/bits"
)

// OSelect returns a when sel is 1 and b when sel is 0, without branching
// on sel. sel must be 0 or 1.
func OSelect(sel uint64, a, b uint64) uint64 {
	mask := -sel // 0 -> 0x000…0, 1 -> 0xfff…f
	return (a & mask) | (b &^ mask)
}

// OSelectFloat is OSelect over float64 bit patterns.
func OSelectFloat(sel uint64, a, b float64) float64 {
	return math.Float64frombits(OSelect(sel, math.Float64bits(a), math.Float64bits(b)))
}

// OLess returns 1 when a < b and 0 otherwise, branch-free, for the full
// signed range: the values are mapped to an order-preserving unsigned
// encoding (flip the sign bit) and compared via the subtraction borrow.
func OLess(a, b int64) uint64 {
	ua := uint64(a) ^ (1 << 63)
	ub := uint64(b) ^ (1 << 63)
	_, borrow := bits.Sub64(ua, ub, 0)
	return borrow
}

// OSwap conditionally swaps *a and *b when sel is 1, branch-free.
func OSwap(sel uint64, a, b *uint64) {
	mask := -sel
	diff := (*a ^ *b) & mask
	*a ^= diff
	*b ^= diff
}

// OSortInt64 sorts the slice in place with a bitonic sorting network:
// the sequence of compare-exchange operations depends only on the length,
// never on the data, so an observer of the memory access pattern learns
// nothing about the values. O(n log² n) compare-exchanges.
func OSortInt64(v []int64) {
	n := len(v)
	if n < 2 {
		return
	}
	// The classic bitonic network requires a power-of-two size; pad with
	// +inf sentinels that sort to the end. The padding size depends only
	// on n, so obliviousness is preserved.
	size := 1
	for size < n {
		size *= 2
	}
	buf := make([]int64, size)
	copy(buf, v)
	for i := n; i < size; i++ {
		buf[i] = int64(^uint64(0) >> 1) // MaxInt64
	}
	for k := 2; k <= size; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			for i := 0; i < size; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				up := i&k == 0
				swap := OLess(buf[l], buf[i])
				if !up {
					swap = 1 - swap
				}
				au, bu := uint64(buf[i]), uint64(buf[l])
				OSwap(swap, &au, &bu)
				buf[i], buf[l] = int64(au), int64(bu)
			}
		}
	}
	copy(v, buf[:n])
}
