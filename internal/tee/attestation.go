package tee

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/telemetry"
)

var logTee = telemetry.L("tee")

// QuotingAuthority stands in for the attestation service (Intel IAS /
// DCAP in SGX deployments): a root of trust that certifies platform
// attestation keys. Verifiers only need the authority's public key.
type QuotingAuthority struct {
	root *identity.Identity
}

// NewQuotingAuthority creates an authority with a fresh root key.
func NewQuotingAuthority(rng *crypto.DRBG) *QuotingAuthority {
	return &QuotingAuthority{root: identity.New("quoting-authority", rng)}
}

// PublicKey returns the authority's root verification key.
func (qa *QuotingAuthority) PublicKey() ed25519.PublicKey { return qa.root.PublicKey() }

// PlatformCert is the authority's endorsement of a platform key.
type PlatformCert struct {
	PlatformPub []byte `json:"platform_pub"`
	Sig         []byte `json:"sig"`
}

func platformCertBytes(pub []byte) []byte {
	return append([]byte("pds2/tee/platform-cert/v1"), pub...)
}

// CertifyPlatform signs a platform attestation key, the provisioning
// step that happens once per device.
func (qa *QuotingAuthority) CertifyPlatform(platformPub ed25519.PublicKey) PlatformCert {
	return PlatformCert{
		PlatformPub: append([]byte(nil), platformPub...),
		Sig:         qa.root.Sign(platformCertBytes(platformPub)),
	}
}

// Quote is a remote-attestation statement: this measurement runs on a
// certified platform and binds ReportData (a hash chosen by the enclave,
// e.g. of its public key, input commitment or result commitment).
type Quote struct {
	Measurement Measurement   `json:"measurement"`
	ReportData  crypto.Digest `json:"report_data"`
	Counter     uint64        `json:"counter"` // monotonic per enclave, anti-replay
	Cert        PlatformCert  `json:"cert"`
	Sig         []byte        `json:"sig"`
}

func quoteBytes(m Measurement, rd crypto.Digest, counter uint64) []byte {
	buf := make([]byte, 0, 2*crypto.HashSize+8+32)
	buf = append(buf, "pds2/tee/quote/v1"...)
	buf = append(buf, m[:]...)
	buf = append(buf, rd[:]...)
	buf = binary.BigEndian.AppendUint64(buf, counter)
	return buf
}

// Quote produces an attestation quote for the enclave binding reportData.
func (e *Enclave) Quote(reportData crypto.Digest) Quote {
	e.calls++ // quoting is an enclave transition too
	q := Quote{
		Measurement: e.measurement,
		ReportData:  reportData,
		Counter:     uint64(e.calls),
		Cert:        e.platform.cert,
	}
	q.Sig = e.platform.key.Sign(quoteBytes(q.Measurement, q.ReportData, q.Counter))
	return q
}

// Attestation verification errors.
var (
	ErrQuoteCert        = errors.New("tee: platform certificate not signed by authority")
	ErrQuoteSig         = errors.New("tee: quote signature invalid")
	ErrQuoteMeasurement = errors.New("tee: measurement does not match expected code")
)

// VerifyQuote checks the full chain — authority → platform cert → quote
// signature — and that the quoted measurement equals the expected one.
// This is the check the governance layer (and any provider) runs before
// trusting an executor with data.
func VerifyQuote(authorityPub ed25519.PublicKey, q Quote, expected Measurement) error {
	if !identity.Verify(authorityPub, platformCertBytes(q.Cert.PlatformPub), q.Cert.Sig) {
		logTee.Warn("attestation rejected: platform cert not signed by authority",
			telemetry.U64("counter", q.Counter))
		return ErrQuoteCert
	}
	if !identity.Verify(q.Cert.PlatformPub, quoteBytes(q.Measurement, q.ReportData, q.Counter), q.Sig) {
		logTee.Warn("attestation rejected: quote signature invalid",
			telemetry.U64("counter", q.Counter))
		return ErrQuoteSig
	}
	if q.Measurement != expected {
		logTee.Warn("attestation rejected: measurement mismatch",
			telemetry.Str("got", q.Measurement.String()), telemetry.Str("want", expected.String()))
		return ErrQuoteMeasurement
	}
	logTee.Debug("attestation verified",
		telemetry.Str("measurement", q.Measurement.String()), telemetry.U64("counter", q.Counter))
	return nil
}
