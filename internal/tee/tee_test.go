package tee

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"pds2/internal/crypto"
	"pds2/internal/simnet"
)

func testProgram(name string) Program {
	return Program{
		Code: []byte("program " + name),
		Fn: func(input []byte) ([]byte, error) {
			out := append([]byte("echo:"), input...)
			return out, nil
		},
	}
}

func testPlatform(t *testing.T, seed uint64) (*QuotingAuthority, *Platform) {
	t.Helper()
	rng := crypto.NewDRBGFromUint64(seed, "tee-test")
	qa := NewQuotingAuthority(rng)
	p := NewPlatform(qa, DefaultCostModel(), rng)
	return qa, p
}

func TestLaunchAndCall(t *testing.T) {
	_, p := testPlatform(t, 1)
	e, err := p.Launch(testProgram("a"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Call([]byte("hi"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, []byte("echo:hi")) {
		t.Fatalf("output = %q", res.Output)
	}
	if res.Virtual < p.Cost().EcallCost {
		t.Fatalf("virtual time %v below ecall cost", res.Virtual)
	}
}

func TestGuardBlocksCallBeforeProgram(t *testing.T) {
	_, p := testPlatform(t, 9)
	ran := false
	e, err := p.Launch(Program{
		Code: []byte("guarded"),
		Fn: func(input []byte) ([]byte, error) {
			ran = true
			return input, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	denied := errors.New("usage denied")
	e.SetGuard(func(input []byte, ws int64) error {
		if bytes.HasPrefix(input, []byte("bad")) {
			return denied
		}
		return nil
	})
	if _, err := e.Call([]byte("bad input"), 1<<10); !errors.Is(err, denied) {
		t.Fatalf("guarded call error = %v", err)
	}
	if ran {
		t.Fatal("program ran despite guard denial")
	}
	if _, err := e.Call([]byte("ok input"), 1<<10); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("allowed call did not run the program")
	}
	// Clearing the guard restores unconditional execution.
	e.SetGuard(nil)
	if _, err := e.Call([]byte("bad again"), 1<<10); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchValidation(t *testing.T) {
	_, p := testPlatform(t, 2)
	if _, err := p.Launch(Program{Fn: func([]byte) ([]byte, error) { return nil, nil }}); err == nil {
		t.Fatal("empty code accepted")
	}
	if _, err := p.Launch(Program{Code: []byte("x")}); err == nil {
		t.Fatal("nil entry point accepted")
	}
}

func TestMeasurementBindsCode(t *testing.T) {
	_, p := testPlatform(t, 3)
	e1, _ := p.Launch(testProgram("a"))
	e2, _ := p.Launch(testProgram("b"))
	if e1.Measurement() == e2.Measurement() {
		t.Fatal("different code, same measurement")
	}
	e3, _ := p.Launch(testProgram("a"))
	if e1.Measurement() != e3.Measurement() {
		t.Fatal("same code, different measurement")
	}
}

func TestQuoteVerifyChain(t *testing.T) {
	qa, p := testPlatform(t, 4)
	e, _ := p.Launch(testProgram("a"))
	report := crypto.HashString("result commitment")
	q := e.Quote(report)

	if err := VerifyQuote(qa.PublicKey(), q, e.Measurement()); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	if q.ReportData != report {
		t.Fatal("report data not bound")
	}
}

func TestQuoteWrongMeasurementRejected(t *testing.T) {
	qa, p := testPlatform(t, 5)
	e, _ := p.Launch(testProgram("a"))
	q := e.Quote(crypto.HashString("r"))
	other, _ := p.Launch(testProgram("b"))
	if err := VerifyQuote(qa.PublicKey(), q, other.Measurement()); !errors.Is(err, ErrQuoteMeasurement) {
		t.Fatalf("want ErrQuoteMeasurement, got %v", err)
	}
}

func TestQuoteTamperedReportRejected(t *testing.T) {
	qa, p := testPlatform(t, 6)
	e, _ := p.Launch(testProgram("a"))
	q := e.Quote(crypto.HashString("honest"))
	q.ReportData = crypto.HashString("forged")
	if err := VerifyQuote(qa.PublicKey(), q, e.Measurement()); !errors.Is(err, ErrQuoteSig) {
		t.Fatalf("want ErrQuoteSig, got %v", err)
	}
}

func TestQuoteUncertifiedPlatformRejected(t *testing.T) {
	qa, _ := testPlatform(t, 7)
	// A rogue platform provisioned by a different authority.
	rng := crypto.NewDRBGFromUint64(99, "rogue")
	rogueQA := NewQuotingAuthority(rng)
	rogue := NewPlatform(rogueQA, DefaultCostModel(), rng)
	e, _ := rogue.Launch(testProgram("a"))
	q := e.Quote(crypto.HashString("r"))
	if err := VerifyQuote(qa.PublicKey(), q, e.Measurement()); !errors.Is(err, ErrQuoteCert) {
		t.Fatalf("want ErrQuoteCert, got %v", err)
	}
}

func TestQuoteCounterMonotonic(t *testing.T) {
	_, p := testPlatform(t, 8)
	e, _ := p.Launch(testProgram("a"))
	q1 := e.Quote(crypto.HashString("r"))
	q2 := e.Quote(crypto.HashString("r"))
	if q2.Counter <= q1.Counter {
		t.Fatalf("counters %d, %d not monotonic", q1.Counter, q2.Counter)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	_, p := testPlatform(t, 9)
	rng := crypto.NewDRBGFromUint64(9, "seal")
	e, _ := p.Launch(testProgram("a"))
	secret := []byte("model checkpoint")
	blob, err := e.Seal(secret, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, secret) {
		t.Fatal("sealed blob contains plaintext")
	}
	got, err := e.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("unsealed %q", got)
	}
}

func TestSealBoundToMeasurement(t *testing.T) {
	_, p := testPlatform(t, 10)
	rng := crypto.NewDRBGFromUint64(10, "seal")
	e1, _ := p.Launch(testProgram("a"))
	e2, _ := p.Launch(testProgram("b")) // different code, same platform
	blob, _ := e1.Seal([]byte("secret"), rng)
	if _, err := e2.Unseal(blob); err == nil {
		t.Fatal("different measurement unsealed the blob")
	}
}

func TestSealBoundToPlatform(t *testing.T) {
	qa, p1 := testPlatform(t, 11)
	rng := crypto.NewDRBGFromUint64(11, "seal")
	p2 := NewPlatform(qa, DefaultCostModel(), rng)
	e1, _ := p1.Launch(testProgram("a"))
	e2, _ := p2.Launch(testProgram("a")) // same code, different platform
	blob, _ := e1.Seal([]byte("secret"), rng)
	if _, err := e2.Unseal(blob); err == nil {
		t.Fatal("different platform unsealed the blob")
	}
}

func TestSealTamperDetected(t *testing.T) {
	_, p := testPlatform(t, 12)
	rng := crypto.NewDRBGFromUint64(12, "seal")
	e, _ := p.Launch(testProgram("a"))
	blob, _ := e.Seal([]byte("secret"), rng)
	blob[len(blob)-1] ^= 0xff
	if _, err := e.Unseal(blob); err == nil {
		t.Fatal("tampered blob unsealed")
	}
}

func TestOverheadFactorShape(t *testing.T) {
	m := DefaultCostModel()
	inEPC := m.OverheadFactor(1 << 20)
	atEPC := m.OverheadFactor(m.EPCBytes)
	beyond := m.OverheadFactor(m.EPCBytes * 4)
	far := m.OverheadFactor(m.EPCBytes * 100)
	if inEPC != m.BaseOverhead || atEPC != m.BaseOverhead {
		t.Fatalf("EPC-resident overhead %v, %v", inEPC, atEPC)
	}
	if !(beyond > atEPC) || !(far > beyond) {
		t.Fatalf("paging overhead not increasing: %v, %v, %v", beyond, far, atEPC)
	}
	max := m.BaseOverhead * (1 + m.PagingOverhead)
	if far > max {
		t.Fatalf("overhead %v exceeds asymptote %v", far, max)
	}
}

func TestOverheadVirtualTimeReflectsPaging(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(13, "tee")
	qa := NewQuotingAuthority(rng)
	cost := DefaultCostModel()
	cost.EPCBytes = 1 << 20
	p := NewPlatform(qa, cost, rng)
	work := Program{
		Code: []byte("spin"),
		Fn: func(input []byte) ([]byte, error) {
			s := 0.0
			for i := 0; i < 200_000; i++ {
				s += float64(i)
			}
			_ = s
			return nil, nil
		},
	}
	e, _ := p.Launch(work)
	small, err := e.Call(nil, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	large, err := e.Call(nil, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	// Same real work, but the modelled time must be larger with paging.
	// Compare per-elapsed ratios to be robust to scheduler noise.
	rSmall := float64(small.Virtual) / float64(small.Elapsed.Microseconds()+1)
	rLarge := float64(large.Virtual) / float64(large.Elapsed.Microseconds()+1)
	if rLarge <= rSmall {
		t.Fatalf("paging did not increase modelled overhead: %v vs %v", rLarge, rSmall)
	}
}

func TestEnclaveCallError(t *testing.T) {
	_, p := testPlatform(t, 14)
	boom := Program{
		Code: []byte("boom"),
		Fn:   func([]byte) ([]byte, error) { return nil, errors.New("kaboom") },
	}
	e, _ := p.Launch(boom)
	if _, err := e.Call(nil, 0); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestOSelect(t *testing.T) {
	if OSelect(1, 7, 9) != 7 || OSelect(0, 7, 9) != 9 {
		t.Fatal("OSelect wrong")
	}
	if OSelectFloat(1, 1.5, 2.5) != 1.5 || OSelectFloat(0, 1.5, 2.5) != 2.5 {
		t.Fatal("OSelectFloat wrong")
	}
}

func TestOLess(t *testing.T) {
	cases := []struct {
		a, b int64
		want uint64
	}{{1, 2, 1}, {2, 1, 0}, {0, 0, 0}, {-5, 3, 1}, {3, -5, 0}, {-2, -1, 1}}
	for _, c := range cases {
		if got := OLess(c.a, c.b); got != c.want {
			t.Fatalf("OLess(%d,%d) = %d", c.a, c.b, got)
		}
	}
}

func TestOSwap(t *testing.T) {
	a, b := uint64(3), uint64(9)
	OSwap(0, &a, &b)
	if a != 3 || b != 9 {
		t.Fatal("OSwap(0) swapped")
	}
	OSwap(1, &a, &b)
	if a != 9 || b != 3 {
		t.Fatal("OSwap(1) did not swap")
	}
}

func TestOSortInt64(t *testing.T) {
	f := func(raw []int16) bool {
		v := make([]int64, len(raw))
		for i, x := range raw {
			v[i] = int64(x)
		}
		want := append([]int64(nil), v...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		OSortInt64(v)
		for i := range v {
			if v[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchCost(t *testing.T) {
	_, p := testPlatform(t, 15)
	e, _ := p.Launch(testProgram("a"))
	if e.LaunchCost() != 10*simnet.Millisecond {
		t.Fatalf("launch cost = %v", e.LaunchCost())
	}
}
