// Package tee simulates trusted execution environments, the oblivious-
// computation technology PDS² selects (§III-B): enclaves with code
// measurement, remote attestation through a quoting authority, sealed
// storage bound to (platform, measurement), an SGX-style EPC paging cost
// model, and the oblivious primitives the paper cites as the defence
// against side channels [12].
//
// The simulation substitutes for Intel SGX hardware as follows: the
// *trust chain* (measurement → quote → authority) is implemented with
// real signatures, so all verification logic an executor or the
// governance layer performs is genuine; the *isolation* is assumed (the
// enclave runs in-process); and the *performance* characteristics are
// modelled after published SGX numbers — small multiplicative overhead
// inside the EPC, steep cliffs when the working set exceeds it. That is
// exactly what experiments E5 and E14 need: honest cost shapes and a
// verifiable chain to attack.
package tee

import (
	"errors"
	"fmt"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/simnet"
	"pds2/internal/telemetry"
)

// TEE instrumentation: enclave launches, ecall volume and real (host-CPU)
// ecall latency. The modelled "virtual" SGX time is reported by the
// experiments; telemetry tracks what this process actually spends.
var (
	mEnclaveLaunches = telemetry.C("tee.enclave.launches_total")
	mEcalls          = telemetry.C("tee.ecalls_total")
	mEcallSeconds    = telemetry.H("tee.ecall_seconds", telemetry.TimeBuckets)
	mGuardDenials    = telemetry.C("tee.guard.denials_total")
)

// Measurement identifies enclave code, the SGX MRENCLAVE analogue: the
// hash of the program's canonical code bytes.
type Measurement = crypto.Digest

// Program is code that can be launched inside an enclave. Fn must be a
// pure function of its input; all I/O happens through the input and
// output byte strings, mirroring the ecall interface of SGX enclaves.
type Program struct {
	// Code is the canonical representation of the program (source,
	// bytecode, or a self-describing workload spec). Its hash is the
	// measurement that attestation proves.
	Code []byte

	// Fn is the entry point.
	Fn func(input []byte) ([]byte, error)
}

// Measure returns the program's measurement.
func (p Program) Measure() Measurement { return crypto.HashBytes(p.Code) }

// CostModel parameterizes the simulated performance of a TEE platform.
// Defaults follow the published SGX literature: ~1.2x slowdown for
// EPC-resident working sets, up to ~6x beyond, ~10 ms enclave creation,
// ~8 µs per enclave transition.
type CostModel struct {
	EPCBytes       int64       // usable enclave page cache
	BaseOverhead   float64     // multiplicative slowdown inside the EPC
	PagingOverhead float64     // extra slowdown factor at full paging
	CreateCost     simnet.Time // one-time enclave build/launch cost
	EcallCost      simnet.Time // per-call transition cost
}

// DefaultCostModel returns SGX1-like parameters (92 MiB usable EPC).
func DefaultCostModel() CostModel {
	return CostModel{
		EPCBytes:       92 << 20,
		BaseOverhead:   1.2,
		PagingOverhead: 5.0,
		CreateCost:     10 * simnet.Millisecond,
		EcallCost:      8 * simnet.Microsecond,
	}
}

// OverheadFactor returns the modelled slowdown for a working set of the
// given size: BaseOverhead inside the EPC, rising smoothly towards
// BaseOverhead·(1+PagingOverhead) as the working set dwarfs the EPC.
func (m CostModel) OverheadFactor(workingSetBytes int64) float64 {
	if workingSetBytes <= m.EPCBytes || m.EPCBytes <= 0 {
		return m.BaseOverhead
	}
	excess := 1 - float64(m.EPCBytes)/float64(workingSetBytes)
	return m.BaseOverhead * (1 + m.PagingOverhead*excess)
}

// Platform is a TEE-capable machine: it holds the hardware attestation
// key (certified by the quoting authority at "manufacturing" time) and a
// device secret from which sealing keys derive.
type Platform struct {
	key      *identity.Identity // platform attestation key
	cert     PlatformCert       // authority's endorsement of that key
	sealRoot []byte             // device secret for sealing-key derivation
	cost     CostModel
	enclaves int
}

// NewPlatform provisions a platform: the authority certifies its
// attestation key, standing in for Intel's provisioning service.
func NewPlatform(authority *QuotingAuthority, cost CostModel, rng *crypto.DRBG) *Platform {
	key := identity.New("tee-platform", rng)
	return &Platform{
		key:      key,
		cert:     authority.CertifyPlatform(key.PublicKey()),
		sealRoot: rng.Bytes(32),
		cost:     cost,
	}
}

// Cost returns the platform's cost model.
func (p *Platform) Cost() CostModel { return p.cost }

// Guard is a call-admission hook consulted on every Call before the
// input reaches the program. The host (market layer) installs a guard
// that re-evaluates each dataset's usage-control policy; a non-nil error
// aborts the call, so denied plaintext is never touched by enclave code.
type Guard func(input []byte, workingSetBytes int64) error

// Enclave is a launched program instance on a platform.
type Enclave struct {
	platform    *Platform
	program     Program
	measurement Measurement
	calls       int64
	guard       Guard
}

// SetGuard installs (or, with nil, removes) the enclave's call guard.
func (e *Enclave) SetGuard(g Guard) { e.guard = g }

// Launch builds an enclave from the program. The returned enclave's
// measurement commits to the exact code launched.
func (p *Platform) Launch(program Program) (*Enclave, error) {
	if len(program.Code) == 0 {
		return nil, errors.New("tee: empty program code")
	}
	if program.Fn == nil {
		return nil, errors.New("tee: program has no entry point")
	}
	p.enclaves++
	mEnclaveLaunches.Inc()
	return &Enclave{
		platform:    p,
		program:     program,
		measurement: program.Measure(),
	}, nil
}

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// CallResult reports the outcome and cost of one enclave call.
type CallResult struct {
	Output []byte

	// Elapsed is the real CPU time the payload took in this process.
	Elapsed time.Duration

	// Virtual is the modelled enclave execution time:
	// EcallCost + Elapsed × OverheadFactor(workingSet), which is what the
	// experiments report as "TEE time".
	Virtual simnet.Time
}

// Call executes the enclave entry point. workingSetBytes is the payload's
// memory footprint, which drives the EPC paging model.
func (e *Enclave) Call(input []byte, workingSetBytes int64) (CallResult, error) {
	if e.guard != nil {
		if err := e.guard(input, workingSetBytes); err != nil {
			mGuardDenials.Inc()
			return CallResult{}, fmt.Errorf("tee: call refused by guard: %w", err)
		}
	}
	start := time.Now()
	out, err := e.program.Fn(input)
	elapsed := time.Since(start)
	if err != nil {
		return CallResult{}, fmt.Errorf("tee: enclave call: %w", err)
	}
	e.calls++
	mEcalls.Inc()
	mEcallSeconds.Observe(elapsed.Seconds())
	factor := e.platform.cost.OverheadFactor(workingSetBytes)
	virtual := e.platform.cost.EcallCost +
		simnet.Time(float64(elapsed.Microseconds())*factor)
	return CallResult{Output: out, Elapsed: elapsed, Virtual: virtual}, nil
}

// LaunchCost returns the one-time virtual cost of creating this enclave.
func (e *Enclave) LaunchCost() simnet.Time { return e.platform.cost.CreateCost }
