package tee

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/telemetry"
)

// Sealing instrumentation: seal/unseal latency covers key derivation and
// the AES-GCM pass, the dominant cost of persisting enclave state.
var mSealSeconds = telemetry.H("tee.seal_seconds", telemetry.TimeBuckets)

// Sealed storage: AES-256-GCM under a key derived from the platform's
// device secret and the enclave measurement, reproducing SGX's
// MRENCLAVE-policy sealing — only the same code on the same machine can
// unseal, which is how executors persist intermediate state without the
// host being able to read it.

// sealKey derives the measurement-bound sealing key.
func (p *Platform) sealKey(m Measurement) []byte {
	return crypto.DeriveKey(p.sealRoot, "seal/"+m.Hex())
}

// Seal encrypts data so that only an enclave with this measurement on
// this platform can recover it. The nonce is drawn from rng.
func (e *Enclave) Seal(data []byte, rng *crypto.DRBG) ([]byte, error) {
	timer := mSealSeconds.Time()
	defer timer.Stop()
	return sealWithKey(e.platform.sealKey(e.measurement), data, rng)
}

// Unseal decrypts a blob sealed by the same (platform, measurement).
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	timer := mSealSeconds.Time()
	defer timer.Stop()
	return unsealWithKey(e.platform.sealKey(e.measurement), blob)
}

func sealWithKey(key, data []byte, rng *crypto.DRBG) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("tee: seal: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("tee: seal: %w", err)
	}
	nonce := rng.Bytes(gcm.NonceSize())
	return gcm.Seal(nonce, nonce, data, nil), nil
}

func unsealWithKey(key, blob []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("tee: unseal: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("tee: unseal: %w", err)
	}
	if len(blob) < gcm.NonceSize() {
		return nil, errors.New("tee: sealed blob too short")
	}
	nonce, ct := blob[:gcm.NonceSize()], blob[gcm.NonceSize():]
	out, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, errors.New("tee: unseal failed (wrong platform, measurement, or tampered blob)")
	}
	return out, nil
}
