package gossip

import (
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/simnet"
	"pds2/internal/telemetry"
)

func testSampler(t *testing.T, nodes, viewSize int, seed uint64) (*PeerSampler, []simnet.NodeID) {
	t.Helper()
	ids := make([]simnet.NodeID, nodes)
	for i := range ids {
		ids[i] = simnet.NodeID(i + 1)
	}
	return NewPeerSampler(ids, viewSize, crypto.NewDRBGFromUint64(seed, "sampler-test")), ids
}

// TestPeerSamplerViewStaysBounded pins the eviction side of the
// protocol: no amount of shuffling may grow a view past viewSize or let
// duplicates or self-references in.
func TestPeerSamplerViewStaysBounded(t *testing.T) {
	const viewSize = 4
	ps, ids := testSampler(t, 12, viewSize, 1)
	for round := 0; round < 500; round++ {
		ps.Shuffle(ids[round%len(ids)])
	}
	for _, n := range ids {
		view := ps.View(n)
		if len(view) > viewSize {
			t.Fatalf("node %d view has %d entries, cap %d", n, len(view), viewSize)
		}
		seen := map[simnet.NodeID]bool{}
		for _, p := range view {
			if p == n {
				t.Fatalf("node %d has itself in view", n)
			}
			if seen[p] {
				t.Fatalf("node %d has duplicate peer %d", n, p)
			}
			seen[p] = true
		}
	}
}

// TestPeerSamplerRotates pins the rotation side: with more nodes than
// view slots, repeated exchanges must cycle fresh peers through a node's
// view instead of freezing its bootstrap neighbours.
func TestPeerSamplerRotates(t *testing.T) {
	const viewSize = 4
	ps, ids := testSampler(t, 30, viewSize, 2)
	target := ids[0]
	everSeen := map[simnet.NodeID]bool{}
	for _, p := range ps.View(target) {
		everSeen[p] = true
	}
	for round := 0; round < 300; round++ {
		ps.Shuffle(ids[round%len(ids)])
		for _, p := range ps.View(target) {
			everSeen[p] = true
		}
	}
	if len(everSeen) <= viewSize {
		t.Fatalf("view never rotated: only %d distinct peers seen, view size %d", len(everSeen), viewSize)
	}
}

// TestSelectViewEvictsStalestDuplicate pins the dedup rule: when the
// merged pool holds several descriptors for one peer, the freshest copy
// (lowest age) must win.
func TestSelectViewEvictsStalestDuplicate(t *testing.T) {
	ps, _ := testSampler(t, 3, 8, 3)
	self := simnet.NodeID(99)
	pool := []peerDescriptor{
		{id: 1, age: 7},
		{id: 1, age: 2},
		{id: 1, age: 5},
		{id: 2, age: 0},
		{id: self, age: 0}, // must be dropped
	}
	view := ps.selectView(pool, self)
	if len(view) != 2 {
		t.Fatalf("view = %v, want exactly peers 1 and 2", view)
	}
	for _, d := range view {
		if d.id == self {
			t.Fatal("self survived selection")
		}
		if d.id == 1 && d.age != 2 {
			t.Fatalf("peer 1 kept age %d, want freshest copy (2)", d.age)
		}
	}
}

// TestShuffleAgesSurvivors pins aging: descriptors that survive a
// shuffle carry an incremented age, the signal later evictions use.
func TestShuffleAgesSurvivors(t *testing.T) {
	ps, ids := testSampler(t, 6, 5, 4)
	node := ids[0]
	before := map[simnet.NodeID]int{}
	for _, d := range ps.views[node] {
		before[d.id] = d.age
	}
	ps.Shuffle(node)
	for _, d := range ps.views[node] {
		if prev, ok := before[d.id]; ok && d.age != 0 && d.age < prev {
			t.Fatalf("peer %d age went backwards: %d -> %d", d.id, prev, d.age)
		}
	}
}

// TestShuffleObservesChurn checks the instrumentation: with telemetry
// on, every shuffle records one churn observation.
func TestShuffleObservesChurn(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	var start uint64
	if m, ok := telemetry.Default().Snapshot().Get("gossip.sampler.churn"); ok {
		start = m.Count
	}
	ps, ids := testSampler(t, 10, 4, 5)
	const rounds = 50
	for round := 0; round < rounds; round++ {
		ps.Shuffle(ids[round%len(ids)])
	}
	m, ok := telemetry.Default().Snapshot().Get("gossip.sampler.churn")
	if !ok {
		t.Fatal("gossip.sampler.churn not registered")
	}
	if m.Count < start+rounds {
		t.Fatalf("churn observations = %d, want >= %d", m.Count, start+rounds)
	}
}
