package gossip

import (
	"fmt"

	"pds2/internal/ml"
	"pds2/internal/simnet"
	"pds2/internal/telemetry"
)

// Gossip instrumentation. Cycle/merge timings are wall-clock CPU cost of
// the handlers (the simulated network latency is accounted separately by
// simnet); message and byte counters mirror what the wire would carry.
var (
	mGossipMsgs    = telemetry.C("gossip.messages_total")
	mGossipBytes   = telemetry.C("gossip.bytes_total")
	mGossipMerges  = telemetry.C("gossip.merges_total")
	mGossipSkipped = telemetry.C("gossip.sends_skipped_total")
	mGossipCycle   = telemetry.H("gossip.cycle_seconds", telemetry.TimeBuckets)
	logGossip      = telemetry.L("gossip")
)

// MergeRule selects how a node folds a received model into its own.
type MergeRule int

// Merge rules from the gossip-learning literature: None overwrites the
// local model (pure model walk), Average is the unweighted mean, and
// AgeWeighted weighs models by the number of examples they absorbed —
// the rule shown to dominate in [22].
const (
	MergeNone MergeRule = iota
	MergeAverage
	MergeAgeWeighted
)

// String implements fmt.Stringer.
func (r MergeRule) String() string {
	switch r {
	case MergeNone:
		return "none"
	case MergeAverage:
		return "average"
	case MergeAgeWeighted:
		return "age-weighted"
	default:
		return fmt.Sprintf("MergeRule(%d)", int(r))
	}
}

// Config parameterizes a gossip-learning run.
type Config struct {
	// Cycle is the gossip period: each node sends its model to one random
	// peer every Cycle (scaled by its capacity).
	Cycle simnet.Time

	// ModelFactory builds the initial model for each node.
	ModelFactory func() ml.Model

	// Merge selects the merge rule (default MergeAgeWeighted).
	Merge MergeRule

	// LocalSteps is the number of SGD updates performed on local data
	// after merging a received model. Each node advances a cursor through
	// its local dataset, so over many cycles all local data is used —
	// the online-update style of the original gossip-learning protocol
	// [22]. Zero selects a full pass over the local data per receive.
	LocalSteps int

	// ViewSize is the peer-sampling partial-view size (default 8).
	ViewSize int

	// Capacities optionally scales each node's gossip frequency: a node
	// with capacity 0.1 gossips 10x less often. Nil means uniform 1.0.
	// This models the heterogeneous-device scenario of [26].
	Capacities []float64

	// TokenBudget, when positive, enables token-based flow control as in
	// [26]: each node holds a token bucket refilled at its own capacity-
	// scaled rate and may only send when a token is available, so slow
	// nodes skip sends instead of queueing stale models.
	TokenBudget int

	// SendFraction in (0,1) enables model subsampling: each send carries
	// only a random fraction of the coordinates (plus the intercept and
	// age), and the receiver merges per coordinate. This is the
	// communication-compression device of the gossip-learning line of
	// work, trading per-message bytes for convergence speed. 0 or 1
	// sends full models.
	SendFraction float64
}

// node is one gossip-learning participant.
type node struct {
	id     simnet.NodeID
	model  ml.Model
	data   *ml.Dataset
	cursor int // next local example for step-limited updates
	tokens int
}

// localUpdate advances the node's SGD cursor by steps examples
// (or performs a full pass when steps <= 0).
func (n *node) localUpdate(steps int) {
	if n.data.Len() == 0 {
		return
	}
	if steps <= 0 {
		steps = n.data.Len()
	}
	for s := 0; s < steps; s++ {
		i := n.cursor % n.data.Len()
		n.model.Update(n.data.X[i], n.data.Y[i])
		n.cursor++
	}
}

// modelMsg is the gossip payload: a snapshot of the sender's model.
type modelMsg struct {
	model ml.Model
}

// sparseMsg is the subsampled gossip payload: a random subset of
// coordinates plus intercept and age.
type sparseMsg struct {
	idx       []int
	vals      []float64
	intercept float64
	age       uint64
}

// wireSize returns the simulated byte size: 4 bytes per index, 8 per
// value, plus intercept and age.
func (m sparseMsg) wireSize() int { return 4*len(m.idx) + 8*len(m.vals) + 16 }

// Runner drives a gossip-learning simulation over a simnet.Network.
type Runner struct {
	cfg     Config
	net     *simnet.Network
	nodes   []*node
	sampler *PeerSampler
}

// NewRunner registers one gossip node per dataset partition on the
// network. Each node trains on parts[i] and gossips its model.
func NewRunner(net *simnet.Network, parts []*ml.Dataset, cfg Config) (*Runner, error) {
	if cfg.ModelFactory == nil {
		return nil, fmt.Errorf("gossip: ModelFactory is required")
	}
	if cfg.Cycle <= 0 {
		return nil, fmt.Errorf("gossip: Cycle must be positive")
	}
	if cfg.Capacities != nil && len(cfg.Capacities) != len(parts) {
		return nil, fmt.Errorf("gossip: %d capacities for %d nodes", len(cfg.Capacities), len(parts))
	}
	r := &Runner{cfg: cfg, net: net}
	ids := make([]simnet.NodeID, len(parts))
	for i, part := range parts {
		n := &node{model: cfg.ModelFactory(), data: part, tokens: cfg.TokenBudget}
		n.id = net.AddNode(simnet.HandlerFunc(func(now simnet.Time, msg simnet.Message) {
			r.onReceive(n, msg)
		}))
		ids[i] = n.id
		r.nodes = append(r.nodes, n)
	}
	r.sampler = NewPeerSampler(ids, cfg.ViewSize, net.Rng().Fork("gossip-sampler"))
	return r, nil
}

// Start schedules the gossip cycles. Nodes warm their models with one
// pass over local data before the first send, as in [22].
func (r *Runner) Start() {
	for i, n := range r.nodes {
		n := n
		ml.TrainEpochs(n.model, n.data, 1)
		cycle := r.cfg.Cycle
		capacity := 1.0
		if r.cfg.Capacities != nil {
			capacity = r.cfg.Capacities[i]
		}
		if capacity <= 0 {
			capacity = 0.01
		}
		cycle = simnet.Time(float64(cycle) / capacity)
		// Desynchronize first sends uniformly across one cycle.
		start := simnet.Time(r.net.Rng().Intn(int(cycle) + 1))
		r.net.Every(start, cycle, func(now simnet.Time) bool {
			r.onCycle(n)
			return true
		})
		// Token refill at the node's own pace (one token per cycle).
		if r.cfg.TokenBudget > 0 {
			r.net.Every(start, cycle, func(now simnet.Time) bool {
				if n.tokens < r.cfg.TokenBudget {
					n.tokens++
				}
				return true
			})
		}
	}
}

// onCycle sends the node's current model to a random peer.
func (r *Runner) onCycle(n *node) {
	if !r.net.Online(n.id) {
		return
	}
	if r.cfg.TokenBudget > 0 {
		if n.tokens <= 0 {
			mGossipSkipped.Inc()
			return
		}
		n.tokens--
	}
	timer := mGossipCycle.Time()
	defer timer.Stop()
	r.sampler.Shuffle(n.id)
	peer, ok := r.sampler.Sample(n.id)
	if !ok {
		logGossip.Warn("no peer to gossip with", telemetry.Int("node", int(n.id)))
		return
	}
	// Each send roots a fresh trace; the receiver's merge span parents
	// under it via the message's carried context.
	span := telemetry.StartSpan("gossip.send", telemetry.SpanContext{})
	span.SetAttr("from", fmt.Sprintf("%d", n.id))
	span.SetAttr("to", fmt.Sprintf("%d", peer))
	defer span.End()
	if f := r.cfg.SendFraction; f > 0 && f < 1 {
		w := n.model.Weights()
		k := int(f * float64(len(w)))
		if k < 1 {
			k = 1
		}
		perm := r.net.Rng().Perm(len(w))[:k]
		msg := sparseMsg{
			idx:       perm,
			vals:      make([]float64, k),
			intercept: n.model.Intercept(),
			age:       n.model.Age(),
		}
		for i, j := range perm {
			msg.vals[i] = w[j]
		}
		r.net.SendCtx(n.id, peer, msg, msg.wireSize(), span.Context())
		mGossipMsgs.Inc()
		mGossipBytes.Add(uint64(msg.wireSize()))
		logGossip.Debug("sent sparse model",
			telemetry.Int("from", int(n.id)), telemetry.Int("to", int(peer)),
			telemetry.Int("coords", len(msg.idx)), telemetry.Int("bytes", msg.wireSize()))
		return
	}
	snapshot := n.model.Clone()
	r.net.SendCtx(n.id, peer, modelMsg{model: snapshot}, snapshot.WireSize(), span.Context())
	mGossipMsgs.Inc()
	mGossipBytes.Add(uint64(snapshot.WireSize()))
	logGossip.Debug("sent model",
		telemetry.Int("from", int(n.id)), telemetry.Int("to", int(peer)),
		telemetry.U64("age", snapshot.Age()), telemetry.Int("bytes", snapshot.WireSize()))
}

// onReceive merges the incoming model and retrains on local data.
func (r *Runner) onReceive(n *node, msg simnet.Message) {
	mGossipMerges.Inc()
	// Continue the sender's trace: the merge span parents under the
	// gossip.send span whose context rode the message envelope.
	span := telemetry.StartSpan("gossip.merge", msg.Trace)
	span.SetAttr("node", fmt.Sprintf("%d", n.id))
	defer span.End()
	logGossip.Debug("merging model",
		telemetry.Int("node", int(n.id)), telemetry.Int("from", int(msg.From)),
		telemetry.Str("rule", r.cfg.Merge.String()))
	if sp, ok := msg.Payload.(sparseMsg); ok {
		r.mergeSparse(n, sp)
		n.localUpdate(r.cfg.LocalSteps)
		return
	}
	in, ok := msg.Payload.(modelMsg)
	if !ok {
		logGossip.Warn("unexpected payload type", telemetry.Int("node", int(n.id)))
		return
	}
	switch r.cfg.Merge {
	case MergeNone:
		n.model = in.model.Clone()
	case MergeAverage:
		// Ignore merge errors (type mismatch cannot happen within a run).
		_ = n.model.MergeFrom(in.model, 0.5, 0.5)
	case MergeAgeWeighted:
		selfAge, otherAge := float64(n.model.Age()), float64(in.model.Age())
		total := selfAge + otherAge
		if total == 0 {
			_ = n.model.MergeFrom(in.model, 0.5, 0.5)
		} else {
			_ = n.model.MergeFrom(in.model, selfAge/total, otherAge/total)
		}
	}
	n.localUpdate(r.cfg.LocalSteps)
}

// mergeSparse folds a subsampled model into the local one, applying the
// configured merge rule per received coordinate only.
func (r *Runner) mergeSparse(n *node, in sparseMsg) {
	w := n.model.Weights()
	selfW, otherW := 0.5, 0.5
	switch r.cfg.Merge {
	case MergeNone:
		selfW, otherW = 0, 1
	case MergeAgeWeighted:
		total := float64(n.model.Age()) + float64(in.age)
		if total > 0 {
			selfW = float64(n.model.Age()) / total
			otherW = float64(in.age) / total
		}
	}
	for i, j := range in.idx {
		if j < 0 || j >= len(w) {
			continue
		}
		w[j] = selfW*w[j] + otherW*in.vals[i]
	}
	n.model.SetIntercept(selfW*n.model.Intercept() + otherW*in.intercept)
	// Age advances proportionally to the received fraction of the model,
	// so heavily subsampled exchanges do not inflate the age statistic.
	frac := float64(len(in.idx)) / float64(len(w))
	merged := selfW*float64(n.model.Age()) + otherW*float64(in.age)
	newAge := (1-frac)*float64(n.model.Age()) + frac*merged
	if lm, ok := n.model.(*ml.LogisticModel); ok {
		lm.SetAge(uint64(newAge))
	}
}

// HealthCheck reports gossip connectivity: the number of online peers
// reachable from any node's partial view. Zero online peers means the
// overlay is partitioned from this runner's perspective — Degraded, not
// Unhealthy, because churned peers may come back.
func (r *Runner) HealthCheck() telemetry.CheckResult {
	online := 0
	for _, n := range r.nodes {
		if r.net.Online(n.id) {
			online++
		}
	}
	// A node gossips with peers other than itself; connectivity needs at
	// least two live nodes.
	if online <= 1 {
		return telemetry.DegradedResult(fmt.Sprintf("%d online gossip peers", online))
	}
	return telemetry.OK(fmt.Sprintf("%d/%d peers online", online, len(r.nodes)))
}

// Models returns the current model of every node (live references).
func (r *Runner) Models() []ml.Model {
	out := make([]ml.Model, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.model
	}
	return out
}

// NodeIDs returns the simnet IDs of the gossip nodes, in partition order.
func (r *Runner) NodeIDs() []simnet.NodeID {
	out := make([]simnet.NodeID, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.id
	}
	return out
}

// EvalPoint is one sample of training progress.
type EvalPoint struct {
	T         simnet.Time
	MeanError float64 // mean 0-1 error across nodes
	MinError  float64
	MaxError  float64
	BytesSent int64 // cumulative network bytes at sample time
}

// Evaluate computes the current error statistics against a test set.
func (r *Runner) Evaluate(test *ml.Dataset) EvalPoint {
	p := EvalPoint{T: r.net.Now(), MinError: 1, BytesSent: r.net.Stats().BytesSent}
	if len(r.nodes) == 0 {
		return p
	}
	var sum float64
	for _, n := range r.nodes {
		e := ml.ZeroOneError(n.model, test)
		sum += e
		if e < p.MinError {
			p.MinError = e
		}
		if e > p.MaxError {
			p.MaxError = e
		}
	}
	p.MeanError = sum / float64(len(r.nodes))
	return p
}

// Track schedules periodic evaluation against test and returns a pointer
// to the growing history slice, which is safe to read after net.Run
// returns.
func (r *Runner) Track(test *ml.Dataset, every simnet.Time) *[]EvalPoint {
	history := &[]EvalPoint{}
	r.net.Every(every, every, func(now simnet.Time) bool {
		*history = append(*history, r.Evaluate(test))
		return true
	})
	return history
}
