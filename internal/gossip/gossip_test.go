package gossip

import (
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/ml"
	"pds2/internal/simnet"
)

// testSetup builds a 20-node gossip run over an IID partition.
func testSetup(t *testing.T, merge MergeRule, seed uint64) (*simnet.Network, *Runner, *ml.Dataset) {
	t.Helper()
	rng := crypto.NewDRBGFromUint64(seed, "gossip-test")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 2000, Dim: 10, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.25, rng)
	parts := train.PartitionIID(20, rng)

	net := simnet.New(simnet.Config{Seed: seed, Latency: simnet.UniformLatency{Min: 10 * simnet.Millisecond, Max: 100 * simnet.Millisecond}})
	r, err := NewRunner(net, parts, Config{
		Cycle:        10 * simnet.Second,
		ModelFactory: func() ml.Model { return ml.NewLogisticModel(10, 1e-3) },
		Merge:        merge,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, r, test
}

func TestGossipConvergesIID(t *testing.T) {
	net, r, test := testSetup(t, MergeAgeWeighted, 1)
	r.Start()
	before := r.Evaluate(test)
	net.Run(600 * simnet.Second)
	after := r.Evaluate(test)
	if after.MeanError >= before.MeanError {
		t.Fatalf("no improvement: %v -> %v", before.MeanError, after.MeanError)
	}
	if after.MeanError > 0.15 {
		t.Fatalf("gossip mean error = %v, want < 0.15", after.MeanError)
	}
	if net.Stats().BytesSent == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestGossipConvergesNonIID(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(2, "gossip-test")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 2000, Dim: 10}, rng)
	train, test := data.TrainTestSplit(0.25, rng)
	parts := train.PartitionByLabel(20, rng) // worst-case 1 class per node

	net := simnet.New(simnet.Config{Seed: 2})
	r, err := NewRunner(net, parts, Config{
		Cycle:        10 * simnet.Second,
		ModelFactory: func() ml.Model { return ml.NewLogisticModel(10, 1e-3) },
		Merge:        MergeAgeWeighted,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	net.Run(900 * simnet.Second)
	got := r.Evaluate(test)
	if got.MeanError > 0.25 {
		t.Fatalf("non-IID gossip error = %v", got.MeanError)
	}
}

func TestGossipSurvivesChurn(t *testing.T) {
	net, r, test := testSetup(t, MergeAgeWeighted, 3)
	// 50% average availability.
	trace := simnet.GenerateChurn(20, 900*simnet.Second, 60*simnet.Second, 60*simnet.Second,
		crypto.NewDRBGFromUint64(3, "churn"))
	trace.Apply(net)
	r.Start()
	net.Run(900 * simnet.Second)
	got := r.Evaluate(test)
	if got.MeanError > 0.3 {
		t.Fatalf("gossip under churn error = %v", got.MeanError)
	}
}

func TestGossipTrackHistory(t *testing.T) {
	net, r, test := testSetup(t, MergeAgeWeighted, 4)
	hist := r.Track(test, 60*simnet.Second)
	r.Start()
	net.Run(300 * simnet.Second)
	if len(*hist) != 5 {
		t.Fatalf("history samples = %d, want 5", len(*hist))
	}
	for i := 1; i < len(*hist); i++ {
		if (*hist)[i].BytesSent < (*hist)[i-1].BytesSent {
			t.Fatal("bytes counter not monotone")
		}
	}
	last := (*hist)[len(*hist)-1]
	if last.MinError > last.MeanError || last.MeanError > last.MaxError {
		t.Fatalf("error stats inconsistent: %+v", last)
	}
}

func TestGossipMergeRulesAllConverge(t *testing.T) {
	for _, merge := range []MergeRule{MergeNone, MergeAverage, MergeAgeWeighted} {
		net, r, test := testSetup(t, merge, 5)
		r.Start()
		net.Run(600 * simnet.Second)
		if got := r.Evaluate(test); got.MeanError > 0.2 {
			t.Fatalf("merge=%v error=%v", merge, got.MeanError)
		}
	}
}

func TestGossipTokenBudgetLimitsTraffic(t *testing.T) {
	run := func(budget int) int64 {
		net, r, _ := testSetup(t, MergeAgeWeighted, 6)
		r.cfg.TokenBudget = budget
		for _, n := range r.nodes {
			n.tokens = budget
		}
		r.Start()
		net.Run(300 * simnet.Second)
		return net.Stats().MessagesSent
	}
	unlimited := run(0)
	limited := run(1)
	if limited > unlimited {
		t.Fatalf("token bucket increased traffic: %d > %d", limited, unlimited)
	}
}

func TestGossipHeterogeneousCapacities(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(7, "gossip-test")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 1000, Dim: 5}, rng)
	parts := data.PartitionIID(10, rng)
	caps := make([]float64, 10)
	for i := range caps {
		caps[i] = 1
	}
	caps[0], caps[1] = 0.1, 0.1 // two slow nodes

	net := simnet.New(simnet.Config{Seed: 7})
	r, err := NewRunner(net, parts, Config{
		Cycle:        10 * simnet.Second,
		ModelFactory: func() ml.Model { return ml.NewLogisticModel(5, 1e-3) },
		Merge:        MergeAgeWeighted,
		Capacities:   caps,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	net.Run(600 * simnet.Second)

	// Slow nodes must have sent roughly 10x fewer messages.
	ids := r.NodeIDs()
	slow := net.NodeStats(ids[0]).MessagesSent
	fast := net.NodeStats(ids[5]).MessagesSent
	if slow*5 > fast {
		t.Fatalf("slow node sent %d, fast %d", slow, fast)
	}
}

func TestGossipConfigValidation(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 1})
	parts := []*ml.Dataset{{}}
	if _, err := NewRunner(net, parts, Config{Cycle: simnet.Second}); err == nil {
		t.Fatal("missing factory accepted")
	}
	if _, err := NewRunner(net, parts, Config{ModelFactory: func() ml.Model { return ml.NewLogisticModel(1, 0) }}); err == nil {
		t.Fatal("zero cycle accepted")
	}
	if _, err := NewRunner(net, parts, Config{
		Cycle:        simnet.Second,
		ModelFactory: func() ml.Model { return ml.NewLogisticModel(1, 0) },
		Capacities:   []float64{1, 1},
	}); err == nil {
		t.Fatal("capacity length mismatch accepted")
	}
}

func TestPeerSamplerViewsExcludeSelf(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(8, "ps")
	nodes := make([]simnet.NodeID, 30)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	ps := NewPeerSampler(nodes, 8, rng)
	for _, n := range nodes {
		view := ps.View(n)
		if len(view) == 0 || len(view) > 8 {
			t.Fatalf("view size %d", len(view))
		}
		seen := map[simnet.NodeID]bool{}
		for _, p := range view {
			if p == n {
				t.Fatal("view contains self")
			}
			if seen[p] {
				t.Fatal("view contains duplicate")
			}
			seen[p] = true
		}
	}
}

func TestPeerSamplerShuffleKeepsInvariants(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(9, "ps")
	nodes := make([]simnet.NodeID, 20)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	ps := NewPeerSampler(nodes, 5, rng)
	for round := 0; round < 200; round++ {
		ps.Shuffle(nodes[rng.Intn(len(nodes))])
	}
	for _, n := range nodes {
		view := ps.View(n)
		if len(view) > 5 {
			t.Fatalf("view grew to %d", len(view))
		}
		for _, p := range view {
			if p == n {
				t.Fatal("self in view after shuffles")
			}
		}
	}
}

func TestPeerSamplerSampleEmptyView(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(10, "ps")
	ps := NewPeerSampler([]simnet.NodeID{0}, 4, rng) // single node: empty view
	if _, ok := ps.Sample(0); ok {
		t.Fatal("sample from empty view succeeded")
	}
}

func TestGossipSubsamplingConvergesWithFewerBytes(t *testing.T) {
	run := func(fraction float64) (float64, int64) {
		net, r, test := testSetup(t, MergeAgeWeighted, 11)
		r.cfg.SendFraction = fraction
		r.Start()
		net.Run(900 * simnet.Second)
		return r.Evaluate(test).MeanError, net.Stats().BytesSent
	}
	fullErr, fullBytes := run(0)
	subErr, subBytes := run(0.25)
	// At dim 10, the 16-byte header bounds the saving to ~2.4x.
	if subBytes*2 > fullBytes {
		t.Fatalf("subsampling did not reduce traffic: %d vs %d bytes", subBytes, fullBytes)
	}
	// Subsampled gossip must still learn (allow a modest error gap).
	if subErr > fullErr+0.15 || subErr > 0.3 {
		t.Fatalf("subsampled gossip error = %v (full %v)", subErr, fullErr)
	}
}

func TestGossipSubsamplingSingleCoordinateFloor(t *testing.T) {
	// Even an absurdly small fraction sends at least one coordinate and
	// keeps running.
	net, r, test := testSetup(t, MergeAverage, 12)
	r.cfg.SendFraction = 0.001
	r.Start()
	net.Run(300 * simnet.Second)
	if p := r.Evaluate(test); p.MeanError > 0.6 {
		t.Fatalf("degenerate subsampling diverged: %v", p.MeanError)
	}
	if net.Stats().MessagesSent == 0 {
		t.Fatal("no messages sent")
	}
}

func TestGossipHealsAfterPartition(t *testing.T) {
	// Split-brain: the overlay is partitioned into two halves for the
	// first third of the run; models diverge per island, then the
	// partition heals and the population converges anyway.
	net, r, test := testSetup(t, MergeAgeWeighted, 13)
	ids := r.NodeIDs()
	half := len(ids) / 2
	net.SetPartition(ids[:half], ids[half:])
	net.After(300*simnet.Second, func(simnet.Time) { net.ClearPartition() })

	r.Start()
	net.Run(300 * simnet.Second)
	split := r.Evaluate(test)
	net.Run(1200 * simnet.Second)
	healed := r.Evaluate(test)

	if healed.MeanError > 0.15 {
		t.Fatalf("error after healing = %v", healed.MeanError)
	}
	if healed.MeanError > split.MeanError {
		t.Fatalf("no improvement after healing: %v -> %v", split.MeanError, healed.MeanError)
	}
	// During the partition some traffic must have been dropped.
	if net.Stats().MessagesDropped == 0 {
		t.Fatal("partition dropped nothing")
	}
}
