// Package gossip implements gossip learning, the decentralized
// aggregation technique PDS² selects for ML workloads (§III-C): "each
// node randomly sends and receives model updates from others and merges
// them with its local updates". The implementation follows the
// gossip-learning line of work the paper cites — Ormándi et al. [22] for
// the protocol and age-weighted merge, Hegedűs et al. [25] for the
// evaluation methodology, and Giaretta & Girdzijauskas [26] for
// token-based flow control in heterogeneous networks.
package gossip

import (
	"pds2/internal/crypto"
	"pds2/internal/simnet"
	"pds2/internal/telemetry"
)

// mSamplerChurn observes, per view exchange, how many of the node's view
// entries were replaced — the overlay-rotation rate that keeps the
// gossip graph connected under churn.
var mSamplerChurn = telemetry.H("gossip.sampler.churn", telemetry.CountBuckets)

// peerDescriptor is one entry of a partial view: a peer and the age of
// the information about it, in gossip cycles.
type peerDescriptor struct {
	id  simnet.NodeID
	age int
}

// PeerSampler provides each node with a stream of gossip partners. The
// implementation is a NewsCast-style peer-sampling service: each node
// keeps a bounded partial view and periodically swaps halves of it with a
// random neighbour, which keeps the overlay connected under churn without
// any global membership oracle.
type PeerSampler struct {
	viewSize int
	views    map[simnet.NodeID][]peerDescriptor
	rng      *crypto.DRBG
}

// NewPeerSampler bootstraps views for the given nodes: every node starts
// with viewSize random other nodes, the usual "tracker bootstrap".
func NewPeerSampler(nodes []simnet.NodeID, viewSize int, rng *crypto.DRBG) *PeerSampler {
	if viewSize < 1 {
		viewSize = 8
	}
	ps := &PeerSampler{
		viewSize: viewSize,
		views:    make(map[simnet.NodeID][]peerDescriptor, len(nodes)),
		rng:      rng,
	}
	for _, n := range nodes {
		view := make([]peerDescriptor, 0, viewSize)
		for len(view) < viewSize && len(view) < len(nodes)-1 {
			p := nodes[rng.Intn(len(nodes))]
			if p == n || containsPeer(view, p) {
				continue
			}
			view = append(view, peerDescriptor{id: p})
		}
		ps.views[n] = view
	}
	return ps
}

func containsPeer(view []peerDescriptor, id simnet.NodeID) bool {
	for _, d := range view {
		if d.id == id {
			return true
		}
	}
	return false
}

// Sample returns a random peer from node's current view, or (0, false)
// when the view is empty.
func (ps *PeerSampler) Sample(node simnet.NodeID) (simnet.NodeID, bool) {
	view := ps.views[node]
	if len(view) == 0 {
		return 0, false
	}
	return view[ps.rng.Intn(len(view))].id, true
}

// Shuffle performs one view-exchange step for node with a random
// neighbour: both sides age their descriptors, pool their views together
// with fresh self-descriptors, and draw new views as *random* subsets of
// the pool (Cyclon-style survivor selection). Randomized survivors keep
// the overlay close to a uniform random graph; deterministic
// freshest-first selection would hand both partners identical views and
// collapse the overlay into isolated clusters. The exchange is modelled
// without network traffic: view entries are tiny compared to models, and
// the experiments account model bytes only.
func (ps *PeerSampler) Shuffle(node simnet.NodeID) {
	partner, ok := ps.Sample(node)
	if !ok {
		return
	}
	before := ps.views[node]
	wasInView := make(map[simnet.NodeID]bool, len(before))
	for _, d := range before {
		wasInView[d.id] = true
	}
	for i := range ps.views[node] {
		ps.views[node][i].age++
	}
	merged := append(append([]peerDescriptor{}, ps.views[node]...), ps.views[partner]...)
	merged = append(merged, peerDescriptor{id: partner}, peerDescriptor{id: node})
	ps.views[node] = ps.selectView(merged, node)
	ps.views[partner] = ps.selectView(merged, partner)
	var churned int
	for _, d := range ps.views[node] {
		if !wasInView[d.id] {
			churned++
		}
	}
	mSamplerChurn.Observe(float64(churned))
}

// selectView draws up to viewSize distinct random descriptors (freshest
// copy of each peer wins), excluding self.
func (ps *PeerSampler) selectView(descs []peerDescriptor, self simnet.NodeID) []peerDescriptor {
	// Deduplicate, keeping the freshest copy of each peer.
	freshest := make(map[simnet.NodeID]int, len(descs))
	pool := make([]peerDescriptor, 0, len(descs))
	for _, d := range descs {
		if d.id == self {
			continue
		}
		if i, ok := freshest[d.id]; ok {
			if d.age < pool[i].age {
				pool[i] = d
			}
			continue
		}
		freshest[d.id] = len(pool)
		pool = append(pool, d)
	}
	ps.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > ps.viewSize {
		pool = pool[:ps.viewSize]
	}
	return pool
}

// View returns a copy of node's current view, for tests and diagnostics.
func (ps *PeerSampler) View(node simnet.NodeID) []simnet.NodeID {
	view := ps.views[node]
	out := make([]simnet.NodeID, len(view))
	for i, d := range view {
		out[i] = d.id
	}
	return out
}
