package policy

import (
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// EncodePolicySet builds the EvPolicySet event payload.
func EncodePolicySet(dataID crypto.Digest, owner identity.Address, pol []byte) []byte {
	return contract.NewEncoder().Digest(dataID).Address(owner).Blob(pol).Bytes()
}

// DecodePolicySet inverts EncodePolicySet.
func DecodePolicySet(b []byte) (dataID crypto.Digest, owner identity.Address, pol []byte, err error) {
	d := contract.NewDecoder(b)
	if dataID, err = d.Digest(); err != nil {
		return dataID, owner, nil, fmt.Errorf("policy: decode set event: %w", err)
	}
	if owner, err = d.Address(); err != nil {
		return dataID, owner, nil, fmt.Errorf("policy: decode set event: %w", err)
	}
	if pol, err = d.Blob(); err != nil {
		return dataID, owner, nil, fmt.Errorf("policy: decode set event: %w", err)
	}
	if err = d.Done(); err != nil {
		return dataID, owner, nil, fmt.Errorf("policy: decode set event: %w", err)
	}
	return dataID, owner, pol, nil
}

// ReplayReport summarizes an offline re-derivation of a chain's policy
// decision log.
type ReplayReport struct {
	PoliciesSet int // PolicySet events seen
	Programs    int // PolicyCodeDeployed events seen
	Decisions   int // PolicyDecision events seen
	Allows      int
	Denies      int

	// Mismatches are decisions whose logged reason code differs from
	// re-running Evaluate on the recorded request against the policy in
	// force, or whose recorded invocation count drifts from the count
	// derivable from prior admission allows. Any entry means the chain's
	// enforcement was inconsistent.
	Mismatches []string

	// UnexplainedDenies are admission- or enclave-layer denials that
	// were neither determinable at the dataset's most recent match-time
	// decision (same code under the match-time policy) nor explained by
	// a policy mutation in between. Any entry means a later layer
	// invented a denial the pipeline could not have predicted.
	UnexplainedDenies []string
}

// Err folds the report into a single error, nil when clean.
func (r *ReplayReport) Err() error {
	if len(r.Mismatches) == 0 && len(r.UnexplainedDenies) == 0 {
		return nil
	}
	return fmt.Errorf("policy replay: %d mismatches, %d unexplained late denies (first: %s)",
		len(r.Mismatches), len(r.UnexplainedDenies), firstOf(r.Mismatches, r.UnexplainedDenies))
}

func firstOf(lists ...[]string) string {
	for _, l := range lists {
		if len(l) > 0 {
			return l[0]
		}
	}
	return ""
}

// policyVersion is one entry in a dataset's policy history during replay.
type policyVersion struct {
	index int // event-log index of the PolicySet
	pol   *Policy
}

// ReplayDecisions re-derives a chain's policy decision log from its flat
// event stream (block order). It maintains each dataset's policy history
// from PolicySet events and an invocation counter from admission-layer
// allows, re-evaluates every PolicyDecision record, and cross-checks two
// invariants:
//
//  1. consistency — each logged reason code equals Evaluate(policy in
//     force, recorded request), and the recorded invocation count equals
//     the count derivable from prior admission allows;
//  2. late-deny precedence — every deny at admission or enclave layer
//     was either already checkable at the dataset's most recent
//     match-time decision (the match-time policy yields the same code
//     for the denied request) or a policy mutation landed in between.
func ReplayDecisions(events []ledger.Event) ReplayReport {
	var rep ReplayReport
	history := make(map[crypto.Digest][]policyVersion)
	uses := make(map[crypto.Digest]uint64)
	lastMatch := make(map[crypto.Digest]int) // dataID → policy-version count at last match decision
	// Datasets governed by deployed policy bytecode. Their decision
	// codes come from program execution — possibly over program state no
	// event stream carries — so the declarative re-derivation below
	// cannot apply; re-deriving those codes takes a full chain replay
	// through the reference-interpreter runtime. The engine-independent
	// invariants (counter derivability, admission consumption) still
	// hold and stay checked.
	programmed := make(map[crypto.Digest]bool)

	for i, ev := range events {
		switch ev.Topic {
		case EvPolicyCode:
			dataID, _, _, err := DecodePolicySet(ev.Data)
			if err != nil {
				rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("event %d: %v", i, err))
				continue
			}
			programmed[dataID] = true
			rep.Programs++

		case EvPolicySet:
			dataID, _, blob, err := DecodePolicySet(ev.Data)
			if err != nil {
				rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("event %d: %v", i, err))
				continue
			}
			pol, err := Decode(blob)
			if err != nil {
				rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("event %d: %v", i, err))
				continue
			}
			history[dataID] = append(history[dataID], policyVersion{index: i, pol: pol})
			rep.PoliciesSet++

		case EvPolicyDecision:
			rec, err := DecodeDecisionRecord(ev.Data)
			if err != nil {
				rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("event %d: %v", i, err))
				continue
			}
			rep.Decisions++
			versions := history[rec.DataID]
			var current *Policy
			if len(versions) > 0 {
				current = versions[len(versions)-1].pol
			}
			// Invariant 1a: recorded invocation count matches the
			// derivable one.
			if rec.Invocations != uses[rec.DataID] {
				rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
					"event %d: %s %s decision recorded %d invocations, replay derives %d",
					i, rec.DataID.Short(), rec.Layer, rec.Invocations, uses[rec.DataID]))
			}
			// Invariant 1b: the logged code re-derives from the policy in
			// force. Evaluate with the derived count so counter drift
			// cannot mask a code mismatch. Program-governed datasets are
			// exempt: their codes re-derive only via chain replay.
			req := rec.Request()
			req.Invocations = uses[rec.DataID]
			if got := Evaluate(current, req); !programmed[rec.DataID] && got.Code != rec.Code {
				rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
					"event %d: %s %s decision logged %q, replay evaluates %q",
					i, rec.DataID.Short(), rec.Layer, rec.Code, got.Code))
			}
			if rec.Allowed() {
				rep.Allows++
				if rec.Layer == LayerAdmission {
					uses[rec.DataID]++ // each admission allow is one consumption
				}
			} else {
				rep.Denies++
				// Invariant 2: late denies must trace back to match.
				// Program verdicts may depend on program state, so the
				// match-time re-evaluation only applies to declarative
				// datasets.
				if rec.Layer != LayerMatch && !programmed[rec.DataID] {
					if vAtMatch, matched := lastMatch[rec.DataID]; matched {
						mutated := len(versions) > vAtMatch
						if !mutated {
							var matchPol *Policy
							if vAtMatch > 0 {
								matchPol = versions[vAtMatch-1].pol
							}
							if got := Evaluate(matchPol, req); got.Code != rec.Code {
								rep.UnexplainedDenies = append(rep.UnexplainedDenies, fmt.Sprintf(
									"event %d: %s deny %q at %s not checkable at match time (match-policy yields %q) and no mutation in between",
									i, rec.DataID.Short(), rec.Code, rec.Layer, got.Code))
							}
						}
					}
				}
			}
			if rec.Layer == LayerMatch {
				lastMatch[rec.DataID] = len(versions)
			}
		}
	}
	return rep
}
