// Package policy implements PDS²'s per-dataset usage-control policies.
//
// A Policy is a small declarative contract a data owner attaches to a
// dataset registration: which computation classes may run, the minimum
// aggregation set size any computation must reach, an expiry height, the
// purposes the owner consents to, and a consumption cap. Policies are
// machine-checkable ("YOU SHALL NOT COMPUTE"-style): evaluation is a pure
// function of the policy and a Request describing the attempted
// computation, so the exact same check runs at all three enforcement
// layers — match time in the market, admission time in the workload
// contract, and inside the simulated TEE before the enclave touches
// plaintext — and can be replayed offline from the chain's decision log.
//
// Every evaluation yields a Decision with a stable machine-readable
// reason code; on-chain, each decision is emitted as a PolicyDecision
// event so pds2-audit (and the proptest auditor) can re-derive the whole
// log and verify no computation ever slipped past its dataset's policy.
package policy

import (
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// Enforcement layers, in pipeline order. Each decision records the layer
// it was taken at; the audit replay checks that a deny at a later layer
// was already determinable at match time unless the policy was mutated
// in between.
const (
	LayerMatch     = "match"     // provider-side matching, before certs are issued
	LayerAdmission = "admission" // workload contract, before a registration commits
	LayerEnclave   = "enclave"   // inside the TEE host, before plaintext reaches the program
)

// Stable decision reason codes. These are wire format: they appear in
// chain events, API error envelopes and audit reports, and must never be
// renumbered or renamed.
const (
	CodeOK               = "ok"
	CodeExpired          = "policy_expired"
	CodeClassForbidden   = "class_forbidden"
	CodePurposeMismatch  = "purpose_mismatch"
	CodeAggregationFloor = "aggregation_floor"
	CodeExhausted        = "invocations_exhausted"
)

// Clause names identify which policy field produced a denial; they are
// surfaced in the API error envelope's details object.
const (
	ClauseClasses     = "allowed_classes"
	ClauseAggregation = "min_aggregation"
	ClauseExpiry      = "expiry_height"
	ClausePurposes    = "purposes"
	ClauseInvocations = "max_invocations"
)

// Limits keeping on-chain policies small.
const (
	maxListEntries = 64
	maxStringLen   = 128
)

// Policy is a dataset's usage-control contract. The zero value is the
// fully permissive policy (every clause disabled).
type Policy struct {
	// AllowedClasses whitelists computation classes ("train",
	// "aggregate", "stats", …). Empty means any class is permitted.
	AllowedClasses []string

	// MinAggregation is the smallest aggregation set (number of data
	// items in the computation batch) the owner consents to — the
	// k-anonymity-style floor. Zero disables the clause.
	MinAggregation uint64

	// ExpiryHeight is the last ledger height at which the policy grants
	// access; evaluations at greater heights are denied. Zero means the
	// policy never expires.
	ExpiryHeight uint64

	// Purposes whitelists consented purpose strings ("research", …).
	// Empty means any purpose, including none.
	Purposes []string

	// MaxInvocations caps how many workload admissions may consume the
	// dataset. Zero means unlimited.
	MaxInvocations uint64
}

// IsZero reports whether every clause is disabled.
func (p *Policy) IsZero() bool {
	return len(p.AllowedClasses) == 0 && p.MinAggregation == 0 &&
		p.ExpiryHeight == 0 && len(p.Purposes) == 0 && p.MaxInvocations == 0
}

// Validate checks structural sanity of a policy before it is accepted
// on-chain.
func (p *Policy) Validate() error {
	if len(p.AllowedClasses) > maxListEntries || len(p.Purposes) > maxListEntries {
		return fmt.Errorf("policy: list clause exceeds %d entries", maxListEntries)
	}
	for _, c := range p.AllowedClasses {
		if c == "" || len(c) > maxStringLen {
			return fmt.Errorf("policy: invalid computation class %q", c)
		}
	}
	for _, s := range p.Purposes {
		if s == "" || len(s) > maxStringLen {
			return fmt.Errorf("policy: invalid purpose %q", s)
		}
	}
	return nil
}

// Encode serializes the policy with the contract ABI.
func (p *Policy) Encode() []byte {
	e := contract.NewEncoder().Uint64(uint64(len(p.AllowedClasses)))
	for _, c := range p.AllowedClasses {
		e.String(c)
	}
	e.Uint64(p.MinAggregation).Uint64(p.ExpiryHeight)
	e.Uint64(uint64(len(p.Purposes)))
	for _, s := range p.Purposes {
		e.String(s)
	}
	return e.Uint64(p.MaxInvocations).Bytes()
}

// Decode inverts Encode.
func Decode(b []byte) (*Policy, error) {
	d := contract.NewDecoder(b)
	var p Policy
	n, err := d.Uint64()
	if err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	if n > maxListEntries {
		return nil, fmt.Errorf("policy: decode: %d classes exceed limit", n)
	}
	for i := uint64(0); i < n; i++ {
		c, err := d.String()
		if err != nil {
			return nil, fmt.Errorf("policy: decode: %w", err)
		}
		p.AllowedClasses = append(p.AllowedClasses, c)
	}
	if p.MinAggregation, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	if p.ExpiryHeight, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	if n, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	if n > maxListEntries {
		return nil, fmt.Errorf("policy: decode: %d purposes exceed limit", n)
	}
	for i := uint64(0); i < n; i++ {
		s, err := d.String()
		if err != nil {
			return nil, fmt.Errorf("policy: decode: %w", err)
		}
		p.Purposes = append(p.Purposes, s)
	}
	if p.MaxInvocations, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	return &p, nil
}

// Request describes one attempted use of a dataset, as seen by an
// enforcement layer. The same request shape is evaluated at every layer;
// only the observables differ (match knows the spec's guaranteed floor,
// admission knows the contributed item count, the enclave knows the
// actual batch it is about to compute on).
type Request struct {
	Layer       string // LayerMatch, LayerAdmission or LayerEnclave
	Class       string // computation class of the workload ("train", …)
	Purpose     string // declared purpose of the workload
	Aggregation uint64 // aggregation set size observable at this layer
	Height      uint64 // ledger height at evaluation time
	Invocations uint64 // dataset consumptions committed so far
}

// Decision is the outcome of evaluating a policy against a request.
type Decision struct {
	Allowed bool
	Code    string // stable reason code (CodeOK when allowed)
	Clause  string // policy clause that produced a denial ("" when allowed)
	Layer   string // enforcement layer the decision was taken at
	Detail  string // human-readable explanation
}

// Evaluate checks req against p. It is pure and deterministic; clauses
// are checked in a fixed order (expiry, class, purpose, aggregation,
// invocations) so the reason code for a multiply-violating request is
// stable. A nil policy — a dataset with no policy attached — allows
// everything.
func Evaluate(p *Policy, req Request) Decision {
	allow := Decision{Allowed: true, Code: CodeOK, Layer: req.Layer}
	if p == nil || p.IsZero() {
		return allow
	}
	if p.ExpiryHeight > 0 && req.Height > p.ExpiryHeight {
		return deny(req, CodeExpired, ClauseExpiry,
			fmt.Sprintf("policy expired at height %d (now %d)", p.ExpiryHeight, req.Height))
	}
	if len(p.AllowedClasses) > 0 && !contains(p.AllowedClasses, req.Class) {
		return deny(req, CodeClassForbidden, ClauseClasses,
			fmt.Sprintf("computation class %q not in allowed set %v", req.Class, p.AllowedClasses))
	}
	if len(p.Purposes) > 0 && !contains(p.Purposes, req.Purpose) {
		return deny(req, CodePurposeMismatch, ClausePurposes,
			fmt.Sprintf("purpose %q not consented (allowed %v)", req.Purpose, p.Purposes))
	}
	if p.MinAggregation > 0 && req.Aggregation < p.MinAggregation {
		return deny(req, CodeAggregationFloor, ClauseAggregation,
			fmt.Sprintf("aggregation set %d below floor %d", req.Aggregation, p.MinAggregation))
	}
	if p.MaxInvocations > 0 && req.Invocations >= p.MaxInvocations {
		return deny(req, CodeExhausted, ClauseInvocations,
			fmt.Sprintf("dataset consumed %d of %d permitted invocations", req.Invocations, p.MaxInvocations))
	}
	return allow
}

func deny(req Request, code, clause, detail string) Decision {
	return Decision{Code: code, Clause: clause, Layer: req.Layer, Detail: detail}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Chain event topics. The market's registry contract emits these; the
// constants live here so offline verifiers need not import the market.
const (
	// EvPolicySet carries (dataID digest, owner address, policy blob):
	// a policy was attached to or replaced on a dataset.
	EvPolicySet = "PolicySet"

	// EvPolicyDecision carries an encoded DecisionRecord: one
	// enforcement-layer allow/deny decision.
	EvPolicyDecision = "PolicyDecision"

	// EvPolicyCode carries (dataID digest, owner address, artifact
	// blob): a compiled policy program was bound to a dataset,
	// superseding any declarative policy. The payload layout matches
	// EvPolicySet so both decode with DecodePolicySet.
	EvPolicyCode = "PolicyCodeDeployed"
)

// DecisionRecord is the on-chain form of a decision: the request
// observables plus the outcome, everything an offline verifier needs to
// re-run Evaluate and confirm the logged code.
type DecisionRecord struct {
	DataID      crypto.Digest    // dataset the decision is about
	Subject     identity.Address // who asked: provider at match, workload contract at admission, executor at enclave
	Layer       string
	Class       string
	Purpose     string
	Aggregation uint64
	Height      uint64 // evaluation height (expiry clause input)
	Invocations uint64 // consumption count the evaluation saw
	Code        string // resulting reason code
	Clause      string // violated clause ("" when allowed)
}

// Allowed reports whether the recorded decision was an allow.
func (r *DecisionRecord) Allowed() bool { return r.Code == CodeOK }

// Request reconstructs the evaluation input the record captured.
func (r *DecisionRecord) Request() Request {
	return Request{Layer: r.Layer, Class: r.Class, Purpose: r.Purpose,
		Aggregation: r.Aggregation, Height: r.Height, Invocations: r.Invocations}
}

// Encode serializes the record with the contract ABI.
func (r *DecisionRecord) Encode() []byte {
	return contract.NewEncoder().
		Digest(r.DataID).
		Address(r.Subject).
		String(r.Layer).
		String(r.Class).
		String(r.Purpose).
		Uint64(r.Aggregation).
		Uint64(r.Height).
		Uint64(r.Invocations).
		String(r.Code).
		String(r.Clause).
		Bytes()
}

// DecodeDecisionRecord inverts DecisionRecord.Encode.
func DecodeDecisionRecord(b []byte) (*DecisionRecord, error) {
	d := contract.NewDecoder(b)
	var r DecisionRecord
	var err error
	if r.DataID, err = d.Digest(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Subject, err = d.Address(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Layer, err = d.String(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Class, err = d.String(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Purpose, err = d.String(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Aggregation, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Height, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Invocations, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Code, err = d.String(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if r.Clause, err = d.String(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("policy: decode record: %w", err)
	}
	return &r, nil
}

// EncodeDecisionRecords serializes a batch of records (the return value
// of the registry's enforcePolicy method).
func EncodeDecisionRecords(recs []DecisionRecord) []byte {
	e := contract.NewEncoder().Uint64(uint64(len(recs)))
	for i := range recs {
		e.Blob(recs[i].Encode())
	}
	return e.Bytes()
}

// DecodeDecisionRecords inverts EncodeDecisionRecords.
func DecodeDecisionRecords(b []byte) ([]DecisionRecord, error) {
	d := contract.NewDecoder(b)
	n, err := d.Uint64()
	if err != nil {
		return nil, fmt.Errorf("policy: decode records: %w", err)
	}
	if n > 4096 {
		return nil, fmt.Errorf("policy: decode records: %d entries exceed limit", n)
	}
	out := make([]DecisionRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		blob, err := d.Blob()
		if err != nil {
			return nil, fmt.Errorf("policy: decode records: %w", err)
		}
		r, err := DecodeDecisionRecord(blob)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("policy: decode records: %w", err)
	}
	return out, nil
}

// FirstDenial returns the first denied record in a batch, or nil when
// every record is an allow.
func FirstDenial(recs []DecisionRecord) *DecisionRecord {
	for i := range recs {
		if !recs[i].Allowed() {
			return &recs[i]
		}
	}
	return nil
}
