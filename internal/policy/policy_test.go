package policy

import (
	"reflect"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// TestEvaluateClauses is the table-driven clause contract: boundary
// conditions for every clause and the fixed clause-ordering.
func TestEvaluateClauses(t *testing.T) {
	train := Request{Layer: LayerMatch, Class: "train", Purpose: "research",
		Aggregation: 10, Height: 100, Invocations: 0}
	with := func(mut func(*Request)) Request { r := train; mut(&r); return r }

	cases := []struct {
		name   string
		pol    *Policy
		req    Request
		code   string
		clause string
	}{
		{"nil policy allows everything", nil, train, CodeOK, ""},
		{"zero policy allows everything", &Policy{}, train, CodeOK, ""},

		// Expiry boundary: height == expiry still allowed, height just
		// past it denied.
		{"expiry at boundary allowed",
			&Policy{ExpiryHeight: 100}, train, CodeOK, ""},
		{"expiry one past boundary denied",
			&Policy{ExpiryHeight: 99}, train, CodeExpired, ClauseExpiry},
		{"expiry zero never expires",
			&Policy{}, with(func(r *Request) { r.Height = 1 << 40 }), CodeOK, ""},

		// Computation class.
		{"class in allowed set",
			&Policy{AllowedClasses: []string{"stats", "train"}}, train, CodeOK, ""},
		{"unknown computation class denied",
			&Policy{AllowedClasses: []string{"stats"}}, train, CodeClassForbidden, ClauseClasses},
		{"empty request class denied by class whitelist",
			&Policy{AllowedClasses: []string{"train"}},
			with(func(r *Request) { r.Class = "" }), CodeClassForbidden, ClauseClasses},

		// Purpose.
		{"purpose consented",
			&Policy{Purposes: []string{"research"}}, train, CodeOK, ""},
		{"purpose mismatch denied",
			&Policy{Purposes: []string{"billing"}}, train, CodePurposeMismatch, ClausePurposes},
		{"empty purpose against purpose whitelist denied",
			&Policy{Purposes: []string{"research"}},
			with(func(r *Request) { r.Purpose = "" }), CodePurposeMismatch, ClausePurposes},

		// Aggregation floor off-by-one: exactly at the floor passes,
		// one under fails.
		{"aggregation exactly at floor allowed",
			&Policy{MinAggregation: 10}, train, CodeOK, ""},
		{"aggregation one under floor denied",
			&Policy{MinAggregation: 11}, train, CodeAggregationFloor, ClauseAggregation},

		// Invocation cap: the Nth use of an N-cap dataset is the last
		// one allowed.
		{"last permitted invocation allowed",
			&Policy{MaxInvocations: 3},
			with(func(r *Request) { r.Invocations = 2 }), CodeOK, ""},
		{"invocations exhausted denied",
			&Policy{MaxInvocations: 3},
			with(func(r *Request) { r.Invocations = 3 }), CodeExhausted, ClauseInvocations},

		// Clause ordering: expiry outranks class, class outranks
		// aggregation.
		{"expiry checked before class",
			&Policy{ExpiryHeight: 1, AllowedClasses: []string{"stats"}},
			train, CodeExpired, ClauseExpiry},
		{"class checked before aggregation",
			&Policy{AllowedClasses: []string{"stats"}, MinAggregation: 100},
			train, CodeClassForbidden, ClauseClasses},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Evaluate(tc.pol, tc.req)
			if got.Code != tc.code || got.Clause != tc.clause {
				t.Fatalf("Evaluate = code %q clause %q, want %q/%q (detail: %s)",
					got.Code, got.Clause, tc.code, tc.clause, got.Detail)
			}
			if got.Allowed != (tc.code == CodeOK) {
				t.Fatalf("Allowed = %v inconsistent with code %q", got.Allowed, got.Code)
			}
			if got.Layer != tc.req.Layer {
				t.Fatalf("Layer = %q, want %q", got.Layer, tc.req.Layer)
			}
		})
	}
}

func TestPolicyEncodeRoundTrip(t *testing.T) {
	pols := []*Policy{
		{},
		{AllowedClasses: []string{"train"}, MinAggregation: 5, ExpiryHeight: 99,
			Purposes: []string{"research", "audit"}, MaxInvocations: 7},
		{Purposes: []string{"x"}},
	}
	for i, p := range pols {
		got, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(p)) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, p)
		}
	}
	if _, err := Decode([]byte{0xff, 0x01}); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func normalize(p *Policy) Policy {
	q := *p
	if len(q.AllowedClasses) == 0 {
		q.AllowedClasses = nil
	}
	if len(q.Purposes) == 0 {
		q.Purposes = nil
	}
	return q
}

func TestPolicyValidate(t *testing.T) {
	if err := (&Policy{AllowedClasses: []string{""}}).Validate(); err == nil {
		t.Fatal("empty class accepted")
	}
	if err := (&Policy{Purposes: make([]string, maxListEntries+1)}).Validate(); err == nil {
		t.Fatal("oversized purpose list accepted")
	}
	if err := (&Policy{AllowedClasses: []string{"train"}, Purposes: []string{"r"}}).Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

func TestDecisionRecordRoundTrip(t *testing.T) {
	rec := DecisionRecord{
		DataID: crypto.HashString("ds"), Subject: identity.Address{1, 2},
		Layer: LayerAdmission, Class: "train", Purpose: "research",
		Aggregation: 4, Height: 77, Invocations: 2,
		Code: CodeAggregationFloor, Clause: ClauseAggregation,
	}
	got, err := DecodeDecisionRecord(rec.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if *got != rec {
		t.Fatalf("round trip %+v != %+v", got, rec)
	}
	batch, err := DecodeDecisionRecords(EncodeDecisionRecords([]DecisionRecord{rec, rec}))
	if err != nil || len(batch) != 2 {
		t.Fatalf("batch round trip: %v (%d records)", err, len(batch))
	}
	if d := FirstDenial(batch); d == nil || d.Code != CodeAggregationFloor {
		t.Fatalf("FirstDenial = %+v", d)
	}
}

// replay helpers building synthetic event logs.
func setEvent(id crypto.Digest, p *Policy) ledger.Event {
	return ledger.Event{Topic: EvPolicySet,
		Data: EncodePolicySet(id, identity.Address{9}, p.Encode())}
}

func decEvent(rec DecisionRecord) ledger.Event {
	return ledger.Event{Topic: EvPolicyDecision, Data: rec.Encode()}
}

func TestReplayCleanLog(t *testing.T) {
	id := crypto.HashString("d1")
	pol := &Policy{AllowedClasses: []string{"train"}, MaxInvocations: 1}
	base := DecisionRecord{DataID: id, Layer: LayerMatch, Class: "train",
		Aggregation: 1, Height: 5, Code: CodeOK}
	adm := base
	adm.Layer = LayerAdmission
	second := adm
	second.Invocations = 1
	second.Code = CodeExhausted
	second.Clause = ClauseInvocations

	rep := ReplayDecisions([]ledger.Event{
		setEvent(id, pol), decEvent(base), decEvent(adm), decEvent(second),
	})
	if err := rep.Err(); err != nil {
		t.Fatalf("clean log reported: %v\n%+v", err, rep)
	}
	if rep.Decisions != 3 || rep.Allows != 2 || rep.Denies != 1 || rep.PoliciesSet != 1 {
		t.Fatalf("counts wrong: %+v", rep)
	}
}

func TestReplayDetectsForgedCode(t *testing.T) {
	id := crypto.HashString("d2")
	rec := DecisionRecord{DataID: id, Layer: LayerMatch, Class: "stats",
		Height: 5, Code: CodeOK} // policy forbids stats, log says ok
	rep := ReplayDecisions([]ledger.Event{
		setEvent(id, &Policy{AllowedClasses: []string{"train"}}), decEvent(rec),
	})
	if len(rep.Mismatches) == 0 {
		t.Fatalf("forged allow not caught: %+v", rep)
	}
}

// A late deny that the match-time policy would not produce, with no
// mutation in between, must be flagged; the same deny after a policy
// mutation must not.
func TestReplayLateDenyPrecedence(t *testing.T) {
	id := crypto.HashString("d3")
	open := &Policy{MaxInvocations: 100}                // permissive
	tight := &Policy{AllowedClasses: []string{"stats"}} // forbids train
	match := DecisionRecord{DataID: id, Layer: LayerMatch, Class: "train",
		Height: 5, Code: CodeOK}
	lateDeny := DecisionRecord{DataID: id, Layer: LayerAdmission, Class: "train",
		Height: 6, Code: CodeClassForbidden, Clause: ClauseClasses}

	// Mutation in between: legitimate.
	rep := ReplayDecisions([]ledger.Event{
		setEvent(id, open), decEvent(match), setEvent(id, tight), decEvent(lateDeny),
	})
	if err := rep.Err(); err != nil {
		t.Fatalf("mutation-explained deny flagged: %v", err)
	}

	// No mutation: the deny is unexplained (and inconsistent).
	rep = ReplayDecisions([]ledger.Event{
		setEvent(id, open), decEvent(match), decEvent(lateDeny),
	})
	if len(rep.UnexplainedDenies) == 0 {
		t.Fatalf("unexplained late deny not caught: %+v", rep)
	}
}

func TestReplayDetectsInvocationDrift(t *testing.T) {
	id := crypto.HashString("d4")
	rec := DecisionRecord{DataID: id, Layer: LayerAdmission, Class: "train",
		Height: 5, Invocations: 3, Code: CodeOK} // claims 3 prior uses; log shows none
	rep := ReplayDecisions([]ledger.Event{
		setEvent(id, &Policy{MaxInvocations: 10}), decEvent(rec),
	})
	if len(rep.Mismatches) == 0 {
		t.Fatalf("invocation drift not caught: %+v", rep)
	}
}
