package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// ErrInjected is the base error for client-side injected transport
// failures, so tests and retry loops can classify them with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// injectedErr tags a fault kind onto ErrInjected.
type injectedErr struct{ kind Kind }

func (e injectedErr) Error() string { return fmt.Sprintf("faults: injected %s", e.kind) }

func (e injectedErr) Unwrap() error { return ErrInjected }

// Timeout marks injected drops as timeout-like, matching how real
// request drops surface (net.Error deadline semantics).
func (e injectedErr) Timeout() bool { return e.kind == Drop }

func (e injectedErr) Temporary() bool { return true }

// Transport is an http.RoundTripper that applies an injector's verdicts
// to outgoing requests — the client-side half of the fault layer. The
// zero delay ordering is: delay, then drop/reset, then synthesized 5xx,
// then the real round trip with optional body truncation.
type Transport struct {
	// Base performs the real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper

	// Injector decides the faults; nil disables injection.
	Injector *Injector
}

// NewTransport wraps base with the injector.
func NewTransport(inj *Injector, base http.RoundTripper) *Transport {
	return &Transport{Base: base, Injector: inj}
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Injector == nil {
		return t.base().RoundTrip(req)
	}
	d := t.Injector.Decide(req.URL.Path, req.URL.Host)
	if d.Delay > 0 {
		select {
		case <-time.After(d.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if d.Drop {
		return nil, injectedErr{kind: Drop}
	}
	if d.Reset {
		return nil, injectedErr{kind: ConnReset}
	}
	if d.Status != 0 {
		return synthesized5xx(req, d.Status), nil
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Partial {
		resp.Body = truncateBody(resp.Body)
	}
	return resp, nil
}

// synthesized5xx fabricates a 5xx response carrying the platform's
// standard error envelope, exactly as a faulting gateway would.
func synthesized5xx(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf(
		`{"error":{"code":"injected_fault","message":"fault injection: synthesized %d","retryable":true}}`,
		status)
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(bytes.NewReader([]byte(body))),
		Request:    req,
	}
}

// truncateBody returns a reader that yields roughly half the body and
// then fails with an unexpected EOF, simulating a connection cut
// mid-response.
func truncateBody(rc io.ReadCloser) io.ReadCloser {
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		data = nil
	}
	return &partialBody{data: data[:len(data)/2]}
}

type partialBody struct {
	data []byte
	off  int
}

func (p *partialBody) Read(b []byte) (int, error) {
	if p.off >= len(p.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(b, p.data[p.off:])
	p.off += n
	return n, nil
}

func (p *partialBody) Close() error { return nil }

// Middleware wraps an http.Handler with server-side fault injection —
// the other half of the RoundTripper/middleware pair. Drop and
// ConnReset abort the connection without a response (the client sees a
// transport error); Err5xx answers with the standard envelope, running
// the real handler first when the rule sets AfterHandler; Partial runs
// the handler and truncates its response body. Peer scope matches the
// request's RemoteAddr host.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if inj == nil {
			next.ServeHTTP(w, r)
			return
		}
		d := inj.Decide(r.URL.Path, remoteHost(r))
		if d.Delay > 0 {
			select {
			case <-time.After(d.Delay):
			case <-r.Context().Done():
				return
			}
		}
		if d.Drop || d.Reset {
			// ErrAbortHandler aborts the connection without writing a
			// response; net/http recovers it without logging a stack.
			panic(http.ErrAbortHandler)
		}
		if d.Status != 0 {
			if d.AfterHandler {
				// The dangerous case: the handler commits, the response
				// is lost. Run it for real, discard what it wrote.
				next.ServeHTTP(discardWriter{header: make(http.Header)}, r)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(d.Status)
			fmt.Fprintf(w,
				`{"error":{"code":"injected_fault","message":"fault injection: synthesized %d","retryable":true}}`,
				d.Status)
			return
		}
		if d.Partial {
			rec := &recordingWriter{header: make(http.Header)}
			next.ServeHTTP(rec, r)
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			// Promise the full body, deliver half, cut the connection:
			// the client's read fails with an unexpected EOF exactly as
			// it would on a mid-response link failure.
			body := rec.buf.Bytes()
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			if rec.status != 0 {
				w.WriteHeader(rec.status)
			}
			w.Write(body[:len(body)/2])
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

// remoteHost extracts the host part of RemoteAddr ("ip:port").
func remoteHost(r *http.Request) string {
	addr := r.RemoteAddr
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}

// discardWriter satisfies handlers whose response is being thrown away.
type discardWriter struct{ header http.Header }

func (d discardWriter) Header() http.Header         { return d.header }
func (d discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d discardWriter) WriteHeader(int)             {}

// recordingWriter buffers a handler's full response for truncation.
type recordingWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (r *recordingWriter) Header() http.Header { return r.header }

func (r *recordingWriter) Write(b []byte) (int, error) { return r.buf.Write(b) }

func (r *recordingWriter) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
}
