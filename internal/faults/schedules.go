package faults

import "time"

// Shipped schedules: one per fault class the platform claims to
// tolerate, each aggressive enough to fire many times in a short chaos
// run yet bounded so a retrying client always converges. Rates and
// windows are chosen so the whole suite stays inside a CI smoke budget.
//
// Every schedule here must keep the chaos lifecycle convergent — that
// is the contract TestChaosLifecycleAllSchedules pins.

// Baseline injects nothing; it pins that the harness itself converges.
func Baseline(seed uint64) Schedule {
	return Schedule{Name: "baseline", Seed: seed}
}

// FlakyServer answers 20% of requests with a synthesized 500 before the
// handler runs.
func FlakyServer(seed uint64) Schedule {
	return Schedule{Name: "flaky-server", Seed: seed, Rules: []Rule{
		{Kind: Err5xx, Rate: 0.2},
	}}
}

// LostReplies runs the handler, then replaces 25% of transaction-submit
// responses with a 500 — the commit succeeded but the client cannot
// know. Only idempotent resubmission survives this without
// double-spending.
func LostReplies(seed uint64) Schedule {
	return Schedule{Name: "lost-replies", Seed: seed, Rules: []Rule{
		{Kind: Err5xx, Rate: 0.25, AfterHandler: true, Endpoint: "/v1/transactions"},
	}}
}

// SlowNetwork delays every request by 2–6ms (two stacked rules), enough
// to interleave retries with fresh traffic without stalling CI.
func SlowNetwork(seed uint64) Schedule {
	return Schedule{Name: "slow-network", Seed: seed, Rules: []Rule{
		{Kind: Delay, Rate: 1, Delay: 2 * time.Millisecond},
		{Kind: Delay, Rate: 0.5, Delay: 4 * time.Millisecond},
	}}
}

// DropStorm drops 30% of requests during an early operation window,
// then heals — the Jepsen-style transient partition.
func DropStorm(seed uint64) Schedule {
	return Schedule{Name: "drop-storm", Seed: seed, Rules: []Rule{
		{Kind: Drop, Rate: 0.3, FromOp: 2, ToOp: 60},
	}}
}

// TornResponses truncates 20% of response bodies mid-stream.
func TornResponses(seed uint64) Schedule {
	return Schedule{Name: "torn-responses", Seed: seed, Rules: []Rule{
		{Kind: Partial, Rate: 0.2},
	}}
}

// ResetStorm resets 20% of connections during an operation window.
func ResetStorm(seed uint64) Schedule {
	return Schedule{Name: "reset-storm", Seed: seed, Rules: []Rule{
		{Kind: ConnReset, Rate: 0.2, FromOp: 0, ToOp: 80},
	}}
}

// SkewedSealer skews a third of seal attempts backwards by 5 logical
// ticks — the chain must refuse the non-monotonic block and the caller
// must retry into a clean seal.
func SkewedSealer(seed uint64) Schedule {
	return Schedule{Name: "skewed-sealer", Seed: seed, Rules: []Rule{
		{Kind: ClockSkew, Rate: 0.33, Skew: -5, Endpoint: "seal.clock"},
	}}
}

// Everything combines every fault class at reduced rates.
func Everything(seed uint64) Schedule {
	return Schedule{Name: "everything", Seed: seed, Rules: []Rule{
		{Kind: Err5xx, Rate: 0.08},
		{Kind: Err5xx, Rate: 0.08, AfterHandler: true, Endpoint: "/v1/transactions"},
		{Kind: Delay, Rate: 0.3, Delay: time.Millisecond},
		{Kind: Drop, Rate: 0.08},
		{Kind: Partial, Rate: 0.05},
		{Kind: ConnReset, Rate: 0.05},
		{Kind: ClockSkew, Rate: 0.25, Skew: -3, Endpoint: "seal.clock"},
	}}
}

// KillRestart crashes a durable node on roughly one in eight committed
// blocks — the crash-recovery schedule the proptest persist oracle and
// experiment E17 interpret (the HTTP chaos adapters ignore Kill, so
// this schedule is not part of AllSchedules).
func KillRestart(seed uint64) Schedule {
	return Schedule{Name: "kill-restart", Seed: seed, Rules: []Rule{
		{Kind: Kill, Rate: 0.125, Endpoint: "node.commit"},
	}}
}

// AllSchedules returns every shipped schedule at the given seed, in the
// order the chaos suite runs them.
func AllSchedules(seed uint64) []Schedule {
	return []Schedule{
		Baseline(seed),
		FlakyServer(seed),
		LostReplies(seed),
		SlowNetwork(seed),
		DropStorm(seed),
		TornResponses(seed),
		ResetStorm(seed),
		SkewedSealer(seed),
		Everything(seed),
	}
}
