// Package faults is a deterministic, seedable fault-injection layer for
// chaos-testing the platform at the boundaries where real deployments
// fail: the HTTP API surface (via an http.RoundTripper wrapper on the
// client side and a middleware on the server side) and the simnet
// message fabric (via the network's fault hook). Faults are declared as
// schedules — named lists of rules that fire at a given rate or inside
// an operation-count window, scoped per endpoint and per peer — and a
// schedule plus a seed fully determines every injection decision, so a
// chaos run that fails reproduces from its seed.
//
// The supported fault kinds mirror the failures the paper's
// executor/storage outsourcing model (Fig. 3) must survive: dropped
// requests, slow links, spurious 5xx answers, responses truncated
// mid-body, connection resets, and clock-skewed block sealing.
package faults

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/telemetry"
)

// Fault-injection observability: every injected fault counts once
// globally and once per kind, so a chaos run can pin exactly what it
// subjected the system to.
var (
	mInjected = telemetry.C("faults.injected_total")
	logFaults = telemetry.L("faults")
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault kinds.
const (
	// Drop swallows the operation: an HTTP request fails with a
	// transport error without reaching the server; a simnet message is
	// lost in transit.
	Drop Kind = iota

	// Delay adds latency before the operation proceeds.
	Delay

	// Err5xx short-circuits an HTTP request with a synthesized 5xx
	// response carrying the standard error envelope. With
	// Rule.AfterHandler set, the real handler runs first and its
	// response is discarded — the "failed after commit" case that
	// idempotent retry must survive.
	Err5xx

	// Partial truncates the HTTP response body mid-stream, so the
	// client sees a decode error after a 200 status.
	Partial

	// ConnReset fails the operation with a connection-reset error —
	// on the server side the connection is aborted without a response.
	ConnReset

	// ClockSkew skews the sealer's logical clock by Rule.Skew ticks
	// for seal operations, exercising the chain's timestamp
	// monotonicity checks.
	ClockSkew

	// Kill crashes the process (or a harness's stand-in for it) at the
	// decided operation: a durable node dies mid-run — possibly mid
	// log append — and must restart from its chain store. The HTTP and
	// simnet adapters ignore Kill; it is interpreted by crash-recovery
	// harnesses (the proptest persist oracle, experiment E17) which
	// tear the store down and reopen it when the decision fires.
	Kill
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Err5xx:
		return "err5xx"
	case Partial:
		return "partial"
	case ConnReset:
		return "conn_reset"
	case ClockSkew:
		return "clock_skew"
	case Kill:
		return "kill"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Rule is one declarative fault clause. A rule fires for an operation
// when the operation matches its Endpoint and Peer scopes, its
// operation counter falls inside [FromOp, ToOp), and the schedule's
// deterministic coin lands under Rate.
type Rule struct {
	Kind Kind

	// Rate is the firing probability in [0, 1]. 1 fires on every
	// matching operation.
	Rate float64

	// FromOp and ToOp bound the rule to an operation-count window:
	// the rule is live for operations n with FromOp <= n < ToOp.
	// ToOp == 0 means unbounded. Counters are per-injector and start
	// at 0, so {FromOp: 0, ToOp: 10} covers the first ten operations.
	FromOp, ToOp uint64

	// Endpoint scopes the rule to operations whose endpoint has this
	// prefix ("" matches everything). HTTP operations use the URL
	// path; simnet operations use "simnet".
	Endpoint string

	// Peer scopes the rule to a peer ("" matches everything). HTTP
	// uses the host; simnet uses "node-<id>" of the receiver.
	Peer string

	// Delay is the injected latency for Delay rules.
	Delay time.Duration

	// Status is the synthesized status for Err5xx rules (0 = 500).
	Status int

	// AfterHandler makes an Err5xx rule run the real handler before
	// discarding its response (server middleware only).
	AfterHandler bool

	// Skew is the logical-clock offset for ClockSkew rules.
	Skew int64
}

// matches reports whether the rule applies to the operation.
func (r Rule) matches(endpoint, peer string, op uint64) bool {
	if r.Endpoint != "" && !strings.HasPrefix(endpoint, r.Endpoint) {
		return false
	}
	if r.Peer != "" && r.Peer != peer {
		return false
	}
	if op < r.FromOp {
		return false
	}
	if r.ToOp != 0 && op >= r.ToOp {
		return false
	}
	return true
}

// Schedule is a named, seedable fault plan.
type Schedule struct {
	Name  string
	Seed  uint64
	Rules []Rule
}

// Decision is the injector's verdict for one operation. Multiple
// non-exclusive faults can combine (a delayed request can also be
// dropped); the HTTP and simnet adapters apply them in a fixed order.
type Decision struct {
	Drop         bool
	Delay        time.Duration
	Status       int  // non-zero: synthesize this 5xx
	AfterHandler bool // Err5xx after the real handler ran
	Partial      bool
	Reset        bool
	Skew         int64
	Kill         bool
}

// Faulty reports whether any fault fired.
func (d Decision) Faulty() bool {
	return d.Drop || d.Delay > 0 || d.Status != 0 || d.Partial || d.Reset || d.Skew != 0 || d.Kill
}

// Injector evaluates a schedule deterministically. It is safe for
// concurrent use; decisions depend on the order operations reach the
// injector, so fully reproducible runs must serialize their operations
// (the chaos harness drives the client sequentially for this reason).
type Injector struct {
	mu    sync.Mutex
	sched Schedule
	rng   *crypto.DRBG
	ops   uint64
	hits  map[Kind]uint64
}

// NewInjector builds an injector for the schedule, seeding its
// deterministic coin from Schedule.Seed.
func NewInjector(s Schedule) *Injector {
	return &Injector{
		sched: s,
		rng:   crypto.NewDRBGFromUint64(s.Seed, "faults/"+s.Name),
		hits:  make(map[Kind]uint64),
	}
}

// Schedule returns the injector's schedule.
func (i *Injector) Schedule() Schedule { return i.sched }

// Decide evaluates every rule against one operation and returns the
// combined verdict. Each call consumes one operation count.
func (i *Injector) Decide(endpoint, peer string) Decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	op := i.ops
	i.ops++
	var d Decision
	for _, r := range i.sched.Rules {
		if !r.matches(endpoint, peer, op) {
			continue
		}
		// Burn one coin per live rule whether or not it fires, so a
		// rule's decisions do not shift when a sibling rule is edited.
		if i.rng.Float64() >= r.Rate {
			continue
		}
		switch r.Kind {
		case Drop:
			d.Drop = true
		case Delay:
			d.Delay += r.Delay
		case Err5xx:
			d.Status = r.Status
			if d.Status == 0 {
				d.Status = 500
			}
			d.AfterHandler = r.AfterHandler
		case Partial:
			d.Partial = true
		case ConnReset:
			d.Reset = true
		case ClockSkew:
			d.Skew += r.Skew
		case Kill:
			d.Kill = true
		}
		i.hits[r.Kind]++
		mInjected.Inc()
		telemetry.C("faults.injected." + r.Kind.String()).Inc()
		logFaults.Debug("fault injected",
			telemetry.Str("kind", r.Kind.String()),
			telemetry.Str("endpoint", endpoint),
			telemetry.Str("peer", peer))
	}
	return d
}

// SealSkew returns the logical-clock skew to apply to the next seal
// operation (0 = none). It consumes one operation under the synthetic
// "seal.clock" endpoint, so ClockSkew rules are typically scoped with
// Endpoint: "seal.clock".
func (i *Injector) SealSkew() int64 {
	return i.Decide("seal.clock", "").Skew
}

// ShouldKill reports whether a crash fires at the next "node.commit"
// operation (one decision per committed block). Crash-recovery
// harnesses call it once per block and, when true, tear the durable
// store down mid-write and reopen it — Kill rules are typically scoped
// with Endpoint: "node.commit".
func (i *Injector) ShouldKill() bool {
	return i.Decide("node.commit", "").Kill
}

// Ops returns the number of operations decided so far.
func (i *Injector) Ops() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Injected returns the number of fired faults per kind.
func (i *Injector) Injected() map[Kind]uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Kind]uint64, len(i.hits))
	for k, v := range i.hits {
		out[k] = v
	}
	return out
}

// InjectedTotal returns the total number of fired faults.
func (i *Injector) InjectedTotal() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	var n uint64
	for _, v := range i.hits {
		n += v
	}
	return n
}
