package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"pds2/internal/simnet"
)

// TestInjectorDeterminism pins the seed contract: the same schedule and
// seed produce the identical decision sequence, and a different seed
// diverges.
func TestInjectorDeterminism(t *testing.T) {
	sched := Schedule{Name: "det", Seed: 42, Rules: []Rule{
		{Kind: Drop, Rate: 0.4},
		{Kind: Delay, Rate: 0.3, Delay: time.Millisecond},
	}}
	run := func(s Schedule) []Decision {
		inj := NewInjector(s)
		out := make([]Decision, 0, 200)
		for i := 0; i < 200; i++ {
			out = append(out, inj.Decide("/v1/status", "peer"))
		}
		return out
	}
	a, b := run(sched), run(sched)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced diverging decisions")
	}
	sched.Seed = 43
	if reflect.DeepEqual(a, run(sched)) {
		t.Fatal("different seed produced identical decisions")
	}
	// Rates are roughly honored.
	drops := 0
	for _, d := range a {
		if d.Drop {
			drops++
		}
	}
	if drops < 40 || drops > 160 {
		t.Fatalf("drop rate 0.4 fired %d/200 times", drops)
	}
}

// TestRuleScoping pins endpoint-prefix, peer, and operation-window
// matching.
func TestRuleScoping(t *testing.T) {
	inj := NewInjector(Schedule{Name: "scope", Seed: 1, Rules: []Rule{
		{Kind: Drop, Rate: 1, Endpoint: "/v1/transactions"},
		{Kind: Delay, Rate: 1, Delay: time.Millisecond, Peer: "node-3"},
	}})
	if d := inj.Decide("/v1/status", "node-1"); d.Faulty() {
		t.Fatalf("out-of-scope op faulted: %+v", d)
	}
	if d := inj.Decide("/v1/transactions", "node-1"); !d.Drop || d.Delay != 0 {
		t.Fatalf("endpoint-scoped rule: %+v", d)
	}
	if d := inj.Decide("/v1/status", "node-3"); d.Drop || d.Delay == 0 {
		t.Fatalf("peer-scoped rule: %+v", d)
	}

	win := NewInjector(Schedule{Name: "window", Seed: 1, Rules: []Rule{
		{Kind: Drop, Rate: 1, FromOp: 2, ToOp: 4},
	}})
	var fired []bool
	for i := 0; i < 6; i++ {
		fired = append(fired, win.Decide("/x", "").Drop)
	}
	want := []bool{false, false, true, true, false, false}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("window firing %v, want %v", fired, want)
	}
	if win.Ops() != 6 {
		t.Fatalf("ops %d", win.Ops())
	}
	if win.InjectedTotal() != 2 || win.Injected()[Drop] != 2 {
		t.Fatalf("hit accounting: total %d, %v", win.InjectedTotal(), win.Injected())
	}
}

// TestTransportFaults drives each client-side fault kind through the
// RoundTripper against a live backend.
func TestTransportFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true,"pad":"0123456789abcdef"}`))
	}))
	defer backend.Close()

	do := func(sched Schedule) (*http.Response, []byte, error) {
		hc := &http.Client{Transport: NewTransport(NewInjector(sched), nil)}
		resp, err := hc.Get(backend.URL + "/v1/status")
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp, body, err
	}

	if _, _, err := do(Schedule{Name: "d", Rules: []Rule{{Kind: Drop, Rate: 1}}}); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop: %v", err)
	}
	if _, _, err := do(Schedule{Name: "r", Rules: []Rule{{Kind: ConnReset, Rate: 1}}}); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset: %v", err)
	}
	resp, body, err := do(Schedule{Name: "e", Rules: []Rule{{Kind: Err5xx, Rate: 1, Status: 503}}})
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("err5xx: %v %v", resp, err)
	}
	if len(body) == 0 {
		t.Fatalf("synthesized body missing")
	}
	if _, _, err := do(Schedule{Name: "p", Rules: []Rule{{Kind: Partial, Rate: 1}}}); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("partial: %v", err)
	}
	if _, body, err := do(Schedule{Name: "ok"}); err != nil || len(body) == 0 {
		t.Fatalf("clean pass-through: %q %v", body, err)
	}
}

// TestMiddlewareFaults drives each server-side fault kind.
func TestMiddlewareFaults(t *testing.T) {
	var handled int
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled++
		w.Write([]byte(`{"ok":true,"pad":"0123456789abcdef"}`))
	})
	serve := func(sched Schedule) (*http.Response, []byte, error) {
		srv := httptest.NewServer(Middleware(NewInjector(sched), handler))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/v1/status")
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp, body, err
	}

	// Drop/reset abort without a response; the client sees EOF.
	if _, _, err := serve(Schedule{Name: "d", Rules: []Rule{{Kind: Drop, Rate: 1}}}); err == nil {
		t.Fatal("drop produced a response")
	}

	// Plain Err5xx answers without running the handler.
	handled = 0
	resp, body, err := serve(Schedule{Name: "e", Rules: []Rule{{Kind: Err5xx, Rate: 1}}})
	if err != nil || resp.StatusCode != 500 {
		t.Fatalf("err5xx: %v %v", resp, err)
	}
	if handled != 0 {
		t.Fatal("plain err5xx ran the handler")
	}
	if string(body) == "" {
		t.Fatal("empty envelope")
	}

	// AfterHandler Err5xx runs the handler first — the lost-reply case.
	handled = 0
	resp, _, err = serve(Schedule{Name: "a", Rules: []Rule{{Kind: Err5xx, Rate: 1, AfterHandler: true}}})
	if err != nil || resp.StatusCode != 500 {
		t.Fatalf("after-handler err5xx: %v %v", resp, err)
	}
	if handled != 1 {
		t.Fatalf("after-handler ran handler %d times, want 1", handled)
	}

	// Partial promises the full length, delivers a prefix, cuts the line.
	if _, _, err := serve(Schedule{Name: "p", Rules: []Rule{{Kind: Partial, Rate: 1}}}); err == nil {
		t.Fatal("partial read succeeded")
	}
}

// TestSimnetHook pins the fabric adapter: drops register in simnet
// stats, delays defer delivery, and determinism holds per seed.
func TestSimnetHook(t *testing.T) {
	run := func(seed uint64, rate float64) (delivered, dropped int64) {
		net := simnet.New(simnet.Config{Seed: seed})
		inj := NewInjector(Schedule{Name: "fabric", Seed: seed, Rules: []Rule{
			{Kind: Drop, Rate: rate, Endpoint: "simnet"},
		}})
		net.SetFaultHook(SimnetHook(inj))
		got := 0
		a := net.AddNode(simnet.HandlerFunc(func(now simnet.Time, msg simnet.Message) {}))
		b := net.AddNode(simnet.HandlerFunc(func(now simnet.Time, msg simnet.Message) { got++ }))
		for i := 0; i < 100; i++ {
			net.Send(a, b, "x", 1)
		}
		net.Run(10 * simnet.Second)
		st := net.Stats()
		return st.MessagesDelivered, st.MessagesDropped
	}
	delivered, dropped := run(7, 0.5)
	if dropped == 0 || delivered == 0 {
		t.Fatalf("delivered %d dropped %d, want both nonzero", delivered, dropped)
	}
	d2, x2 := run(7, 0.5)
	if d2 != delivered || x2 != dropped {
		t.Fatal("same seed, different fabric outcome")
	}
	if d0, x0 := run(7, 0); x0 != 0 || d0 == 0 {
		t.Fatalf("zero rate dropped %d", x0)
	}
}
