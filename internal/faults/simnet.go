package faults

import (
	"fmt"
	"time"

	"pds2/internal/simnet"
)

// SimnetHook adapts an injector to simnet's fault hook, so the same
// declarative schedule that batters the HTTP surface can batter the
// message fabric. Rules are scoped with Endpoint "simnet" (or "" for
// schedule-wide rules) and Peer "node-<id>" of the receiver. Drop and
// Delay map directly; the HTTP-only kinds (Err5xx, Partial, ConnReset)
// degrade to drops — on a datagram fabric a torn or reset message is a
// lost message. ClockSkew does not apply.
func SimnetHook(inj *Injector) simnet.FaultHook {
	return func(now simnet.Time, from, to simnet.NodeID, size int) simnet.FaultVerdict {
		d := inj.Decide("simnet", fmt.Sprintf("node-%d", to))
		return simnet.FaultVerdict{
			Drop:       d.Drop || d.Status != 0 || d.Partial || d.Reset,
			ExtraDelay: simnet.Time(d.Delay / time.Microsecond),
		}
	}
}
