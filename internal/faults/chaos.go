package faults

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"pds2/internal/api"
	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/ml"
	"pds2/internal/semantic"
	"pds2/internal/storage"
)

// ChaosConfig parameterizes one chaos lifecycle run.
type ChaosConfig struct {
	// Seed drives the market, the synthetic data and (through the
	// schedule) every fault decision; the same config reproduces the
	// same run.
	Seed uint64

	// Schedule is the fault plan under test.
	Schedule Schedule

	// Retry overrides the client's retry policy (zero selects
	// DefaultChaosRetry).
	Retry api.RetryPolicy
}

// ChaosReport summarizes a converged chaos run.
type ChaosReport struct {
	Schedule    string            `json:"schedule"`
	Workload    string            `json:"workload"`
	FinalState  string            `json:"final_state"`
	Height      uint64            `json:"height"`
	Ops         uint64            `json:"ops"`
	Injected    map[string]uint64 `json:"injected"`
	ConsumerTxs uint64            `json:"consumer_txs"`

	// Market is the live market the run converged on, exposed so audits
	// (the proptest differential replay oracle) can re-validate the
	// chain a chaos run produced. Excluded from the JSON report.
	Market *market.Market `json:"-"`
}

// DefaultChaosRetry is tuned for chaos runs: aggressive fault rates
// need more attempts than production defaults, and millisecond backoff
// keeps the suite inside a CI smoke budget.
func DefaultChaosRetry() api.RetryPolicy {
	return api.RetryPolicy{
		MaxAttempts:       8,
		BaseDelay:         time.Millisecond,
		MaxDelay:          20 * time.Millisecond,
		Multiplier:        2,
		Jitter:            0.2,
		PerAttemptTimeout: 5 * time.Second,
		Budget:            4096,
	}
}

// RunChaosLifecycle drives a complete workload lifecycle — register,
// submit, match, seal, settle — over the HTTP API with the schedule's
// faults injected on both sides of the wire (client RoundTripper and
// server middleware) plus the sealer's clock. It returns a report only
// if the run converged: the workload completes with a result on chain,
// a deliberately double-submitted transfer lands exactly once, and the
// consumer's on-chain nonce equals the number of logical transactions
// sent (no retry ever burned an extra nonce).
//
// The off-chain legs of the lifecycle (data vault, authorization
// certificates, TEE execution) run in-process: faults target the system
// boundary this package owns, the API surface.
func RunChaosLifecycle(cfg ChaosConfig) (*ChaosReport, error) {
	retry := cfg.Retry
	if retry.MaxAttempts == 0 {
		retry = DefaultChaosRetry()
	}
	rng := crypto.NewDRBGFromUint64(cfg.Seed, "chaos/"+cfg.Schedule.Name)

	consumerID := identity.New("chaos-consumer", rng.Fork("consumer"))
	providerID := identity.New("chaos-provider", rng.Fork("provider"))
	executorID := identity.New("chaos-executor", rng.Fork("executor"))
	sink := identity.New("chaos-sink", rng.Fork("sink")).Address()
	m, err := market.New(market.Config{Seed: cfg.Seed, GenesisAlloc: map[identity.Address]uint64{
		consumerID.Address(): 1_000_000,
		providerID.Address(): 1_000_000,
		executorID.Address(): 1_000_000,
	}})
	if err != nil {
		return nil, err
	}

	inj := NewInjector(cfg.Schedule)
	srv := api.NewServer(m, true)
	srv.SetSealSkew(inj.SealSkew)
	hs := httptest.NewServer(Middleware(inj, srv))
	defer hs.Close()
	client := api.NewClient(hs.URL,
		api.WithHTTPClient(&http.Client{Transport: NewTransport(inj, nil)}),
		api.WithRetryPolicy(retry))
	ctx := context.Background()

	// sendTx pushes one signed transaction through the faulty wire and
	// seals until its receipt lands. Seal failures (skewed clocks,
	// injected errors outliving the retry budget) are not terminal — the
	// next round tries again; only a reverted or never-landing
	// transaction fails the run.
	var consumerTxs uint64
	sendTx := func(stage string, from *identity.Identity, to identity.Address, value uint64, data []byte) (*ledger.Receipt, error) {
		tx := m.SignedTx(from, to, value, data)
		if from == consumerID {
			consumerTxs++
		}
		if _, err := client.SubmitTx(ctx, tx); err != nil {
			return nil, fmt.Errorf("chaos %s: submit: %w", stage, err)
		}
		for round := 0; round < 12; round++ {
			_, _ = client.Seal(ctx)
			rcpt, err := client.Receipt(ctx, tx.Hash())
			if err != nil {
				continue
			}
			if !rcpt.Succeeded() {
				return nil, fmt.Errorf("chaos %s: tx reverted: %s", stage, rcpt.Err)
			}
			return rcpt, nil
		}
		return nil, fmt.Errorf("chaos %s: receipt never landed", stage)
	}

	// Register: the consumer role lands on chain through the wire.
	if _, err := sendTx("register", consumerID, m.Registry, 0,
		market.RegisterActorData(identity.RoleConsumer)); err != nil {
		return nil, err
	}

	// Submit: deploy the workload contract with its escrowed budget and
	// list it in the registry directory.
	const budget = 100_000
	params := market.TrainerParams{Dim: 2, Epochs: 1, Lambda: 1e-3}
	spec := &market.Spec{
		Predicate:      `category isa "sensor"`,
		MinProviders:   1,
		MinItems:       1,
		ExpiryHeight:   m.Height() + 1_000,
		ExecutorFeeBps: 1_000,
		Measurement:    market.TrainerMeasurement(params.Encode()),
		QAPub:          m.QA.PublicKey(),
		Params:         params.Encode(),
	}
	rcpt, err := sendTx("submit", consumerID, identity.ZeroAddress, budget,
		contract.DeployData(market.WorkloadCodeName, spec.Encode()))
	if err != nil {
		return nil, err
	}
	var workload identity.Address
	copy(workload[:], rcpt.Return)
	if _, err := sendTx("list", consumerID, m.Registry, 0,
		market.RegisterWorkloadData(workload)); err != nil {
		return nil, err
	}
	// The listed workload must be discoverable through the paginated
	// directory, reading through the same faulty wire.
	wls, err := client.Workloads(ctx)
	if err != nil {
		return nil, fmt.Errorf("chaos list: %w", err)
	}
	found := false
	for _, wl := range wls {
		if wl.Address == workload && wl.State == "open" {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("chaos list: workload %s not open in directory %v", workload.Short(), wls)
	}

	// Match: the off-chain marketplace legs — provider vault, semantic
	// eligibility, authorization certificates, executor attestation.
	node := storage.NewNode(storage.NewMemStore())
	prov, err := market.NewProvider(m, providerID, node)
	if err != nil {
		return nil, fmt.Errorf("chaos match: %w", err)
	}
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 40, Dim: 2}, rng.Fork("data"))
	if _, err := prov.AddDataset(data, semantic.Metadata{
		"category": semantic.String("sensor.temperature"),
		"samples":  semantic.Number(float64(data.Len())),
	}); err != nil {
		return nil, fmt.Errorf("chaos match: %w", err)
	}
	exec, err := market.NewExecutor(m, executorID, node)
	if err != nil {
		return nil, fmt.Errorf("chaos match: %w", err)
	}
	refs, err := prov.EligibleData(spec)
	if err != nil || len(refs) == 0 {
		return nil, fmt.Errorf("chaos match: eligible data: %v (%d refs)", err, len(refs))
	}
	auths, err := prov.Authorize(workload, executorID.Address(), refs, spec.ExpiryHeight)
	if err != nil {
		return nil, fmt.Errorf("chaos match: authorize: %w", err)
	}
	exec.Accept(workload, auths)
	if err := exec.Register(workload); err != nil {
		return nil, fmt.Errorf("chaos match: executor register: %w", err)
	}
	if _, err := sendTx("start", consumerID, workload, 0, contract.CallData("start", nil)); err != nil {
		return nil, err
	}

	// Execute inside the (simulated) TEE.
	if _, err := market.RunWorkloadExecution(workload, []*market.Executor{exec}); err != nil {
		return nil, fmt.Errorf("chaos execute: %w", err)
	}

	// Exactly-once sentinel: submit the same transfer twice, as an
	// application-level retry would after a lost response. The
	// idempotency key must collapse both into one execution.
	const sentinel = 12_345
	transfer := m.SignedTx(consumerID, sink, sentinel, nil)
	consumerTxs++
	for i := 0; i < 2; i++ {
		if _, err := client.SubmitTx(ctx, transfer); err != nil {
			return nil, fmt.Errorf("chaos sentinel submit %d: %w", i, err)
		}
	}
	for round := 0; round < 12; round++ {
		_, _ = client.Seal(ctx)
		if _, err := client.Receipt(ctx, transfer.Hash()); err == nil {
			break
		}
	}
	sinkAcct, err := client.Account(ctx, sink)
	if err != nil {
		return nil, fmt.Errorf("chaos sentinel: %w", err)
	}
	if sinkAcct.Balance != sentinel {
		return nil, fmt.Errorf("chaos sentinel: sink balance %d, want exactly %d (double execution?)", sinkAcct.Balance, sentinel)
	}

	// Settle: reward distribution through the wire, then verify the
	// converged end state.
	if _, err := sendTx("settle", consumerID, workload, 0, contract.CallData("finalize", nil)); err != nil {
		return nil, err
	}
	detail, err := client.Workload(ctx, workload)
	if err != nil {
		return nil, fmt.Errorf("chaos settle: %w", err)
	}
	if detail.State != market.StateComplete.String() {
		return nil, fmt.Errorf("chaos settle: workload state %q, want %q", detail.State, market.StateComplete)
	}
	if detail.ResultHash == nil {
		return nil, fmt.Errorf("chaos settle: no result hash on chain")
	}
	acct, err := client.Account(ctx, consumerID.Address())
	if err != nil {
		return nil, fmt.Errorf("chaos settle: %w", err)
	}
	if acct.Nonce != consumerTxs {
		return nil, fmt.Errorf("chaos settle: consumer nonce %d, want %d (a retry burned a nonce)", acct.Nonce, consumerTxs)
	}

	injected := map[string]uint64{}
	for k, v := range inj.Injected() {
		injected[k.String()] = v
	}
	return &ChaosReport{
		Schedule:    cfg.Schedule.Name,
		Workload:    workload.Hex(),
		FinalState:  detail.State,
		Height:      m.Height(),
		Ops:         inj.Ops(),
		Injected:    injected,
		ConsumerTxs: consumerTxs,
		Market:      m,
	}, nil
}
