package faults

import (
	"testing"
)

// TestChaosLifecycleAllSchedules is the acceptance pin for the fault
// layer: the full workload lifecycle must converge under every shipped
// schedule with a fixed seed — retries absorb injected 5xx, drops,
// resets, torn responses, slow links and skewed sealer clocks, and the
// idempotent submission path guarantees no nonce is ever double-spent
// along the way (RunChaosLifecycle errors otherwise).
func TestChaosLifecycleAllSchedules(t *testing.T) {
	const seed = 1
	for _, sched := range AllSchedules(seed) {
		sched := sched
		t.Run(sched.Name, func(t *testing.T) {
			rep, err := RunChaosLifecycle(ChaosConfig{Seed: seed, Schedule: sched})
			if err != nil {
				t.Fatalf("schedule %s did not converge: %v", sched.Name, err)
			}
			if rep.FinalState != "complete" {
				t.Fatalf("final state %q", rep.FinalState)
			}
			// Every non-baseline schedule must actually have injected
			// faults — a chaos run that injected nothing proves nothing.
			if sched.Name != "baseline" && len(rep.Injected) == 0 {
				t.Fatalf("schedule %s injected no faults over %d ops", sched.Name, rep.Ops)
			}
			if sched.Name == "baseline" && len(rep.Injected) != 0 {
				t.Fatalf("baseline injected %v", rep.Injected)
			}
			t.Logf("%s: %d ops, injected %v, height %d, %d consumer txs",
				rep.Schedule, rep.Ops, rep.Injected, rep.Height, rep.ConsumerTxs)
		})
	}
}

// TestChaosDeterminism pins reproducibility: two runs of the same
// schedule and seed inject the identical fault mix.
func TestChaosDeterminism(t *testing.T) {
	run := func() *ChaosReport {
		rep, err := RunChaosLifecycle(ChaosConfig{Seed: 5, Schedule: FlakyServer(5)})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Ops != b.Ops {
		t.Fatalf("ops diverged: %d vs %d", a.Ops, b.Ops)
	}
	for k, v := range a.Injected {
		if b.Injected[k] != v {
			t.Fatalf("injection mix diverged: %v vs %v", a.Injected, b.Injected)
		}
	}
	if a.Height != b.Height {
		t.Fatalf("height diverged: %d vs %d", a.Height, b.Height)
	}
}
