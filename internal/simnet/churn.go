package simnet

import "pds2/internal/crypto"

// ChurnTrace describes node availability over time as a sequence of
// up/down transitions. The gossip-learning literature ([25], [26])
// evaluates protocols under heavy churn — at any moment a large fraction
// of smartphones is offline — and PDS² reproduces those conditions with
// synthetic traces generated here.
type ChurnTrace struct {
	Events []ChurnEvent
}

// ChurnEvent is one availability transition of one node.
type ChurnEvent struct {
	At   Time
	Node NodeID
	Up   bool
}

// GenerateChurn builds a trace for n nodes over the given horizon in
// which each node alternates exponentially-distributed online and offline
// periods with the given means. With meanOffline = 0 the trace is empty
// (all nodes permanently online).
func GenerateChurn(n int, horizon, meanOnline, meanOffline Time, rng *crypto.DRBG) ChurnTrace {
	var trace ChurnTrace
	if meanOffline <= 0 || meanOnline <= 0 {
		return trace
	}
	for node := 0; node < n; node++ {
		// Random initial phase: start online with probability equal to the
		// online duty cycle.
		duty := float64(meanOnline) / float64(meanOnline+meanOffline)
		up := rng.Float64() < duty
		t := Time(0)
		if !up {
			trace.Events = append(trace.Events, ChurnEvent{At: 0, Node: NodeID(node), Up: false})
		}
		for t < horizon {
			var period Time
			if up {
				period = Time(rng.ExpFloat64() * float64(meanOnline))
			} else {
				period = Time(rng.ExpFloat64() * float64(meanOffline))
			}
			if period < Millisecond {
				period = Millisecond
			}
			t += period
			if t >= horizon {
				break
			}
			up = !up
			trace.Events = append(trace.Events, ChurnEvent{At: t, Node: NodeID(node), Up: up})
		}
	}
	return trace
}

// Apply schedules every transition of the trace on the network.
func (c ChurnTrace) Apply(n *Network) {
	for _, ev := range c.Events {
		ev := ev
		n.At(ev.At, func(Time) { n.SetOnline(ev.Node, ev.Up) })
	}
}

// OnlineFraction computes the fraction of nodes online at time t
// according to the trace, assuming all n nodes start online.
func (c ChurnTrace) OnlineFraction(n int, t Time) float64 {
	up := make([]bool, n)
	for i := range up {
		up[i] = true
	}
	// Events are ordered per node but interleaved across nodes, so scan
	// them all rather than stopping at the first future event.
	for _, ev := range c.Events {
		if ev.At > t {
			continue
		}
		up[ev.Node] = ev.Up
	}
	count := 0
	for _, u := range up {
		if u {
			count++
		}
	}
	return float64(count) / float64(n)
}
