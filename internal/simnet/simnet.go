// Package simnet is a deterministic discrete-event network simulator.
// It is the physical substrate on which PDS² runs its decentralized
// protocols: gossip learning, federated learning and secure multiparty
// computation all exchange messages through a simnet.Network, which
// models latency, bandwidth, message loss and node churn, and accounts
// every byte sent — the communication costs reported in the experiments
// come from here.
//
// The simulator is single-threaded and event-driven: all protocol
// callbacks run inside Network.Run in virtual time, so simulations with
// thousands of nodes are exactly reproducible from their seed.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/telemetry"
)

// Time is a point in virtual time, measured in microseconds from the
// start of the simulation.
type Time int64

// Common virtual durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

// Duration converts the virtual time to a time.Duration for reporting.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// Seconds returns the virtual time in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String implements fmt.Stringer.
func (t Time) String() string { return t.Duration().String() }

// NodeID identifies a node within one Network. IDs are dense, starting
// from zero, so protocols can use them as slice indices.
type NodeID int

// Message is a payload in flight between two nodes. Size is the number of
// simulated wire bytes, which drives bandwidth and statistics; Payload is
// the in-memory value handed to the receiver (never serialized).
type Message struct {
	From    NodeID
	To      NodeID
	Size    int
	Payload any

	// Trace is the sender's span context, carried so the receiver can
	// continue the sender's distributed trace (telemetry only — it does
	// not contribute to Size, keeping wire accounting identical whether
	// tracing is on or off).
	Trace telemetry.SpanContext
}

// Handler receives messages delivered to a node.
type Handler interface {
	// HandleMessage is invoked in virtual time when a message arrives.
	HandleMessage(now Time, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(now Time, msg Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(now Time, msg Message) { f(now, msg) }

// LatencyModel computes the one-way propagation delay for a message
// between two nodes. Implementations must be deterministic given the rng.
type LatencyModel interface {
	Latency(from, to NodeID, rng *crypto.DRBG) Time
}

// FixedLatency is a constant propagation delay.
type FixedLatency Time

// Latency implements LatencyModel.
func (l FixedLatency) Latency(_, _ NodeID, _ *crypto.DRBG) Time { return Time(l) }

// UniformLatency draws the delay uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max Time
}

// Latency implements LatencyModel.
func (l UniformLatency) Latency(_, _ NodeID, rng *crypto.DRBG) Time {
	if l.Max <= l.Min {
		return l.Min
	}
	return l.Min + Time(rng.Intn(int(l.Max-l.Min)+1))
}

// LogNormalLatency draws delays from a log-normal distribution, the
// standard model for wide-area round-trip times. Median is the median
// delay; Sigma the log-space standard deviation (≈0.5 for the internet).
type LogNormalLatency struct {
	Median Time
	Sigma  float64
}

// Latency implements LatencyModel.
func (l LogNormalLatency) Latency(_, _ NodeID, rng *crypto.DRBG) Time {
	v := float64(l.Median) * math.Exp(l.Sigma*rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	return Time(v)
}

// Config parameterizes a Network.
type Config struct {
	Seed uint64 // DRBG seed; runs with equal seeds are identical

	// Latency is the propagation-delay model. Nil means FixedLatency(1ms).
	Latency LatencyModel

	// BandwidthBytesPerSec limits per-message serialization delay:
	// a message of S bytes adds S/Bandwidth of delay. Zero means
	// unlimited bandwidth (no serialization delay).
	BandwidthBytesPerSec int64

	// DropRate is the probability in [0,1] that a message is silently
	// lost in transit.
	DropRate float64
}

// Stats aggregates traffic counters for a Network or a single node.
type Stats struct {
	MessagesSent      int64
	MessagesDelivered int64
	MessagesDropped   int64
	BytesSent         int64
	BytesDelivered    int64
}

// FaultVerdict is a fault hook's decision for one message: lose it,
// and/or add propagation delay on top of the latency model.
type FaultVerdict struct {
	Drop       bool
	ExtraDelay Time
}

// FaultHook inspects every message at send time and may inject faults.
// It runs after the online/DropRate checks, so hook-injected losses are
// additive to the network's own loss model. Hooks must be deterministic
// for reproducible runs (internal/faults provides a seeded one).
type FaultHook func(now Time, from, to NodeID, size int) FaultVerdict

// Network is the simulator instance. It is not safe for concurrent use;
// all interaction happens from protocol callbacks inside Run or from the
// single goroutine that constructed it.
type Network struct {
	cfg       Config
	rng       *crypto.DRBG
	now       Time
	queue     eventQueue
	seq       int64
	handlers  []Handler
	online    []bool
	partition []int // group id per node; nil = no partition
	faultHook FaultHook
	stats     Stats
	perNode   []Stats
	running   bool
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = FixedLatency(Millisecond)
	}
	return &Network{
		cfg: cfg,
		rng: crypto.NewDRBGFromUint64(cfg.Seed, "simnet"),
	}
}

// Now returns the current virtual time.
func (n *Network) Now() Time { return n.now }

// Rng exposes the network's deterministic random source, so protocols can
// share it instead of carrying their own seeds.
func (n *Network) Rng() *crypto.DRBG { return n.rng }

// AddNode registers a node with the given message handler and returns its
// ID. Nodes start online.
func (n *Network) AddNode(h Handler) NodeID {
	id := NodeID(len(n.handlers))
	n.handlers = append(n.handlers, h)
	n.online = append(n.online, true)
	n.perNode = append(n.perNode, Stats{})
	return id
}

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.handlers) }

// SetOnline marks a node up or down. Messages to or from an offline node
// are dropped; scheduled timers on offline nodes still fire (the protocol
// decides what an offline node does), matching the gossip-learning
// literature where churned nodes keep local state.
func (n *Network) SetOnline(id NodeID, up bool) {
	n.online[id] = up
}

// Online reports whether a node is currently up.
func (n *Network) Online(id NodeID) bool { return n.online[id] }

// SetPartition splits the network: messages between nodes in different
// groups are dropped at delivery time. Nodes not listed in any group
// form an implicit extra group. Pass the groups of a split-brain
// scenario; call ClearPartition to heal.
func (n *Network) SetPartition(groups ...[]NodeID) {
	n.partition = make([]int, len(n.handlers))
	for i := range n.partition {
		n.partition[i] = 0 // implicit group
	}
	for g, members := range groups {
		for _, id := range members {
			n.partition[id] = g + 1
		}
	}
}

// ClearPartition heals all partitions.
func (n *Network) ClearPartition() { n.partition = nil }

// SetFaultHook installs (or, with nil, removes) a fault-injection hook
// consulted for every subsequent Send.
func (n *Network) SetFaultHook(h FaultHook) { n.faultHook = h }

// reachable reports whether a message from a to b crosses a partition.
func (n *Network) reachable(a, b NodeID) bool {
	if n.partition == nil {
		return true
	}
	return n.partition[a] == n.partition[b]
}

// Send enqueues a message for delivery. Delivery time is
// now + latency + size/bandwidth; the message may be dropped according to
// DropRate or if either endpoint is offline at send or delivery time.
func (n *Network) Send(from, to NodeID, payload any, size int) {
	n.SendCtx(from, to, payload, size, telemetry.SpanContext{})
}

// SendCtx is Send carrying the sender's trace context, so the
// receiver's spans stitch into the sender's trace.
func (n *Network) SendCtx(from, to NodeID, payload any, size int, ctx telemetry.SpanContext) {
	if size < 0 {
		panic(fmt.Sprintf("simnet: negative message size %d", size))
	}
	n.stats.MessagesSent++
	n.stats.BytesSent += int64(size)
	n.perNode[from].MessagesSent++
	n.perNode[from].BytesSent += int64(size)

	if !n.online[from] || n.rng.Float64() < n.cfg.DropRate {
		n.stats.MessagesDropped++
		return
	}
	var injected Time
	if n.faultHook != nil {
		v := n.faultHook(n.now, from, to, size)
		if v.Drop {
			n.stats.MessagesDropped++
			return
		}
		injected = v.ExtraDelay
	}
	delay := injected + n.cfg.Latency.Latency(from, to, n.rng)
	if n.cfg.BandwidthBytesPerSec > 0 {
		delay += Time(int64(size) * int64(Second) / n.cfg.BandwidthBytesPerSec)
	}
	msg := Message{From: from, To: to, Size: size, Payload: payload, Trace: ctx}
	n.schedule(n.now+delay, func(t Time) {
		if !n.online[to] || !n.reachable(from, to) {
			n.stats.MessagesDropped++
			return
		}
		n.stats.MessagesDelivered++
		n.stats.BytesDelivered += int64(msg.Size)
		n.perNode[to].MessagesDelivered++
		n.perNode[to].BytesDelivered += int64(msg.Size)
		n.handlers[to].HandleMessage(t, msg)
	})
}

// At schedules fn to run at the given virtual time (or immediately if t
// is in the past).
func (n *Network) At(t Time, fn func(now Time)) {
	if t < n.now {
		t = n.now
	}
	n.schedule(t, fn)
}

// After schedules fn to run d after the current time.
func (n *Network) After(d Time, fn func(now Time)) {
	n.schedule(n.now+d, fn)
}

// Every schedules fn at period intervals starting at start, until Run's
// horizon ends or fn returns false.
func (n *Network) Every(start, period Time, fn func(now Time) bool) {
	if period <= 0 {
		panic("simnet: Every requires a positive period")
	}
	var tick func(now Time)
	tick = func(now Time) {
		if !fn(now) {
			return
		}
		n.schedule(now+period, tick)
	}
	n.At(start, tick)
}

func (n *Network) schedule(t Time, fn func(now Time)) {
	n.seq++
	heap.Push(&n.queue, &event{at: t, seq: n.seq, fn: fn})
}

// Run processes events in virtual-time order until the queue is empty or
// virtual time exceeds until. It returns the final virtual time.
func (n *Network) Run(until Time) Time {
	if n.running {
		panic("simnet: Run called re-entrantly")
	}
	n.running = true
	defer func() { n.running = false }()
	for n.queue.Len() > 0 {
		ev := n.queue.peek()
		if ev.at > until {
			n.now = until
			return n.now
		}
		heap.Pop(&n.queue)
		n.now = ev.at
		ev.fn(n.now)
	}
	if n.now < until {
		n.now = until
	}
	return n.now
}

// Pending returns the number of queued events, useful in tests.
func (n *Network) Pending() int { return n.queue.Len() }

// Stats returns a copy of the global traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// NodeStats returns a copy of the traffic counters for one node.
func (n *Network) NodeStats(id NodeID) Stats { return n.perNode[id] }

// event is a scheduled callback. seq breaks ties between events at the
// same virtual time, preserving scheduling order for determinism.
type event struct {
	at  Time
	seq int64
	fn  func(now Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
func (q eventQueue) peek() *event { return q[0] }
