package simnet

import (
	"math"
	"testing"

	"pds2/internal/crypto"
)

func TestGenerateChurnEmptyWhenDisabled(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(1, "churn")
	tr := GenerateChurn(10, 10*Second, Second, 0, rng)
	if len(tr.Events) != 0 {
		t.Fatalf("expected empty trace, got %d events", len(tr.Events))
	}
}

func TestGenerateChurnDutyCycle(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(2, "churn")
	const n = 200
	// Equal mean online/offline: expect ~50% availability.
	tr := GenerateChurn(n, 100*Second, 5*Second, 5*Second, rng)
	frac := tr.OnlineFraction(n, 50*Second)
	if math.Abs(frac-0.5) > 0.15 {
		t.Fatalf("online fraction %v, want ~0.5", frac)
	}
}

func TestGenerateChurnEventsOrderedPerNode(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(3, "churn")
	tr := GenerateChurn(5, 60*Second, 2*Second, 2*Second, rng)
	last := make(map[NodeID]Time)
	for _, ev := range tr.Events {
		if prev, ok := last[ev.Node]; ok && ev.At < prev {
			t.Fatalf("events for node %d out of order", ev.Node)
		}
		last[ev.Node] = ev.At
	}
}

func TestChurnApply(t *testing.T) {
	n := New(Config{Seed: 1})
	id := n.AddNode(HandlerFunc(func(Time, Message) {}))
	tr := ChurnTrace{Events: []ChurnEvent{
		{At: Second, Node: id, Up: false},
		{At: 2 * Second, Node: id, Up: true},
	}}
	tr.Apply(n)

	n.Run(Second + Millisecond)
	if n.Online(id) {
		t.Fatal("node still online after down event")
	}
	n.Run(3 * Second)
	if !n.Online(id) {
		t.Fatal("node offline after up event")
	}
}

func TestChurnDeterministic(t *testing.T) {
	a := GenerateChurn(20, 30*Second, Second, Second, crypto.NewDRBGFromUint64(9, "churn"))
	b := GenerateChurn(20, 30*Second, Second, Second, crypto.NewDRBGFromUint64(9, "churn"))
	if len(a.Events) != len(b.Events) {
		t.Fatal("same-seed traces differ in length")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same-seed traces diverge at %d", i)
		}
	}
}
